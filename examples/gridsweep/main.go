// Gridsweep demonstrates design-space grids end to end: spec.json
// declares axes over the scenario fields (2 L1 sizes × 3 L2 sizes × 2
// workloads × 2 schemes = 24 points here), grid.Expand materializes the
// full factorial product as a work.Batch, the unified driver streams the
// per-point NDJSON results, and grid.Frontier reduces them to the
// leakage-vs-AMAT Pareto front — the paper's power-performance trade-off
// curve computed across the whole grid instead of hand-picked points.
//
//	go run ./examples/gridsweep
//
// The same spec drives the CLIs. Locally:
//
//	go run ./cmd/scenario -f examples/gridsweep/spec.json -stream -frontier
//
// Distributed across machines, the grid travels as the spec plus a point
// range per work unit (the fleet re-expands deterministically — no config
// list ever crosses the wire), and checkpoint/resume works exactly as for
// scenario batches:
//
//	sweepd serve -grid examples/gridsweep/spec.json -units 24 \
//	    -checkpoint grid.journal -resume > grid.ndjson
//	sweepd work -coordinator http://host:8080   # per core/machine
//	sweepd journal -grid examples/gridsweep/spec.json -checkpoint grid.journal
//
// spec-analytical.json is the same study at analytical fidelity: its
// base sets "fidelity": "analytical", so every point's miss rates come
// from the stack-distance fast path (internal/profile) — one profiling
// pass per workload instead of one simulation per point — and it sweeps
// the AMAT budget axis from a tight 1900 ps up to an effectively
// unconstrained 1200000 ps:
//
//	go run ./cmd/scenario -f examples/gridsweep/spec-analytical.json -stream -frontier
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/grid"
	"repro/internal/work"
)

func main() {
	log.SetFlags(0)
	ctx, stop := cli.SignalContext()
	defer stop()

	f, err := os.Open("examples/gridsweep/spec.json")
	if err != nil {
		log.Fatal(err)
	}
	spec, err := grid.Load(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	b, err := spec.Expand()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "gridsweep: %d design points\n", b.Len())

	// Stream the grid through the unified driver; the Observe hook feeds
	// the frontier reduction without re-parsing stdout.
	var fr grid.Frontier
	var frErr error
	opts := work.Options{Observe: func(i int, line json.RawMessage) {
		if err := fr.Add(i, line); err != nil && frErr == nil {
			frErr = err
		}
	}}
	if err := work.Run(ctx, b, opts, os.Stdout); err != nil {
		log.Fatal(err)
	}
	if frErr != nil {
		log.Fatal(frErr)
	}
	summary, err := fr.SummaryLine()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", summary)
}
