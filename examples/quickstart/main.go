// Quickstart: design a 16 KB cache, look at its leakage/delay at two knob
// assignments, then let the optimizer find the best Scheme II assignment
// under a delay budget.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/cachecfg"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/units"
)

func main() {
	tech := core.NewTechnology()

	// 1. Build the cache: netlists for the four components (cell array,
	//    decoder, address drivers, data drivers) plus fitted analytical
	//    models in the paper's form.
	design, err := core.DesignCache(tech, core.L1Config(16*cachecfg.KB))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cache:", design.Cache.Array)

	// 2. Evaluate two hand-picked assignments: everything fast vs a split
	//    with a conservative cell array.
	fast := components.Uniform(core.OP(0.20, 10))
	split := components.Split(core.OP(0.45, 14), core.OP(0.25, 11))
	for _, a := range []struct {
		name string
		asgn components.Assignment
	}{{"all fast", fast}, {"conservative cells", split}} {
		leak, delay, energy := design.Evaluate(a.asgn)
		fmt.Printf("%-20s leakage=%-10s access=%4.0f ps  dyn=%.1f pJ\n",
			a.name, units.FormatSI(leak, "W"), units.ToPS(delay), units.ToPJ(energy))
	}

	// 3. Optimize: minimum leakage subject to a mid-range delay budget.
	lo, hi := design.DelayRange()
	budget := lo + 0.5*(hi-lo)
	r := design.OptimizeLeakage(opt.SchemeII, budget)
	if !r.Feasible {
		log.Fatal("no feasible assignment")
	}
	fmt.Printf("\noptimum under %.0f ps (%v):\n", units.ToPS(budget), r.Scheme)
	fmt.Printf("  %v\n", r.Assignment)
	fmt.Printf("  leakage %.3f mW at %.0f ps\n", units.ToMW(r.LeakageW), units.ToPS(r.DelayS))
}
