// Twolevel reproduces the paper's Section 5 two-level study: the L2 size
// sweep under an equal-AMAT constraint (single pair vs split pairs) and the
// L1 size sweep, using miss rates simulated over the three workload suites.
//
//	go run ./examples/twolevel
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cachecfg"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/opt"
	"repro/internal/units"
)

func main() {
	env := exp.NewQuickEnv()

	missRates, err := env.MissRateTable(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(missRates.ASCII())

	single, err := env.L2SizeSweep(context.Background(), false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(single.ASCII())

	split, err := env.L2SizeSweep(context.Background(), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(split.ASCII())

	l1, err := env.L1Sweep(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(l1.ASCII())

	// The same study through the library API, for one (L1, L2) pair:
	// optimize the L2 knobs of a 16KB/512KB system under an explicit AMAT
	// budget.
	h, err := core.DesignHierarchy(core.NewTechnology(), 16*cachecfg.KB, 512*cachecfg.KB,
		core.HierarchyOptions{Accesses: 300_000})
	if err != nil {
		log.Fatal(err)
	}
	a1 := components.Uniform(opt.DefaultOP())
	target := h.AMAT(a1, components.Uniform(core.OP(0.40, 13)))
	r := h.OptimizeL2(opt.SchemeII, a1, target)
	fmt.Printf("library API: 16KB+512KB, AMAT <= %.0f ps -> %v\n",
		units.ToPS(target), r)
	fmt.Printf("  L2 cells:  %v\n", r.L2Assignment[components.PartCellArray])
	fmt.Printf("  L2 periph: %v\n", r.L2Assignment[components.PartDecoder])
}
