// Distsweep demonstrates the distributed sweep subsystem end to end, in
// one process: a coordinator splits the example scenario batch into work
// units, two workers lease and execute them over loopback HTTP, and the
// coordinator reassembles the NDJSON results on stdout in input order —
// byte-identical to what `scenario -stream` emits for the same batch. A
// checkpoint journal rides along, so a killed run restarted with the same
// command completes only the remainder.
//
//	go run ./examples/distsweep
//	go run ./examples/distsweep | diff - <(go run ./cmd/scenario -f examples/scenarios.json -stream)
//
// Across real machines the same pieces are the sweepd binary:
//
//	sweepd serve -f examples/scenarios.json -addr :8080 -checkpoint sweep.journal -resume
//	sweepd work -coordinator http://host:8080   # on every machine, as many as you like
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"sync"
	"time"

	"repro/internal/cli"
	"repro/internal/dist"
	"repro/internal/scenario"
	"repro/internal/work"
)

func main() {
	log.SetFlags(0)
	ctx, stop := cli.SignalContext()
	defer stop()

	f, err := os.Open("examples/scenarios.json")
	if err != nil {
		log.Fatal(err)
	}
	b, err := scenario.LoadBatch(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	// The spec tells the coordinator how to shard the batch; its hash pins
	// the checkpoint journal to exactly this input. SpecOf works for any
	// work.Batch — experiments distribute through the same two lines.
	spec, err := dist.SpecOf(b)
	if err != nil {
		log.Fatal(err)
	}
	jr, done, err := work.OpenJournal("distsweep.journal", b, true)
	if err != nil {
		log.Fatal(err)
	}
	defer jr.Close()
	if len(done) > 0 {
		fmt.Fprintf(os.Stderr, "resuming: %d/%d scenarios already journaled\n", len(done), spec.N)
	}

	c, err := dist.New(ctx, spec, dist.Config{
		Units:    4,
		LeaseTTL: 10 * time.Second,
		Journal:  jr,
		Done:     done,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Two workers — in production these are `sweepd work` processes on
	// other machines; here they share our process and loopback HTTP.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("worker-%d", i)
		w := &dist.Worker{
			Coordinator: srv.URL,
			ID:          id,
			Exec:        dist.RegistryExecutor(0),
			OnUnit: func(u dist.Unit) {
				fmt.Fprintf(os.Stderr, "%s finished unit %d (scenarios %d-%d)\n", id, u.ID, u.Range.Lo, u.Range.Hi-1)
			},
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			}
		}()
	}

	// The coordinator emits assembled lines in input order as the ordered
	// prefix completes; resumed lines are skipped, not re-emitted.
	for line := range c.Results() {
		fmt.Printf("%s\n", line)
	}
	wg.Wait()
	if err := c.Wait(); err != nil {
		if cli.Cancelled(err) {
			log.Fatal("cancelled; the journal keeps what finished — rerun to resume")
		}
		log.Fatal(err)
	}
	fmt.Fprintln(os.Stderr, "sweep complete; remove distsweep.journal to rerun from scratch")
}
