// Memsystem reproduces the paper's Figure 2: how many distinct Tox and Vth
// values does a process need for a near-optimal memory system? It sweeps
// AMAT budgets for the five (#Tox, #Vth) tuple budgets and prints the
// energy curves plus the headline comparison.
//
//	go run ./examples/memsystem
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/cachecfg"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/opt"
	"repro/internal/units"
)

// fmtSet renders a value set like "{0.25, 0.45}".
func fmtSet(vals []float64, f string) string {
	s := "{"
	for i, v := range vals {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf(f, v)
	}
	return s + "}"
}

func main() {
	env := exp.NewQuickEnv()

	fig2, err := env.Fig2(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(fig2.Plot(72, 24))

	summary, err := env.Fig2Summary(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(summary.ASCII())

	// The same study through the library API: one tuple optimization with
	// explicit budgets.
	h, err := core.DesignHierarchy(core.NewTechnology(), 16*cachecfg.KB, 512*cachecfg.KB,
		core.HierarchyOptions{Accesses: 300_000})
	if err != nil {
		log.Fatal(err)
	}
	mid := components.Uniform(core.OP(0.35, 12))
	target := h.AMAT(mid, mid)
	fmt.Printf("library API: AMAT budget %.0f ps\n", units.ToPS(target))
	for _, b := range opt.Figure2Budgets() {
		r := h.OptimizeTuples(b, nil, nil, target)
		if !r.Feasible {
			fmt.Printf("  %-14v infeasible\n", b)
			continue
		}
		fmt.Printf("  %-14v E=%6.1f pJ  leak=%6.2f mW  Vth=%s  Tox=%s\n",
			b, units.ToPJ(r.EnergyJ), units.ToMW(r.LeakageW), fmtSet(r.VthSet, "%.2f"), fmtSet(r.ToxSet, "%.0f"))
	}
}
