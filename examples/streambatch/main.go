// Streambatch demonstrates the streaming batch pipeline: it loads the
// example scenario batch and emits one NDJSON result line per scenario as
// it completes, in input order, with per-scenario progress on stderr —
// the pattern for result sets too large to buffer in memory. Ctrl-C
// cancels the run cleanly mid-simulation.
//
//	go run ./examples/streambatch
//	go run ./examples/streambatch | jq .name
//
// The same pipeline is reachable from the CLI:
//
//	scenario -f examples/scenarios.json -stream -progress
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cli"
	"repro/internal/scenario"
)

func main() {
	log.SetFlags(0)
	ctx, stop := cli.SignalContext()
	defer stop()

	f, err := os.Open("examples/scenarios.json")
	if err != nil {
		log.Fatal(err)
	}
	b, err := scenario.LoadBatch(f)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}

	opts := scenario.StreamOptions{
		Progress: func(done, total int) {
			fmt.Fprintf(os.Stderr, "completed %d/%d scenarios\n", done, total)
		},
	}
	if err := scenario.StreamNDJSON(ctx, b, opts, os.Stdout); err != nil {
		if cli.Cancelled(err) {
			log.Fatal("cancelled; NDJSON lines already written remain valid")
		}
		log.Fatal(err)
	}
}
