// Singlecache reproduces the paper's Section 4 study on a 16 KB cache:
// the Figure 1 knob slices, the Scheme I/II/III comparison, and the
// structure of the optimal assignments.
//
//	go run ./examples/singlecache
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	env := exp.NewQuickEnv()

	fig1, err := env.Fig1(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	// A coarse terminal rendering of Figure 1: watch the fixed-Vth curves
	// span a narrow delay range and the Tox=10A curve flatten on its
	// gate-leakage floor.
	fmt.Println(fig1.Plot(72, 24))

	schemes, err := env.SchemeComparison(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(schemes.ASCII())

	asgn, err := env.SchemeAssignments(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(asgn.ASCII())

	knob, err := env.KnobSensitivity(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(knob.ASCII())
}
