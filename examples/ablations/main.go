// Ablations runs the studies beyond the paper's own evaluation: the
// fitted-model-vs-netlist optimization ablation, the delay-composition
// ablation, the drowsy-cell extension, temperature and technology-node
// sensitivity, and the program-level energy view through the CPU model.
//
//	go run ./examples/ablations
package main

import (
	"fmt"
	"log"

	"repro/internal/exp"
)

func main() {
	env := exp.NewQuickEnv()
	arts, err := env.Extensions()
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range arts {
		fmt.Println(a.Render())
	}
}
