GO ?= go

# Bare `make` keeps running the full gate, as before `help` moved to the
# top of the file.
.DEFAULT_GOAL := ci

.PHONY: help ci fmt tidy vet staticcheck lint build test race bench bench-compile bench-snapshot cover golden docs

# The perf-snapshot file for the current PR and the packages it records.
# Bump SNAPSHOT per PR (BENCH_7.json, ...) so the repo keeps the
# trajectory instead of overwriting it.
SNAPSHOT ?= BENCH_8.json
SNAPSHOT_PKGS = ./internal/sweep ./internal/work ./internal/profile ./internal/grid ./internal/obs

# help is self-maintaining: annotate a target with a trailing `## text`
# and it appears here.
help: ## list the Makefile verbs and what they do
	@grep -E '^[a-zA-Z_-]+:.*?## ' $(MAKEFILE_LIST) | awk 'BEGIN {FS = ":.*?## "}; {printf "  %-14s %s\n", $$1, $$2}'

# ci is the gate: formatting, module tidiness, vet, staticcheck, the
# repository's own analyzer suite, build, race-enabled tests, and a
# one-iteration pass over every benchmark as a compile-and-run check —
# the same chain .github/workflows/ci.yml runs, so a green `make ci`
# means a green CI run. (CI's benchmark-regression gate needs a
# merge-base to diff against and only runs on pull requests; see
# .github/workflows/ci.yml.)
ci: fmt tidy vet staticcheck lint build race bench-compile ## the full CI gate (fmt + tidy + vet + staticcheck + repolint + build + race tests + bench compile)

# fmt fails listing the files gofmt would rewrite, same as the CI step.
fmt: ## fail when gofmt would change any file
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# tidy checks go.mod/go.sum are exactly what `go mod tidy` would write
# (-diff needs Go 1.23+; it prints the diff and exits non-zero on drift).
tidy: ## fail when go.mod/go.sum are not tidy
	$(GO) mod tidy -diff

# staticcheck runs the linter when it is installed (CI installs it; local
# boxes may not have it). Findings fail the target; only a missing binary
# is skipped.
staticcheck: ## lint with staticcheck when installed (CI always runs it)
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

vet: ## go vet every package
	$(GO) vet ./...

# lint runs cmd/repolint, the repository's own go/analysis-style suite
# (internal/analysis): the determinism and architecture invariants —
# fan-out, map order, clocks, float formatting, context flow, fixture
# coverage — as compile-time checks. Zero diagnostics is the contract;
# intentional exceptions carry //lint:allow <analyzer> <reason> in the
# code they except.
lint: ## run the repolint determinism-invariant suite (zero diagnostics required)
	$(GO) run ./cmd/repolint ./...

build: ## compile every package and binary
	$(GO) build ./...

test: ## run the tier-1 test suite
	$(GO) test ./...

race: ## run the test suite under the race detector
	$(GO) test -race ./...

# bench-compile runs every benchmark exactly once — cheap enough for CI,
# and it catches benchmarks that bit-rot against API changes.
bench-compile: ## run every benchmark once as a compile-and-run check
	$(GO) test -bench=. -benchtime=1x ./...

# bench is the real measurement run.
bench: ## run the real benchmark measurements
	$(GO) test -bench=. -benchmem .

# bench-snapshot regenerates the committed perf snapshot: sec/op for the
# hot packages, parsed into stable JSON by cmd/benchsnap. -benchtime=2x
# keeps regeneration cheap while averaging out the worst first-iteration
# noise; the snapshot records a trajectory, not a gate (the gate is CI's
# bench-regression job).
bench-snapshot: ## regenerate the committed perf snapshot ($(SNAPSHOT))
	$(GO) test -bench . -benchtime=2x -run '^$$' $(SNAPSHOT_PKGS) | $(GO) run ./cmd/benchsnap -o $(SNAPSHOT)

# cover mirrors the CI coverage job: per-package percentages on stdout,
# the profile in cover.out, the total at the end.
cover: ## run the suite with a coverage profile and print the total
	$(GO) test -coverprofile=cover.out -covermode=atomic ./...
	$(GO) tool cover -func=cover.out | tail -n 1

# golden regenerates checked-in golden files (scenario batch output, the
# NDJSON stream pinned against it, and the grid expansion).
golden: ## regenerate the checked-in golden files
	$(GO) test ./internal/scenario -run 'TestBatchGolden|TestStreamGolden' -update
	$(GO) test ./internal/grid -run TestExpandGolden -update

# docs regenerates docs/wire-protocol.md from the live protocol fixtures
# in internal/docs (the same golden -update idiom as `make golden`). The
# CI docs job runs the comparison, so a protocol change without a
# regenerated doc fails CI.
docs: ## regenerate docs/wire-protocol.md from live protocol fixtures
	$(GO) test ./internal/docs -run TestWireProtocolDoc -update
