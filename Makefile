GO ?= go

.PHONY: ci vet staticcheck build test race bench bench-compile golden

# ci is the gate: vet, staticcheck, build, race-enabled tests, and a
# one-iteration pass over every benchmark as a compile-and-run check — the
# same chain .github/workflows/ci.yml runs, so a green `make ci` means a
# green CI run.
ci: vet staticcheck build race bench-compile

# staticcheck runs the linter when it is installed (CI installs it; local
# boxes may not have it). Findings fail the target; only a missing binary
# is skipped.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@2024.1.1)"; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-compile runs every benchmark exactly once — cheap enough for CI,
# and it catches benchmarks that bit-rot against API changes.
bench-compile:
	$(GO) test -bench=. -benchtime=1x ./...

# bench is the real measurement run.
bench:
	$(GO) test -bench=. -benchmem .

# golden regenerates checked-in golden files (scenario batch output and the
# NDJSON stream pinned against it).
golden:
	$(GO) test ./internal/scenario -run 'TestBatchGolden|TestStreamGolden' -update
