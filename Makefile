GO ?= go

.PHONY: ci vet build test race bench bench-compile golden

# ci is the gate: vet, build, race-enabled tests, and a one-iteration pass
# over every benchmark as a compile-and-run check.
ci: vet build race bench-compile

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-compile runs every benchmark exactly once — cheap enough for CI,
# and it catches benchmarks that bit-rot against API changes.
bench-compile:
	$(GO) test -bench=. -benchtime=1x ./...

# bench is the real measurement run.
bench:
	$(GO) test -bench=. -benchmem .

# golden regenerates checked-in golden files (scenario batch output).
golden:
	$(GO) test ./internal/scenario -run TestBatchGolden -update
