package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/cli"
)

var lineRE = regexp.MustCompile(`^[RW] 0x[0-9a-f]+$`)

func TestRunWritesTrace(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-suite", "tpcc", "-n", "50"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 50 {
		t.Fatalf("want 50 accesses, got %d", len(lines))
	}
	for _, l := range lines {
		if !lineRE.MatchString(l) {
			t.Fatalf("malformed trace line %q", l)
		}
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	gen := func() string {
		var stdout, stderr bytes.Buffer
		if code := run(t.Context(), []string{"-suite", "spec2000", "-n", "200", "-seed", "7"}, &stdout, &stderr); code != 0 {
			t.Fatalf("exit %d: %s", code, stderr.String())
		}
		return stdout.String()
	}
	if gen() != gen() {
		t.Error("same seed produced different traces")
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.trace")
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-n", "10", "-o", path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 10 {
		t.Errorf("file has %d lines, want 10", n)
	}
}

func TestRunUnknownSuite(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-suite", "linpack"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown suite: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "linpack") {
		t.Errorf("diagnostic does not name the suite: %q", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-zap"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestRunCancelled checks a cancelled generation exits 130 and leaves only
// whole trace lines behind.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-suite", "tpcc", "-n", "100000"}, &stdout, &stderr)
	if code != cli.ExitCancelled {
		t.Fatalf("cancelled run: exit %d, want %d", code, cli.ExitCancelled)
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Errorf("no cancellation diagnostic: %q", stderr.String())
	}
	if out := stdout.String(); out != "" && !strings.HasSuffix(out, "\n") {
		t.Errorf("partial trace line left unflushed: %q", out[len(out)-20:])
	}
}
