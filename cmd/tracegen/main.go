// Command tracegen writes a synthetic memory-reference trace to stdout or a
// file, one access per line ("R 0xADDR" / "W 0xADDR"), for use with external
// cache simulators or for inspecting the calibrated workloads.
//
// SIGINT/SIGTERM abort generation cleanly (no partial final line is left
// unflushed; exit 130 with a partial-progress note); -timeout bounds long
// generations the same way.
//
// Usage:
//
//	tracegen -suite spec2000 -n 100000 > spec.trace
//	tracegen -suite tpcc -n 1000000 -seed 7 -o tpcc.trace
//	tracegen -suite tpcc -n 1000000000 -timeout 1m -o huge.trace
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/trace"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// ctxCheckStride is how many trace lines are written between context
// checks: cancellation lands within a few thousand accesses.
const ctxCheckStride = 4096

// run is the testable entry point: context, flags and IO come from the
// caller and the exit status is returned instead of calling os.Exit.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suite   = fs.String("suite", "spec2000", "workload: spec2000, specweb or tpcc")
		n       = fs.Int("n", 100_000, "number of accesses")
		seed    = fs.Int64("seed", 1, "random seed")
		out     = fs.String("o", "", "output file (default stdout)")
		timeout = fs.Duration("timeout", 0, "abort generation after this duration (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	var p trace.Params
	switch *suite {
	case "spec2000":
		p = trace.SPEC2000(*seed)
	case "specweb":
		p = trace.SPECWEB(*seed)
	case "tpcc":
		p = trace.TPCC(*seed)
	default:
		fmt.Fprintf(stderr, "tracegen: unknown suite %q\n", *suite)
		return 1
	}
	g, err := trace.New(p)
	if err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}

	var w io.Writer = stdout
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)

	for i := 0; i < *n; i++ {
		if i%ctxCheckStride == 0 && ctx.Err() != nil {
			// Flush what was generated so the output ends on a whole line,
			// then report the cancellation.
			if err := bw.Flush(); err != nil {
				fmt.Fprintln(stderr, "tracegen:", err)
			}
			prog := cli.NewProgress("tracegen", "accesses", nil)
			prog.Hook()(i, *n)
			return cli.Report("tracegen", ctx.Err(), prog, stderr)
		}
		a := g.Next()
		op := byte('R')
		if a.Write {
			op = 'W'
		}
		fmt.Fprintf(bw, "%c 0x%x\n", op, a.Addr)
	}
	// A failed flush or close means a truncated trace: report it in the
	// exit status so pipelines do not consume partial output.
	if err := bw.Flush(); err != nil {
		fmt.Fprintln(stderr, "tracegen:", err)
		return 1
	}
	if f != nil {
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			return 1
		}
	}
	return 0
}
