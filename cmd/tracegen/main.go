// Command tracegen writes a synthetic memory-reference trace to stdout or a
// file, one access per line ("R 0xADDR" / "W 0xADDR"), for use with external
// cache simulators or for inspecting the calibrated workloads.
//
// Usage:
//
//	tracegen -suite spec2000 -n 100000 > spec.trace
//	tracegen -suite tpcc -n 1000000 -seed 7 -o tpcc.trace
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/trace"
)

func main() {
	var (
		suite = flag.String("suite", "spec2000", "workload: spec2000, specweb or tpcc")
		n     = flag.Int("n", 100_000, "number of accesses")
		seed  = flag.Int64("seed", 1, "random seed")
		out   = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var p trace.Params
	switch *suite {
	case "spec2000":
		p = trace.SPEC2000(*seed)
	case "specweb":
		p = trace.SPECWEB(*seed)
	case "tpcc":
		p = trace.TPCC(*seed)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown suite %q\n", *suite)
		os.Exit(1)
	}
	g, err := trace.New(p)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(1)
			}
		}()
		w = f
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	defer bw.Flush()

	for i := 0; i < *n; i++ {
		a := g.Next()
		op := byte('R')
		if a.Write {
			op = 'W'
		}
		fmt.Fprintf(bw, "%c 0x%x\n", op, a.Addr)
	}
}
