package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist/journal"
	"repro/internal/dist/store"
	"repro/internal/exp"
	"repro/internal/grid"
	"repro/internal/scenario"
	"repro/internal/work"
)

const testBatch = `{"scenarios":[
	{"name":"a","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000},
	{"name":"b","l1_kb":16,"l2_kb":512,"workload":"tpcc","accesses":20000},
	{"name":"c","l1_kb":32,"l2_kb":256,"workload":"tpcc","accesses":20000}
]}`

// syncBuffer lets the test read a buffer that serve's goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var servingRE = regexp.MustCompile(`serving \d+ \w+ on (http://[^\s]+)`)

// startServe launches `sweepd serve` in a goroutine on an ephemeral port
// and returns the coordinator URL plus a wait func for (exit code, stdout).
func startServe(t *testing.T, ctx context.Context, args []string, stdin string) (string, func() (int, string)) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("serve stderr:\n%s", stderr.String())
		}
	})
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"serve", "-addr", "127.0.0.1:0"}, args...), strings.NewReader(stdin), stdout, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := servingRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], func() (int, string) {
				select {
				case c := <-code:
					return c, stdout.String()
				case <-time.After(30 * time.Second):
					t.Fatalf("serve did not exit; stderr:\n%s", stderr.String())
					return -1, ""
				}
			}
		}
		select {
		case c := <-code:
			t.Fatalf("serve exited %d before listening; stderr:\n%s", c, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never announced its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runWork runs one `sweepd work` loop to completion; extra flags are
// appended to the standard set.
func runWorkCmd(t *testing.T, ctx context.Context, url, id string, extra ...string) int {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := append([]string{"work", "-coordinator", url, "-id", id, "-workers", "1", "-poll", "10ms"}, extra...)
	code := run(ctx, args, strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Logf("worker %s stderr:\n%s", id, stderr.String())
	}
	return code
}

// TestServeWorkMatchesSequentialStream is the end-to-end acceptance check
// at the binary level: serve + two work loops produce byte-identical
// NDJSON to the sequential in-process stream of the same batch.
func TestServeWorkMatchesSequentialStream(t *testing.T) {
	b, err := scenario.LoadBatch(strings.NewReader(testBatch))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := scenario.StreamNDJSON(t.Context(), b, scenario.StreamOptions{Workers: 1}, &want); err != nil {
		t.Fatal(err)
	}

	ctx := t.Context()
	url, wait := startServe(t, ctx, []string{"-units", "3"}, testBatch)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if code := runWorkCmd(t, ctx, url, id); code != 0 {
				t.Errorf("worker %s: exit %d", id, code)
			}
		}(fmt.Sprintf("w%d", i))
	}
	wg.Wait()
	code, stdout := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	if stdout != want.String() {
		t.Errorf("distributed output differs from sequential:\n got: %q\nwant: %q", stdout, want.String())
	}
}

// TestServeCheckpointResume restarts a checkpointed serve against a
// journal cut back to one completed scenario and checks the resumed serve
// emits exactly the remainder.
func TestServeCheckpointResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "serve.journal")
	ctx := t.Context()

	// First serve completes the whole batch, journaling it.
	url, wait := startServe(t, ctx, []string{"-units", "3", "-checkpoint", jpath}, testBatch)
	if code := runWorkCmd(t, ctx, url, "w0"); code != 0 {
		t.Fatalf("worker: exit %d", code)
	}
	code, full := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	lines := strings.SplitAfter(full, "\n")
	if len(lines) != 4 || lines[3] != "" {
		t.Fatalf("serve emitted %d lines", len(lines)-1)
	}

	// Kill simulation: journal keeps only the header and first entry.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(jpath, []byte(jlines[0]+jlines[1]), 0o644); err != nil {
		t.Fatal(err)
	}

	url, wait = startServe(t, ctx, []string{"-units", "3", "-checkpoint", jpath, "-resume"}, testBatch)
	if code := runWorkCmd(t, ctx, url, "w1"); code != 0 {
		t.Fatalf("resume worker: exit %d", code)
	}
	code, resumed := wait()
	if code != 0 {
		t.Fatalf("resumed serve: exit %d", code)
	}
	if want := lines[1] + lines[2]; resumed != want {
		t.Errorf("resumed serve must emit only the remainder:\n got: %q\nwant: %q", resumed, want)
	}
}

// TestServeExperimentsMatchesDriver checks the experiments serve mode at
// the binary level: serve -experiments plus a -quick worker emit the same
// NDJSON frames the unified driver produces for the same selection with a
// quick environment.
func TestServeExperimentsMatchesDriver(t *testing.T) {
	wb, err := exp.NewBatch([]string{"tab-fit"}, exp.NewQuickEnv())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := work.Run(t.Context(), wb, work.Options{Workers: 1}, &want); err != nil {
		t.Fatal(err)
	}

	ctx := t.Context()
	url, wait := startServe(t, ctx, []string{"-experiments", "-ids", "tab-fit", "-quick"}, "")
	if code := runWorkCmd(t, ctx, url, "w0", "-quick"); code != 0 {
		t.Fatalf("worker: exit %d", code)
	}
	code, stdout := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	if stdout != want.String() {
		t.Errorf("experiments serve differs from driver:\n got: %q\nwant: %q", stdout, want.String())
	}
}

// TestServeWorkWithToken runs a token-gated sweep end to end: a worker
// without the secret is rejected, one with it completes the batch.
func TestServeWorkWithToken(t *testing.T) {
	ctx := t.Context()
	url, wait := startServe(t, ctx, []string{"-units", "2", "-token", "s3cret"}, testBatch)

	var stderr bytes.Buffer
	code := run(ctx, []string{"work", "-coordinator", url, "-id", "intruder", "-poll", "10ms"},
		strings.NewReader(""), &bytes.Buffer{}, &stderr)
	if code == 0 || !strings.Contains(stderr.String(), "401") {
		t.Fatalf("tokenless worker: exit %d, stderr %q; want a 401 failure", code, stderr.String())
	}

	if code := runWorkCmd(t, ctx, url, "w0", "-token", "s3cret"); code != 0 {
		t.Fatalf("token worker: exit %d", code)
	}
	code, stdout := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	if strings.Count(stdout, "\n") != 3 {
		t.Errorf("token-gated sweep emitted %q", stdout)
	}
}

// TestJournalSubcommand drives `sweepd journal` over a checkpointed sweep:
// a complete journal reassembles the full ordered result set; a journal
// cut back to one entry emits the prefix and exits 1 (0 with -partial);
// the wrong batch is refused on the hash.
func TestJournalSubcommand(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "serve.journal")
	ctx := t.Context()

	url, wait := startServe(t, ctx, []string{"-units", "3", "-checkpoint", jpath}, testBatch)
	if code := runWorkCmd(t, ctx, url, "w0"); code != 0 {
		t.Fatalf("worker: exit %d", code)
	}
	code, full := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}

	// Complete journal: the reassembled set equals the serve emission.
	var stdout, stderr bytes.Buffer
	if code := run(ctx, []string{"journal", "-checkpoint", jpath}, strings.NewReader(testBatch), &stdout, &stderr); code != 0 {
		t.Fatalf("journal: exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != full {
		t.Errorf("journal reassembly differs from serve output:\n got: %q\nwant: %q", stdout.String(), full)
	}

	// Wrong input: the hash check refuses to reassemble.
	stderr.Reset()
	other := `{"name":"other","l1_kb":64,"l2_kb":1024,"workload":"tpcc","accesses":20000}`
	if code := run(ctx, []string{"journal", "-checkpoint", jpath}, strings.NewReader(other), &bytes.Buffer{}, &stderr); code != 1 ||
		!strings.Contains(stderr.String(), "batch hash mismatch") {
		t.Fatalf("mismatched journal: exit %d, stderr %q", code, stderr.String())
	}

	// Partial journal: prefix only, non-zero exit unless -partial.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(jpath, []byte(jlines[0]+jlines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(ctx, []string{"journal", "-checkpoint", jpath}, strings.NewReader(testBatch), &stdout, &stderr); code != 1 {
		t.Fatalf("incomplete journal: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "journal incomplete: 1/3 scenarios") {
		t.Errorf("missing incompleteness diagnostic: %q", stderr.String())
	}
	fullLines := strings.SplitAfter(full, "\n")
	if want := fullLines[0]; stdout.String() != want {
		t.Errorf("partial reassembly:\n got: %q\nwant: %q", stdout.String(), want)
	}
	stdout.Reset()
	if code := run(ctx, []string{"journal", "-checkpoint", jpath, "-partial"}, strings.NewReader(testBatch), &stdout, &bytes.Buffer{}); code != 0 {
		t.Fatalf("journal -partial: exit %d, want 0", code)
	}
	if stdout.String() != fullLines[0] {
		t.Errorf("-partial emission: %q", stdout.String())
	}
}

// TestJournalStat drives `sweepd journal -stat`: a one-line JSON summary
// of a checkpoint's completion — computed from the journal alone, with no
// input batch on stdin or flags — exiting 0 when complete and 1 when not
// (0 with -partial), without emitting any result lines.
func TestJournalStat(t *testing.T) {
	b, err := scenario.LoadBatch(strings.NewReader(testBatch))
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(t.TempDir(), "stat.journal")
	jr, done, err := work.OpenJournal(jpath, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := work.Run(t.Context(), b, work.Options{Workers: 1, Journal: jr, Done: done}, io.Discard); err != nil {
		t.Fatal(err)
	}
	jr.Close()
	hash, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}

	// Complete journal: summary on stdout, exit 0 — note the empty stdin;
	// -stat must not need the input batch.
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"journal", "-stat", "-checkpoint", jpath}, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("journal -stat: exit %d, stderr: %s", code, stderr.String())
	}
	var st journal.Stats
	if err := json.Unmarshal(stdout.Bytes(), &st); err != nil {
		t.Fatalf("summary is not JSON: %v (%q)", err, stdout.String())
	}
	want := journal.Stats{Kind: "scenario-batch", BatchSHA256: hash, N: 3, Done: 3, Complete: true}
	if st != want {
		t.Errorf("stat = %+v, want %+v", st, want)
	}
	if strings.Count(stdout.String(), "\n") != 1 {
		t.Errorf("-stat must emit exactly one line, got %q", stdout.String())
	}

	// Cut the journal back to one entry: Done drops, exit flips to 1
	// (back to 0 with -partial).
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(jpath, []byte(jlines[0]+jlines[1]), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	if code := run(t.Context(), []string{"journal", "-stat", "-checkpoint", jpath}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Fatalf("incomplete -stat: exit %d, want 1", code)
	}
	if err := json.Unmarshal(stdout.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Done != 1 || st.Complete {
		t.Errorf("incomplete stat = %+v", st)
	}
	if code := run(t.Context(), []string{"journal", "-stat", "-partial", "-checkpoint", jpath}, strings.NewReader(""), &bytes.Buffer{}, &stderr); code != 0 {
		t.Fatalf("incomplete -stat -partial: exit %d, want 0", code)
	}

	// A missing file is a plain failure.
	if code := run(t.Context(), []string{"journal", "-stat", "-checkpoint", "/nonexistent.journal"}, strings.NewReader(""), &bytes.Buffer{}, &stderr); code != 1 {
		t.Fatalf("missing journal: exit %d, want 1", code)
	}
}

// TestJournalExperimentsScale checks `sweepd journal -experiments` can
// replay an experiments checkpoint written at a non-default environment
// scale (e.g. by `figures -quick -accesses N -checkpoint`) when the scale
// flags match, and refuses it as a different batch when they do not.
func TestJournalExperimentsScale(t *testing.T) {
	env := exp.NewQuickEnv()
	env.Accesses = 20000
	wb, err := exp.NewBatch([]string{"tab-fit"}, env)
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(t.TempDir(), "exp.journal")
	jr, done, err := work.OpenJournal(jpath, wb, false)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := work.Run(t.Context(), wb, work.Options{Workers: 1, Journal: jr, Done: done}, &want); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	var stdout, stderr bytes.Buffer
	args := []string{"journal", "-experiments", "-ids", "tab-fit", "-quick", "-accesses", "20000", "-checkpoint", jpath}
	if code := run(t.Context(), args, strings.NewReader(""), &stdout, &stderr); code != 0 {
		t.Fatalf("matching scale: exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != want.String() {
		t.Errorf("journal reassembly differs from the driver run:\n got: %q\nwant: %q", stdout.String(), want.String())
	}

	// Without the scale flags the batch hashes differently: refused.
	stderr.Reset()
	bad := []string{"journal", "-experiments", "-ids", "tab-fit", "-checkpoint", jpath}
	if code := run(t.Context(), bad, strings.NewReader(""), &bytes.Buffer{}, &stderr); code != 1 ||
		!strings.Contains(stderr.String(), "batch hash mismatch") {
		t.Fatalf("mismatched scale: exit %d, stderr %q", code, stderr.String())
	}
}

// TestServeGridMatchesDriver checks `serve -grid` distributes a grid
// spec's expanded point product and reassembles exactly the sequential
// driver's NDJSON — the third payload kind at the binary level.
func TestServeGridMatchesDriver(t *testing.T) {
	specJSON := `{"grid":{
		"axes":{"l1_kb":[16,32]},
		"base":{"l2_kb":256,"workload":"tpcc","accesses":20000}
	}}`
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := grid.Load(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := work.Run(t.Context(), b, work.Options{Workers: 1}, &want); err != nil {
		t.Fatal(err)
	}

	ctx := t.Context()
	url, wait := startServe(t, ctx, []string{"-grid", specPath, "-units", "2"}, "")
	if code := runWorkCmd(t, ctx, url, "gw0"); code != 0 {
		t.Fatalf("worker: exit %d", code)
	}
	code, stdout := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	if stdout != want.String() {
		t.Errorf("distributed grid output differs from driver:\n got: %q\nwant: %q", stdout, want.String())
	}
}

var servingStoreRE = regexp.MustCompile(`serving batch queue on (http://[^\s]+)`)

// startServeStore launches `sweepd serve -store` in a goroutine on an
// ephemeral port and returns the service URL plus a wait func for (exit
// code, stderr). The service runs until ctx is cancelled.
func startServeStore(t *testing.T, ctx context.Context, dir string, extra ...string) (string, func() (int, string)) {
	t.Helper()
	stderr := &syncBuffer{}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("serve -store stderr:\n%s", stderr.String())
		}
	})
	code := make(chan int, 1)
	go func() {
		args := append([]string{"serve", "-store", dir, "-addr", "127.0.0.1:0"}, extra...)
		code <- run(ctx, args, strings.NewReader(""), &bytes.Buffer{}, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := servingStoreRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], func() (int, string) {
				select {
				case c := <-code:
					return c, stderr.String()
				case <-time.After(30 * time.Second):
					t.Fatalf("serve -store did not exit; stderr:\n%s", stderr.String())
					return -1, ""
				}
			}
		}
		select {
		case c := <-code:
			t.Fatalf("serve -store exited %d before listening; stderr:\n%s", c, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve -store never announced its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runSubmitCmd runs one `sweepd submit` to completion.
func runSubmitCmd(t *testing.T, ctx context.Context, url, stdin string, extra ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	args := append([]string{"submit", "-coordinator", url}, extra...)
	code := run(ctx, args, strings.NewReader(stdin), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// TestServeStoreServiceLifecycle is the binary-level tentpole test: a
// `serve -store` service takes a batch over `sweepd submit -results`,
// streams NDJSON byte-identical to the sequential run, serves an
// identical resubmission from the store, leaves a journal `sweepd
// journal` can reassemble (hash-verified against the same input), and —
// after the service is stopped and restarted on the same store — serves
// the batch again with no worker attached at all.
func TestServeStoreServiceLifecycle(t *testing.T) {
	b, err := scenario.LoadBatch(strings.NewReader(testBatch))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := scenario.StreamNDJSON(t.Context(), b, scenario.StreamOptions{Workers: 1}, &want); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	sctx, stopServe := context.WithCancel(t.Context())
	url, wait := startServeStore(t, sctx, dir, "-units", "3")

	// A worker polls the service until we stop it; its exit is the
	// cancellation, not a verdict.
	wctx, stopWorker := context.WithCancel(t.Context())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		runWorkCmd(t, wctx, url, "w0")
	}()

	code, stdout, stderr := runSubmitCmd(t, t.Context(), url, testBatch, "-results")
	if code != 0 {
		t.Fatalf("submit: exit %d, stderr: %s", code, stderr)
	}
	if stdout != want.String() {
		t.Errorf("submitted batch output differs from sequential:\n got: %q\nwant: %q", stdout, want.String())
	}

	// Resubmission to the live service: idempotent — the existing done
	// batch answers immediately, still byte-identical.
	code, stdout, stderr = runSubmitCmd(t, t.Context(), url, testBatch, "-results")
	if code != 0 {
		t.Fatalf("resubmit: exit %d, stderr: %s", code, stderr)
	}
	if stdout != want.String() {
		t.Errorf("resubmitted output differs:\n got: %q\nwant: %q", stdout, want.String())
	}
	if !strings.Contains(stderr, "state done") {
		t.Errorf("resubmission ack must report the batch done: %q", stderr)
	}
	stopWorker()
	wg.Wait()
	stopServe()
	if c, serveErr := wait(); c != 0 {
		t.Fatalf("serve -store: exit %d, stderr:\n%s", c, serveErr)
	} else if !strings.Contains(serveErr, `"manifest"`) {
		t.Errorf("service left no manifest on stderr:\n%s", serveErr)
	}

	// Cross-read: the store's per-batch journal is a plain checkpoint
	// journal — `sweepd journal` verifies its hash against the same input
	// and reassembles the identical ordered result set.
	hash, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, store.BatchID(b.Kind(), hash)+".journal")
	var jout, jerr bytes.Buffer
	if code := run(t.Context(), []string{"journal", "-checkpoint", jpath}, strings.NewReader(testBatch), &jout, &jerr); code != 0 {
		t.Fatalf("journal over store entry: exit %d, stderr: %s", code, jerr.String())
	}
	if jout.String() != want.String() {
		t.Errorf("journal reassembly of store entry differs:\n got: %q\nwant: %q", jout.String(), want.String())
	}
	// And the hash check still guards it: the wrong input is refused.
	jerr.Reset()
	other := `{"name":"other","l1_kb":64,"l2_kb":1024,"workload":"tpcc","accesses":20000}`
	if code := run(t.Context(), []string{"journal", "-checkpoint", jpath}, strings.NewReader(other), &bytes.Buffer{}, &jerr); code != 1 ||
		!strings.Contains(jerr.String(), "batch hash mismatch") {
		t.Fatalf("journal with wrong input over store entry: exit %d, stderr %q", code, jerr.String())
	}

	// Restart on the same store: the batch is restored complete, so a
	// workerless service serves it entirely from the store.
	sctx2, stopServe2 := context.WithCancel(t.Context())
	url2, wait2 := startServeStore(t, sctx2, dir)
	code, stdout, stderr = runSubmitCmd(t, t.Context(), url2, testBatch, "-results")
	if code != 0 {
		t.Fatalf("submit after restart: exit %d, stderr: %s", code, stderr)
	}
	if stdout != want.String() {
		t.Errorf("restarted service output differs:\n got: %q\nwant: %q", stdout, want.String())
	}
	if !strings.Contains(stderr, "3 cached") || !strings.Contains(stderr, "state done") {
		t.Errorf("restart ack must report the store hit: %q", stderr)
	}
	stopServe2()
	if c, _ := wait2(); c != 0 {
		t.Fatalf("restarted serve -store: exit %d", c)
	}
}

// TestJournalReadsSingleProcessCheckpointInStore pins the other direction
// of the format bridge at the binary level: a checkpoint journal written
// by the single-process driver, dropped into a store directory under the
// batch's ID, is adopted by a restarted service — submit finds the batch
// born done without any worker.
func TestJournalReadsSingleProcessCheckpointInStore(t *testing.T) {
	b, err := scenario.LoadBatch(strings.NewReader(testBatch))
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "ckpt.journal")
	jr, done, err := work.OpenJournal(ckpt, b, false)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := work.Run(t.Context(), b, work.Options{Workers: 1, Journal: jr, Done: done}, &want); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	dir := t.TempDir()
	hash, err := b.Hash()
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, store.BatchID(b.Kind(), hash)+".journal"), data, 0o644); err != nil {
		t.Fatal(err)
	}

	sctx, stopServe := context.WithCancel(t.Context())
	url, wait := startServeStore(t, sctx, dir)
	code, stdout, stderr := runSubmitCmd(t, t.Context(), url, testBatch, "-results")
	if code != 0 {
		t.Fatalf("submit: exit %d, stderr: %s", code, stderr)
	}
	if stdout != want.String() {
		t.Errorf("adopted checkpoint served differently:\n got: %q\nwant: %q", stdout, want.String())
	}
	if !strings.Contains(stderr, "3 cached") {
		t.Errorf("adoption ack must report the cache hit: %q", stderr)
	}
	stopServe()
	if c, _ := wait(); c != 0 {
		t.Fatalf("serve -store: exit %d", c)
	}
}

// TestFlagAndDispatchErrors pins the CLI error contract.
func TestFlagAndDispatchErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("no subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "serve") || !strings.Contains(stderr.String(), "work") {
		t.Errorf("usage must list subcommands:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := run(t.Context(), []string{"work"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("work without -coordinator: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-resume"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -resume without -checkpoint: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-ids", "fig1"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -ids without -experiments: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-experiments", "-f", "batch.json"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -experiments with -f: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-quick"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -quick without -experiments: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-grid", "g.json", "-experiments"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -grid with -experiments: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-grid", "g.json", "-f", "b.json"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -grid with -f: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-grid", "/nonexistent.json"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing grid file: exit %d, want 1", code)
	}
	if code := run(t.Context(), []string{"journal", "-checkpoint", "j", "-accesses", "5"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("journal -accesses without -experiments: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"journal"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("journal without -checkpoint: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-experiments", "-ids", "no-such-artifact"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("serve with unknown experiment id: exit %d, want 1", code)
	}
	if code := run(t.Context(), []string{"serve", "-f", "/nonexistent.json"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing batch file: exit %d, want 1", code)
	}
	if code := run(t.Context(), []string{"bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-store", "d", "-f", "b.json"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -store with -f: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-store", "d", "-checkpoint", "j"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -store with -checkpoint: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-store", "d", "-fidelity", "bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -store with bad -fidelity: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"submit", "-f", "b.json"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("submit without -coordinator: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"submit", "-coordinator", "http://x", "-ids", "fig1"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("submit -ids without -experiments: exit %d, want 2", code)
	}
}

// TestServeAcceptsSingleConfig checks a single scenario config serves as a
// batch of one.
func TestServeAcceptsSingleConfig(t *testing.T) {
	single := `{"name":"solo","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000}`
	ctx := t.Context()
	url, wait := startServe(t, ctx, nil, single)
	if code := runWorkCmd(t, ctx, url, "w0"); code != 0 {
		t.Fatalf("worker: exit %d", code)
	}
	code, stdout := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	if !strings.Contains(stdout, `"name":"solo"`) || strings.Count(stdout, "\n") != 1 {
		t.Errorf("unexpected single-config output: %q", stdout)
	}
}

// TestServeMetricsAddrAndManifests drives the fleet observability path at
// the binary level: serve with -metrics-addr exposes the coordinator's
// registry (plus pprof) on the debug listener and the same families on
// the worker protocol's /metrics while the batch is still pending; after
// a worker (itself running -metrics-addr) finishes the batch, both
// processes leave a manifest on stderr with matching batch accounting.
func TestServeMetricsAddrAndManifests(t *testing.T) {
	ctx := t.Context()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-units", "3", "-metrics-addr", "127.0.0.1:0"},
			strings.NewReader(testBatch), stdout, stderr)
	}()
	metricsRE := regexp.MustCompile(`sweepd: metrics on (http://[^\s]+)/metrics`)
	var url, murl string
	deadline := time.Now().Add(10 * time.Second)
	for url == "" || murl == "" {
		if m := servingRE.FindStringSubmatch(stderr.String()); m != nil {
			url = m[1]
		}
		if m := metricsRE.FindStringSubmatch(stderr.String()); m != nil {
			murl = m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never announced both listeners; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// No worker has leased anything yet, so the serve blocks and both
	// exposition surfaces are stable: the whole batch is pending.
	for _, target := range []string{murl + "/metrics", url + "/metrics"} {
		resp, err := http.Get(target)
		if err != nil {
			t.Fatalf("GET %s: %v", target, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", target, resp.StatusCode)
		}
		if want := `dist_items{kind="scenario-batch"} 3`; !strings.Contains(string(body), want) {
			t.Errorf("GET %s: exposition misses %q:\n%s", target, want, body)
		}
	}
	resp, err := http.Get(murl + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET pprof: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/cmdline: status %d", resp.StatusCode)
	}

	var wstdout, wstderr bytes.Buffer
	wcode := run(ctx, []string{"work", "-coordinator", url, "-id", "w0", "-workers", "1", "-poll", "10ms",
		"-metrics-addr", "127.0.0.1:0"}, strings.NewReader(""), &wstdout, &wstderr)
	if wcode != 0 {
		t.Fatalf("worker: exit %d, stderr:\n%s", wcode, wstderr.String())
	}
	if c := <-code; c != 0 {
		t.Fatalf("serve: exit %d, stderr:\n%s", c, stderr.String())
	}

	parse := func(name, text string) (m struct {
		Manifest struct {
			Tool        string `json:"tool"`
			Kind        string `json:"kind"`
			BatchSHA256 string `json:"batch_sha256"`
			Items       int    `json:"items"`
			ItemsRun    int    `json:"items_run"`
			Outcome     string `json:"outcome"`
		} `json:"manifest"`
	}) {
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, `{"manifest":`) {
				if err := json.Unmarshal([]byte(line), &m); err != nil {
					t.Fatalf("%s manifest does not parse: %v\n%s", name, err, line)
				}
				return m
			}
		}
		t.Fatalf("no %s manifest on stderr:\n%s", name, text)
		return m
	}
	sm := parse("serve", stderr.String()).Manifest
	if sm.Tool != "sweepd serve" || sm.Kind != "scenario-batch" || sm.Items != 3 || sm.ItemsRun != 3 ||
		sm.BatchSHA256 == "" || sm.Outcome != "ok" {
		t.Errorf("serve manifest: %+v", sm)
	}
	wm := parse("work", wstderr.String()).Manifest
	if wm.Tool != "sweepd work" || wm.Kind != "scenario-batch" || wm.Items != 3 || wm.ItemsRun != 3 ||
		wm.Outcome != "ok" {
		t.Errorf("work manifest: %+v", wm)
	}
	if !strings.Contains(wstderr.String(), "sweepd: metrics on http://") {
		t.Errorf("worker announced no metrics listener: %q", wstderr.String())
	}
}
