package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/scenario"
)

const testBatch = `{"scenarios":[
	{"name":"a","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000},
	{"name":"b","l1_kb":16,"l2_kb":512,"workload":"tpcc","accesses":20000},
	{"name":"c","l1_kb":32,"l2_kb":256,"workload":"tpcc","accesses":20000}
]}`

// syncBuffer lets the test read a buffer that serve's goroutine writes.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

var servingRE = regexp.MustCompile(`serving \d+ scenarios on (http://[^\s]+)`)

// startServe launches `sweepd serve` in a goroutine on an ephemeral port
// and returns the coordinator URL plus a wait func for (exit code, stdout).
func startServe(t *testing.T, ctx context.Context, args []string, stdin string) (string, func() (int, string)) {
	t.Helper()
	stdout, stderr := &syncBuffer{}, &syncBuffer{}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("serve stderr:\n%s", stderr.String())
		}
	})
	code := make(chan int, 1)
	go func() {
		code <- run(ctx, append([]string{"serve", "-addr", "127.0.0.1:0"}, args...), strings.NewReader(stdin), stdout, stderr)
	}()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if m := servingRE.FindStringSubmatch(stderr.String()); m != nil {
			return m[1], func() (int, string) {
				select {
				case c := <-code:
					return c, stdout.String()
				case <-time.After(30 * time.Second):
					t.Fatalf("serve did not exit; stderr:\n%s", stderr.String())
					return -1, ""
				}
			}
		}
		select {
		case c := <-code:
			t.Fatalf("serve exited %d before listening; stderr:\n%s", c, stderr.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never announced its address; stderr:\n%s", stderr.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// runWork runs one `sweepd work` loop to completion.
func runWorkCmd(t *testing.T, ctx context.Context, url, id string) int {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"work", "-coordinator", url, "-id", id, "-workers", "1", "-poll", "10ms"}, strings.NewReader(""), &stdout, &stderr)
	if code != 0 {
		t.Logf("worker %s stderr:\n%s", id, stderr.String())
	}
	return code
}

// TestServeWorkMatchesSequentialStream is the end-to-end acceptance check
// at the binary level: serve + two work loops produce byte-identical
// NDJSON to the sequential in-process stream of the same batch.
func TestServeWorkMatchesSequentialStream(t *testing.T) {
	b, err := scenario.LoadBatch(strings.NewReader(testBatch))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := scenario.StreamNDJSON(t.Context(), b, scenario.StreamOptions{Workers: 1}, &want); err != nil {
		t.Fatal(err)
	}

	ctx := t.Context()
	url, wait := startServe(t, ctx, []string{"-units", "3"}, testBatch)

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			if code := runWorkCmd(t, ctx, url, id); code != 0 {
				t.Errorf("worker %s: exit %d", id, code)
			}
		}(fmt.Sprintf("w%d", i))
	}
	wg.Wait()
	code, stdout := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	if stdout != want.String() {
		t.Errorf("distributed output differs from sequential:\n got: %q\nwant: %q", stdout, want.String())
	}
}

// TestServeCheckpointResume restarts a checkpointed serve against a
// journal cut back to one completed scenario and checks the resumed serve
// emits exactly the remainder.
func TestServeCheckpointResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "serve.journal")
	ctx := t.Context()

	// First serve completes the whole batch, journaling it.
	url, wait := startServe(t, ctx, []string{"-units", "3", "-checkpoint", jpath}, testBatch)
	if code := runWorkCmd(t, ctx, url, "w0"); code != 0 {
		t.Fatalf("worker: exit %d", code)
	}
	code, full := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	lines := strings.SplitAfter(full, "\n")
	if len(lines) != 4 || lines[3] != "" {
		t.Fatalf("serve emitted %d lines", len(lines)-1)
	}

	// Kill simulation: journal keeps only the header and first entry.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.SplitAfter(string(data), "\n")
	if err := os.WriteFile(jpath, []byte(jlines[0]+jlines[1]), 0o644); err != nil {
		t.Fatal(err)
	}

	url, wait = startServe(t, ctx, []string{"-units", "3", "-checkpoint", jpath, "-resume"}, testBatch)
	if code := runWorkCmd(t, ctx, url, "w1"); code != 0 {
		t.Fatalf("resume worker: exit %d", code)
	}
	code, resumed := wait()
	if code != 0 {
		t.Fatalf("resumed serve: exit %d", code)
	}
	if want := lines[1] + lines[2]; resumed != want {
		t.Errorf("resumed serve must emit only the remainder:\n got: %q\nwant: %q", resumed, want)
	}
}

// TestFlagAndDispatchErrors pins the CLI error contract.
func TestFlagAndDispatchErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), nil, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("no subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "serve") || !strings.Contains(stderr.String(), "work") {
		t.Errorf("usage must list subcommands:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := run(t.Context(), []string{"work"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("work without -coordinator: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-resume"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("serve -resume without -checkpoint: exit %d, want 2", code)
	}
	if code := run(t.Context(), []string{"serve", "-f", "/nonexistent.json"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing batch file: exit %d, want 1", code)
	}
	if code := run(t.Context(), []string{"bogus"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
}

// TestServeAcceptsSingleConfig checks a single scenario config serves as a
// batch of one.
func TestServeAcceptsSingleConfig(t *testing.T) {
	single := `{"name":"solo","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000}`
	ctx := t.Context()
	url, wait := startServe(t, ctx, nil, single)
	if code := runWorkCmd(t, ctx, url, "w0"); code != 0 {
		t.Fatalf("worker: exit %d", code)
	}
	code, stdout := wait()
	if code != 0 {
		t.Fatalf("serve: exit %d", code)
	}
	if !strings.Contains(stdout, `"name":"solo"`) || strings.Count(stdout, "\n") != 1 {
		t.Errorf("unexpected single-config output: %q", stdout)
	}
}
