// Command sweepd distributes a sweep across processes and machines:
// `sweepd serve` coordinates — it splits the workload into units, leases
// them to workers over HTTP, and writes the reassembled NDJSON results to
// stdout in input order, byte-identical to what the sequential run would
// emit — and `sweepd work` executes: it leases units from a coordinator,
// rebuilds them through the work registry, runs them, and reports the
// result lines, until the batch is done. Run one serve and as many work
// processes as you have cores and machines.
//
// The workload is any registered payload kind: a scenario batch (the
// default; input as for cmd/scenario), a design-space grid (-grid
// spec.json — the document expands into its full factorial point product,
// and each work unit carries only the spec plus a point range, so the
// fleet re-expands deterministically instead of shipping every config),
// or, with -experiments, units of the experiment registry emitting the
// same {"id","ascii","csv"} frames as `figures -stream`.
//
// For experiment units the lease response declares the coordinator's
// environment scale (accesses/seed/MinR2/fidelity — the scale the batch
// hash pins); `sweepd work` verifies it against its own
// -quick/-accesses/-fidelity configuration and hard-fails on mismatch,
// so a misconfigured worker exits with a diagnostic instead of silently
// blending two simulation scales (or miss-matrix fidelities) into one
// result set.
//
// The coordinator is crash-tolerant on both sides: a worker that dies
// mid-unit loses only its lease (the unit is re-leased when the lease
// expires), and with -checkpoint the coordinator journals every completed
// line so `serve -resume` after a kill completes exactly the remainder —
// against the same journal format `scenario -checkpoint` and `figures
// -checkpoint` write. `sweepd journal` reassembles the complete ordered
// result set from such a journal, because the journal — not any one run's
// stdout — is the authoritative record across restarts.
//
// `sweepd serve -store DIR` replaces the one-shot coordinator with a
// long-running multi-batch service: batches arrive over POST /v1/batches
// (`sweepd submit`, which takes the same workload flags as serve and
// streams the ordered results back with -results), any number of them
// queue and run concurrently on one worker fleet, and every completed
// line lands in a content-addressed result store under DIR — so
// resubmitting an identical batch (or one overlapping a prior batch on
// individual items) is served from cache without re-executing anything,
// and restarting the service re-queues every stored batch exactly where
// it left off. See docs/wire-protocol.md for the batch API and
// docs/operations.md for the store layout.
//
// With -token on both sides the wire protocol requires `Authorization:
// Bearer <token>` (401 otherwise) — the minimum gate before a coordinator
// listens beyond one trusted host; put TLS in front for untrusted
// networks.
//
// SIGINT/SIGTERM end any subcommand cleanly (exit 130); -timeout bounds a
// run the same way.
//
// Usage:
//
//	sweepd serve -f examples/scenarios.json -addr :8080
//	sweepd serve -f big.json -units 64 -checkpoint big.journal -resume > results.ndjson
//	sweepd serve -grid examples/gridsweep/spec.json -units 32 > grid.ndjson
//	sweepd serve -experiments -ids fig1,fig2 -token s3cret
//	sweepd serve -store /var/lib/sweepd -addr :8080
//	sweepd work -coordinator http://host:8080
//	sweepd work -coordinator http://host:8080 -workers 4 -token s3cret -progress
//	sweepd submit -coordinator http://host:8080 -f examples/scenarios.json -results > results.ndjson
//	sweepd submit -coordinator http://host:8080 -grid spec.json -wait
//	sweepd journal -f big.json -checkpoint big.journal > results.ndjson
//	sweepd journal -grid examples/gridsweep/spec.json -checkpoint grid.journal > grid.ndjson
//	sweepd journal -stat -checkpoint big.journal
//
// Observability: the coordinator serves a fleet-wide operator probe on
// GET /v1/status (per-worker liveness, lease ages, straggler flags,
// throughput and ETA) and Prometheus metrics on GET /metrics, both behind
// -token; -metrics-addr on serve or work additionally serves the
// process's registry plus /debug/pprof on a separate, unauthenticated
// address. serve and work each emit a one-line JSON manifest to stderr
// when they end — batch hash, item counts, wall time, items/sec, outcome.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/dist"
	"repro/internal/dist/journal"
	"repro/internal/dist/store"
	"repro/internal/exp"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/work"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run dispatches the subcommands; it is the testable entry point.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	return cli.Dispatch(ctx, "sweepd", []cli.Command{
		{Name: "serve", Summary: "coordinate a distributed sweep and emit ordered NDJSON results", Run: runServe},
		{Name: "work", Summary: "lease and execute work units from a coordinator", Run: runWork},
		{Name: "submit", Summary: "submit a batch to a `serve -store` service and optionally stream its results", Run: runSubmit},
		{Name: "journal", Summary: "reassemble the ordered NDJSON result set from a checkpoint journal", Run: runJournal},
	}, args, stdin, stdout, stderr)
}

// inputOptions select the workload — the flags shared by serve and
// journal, which must both resolve the exact batch (and, for experiments,
// the exact environment scale) a checkpoint pins.
type inputOptions struct {
	file        string
	grid        string
	experiments bool
	ids         string
	quick       bool
	accesses    int
	fidelity    string
}

// registerInputFlags wires the workload-selection flags.
func registerInputFlags(fs *flag.FlagSet, o *inputOptions) {
	fs.StringVar(&o.file, "f", "", "scenario JSON file, single or batch (default stdin)")
	fs.StringVar(&o.grid, "grid", "", "grid spec JSON file; expands into the full design-space point product")
	fs.BoolVar(&o.experiments, "experiments", false, "work on experiment-registry units instead of a scenario batch")
	fs.StringVar(&o.ids, "ids", "", "comma-separated experiment IDs with -experiments (default: the whole registry)")
	fs.BoolVar(&o.quick, "quick", false, "pin the experiments batch to the quick environment scale (match the fleet and any figures checkpoint)")
	fs.IntVar(&o.accesses, "accesses", 0, "pin the experiments batch to this trace length (0 = profile default)")
	fs.StringVar(&o.fidelity, "fidelity", "", `pin the experiments batch to this miss-matrix fidelity: "trace" (default) or "analytical"`)
}

// experimentsEnv resolves the environment scale the input flags declare —
// the scale the batch hash pins, which must match the fleet's execution
// scale and any `figures -checkpoint` journal being resumed or replayed.
func experimentsEnv(o inputOptions) *exp.Env {
	env := exp.NewEnv()
	if o.quick {
		env = exp.NewQuickEnv()
	}
	if o.accesses > 0 {
		env.Accesses = o.accesses
	}
	env.Fidelity = o.fidelity
	return env
}

// loadWorkBatch resolves the selected workload into a work.Batch plus the
// item noun for diagnostics.
func loadWorkBatch(o inputOptions, stdin io.Reader) (work.Batch, string, error) {
	if o.experiments {
		// -ids selections are normalized to registry order, exactly as
		// `figures -only` selects — so the batch (and therefore the
		// checkpoint hash) is the same no matter how the IDs were typed,
		// and a `figures -checkpoint` journal replays here verbatim.
		registry := exp.Experiments()
		var ids []string
		if o.ids == "" {
			for _, x := range registry {
				ids = append(ids, x.ID)
			}
		} else {
			known := make(map[string]bool, len(registry))
			for _, x := range registry {
				known[x.ID] = true
			}
			want := make(map[string]bool)
			for _, id := range strings.Split(o.ids, ",") {
				if id = strings.TrimSpace(id); id == "" {
					continue
				} else if !known[id] {
					return nil, "", fmt.Errorf("unknown experiment id %q", id)
				}
				want[id] = true
			}
			for _, x := range registry {
				if want[x.ID] {
					ids = append(ids, x.ID)
				}
			}
		}
		b, err := exp.NewBatch(ids, experimentsEnv(o))
		return b, "experiments", err
	}
	if o.grid != "" {
		f, err := os.Open(o.grid)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		spec, err := grid.Load(f)
		if err != nil {
			return nil, "", err
		}
		b, err := spec.Expand()
		return b, "points", err
	}
	b, err := loadBatch(o.file, stdin)
	return b, "scenarios", err
}

// validateInput enforces the workload-flag pairing shared by serve and
// journal; false means a usage error was reported. Every mispairing is a
// hard error — silently ignoring a flag the operator named would run (or
// hash) a different workload than they asked for.
func validateInput(o inputOptions, stderr io.Writer) bool {
	switch {
	case !profile.ValidFidelity(o.fidelity):
		fmt.Fprintf(stderr, "sweepd: unknown -fidelity %q (want %q or %q)\n",
			o.fidelity, profile.FidelityTrace, profile.FidelityAnalytical)
		return false
	case o.ids != "" && !o.experiments:
		fmt.Fprintln(stderr, "sweepd: -ids requires -experiments")
		return false
	case (o.quick || o.accesses > 0 || o.fidelity != "") && !o.experiments:
		fmt.Fprintln(stderr, "sweepd: -quick/-accesses/-fidelity require -experiments (scenario batches and grids carry their own accesses and fidelity)")
		return false
	case o.file != "" && o.experiments:
		fmt.Fprintln(stderr, "sweepd: -f does not apply to -experiments (use -ids to select artifacts)")
		return false
	case o.grid != "" && o.experiments:
		fmt.Fprintln(stderr, "sweepd: -grid does not apply to -experiments")
		return false
	case o.grid != "" && o.file != "":
		fmt.Fprintln(stderr, "sweepd: -grid and -f are mutually exclusive (one workload per sweep)")
		return false
	}
	return true
}

// serveOptions are the coordinator flags.
type serveOptions struct {
	input       inputOptions
	addr        string
	units       int
	lease       time.Duration
	checkpoint  string
	resume      bool
	store       string
	token       string
	progress    bool
	timeout     time.Duration
	metricsAddr string
}

func runServe(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o serveOptions
	registerInputFlags(fs, &o.input)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address for the worker protocol")
	fs.IntVar(&o.units, "units", 0, "work units to split the batch into (0 = GOMAXPROCS); more units = finer re-lease granularity")
	fs.DurationVar(&o.lease, "lease", 30*time.Second, "lease TTL; a worker silent this long forfeits its unit")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "journal completed lines to this file")
	fs.BoolVar(&o.resume, "resume", false, "replay the -checkpoint journal and serve only unfinished work")
	fs.StringVar(&o.store, "store", "", "run as a multi-batch service backed by this result-store directory; batches arrive via `sweepd submit`, and restart resumes every stored batch")
	fs.StringVar(&o.token, "token", "", "shared secret; workers must send it as Authorization: Bearer")
	fs.BoolVar(&o.progress, "progress", false, "report per-item completion on stderr")
	fs.DurationVar(&o.timeout, "timeout", 0, "abort the run after this duration (0 = unbounded)")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "also serve /metrics and /debug/pprof, unauthenticated, on this address (e.g. 127.0.0.1:9090; empty = off — workers' /metrics on -addr stays token-gated)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.store != "" {
		return runServeStore(ctx, o, stderr)
	}
	if o.resume && o.checkpoint == "" {
		fmt.Fprintln(stderr, "sweepd: -resume requires -checkpoint")
		return 2
	}
	if !validateInput(o.input, stderr) {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, o.timeout)
	defer cancel()

	b, noun, err := loadWorkBatch(o.input, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	spec, err := dist.SpecOf(b)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}

	var tickerW io.Writer
	if o.progress {
		tickerW = stderr
	}
	prog := cli.NewProgress("sweepd", noun, tickerW)
	reg := obs.NewRegistry()
	cfg := dist.Config{Units: o.units, LeaseTTL: o.lease, Progress: prog.Hook(), Metrics: reg}

	start := time.Now()
	man := cli.Manifest{Tool: "sweepd serve", Kind: b.Kind(), BatchSHA256: spec.Hash,
		Fidelity: work.FidelityOf(b), Items: spec.N, ItemsRun: spec.N}
	var runErr error
	defer func() {
		man.Finish(start, nil, runErr)
		cli.EmitManifest(stderr, man)
	}()

	if o.checkpoint != "" {
		jr, done, err := work.OpenJournal(o.checkpoint, b, o.resume)
		if err != nil {
			runErr = err
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		defer jr.Close()
		if len(done) > 0 {
			fmt.Fprintf(stderr, "sweepd: resuming, %d/%d %s already journaled\n", len(done), spec.N, noun)
		}
		cfg.Journal, cfg.Done = jr, done
		man.ItemsResumed = len(done)
		man.ItemsRun = spec.N - len(done)
	}

	c, err := dist.New(ctx, spec, cfg)
	if err != nil {
		runErr = err
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	if o.metricsAddr != "" {
		// The debug listener serves the coordinator's own registry — the
		// same families the token-gated /metrics on -addr exposes — plus
		// pprof, on an address the operator keeps off the worker network.
		maddr, stopMetrics, err := obs.Serve(o.metricsAddr, reg)
		if err != nil {
			runErr = err
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stderr, "sweepd: metrics on http://%s/metrics\n", maddr)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		runErr = err
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	srv := &http.Server{Handler: dist.RequireToken(o.token, c.Handler())}
	defer srv.Close()
	// Serve returns ErrServerClosed when the deferred Close runs; the
	// coordinator's Wait is the run's real verdict.
	//lint:allow nofanout HTTP accept loop must not block the result drain; lifecycle is owned by the deferred Close, not the sweep engine
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stderr, "sweepd: serving %d %s on http://%s\n", spec.N, noun, ln.Addr())

	var writeErr error
	for line := range c.Results() {
		if writeErr != nil {
			continue // post-cancel drain
		}
		if _, err := stdout.Write(append(line, '\n')); err != nil {
			writeErr = err
			cancel()
		}
	}
	err = c.Wait()
	if writeErr != nil {
		// The wait error is the cancellation this function triggered; the
		// write failure (e.g. a broken pipe) is the root cause.
		runErr = writeErr
		fmt.Fprintln(stderr, "sweepd:", writeErr)
		return 1
	}
	if err != nil {
		runErr = err
		return cli.Report("sweepd", err, prog, stderr)
	}
	return 0
}

// runServeStore is `sweepd serve -store DIR`: the multi-batch service.
// Unlike one-shot serve there is no workload on the command line —
// batches arrive over POST /v1/batches (`sweepd submit`) and their
// results live in the store, so the process emits no NDJSON on stdout
// and runs until a signal (or -timeout) stops it. Every batch the store
// has ever admitted is re-queued on start, so a crashed or restarted
// service resumes exactly where the store left off.
func runServeStore(ctx context.Context, o serveOptions, stderr io.Writer) int {
	in := o.input
	switch {
	case in.file != "" || in.grid != "" || in.experiments || in.ids != "":
		fmt.Fprintln(stderr, "sweepd: -store mode takes no workload flags (-f/-grid/-experiments/-ids); submit batches with `sweepd submit`")
		return 2
	case o.checkpoint != "" || o.resume:
		fmt.Fprintln(stderr, "sweepd: -store replaces -checkpoint/-resume (the store journals every batch; restart resumes automatically)")
		return 2
	case !profile.ValidFidelity(in.fidelity):
		fmt.Fprintf(stderr, "sweepd: unknown -fidelity %q (want %q or %q)\n",
			in.fidelity, profile.FidelityTrace, profile.FidelityAnalytical)
		return 2
	}
	if in.quick || in.accesses > 0 || in.fidelity != "" {
		// The scale flags pin the process environment that experiment
		// batches decoded from submissions hash against — the whole fleet
		// (and every submitter) must declare the same scale.
		exp.SetProcessEnv(func() *exp.Env { return experimentsEnv(in) })
	}
	ctx, cancel := cli.WithTimeout(ctx, o.timeout)
	defer cancel()

	st, err := store.Open(o.store)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	defer st.Close()
	reg := obs.NewRegistry()
	svc, err := dist.NewService(ctx, dist.ServiceConfig{
		Store: st, Units: o.units, LeaseTTL: o.lease, Metrics: reg,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(stderr, "sweepd: "+format+"\n", args...)
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	defer svc.Close()
	if active, complete := svc.Restore(); active+complete > 0 {
		fmt.Fprintf(stderr, "sweepd: restored %d batches from %s (%d with work remaining)\n",
			active+complete, o.store, active)
	}
	if o.metricsAddr != "" {
		maddr, stopMetrics, err := obs.Serve(o.metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stderr, "sweepd: metrics on http://%s/metrics\n", maddr)
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	srv := &http.Server{Handler: dist.RequireToken(o.token, svc.Handler())}
	defer srv.Close()
	//lint:allow nofanout HTTP accept loop; lifecycle is owned by the deferred Close
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stderr, "sweepd: serving batch queue on http://%s (store %s)\n", ln.Addr(), o.store)

	start := time.Now()
	<-ctx.Done()
	// A signal (or -timeout) is the service's normal shutdown; summarize
	// what this process did in the manifest.
	status := svc.Status()
	man := cli.Manifest{Tool: "sweepd serve"}
	for _, b := range status.Batches {
		man.Items += b.N
		man.ItemsRun += b.ItemsExecuted
		man.ItemsResumed += b.ItemsCachedJournal + b.ItemsCachedIndex
	}
	man.Finish(start, nil, nil)
	cli.EmitManifest(stderr, man)
	fmt.Fprintf(stderr, "sweepd: service stopped, store %s holds %d batches\n", o.store, status.Store.Batches)
	return 0
}

// submitOptions are the `sweepd submit` flags.
type submitOptions struct {
	input       inputOptions
	coordinator string
	token       string
	wait        bool
	results     bool
	timeout     time.Duration
}

// runSubmit is `sweepd submit`: the client of a `serve -store` service.
// It resolves a workload exactly as serve does (same flags, same hashes),
// posts it to the service, and acknowledges the batch ID and cache
// attribution on stderr. With -results it then streams the batch's
// input-ordered NDJSON to stdout — byte-identical to the sequential run,
// whether the lines were executed now or served from the store. With
// -wait it polls until the batch reaches a terminal state. Either way the
// exit status reflects the batch: 0 done, 1 failed or cancelled.
func runSubmit(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd submit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o submitOptions
	registerInputFlags(fs, &o.input)
	fs.StringVar(&o.coordinator, "coordinator", "", "service base URL, e.g. http://host:8080 (required)")
	fs.StringVar(&o.token, "token", "", "shared secret sent as Authorization: Bearer (match the service's -token)")
	fs.BoolVar(&o.wait, "wait", false, "poll until the batch reaches a terminal state")
	fs.BoolVar(&o.results, "results", false, "stream the batch's ordered NDJSON results to stdout (implies waiting for completion)")
	fs.DurationVar(&o.timeout, "timeout", 0, "give up after this duration (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.coordinator == "" {
		fmt.Fprintln(stderr, "sweepd: submit requires -coordinator")
		return 2
	}
	if !validateInput(o.input, stderr) {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, o.timeout)
	defer cancel()

	b, noun, err := loadWorkBatch(o.input, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	payload, err := b.MarshalRange(sweep.Range{Lo: 0, Hi: b.Len()})
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	body, err := json.Marshal(map[string]json.RawMessage{
		"kind":    json.RawMessage(fmt.Sprintf("%q", b.Kind())),
		"payload": payload,
	})
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}

	st, err := submitRequest(ctx, o, http.MethodPost, "/v1/batches", bytes.NewReader(body))
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	cached := st.ItemsCachedJournal + st.ItemsCachedIndex
	fmt.Fprintf(stderr, "sweepd: batch %s: %d %s, %d cached, state %s\n",
		st.ID, st.N, noun, cached, st.State)

	if o.results {
		if err := streamResults(ctx, o, st.ID, stdout); err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
	}
	if o.results || o.wait {
		final, err := waitTerminal(ctx, o, st.ID)
		if err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		if final.State != dist.BatchDone {
			fmt.Fprintf(stderr, "sweepd: batch %s %s", final.ID, final.State)
			if final.Error != "" {
				fmt.Fprintf(stderr, ": %s", final.Error)
			}
			fmt.Fprintln(stderr)
			return 1
		}
		fmt.Fprintf(stderr, "sweepd: batch %s done (%d executed, %d cached)\n",
			final.ID, final.ItemsExecuted, final.ItemsCachedJournal+final.ItemsCachedIndex)
	}
	return 0
}

// submitRequest performs one authenticated JSON request against the
// service and decodes the BatchStatus it answers with.
func submitRequest(ctx context.Context, o submitOptions, method, path string, body io.Reader) (dist.BatchStatus, error) {
	var st dist.BatchStatus
	req, err := http.NewRequestWithContext(ctx, method, o.coordinator+path, body)
	if err != nil {
		return st, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if o.token != "" {
		req.Header.Set("Authorization", "Bearer "+o.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return st, err
	}
	if resp.StatusCode/100 != 2 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return st, fmt.Errorf("%s: %s", resp.Status, e.Error)
		}
		return st, fmt.Errorf("%s", resp.Status)
	}
	return st, json.Unmarshal(data, &st)
}

// streamResults copies the batch's ordered NDJSON result stream to out.
// The service holds the stream open while the batch runs, so this returns
// when every line is delivered (or the batch goes terminal early).
func streamResults(ctx context.Context, o submitOptions, id string, out io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, o.coordinator+"/v1/batches/"+id+"/results", nil)
	if err != nil {
		return err
	}
	if o.token != "" {
		req.Header.Set("Authorization", "Bearer "+o.token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("results: %s", resp.Status)
	}
	_, err = io.Copy(out, resp.Body)
	return err
}

// waitTerminal polls the batch until it leaves the queue.
func waitTerminal(ctx context.Context, o submitOptions, id string) (dist.BatchStatus, error) {
	for {
		st, err := submitRequest(ctx, o, http.MethodGet, "/v1/batches/"+id, nil)
		if err != nil || st.State == dist.BatchDone || st.State == dist.BatchFailed || st.State == dist.BatchCancelled {
			return st, err
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// workOptions are the worker flags.
type workOptions struct {
	coordinator string
	id          string
	workers     int
	poll        time.Duration
	token       string
	quick       bool
	accesses    int
	fidelity    string
	progress    bool
	timeout     time.Duration
	metricsAddr string
}

func runWork(ctx context.Context, args []string, _ io.Reader, _, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd work", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o workOptions
	fs.StringVar(&o.coordinator, "coordinator", "", "coordinator base URL, e.g. http://host:8080 (required)")
	fs.StringVar(&o.id, "id", "", "worker id (default hostname-pid)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent items within a unit (0 = GOMAXPROCS)")
	fs.DurationVar(&o.poll, "poll", 200*time.Millisecond, "delay between lease attempts when the coordinator has nothing free")
	fs.StringVar(&o.token, "token", "", "shared secret sent as Authorization: Bearer (match the coordinator's -token)")
	fs.BoolVar(&o.quick, "quick", false, "execute experiment units against the quick environment (the whole fleet must agree)")
	fs.IntVar(&o.accesses, "accesses", 0, "execute experiment units at this trace length (0 = profile default; the whole fleet must agree)")
	fs.StringVar(&o.fidelity, "fidelity", "", `execute experiment units at this miss-matrix fidelity: "trace" (default) or "analytical" (the whole fleet must agree)`)
	fs.BoolVar(&o.progress, "progress", false, "report per-unit completion on stderr")
	fs.DurationVar(&o.timeout, "timeout", 0, "stop working after this duration (0 = unbounded)")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve this worker's /metrics and /debug/pprof on this address (e.g. 127.0.0.1:9091; empty = off)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.coordinator == "" {
		fmt.Fprintln(stderr, "sweepd: work requires -coordinator")
		return 2
	}
	if !profile.ValidFidelity(o.fidelity) {
		fmt.Fprintf(stderr, "sweepd: unknown -fidelity %q (want %q or %q)\n",
			o.fidelity, profile.FidelityTrace, profile.FidelityAnalytical)
		return 2
	}
	if o.id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		o.id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if o.quick || o.accesses > 0 || o.fidelity != "" {
		scale := inputOptions{quick: o.quick, accesses: o.accesses, fidelity: o.fidelity}
		exp.SetProcessEnv(func() *exp.Env { return experimentsEnv(scale) })
	}
	ctx, cancel := cli.WithTimeout(ctx, o.timeout)
	defer cancel()

	var reg *obs.Registry
	if o.metricsAddr != "" {
		reg = obs.NewRegistry()
		maddr, stopMetrics, err := obs.Serve(o.metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stderr, "sweepd: metrics on http://%s/metrics\n", maddr)
	}

	start := time.Now()
	// A worker does not know the batch size; its manifest counts what this
	// process executed, accumulated as units are reported. OnUnit runs on
	// the worker's single lease loop, so plain fields are safe.
	man := cli.Manifest{Tool: "sweepd work"}
	w := &dist.Worker{
		Coordinator: o.coordinator,
		ID:          o.id,
		Exec:        dist.InstrumentedExecutor(o.workers, reg),
		Poll:        o.poll,
		Token:       o.token,
		// Hard-fail when the coordinator's declared experiment scale does
		// not match this process's -quick/-accesses configuration — a
		// mixed-scale fleet must be a loud error, not blended results.
		VerifyEnv: exp.VerifyScale,
	}
	w.OnUnit = func(u dist.Unit) {
		man.Kind = u.Kind
		man.Items += u.Range.Len()
		man.ItemsRun += u.Range.Len()
		if o.progress {
			fmt.Fprintf(stderr, "sweepd: %s finished unit %d (items %d-%d)\n", o.id, u.ID, u.Range.Lo, u.Range.Hi-1)
		}
	}
	err := w.Run(ctx)
	gone := errors.Is(err, dist.ErrCoordinatorGone)
	if gone {
		// The serve process exits the moment the last line is emitted;
		// an idle worker discovering that is the normal end of a sweep.
		err = nil
	}
	man.Finish(start, nil, err)
	cli.EmitManifest(stderr, man)
	switch {
	case gone:
		fmt.Fprintf(stderr, "sweepd: %s: coordinator gone, assuming the sweep ended\n", o.id)
	case err != nil:
		prog := cli.NewProgress("sweepd", "units", nil)
		return cli.Report("sweepd", err, prog, stderr)
	default:
		fmt.Fprintf(stderr, "sweepd: %s done\n", o.id)
	}
	return 0
}

// runJournal is `sweepd journal` — journal cat: it replays a checkpoint
// journal read-only, verifies it pins exactly the given workload (kind,
// content hash, item count), and writes the journaled NDJSON lines to
// stdout in input order. The journal, not any one run's stdout, is the
// authoritative record of a checkpointed sweep across restarts; this is
// how the complete result set is recovered from it.
//
// With -stat it instead prints a one-line JSON completion summary (kind,
// batch hash, items done/total, torn-tail flag) without reassembling —
// or even reading into memory — any result lines, and without needing
// the input batch at all: the summary describes whatever the journal
// itself pins. Exit status 0 when complete, 1 when not (so scripts can
// poll a checkpoint directly).
func runJournal(_ context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd journal", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var in inputOptions
	registerInputFlags(fs, &in)
	checkpoint := fs.String("checkpoint", "", "journal file to read (required)")
	partial := fs.Bool("partial", false, "exit 0 even when the journal is incomplete (emit what is journaled)")
	stat := fs.Bool("stat", false, "print a JSON completion summary instead of the result lines (no input batch needed)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *checkpoint == "" {
		fmt.Fprintln(stderr, "sweepd: journal requires -checkpoint")
		return 2
	}
	if *stat {
		st, err := journal.Stat(*checkpoint)
		if err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		line, err := json.Marshal(st)
		if err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s\n", line)
		if !st.Complete && !*partial {
			return 1
		}
		return 0
	}
	if !validateInput(in, stderr) {
		return 2
	}
	b, noun, err := loadWorkBatch(in, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	done, err := work.ReplayJournal(*checkpoint, b)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	for i := 0; i < b.Len(); i++ {
		line, ok := done[i]
		if !ok {
			continue
		}
		if _, err := stdout.Write(append(line, '\n')); err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
	}
	if len(done) < b.Len() {
		fmt.Fprintf(stderr, "sweepd: journal incomplete: %d/%d %s journaled\n", len(done), b.Len(), noun)
		if !*partial {
			return 1
		}
	}
	return 0
}

// loadBatch reads a scenario document (single config or batch) and returns
// it as a batch — a single config becomes a batch of one, so sweepd serves
// any input `scenario` accepts.
func loadBatch(file string, stdin io.Reader) (scenario.Batch, error) {
	var r io.Reader = stdin
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return scenario.Batch{}, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return scenario.Batch{}, err
	}
	if scenario.IsBatch(data) {
		return scenario.LoadBatch(bytes.NewReader(data))
	}
	cfg, err := scenario.Load(bytes.NewReader(data))
	if err != nil {
		return scenario.Batch{}, err
	}
	return scenario.Batch{Scenarios: []scenario.Config{cfg}}, nil
}
