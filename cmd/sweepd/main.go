// Command sweepd distributes a scenario sweep across processes and
// machines: `sweepd serve` coordinates — it splits the batch into work
// units, leases them to workers over HTTP, and writes the reassembled
// NDJSON results to stdout in input order, byte-identical to what
// `scenario -stream` would emit for the same batch — and `sweepd work`
// executes: it leases units from a coordinator, runs them, and reports the
// result lines, until the batch is done. Run one serve and as many work
// processes as you have cores and machines.
//
// The coordinator is crash-tolerant on both sides: a worker that dies
// mid-unit loses only its lease (the unit is re-leased when the lease
// expires), and with -checkpoint the coordinator journals every completed
// line so `serve -resume` after a kill completes exactly the remainder —
// against the same journal format `scenario -checkpoint` writes.
//
// SIGINT/SIGTERM end either process cleanly (exit 130); -timeout bounds a
// run the same way.
//
// Usage:
//
//	sweepd serve -f examples/scenarios.json -addr :8080
//	sweepd serve -f big.json -units 64 -checkpoint big.journal -resume > results.ndjson
//	sweepd work -coordinator http://host:8080
//	sweepd work -coordinator http://host:8080 -workers 4 -progress
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/dist"
	"repro/internal/dist/journal"
	"repro/internal/scenario"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run dispatches the subcommands; it is the testable entry point.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	return cli.Dispatch(ctx, "sweepd", []cli.Command{
		{Name: "serve", Summary: "coordinate a distributed sweep and emit ordered NDJSON results", Run: runServe},
		{Name: "work", Summary: "lease and execute work units from a coordinator", Run: runWork},
	}, args, stdin, stdout, stderr)
}

// serveOptions are the coordinator flags.
type serveOptions struct {
	file       string
	addr       string
	units      int
	lease      time.Duration
	checkpoint string
	resume     bool
	progress   bool
	timeout    time.Duration
}

func runServe(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o serveOptions
	fs.StringVar(&o.file, "f", "", "scenario JSON file, single or batch (default stdin)")
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address for the worker protocol")
	fs.IntVar(&o.units, "units", 0, "work units to split the batch into (0 = GOMAXPROCS); more units = finer re-lease granularity")
	fs.DurationVar(&o.lease, "lease", 30*time.Second, "lease TTL; a worker silent this long forfeits its unit")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "journal completed lines to this file")
	fs.BoolVar(&o.resume, "resume", false, "replay the -checkpoint journal and serve only unfinished work")
	fs.BoolVar(&o.progress, "progress", false, "report per-scenario completion on stderr")
	fs.DurationVar(&o.timeout, "timeout", 0, "abort the run after this duration (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.resume && o.checkpoint == "" {
		fmt.Fprintln(stderr, "sweepd: -resume requires -checkpoint")
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, o.timeout)
	defer cancel()

	b, err := loadBatch(o.file, stdin)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	spec, err := dist.ScenarioSpec(b)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}

	var tickerW io.Writer
	if o.progress {
		tickerW = stderr
	}
	prog := cli.NewProgress("sweepd", "scenarios", tickerW)
	cfg := dist.Config{Units: o.units, LeaseTTL: o.lease, Progress: prog.Hook()}

	if o.checkpoint != "" {
		h := journal.Header{Kind: dist.KindScenarioBatch, BatchSHA256: spec.Hash, N: spec.N}
		jr, done, err := journal.Open(o.checkpoint, h, o.resume)
		if err != nil {
			fmt.Fprintln(stderr, "sweepd:", err)
			return 1
		}
		defer jr.Close()
		if len(done) > 0 {
			fmt.Fprintf(stderr, "sweepd: resuming, %d/%d scenarios already journaled\n", len(done), spec.N)
		}
		cfg.Journal, cfg.Done = jr, done
	}

	c, err := dist.New(ctx, spec, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(stderr, "sweepd:", err)
		return 1
	}
	srv := &http.Server{Handler: c.Handler()}
	defer srv.Close()
	// Serve returns ErrServerClosed when the deferred Close runs; the
	// coordinator's Wait is the run's real verdict.
	go func() { _ = srv.Serve(ln) }()
	fmt.Fprintf(stderr, "sweepd: serving %d scenarios on http://%s\n", spec.N, ln.Addr())

	var writeErr error
	for line := range c.Results() {
		if writeErr != nil {
			continue // post-cancel drain
		}
		if _, err := stdout.Write(append(line, '\n')); err != nil {
			writeErr = err
			cancel()
		}
	}
	err = c.Wait()
	if writeErr != nil {
		// The wait error is the cancellation this function triggered; the
		// write failure (e.g. a broken pipe) is the root cause.
		fmt.Fprintln(stderr, "sweepd:", writeErr)
		return 1
	}
	if err != nil {
		return cli.Report("sweepd", err, prog, stderr)
	}
	return 0
}

// workOptions are the worker flags.
type workOptions struct {
	coordinator string
	id          string
	workers     int
	poll        time.Duration
	progress    bool
	timeout     time.Duration
}

func runWork(ctx context.Context, args []string, _ io.Reader, _, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweepd work", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o workOptions
	fs.StringVar(&o.coordinator, "coordinator", "", "coordinator base URL, e.g. http://host:8080 (required)")
	fs.StringVar(&o.id, "id", "", "worker id (default hostname-pid)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent scenarios within a unit (0 = GOMAXPROCS)")
	fs.DurationVar(&o.poll, "poll", 200*time.Millisecond, "delay between lease attempts when the coordinator has nothing free")
	fs.BoolVar(&o.progress, "progress", false, "report per-unit completion on stderr")
	fs.DurationVar(&o.timeout, "timeout", 0, "stop working after this duration (0 = unbounded)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if o.coordinator == "" {
		fmt.Fprintln(stderr, "sweepd: work requires -coordinator")
		return 2
	}
	if o.id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		o.id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	ctx, cancel := cli.WithTimeout(ctx, o.timeout)
	defer cancel()

	w := &dist.Worker{
		Coordinator: o.coordinator,
		ID:          o.id,
		Exec:        dist.ScenarioExecutor(o.workers),
		Poll:        o.poll,
	}
	if o.progress {
		w.OnUnit = func(u dist.Unit) {
			fmt.Fprintf(stderr, "sweepd: %s finished unit %d (scenarios %d-%d)\n", o.id, u.ID, u.Range.Lo, u.Range.Hi-1)
		}
	}
	if err := w.Run(ctx); err != nil {
		if errors.Is(err, dist.ErrCoordinatorGone) {
			// The serve process exits the moment the last line is emitted;
			// an idle worker discovering that is the normal end of a sweep.
			fmt.Fprintf(stderr, "sweepd: %s: coordinator gone, assuming the sweep ended\n", o.id)
			return 0
		}
		prog := cli.NewProgress("sweepd", "units", nil)
		return cli.Report("sweepd", err, prog, stderr)
	}
	fmt.Fprintf(stderr, "sweepd: %s done\n", o.id)
	return 0
}

// loadBatch reads a scenario document (single config or batch) and returns
// it as a batch — a single config becomes a batch of one, so sweepd serves
// any input `scenario` accepts.
func loadBatch(file string, stdin io.Reader) (scenario.Batch, error) {
	var r io.Reader = stdin
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return scenario.Batch{}, err
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return scenario.Batch{}, err
	}
	if scenario.IsBatch(data) {
		return scenario.LoadBatch(bytes.NewReader(data))
	}
	cfg, err := scenario.Load(bytes.NewReader(data))
	if err != nil {
		return scenario.Batch{}, err
	}
	return scenario.Batch{Scenarios: []scenario.Config{cfg}}, nil
}
