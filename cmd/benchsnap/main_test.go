package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture mimics `go test -bench` output over two packages, including
// sub-benchmarks with slash-separated names, a -benchmem line with
// extra cells, fractional ns/op, and the PASS/ok trailer lines.
const fixture = `goos: linux
goarch: amd64
pkg: repro/internal/profile
cpu: Intel(R) Xeon(R)
BenchmarkAnalyticalVsTraceDriven/per-point/trace-driven-8         	       1	3205000000 ns/op
BenchmarkAnalyticalVsTraceDriven/per-point/analytical-8           	      13	  84000000 ns/op
BenchmarkProfileBuild-8                                           	      28	  40123456 ns/op	 1024 B/op	       3 allocs/op
PASS
ok  	repro/internal/profile	12.3s
goos: linux
goarch: amd64
pkg: repro/internal/sweep
cpu: Intel(R) Xeon(R)
BenchmarkMapOverhead-8   	  123456	      9876.5 ns/op
PASS
ok  	repro/internal/sweep	1.2s
`

func TestParse(t *testing.T) {
	snap, err := parse(strings.NewReader(fixture))
	if err != nil {
		t.Fatal(err)
	}
	if snap.GOOS != "linux" || snap.GOARCH != "amd64" || snap.CPU != "Intel(R) Xeon(R)" {
		t.Errorf("machine context = %q/%q/%q", snap.GOOS, snap.GOARCH, snap.CPU)
	}
	if len(snap.Packages) != 2 {
		t.Fatalf("parsed %d packages, want 2", len(snap.Packages))
	}
	// Packages sort lexically: profile before sweep.
	prof, swp := snap.Packages[0], snap.Packages[1]
	if prof.Pkg != "repro/internal/profile" || swp.Pkg != "repro/internal/sweep" {
		t.Fatalf("package order = %q, %q", prof.Pkg, swp.Pkg)
	}
	if len(prof.Benchmarks) != 3 {
		t.Fatalf("profile has %d benchmarks, want 3", len(prof.Benchmarks))
	}
	// Benchmarks sort by name; sec/op is ns/op scaled by 1e-9.
	want := []struct {
		name string
		sec  float64
	}{
		{"BenchmarkAnalyticalVsTraceDriven/per-point/analytical-8", 0.084},
		{"BenchmarkAnalyticalVsTraceDriven/per-point/trace-driven-8", 3.205},
		{"BenchmarkProfileBuild-8", 0.040123456},
	}
	for i, w := range want {
		b := prof.Benchmarks[i]
		if b.Name != w.name || b.SecPerOp != w.sec {
			t.Errorf("benchmark %d = %q %v, want %q %v", i, b.Name, b.SecPerOp, w.name, w.sec)
		}
	}
	// float64(...) forces float64 multiplication semantics; the untyped
	// constant 9876.5e-9 rounds differently than the runtime product.
	if got, want := swp.Benchmarks[0].SecPerOp, float64(9876.5)*float64(1e-9); got != want {
		t.Errorf("fractional ns/op = %v, want %v", got, want)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkOrphan-8 1 5 ns/op\n")); err == nil {
		t.Error("benchmark line before pkg: header accepted")
	}
}

func TestRunWritesSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-o", path}, strings.NewReader(fixture), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, want 0\n%s", code, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if len(snap.Packages) != 2 {
		t.Errorf("round-tripped %d packages, want 2", len(snap.Packages))
	}

	// No benchmark lines at all is an error — a snapshot of nothing
	// means the bench run itself failed upstream.
	stdout.Reset()
	stderr.Reset()
	if code := run(nil, strings.NewReader("goos: linux\nPASS\n"), &stdout, &stderr); code != 1 {
		t.Errorf("empty input: exit %d, want 1", code)
	}
}
