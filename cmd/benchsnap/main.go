// Command benchsnap turns `go test -bench` output into a committed
// perf snapshot: a stable JSON document recording sec/op per benchmark
// per package, so the repository carries a performance trajectory
// (BENCH_<pr>.json per PR) instead of only the CI gate's pass/fail
// verdict. The snapshot is diffable — packages and benchmarks are
// sorted — and records the machine context (goos/goarch/cpu) the
// numbers were taken on.
//
// Usage:
//
//	go test -bench . -benchtime=1x -run '^$' ./internal/... | benchsnap -o BENCH_6.json
//	benchsnap bench-output.txt
//
// With no -o the snapshot is written to stdout. `make bench-snapshot`
// wires the standard package list to the current snapshot file.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// snapshot is the document layout. Benchmarks are grouped per package
// and sorted by name so regeneration on the same numbers is a no-op
// diff.
type snapshot struct {
	GOOS     string        `json:"goos,omitempty"`
	GOARCH   string        `json:"goarch,omitempty"`
	CPU      string        `json:"cpu,omitempty"`
	Packages []packageSnap `json:"packages"`
}

type packageSnap struct {
	Pkg        string      `json:"pkg"`
	Benchmarks []benchSnap `json:"benchmarks"`
}

type benchSnap struct {
	Name     string  `json:"name"`
	SecPerOp float64 `json:"sec_per_op"`
}

// run is the testable entry point.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchsnap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the snapshot to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	r := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "benchsnap:", err)
			return 2
		}
		defer f.Close()
		r = f
	default:
		fmt.Fprintln(stderr, "benchsnap: at most one input file")
		return 2
	}

	snap, err := parse(r)
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 2
	}
	if len(snap.Packages) == 0 {
		fmt.Fprintln(stderr, "benchsnap: no benchmark result lines in input")
		return 1
	}
	doc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 2
	}
	doc = append(doc, '\n')
	if *out == "" {
		_, err = stdout.Write(doc)
	} else {
		err = os.WriteFile(*out, doc, 0o644)
	}
	if err != nil {
		fmt.Fprintln(stderr, "benchsnap:", err)
		return 2
	}
	return 0
}

// benchRE matches a benchmark result line: the Benchmark name (with the
// -GOMAXPROCS suffix), the iteration count, and the ns/op cell. Extra
// -benchmem cells after ns/op are ignored.
var benchRE = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(\d+(?:\.\d+)?) ns/op`)

// parse scans `go test -bench` output. Result lines are attributed to
// the package named by the most recent "pkg:" header; goos/goarch/cpu
// headers are recorded once (go test repeats them per package on
// multi-package runs — they do not change within one run).
func parse(r io.Reader) (*snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	snap := &snapshot{}
	byPkg := map[string][]benchSnap{}
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			snap.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			snap.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			snap.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		m := benchRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if pkg == "" {
			return nil, fmt.Errorf("benchmark line before any pkg: header: %q", line)
		}
		nsPerOp, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing ns/op in %q: %w", line, err)
		}
		byPkg[pkg] = append(byPkg[pkg], benchSnap{Name: m[1], SecPerOp: nsPerOp * 1e-9})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	pkgs := make([]string, 0, len(byPkg))
	for p := range byPkg {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	for _, p := range pkgs {
		bs := byPkg[p]
		sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
		snap.Packages = append(snap.Packages, packageSnap{Pkg: p, Benchmarks: bs})
	}
	return snap, nil
}
