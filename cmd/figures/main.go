// Command figures regenerates every figure and table of the paper's
// evaluation and writes them as ASCII (stdout) and CSV files. Experiments
// fan out across the sweep engine; output is identical at any worker count.
//
// With -stream, artifacts are emitted as NDJSON (one {"id","ascii","csv"}
// object per line, in registry order, written as each experiment
// completes) instead of the buffered ASCII report — the same frames a
// distributed `sweepd serve -experiments` run emits. With -checkpoint
// (requires -stream), every completed line is also appended to a journal
// keyed by a content hash of the selected artifact set; adding -resume
// replays that journal on startup, skips (and does not re-emit) finished
// experiments, and refuses to resume against a different selection — a
// killed run restarted with the same command line completes exactly the
// remainder. SIGINT/SIGTERM cancel cleanly (partial-progress note on
// stderr, exit 130); -timeout bounds the run the same way.
//
// Usage:
//
//	figures                 # full-scale run (1M accesses per workload)
//	figures -quick          # shorter simulations
//	figures -outdir results # also write one CSV per artifact
//	figures -plot           # include coarse terminal plots for figures
//	figures -only fig2      # compute and print a single artifact
//	figures -only fig1,fig2 # or several (registry order)
//	figures -list           # print artifact IDs without running anything
//	figures -workers 1      # run experiments one at a time
//	figures -quick -stream  # NDJSON artifact stream on stdout
//	figures -stream -checkpoint run.journal -resume   # crash-tolerant run
//	figures -progress       # per-experiment completion ticker on stderr
//	figures -timeout 30m    # bound the whole run
//	figures -metrics-addr 127.0.0.1:9090   # /metrics + /debug/pprof while running
//
// Every run (except -list) emits a one-line JSON manifest to stderr when
// it ends — batch hash, item counts, wall time, items/sec, outcome — so a
// run can be diagnosed after the fact from its captured stderr.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/work"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: context, flags and IO come from the
// caller and the exit status is returned instead of calling os.Exit.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick       = fs.Bool("quick", false, "use shorter workload simulations")
		accesses    = fs.Int("accesses", 0, "override the trace length per (workload, L1 size) simulation (0 = profile default)")
		fidelity    = fs.String("fidelity", "", `miss-matrix fidelity: "trace" (simulate, the default) or "analytical" (stack-distance fast path)`)
		outdir      = fs.String("outdir", "", "directory for CSV output (created if missing)")
		plot        = fs.Bool("plot", false, "render coarse ASCII plots for figures")
		only        = fs.String("only", "", "run only the artifacts with these comma-separated IDs")
		list        = fs.Bool("list", false, "list artifact IDs and exit")
		ext         = fs.Bool("ext", false, "also run the extension/ablation experiments")
		workers     = fs.Int("workers", 0, "concurrent experiments (0 = GOMAXPROCS, 1 = one at a time)")
		stream      = fs.Bool("stream", false, "emit artifacts as NDJSON, one line per experiment as it completes")
		checkpoint  = fs.String("checkpoint", "", "journal completed artifacts to this file (requires -stream)")
		resume      = fs.Bool("resume", false, "replay the -checkpoint journal and run only unfinished experiments")
		progress    = fs.Bool("progress", false, "report per-experiment completion on stderr")
		timeout     = fs.Duration("timeout", 0, "abort the run after this duration (0 = unbounded)")
		metricsAddr = fs.String("metrics-addr", "", "serve /metrics and /debug/pprof on this address for the run's duration (e.g. 127.0.0.1:9090; empty = off)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case !profile.ValidFidelity(*fidelity):
		fmt.Fprintf(stderr, "figures: unknown -fidelity %q (want %q or %q)\n",
			*fidelity, profile.FidelityTrace, profile.FidelityAnalytical)
		return 2
	case *resume && *checkpoint == "":
		fmt.Fprintln(stderr, "figures: -resume requires -checkpoint")
		return 2
	case *checkpoint != "" && !*stream:
		fmt.Fprintln(stderr, "figures: -checkpoint requires -stream (the journal records NDJSON lines)")
		return 2
	case *checkpoint != "" && *ext:
		fmt.Fprintln(stderr, "figures: -checkpoint does not cover -ext artifacts (they are outside the registry batch)")
		return 2
	case *stream && *plot:
		// ASCII plots have no NDJSON field; refuse rather than drop
		// them silently.
		fmt.Fprintln(stderr, "figures: -plot is not available with -stream (the ascii field carries the table form)")
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	exps := exp.Experiments()
	if *list {
		for _, x := range exps {
			fmt.Fprintln(stdout, x.ID)
		}
		return 0
	}
	var onlyIDs []string
	onlySet := make(map[string]bool)
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(id); id != "" {
			onlyIDs = append(onlyIDs, id)
			onlySet[id] = true
		}
	}
	if len(onlySet) > 0 {
		var sel []exp.Experiment
		matched := make(map[string]bool)
		for _, x := range exps {
			if onlySet[x.ID] {
				sel = append(sel, x)
				matched[x.ID] = true
			}
		}
		// Extension artifacts are not in the registry; with -ext an ID may
		// still match one of them, so unmatched IDs are only fatal when
		// extensions are off. Every ID is checked: silently dropping one
		// typo'd entry of a multi-ID selection would under-run the request
		// (and, with -checkpoint, pin the reduced selection into the
		// journal hash).
		if !*ext {
			for _, id := range onlyIDs {
				if !matched[id] {
					fmt.Fprintf(stderr, "figures: unknown artifact ID %q (try -list)\n", id)
					return 1
				}
			}
		}
		exps = sel
	}

	env := exp.NewEnv()
	if *quick {
		env = exp.NewQuickEnv()
	}
	if *accesses > 0 {
		env.Accesses = *accesses
	}
	env.Fidelity = *fidelity
	env.Workers = *workers
	var tickerW io.Writer
	if *progress {
		tickerW = stderr
	}
	prog := cli.NewProgress("figures", "experiments", tickerW)
	env.Progress = prog.Hook()

	// Skip the extension bundle when -only already matched a registry
	// artifact: extensions are built all-or-nothing, and computing them
	// just to filter their output away defeats -only's purpose.
	if *ext && len(onlySet) > 0 && len(exps) > 0 {
		*ext = false
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
	}
	var reg *obs.Registry
	if *metricsAddr != "" {
		reg = obs.NewRegistry()
		maddr, stopMetrics, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stderr, "figures: metrics on http://%s/metrics\n", maddr)
	}

	start := time.Now()
	man := cli.Manifest{Tool: "figures", Fidelity: *fidelity, Items: len(exps), ItemsRun: len(exps)}
	var runErr error
	defer func() {
		man.Finish(start, nil, runErr)
		cli.EmitManifest(stderr, man)
	}()
	if *stream {
		so := streamOpts{outdir: *outdir, ext: *ext, checkpoint: *checkpoint, resume: *resume, workers: *workers, metrics: reg}
		code, err := runStream(ctx, env, exps, so, prog, stdout, stderr, start, &man)
		runErr = err
		return code
	}

	arts, err := env.RunExperimentsCtx(ctx, exps)
	if err != nil {
		runErr = err
		return cli.Report("figures", err, prog, stderr)
	}
	if *ext {
		extra, err := env.ExtensionsCtx(ctx)
		if err != nil {
			runErr = err
			return cli.Report("figures", err, prog, stderr)
		}
		arts = append(arts, extra...)
		man.Items += len(extra)
		man.ItemsRun += len(extra)
	}

	printed := 0
	for _, a := range arts {
		if len(onlySet) > 0 && !onlySet[a.ID] {
			continue
		}
		printed++
		fmt.Fprintln(stdout, a.Render())
		if *plot && a.Figure != nil {
			fmt.Fprintln(stdout, a.Figure.Plot(72, 24))
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, a.ID+".csv")
			if err := os.WriteFile(path, []byte(a.CSV()), 0o644); err != nil {
				fmt.Fprintln(stderr, "figures:", err)
				return 1
			}
			fmt.Fprintf(stdout, "  [wrote %s]\n\n", path)
		}
	}
	if len(onlySet) > 0 && printed == 0 {
		fmt.Fprintf(stderr, "figures: unknown artifact ID %q (try -list)\n", *only)
		return 1
	}
	fmt.Fprintf(stdout, "regenerated %d artifacts in %v\n", printed, time.Since(start).Round(time.Millisecond))
	return 0
}

// streamOpts carries the flags runStream honors alongside the NDJSON
// lines.
type streamOpts struct {
	outdir     string // also write one CSV per artifact, as in buffered mode
	ext        bool   // stream the extension bundle after the registry
	checkpoint string // journal path ("" = no checkpointing)
	resume     bool   // replay the journal before running
	workers    int    // driver fan-out

	// metrics, non-nil when -metrics-addr serves a registry, is handed to
	// the work driver so the debug listener exposes live run metrics.
	metrics *obs.Registry
}

// runStream emits artifacts as NDJSON on stdout as they complete, keeping
// stdout machine-consumable (the run summary goes to stderr). The
// selection runs as an experiment work batch through the unified driver,
// which owns ordering, backpressure, and — with so.checkpoint — the
// journal-before-emit crash recovery shared with `scenario -checkpoint`
// and `sweepd serve -checkpoint`. A write error (e.g. a broken pipe)
// cancels the remaining experiments. With so.ext the extension artifacts
// follow the registry stream, in bundle order; with so.outdir each
// artifact's CSV is also written as it lands. man is the run's manifest,
// filled with the batch identity and resume split as they become known
// (the caller emits it); the returned error is the run's fatal error for
// the manifest outcome, nil on success.
func runStream(ctx context.Context, env *exp.Env, exps []exp.Experiment, so streamOpts, prog *cli.Progress, stdout, stderr io.Writer, start time.Time, man *cli.Manifest) (int, error) {
	sink := &artifactSink{w: stdout, outdir: so.outdir}
	if len(exps) > 0 {
		ids := make([]string, len(exps))
		for i, x := range exps {
			ids[i] = x.ID
		}
		wb, err := exp.NewBatch(ids, env)
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1, err
		}
		man.Kind = wb.Kind()
		if hash, err := wb.Hash(); err == nil {
			man.BatchSHA256 = hash
		}
		opts := work.Options{Workers: so.workers, Progress: prog.Hook(), Metrics: so.metrics}
		if so.checkpoint != "" {
			jr, done, err := work.OpenJournal(so.checkpoint, wb, so.resume)
			if err != nil {
				fmt.Fprintln(stderr, "figures:", err)
				return 1, err
			}
			defer jr.Close()
			if len(done) > 0 {
				fmt.Fprintf(stderr, "figures: resuming, %d/%d experiments already journaled\n", len(done), wb.Len())
				// Re-write the replayed artifacts' CSV sidecars: the crash
				// may have landed between the journal append and the
				// sidecar write, and a resumed run never re-runs those
				// indices — the journal line is the only place the CSV
				// still exists.
				if so.outdir != "" {
					idx := make([]int, 0, len(done))
					for i := range done {
						idx = append(idx, i)
					}
					sort.Ints(idx)
					for _, i := range idx {
						if err := writeSidecar(so.outdir, done[i]); err != nil {
							fmt.Fprintln(stderr, "figures:", err)
							return 1, err
						}
					}
				}
			}
			opts.Journal, opts.Done = jr, done
			man.ItemsResumed = len(done)
			man.ItemsRun = wb.Len() - len(done)
		}
		if err := work.Run(ctx, wb, opts, sink); err != nil {
			return cli.Report("figures", err, prog, stderr), err
		}
	}
	if so.ext {
		extra, err := env.ExtensionsCtx(ctx)
		if err != nil {
			return cli.Report("figures", err, prog, stderr), err
		}
		man.Items += len(extra)
		man.ItemsRun += len(extra)
		for _, a := range extra {
			line, err := a.NDJSONLine()
			if err == nil {
				_, err = sink.Write(append(line, '\n'))
			}
			if err != nil {
				fmt.Fprintln(stderr, "figures:", err)
				return 1, err
			}
		}
	}
	fmt.Fprintf(stderr, "figures: streamed %d artifacts in %v\n", sink.count, time.Since(start).Round(time.Millisecond))
	return 0, nil
}

// artifactSink is the stream's sink: it forwards each NDJSON line to
// stdout, counts emissions for the run summary, and (with outdir) writes
// each artifact's CSV sidecar as its line lands, as buffered mode does.
// The driver hands it exactly one line per Write.
type artifactSink struct {
	w      io.Writer
	outdir string
	count  int
}

func (s *artifactSink) Write(p []byte) (int, error) {
	n, err := s.w.Write(p)
	if err != nil {
		return n, err
	}
	s.count++
	if s.outdir != "" {
		if err := writeSidecar(s.outdir, p); err != nil {
			return n, err
		}
	}
	return n, nil
}

// writeSidecar writes one artifact line's CSV file into outdir.
func writeSidecar(outdir string, line []byte) error {
	var l exp.Line
	if err := json.Unmarshal(line, &l); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(outdir, l.ID+".csv"), []byte(l.CSV), 0o644)
}
