// Command figures regenerates every figure and table of the paper's
// evaluation and writes them as ASCII (stdout) and CSV files.
//
// Usage:
//
//	figures                 # full-scale run (1M accesses per workload)
//	figures -quick          # shorter simulations
//	figures -outdir results # also write one CSV per artifact
//	figures -plot           # include coarse terminal plots for figures
//	figures -only fig2      # run a single artifact
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		quick  = flag.Bool("quick", false, "use shorter workload simulations")
		outdir = flag.String("outdir", "", "directory for CSV output (created if missing)")
		plot   = flag.Bool("plot", false, "render coarse ASCII plots for figures")
		only   = flag.String("only", "", "run only the artifact with this ID")
		ext    = flag.Bool("ext", false, "also run the extension/ablation experiments")
	)
	flag.Parse()

	env := exp.NewEnv()
	if *quick {
		env = exp.NewQuickEnv()
	}

	start := time.Now()
	arts, err := env.All()
	if err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	if *ext {
		extra, err := env.Extensions()
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		arts = append(arts, extra...)
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
	}

	for _, a := range arts {
		if *only != "" && a.ID != *only {
			continue
		}
		fmt.Println(a.Render())
		if *plot && a.Figure != nil {
			fmt.Println(a.Figure.Plot(72, 24))
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, a.ID+".csv")
			if err := os.WriteFile(path, []byte(a.CSV()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "figures:", err)
				os.Exit(1)
			}
			fmt.Printf("  [wrote %s]\n\n", path)
		}
	}
	fmt.Printf("regenerated %d artifacts in %v\n", len(arts), time.Since(start).Round(time.Millisecond))
}
