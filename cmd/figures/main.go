// Command figures regenerates every figure and table of the paper's
// evaluation and writes them as ASCII (stdout) and CSV files. Experiments
// fan out across the sweep engine; output is identical at any worker count.
//
// Usage:
//
//	figures                 # full-scale run (1M accesses per workload)
//	figures -quick          # shorter simulations
//	figures -outdir results # also write one CSV per artifact
//	figures -plot           # include coarse terminal plots for figures
//	figures -only fig2      # compute and print a single artifact
//	figures -list           # print artifact IDs without running anything
//	figures -workers 1      # run experiments one at a time
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: flags and IO come from the caller and
// the exit status is returned instead of calling os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick   = fs.Bool("quick", false, "use shorter workload simulations")
		outdir  = fs.String("outdir", "", "directory for CSV output (created if missing)")
		plot    = fs.Bool("plot", false, "render coarse ASCII plots for figures")
		only    = fs.String("only", "", "run only the artifact with this ID")
		list    = fs.Bool("list", false, "list artifact IDs and exit")
		ext     = fs.Bool("ext", false, "also run the extension/ablation experiments")
		workers = fs.Int("workers", 0, "concurrent experiments (0 = GOMAXPROCS, 1 = one at a time)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	exps := exp.Experiments()
	if *list {
		for _, x := range exps {
			fmt.Fprintln(stdout, x.ID)
		}
		return 0
	}
	if *only != "" {
		var sel []exp.Experiment
		for _, x := range exps {
			if x.ID == *only {
				sel = append(sel, x)
			}
		}
		// Extension artifacts are not in the registry; with -ext the ID may
		// still match one of them, so an empty selection is only fatal when
		// extensions are off.
		if len(sel) == 0 && !*ext {
			fmt.Fprintf(stderr, "figures: unknown artifact ID %q (try -list)\n", *only)
			return 1
		}
		exps = sel
	}

	env := exp.NewEnv()
	if *quick {
		env = exp.NewQuickEnv()
	}
	env.Workers = *workers

	start := time.Now()
	arts, err := env.RunExperiments(exps)
	if err != nil {
		fmt.Fprintln(stderr, "figures:", err)
		return 1
	}
	// Skip the extension bundle when -only already matched a registry
	// artifact: extensions are built all-or-nothing, and computing them
	// just to filter their output away defeats -only's purpose.
	if *ext && *only != "" && len(exps) > 0 {
		*ext = false
	}
	if *ext {
		extra, err := env.Extensions()
		if err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
		arts = append(arts, extra...)
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
	}

	printed := 0
	for _, a := range arts {
		if *only != "" && a.ID != *only {
			continue
		}
		printed++
		fmt.Fprintln(stdout, a.Render())
		if *plot && a.Figure != nil {
			fmt.Fprintln(stdout, a.Figure.Plot(72, 24))
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, a.ID+".csv")
			if err := os.WriteFile(path, []byte(a.CSV()), 0o644); err != nil {
				fmt.Fprintln(stderr, "figures:", err)
				return 1
			}
			fmt.Fprintf(stdout, "  [wrote %s]\n\n", path)
		}
	}
	if *only != "" && printed == 0 {
		fmt.Fprintf(stderr, "figures: unknown artifact ID %q (try -list)\n", *only)
		return 1
	}
	fmt.Fprintf(stdout, "regenerated %d artifacts in %v\n", printed, time.Since(start).Round(time.Millisecond))
	return 0
}
