// Command figures regenerates every figure and table of the paper's
// evaluation and writes them as ASCII (stdout) and CSV files. Experiments
// fan out across the sweep engine; output is identical at any worker count.
//
// With -stream, artifacts are emitted as NDJSON (one {"id","ascii","csv"}
// object per line, in registry order, written as each experiment
// completes) instead of the buffered ASCII report. SIGINT/SIGTERM cancel
// cleanly (partial-progress note on stderr, exit 130); -timeout bounds the
// run the same way.
//
// Usage:
//
//	figures                 # full-scale run (1M accesses per workload)
//	figures -quick          # shorter simulations
//	figures -outdir results # also write one CSV per artifact
//	figures -plot           # include coarse terminal plots for figures
//	figures -only fig2      # compute and print a single artifact
//	figures -list           # print artifact IDs without running anything
//	figures -workers 1      # run experiments one at a time
//	figures -quick -stream  # NDJSON artifact stream on stdout
//	figures -progress       # per-experiment completion ticker on stderr
//	figures -timeout 30m    # bound the whole run
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/cli"
	"repro/internal/exp"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// streamLine is the NDJSON shape of one artifact in -stream mode.
type streamLine struct {
	ID    string `json:"id"`
	ASCII string `json:"ascii"`
	CSV   string `json:"csv"`
}

// run is the testable entry point: context, flags and IO come from the
// caller and the exit status is returned instead of calling os.Exit.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		quick    = fs.Bool("quick", false, "use shorter workload simulations")
		outdir   = fs.String("outdir", "", "directory for CSV output (created if missing)")
		plot     = fs.Bool("plot", false, "render coarse ASCII plots for figures")
		only     = fs.String("only", "", "run only the artifact with this ID")
		list     = fs.Bool("list", false, "list artifact IDs and exit")
		ext      = fs.Bool("ext", false, "also run the extension/ablation experiments")
		workers  = fs.Int("workers", 0, "concurrent experiments (0 = GOMAXPROCS, 1 = one at a time)")
		stream   = fs.Bool("stream", false, "emit artifacts as NDJSON, one line per experiment as it completes")
		progress = fs.Bool("progress", false, "report per-experiment completion on stderr")
		timeout  = fs.Duration("timeout", 0, "abort the run after this duration (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	exps := exp.Experiments()
	if *list {
		for _, x := range exps {
			fmt.Fprintln(stdout, x.ID)
		}
		return 0
	}
	if *only != "" {
		var sel []exp.Experiment
		for _, x := range exps {
			if x.ID == *only {
				sel = append(sel, x)
			}
		}
		// Extension artifacts are not in the registry; with -ext the ID may
		// still match one of them, so an empty selection is only fatal when
		// extensions are off.
		if len(sel) == 0 && !*ext {
			fmt.Fprintf(stderr, "figures: unknown artifact ID %q (try -list)\n", *only)
			return 1
		}
		exps = sel
	}

	env := exp.NewEnv()
	if *quick {
		env = exp.NewQuickEnv()
	}
	env.Workers = *workers
	var tickerW io.Writer
	if *progress {
		tickerW = stderr
	}
	prog := cli.NewProgress("figures", "experiments", tickerW)
	env.Progress = prog.Hook()

	// Skip the extension bundle when -only already matched a registry
	// artifact: extensions are built all-or-nothing, and computing them
	// just to filter their output away defeats -only's purpose.
	if *ext && *only != "" && len(exps) > 0 {
		*ext = false
	}
	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fmt.Fprintln(stderr, "figures:", err)
			return 1
		}
	}

	start := time.Now()
	if *stream {
		if *plot {
			// ASCII plots have no NDJSON field; refuse rather than drop
			// them silently.
			fmt.Fprintln(stderr, "figures: -plot is not available with -stream (the ascii field carries the table form)")
			return 2
		}
		return runStream(ctx, env, exps, streamOpts{outdir: *outdir, ext: *ext}, prog, stdout, stderr, start)
	}

	arts, err := env.RunExperimentsCtx(ctx, exps)
	if err != nil {
		return cli.Report("figures", err, prog, stderr)
	}
	if *ext {
		extra, err := env.ExtensionsCtx(ctx)
		if err != nil {
			return cli.Report("figures", err, prog, stderr)
		}
		arts = append(arts, extra...)
	}

	printed := 0
	for _, a := range arts {
		if *only != "" && a.ID != *only {
			continue
		}
		printed++
		fmt.Fprintln(stdout, a.Render())
		if *plot && a.Figure != nil {
			fmt.Fprintln(stdout, a.Figure.Plot(72, 24))
		}
		if *outdir != "" {
			path := filepath.Join(*outdir, a.ID+".csv")
			if err := os.WriteFile(path, []byte(a.CSV()), 0o644); err != nil {
				fmt.Fprintln(stderr, "figures:", err)
				return 1
			}
			fmt.Fprintf(stdout, "  [wrote %s]\n\n", path)
		}
	}
	if *only != "" && printed == 0 {
		fmt.Fprintf(stderr, "figures: unknown artifact ID %q (try -list)\n", *only)
		return 1
	}
	fmt.Fprintf(stdout, "regenerated %d artifacts in %v\n", printed, time.Since(start).Round(time.Millisecond))
	return 0
}

// streamOpts carries the display flags runStream honors alongside the
// NDJSON lines.
type streamOpts struct {
	outdir string // also write one CSV per artifact, as in buffered mode
	ext    bool   // stream the extension bundle after the registry
}

// runStream emits artifacts as NDJSON on stdout as they complete, keeping
// stdout machine-consumable (the run summary goes to stderr). A write
// error (e.g. a broken pipe) cancels the remaining experiments. With
// so.ext the extension artifacts follow the registry stream, in bundle
// order; with so.outdir each artifact's CSV is also written as it lands.
func runStream(ctx context.Context, env *exp.Env, exps []exp.Experiment, so streamOpts, prog *cli.Progress, stdout, stderr io.Writer, start time.Time) int {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	enc := json.NewEncoder(stdout)
	emitted := 0
	var emitErr error
	emit := func(a exp.Artifact) {
		if emitErr != nil {
			return
		}
		if emitErr = enc.Encode(streamLine{ID: a.ID, ASCII: a.Render(), CSV: a.CSV()}); emitErr != nil {
			cancel()
			return
		}
		emitted++
		if so.outdir != "" {
			path := filepath.Join(so.outdir, a.ID+".csv")
			if emitErr = os.WriteFile(path, []byte(a.CSV()), 0o644); emitErr != nil {
				cancel()
			}
		}
	}

	ch, wait := env.StreamExperiments(ctx, exps)
	for a := range ch {
		emit(a) // after an emit error this is the post-cancel drain
	}
	err := wait()
	if emitErr != nil {
		fmt.Fprintln(stderr, "figures:", emitErr)
		return 1
	}
	if err != nil {
		return cli.Report("figures", err, prog, stderr)
	}
	if so.ext {
		extra, err := env.ExtensionsCtx(ctx)
		if err != nil {
			return cli.Report("figures", err, prog, stderr)
		}
		for _, a := range extra {
			emit(a)
		}
		if emitErr != nil {
			fmt.Fprintln(stderr, "figures:", emitErr)
			return 1
		}
	}
	fmt.Fprintf(stderr, "figures: streamed %d artifacts in %v\n", emitted, time.Since(start).Round(time.Millisecond))
	return 0
}
