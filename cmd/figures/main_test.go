package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/exp"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	ids := strings.Fields(stdout.String())
	if len(ids) != 12 {
		t.Fatalf("want 12 artifact IDs, got %d: %v", len(ids), ids)
	}
	for _, want := range []string{"fig1", "fig2", "tab-schemes", "tab-l2-single", "tab-fit"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("artifact %q missing from -list output", want)
		}
	}
}

func TestRunOnlyUnknownID(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-only", "fig99"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown ID: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Errorf("diagnostic does not name the bad ID: %q", stderr.String())
	}
	// A typo'd entry of a multi-ID selection must fail too, even though
	// the other entries match — silently dropping it would under-run the
	// request.
	stderr.Reset()
	if code := run(t.Context(), []string{"-only", "tab-fit,tab-missrate"}, &stdout, &stderr); code != 1 {
		t.Fatalf("partially unknown selection: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), `"tab-missrate"`) {
		t.Errorf("diagnostic does not name the bad ID: %q", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestRunStreamSingleArtifact checks -stream emits valid NDJSON for the
// cheapest registry artifact and keeps the run summary off stdout.
func TestRunStreamSingleArtifact(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-quick", "-only", "tab-fit", "-stream"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 NDJSON line, got %d", len(lines))
	}
	var got exp.Line
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("stream line is not JSON: %v\n%s", err, lines[0])
	}
	if got.ID != "tab-fit" || !strings.Contains(got.ASCII, "tab-fit") || got.CSV == "" {
		t.Errorf("unexpected stream line: %+v", got)
	}
	if !strings.Contains(stderr.String(), "streamed 1 artifacts") {
		t.Errorf("run summary missing from stderr: %q", stderr.String())
	}
}

// TestRunCancelled checks a cancelled run exits 130 with a diagnostic.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-quick", "-only", "tab-fit"}, &stdout, &stderr)
	if code != cli.ExitCancelled {
		t.Fatalf("cancelled run: exit %d, want %d (stderr: %s)", code, cli.ExitCancelled, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Errorf("no cancellation diagnostic: %q", stderr.String())
	}
}

// TestRunTimeout checks -timeout bounds the run with a non-zero exit.
func TestRunTimeout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-timeout", "1ms"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("timed-out run: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "timed out") {
		t.Errorf("no timeout diagnostic: %q", stderr.String())
	}
}

// tinyStreamArgs selects two cheap artifacts at a tiny trace length —
// fast enough to run the stream pipeline repeatedly.
var tinyStreamArgs = []string{"-quick", "-accesses", "20000", "-only", "tab-fit,tab-missrates", "-stream"}

// TestRunCheckpointResume simulates the kill/restart cycle for figures,
// mirroring cmd/scenario's: a checkpointed run whose journal is cut back
// to one completed artifact (with a torn second entry, as a kill
// mid-append leaves) is restarted with -resume; the restarted run
// re-emits nothing already journaled, completes the remainder, and
// prefix + remainder equals the uncheckpointed stream.
func TestRunCheckpointResume(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "figures.journal")

	// Reference: the full stream, no checkpointing.
	var full bytes.Buffer
	if code := run(t.Context(), tinyStreamArgs, &full, &bytes.Buffer{}); code != 0 {
		t.Fatalf("reference run: exit %d", code)
	}
	lines := strings.SplitAfter(full.String(), "\n")
	if len(lines) != 3 || lines[2] != "" {
		t.Fatalf("reference run produced %d lines", len(lines)-1)
	}

	// First checkpointed run (completes everything, byte-identically).
	args := append(append([]string{}, tinyStreamArgs...), "-checkpoint", jpath)
	var first bytes.Buffer
	if code := run(t.Context(), args, &first, &bytes.Buffer{}); code != 0 {
		t.Fatalf("checkpointed run: exit %d", code)
	}
	if first.String() != full.String() {
		t.Errorf("checkpointed output differs from plain stream:\n got: %q\nwant: %q", first.String(), full.String())
	}

	// Simulate the kill: journal keeps its header and first entry plus a
	// torn second entry.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.SplitAfter(string(data), "\n")
	torn := jlines[0] + jlines[1] + `{"i":1,"line":{"id":"tab`
	if err := os.WriteFile(jpath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart with -resume (and -outdir): nothing journaled is re-emitted,
	// and the replayed artifact's CSV sidecar is regenerated from the
	// journal line — the crash may have landed before the sidecar write,
	// and the resumed run never re-runs that index.
	outdir := t.TempDir()
	var resumed, stderr bytes.Buffer
	code := run(t.Context(), append(append([]string{}, args...), "-resume", "-outdir", outdir), &resumed, &stderr)
	if code != 0 {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, stderr.String())
	}
	if want := lines[1]; resumed.String() != want {
		t.Errorf("resumed run must emit exactly the remainder:\n got: %q\nwant: %q", resumed.String(), want)
	}
	if !strings.Contains(stderr.String(), "resuming, 1/2 experiments already journaled") {
		t.Errorf("missing resume diagnostic: %q", stderr.String())
	}
	for _, id := range []string{"tab-missrates", "tab-fit"} {
		if _, err := os.Stat(filepath.Join(outdir, id+".csv")); err != nil {
			t.Errorf("resumed run must leave a complete sidecar set: %v", err)
		}
	}

	// A second resume has nothing left to do and emits nothing.
	var empty bytes.Buffer
	if code := run(t.Context(), append(append([]string{}, args...), "-resume"), &empty, &bytes.Buffer{}); code != 0 {
		t.Fatalf("no-op resume: exit %d", code)
	}
	if empty.Len() != 0 {
		t.Errorf("fully journaled selection re-emitted %q", empty.String())
	}
}

// TestRunResumeRefusesDifferentSelection pins the safety check: resuming a
// journal against a different artifact selection fails loudly.
func TestRunResumeRefusesDifferentSelection(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "figures.journal")
	seed := []string{"-quick", "-accesses", "20000", "-only", "tab-fit", "-stream", "-checkpoint", jpath}
	if code := run(t.Context(), seed, &bytes.Buffer{}, &bytes.Buffer{}); code != 0 {
		t.Fatal("seed run failed")
	}
	other := []string{"-quick", "-accesses", "20000", "-only", "tab-missrates", "-stream", "-checkpoint", jpath, "-resume"}
	var stderr bytes.Buffer
	if code := run(t.Context(), other, &bytes.Buffer{}, &stderr); code != 1 {
		t.Fatalf("mismatched resume: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "batch hash mismatch") {
		t.Errorf("missing hash-mismatch diagnostic: %q", stderr.String())
	}
}

// TestRunCheckpointFlagValidation pins the flag contract.
func TestRunCheckpointFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(t.Context(), []string{"-resume"}, &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("-resume without -checkpoint: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(t.Context(), []string{"-checkpoint", "x.journal"}, &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("-checkpoint without -stream: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(t.Context(), []string{"-stream", "-ext", "-checkpoint", "x.journal"}, &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("-checkpoint with -ext: exit %d, want 2", code)
	}
}

// TestRunOnlyMultipleIDs checks a comma-separated -only selects several
// artifacts in registry order.
func TestRunOnlyMultipleIDs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), tinyStreamArgs, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d", len(lines))
	}
	var first, second exp.Line
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	// Registry order, not flag order: tab-missrates precedes tab-fit.
	if first.ID != "tab-missrates" || second.ID != "tab-fit" {
		t.Errorf("stream order = %s, %s; want tab-missrates, tab-fit", first.ID, second.ID)
	}
}

// TestRunSingleArtifact exercises the compute path end to end on the
// cheapest registry entry (tab-fit needs only the two fitted models, no
// workload simulation) and checks both ASCII and CSV outputs.
func TestRunSingleArtifact(t *testing.T) {
	outdir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-quick", "-only", "tab-fit", "-outdir", outdir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "tab-fit") || !strings.Contains(out, "regenerated 1 artifacts") {
		t.Errorf("unexpected output:\n%s", out)
	}
	f, err := os.Open(filepath.Join(outdir, "tab-fit.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("CSV output unparsable: %v", err)
	}
	if len(recs) < 2 || recs[0][0] != "cache" {
		t.Errorf("unexpected CSV: %v", recs)
	}
}

// TestRunMetricsAddrAndManifest pins the observability contract of a
// stream run: -metrics-addr announces its listener on stderr without
// changing a byte of stdout, and the run ends with a one-line manifest
// carrying the batch identity and counts.
func TestRunMetricsAddrAndManifest(t *testing.T) {
	var base bytes.Buffer
	if code := run(t.Context(), tinyStreamArgs, &base, &bytes.Buffer{}); code != 0 {
		t.Fatalf("baseline run: exit %d", code)
	}

	var stdout, stderr bytes.Buffer
	code := run(t.Context(), append(append([]string{}, tinyStreamArgs...), "-metrics-addr", "127.0.0.1:0"), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != base.String() {
		t.Errorf("stdout changed with -metrics-addr:\n got: %q\nwant: %q", stdout.String(), base.String())
	}
	if !strings.Contains(stderr.String(), "figures: metrics on http://") {
		t.Errorf("no metrics listener announcement on stderr: %q", stderr.String())
	}
	var man cli.Manifest
	found := false
	for _, line := range strings.Split(stderr.String(), "\n") {
		if strings.HasPrefix(line, `{"manifest":`) {
			var wrap struct {
				Manifest cli.Manifest `json:"manifest"`
			}
			if err := json.Unmarshal([]byte(line), &wrap); err != nil {
				t.Fatalf("manifest line does not parse: %v\n%s", err, line)
			}
			man, found = wrap.Manifest, true
		}
	}
	if !found {
		t.Fatalf("no manifest line on stderr:\n%s", stderr.String())
	}
	switch {
	case man.Tool != "figures":
		t.Errorf("manifest tool %q, want figures", man.Tool)
	case man.Kind == "" || man.BatchSHA256 == "":
		t.Errorf("manifest misses the batch identity: %+v", man)
	case man.Items != 2 || man.ItemsRun != 2:
		t.Errorf("manifest counts: %+v", man)
	case man.Outcome != "ok":
		t.Errorf("manifest outcome %q, want ok", man.Outcome)
	}
}
