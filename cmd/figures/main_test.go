package main

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	ids := strings.Fields(stdout.String())
	if len(ids) != 12 {
		t.Fatalf("want 12 artifact IDs, got %d: %v", len(ids), ids)
	}
	for _, want := range []string{"fig1", "fig2", "tab-schemes", "tab-l2-single", "tab-fit"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("artifact %q missing from -list output", want)
		}
	}
}

func TestRunOnlyUnknownID(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-only", "fig99"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown ID: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Errorf("diagnostic does not name the bad ID: %q", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestRunStreamSingleArtifact checks -stream emits valid NDJSON for the
// cheapest registry artifact and keeps the run summary off stdout.
func TestRunStreamSingleArtifact(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-quick", "-only", "tab-fit", "-stream"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("want 1 NDJSON line, got %d", len(lines))
	}
	var got streamLine
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatalf("stream line is not JSON: %v\n%s", err, lines[0])
	}
	if got.ID != "tab-fit" || !strings.Contains(got.ASCII, "tab-fit") || got.CSV == "" {
		t.Errorf("unexpected stream line: %+v", got)
	}
	if !strings.Contains(stderr.String(), "streamed 1 artifacts") {
		t.Errorf("run summary missing from stderr: %q", stderr.String())
	}
}

// TestRunCancelled checks a cancelled run exits 130 with a diagnostic.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var stdout, stderr bytes.Buffer
	code := run(ctx, []string{"-quick", "-only", "tab-fit"}, &stdout, &stderr)
	if code != cli.ExitCancelled {
		t.Fatalf("cancelled run: exit %d, want %d (stderr: %s)", code, cli.ExitCancelled, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Errorf("no cancellation diagnostic: %q", stderr.String())
	}
}

// TestRunTimeout checks -timeout bounds the run with a non-zero exit.
func TestRunTimeout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-timeout", "1ms"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("timed-out run: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "timed out") {
		t.Errorf("no timeout diagnostic: %q", stderr.String())
	}
}

// TestRunSingleArtifact exercises the compute path end to end on the
// cheapest registry entry (tab-fit needs only the two fitted models, no
// workload simulation) and checks both ASCII and CSV outputs.
func TestRunSingleArtifact(t *testing.T) {
	outdir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-quick", "-only", "tab-fit", "-outdir", outdir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "tab-fit") || !strings.Contains(out, "regenerated 1 artifacts") {
		t.Errorf("unexpected output:\n%s", out)
	}
	f, err := os.Open(filepath.Join(outdir, "tab-fit.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("CSV output unparsable: %v", err)
	}
	if len(recs) < 2 || recs[0][0] != "cache" {
		t.Errorf("unexpected CSV: %v", recs)
	}
}
