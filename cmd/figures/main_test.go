package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	ids := strings.Fields(stdout.String())
	if len(ids) != 12 {
		t.Fatalf("want 12 artifact IDs, got %d: %v", len(ids), ids)
	}
	for _, want := range []string{"fig1", "fig2", "tab-schemes", "tab-l2-single", "tab-fit"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("artifact %q missing from -list output", want)
		}
	}
}

func TestRunOnlyUnknownID(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-only", "fig99"}, &stdout, &stderr); code != 1 {
		t.Fatalf("unknown ID: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "fig99") {
		t.Errorf("diagnostic does not name the bad ID: %q", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-nope"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// TestRunSingleArtifact exercises the compute path end to end on the
// cheapest registry entry (tab-fit needs only the two fitted models, no
// workload simulation) and checks both ASCII and CSV outputs.
func TestRunSingleArtifact(t *testing.T) {
	outdir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run([]string{"-quick", "-only", "tab-fit", "-outdir", outdir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "tab-fit") || !strings.Contains(out, "regenerated 1 artifacts") {
		t.Errorf("unexpected output:\n%s", out)
	}
	f, err := os.Open(filepath.Join(outdir, "tab-fit.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("CSV output unparsable: %v", err)
	}
	if len(recs) < 2 || recs[0][0] != "cache" {
		t.Errorf("unexpected CSV: %v", recs)
	}
}
