// Command repolint runs the repository's own static-analysis suite
// (internal/analysis): the determinism and architecture invariants —
// fan-out only through the sweep engine, no map-iteration order in
// output, injected clocks, fixed-point float formatting, context-first
// entry points, every registered workload kind wired into the
// equivalence suite — checked at review time instead of discovered at
// run time. Zero diagnostics is the contract: `make lint` and the CI
// checks job fail on any finding.
//
// Usage:
//
//	repolint ./...
//	repolint -list
//	repolint ./internal/grid ./internal/scenario
//
// Patterns are `go list` patterns; with none, ./... is linted. The
// kindfixture analyzer needs internal/work in the pattern set to see the
// equivalence suite's fixture table, so ./... is the shape CI runs.
//
// Intentional exceptions carry a `//lint:allow <analyzer> <reason>`
// directive on (or directly above) the flagged line; repolint rejects
// directives without a reason, directives that suppress nothing, and
// directives naming unknown analyzers.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/cli"
)

func main() {
	ctx, stop := cli.SignalContext()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is the testable entry point: 0 on a clean run, 1 on diagnostics,
// 2 on usage or load errors.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "print the analyzers and their rules, then exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Fprintf(stdout, "%s\n    %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := analysis.Load(ctx, ".", patterns)
	if err != nil {
		fmt.Fprintln(stderr, "repolint:", err)
		if cli.Cancelled(err) || ctx.Err() != nil {
			return 130
		}
		return 2
	}
	diags := analysis.RunSuite(prog, analysis.SuiteOptions{Analyzers: suite, Strict: true})
	for _, d := range diags {
		fmt.Fprintln(stdout, d.String())
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d diagnostic(s)\n", len(diags))
		return 1
	}
	return 0
}
