package main

import (
	"context"
	"strings"
	"testing"
)

// TestListPrintsSuite pins the -list surface: every analyzer shows up.
func TestListPrintsSuite(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run -list = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"nofanout", "maporder", "noclock", "ctxflow", "floatfmt", "kindfixture"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

// TestRepositoryIsClean is the acceptance smoke test: the full suite
// over the whole module reports nothing. Any new violation lands here
// (and in make lint, and in CI) until fixed or explicitly allowed.
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"repro/..."}, &out, &errb); code != 0 {
		t.Fatalf("repolint repro/... = %d, want 0\n%s%s", code, out.String(), errb.String())
	}
}

// TestBadPatternIsUsageError pins the exit-code contract: load failures
// are 2, distinct from the diagnostic exit 1.
func TestBadPatternIsUsageError(t *testing.T) {
	var out, errb strings.Builder
	if code := run(context.Background(), []string{"./does-not-exist"}, &out, &errb); code != 2 {
		t.Fatalf("run ./does-not-exist = %d, want 2\n%s%s", code, out.String(), errb.String())
	}
}
