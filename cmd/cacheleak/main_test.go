package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunOptimize(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-size", "16384", "-scheme", "2", "-frac", "0.5"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"feasible access times", "Scheme II optimum", "leakage:", "verified:", "cell-array:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunCurve(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-size", "16384", "-scheme", "3", "-curve", "4"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "leakage/delay frontier") {
		t.Errorf("frontier header missing:\n%s", stdout.String())
	}
}

func TestRunInfeasibleBudget(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-size", "16384", "-delay-ps", "1"}, &stdout, &stderr); code != 1 {
		t.Fatalf("1ps budget: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "no assignment meets") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-size", "-5"}, &stdout, &stderr); code != 1 {
		t.Errorf("negative size: exit %d, want 1", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(t.Context(), []string{"-scheme", "9"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad scheme: exit %d, want 1", code)
	}
	stdout.Reset()
	stderr.Reset()
	if code := run(t.Context(), []string{"-wat"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
