// Command cacheleak optimizes the (Vth, Tox) assignment of one cache under
// a delay constraint, reproducing the paper's Section 4 methodology from
// the command line.
//
// Usage:
//
//	cacheleak -size 16384 -scheme 2 -frac 0.5
//	cacheleak -size 65536 -block 64 -assoc 8 -delay-ps 900
//	cacheleak -size 16384 -curve 8
//
// With -curve N it prints the leakage/delay frontier at N budgets instead
// of a single optimization. SIGINT/SIGTERM cancel a long search cleanly
// (exit 130); -timeout bounds the run.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cachecfg"
	"repro/internal/cli"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/units"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: context, flags and IO come from the
// caller and the exit status is returned instead of calling os.Exit.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("cacheleak", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		size    = fs.Int("size", 16*1024, "cache capacity in bytes")
		block   = fs.Int("block", 32, "block size in bytes")
		assoc   = fs.Int("assoc", 4, "associativity")
		outBits = fs.Int("out", 64, "data output width in bits")
		scheme  = fs.Int("scheme", 2, "assignment scheme: 1, 2 or 3")
		delayPS = fs.Float64("delay-ps", 0, "delay budget in ps (overrides -frac)")
		frac    = fs.Float64("frac", 0.5, "delay budget as a fraction of the feasible range")
		curve   = fs.Int("curve", 0, "print a frontier of N budgets instead of one point")
		timeout = fs.Duration("timeout", 0, "abort the run after this duration (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()

	cfg := cachecfg.Config{
		Name:       "cache",
		SizeBytes:  *size,
		BlockBytes: *block,
		Assoc:      *assoc,
		OutputBits: *outBits,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(stderr, "cacheleak:", err)
		return 1
	}
	var sch opt.Scheme
	switch *scheme {
	case 1:
		sch = opt.SchemeI
	case 2:
		sch = opt.SchemeII
	case 3:
		sch = opt.SchemeIII
	default:
		fmt.Fprintf(stderr, "cacheleak: unknown scheme %d\n", *scheme)
		return 1
	}

	fmt.Fprintf(stdout, "designing %v at 65nm...\n", cfg)
	d, err := core.DesignCache(core.NewTechnology(), cfg)
	if err != nil {
		fmt.Fprintln(stderr, "cacheleak:", err)
		return 1
	}
	fmt.Fprintf(stdout, "organization: %v\n", d.Cache.Array)
	lo, hi := d.DelayRange()
	fmt.Fprintf(stdout, "feasible access times: %.0f .. %.0f ps\n", units.ToPS(lo), units.ToPS(hi))

	if *curve > 0 {
		frontier, err := d.TradeoffCurveCtx(ctx, sch, *curve)
		if err != nil {
			return cli.Report("cacheleak", err, cli.NewProgress("cacheleak", "budgets", nil), stderr)
		}
		fmt.Fprintf(stdout, "\n%v leakage/delay frontier:\n", sch)
		fmt.Fprintf(stdout, "  %-12s %-14s %s\n", "budget(ps)", "leakage(mW)", "assignment")
		for _, r := range frontier {
			if !r.Feasible {
				continue
			}
			fmt.Fprintf(stdout, "  %-12.0f %-14.4f %v\n", units.ToPS(r.DelayS), units.ToMW(r.LeakageW), r.Assignment)
		}
		return 0
	}

	budget := lo + *frac*(hi-lo)
	if *delayPS > 0 {
		budget = units.FromPS(*delayPS)
	}
	r, err := d.OptimizeLeakageCtx(ctx, sch, budget)
	if err != nil {
		return cli.Report("cacheleak", err, cli.NewProgress("cacheleak", "budgets", nil), stderr)
	}
	if !r.Feasible {
		fmt.Fprintf(stderr, "cacheleak: no assignment meets %.0f ps\n", units.ToPS(budget))
		return 1
	}
	fmt.Fprintf(stdout, "\n%v optimum under %.0f ps:\n", sch, units.ToPS(budget))
	fmt.Fprintf(stdout, "  leakage:     %.4f mW (fitted model)\n", units.ToMW(r.LeakageW))
	leak, delay, energy := d.Evaluate(r.Assignment)
	fmt.Fprintf(stdout, "  verified:    %.4f mW, %.0f ps, %.2f pJ/access (netlist)\n",
		units.ToMW(leak), units.ToPS(delay), units.ToPJ(energy))
	for _, p := range components.Parts() {
		op := r.Assignment[p]
		pl := d.Cache.Part(p).Leakage(op)
		fmt.Fprintf(stdout, "  %-13s %v  leak=%.4f mW (sub %.4f / gate %.4f)\n",
			p.String()+":", op, units.ToMW(pl.Total()), units.ToMW(pl.SubthresholdW), units.ToMW(pl.GateW))
	}
	return 0
}
