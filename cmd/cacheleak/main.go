// Command cacheleak optimizes the (Vth, Tox) assignment of one cache under
// a delay constraint, reproducing the paper's Section 4 methodology from
// the command line.
//
// Usage:
//
//	cacheleak -size 16384 -scheme 2 -frac 0.5
//	cacheleak -size 65536 -block 64 -assoc 8 -delay-ps 900
//	cacheleak -size 16384 -curve 8
//
// With -curve N it prints the leakage/delay frontier at N budgets instead
// of a single optimization.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cachecfg"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/opt"
	"repro/internal/units"
)

func main() {
	var (
		size    = flag.Int("size", 16*1024, "cache capacity in bytes")
		block   = flag.Int("block", 32, "block size in bytes")
		assoc   = flag.Int("assoc", 4, "associativity")
		outBits = flag.Int("out", 64, "data output width in bits")
		scheme  = flag.Int("scheme", 2, "assignment scheme: 1, 2 or 3")
		delayPS = flag.Float64("delay-ps", 0, "delay budget in ps (overrides -frac)")
		frac    = flag.Float64("frac", 0.5, "delay budget as a fraction of the feasible range")
		curve   = flag.Int("curve", 0, "print a frontier of N budgets instead of one point")
	)
	flag.Parse()

	cfg := cachecfg.Config{
		Name:       "cache",
		SizeBytes:  *size,
		BlockBytes: *block,
		Assoc:      *assoc,
		OutputBits: *outBits,
	}
	if err := cfg.Validate(); err != nil {
		fatal(err)
	}
	var sch opt.Scheme
	switch *scheme {
	case 1:
		sch = opt.SchemeI
	case 2:
		sch = opt.SchemeII
	case 3:
		sch = opt.SchemeIII
	default:
		fatal(fmt.Errorf("unknown scheme %d", *scheme))
	}

	fmt.Printf("designing %v at 65nm...\n", cfg)
	d, err := core.DesignCache(core.NewTechnology(), cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("organization: %v\n", d.Cache.Array)
	lo, hi := d.DelayRange()
	fmt.Printf("feasible access times: %.0f .. %.0f ps\n", units.ToPS(lo), units.ToPS(hi))

	if *curve > 0 {
		fmt.Printf("\n%v leakage/delay frontier:\n", sch)
		fmt.Printf("  %-12s %-14s %s\n", "budget(ps)", "leakage(mW)", "assignment")
		for _, r := range d.TradeoffCurve(sch, *curve) {
			if !r.Feasible {
				continue
			}
			fmt.Printf("  %-12.0f %-14.4f %v\n", units.ToPS(r.DelayS), units.ToMW(r.LeakageW), r.Assignment)
		}
		return
	}

	budget := lo + *frac*(hi-lo)
	if *delayPS > 0 {
		budget = units.FromPS(*delayPS)
	}
	r := d.OptimizeLeakage(sch, budget)
	if !r.Feasible {
		fatal(fmt.Errorf("no assignment meets %.0f ps", units.ToPS(budget)))
	}
	fmt.Printf("\n%v optimum under %.0f ps:\n", sch, units.ToPS(budget))
	fmt.Printf("  leakage:     %.4f mW (fitted model)\n", units.ToMW(r.LeakageW))
	leak, delay, energy := d.Evaluate(r.Assignment)
	fmt.Printf("  verified:    %.4f mW, %.0f ps, %.2f pJ/access (netlist)\n",
		units.ToMW(leak), units.ToPS(delay), units.ToPJ(energy))
	for _, p := range components.Parts() {
		op := r.Assignment[p]
		pl := d.Cache.Part(p).Leakage(op)
		fmt.Printf("  %-13s %v  leak=%.4f mW (sub %.4f / gate %.4f)\n",
			p.String()+":", op, units.ToMW(pl.Total()), units.ToMW(pl.SubthresholdW), units.ToMW(pl.GateW))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cacheleak:", err)
	os.Exit(1)
}
