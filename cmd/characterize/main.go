// Command characterize runs the circuit-level characterization of one cache
// over the (Vth, Tox) grid — the repository's stand-in for the paper's
// "extensive HSPICE simulation" — and prints the per-component samples
// and/or the fitted analytical model coefficients.
//
// Usage:
//
//	characterize -size 16384                # fitted models + fit quality
//	characterize -size 16384 -samples       # raw grid samples as CSV
//	characterize -size 524288 -l2 -samples
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/units"
)

func main() {
	var (
		size    = flag.Int("size", 16*1024, "cache capacity in bytes")
		l2      = flag.Bool("l2", false, "use the canonical L2 organization instead of L1")
		samples = flag.Bool("samples", false, "dump raw characterization samples as CSV")
	)
	flag.Parse()

	cfg := cachecfg.L1(*size)
	if *l2 {
		cfg = cachecfg.L2(*size)
	}
	tech := core.NewTechnology()
	cache, err := components.New(tech, cfg)
	if err != nil {
		fatal(err)
	}

	grid := charlib.DefaultGrid()
	if *samples {
		fmt.Println("component,vth_v,tox_a,leak_w,sub_w,gate_w,delay_s,energy_j")
		for _, p := range components.Parts() {
			ss, err := charlib.Characterize(cache.Part(p), grid)
			if err != nil {
				fatal(err)
			}
			for _, s := range ss {
				fmt.Printf("%s,%g,%g,%g,%g,%g,%g,%g\n",
					p, s.Vth, s.ToxA, s.LeakW, s.SubW, s.GateW, s.DelayS, s.EnergyJ)
			}
		}
		return
	}

	fmt.Printf("characterizing %v over %d grid points per component\n", cfg, grid.Points())
	for _, p := range components.Parts() {
		ss, err := charlib.Characterize(cache.Part(p), grid)
		if err != nil {
			fatal(err)
		}
		lm, ls, err := model.FitLeakage(ss)
		if err != nil {
			fatal(err)
		}
		dm, ds, err := model.FitDelay(ss)
		if err != nil {
			fatal(err)
		}
		em, es, err := model.FitEnergy(ss)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%s:\n", p)
		fmt.Printf("  leakage: %v   (%v)\n", lm, ls)
		fmt.Printf("  delay:   %v   (%v)\n", dm, ds)
		fmt.Printf("  energy:  E(T) = %.3g + %.3g*T J   (%v)\n", em.E0, em.E1, es)
		// Show the corners for scale.
		fast := ss[0]
		slow := ss[len(ss)-1]
		fmt.Printf("  corners: fast (%.2fV,%.0fA) leak=%s delay=%.0fps | slow (%.2fV,%.0fA) leak=%s delay=%.0fps\n",
			fast.Vth, fast.ToxA, units.FormatSI(fast.LeakW, "W"), units.ToPS(fast.DelayS),
			slow.Vth, slow.ToxA, units.FormatSI(slow.LeakW, "W"), units.ToPS(slow.DelayS))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "characterize:", err)
	os.Exit(1)
}
