// Command characterize runs the circuit-level characterization of one cache
// over the (Vth, Tox) grid — the repository's stand-in for the paper's
// "extensive HSPICE simulation" — and prints the per-component samples
// and/or the fitted analytical model coefficients.
//
// Usage:
//
//	characterize -size 16384                # fitted models + fit quality
//	characterize -size 16384 -samples       # raw grid samples as CSV
//	characterize -size 524288 -l2 -samples
//	characterize -size 524288 -l2 -timeout 30s
//
// SIGINT/SIGTERM cancel the characterization between components (exit 130
// with a partial-progress note); -timeout bounds the run the same way.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/cli"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/units"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: context, flags and IO come from the
// caller and the exit status is returned instead of calling os.Exit.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		size    = fs.Int("size", 16*1024, "cache capacity in bytes")
		l2      = fs.Bool("l2", false, "use the canonical L2 organization instead of L1")
		samples = fs.Bool("samples", false, "dump raw characterization samples as CSV")
		timeout = fs.Duration("timeout", 0, "abort the run after this duration (0 = unbounded)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, *timeout)
	defer cancel()
	prog := cli.NewProgress("characterize", "components", nil)

	cfg := cachecfg.L1(*size)
	if *l2 {
		cfg = cachecfg.L2(*size)
	}
	tech := core.NewTechnology()
	cache, err := components.New(tech, cfg)
	if err != nil {
		fmt.Fprintln(stderr, "characterize:", err)
		return 1
	}

	grid := charlib.DefaultGrid()
	if *samples {
		fmt.Fprintln(stdout, "component,vth_v,tox_a,leak_w,sub_w,gate_w,delay_s,energy_j")
		for pi, p := range components.Parts() {
			if err := ctx.Err(); err != nil {
				prog.Hook()(pi, len(components.Parts()))
				return cli.Report("characterize", err, prog, stderr)
			}
			ss, err := charlib.Characterize(cache.Part(p), grid)
			if err != nil {
				fmt.Fprintln(stderr, "characterize:", err)
				return 1
			}
			for _, s := range ss {
				fmt.Fprintf(stdout, "%s,%g,%g,%g,%g,%g,%g,%g\n", //lint:allow floatfmt device-scale CSV (leakage ~1e-9 W) needs scientific notation; the -samples schema is a published contract
					p, s.Vth, s.ToxA, s.LeakW, s.SubW, s.GateW, s.DelayS, s.EnergyJ)
			}
		}
		return 0
	}

	fmt.Fprintf(stdout, "characterizing %v over %d grid points per component\n", cfg, grid.Points())
	for pi, p := range components.Parts() {
		if err := ctx.Err(); err != nil {
			prog.Hook()(pi, len(components.Parts()))
			return cli.Report("characterize", err, prog, stderr)
		}
		ss, err := charlib.Characterize(cache.Part(p), grid)
		if err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return 1
		}
		lm, ls, err := model.FitLeakage(ss)
		if err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return 1
		}
		dm, ds, err := model.FitDelay(ss)
		if err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return 1
		}
		em, es, err := model.FitEnergy(ss)
		if err != nil {
			fmt.Fprintln(stderr, "characterize:", err)
			return 1
		}
		fmt.Fprintf(stdout, "\n%s:\n", p)
		fmt.Fprintf(stdout, "  leakage: %v   (%v)\n", lm, ls)
		fmt.Fprintf(stdout, "  delay:   %v   (%v)\n", dm, ds)
		fmt.Fprintf(stdout, "  energy:  E(T) = %.3g + %.3g*T J   (%v)\n", em.E0, em.E1, es)
		// Show the corners for scale.
		fast := ss[0]
		slow := ss[len(ss)-1]
		fmt.Fprintf(stdout, "  corners: fast (%.2fV,%.0fA) leak=%s delay=%.0fps | slow (%.2fV,%.0fA) leak=%s delay=%.0fps\n",
			fast.Vth, fast.ToxA, units.FormatSI(fast.LeakW, "W"), units.ToPS(fast.DelayS),
			slow.Vth, slow.ToxA, units.FormatSI(slow.LeakW, "W"), units.ToPS(slow.DelayS))
	}
	return 0
}
