package main

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func TestRunFittedModels(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), nil, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"characterizing", "grid points per component", "leakage:", "delay:", "corners:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSamplesCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-samples"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	recs, err := csv.NewReader(strings.NewReader(stdout.String())).ReadAll()
	if err != nil {
		t.Fatalf("samples output is not CSV: %v", err)
	}
	if recs[0][0] != "component" || len(recs[0]) != 8 {
		t.Errorf("unexpected header: %v", recs[0])
	}
	// 4 components x 63 default grid points + header.
	if want := 4*63 + 1; len(recs) != want {
		t.Errorf("want %d CSV records, got %d", want, len(recs))
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-bogus"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
