// Command benchgate turns a benchstat comparison into a CI verdict: it
// reads the table benchstat prints for `benchstat base.txt head.txt`,
// finds the time (sec/op) rows whose change is statistically significant
// (benchstat marks insignificant rows "~"), and exits non-zero when any
// significant regression exceeds -threshold percent. Improvements and
// statistically insignificant noise — which `-benchtime=3x` runs produce
// plenty of — never fail the gate.
//
// Usage:
//
//	benchstat base.txt head.txt | benchgate -threshold 20
//	benchgate -threshold 20 delta.txt
//
// The gate reads geomean rows as context only: per-benchmark rows decide,
// so one real regression cannot hide behind unrelated improvements.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// regression is one significant sec/op increase.
type regression struct {
	pkg   string
	name  string
	delta float64
}

// run is the testable entry point.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 20, "maximum tolerated significant sec/op regression, percent")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	r := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(stderr, "benchgate:", err)
			return 2
		}
		defer f.Close()
		r = f
	default:
		fmt.Fprintln(stderr, "benchgate: at most one input file")
		return 2
	}

	compared, regressions, err := gate(r, *threshold)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return 2
	}
	if compared == 0 {
		// A first run against a base with no benchmarks compares nothing;
		// that is a note, not a failure.
		fmt.Fprintln(stdout, "benchgate: no sec/op comparison rows found; nothing to gate")
		return 0
	}
	thr := strconv.FormatFloat(*threshold, 'f', -1, 64)
	if len(regressions) == 0 {
		fmt.Fprintf(stdout, "benchgate: %d sec/op rows compared, no significant regression above %s%%\n", compared, thr)
		return 0
	}
	fmt.Fprintf(stdout, "benchgate: %d significant sec/op regression(s) above %s%%:\n", len(regressions), thr)
	for _, x := range regressions {
		fmt.Fprintf(stdout, "  %s  %s  +%.2f%%\n", x.pkg, x.name, x.delta)
	}
	return 1
}

// deltaRE extracts benchstat's significant-change cell: a signed
// percentage followed by the p-value. Insignificant rows print "~"
// instead and never match.
var deltaRE = regexp.MustCompile(`([+-]\d+(?:\.\d+)?)%\s+\(p=`)

// isSummaryRow reports whether a row's leading token marks benchstat
// decoration rather than a benchmark: the geomean summary, table
// borders, or a footnote legend (benchstat numbers footnotes with
// superscript digits). Summary rows must never count as regressions,
// even in the adversarial case where one carries a p-value.
func isSummaryRow(first string) bool {
	if first == "geomean" || strings.HasPrefix(first, "│") {
		return true
	}
	for _, marker := range []string{"¹", "²", "³", "⁴", "⁵", "⁶", "⁷", "⁸", "⁹"} {
		if strings.HasPrefix(first, marker) {
			return true
		}
	}
	return false
}

// gate scans a benchstat table, returning how many significant sec/op
// rows it saw and which of them regressed beyond threshold percent.
func gate(r io.Reader, threshold float64) (compared int, regressions []regression, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	inSecOp := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.Contains(line, "vs base"):
			// A metric header: gate only the time table; B/op, allocs/op
			// and throughput tables pass through.
			inSecOp = strings.Contains(line, "sec/op")
			continue
		}
		if !inSecOp {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 0 || isSummaryRow(fields[0]) {
			continue
		}
		if !strings.Contains(line, "(p=") {
			continue // not a comparison row (missing base, decoration)
		}
		compared++
		m := deltaRE.FindStringSubmatch(line)
		if m == nil {
			continue // statistically insignificant ("~")
		}
		delta, perr := strconv.ParseFloat(m[1], 64)
		if perr != nil {
			return 0, nil, fmt.Errorf("parsing delta in %q: %w", line, perr)
		}
		if delta > threshold {
			regressions = append(regressions, regression{pkg: pkg, name: fields[0], delta: delta})
		}
	}
	if err := sc.Err(); err != nil {
		return 0, nil, err
	}
	return compared, regressions, nil
}
