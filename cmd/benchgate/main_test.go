package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixture mimics benchstat's two-file comparison table: one pkg section
// with a significant regression, a significant improvement, and an
// insignificant row; a second section whose regression sits in a B/op
// table (not gated); and a head-only row with no base to compare.
const fixture = `goos: linux
goarch: amd64
pkg: repro/internal/sweep
cpu: Intel(R) Xeon(R)
               │  base.txt   │             head.txt              │
               │   sec/op    │   sec/op     vs base              │
MapOverhead-8    12.34µ ± 2%   16.00µ ± 3%  +29.66% (p=0.002 n=6)
StreamOrder-8    10.00µ ± 1%    8.00µ ± 2%  -20.00% (p=0.002 n=6)
MemoHit-8         5.00µ ± 9%    5.10µ ± 8%        ~ (p=0.394 n=6)
geomean           8.54µ         8.91µ        +4.33%

pkg: repro/internal/work
               │  base.txt   │             head.txt              │
               │    B/op     │    B/op      vs base              │
RunParallel-8    1.000Ki ± 0%   2.000Ki ± 0%  +100.00% (p=0.002 n=6)
               │  base.txt   │             head.txt              │
               │   sec/op    │   sec/op     vs base              │
Collect-8        20.00µ ± 2%   21.00µ ± 2%   +5.00% (p=0.015 n=6)
RunSequential-8               100.0µ ± 1%
`

func TestGateFindsOnlySignificantSecOpRegressions(t *testing.T) {
	compared, regs, err := gate(strings.NewReader(fixture), 20)
	if err != nil {
		t.Fatal(err)
	}
	// MapOverhead (+29.66%), StreamOrder (-20%), MemoHit (~), Collect
	// (+5%) are the sec/op comparison rows; the B/op table and the
	// baseless RunSequential row are not.
	if compared != 4 {
		t.Errorf("compared %d rows, want 4", compared)
	}
	if len(regs) != 1 || regs[0].name != "MapOverhead-8" || regs[0].pkg != "repro/internal/sweep" {
		t.Fatalf("regressions = %+v, want exactly sweep's MapOverhead", regs)
	}
	if regs[0].delta != 29.66 {
		t.Errorf("delta = %v, want 29.66", regs[0].delta)
	}
}

// TestGateSkipsSummaryRows is the audit for geomean and summary rows:
// table-driven over every decoration benchstat emits around benchmark
// rows — geomean summaries (including the adversarial shape that
// carries a p-value), table borders, footnote legends, and rows with
// footnote markers. Decoration must neither count as compared nor as a
// regression; real rows beside it must still gate.
func TestGateSkipsSummaryRows(t *testing.T) {
	cases := map[string]struct {
		table       string
		compared    int
		regressions int
		wantName    string
	}{
		"plain geomean summary": {
			table: `pkg: repro/x
               │   sec/op    │   sec/op     vs base              │
Real-8           10.00µ ± 2%   15.00µ ± 3%  +50.00% (p=0.002 n=6)
geomean           8.54µ         8.91µ        +4.33%
`,
			compared: 1, regressions: 1, wantName: "Real-8",
		},
		"adversarial geomean with p-value": {
			table: `pkg: repro/x
               │   sec/op    │   sec/op     vs base              │
Real-8           10.00µ ± 2%   10.10µ ± 3%   +1.00% (p=0.040 n=6)
geomean           8.54µ        10.91µ       +25.00% (p=0.001 n=6)
`,
			compared: 1, regressions: 0,
		},
		"footnote legend and marked rows": {
			table: `pkg: repro/x
               │   sec/op    │   sec/op     vs base              │
Real-8           10.00µ ± 2%   15.00µ ± 3%  +50.00% (p=0.002 n=6) ¹
¹ need ≥ 6 samples for confidence interval at level 0.95 (p=0.95)
² all samples are equal
`,
			compared: 1, regressions: 1, wantName: "Real-8",
		},
		"border rows only": {
			table: `pkg: repro/x
               │   sec/op    │   sec/op     vs base              │
               │  base.txt   │             head.txt              │
geomean           8.54µ         8.91µ        +4.33%
`,
			compared: 0, regressions: 0,
		},
	}
	for label, c := range cases {
		t.Run(label, func(t *testing.T) {
			compared, regs, err := gate(strings.NewReader(c.table), 20)
			if err != nil {
				t.Fatal(err)
			}
			if compared != c.compared {
				t.Errorf("compared %d rows, want %d", compared, c.compared)
			}
			if len(regs) != c.regressions {
				t.Fatalf("regressions = %+v, want %d", regs, c.regressions)
			}
			if c.wantName != "" && regs[0].name != c.wantName {
				t.Errorf("regression name = %q, want %q", regs[0].name, c.wantName)
			}
		})
	}
}

func TestGateThresholdBoundary(t *testing.T) {
	// +29.66% passes a 30% threshold: the gate is strictly greater-than.
	_, regs, err := gate(strings.NewReader(fixture), 29.66)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Errorf("regressions at exact threshold = %+v, want none", regs)
	}
	_, regs, err = gate(strings.NewReader(fixture), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Errorf("regressions at 4%% = %+v, want MapOverhead and Collect", regs)
	}
}

func TestRunVerdicts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.txt")
	if err := os.WriteFile(path, []byte(fixture), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-threshold", "20", path}, nil, &stdout, &stderr); code != 1 {
		t.Fatalf("regressed input: exit %d, want 1\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "MapOverhead-8") || !strings.Contains(stdout.String(), "+29.66%") {
		t.Errorf("verdict must name the regression:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run([]string{"-threshold", "50", path}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("tolerant threshold: exit %d, want 0\n%s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "no significant regression") {
		t.Errorf("pass verdict missing:\n%s", stdout.String())
	}

	stdout.Reset()
	if code := run(nil, strings.NewReader("goos: linux\n"), &stdout, &stderr); code != 0 {
		t.Fatalf("empty comparison: exit %d, want 0", code)
	}
	if !strings.Contains(stdout.String(), "nothing to gate") {
		t.Errorf("empty-comparison note missing:\n%s", stdout.String())
	}

	if code := run([]string{"/nonexistent.txt"}, nil, &stdout, &stderr); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	if code := run([]string{"a", "b"}, nil, &stdout, &stderr); code != 2 {
		t.Errorf("two files: exit %d, want 2", code)
	}
}
