package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const tinyScenario = `{"name":"smoke","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000}`

func TestRunSingleFromStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(nil, strings.NewReader(tinyScenario), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res struct {
		Name string `json:"name"`
		L2   struct {
			Feasible bool `json:"feasible"`
		} `json:"l2_optimization"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if res.Name != "smoke" || !res.L2.Feasible {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestRunBatchFromStdin(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `]}`
	var stdout, stderr bytes.Buffer
	code := run([]string{"-workers", "2"}, strings.NewReader(batch), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res struct {
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(res.Scenarios) != 1 || res.Scenarios[0].Name != "smoke" {
		t.Errorf("unexpected batch result: %+v", res)
	}
}

func TestRunBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, strings.NewReader(`{"name":`), &stdout, &stderr); code != 1 {
		t.Errorf("malformed JSON: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "scenario:") {
		t.Errorf("no diagnostic on stderr: %q", stderr.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-f", "/nonexistent/x.json"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
