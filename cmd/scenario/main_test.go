package main

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/cli"
)

const tinyScenario = `{"name":"smoke","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000}`

func TestRunSingleFromStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), nil, strings.NewReader(tinyScenario), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res struct {
		Name string `json:"name"`
		L2   struct {
			Feasible bool `json:"feasible"`
		} `json:"l2_optimization"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if res.Name != "smoke" || !res.L2.Feasible {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestRunBatchFromStdin(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `]}`
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-workers", "2"}, strings.NewReader(batch), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res struct {
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(res.Scenarios) != 1 || res.Scenarios[0].Name != "smoke" {
		t.Errorf("unexpected batch result: %+v", res)
	}
}

// TestRunStreamNDJSON checks -stream emits one valid NDJSON line per
// scenario, in input order, with the same content as the buffered batch
// document.
func TestRunStreamNDJSON(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `,{"name":"second","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000}]}`

	var buffered bytes.Buffer
	if code := run(t.Context(), nil, strings.NewReader(batch), &buffered, &bytes.Buffer{}); code != 0 {
		t.Fatalf("buffered run: exit %d", code)
	}
	var doc struct {
		Scenarios []json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal(buffered.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream"}, strings.NewReader(batch), &stdout, &stderr); code != 0 {
		t.Fatalf("stream run: exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d:\n%s", len(lines), stdout.String())
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not JSON: %q", i, line)
		}
		// Compact the buffered entry for a byte-level content comparison.
		var compact bytes.Buffer
		if err := json.Compact(&compact, doc.Scenarios[i]); err != nil {
			t.Fatal(err)
		}
		if line != compact.String() {
			t.Errorf("line %d differs from buffered result\n got: %s\nwant: %s", i, line, compact.String())
		}
	}
}

// TestRunStreamSingle checks -stream also works for a single scenario.
func TestRunStreamSingle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream"}, strings.NewReader(tinyScenario), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := strings.TrimRight(stdout.String(), "\n")
	if strings.Contains(out, "\n") || !json.Valid([]byte(out)) {
		t.Fatalf("want one JSON line, got:\n%s", stdout.String())
	}
}

// TestRunCancelled checks a cancelled run exits 130 with a partial-progress
// diagnostic on stderr.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := `{"scenarios":[` + tinyScenario + `]}`
	var stdout, stderr bytes.Buffer
	code := run(ctx, nil, strings.NewReader(batch), &stdout, &stderr)
	if code != cli.ExitCancelled {
		t.Fatalf("cancelled run: exit %d, want %d (stderr: %s)", code, cli.ExitCancelled, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Errorf("no cancellation diagnostic: %q", stderr.String())
	}
}

// TestRunTimeout checks an expired -timeout aborts with a non-zero exit
// and a timeout diagnostic.
func TestRunTimeout(t *testing.T) {
	batch := `{"scenarios":[{"name":"slow","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":50000000}]}`
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-timeout", "50ms"}, strings.NewReader(batch), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("timed-out run: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "timed out") {
		t.Errorf("no timeout diagnostic: %q", stderr.String())
	}
}

// TestRunStreamProgress checks -stream -progress writes ticker lines to
// stderr while keeping stdout pure NDJSON.
func TestRunStreamProgress(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `]}`
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream", "-progress"}, strings.NewReader(batch), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "scenario: 1/1 scenarios") {
		t.Errorf("progress ticker missing from stderr: %q", stderr.String())
	}
	for _, line := range strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Errorf("stdout polluted by non-JSON line: %q", line)
		}
	}
}

func TestRunBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), nil, strings.NewReader(`{"name":`), &stdout, &stderr); code != 1 {
		t.Errorf("malformed JSON: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "scenario:") {
		t.Errorf("no diagnostic on stderr: %q", stderr.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-f", "/nonexistent/x.json"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-definitely-not-a-flag"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}
