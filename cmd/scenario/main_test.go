package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
)

const tinyScenario = `{"name":"smoke","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000}`

func TestRunSingleFromStdin(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), nil, strings.NewReader(tinyScenario), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res struct {
		Name string `json:"name"`
		L2   struct {
			Feasible bool `json:"feasible"`
		} `json:"l2_optimization"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if res.Name != "smoke" || !res.L2.Feasible {
		t.Errorf("unexpected result: %+v", res)
	}
}

func TestRunBatchFromStdin(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `]}`
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-workers", "2"}, strings.NewReader(batch), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var res struct {
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &res); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(res.Scenarios) != 1 || res.Scenarios[0].Name != "smoke" {
		t.Errorf("unexpected batch result: %+v", res)
	}
}

// TestRunStreamNDJSON checks -stream emits one valid NDJSON line per
// scenario, in input order, with the same content as the buffered batch
// document.
func TestRunStreamNDJSON(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `,{"name":"second","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000}]}`

	var buffered bytes.Buffer
	if code := run(t.Context(), nil, strings.NewReader(batch), &buffered, &bytes.Buffer{}); code != 0 {
		t.Fatalf("buffered run: exit %d", code)
	}
	var doc struct {
		Scenarios []json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal(buffered.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream"}, strings.NewReader(batch), &stdout, &stderr); code != 0 {
		t.Fatalf("stream run: exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 NDJSON lines, got %d:\n%s", len(lines), stdout.String())
	}
	for i, line := range lines {
		if !json.Valid([]byte(line)) {
			t.Fatalf("line %d is not JSON: %q", i, line)
		}
		// Compact the buffered entry for a byte-level content comparison.
		var compact bytes.Buffer
		if err := json.Compact(&compact, doc.Scenarios[i]); err != nil {
			t.Fatal(err)
		}
		if line != compact.String() {
			t.Errorf("line %d differs from buffered result\n got: %s\nwant: %s", i, line, compact.String())
		}
	}
}

// TestRunStreamSingle checks -stream also works for a single scenario.
func TestRunStreamSingle(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream"}, strings.NewReader(tinyScenario), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	out := strings.TrimRight(stdout.String(), "\n")
	if strings.Contains(out, "\n") || !json.Valid([]byte(out)) {
		t.Fatalf("want one JSON line, got:\n%s", stdout.String())
	}
}

// TestRunCancelled checks a cancelled run exits 130 with a partial-progress
// diagnostic on stderr.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	batch := `{"scenarios":[` + tinyScenario + `]}`
	var stdout, stderr bytes.Buffer
	code := run(ctx, nil, strings.NewReader(batch), &stdout, &stderr)
	if code != cli.ExitCancelled {
		t.Fatalf("cancelled run: exit %d, want %d (stderr: %s)", code, cli.ExitCancelled, stderr.String())
	}
	if !strings.Contains(stderr.String(), "cancelled") {
		t.Errorf("no cancellation diagnostic: %q", stderr.String())
	}
}

// TestRunTimeout checks an expired -timeout aborts with a non-zero exit
// and a timeout diagnostic.
func TestRunTimeout(t *testing.T) {
	batch := `{"scenarios":[{"name":"slow","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":50000000}]}`
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-timeout", "50ms"}, strings.NewReader(batch), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("timed-out run: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "timed out") {
		t.Errorf("no timeout diagnostic: %q", stderr.String())
	}
}

// TestRunStreamProgress checks -stream -progress writes ticker lines to
// stderr while keeping stdout pure NDJSON.
func TestRunStreamProgress(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `]}`
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream", "-progress"}, strings.NewReader(batch), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "scenario: 1/1 scenarios") {
		t.Errorf("progress ticker missing from stderr: %q", stderr.String())
	}
	for _, line := range strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Errorf("stdout polluted by non-JSON line: %q", line)
		}
	}
}

func TestRunBadInput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), nil, strings.NewReader(`{"name":`), &stdout, &stderr); code != 1 {
		t.Errorf("malformed JSON: exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "scenario:") {
		t.Errorf("no diagnostic on stderr: %q", stderr.String())
	}
}

func TestRunMissingFile(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-f", "/nonexistent/x.json"}, strings.NewReader(""), &stdout, &stderr); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-definitely-not-a-flag"}, strings.NewReader(""), &stdout, &stderr); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
}

// twoScenarioBatch is a batch whose full streamed output the checkpoint
// tests compare against.
const twoScenarioBatch = `{"scenarios":[` + tinyScenario +
	`,{"name":"second","l1_kb":16,"l2_kb":512,"workload":"tpcc","accesses":20000}` +
	`,{"name":"third","l1_kb":32,"l2_kb":256,"workload":"tpcc","accesses":20000}]}`

// TestRunCheckpointResume simulates the kill/restart cycle: a checkpointed
// run whose journal stops after the first scenario (with a torn final
// line, as a kill mid-append leaves) is restarted with -resume; the
// restarted run re-emits nothing already journaled, completes the
// remainder, and prefix + remainder equals the uncheckpointed stream.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.journal")

	// Reference: the full stream, no checkpointing.
	var full bytes.Buffer
	if code := run(t.Context(), []string{"-stream"}, strings.NewReader(twoScenarioBatch), &full, &bytes.Buffer{}); code != 0 {
		t.Fatalf("reference run: exit %d", code)
	}
	lines := strings.SplitAfter(full.String(), "\n")
	if len(lines) != 4 || lines[3] != "" {
		t.Fatalf("reference run produced %d lines", len(lines)-1)
	}

	// First checkpointed run (completes everything).
	var first bytes.Buffer
	code := run(t.Context(), []string{"-stream", "-checkpoint", jpath}, strings.NewReader(twoScenarioBatch), &first, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("checkpointed run: exit %d", code)
	}
	if first.String() != full.String() {
		t.Errorf("checkpointed output differs from plain stream:\n got: %q\nwant: %q", first.String(), full.String())
	}

	// Simulate the kill: cut the journal back to header + first entry and
	// tear a partial second entry, as a crash mid-append would.
	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.SplitAfter(string(data), "\n")
	torn := jlines[0] + jlines[1] + `{"i":1,"line":{"name":"sec`
	if err := os.WriteFile(jpath, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	// Restart with -resume: nothing journaled is re-emitted.
	var resumed, stderr bytes.Buffer
	code = run(t.Context(), []string{"-stream", "-checkpoint", jpath, "-resume"}, strings.NewReader(twoScenarioBatch), &resumed, &stderr)
	if code != 0 {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, stderr.String())
	}
	if want := lines[1] + lines[2]; resumed.String() != want {
		t.Errorf("resumed run must emit exactly the remainder:\n got: %q\nwant: %q", resumed.String(), want)
	}
	if !strings.Contains(stderr.String(), "resuming, 1/3 scenarios already journaled") {
		t.Errorf("missing resume diagnostic: %q", stderr.String())
	}

	// A second resume has nothing left to do and emits nothing.
	var empty bytes.Buffer
	code = run(t.Context(), []string{"-stream", "-checkpoint", jpath, "-resume"}, strings.NewReader(twoScenarioBatch), &empty, &bytes.Buffer{})
	if code != 0 {
		t.Fatalf("no-op resume: exit %d", code)
	}
	if empty.Len() != 0 {
		t.Errorf("fully journaled batch re-emitted %q", empty.String())
	}
}

// TestRunResumeRefusesDifferentBatch pins the safety check: resuming a
// journal against a batch that hashes differently fails loudly.
func TestRunResumeRefusesDifferentBatch(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "run.journal")
	batchA := `{"scenarios":[` + tinyScenario + `]}`
	if code := run(t.Context(), []string{"-stream", "-checkpoint", jpath}, strings.NewReader(batchA), &bytes.Buffer{}, &bytes.Buffer{}); code != 0 {
		t.Fatal("seed run failed")
	}
	batchB := `{"scenarios":[{"name":"other","l1_kb":64,"l2_kb":1024,"workload":"tpcc","accesses":20000}]}`
	var stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream", "-checkpoint", jpath, "-resume"}, strings.NewReader(batchB), &bytes.Buffer{}, &stderr); code != 1 {
		t.Fatalf("mismatched resume: exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "batch hash mismatch") {
		t.Errorf("missing hash-mismatch diagnostic: %q", stderr.String())
	}
}

// tinyGrid expands to two points (16KB and 32KB L1) over a 256KB L2.
const tinyGrid = `{"grid":{
	"axes":{"l1_kb":[16,32]},
	"base":{"l2_kb":256,"workload":"tpcc","accesses":20000}
}}`

// TestRunGridStreamFrontier runs a grid document end to end: one NDJSON
// result line per expanded point, in row-major order, plus the final
// {"frontier": [...]} summary — which must name only grid points.
func TestRunGridStreamFrontier(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream", "-frontier"}, strings.NewReader(tinyGrid), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 2 result lines + 1 frontier line, got %d:\n%s", len(lines), stdout.String())
	}
	for i, want := range []string{"g-l116-l2256-tpcc-s2", "g-l132-l2256-tpcc-s2"} {
		var res struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &res); err != nil || res.Name != want {
			t.Errorf("line %d names %q (err %v), want %q", i, res.Name, err, want)
		}
	}
	var summary struct {
		Frontier []struct {
			Name      string  `json:"name"`
			AMATPS    float64 `json:"amat_ps"`
			LeakageMW float64 `json:"leakage_mw"`
		} `json:"frontier"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &summary); err != nil {
		t.Fatalf("frontier line is not JSON: %v\n%s", err, lines[2])
	}
	if len(summary.Frontier) == 0 {
		t.Fatal("frontier is empty for a feasible grid")
	}
	for _, p := range summary.Frontier {
		if !strings.HasPrefix(p.Name, "g-l1") {
			t.Errorf("frontier point %q is not a grid point", p.Name)
		}
		if p.AMATPS <= 0 || p.LeakageMW <= 0 {
			t.Errorf("frontier point %+v has non-positive coordinates", p)
		}
	}
}

// TestRunGridBufferedFrontier checks the buffered document gains the
// "frontier" field and still carries every expanded point.
func TestRunGridBufferedFrontier(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-frontier"}, strings.NewReader(tinyGrid), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	var doc struct {
		Scenarios []struct {
			Name string `json:"name"`
		} `json:"scenarios"`
		Frontier []struct {
			Name string `json:"name"`
		} `json:"frontier"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &doc); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, stdout.String())
	}
	if len(doc.Scenarios) != 2 || doc.Scenarios[0].Name != "g-l116-l2256-tpcc-s2" {
		t.Errorf("unexpected scenarios: %+v", doc.Scenarios)
	}
	if len(doc.Frontier) == 0 {
		t.Error("buffered document has no frontier")
	}
}

// TestRunGridCheckpointResumeFrontier checks a resumed grid run re-emits
// only the remainder but its frontier summary still covers every point —
// including the journal-replayed ones.
func TestRunGridCheckpointResumeFrontier(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "grid.journal")
	var full bytes.Buffer
	if code := run(t.Context(), []string{"-stream", "-frontier", "-checkpoint", jpath}, strings.NewReader(tinyGrid), &full, &bytes.Buffer{}); code != 0 {
		t.Fatal("seed run failed")
	}
	fullLines := strings.Split(strings.TrimRight(full.String(), "\n"), "\n")

	var resumed, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream", "-frontier", "-checkpoint", jpath, "-resume"}, strings.NewReader(tinyGrid), &resumed, &stderr); code != 0 {
		t.Fatalf("resume: exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(resumed.String(), "\n"), "\n")
	if len(lines) != 1 {
		t.Fatalf("fully journaled resume emitted %d lines, want the frontier only:\n%s", len(lines), resumed.String())
	}
	if lines[0] != fullLines[len(fullLines)-1] {
		t.Errorf("resumed frontier %s\ndiffers from full run's %s", lines[0], fullLines[len(fullLines)-1])
	}
}

// TestRunFrontierRequiresGrid pins the flag contract.
func TestRunFrontierRequiresGrid(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(t.Context(), []string{"-frontier"}, strings.NewReader(`{"scenarios":[`+tinyScenario+`]}`), &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("-frontier on a batch: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "grid document") {
		t.Errorf("missing diagnostic: %q", stderr.String())
	}
	stderr.Reset()
	if code := run(t.Context(), []string{"-frontier"}, strings.NewReader(tinyScenario), &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("-frontier on a single scenario: exit %d, want 2", code)
	}
}

// TestRunCheckpointFlagValidation pins the flag contract.
func TestRunCheckpointFlagValidation(t *testing.T) {
	var stderr bytes.Buffer
	if code := run(t.Context(), []string{"-resume"}, strings.NewReader(tinyScenario), &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("-resume without -checkpoint: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(t.Context(), []string{"-checkpoint", "x.journal"}, strings.NewReader(tinyScenario), &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("-checkpoint without -stream: exit %d, want 2", code)
	}
	stderr.Reset()
	if code := run(t.Context(), []string{"-stream", "-checkpoint", filepath.Join(t.TempDir(), "x.journal")}, strings.NewReader(tinyScenario), &bytes.Buffer{}, &stderr); code != 2 {
		t.Errorf("-checkpoint with single-scenario input: exit %d, want 2", code)
	}
}

// TestRunGridFrontierRefine runs the multi-fidelity ladder end to end:
// every analytical line, then the trace shortlist, then the refined
// frontier summary — with per-phase progress tickers on stderr.
func TestRunGridFrontierRefine(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream", "-frontier-refine", "-progress"}, strings.NewReader(tinyGrid), &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	// 2 analytical points + 1..2 shortlisted trace points + summary.
	if len(lines) < 4 || len(lines) > 5 {
		t.Fatalf("emitted %d lines, want 4 or 5:\n%s", len(lines), stdout.String())
	}
	for i, want := range []string{"g-l116-l2256-tpcc-s2", "g-l132-l2256-tpcc-s2"} {
		var res struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(lines[i]), &res); err != nil || res.Name != want {
			t.Errorf("analytical line %d names %q (err %v), want %q", i, res.Name, err, want)
		}
	}
	var summary struct {
		Frontier []struct {
			Name string `json:"name"`
		} `json:"frontier"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &summary); err != nil {
		t.Fatalf("summary line is not JSON: %v\n%s", err, lines[len(lines)-1])
	}
	if len(summary.Frontier) == 0 {
		t.Error("refined frontier is empty for a feasible grid")
	}
	for _, want := range []string{"scenario [analytical]: 2/2 points", "scenario [refine]:"} {
		if !strings.Contains(stderr.String(), want) {
			t.Errorf("stderr missing per-phase ticker %q: %q", want, stderr.String())
		}
	}
}

// TestRunFrontierRefineFlagValidation pins the flag contract: exclusive
// with -frontier, requires -stream, owns the fidelity ladder, and needs a
// grid document.
func TestRunFrontierRefineFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		in   string
		want string
	}{
		{"with -frontier", []string{"-stream", "-frontier-refine", "-frontier"}, tinyGrid, "choose one of"},
		{"without -stream", []string{"-frontier-refine"}, tinyGrid, "requires -stream"},
		{"with -fidelity", []string{"-stream", "-frontier-refine", "-fidelity", "analytical"}, tinyGrid, "drop -fidelity"},
		{"non-grid input", []string{"-stream", "-frontier-refine"}, `{"scenarios":[` + tinyScenario + `]}`, "grid document"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var stderr bytes.Buffer
			if code := run(t.Context(), c.args, strings.NewReader(c.in), &bytes.Buffer{}, &stderr); code != 2 {
				t.Errorf("exit %d, want 2 (stderr: %s)", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), c.want) {
				t.Errorf("stderr %q missing %q", stderr.String(), c.want)
			}
		})
	}
}

// manifestFrom extracts and parses the one-line end-of-run manifest a run
// leaves on stderr.
func manifestFrom(t *testing.T, stderr string) cli.Manifest {
	t.Helper()
	for _, line := range strings.Split(stderr, "\n") {
		if strings.HasPrefix(line, `{"manifest":`) {
			var wrap struct {
				Manifest cli.Manifest `json:"manifest"`
			}
			if err := json.Unmarshal([]byte(line), &wrap); err != nil {
				t.Fatalf("manifest line does not parse: %v\n%s", err, line)
			}
			return wrap.Manifest
		}
	}
	t.Fatalf("no manifest line on stderr:\n%s", stderr)
	return cli.Manifest{}
}

// TestRunMetricsAddrAndManifest pins the observability contract of a
// batch run: -metrics-addr announces its listener on stderr without
// changing a byte of stdout (metrics are observation-only), and the run
// ends with a manifest carrying the batch identity and counts.
func TestRunMetricsAddrAndManifest(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `,{"name":"second","l1_kb":16,"l2_kb":512,"workload":"tpcc","accesses":20000}]}`

	var base bytes.Buffer
	if code := run(t.Context(), []string{"-stream"}, strings.NewReader(batch), &base, &bytes.Buffer{}); code != 0 {
		t.Fatalf("baseline run: exit %d", code)
	}

	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-stream", "-metrics-addr", "127.0.0.1:0"}, strings.NewReader(batch), &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != base.String() {
		t.Errorf("stdout changed with -metrics-addr:\n got: %q\nwant: %q", stdout.String(), base.String())
	}
	if !strings.Contains(stderr.String(), "scenario: metrics on http://") {
		t.Errorf("no metrics listener announcement on stderr: %q", stderr.String())
	}
	man := manifestFrom(t, stderr.String())
	switch {
	case man.Tool != "scenario":
		t.Errorf("manifest tool %q, want scenario", man.Tool)
	case man.Kind != "scenario-batch":
		t.Errorf("manifest kind %q, want scenario-batch", man.Kind)
	case man.Items != 2 || man.ItemsRun != 2 || man.ItemsResumed != 0:
		t.Errorf("manifest counts: %+v", man)
	case man.BatchSHA256 == "":
		t.Error("manifest carries no batch hash")
	case man.Outcome != "ok":
		t.Errorf("manifest outcome %q, want ok", man.Outcome)
	}
}

// TestRunManifestResume checks a fully resumed run's manifest reports the
// replayed/executed split: everything resumed, nothing run, rate omitted.
func TestRunManifestResume(t *testing.T) {
	batch := `{"scenarios":[` + tinyScenario + `]}`
	jpath := filepath.Join(t.TempDir(), "run.journal")
	if code := run(t.Context(), []string{"-stream", "-checkpoint", jpath}, strings.NewReader(batch), &bytes.Buffer{}, &bytes.Buffer{}); code != 0 {
		t.Fatal("checkpointed run failed")
	}
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-stream", "-checkpoint", jpath, "-resume"}, strings.NewReader(batch), &stdout, &stderr); code != 0 {
		t.Fatalf("resumed run: exit %d, stderr: %s", code, stderr.String())
	}
	man := manifestFrom(t, stderr.String())
	if man.Items != 1 || man.ItemsResumed != 1 || man.ItemsRun != 0 {
		t.Errorf("resumed manifest counts: %+v", man)
	}
	if man.Outcome != "ok" || man.ItemsPerSec != 0 {
		t.Errorf("resumed manifest outcome/rate: %+v", man)
	}
}
