// Command scenario runs a JSON-described cache-hierarchy study: simulate
// the workload, optimize the L2 knobs under an AMAT budget, and optionally
// run tuple-budget optimizations. Results are emitted as JSON.
//
// The input is either a single scenario object or a batch — a top-level
// "scenarios" array — which runs concurrently with per-scenario isolation
// (see examples/scenarios.json). With -stream, batch results are emitted
// as NDJSON (one compact result object per line, in input order, written
// as each scenario completes) instead of one buffered JSON document, so
// arbitrarily large batches never accumulate in memory.
//
// SIGINT/SIGTERM cancel the run cleanly: in-flight scenarios stop
// mid-simulation, a partial-progress note goes to stderr, and the process
// exits 130. -timeout bounds the whole run the same way.
//
// Usage:
//
//	scenario -f study.json
//	scenario -f examples/scenarios.json -workers 4
//	scenario -f examples/scenarios.json -stream -progress
//	scenario -f examples/scenarios.json -timeout 10m
//	echo '{"name":"demo","l1_kb":16,"l2_kb":512,"workload":"tpcc"}' | scenario
//
// Example config:
//
//	{
//	  "name": "my-soc",
//	  "l1_kb": 32,
//	  "l2_kb": 1024,
//	  "workload": "average",
//	  "amat_budget_ps": 1900,
//	  "tuple_budgets": [[2,2],[2,3],[1,2]]
//	}
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/scenario"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// options are the scenario flags.
type options struct {
	file     string
	workers  int
	stream   bool
	progress bool
	timeout  time.Duration
}

func registerFlags(fs *flag.FlagSet, o *options) {
	fs.StringVar(&o.file, "f", "", "scenario JSON file (default stdin)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent scenarios in batch mode (0 = GOMAXPROCS)")
	fs.BoolVar(&o.stream, "stream", false, "emit batch results as NDJSON, one line per scenario as it completes")
	fs.BoolVar(&o.progress, "progress", false, "report per-scenario completion on stderr")
	fs.DurationVar(&o.timeout, "timeout", 0, "abort the run after this duration (0 = unbounded)")
}

// run is the testable entry point: context, flags and IO come from the
// caller and the exit status is returned instead of calling os.Exit.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	registerFlags(fs, &o)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, o.timeout)
	defer cancel()

	var r io.Reader = stdin
	if o.file != "" {
		f, err := os.Open(o.file)
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}

	var tickerW io.Writer
	if o.progress {
		tickerW = stderr
	}
	prog := cli.NewProgress("scenario", "scenarios", tickerW)

	if scenario.IsBatch(data) {
		b, err := scenario.LoadBatch(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		opts := scenario.StreamOptions{Workers: o.workers, Progress: prog.Hook()}
		if o.stream {
			if err := scenario.StreamNDJSON(ctx, b, opts, stdout); err != nil {
				return cli.Report("scenario", err, prog, stderr)
			}
			return 0
		}
		res, err := scenario.RunBatchCtx(ctx, b, o.workers)
		if err != nil {
			return cli.Report("scenario", err, prog, stderr)
		}
		out, err := res.Render()
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		fmt.Fprintln(stdout, out)
		return 0
	}

	cfg, err := scenario.Load(bytes.NewReader(data))
	if err != nil {
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}
	res, err := scenario.RunCtx(ctx, cfg)
	if err != nil {
		return cli.Report("scenario", err, prog, stderr)
	}
	if o.stream {
		line, err := res.NDJSONLine()
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s\n", line)
		return 0
	}
	out, err := res.Render()
	if err != nil {
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}
	fmt.Fprintln(stdout, out)
	return 0
}
