// Command scenario runs a JSON-described cache-hierarchy study: simulate
// the workload, optimize the L2 knobs under an AMAT budget, and optionally
// run tuple-budget optimizations. Results are emitted as JSON.
//
// Usage:
//
//	scenario -f study.json
//	echo '{"name":"demo","l1_kb":16,"l2_kb":512,"workload":"tpcc"}' | scenario
//
// Example config:
//
//	{
//	  "name": "my-soc",
//	  "l1_kb": 32,
//	  "l2_kb": 1024,
//	  "workload": "average",
//	  "amat_budget_ps": 1900,
//	  "tuple_budgets": [[2,2],[2,3],[1,2]]
//	}
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
)

func main() {
	file := flag.String("f", "", "scenario JSON file (default stdin)")
	flag.Parse()

	var r io.Reader = os.Stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	cfg, err := scenario.Load(r)
	if err != nil {
		fatal(err)
	}
	res, err := scenario.Run(cfg)
	if err != nil {
		fatal(err)
	}
	out, err := res.Render()
	if err != nil {
		fatal(err)
	}
	fmt.Println(out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scenario:", err)
	os.Exit(1)
}
