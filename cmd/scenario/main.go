// Command scenario runs a JSON-described cache-hierarchy study: simulate
// the workload, optimize the L2 knobs under an AMAT budget, and optionally
// run tuple-budget optimizations. Results are emitted as JSON.
//
// The input is a single scenario object, a batch — a top-level
// "scenarios" array — or a grid document — a top-level "grid" object
// declaring axes over the scenario fields, which expands into the full
// factorial design-space sweep (see examples/gridsweep/spec.json and
// internal/grid). Batches and grids run concurrently with per-scenario
// isolation. With -stream, results are emitted as NDJSON (one compact
// result object per line, in input order, written as each scenario
// completes) instead of one buffered JSON document, so arbitrarily large
// batches never accumulate in memory. With -frontier (grid input only),
// the run additionally reduces its points to the leakage-vs-AMAT Pareto
// front and appends a final {"frontier": [...]} summary — as the last
// NDJSON line in -stream mode, as a "frontier" field of the buffered
// document otherwise.
//
// With -frontier-refine (grid input, -stream only), the run is the
// multi-fidelity ladder instead: the full grid runs at analytical
// fidelity, the Pareto shortlist (front plus a slack band sized to the
// analytical error) re-runs at trace fidelity, and the final summary's
// frontier carries trace-fidelity coordinates — the cost of a cheap pass
// over everything plus exact evaluation of only the contenders. The
// stream is both phases' lines in order, then the summary. With
// -checkpoint PATH, the analytical pass journals to PATH and the
// shortlist to PATH.refine.
//
// With -checkpoint (batch + -stream only), every completed line is also
// appended to a journal keyed by a content hash of the batch; adding
// -resume replays that journal on startup, skips (and does not re-emit)
// finished scenarios, and refuses to resume against a different batch — so
// a killed run restarted with the same command line completes exactly the
// remainder. The journal is the authoritative record of completed lines.
//
// SIGINT/SIGTERM cancel the run cleanly: in-flight scenarios stop
// mid-simulation, a partial-progress note goes to stderr, and the process
// exits 130. -timeout bounds the whole run the same way.
//
// Usage:
//
//	scenario -f study.json
//	scenario -f examples/scenarios.json -workers 4
//	scenario -f examples/scenarios.json -stream -progress
//	scenario -f examples/scenarios.json -stream -checkpoint run.journal -resume
//	scenario -f examples/gridsweep/spec.json -stream -frontier
//	scenario -f examples/gridsweep/spec.json -stream -frontier-refine
//	scenario -f examples/scenarios.json -timeout 10m
//	scenario -f examples/gridsweep/spec.json -stream -metrics-addr 127.0.0.1:9090
//	echo '{"name":"demo","l1_kb":16,"l2_kb":512,"workload":"tpcc"}' | scenario
//
// With -metrics-addr, the run serves Prometheus metrics (per-scenario
// latency histograms, throughput, queue depths) on /metrics and the Go
// profiler on /debug/pprof/ for its duration. Every run additionally
// emits a one-line JSON manifest to stderr when it ends — batch hash,
// item counts, wall time, items/sec, outcome — so any run can be
// diagnosed after the fact from its captured stderr.
//
// Example config:
//
//	{
//	  "name": "my-soc",
//	  "l1_kb": 32,
//	  "l2_kb": 1024,
//	  "workload": "average",
//	  "amat_budget_ps": 1900,
//	  "tuple_budgets": [[2,2],[2,3],[1,2]]
//	}
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"encoding/json"

	"repro/internal/cli"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/work"
)

func main() {
	ctx, stop := cli.SignalContext()
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// options are the scenario flags.
type options struct {
	file           string
	workers        int
	stream         bool
	progress       bool
	checkpoint     string
	resume         bool
	frontier       bool
	frontierRefine bool
	fidelity       string
	timeout        time.Duration
	metricsAddr    string

	// metrics is the run's registry, non-nil when -metrics-addr serves
	// one; the work driver records into it. Not a flag.
	metrics *obs.Registry
}

func registerFlags(fs *flag.FlagSet, o *options) {
	fs.StringVar(&o.file, "f", "", "scenario JSON file (default stdin)")
	fs.IntVar(&o.workers, "workers", 0, "concurrent scenarios in batch mode (0 = GOMAXPROCS)")
	fs.BoolVar(&o.stream, "stream", false, "emit batch results as NDJSON, one line per scenario as it completes")
	fs.BoolVar(&o.progress, "progress", false, "report per-scenario completion on stderr")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "journal completed scenarios to this file (batch mode with -stream)")
	fs.BoolVar(&o.resume, "resume", false, "replay the -checkpoint journal and run only unfinished scenarios")
	fs.BoolVar(&o.frontier, "frontier", false, "append the leakage-vs-AMAT Pareto front summary (grid input only)")
	fs.BoolVar(&o.frontierRefine, "frontier-refine", false, "run the grid analytically, re-run the Pareto shortlist at trace fidelity, and append the refined front (grid input with -stream only)")
	fs.StringVar(&o.fidelity, "fidelity", "", `default miss-rate fidelity for configs that do not set one: "trace" (simulate) or "analytical" (stack-distance fast path)`)
	fs.DurationVar(&o.timeout, "timeout", 0, "abort the run after this duration (0 = unbounded)")
	fs.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics and /debug/pprof on this address for the run's duration (e.g. 127.0.0.1:9090; empty = off)")
}

// run is the testable entry point: context, flags and IO come from the
// caller and the exit status is returned instead of calling os.Exit.
func run(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var o options
	registerFlags(fs, &o)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	ctx, cancel := cli.WithTimeout(ctx, o.timeout)
	defer cancel()

	var r io.Reader = stdin
	if o.file != "" {
		f, err := os.Open(o.file)
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}

	var tickerW io.Writer
	if o.progress {
		tickerW = stderr
	}
	prog := cli.NewProgress("scenario", "scenarios", tickerW)

	if !profile.ValidFidelity(o.fidelity) {
		fmt.Fprintf(stderr, "scenario: unknown -fidelity %q (want %q or %q)\n",
			o.fidelity, profile.FidelityTrace, profile.FidelityAnalytical)
		return 2
	}
	if o.resume && o.checkpoint == "" {
		fmt.Fprintln(stderr, "scenario: -resume requires -checkpoint")
		return 2
	}
	if o.checkpoint != "" && !o.stream {
		fmt.Fprintln(stderr, "scenario: -checkpoint requires -stream (the journal records NDJSON lines)")
		return 2
	}
	if o.metricsAddr != "" {
		o.metrics = obs.NewRegistry()
		maddr, stopMetrics, err := obs.Serve(o.metricsAddr, o.metrics)
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		defer stopMetrics()
		fmt.Fprintf(stderr, "scenario: metrics on http://%s/metrics\n", maddr)
	}

	if grid.IsSpec(data) {
		// Grid runs count "points": the unit operators watching a
		// million-point sweep reason in.
		prog = cli.NewProgress("scenario", "points", tickerW)
		spec, err := grid.Load(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		if o.frontierRefine {
			switch {
			case o.frontier:
				fmt.Fprintln(stderr, "scenario: choose one of -frontier / -frontier-refine")
				return 2
			case !o.stream:
				fmt.Fprintln(stderr, "scenario: -frontier-refine requires -stream (the run emits two NDJSON phases)")
				return 2
			case o.fidelity != "":
				fmt.Fprintln(stderr, "scenario: -frontier-refine sets fidelity per phase; drop -fidelity")
				return 2
			}
			ro := grid.RefineOptions{
				Workers:    o.workers,
				Checkpoint: o.checkpoint,
				Resume:     o.resume,
				Progress:   refineProgress(tickerW),
			}
			// The refine ladder's manifest counts the analytical phase
			// (the full grid); the trace shortlist rides on top and is
			// sized by the run itself, not the input.
			start := time.Now()
			man := cli.Manifest{Tool: "scenario", Kind: "grid"}
			if eb, err := spec.Expand(); err == nil {
				man.Items, man.ItemsRun = eb.Len(), eb.Len()
				if hash, err := eb.Hash(); err == nil {
					man.BatchSHA256 = hash
				}
			}
			err := grid.Refine(ctx, spec, ro, stdout)
			man.Finish(start, nil, err)
			cli.EmitManifest(stderr, man)
			if err != nil {
				// The per-phase tickers carry partial progress; the
				// cross-phase note would mix two different totals.
				return cli.Report("scenario", err, cli.NewProgress("scenario", "points", nil), stderr)
			}
			return 0
		}
		if o.fidelity != "" {
			if spec.Grid.Axes.Fidelity != nil {
				fmt.Fprintln(stderr, "scenario: the grid declares a fidelity axis; drop -fidelity")
				return 2
			}
			if spec.Grid.Base.Fidelity == "" {
				spec.Grid.Base.Fidelity = o.fidelity
			}
		}
		b, err := spec.Expand()
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		var fr *grid.Frontier
		if o.frontier {
			fr = &grid.Frontier{}
		}
		return runWorkBatch(ctx, b, o, fr, prog, stdout, stderr)
	}

	if o.frontier || o.frontierRefine {
		fmt.Fprintln(stderr, "scenario: -frontier and -frontier-refine require a grid document (a top-level \"grid\" object)")
		return 2
	}

	if scenario.IsBatch(data) {
		b, err := scenario.LoadBatch(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		if o.fidelity != "" {
			for i := range b.Scenarios {
				if b.Scenarios[i].Fidelity == "" {
					b.Scenarios[i].Fidelity = o.fidelity
				}
			}
		}
		return runWorkBatch(ctx, b, o, nil, prog, stdout, stderr)
	}

	if o.checkpoint != "" {
		fmt.Fprintln(stderr, "scenario: -checkpoint requires a batch or grid input")
		return 2
	}

	cfg, err := scenario.Load(bytes.NewReader(data))
	if err != nil {
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}
	if cfg.Fidelity == "" {
		cfg.Fidelity = o.fidelity
	}
	start := time.Now()
	res, err := scenario.RunCtx(ctx, cfg)
	man := cli.Manifest{Tool: "scenario", Fidelity: cfg.Fidelity, Items: 1, ItemsRun: 1}
	man.Finish(start, nil, err)
	cli.EmitManifest(stderr, man)
	if err != nil {
		return cli.Report("scenario", err, prog, stderr)
	}
	if o.stream {
		line, err := res.NDJSONLine()
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		fmt.Fprintf(stdout, "%s\n", line)
		return 0
	}
	out, err := res.Render()
	if err != nil {
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}
	fmt.Fprintln(stdout, out)
	return 0
}

// runWorkBatch drives any ordered workload (a scenario batch or an
// expanded grid) through the unified driver: -stream is work.Run,
// -checkpoint adds its journal, and the buffered document is work.Collect
// reassembled. A non-nil frontier accumulates every result line — the
// journal-replayed ones and this run's — keyed by input index, so the
// appended summary always covers the whole grid even on a resume that
// re-emits nothing.
func runWorkBatch(ctx context.Context, b work.Batch, o options, fr *grid.Frontier, prog *cli.Progress, stdout, stderr io.Writer) int {
	start := time.Now()
	man := cli.Manifest{Tool: "scenario", Kind: b.Kind(), Fidelity: work.FidelityOf(b), Items: b.Len(), ItemsRun: b.Len()}
	if hash, err := b.Hash(); err == nil {
		man.BatchSHA256 = hash
	}
	var runErr error
	defer func() {
		man.Finish(start, nil, runErr)
		cli.EmitManifest(stderr, man)
	}()
	opts := work.Options{Workers: o.workers, Progress: prog.Hook(), Metrics: o.metrics}
	if o.checkpoint != "" {
		jr, done, err := work.OpenJournal(o.checkpoint, b, o.resume)
		if err != nil {
			runErr = err
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		defer jr.Close()
		if len(done) > 0 {
			fmt.Fprintf(stderr, "scenario: resuming, %d/%d scenarios already journaled\n", len(done), b.Len())
		}
		opts.Journal, opts.Done = jr, done
		man.ItemsResumed = len(done)
		man.ItemsRun = b.Len() - len(done)
	}
	if o.stream {
		var frErr error
		if fr != nil {
			idx := make([]int, 0, len(opts.Done))
			for i := range opts.Done {
				idx = append(idx, i)
			}
			sort.Ints(idx)
			for _, i := range idx {
				if err := fr.Add(i, opts.Done[i]); err != nil {
					runErr = err
					fmt.Fprintln(stderr, "scenario:", err)
					return 1
				}
			}
			opts.Observe = func(i int, line json.RawMessage) {
				if err := fr.Add(i, line); err != nil && frErr == nil {
					frErr = err
				}
			}
		}
		if err := work.Run(ctx, b, opts, stdout); err != nil {
			runErr = err
			return cli.Report("scenario", err, prog, stderr)
		}
		if frErr != nil {
			runErr = frErr
			fmt.Fprintln(stderr, "scenario:", frErr)
			return 1
		}
		if fr != nil {
			summary, err := fr.SummaryLine()
			if err != nil {
				runErr = err
				fmt.Fprintln(stderr, "scenario:", err)
				return 1
			}
			if _, err := fmt.Fprintf(stdout, "%s\n", summary); err != nil {
				runErr = err
				fmt.Fprintln(stderr, "scenario:", err)
				return 1
			}
		}
		return 0
	}
	lines, err := work.Collect(ctx, b, opts)
	if err != nil {
		runErr = err
		return cli.Report("scenario", err, prog, stderr)
	}
	var frontierJSON []byte
	if fr != nil {
		for i, line := range lines {
			if err := fr.Add(i, line); err != nil {
				runErr = err
				fmt.Fprintln(stderr, "scenario:", err)
				return 1
			}
		}
		if frontierJSON, err = json.Marshal(fr.Points()); err != nil {
			runErr = err
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
	}
	out, err := renderBatchDoc(lines, frontierJSON)
	if err != nil {
		runErr = err
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}
	fmt.Fprintln(stdout, out)
	return 0
}

// refineProgress adapts the two-phase refine run to the CLI ticker: each
// phase reports under its own label ("scenario [analytical]: 12/4096
// points", then "scenario [refine]: 3/17 points"), so an operator watching
// stderr sees which fidelity rung is running and how far along it is.
func refineProgress(w io.Writer) func(phase string, done, total int) {
	var mu sync.Mutex
	phases := map[string]*cli.Progress{}
	return func(phase string, done, total int) {
		mu.Lock()
		p, ok := phases[phase]
		if !ok {
			p = cli.NewProgress("scenario ["+phase+"]", "points", w)
			phases[phase] = p
		}
		mu.Unlock()
		p.Hook()(done, total)
	}
}

// renderBatchDoc reassembles the driver's NDJSON lines into the buffered
// {"scenarios": [...]} document, with an optional "frontier" field when a
// grid run computed one. The result is byte-identical to marshalling a
// scenario.BatchResult with two-space indentation: MarshalIndent is
// Marshal followed by Indent, and each driver line is already the compact
// marshal of its result.
func renderBatchDoc(lines [][]byte, frontier []byte) (string, error) {
	var compact bytes.Buffer
	compact.WriteString(`{"scenarios":[`)
	for i, line := range lines {
		if i > 0 {
			compact.WriteByte(',')
		}
		compact.Write(line)
	}
	compact.WriteString(`]`)
	if frontier != nil {
		compact.WriteString(`,"frontier":`)
		compact.Write(frontier)
	}
	compact.WriteString(`}`)
	var out bytes.Buffer
	if err := json.Indent(&out, compact.Bytes(), "", "  "); err != nil {
		return "", err
	}
	return out.String(), nil
}
