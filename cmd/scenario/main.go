// Command scenario runs a JSON-described cache-hierarchy study: simulate
// the workload, optimize the L2 knobs under an AMAT budget, and optionally
// run tuple-budget optimizations. Results are emitted as JSON.
//
// The input is either a single scenario object or a batch — a top-level
// "scenarios" array — which runs concurrently with per-scenario isolation
// (see examples/scenarios.json).
//
// Usage:
//
//	scenario -f study.json
//	scenario -f examples/scenarios.json -workers 4
//	echo '{"name":"demo","l1_kb":16,"l2_kb":512,"workload":"tpcc"}' | scenario
//
// Example config:
//
//	{
//	  "name": "my-soc",
//	  "l1_kb": 32,
//	  "l2_kb": 1024,
//	  "workload": "average",
//	  "amat_budget_ps": 1900,
//	  "tuple_budgets": [[2,2],[2,3],[1,2]]
//	}
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point: flags and IO come from the caller and
// the exit status is returned instead of calling os.Exit.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenario", flag.ContinueOnError)
	fs.SetOutput(stderr)
	file := fs.String("f", "", "scenario JSON file (default stdin)")
	workers := fs.Int("workers", 0, "concurrent scenarios in batch mode (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var r io.Reader = stdin
	if *file != "" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	data, err := io.ReadAll(r)
	if err != nil {
		fmt.Fprintln(stderr, "scenario:", err)
		return 1
	}

	var out string
	if scenario.IsBatch(data) {
		b, err := scenario.LoadBatch(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		res, err := scenario.RunBatch(b, *workers)
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		out, err = res.Render()
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
	} else {
		cfg, err := scenario.Load(bytes.NewReader(data))
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		res, err := scenario.Run(cfg)
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
		out, err = res.Render()
		if err != nil {
			fmt.Fprintln(stderr, "scenario:", err)
			return 1
		}
	}
	fmt.Fprintln(stdout, out)
	return 0
}
