package exp

import (
	"context"
	"fmt"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/opt"
	"repro/internal/sweep"
	"repro/internal/units"
)

// fig1Cache is the cache studied in Figure 1 and Section 4: 16 KB.
func fig1Cache() cachecfg.Config { return cachecfg.L1(16 * cachecfg.KB) }

// Fig1 reproduces Figure 1: leakage power vs access time for a 16 KB cache
// along four one-dimensional knob slices under a uniform (Scheme III)
// assignment — Tox fixed at 10 A and 14 A (Vth swept), Vth fixed at 200 mV
// and 400 mV (Tox swept). Evaluated on the transistor-level netlists.
func (e *Env) Fig1(ctx context.Context) (Figure, error) {
	if err := ctx.Err(); err != nil {
		return Figure{}, err
	}
	c, err := e.Cache(fig1Cache())
	if err != nil {
		return Figure{}, err
	}
	fig := Figure{
		ID:     "fig1",
		Title:  "Fixed Vth vs fixed Tox (16KB cache)",
		XLabel: "access time (ps)",
		YLabel: "leakage power (mW)",
	}
	vths := units.GridSteps(0.20, 0.50, 0.01)
	toxs := units.GridSteps(10, 14, 0.1)

	slice := func(name string, ops []device.OperatingPoint) Series {
		s := Series{Name: name}
		for _, op := range ops {
			a := components.Uniform(op)
			s.X = append(s.X, units.ToPS(c.AccessTime(a)))
			s.Y = append(s.Y, units.ToMW(c.Leakage(a).Total()))
		}
		return s
	}
	fig.Series = []Series{
		slice("Tox=10A", opt.VthOnlyGrid(vths, 10)),
		slice("Tox=14A", opt.VthOnlyGrid(vths, 14)),
		slice("Vth=200mV", opt.ToxOnlyGrid(toxs, 0.20)),
		slice("Vth=400mV", opt.ToxOnlyGrid(toxs, 0.40)),
	}
	return fig, nil
}

// SchemeComparison reproduces the Section 4 scheme study: minimum leakage of
// Schemes I, II, III for a 16 KB cache across a sweep of delay constraints.
func (e *Env) SchemeComparison(ctx context.Context) (Table, error) {
	m, err := e.Model(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	g := charlib.OptimizationGrid()
	ops := opt.PairsFromGrid(g.Vths, g.ToxAs)
	lo, hi := opt.FeasibleDelayRange(m, ops)

	t := Table{
		ID:    "tab-schemes",
		Title: "Scheme I vs II vs III minimum leakage (16KB cache)",
		Columns: []string{"delay budget (ps)", "Scheme I (mW)", "Scheme II (mW)",
			"Scheme III (mW)", "III/II", "II/I"},
		Notes: []string{
			"paper: III worst, I best, II only slightly behind I and the preferred (economical) scheme",
		},
	}
	// One worker per delay budget; rows are collected in budget order so the
	// table matches a sequential run byte for byte.
	fracs := []float64{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	rows, err := sweep.MapCtx(ctx, len(fracs), e.workers(), func(ctx context.Context, i int) ([]string, error) {
		budget := lo + fracs[i]*(hi-lo)
		r1, err := opt.OptimizeSchemeICtx(ctx, m, ops, budget, 0)
		if err != nil {
			return nil, err
		}
		r2, err := opt.OptimizeSchemeIICtx(ctx, m, ops, budget)
		if err != nil {
			return nil, err
		}
		r3, err := opt.OptimizeSchemeIIICtx(ctx, m, ops, budget)
		if err != nil {
			return nil, err
		}
		if !r1.Feasible || !r2.Feasible || !r3.Feasible {
			return nil, nil
		}
		return []string{
			fmt.Sprintf("%.0f", units.ToPS(budget)),
			fmt.Sprintf("%.4f", units.ToMW(r1.LeakageW)),
			fmt.Sprintf("%.4f", units.ToMW(r2.LeakageW)),
			fmt.Sprintf("%.4f", units.ToMW(r3.LeakageW)),
			fmt.Sprintf("%.2f", r3.LeakageW/r2.LeakageW),
			fmt.Sprintf("%.2f", r2.LeakageW/r1.LeakageW),
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	for _, row := range rows {
		if row != nil {
			t.AddRow(row...)
		}
	}
	return t, nil
}

// SchemeAssignments reports the optimal Scheme II assignments across
// budgets, demonstrating the paper's structural finding: high Vth and thick
// Tox in the cell array, aggressive values in the periphery.
func (e *Env) SchemeAssignments(ctx context.Context) (Table, error) {
	m, err := e.Model(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	g := charlib.OptimizationGrid()
	ops := opt.PairsFromGrid(g.Vths, g.ToxAs)
	lo, hi := opt.FeasibleDelayRange(m, ops)

	t := Table{
		ID:    "tab-assignments",
		Title: "Optimal Scheme II assignments (16KB cache)",
		Columns: []string{"delay budget (ps)", "cell Vth (V)", "cell Tox (A)",
			"periph Vth (V)", "periph Tox (A)"},
		Notes: []string{
			"paper: high Vth / thick Tox always in the cell array; periphery set low to meet delay",
		},
	}
	for _, frac := range []float64{0.3, 0.45, 0.6, 0.75, 0.9} {
		budget := lo + frac*(hi-lo)
		r, err := opt.OptimizeSchemeIICtx(ctx, m, ops, budget)
		if err != nil {
			return Table{}, err
		}
		if !r.Feasible {
			continue
		}
		cell := r.Assignment[components.PartCellArray]
		peri := r.Assignment[components.PartDecoder]
		t.AddRow(
			fmt.Sprintf("%.0f", units.ToPS(budget)),
			fmt.Sprintf("%.3f", cell.Vth),
			fmt.Sprintf("%.2f", cell.ToxAngstrom()),
			fmt.Sprintf("%.3f", peri.Vth),
			fmt.Sprintf("%.2f", peri.ToxAngstrom()),
		)
	}
	return t, nil
}

// KnobSensitivity reproduces the Section 4 conclusion experiment: with one
// knob pinned, how much can the other move leakage and delay? It reports the
// delay span and leakage span of each slice of Figure 1, plus the paper's
// recommended strategy (Tox pinned conservatively high, Vth free) against
// the converse.
func (e *Env) KnobSensitivity(ctx context.Context) (Table, error) {
	c, err := e.Cache(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	m, err := e.Model(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	vths := units.GridSteps(0.20, 0.50, 0.005)
	toxs := units.GridSteps(10, 14, 0.05)

	span := func(ops []device.OperatingPoint) (dspan, lratio float64) {
		dmin, dmax := 1e99, 0.0
		lmin, lmax := 1e99, 0.0
		for _, op := range ops {
			a := components.Uniform(op)
			d := c.AccessTime(a)
			l := c.Leakage(a).Total()
			if d < dmin {
				dmin = d
			}
			if d > dmax {
				dmax = d
			}
			if l < lmin {
				lmin = l
			}
			if l > lmax {
				lmax = l
			}
		}
		return dmax - dmin, lmax / lmin
	}

	t := Table{
		ID:      "tab-knob",
		Title:   "Knob sensitivity (16KB cache, uniform assignment)",
		Columns: []string{"slice", "delay span (ps)", "leakage max/min"},
		Notes: []string{
			"paper: leakage more sensitive to Tox than Vth; delay range narrower when Vth fixed",
			"strategy rows: minimum leakage at a mid delay budget when only the free knob may vary",
		},
	}
	for _, row := range []struct {
		name string
		ops  []device.OperatingPoint
	}{
		{"Tox fixed 10A (Vth swept)", opt.VthOnlyGrid(vths, 10)},
		{"Tox fixed 14A (Vth swept)", opt.VthOnlyGrid(vths, 14)},
		{"Vth fixed 0.20V (Tox swept)", opt.ToxOnlyGrid(toxs, 0.20)},
		{"Vth fixed 0.40V (Tox swept)", opt.ToxOnlyGrid(toxs, 0.40)},
	} {
		d, l := span(row.ops)
		t.AddRow(row.name, fmt.Sprintf("%.0f", units.ToPS(d)), fmt.Sprintf("%.1f", l))
	}

	// Strategy comparison at a mid budget.
	full := opt.PairsFromGrid(vths, units.GridSteps(10, 14, 0.25))
	lo, hi := opt.FeasibleDelayRange(m, full)
	budget := lo + 0.55*(hi-lo)
	strategies := []struct {
		name string
		ops  []device.OperatingPoint
	}{
		{"strategy: Tox pinned 14A, Vth free", opt.VthOnlyGrid(vths, 14)},
		{"strategy: Tox pinned 12A, Vth free", opt.VthOnlyGrid(vths, 12)},
		{"strategy: Vth pinned 0.30V, Tox free", opt.ToxOnlyGrid(toxs, 0.30)},
		{"strategy: both free", full},
	}
	for _, s := range strategies {
		r, err := opt.OptimizeSchemeIICtx(ctx, m, s.ops, budget)
		if err != nil {
			return Table{}, err
		}
		leak := "infeasible"
		if r.Feasible {
			leak = fmt.Sprintf("%.4f mW", units.ToMW(r.LeakageW))
		}
		t.AddRow(s.name, fmt.Sprintf("@%.0f", units.ToPS(budget)), leak)
	}
	return t, nil
}
