package exp

import (
	"context"
	"fmt"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/opt"
	"repro/internal/units"
)

// fig2System assembles the whole-memory-system optimizer input: 16 KB L1 +
// 512 KB L2 + main memory with the averaged workload statistics.
func (e *Env) fig2System(ctx context.Context) (*opt.MemorySystem, error) {
	tl, err := e.twoLevelFor(ctx, 16*cachecfg.KB, 512*cachecfg.KB)
	if err != nil {
		return nil, err
	}
	return &opt.MemorySystem{TwoLevel: *tl}, nil
}

// fig2Candidates returns the coarse value menus from which the tuple
// optimizer picks its Vth and Tox sets (a fab offers a handful of options).
func fig2Candidates() (vths, toxs []float64) {
	return units.GridSteps(0.20, 0.50, 0.05), units.GridSteps(10, 14, 1)
}

// Fig2 reproduces Figure 2: total energy per access (pJ) vs AMAT (ps) for
// the five (#Tox, #Vth) tuple budgets the paper plots.
func (e *Env) Fig2(ctx context.Context) (Figure, error) {
	ms, err := e.fig2System(ctx)
	if err != nil {
		return Figure{}, err
	}
	vths, toxs := fig2Candidates()

	var fastSA, slowSA opt.SystemAssignment
	for i := range fastSA {
		fastSA[i] = device.OP(0.20, 10)
		slowSA[i] = device.OP(0.50, 14)
	}
	fast := ms.AMATS(fastSA)
	slow := ms.AMATS(slowSA)
	budgets := units.Linspace(fast*1.02, slow, 12)

	fig := Figure{
		ID:     "fig2",
		Title:  "(Tox, Vth) tuple problem — total energy vs AMAT (16KB L1 + 512KB L2 + memory)",
		XLabel: "AMAT (ps)",
		YLabel: "total energy (pJ)",
	}
	for _, b := range opt.Figure2Budgets() {
		s := Series{Name: b.String()}
		curve, err := ms.TupleCurveCtx(ctx, b, vths, toxs, budgets)
		if err != nil {
			return Figure{}, err
		}
		for _, r := range curve {
			if !r.Feasible {
				continue
			}
			s.X = append(s.X, units.ToPS(r.AMATS))
			s.Y = append(s.Y, units.ToPJ(r.EnergyJ))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig2Summary distils Figure 2 into the paper's textual findings: the best
// budget, the (2,2)-vs-(2,3) gap, and the knob comparison.
func (e *Env) Fig2Summary(ctx context.Context) (Table, error) {
	ms, err := e.fig2System(ctx)
	if err != nil {
		return Table{}, err
	}
	vths, toxs := fig2Candidates()

	var fastSA, slowSA opt.SystemAssignment
	for i := range fastSA {
		fastSA[i] = device.OP(0.20, 10)
		slowSA[i] = device.OP(0.50, 14)
	}
	fast := ms.AMATS(fastSA)
	slow := ms.AMATS(slowSA)
	target := fast + 0.25*(slow-fast)

	t := Table{
		ID:      "tab-fig2-summary",
		Title:   fmt.Sprintf("Tuple budgets at AMAT <= %.0f ps", units.ToPS(target)),
		Columns: []string{"budget", "total energy (pJ)", "leakage (mW)", "Vth set (V)", "Tox set (A)"},
		Notes: []string{
			"paper: best is 2 Tox + 3 Vth; 2 Tox + 2 Vth is nearly identical;",
			"1 Tox + 2 Vth beats 2 Tox + 1 Vth (Vth is the stronger knob, restrict Tox count instead)",
		},
	}
	for _, b := range opt.Figure2Budgets() {
		r, err := ms.OptimizeTuplesCtx(ctx, b, vths, toxs, target)
		if err != nil {
			return Table{}, err
		}
		if !r.Feasible {
			t.AddRow(b.String(), "infeasible", "-", "-", "-")
			continue
		}
		t.AddRow(
			b.String(),
			fmt.Sprintf("%.1f", units.ToPJ(r.EnergyJ)),
			fmt.Sprintf("%.2f", units.ToMW(r.LeakageW)),
			formatSet(r.VthSet, "%.2f"),
			formatSet(r.ToxSet, "%.0f"),
		)
	}
	return t, nil
}

// formatSet renders a value set compactly, e.g. "{0.25, 0.45}".
func formatSet(vals []float64, f string) string {
	s := "{"
	for i, v := range vals {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf(f, v)
	}
	return s + "}"
}

// BaselineComparison compares the paper's joint (Vth, Tox) optimization
// against the Vth-only prior art ([7], Kim et al. ICCAD'03) and a Tox-only
// strawman, on the 16 KB cache across delay budgets.
func (e *Env) BaselineComparison(ctx context.Context) (Table, error) {
	m, err := e.Model(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	g := charlib.OptimizationGrid()
	full := opt.PairsFromGrid(g.Vths, g.ToxAs)
	vthOnly := opt.VthOnlyGrid(g.Vths, 12)
	toxOnly := opt.ToxOnlyGrid(g.ToxAs, 0.30)
	lo, hi := opt.FeasibleDelayRange(m, full)

	t := Table{
		ID:    "tab-baseline",
		Title: "Joint knobs vs Vth-only [7] vs Tox-only (16KB, Scheme II)",
		Columns: []string{"delay budget (ps)", "both knobs (mW)", "Vth-only@12A (mW)",
			"Tox-only@0.3V (mW)"},
		Notes: []string{
			"Vth-only is the prior art the paper extends; joint optimization dominates it,",
			"and Vth-only in turn dominates Tox-only (Vth is the stronger knob)",
		},
	}
	fmtRes := func(r opt.Result) string {
		if !r.Feasible {
			return "infeasible"
		}
		return fmt.Sprintf("%.4f", units.ToMW(r.LeakageW))
	}
	for _, frac := range []float64{0.3, 0.45, 0.6, 0.75, 0.9} {
		budget := lo + frac*(hi-lo)
		row := make([]string, 0, 4)
		row = append(row, fmt.Sprintf("%.0f", units.ToPS(budget)))
		for _, grid := range [][]device.OperatingPoint{full, vthOnly, toxOnly} {
			r, err := opt.OptimizeSchemeIICtx(ctx, m, grid, budget)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmtRes(r))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// FitQuality reports the R^2 of every fitted component model — the Section 3
// claim that the exponential/linear forms hold for all cache components.
func (e *Env) FitQuality(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "tab-fit",
		Title:   "Analytical model fit quality (R^2 over the characterization grid)",
		Columns: []string{"cache", "component", "leakage R^2", "delay R^2", "energy R^2"},
		Notes: []string{
			"paper section 3: total leakage exponential in Vth and Tox; delay linear in Tox,",
			"exponential (small exponent) in Vth — the same forms hold for every component",
		},
	}
	for _, cfg := range []cachecfg.Config{fig1Cache(), cachecfg.L2(512 * cachecfg.KB)} {
		if err := ctx.Err(); err != nil {
			return Table{}, err
		}
		m, err := e.Model(cfg)
		if err != nil {
			return Table{}, err
		}
		for _, p := range components.Parts() {
			cm := m.Comps[p]
			t.AddRow(
				cfg.String(),
				p.String(),
				fmt.Sprintf("%.5f", cm.LeakStats.R2),
				fmt.Sprintf("%.5f", cm.DelayStats.R2),
				fmt.Sprintf("%.5f", cm.EnergyStats.R2),
			)
		}
	}
	return t, nil
}
