package exp

import (
	"strings"
	"testing"
)

func sampleFigure() Figure {
	return Figure{
		ID:     "figX",
		Title:  "sample",
		XLabel: "x (ps)",
		YLabel: "y (mW)",
		Series: []Series{
			{Name: "a", X: []float64{1, 2, 3}, Y: []float64{10, 5, 2}},
			{Name: "b", X: []float64{1, 2, 3}, Y: []float64{8, 6, 4}},
		},
	}
}

func TestFigureCSV(t *testing.T) {
	csv := sampleFigure().CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 1+6 {
		t.Fatalf("csv has %d lines, want 7:\n%s", len(lines), csv)
	}
	if lines[0] != "series,x (ps),y (mW)" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "a,1,10" {
		t.Errorf("first row = %q", lines[1])
	}
}

func TestFigureASCII(t *testing.T) {
	out := sampleFigure().ASCII()
	for _, want := range []string{"figX", "sample", "a:", "b:"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
}

func TestFigurePlot(t *testing.T) {
	out := sampleFigure().Plot(40, 10)
	if !strings.Contains(out, "o = a") || !strings.Contains(out, "+ = b") {
		t.Errorf("plot legend missing:\n%s", out)
	}
	if !strings.Contains(out, "o") {
		t.Error("plot has no data marks")
	}
	// Degenerate figure doesn't crash.
	empty := Figure{ID: "e", Series: []Series{{Name: "s"}}}
	if out := empty.Plot(40, 10); !strings.Contains(out, "empty") {
		t.Errorf("degenerate plot = %q", out)
	}
}

func TestTableRendering(t *testing.T) {
	tab := Table{
		ID:      "tabX",
		Title:   "sample table",
		Columns: []string{"name", "value"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("alpha", "1")
	tab.AddRow("beta", "2")
	out := tab.ASCII()
	for _, want := range []string{"tabX", "sample table", "alpha", "beta", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("ASCII missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	if !strings.HasPrefix(csv, "name,value\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "alpha,1\n") {
		t.Errorf("csv missing row: %q", csv)
	}
}

func TestCSVEscaping(t *testing.T) {
	tab := Table{Columns: []string{"a,b", `say "hi"`}}
	tab.AddRow("x\ny", "plain")
	csv := tab.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quotes not escaped: %q", csv)
	}
	if !strings.Contains(csv, "\"x\ny\"") {
		t.Errorf("newline not quoted: %q", csv)
	}
}

func TestArtifactRender(t *testing.T) {
	f := sampleFigure()
	a := Artifact{ID: f.ID, Figure: &f}
	if a.Render() == "" || a.CSV() == "" {
		t.Error("figure artifact renders empty")
	}
	tab := Table{ID: "t", Columns: []string{"c"}}
	a = Artifact{ID: "t", Table: &tab}
	if a.Render() == "" {
		t.Error("table artifact renders empty")
	}
	empty := Artifact{ID: "none"}
	if !strings.Contains(empty.Render(), "empty") {
		t.Error("empty artifact should say so")
	}
	if empty.CSV() != "" {
		t.Error("empty artifact CSV should be empty")
	}
}
