package exp

import (
	"fmt"
	"strings"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced paper figure: named series over shared axes.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// CSV renders the figure as long-format CSV (series,x,y).
func (f Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series,%s,%s\n", csvEscape(f.XLabel), csvEscape(f.YLabel))
	for _, s := range f.Series {
		for i := range s.X {
			//lint:allow floatfmt CSV artifact schema is golden-pinned; axis values span orders of magnitude, so shortest-form is the contract here
			fmt.Fprintf(&b, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// ASCII renders the figure as an aligned data listing, one block per series.
func (f Figure) ASCII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "  (%s vs %s)\n", f.YLabel, f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %s:\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "    %12.4g  %12.4g\n", s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Plot renders a coarse ASCII scatter of the figure, one rune per series.
func (f Figure) Plot(width, height int) string {
	if width < 16 {
		width = 64
	}
	if height < 8 {
		height = 20
	}
	xmin, xmax, ymin, ymax := f.bounds()
	if xmax <= xmin || ymax <= ymin {
		return "(empty figure)\n"
	}
	grid := make([][]rune, height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", width))
	}
	marks := []rune("o+x*#@%&")
	for si, s := range f.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			cx := int(float64(width-1) * (s.X[i] - xmin) / (xmax - xmin))
			cy := int(float64(height-1) * (s.Y[i] - ymin) / (ymax - ymin))
			row := height - 1 - cy
			if row >= 0 && row < height && cx >= 0 && cx < width {
				grid[row][cx] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%-12.4g%s%12.4g (%s)\n", ymax, strings.Repeat(" ", width-24), ymax, f.YLabel)
	for _, row := range grid {
		b.WriteString("  |")
		b.WriteString(string(row))
		b.WriteString("\n")
	}
	b.WriteString("  +" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, "   %-12.4g%s%12.4g (%s)\n", xmin, strings.Repeat(" ", width-24), xmax, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "   %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

func (f Figure) bounds() (xmin, xmax, ymin, ymax float64) {
	first := true
	for _, s := range f.Series {
		for i := range s.X {
			if first {
				xmin, xmax, ymin, ymax = s.X[i], s.X[i], s.Y[i], s.Y[i]
				first = false
				continue
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if s.Y[i] < ymin {
				ymin = s.Y[i]
			}
			if s.Y[i] > ymax {
				ymax = s.Y[i]
			}
		}
	}
	return
}

// Table is a reproduced textual result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// ASCII renders the table with aligned columns.
func (t Table) ASCII() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	line := func(cells []string) {
		b.WriteString("  ")
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as CSV.
func (t Table) CSV() string {
	var b strings.Builder
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(csvEscape(c))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}
