package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"repro/internal/dist/journal"
	"repro/internal/profile"
	"repro/internal/sweep"
	"repro/internal/work"
)

// WorkKind tags experiment work: checkpoint journals written by `figures
// -checkpoint`, distributed units served by `sweepd serve -experiments`,
// and the work-registry entry that turns those units back into runnable
// batches all share it.
const WorkKind = "experiments"

// workPayload is the wire form of an experiment batch: registry IDs in
// run order.
type workPayload struct {
	IDs []string `json:"ids"`
}

// Line is the NDJSON frame of one streamed artifact — the object `figures
// -stream` emits and distributed experiment units carry, so downstream
// consumers cannot tell a distributed run from a local one.
type Line struct {
	ID    string `json:"id"`
	ASCII string `json:"ascii"`
	CSV   string `json:"csv"`
}

// NDJSONLine renders one artifact as its compact stream line.
func (a Artifact) NDJSONLine() ([]byte, error) {
	return json.Marshal(Line{ID: a.ID, ASCII: a.Render(), CSV: a.CSV()})
}

// Batch is a subset of the experiment registry as a work.Batch: each item
// is one experiment, rendering to its Line. An explicit Env pins the
// environment (cmd/figures passes its quick/full Env); a nil Env selects
// the shared process environment, which is what batches decoded from the
// wire use — substrates (caches, fitted models, miss matrices) are then
// memoized per process, so a worker fleet rebuilds them once per machine
// instead of once total, which is exactly the point of distributing the
// grid.
type Batch struct {
	ids  []string
	exps []Experiment
	env  *Env
}

var _ work.Batch = (*Batch)(nil)

func init() {
	work.Register(WorkKind, func(payload json.RawMessage) (work.Batch, error) {
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		var p workPayload
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("exp: work payload: %w", err)
		}
		return NewBatch(p.IDs, nil)
	})
}

// NewBatch resolves registry IDs (preserving input order) into an
// experiment work batch. Unknown IDs fail here — on the coordinator, not
// on some worker three machines away. env nil selects the shared process
// environment on first RunItem.
func NewBatch(ids []string, env *Env) (*Batch, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("exp: batch has no experiment ids")
	}
	exps, err := findExperiments(ids)
	if err != nil {
		return nil, err
	}
	return &Batch{ids: ids, exps: exps, env: env}, nil
}

// IDs returns the batch's registry IDs in run order.
func (b *Batch) IDs() []string { return b.ids }

// Kind names the experiments payload family.
func (b *Batch) Kind() string { return WorkKind }

// Len is the number of experiments in the batch.
func (b *Batch) Len() int { return len(b.ids) }

// Scale is the environment scale an experiments batch pins: the Env
// knobs that change result bytes. It is what the content hash covers
// (alongside the artifact selection) and what the dist coordinator
// declares to the fleet with every lease.
type Scale struct {
	Accesses int     `json:"accesses"`
	Seed     int64   `json:"seed"`
	MinR2    float64 `json:"min_r2"`
	// Fidelity is the miss-matrix builder choice ("" = trace-driven;
	// omitted from the wire form when empty so pre-fidelity journals
	// keep their hashes).
	Fidelity string `json:"fidelity,omitempty"`
}

// ScaleOf extracts the environment scale of an Env.
func ScaleOf(e *Env) Scale {
	return Scale{Accesses: e.Accesses, Seed: e.Seed, MinR2: e.MinR2, Fidelity: e.Fidelity}
}

// String renders the scale for diagnostics.
func (s Scale) String() string {
	out := fmt.Sprintf("accesses=%d seed=%d min_r2=%s",
		s.Accesses, s.Seed, strconv.FormatFloat(s.MinR2, 'f', -1, 64))
	if s.Fidelity != "" {
		out += " fidelity=" + s.Fidelity
	}
	return out
}

// hashPayload is what the content hash covers: the artifact selection
// plus the environment scale. The scenario kind gets this for free (its
// configs embed accesses); here it prevents a resume at a different
// -quick/-accesses scale from silently splicing two simulation scales
// into one result set.
type hashPayload struct {
	IDs []string `json:"ids"`
	Scale
}

// scale resolves the batch's environment scale (explicit Env or the
// shared process environment).
func (b *Batch) scale() Scale {
	env := b.env
	if env == nil {
		env = processEnv()
	}
	return ScaleOf(env)
}

// Hash is the canonical content hash pinning checkpoint journals and
// distributed runs to exactly this artifact set at exactly this
// environment scale — resuming the same IDs with different simulation
// parameters is refused as a batch-hash mismatch.
func (b *Batch) Hash() (string, error) {
	return journal.Hash(hashPayload{IDs: b.ids, Scale: b.scale()})
}

// DescribeEnv implements work.EnvDescriber: the batch's scale as JSON.
// The dist coordinator forwards it with every lease, so a fleet worker
// can verify its local configuration before executing a single unit.
func (b *Batch) DescribeEnv() (json.RawMessage, error) {
	return json.Marshal(b.scale())
}

// VerifyScale is the worker-side half of fleet environment-scale
// agreement (dist.Worker.VerifyEnv): for experiment units it decodes the
// coordinator's declared Scale and compares it to this process's shared
// environment — the one `sweepd work -quick`/`-accesses` configured. A
// mismatch is a hard error naming both scales; any other kind passes
// (their payloads are self-contained).
func VerifyScale(kind string, env json.RawMessage) error {
	if kind != WorkKind {
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(env))
	dec.DisallowUnknownFields()
	var want Scale
	if err := dec.Decode(&want); err != nil {
		return fmt.Errorf("exp: lease environment: %w", err)
	}
	if got := ScaleOf(processEnv()); got != want {
		return fmt.Errorf("exp: environment scale mismatch: coordinator declares %v, this worker runs %v (align -quick/-accesses/-fidelity across the fleet)", want, got)
	}
	return nil
}

// DescribeFidelity implements work.FidelityDescriber: the environment
// scale's miss-matrix fidelity ("" renders as its effective meaning,
// trace) — a metrics label only.
func (b *Batch) DescribeFidelity() string {
	if f := b.scale().Fidelity; f != "" {
		return f
	}
	return profile.FidelityTrace
}

// ItemKey implements work.ItemKeyer: the content identity of one
// experiment line — "exp/" plus the environment-scale hash plus the
// artifact ID. An experiment's bytes depend on its ID and the scale it
// runs at and nothing else, so two batches selecting the same artifact at
// the same scale share the key (and the line) regardless of what else
// each batch contains — the dist store then serves the overlap from
// cache.
func (b *Batch) ItemKey(i int) (string, error) {
	h, err := journal.Hash(b.scale())
	if err != nil {
		return "", err
	}
	return "exp/" + h + "/" + b.ids[i], nil
}

// RunItem executes experiment i against the batch's environment and
// returns its compact Line.
func (b *Batch) RunItem(ctx context.Context, i int) (json.RawMessage, error) {
	env := b.env
	if env == nil {
		env = processEnv()
	}
	a, err := b.exps[i].Run(ctx, env)
	if err != nil {
		return nil, fmt.Errorf("exp: %s: %w", b.exps[i].ID, err)
	}
	return a.NDJSONLine()
}

// MarshalRange renders the {"ids": [...]} payload for [r.Lo, r.Hi) — the
// self-contained description of a distributed experiment unit.
func (b *Batch) MarshalRange(r sweep.Range) (json.RawMessage, error) {
	return json.Marshal(workPayload{IDs: b.ids[r.Lo:r.Hi]})
}

// findExperiments resolves registry IDs, preserving input order.
func findExperiments(ids []string) ([]Experiment, error) {
	byID := make(map[string]Experiment)
	for _, e := range Experiments() {
		byID[e.ID] = e
	}
	out := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("exp: unknown experiment id %q", id)
		}
		out[i] = e
	}
	return out, nil
}

// procEnv is the shared environment of wire-decoded experiment batches:
// one Env per process, built lazily on first use so decoding stays cheap,
// shared across units so memoized substrates amortize.
var procEnv = struct {
	mu      sync.Mutex
	factory func() *Env
	env     *Env
}{factory: NewEnv}

// SetProcessEnv replaces the factory for the shared process environment
// used by experiment batches decoded from the wire, dropping any
// environment already built. Processes executing quick sweeps (`sweepd
// work -quick`, tests) call it before running units; the default is
// NewEnv. Every worker of a fleet must use the same environment scale, or
// distributed output stops being byte-identical to sequential.
func SetProcessEnv(factory func() *Env) {
	procEnv.mu.Lock()
	defer procEnv.mu.Unlock()
	if factory == nil {
		factory = NewEnv
	}
	procEnv.factory = factory
	procEnv.env = nil
}

// processEnv returns the shared process environment, building it on first
// use.
func processEnv() *Env {
	procEnv.mu.Lock()
	defer procEnv.mu.Unlock()
	if procEnv.env == nil {
		procEnv.env = procEnv.factory()
	}
	return procEnv.env
}
