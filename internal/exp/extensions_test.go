package exp

import (
	"math"
	"strings"
	"testing"
)

func TestModelVsDirectAblation(t *testing.T) {
	tab, err := env(t).ModelVsDirectAblation(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 2 {
		t.Fatalf("too few budgets: %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		ratio := parseCell(row[3])
		// The model-driven optimum should be within ~25% of the direct one;
		// a ratio below 1 is only possible through a small true-budget
		// violation, which must stay within the model's delay error.
		if ratio > 1.25 {
			t.Errorf("budget %s: model penalty %v too high", row[0], ratio)
		}
		if ratio < 0.85 {
			t.Errorf("budget %s: ratio %v below 1 beyond model tolerance", row[0], ratio)
		}
		violation := parseCell(row[4])
		if violation > 1.05 {
			t.Errorf("budget %s: model-opt violates the true budget by %v", row[0], violation)
		}
	}
}

func TestDelayCompositionAblation(t *testing.T) {
	tab, err := env(t).DelayCompositionAblation(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		sum := parseCell(row[2])
		over := parseCell(row[3])
		if over > sum {
			t.Errorf("%s %s: overlapped %v exceeds sum %v", row[0], row[1], over, sum)
		}
		ratio := parseCell(row[4])
		// Overlap saves the shorter of addr/decode: ratio in (1, 2).
		if ratio < 1 || ratio > 2 {
			t.Errorf("%s %s: implausible sum/overlap %v", row[0], row[1], ratio)
		}
	}
}

func TestDrowsyExtension(t *testing.T) {
	tab, err := env(t).DrowsyExtension(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = parseCell(row[2])
	}
	if !(vals["fast knobs + drowsy"] < vals["fast knobs (baseline)"]) {
		t.Error("drowsy mode must cut leakage at fast knobs")
	}
	if !(vals["optimized knobs + drowsy"] < vals["optimized knobs"]) {
		t.Error("drowsy mode must compose with optimized knobs")
	}
	if !(vals["optimized knobs + drowsy"] < vals["fast knobs + drowsy"]) {
		t.Error("static knobs must still matter under drowsy operation")
	}
}

func TestTemperatureSensitivity(t *testing.T) {
	tab, err := env(t).TemperatureSensitivity(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var prevLeak, prevShare float64
	for i, row := range tab.Rows {
		leak := parseCell(row[1])
		share := parseCell(row[2])
		if i > 0 {
			if leak <= prevLeak {
				t.Errorf("row %d: leakage should rise with temperature", i)
			}
			if share < prevShare-0.02 {
				t.Errorf("row %d: subthreshold share should rise with temperature", i)
			}
		}
		prevLeak, prevShare = leak, share
	}
}

func TestNodeComparison(t *testing.T) {
	tab, err := env(t).NodeComparison(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 nodes, got %d", len(tab.Rows))
	}
	leak65 := parseCell(tab.Rows[0][1])
	leak45 := parseCell(tab.Rows[1][1])
	if leak45 <= leak65 {
		t.Errorf("45nm projection (%v mW) should leak more than 65nm (%v mW)", leak45, leak65)
	}
	// The intro's claim: at the projected node, per-cycle leakage energy
	// overtakes dynamic energy per access.
	dyn45 := parseCell(tab.Rows[1][3])
	leakE45 := parseCell(tab.Rows[1][4])
	if leakE45 <= dyn45 {
		t.Errorf("45nm leakage/cycle (%v pJ) should exceed dynamic/access (%v pJ)", leakE45, dyn45)
	}
}

func TestReplacementAblation(t *testing.T) {
	tab, err := env(t).ReplacementAblation(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	for _, row := range tab.Rows {
		rates[row[0]] = parseCell(row[1])
	}
	if len(rates) != 3 {
		t.Fatalf("want 3 policies, got %v", rates)
	}
	// LRU should be at least as good as FIFO and random on a skewed workload.
	if rates["LRU"] > rates["FIFO"]*1.02 || rates["LRU"] > rates["random"]*1.02 {
		t.Errorf("LRU (%v) should not be worse than FIFO (%v) / random (%v)",
			rates["LRU"], rates["FIFO"], rates["random"])
	}
}

func TestAreaTable(t *testing.T) {
	tab, err := env(t).AreaTable(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	var prev float64
	for i, row := range tab.Rows {
		area := parseCell(row[2])
		if i > 0 && area <= prev {
			t.Errorf("area should grow with Tox: row %d", i)
		}
		prev = area
	}
	// The 14A row should show the documented quadratic penalty.
	last := tab.Rows[len(tab.Rows)-1]
	if ratio := strings.TrimSuffix(last[3], "x"); parseCell(ratio) < 1.1 {
		t.Errorf("area penalty at 14A should be visible, got %s", last[3])
	}
}

func TestSystemEnergyPerInstruction(t *testing.T) {
	tab, err := env(t).SystemEnergyPerInstruction(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	vals := map[string][]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = []float64{parseCell(row[1]), parseCell(row[2])}
	}
	fast := vals["all fast (0.20V, 10A)"]
	cons := vals["all conservative (0.50V, 14A)"]
	split := vals["paper-style split (cons cells, fast periphery)"]
	if fast == nil || cons == nil || split == nil {
		t.Fatalf("missing rows: %v", vals)
	}
	// Fast knobs give the best CPI; conservative the worst.
	if !(fast[0] < split[0] && split[0] <= cons[0]) {
		t.Errorf("CPI ordering wrong: fast %v split %v cons %v", fast[0], split[0], cons[0])
	}
	// The paper-style split should beat all-fast on energy per instruction.
	if !(split[1] < fast[1]) {
		t.Errorf("split energy %v should beat all-fast %v", split[1], fast[1])
	}
	for name, v := range vals {
		if math.IsNaN(v[0]) || math.IsNaN(v[1]) {
			t.Errorf("%s: unparseable metrics", name)
		}
	}
}

func TestExtensionsBundle(t *testing.T) {
	arts, err := env(t).ExtensionsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 10 {
		t.Fatalf("want 10 extension artifacts, got %d", len(arts))
	}
	for _, a := range arts {
		if a.Render() == "" || a.CSV() == "" {
			t.Errorf("artifact %s renders empty", a.ID)
		}
		if !strings.Contains(a.ID, "ablation") && !strings.Contains(a.ID, "ext") {
			t.Errorf("extension artifact %s lacks the naming convention", a.ID)
		}
	}
}

func TestJointOptimizationTable(t *testing.T) {
	tab, err := env(t).JointOptimization(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		pinned := parseCell(row[1])
		joint := parseCell(row[2])
		if math.IsNaN(joint) {
			t.Errorf("budget %s: joint infeasible", row[0])
			continue
		}
		if !math.IsNaN(pinned) && joint > pinned*(1+1e-6) {
			t.Errorf("budget %s: joint (%v) worse than pinned (%v)", row[0], joint, pinned)
		}
	}
}

func TestMemorySensitivityTable(t *testing.T) {
	tab, err := env(t).MemorySensitivity(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("want 2 memory specs, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] != "yes" {
			t.Errorf("%s: Vth-knob ordering did not survive (row %v)", row[0], row)
		}
	}
}
