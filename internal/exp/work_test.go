package exp

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/work"
)

// TestNewBatchResolvesRegistry pins construction: unknown IDs fail, known
// ones resolve in input order.
func TestNewBatchResolvesRegistry(t *testing.T) {
	if _, err := NewBatch([]string{"fig1", "no-such-artifact"}, nil); err == nil ||
		!strings.Contains(err.Error(), "no-such-artifact") {
		t.Fatalf("unknown id must fail, got %v", err)
	}
	if _, err := NewBatch(nil, nil); err == nil {
		t.Fatal("empty id list must fail")
	}
	b, err := NewBatch([]string{"fig2", "fig1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 || b.Kind() != WorkKind {
		t.Fatalf("batch = %+v", b)
	}
	if ids := b.IDs(); ids[0] != "fig2" || ids[1] != "fig1" {
		t.Fatalf("ids = %v, want input order preserved", ids)
	}
}

// TestWorkBatchHashPinsIDs checks the content hash keys on the exact ID
// sequence — the resume-refusal property.
func TestWorkBatchHashPinsIDs(t *testing.T) {
	hash := func(ids ...string) string {
		t.Helper()
		b, err := NewBatch(ids, nil)
		if err != nil {
			t.Fatal(err)
		}
		h, err := b.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	if hash("fig1", "fig2") != hash("fig1", "fig2") {
		t.Error("equal selections must hash identically")
	}
	if hash("fig1", "fig2") == hash("fig2", "fig1") {
		t.Error("reordered selections must hash differently")
	}
	if hash("fig1") == hash("fig1", "fig2") {
		t.Error("different selections must hash differently")
	}
}

// TestWorkBatchHashPinsEnvScale checks the hash also covers the
// environment knobs that change result bytes: resuming the same IDs at a
// different simulation scale must look like a different batch.
func TestWorkBatchHashPinsEnvScale(t *testing.T) {
	hash := func(env *Env) string {
		t.Helper()
		b, err := NewBatch([]string{"fig1"}, env)
		if err != nil {
			t.Fatal(err)
		}
		h, err := b.Hash()
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	full, quick := NewEnv(), NewQuickEnv()
	if hash(full) == hash(quick) {
		t.Error("different Accesses must hash differently")
	}
	reseeded := NewEnv()
	reseeded.Seed = 99
	if hash(full) == hash(reseeded) {
		t.Error("different Seed must hash differently")
	}
	if hash(NewEnv()) != hash(NewEnv()) {
		t.Error("equal environments must hash identically")
	}
}

// TestWorkBatchWireRoundTrip checks MarshalRange → registry Unmarshal
// rebuilds the sub-batch the unit's range describes.
func TestWorkBatchWireRoundTrip(t *testing.T) {
	b, err := NewBatch([]string{"fig1", "fig2", "tab-l1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload, err := b.MarshalRange(sweep.Range{Lo: 1, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := work.Unmarshal(WorkKind, payload)
	if err != nil {
		t.Fatal(err)
	}
	eb, ok := sub.(*Batch)
	if !ok {
		t.Fatalf("decoded batch is %T", sub)
	}
	if ids := eb.IDs(); len(ids) != 2 || ids[0] != "fig2" || ids[1] != "tab-l1" {
		t.Fatalf("decoded ids = %v", ids)
	}
}

// TestDescribeEnvCarriesScale checks the lease-borne environment
// description is exactly the batch's scale.
func TestDescribeEnvCarriesScale(t *testing.T) {
	env := NewQuickEnv()
	env.Seed = 7
	b, err := NewBatch([]string{"fig1"}, env)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := b.DescribeEnv()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"accesses":400000,"seed":7,"min_r2":0.97}`
	if string(desc) != want {
		t.Errorf("DescribeEnv = %s, want %s", desc, want)
	}
}

// TestVerifyScale pins the worker-side fleet agreement check: matching
// scales pass, mismatches hard-fail naming both, non-experiment kinds and
// malformed descriptions behave sanely.
func TestVerifyScale(t *testing.T) {
	defer SetProcessEnv(nil)
	SetProcessEnv(NewQuickEnv)
	local, err := NewBatch([]string{"fig1"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	desc, err := local.DescribeEnv()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyScale(WorkKind, desc); err != nil {
		t.Errorf("matching scale rejected: %v", err)
	}

	fullDesc, err := func() (json.RawMessage, error) {
		b, err := NewBatch([]string{"fig1"}, NewEnv())
		if err != nil {
			t.Fatal(err)
		}
		return b.DescribeEnv()
	}()
	if err != nil {
		t.Fatal(err)
	}
	err = VerifyScale(WorkKind, fullDesc)
	if err == nil || !strings.Contains(err.Error(), "scale mismatch") ||
		!strings.Contains(err.Error(), "accesses=1000000") || !strings.Contains(err.Error(), "accesses=400000") {
		t.Errorf("mismatch err = %v, want both scales named", err)
	}

	// Other kinds carry self-contained payloads: nothing to verify.
	if err := VerifyScale("scenario-batch", fullDesc); err != nil {
		t.Errorf("non-experiment kind checked: %v", err)
	}
	if err := VerifyScale(WorkKind, json.RawMessage(`{"bogus":1}`)); err == nil {
		t.Error("malformed lease environment accepted")
	}
}

// TestProcessEnvSharedAndResettable checks the wire-decode environment is
// built once per process and dropped when the factory changes.
func TestProcessEnvSharedAndResettable(t *testing.T) {
	defer SetProcessEnv(nil)
	calls := 0
	SetProcessEnv(func() *Env {
		calls++
		return NewQuickEnv()
	})
	e1 := processEnv()
	e2 := processEnv()
	if e1 != e2 || calls != 1 {
		t.Fatalf("process env not shared: %d factory calls", calls)
	}
	SetProcessEnv(func() *Env {
		calls++
		return NewQuickEnv()
	})
	if e3 := processEnv(); e3 == e1 || calls != 2 {
		t.Fatalf("SetProcessEnv must drop the built env (calls=%d)", calls)
	}
}
