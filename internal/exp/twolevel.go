package exp

import (
	"context"
	"fmt"
	"math"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/opt"
	"repro/internal/sweep"
	"repro/internal/units"
)

// l1Fixed is the L1 used in the L2 experiments (paper: "we fix the size of
// an L1 cache and assign the default Vth and Tox").
func l1Fixed() cachecfg.Config { return cachecfg.L1(16 * cachecfg.KB) }

// twoLevelFor assembles the optimizer input for one (L1 size, L2 size).
func (e *Env) twoLevelFor(ctx context.Context, l1Size, l2Size int) (*opt.TwoLevel, error) {
	mm, err := e.MissMatrixCtx(ctx)
	if err != nil {
		return nil, err
	}
	l1m, err := e.Model(cachecfg.L1(l1Size))
	if err != nil {
		return nil, err
	}
	l2m, err := e.Model(cachecfg.L2(l2Size))
	if err != nil {
		return nil, err
	}
	tl := &opt.TwoLevel{
		L1:  l1m,
		L2:  l2m,
		M1:  mm.L1Local[l1Size],
		M2:  mm.L2Local[l1Size][l2Size],
		Mem: e.Mem,
	}
	if err := tl.Validate(); err != nil {
		return nil, err
	}
	return tl, nil
}

// commonL2AMATTarget returns the AMAT constraint of the L2 experiments: the
// AMAT that the mid-size (1 MB) L2 achieves with fully conservative knobs,
// plus a small margin for fitted-model noise. The paper's experiment holds
// AMAT equal while comparing L2 organizations; with this target a small,
// high-miss L2 must buy the missing speed with leaky knobs, a mid-size L2
// rides at its most conservative point, and an oversized L2 pays for its
// slow access with aggressive knobs *and* carries the most cells — exactly
// the "bigger is better, up to a point" mechanism of Section 5.
func (e *Env) commonL2AMATTarget(ctx context.Context, margin float64) (float64, error) {
	a1 := components.Uniform(opt.DefaultOP())
	conservative := components.Uniform(device.OperatingPoint{Vth: e.Tech.VthMax, ToxM: e.Tech.ToxMax})
	tl, err := e.twoLevelFor(ctx, l1Fixed().SizeBytes, 1*cachecfg.MB)
	if err != nil {
		return 0, err
	}
	return tl.AMAT(a1, conservative) * margin, nil
}

// L2SizeSweep reproduces the Section 5 L2 experiments. With split=false it
// is the first experiment — a single (Vth, Tox) pair in the L2, where bigger
// L2s win (their lower miss rates let the pair be set conservatively) up to
// a point of diminishing returns. With split=true the L2's cells and
// periphery get separate pairs, and smaller L2s win.
func (e *Env) L2SizeSweep(ctx context.Context, split bool) (Table, error) {
	// Experiment (a) sits right at the 1MB-conservative point, where the
	// "bigger L2 leaks less" trade shows; experiment (b) tightens the target
	// ~3% so the knob split has live speed to buy back.
	margin := 1.002
	if split {
		margin = 1.03
	}
	return e.l2SizeSweepAt(ctx, margin, split)
}

// l2SizeSweepAt is L2SizeSweep at an explicit AMAT margin. The margin is a
// parameter (not Env state) so concurrent experiments never observe each
// other's overrides.
func (e *Env) l2SizeSweepAt(ctx context.Context, margin float64, split bool) (Table, error) {
	target, err := e.commonL2AMATTarget(ctx, margin)
	if err != nil {
		return Table{}, err
	}
	scheme := opt.SchemeIII
	id, title := "tab-l2-single", "L2 size sweep, single (Vth,Tox) pair in L2, equal AMAT"
	if split {
		scheme = opt.SchemeII
		id, title = "tab-l2-split", "L2 size sweep, split core/periphery pairs in L2, equal AMAT"
	}
	t := Table{
		ID:    id,
		Title: title,
		Columns: []string{"L2 size", "L2 local miss", "cache leakage (mW)", "AMAT (ps)",
			"L2 cell (Vth,Tox)", "L2 periph (Vth,Tox)"},
	}
	if split {
		t.Notes = append(t.Notes,
			"paper: with split pairs the cells stay conservative and the periphery buys the speed;",
			"meeting this AMAT with a small split L2 beats growing a single-pair L2")
	} else {
		t.Notes = append(t.Notes,
			"paper: with one pair, bigger L2 generally leaks less under equal AMAT, up to diminishing returns")
	}

	g := charlib.OptimizationGrid()
	ops := opt.PairsFromGrid(g.Vths, g.ToxAs)
	a1 := components.Uniform(opt.DefaultOP())

	// One worker per L2 size; rows and the best-size fold happen afterwards
	// in size order, matching the sequential table byte for byte.
	sizes := cachecfg.L2Sizes()
	type sizeRow struct {
		row  []string
		leak float64
		ok   bool
	}
	rows, err := sweep.MapCtx(ctx, len(sizes), e.workers(), func(ctx context.Context, i int) (sizeRow, error) {
		l2Size := sizes[i]
		tl, err := e.twoLevelFor(ctx, l1Fixed().SizeBytes, l2Size)
		if err != nil {
			return sizeRow{}, err
		}
		r, err := tl.OptimizeL2Ctx(ctx, scheme, a1, ops, target)
		if err != nil {
			return sizeRow{}, err
		}
		if !r.Feasible {
			return sizeRow{row: []string{kbLabel(l2Size), fmt.Sprintf("%.3f", tl.M2), "infeasible", "-", "-", "-"}}, nil
		}
		cell := r.L2Assignment[components.PartCellArray]
		peri := r.L2Assignment[components.PartDecoder]
		return sizeRow{
			row: []string{
				kbLabel(l2Size),
				fmt.Sprintf("%.3f", tl.M2),
				fmt.Sprintf("%.3f", units.ToMW(r.LeakageW)),
				fmt.Sprintf("%.0f", units.ToPS(r.AMATS)),
				cell.String(),
				peri.String(),
			},
			leak: r.LeakageW,
			ok:   true,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	best, bestLeak := "", math.Inf(1)
	for i, sr := range rows {
		t.AddRow(sr.row...)
		if sr.ok && sr.leak < bestLeak {
			bestLeak = sr.leak
			best = kbLabel(sizes[i])
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("minimum-leakage L2 size: %s", best))
	return t, nil
}

// L1Sweep reproduces the Section 5 L1 experiment: given a fixed L2, the key
// to minimizing total leakage is a small L1 (local L1 miss rates barely vary
// from 4K to 64K).
func (e *Env) L1Sweep(ctx context.Context) (Table, error) {
	const l2Size = 512 * cachecfg.KB
	mm, err := e.MissMatrixCtx(ctx)
	if err != nil {
		return Table{}, err
	}
	g := charlib.OptimizationGrid()
	ops := opt.PairsFromGrid(g.Vths, g.ToxAs)
	// Conservative fixed L2 assignment (cells slow, periphery moderate).
	a2 := components.Split(opt.ConservativeOP(), opt.DefaultOP())

	// Common AMAT target: the worst fast-corner AMAT across L1 sizes + margin.
	amats, err := sweep.MapCtx(ctx, len(cachecfg.L1Sizes()), e.workers(), func(ctx context.Context, i int) (float64, error) {
		tl, err := e.twoLevelFor(ctx, cachecfg.L1Sizes()[i], l2Size)
		if err != nil {
			return 0, err
		}
		return tl.AMAT(components.Uniform(opt.DefaultOP()), a2), nil
	})
	if err != nil {
		return Table{}, err
	}
	worst := 0.0
	for _, am := range amats {
		if am > worst {
			worst = am
		}
	}
	target := worst * 1.02

	t := Table{
		ID:    "tab-l1",
		Title: "L1 size sweep with fixed 512KB L2, equal AMAT",
		Columns: []string{"L1 size", "L1 local miss", "total leakage (mW)",
			"L1 leakage (mW)", "AMAT (ps)"},
		Notes: []string{
			"paper: L1 local miss rates are low and vary little from 4K to 64K, so a small L1 minimizes leakage",
		},
	}
	sizes := cachecfg.L1Sizes()
	type sizeRow struct {
		row  []string
		leak float64
		ok   bool
	}
	rows, err := sweep.MapCtx(ctx, len(sizes), e.workers(), func(ctx context.Context, i int) (sizeRow, error) {
		l1Size := sizes[i]
		tl, err := e.twoLevelFor(ctx, l1Size, l2Size)
		if err != nil {
			return sizeRow{}, err
		}
		r, err := tl.OptimizeL1Ctx(ctx, opt.SchemeII, a2, ops, target)
		if err != nil {
			return sizeRow{}, err
		}
		if !r.Feasible {
			return sizeRow{row: []string{kbLabel(l1Size), fmt.Sprintf("%.3f", mm.L1Local[l1Size]), "infeasible", "-", "-"}}, nil
		}
		l1Leak := tl.L1.LeakageW(r.L1Assignment)
		return sizeRow{
			row: []string{
				kbLabel(l1Size),
				fmt.Sprintf("%.3f", mm.L1Local[l1Size]),
				fmt.Sprintf("%.3f", units.ToMW(r.LeakageW)),
				fmt.Sprintf("%.3f", units.ToMW(l1Leak)),
				fmt.Sprintf("%.0f", units.ToPS(r.AMATS)),
			},
			leak: r.LeakageW,
			ok:   true,
		}, nil
	})
	if err != nil {
		return Table{}, err
	}
	best, bestLeak := "", math.Inf(1)
	for i, sr := range rows {
		t.AddRow(sr.row...)
		if sr.ok && sr.leak < bestLeak {
			bestLeak = sr.leak
			best = kbLabel(sizes[i])
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("minimum-leakage L1 size: %s", best))
	return t, nil
}

// MissRateTable reports the architectural inputs (Section 5's "architectural
// simulations"): local miss rates per suite and the suite average.
func (e *Env) MissRateTable(ctx context.Context) (Table, error) {
	ms, err := e.SuiteMatricesCtx(ctx)
	if err != nil {
		return Table{}, err
	}
	avg, err := e.MissMatrixCtx(ctx)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "tab-missrates",
		Title:   "Local miss rates per workload (L2 rates at L1=16KB)",
		Columns: []string{"workload", "L1 4K", "L1 16K", "L1 64K", "L2 256K", "L2 1M", "L2 4M"},
	}
	add := func(name string, l1 map[int]float64, l2 map[int]map[int]float64) {
		t.AddRow(name,
			fmt.Sprintf("%.3f", l1[4*cachecfg.KB]),
			fmt.Sprintf("%.3f", l1[16*cachecfg.KB]),
			fmt.Sprintf("%.3f", l1[64*cachecfg.KB]),
			fmt.Sprintf("%.3f", l2[16*cachecfg.KB][256*cachecfg.KB]),
			fmt.Sprintf("%.3f", l2[16*cachecfg.KB][1*cachecfg.MB]),
			fmt.Sprintf("%.3f", l2[16*cachecfg.KB][4*cachecfg.MB]),
		)
	}
	for _, m := range ms {
		add(m.Workload, m.L1Local, m.L2Local)
	}
	add(avg.Workload, avg.L1Local, avg.L2Local)
	return t, nil
}

// L2SweepAtMargin exposes the L2 sweep at an explicit AMAT margin for
// sensitivity studies and ablations.
func (e *Env) L2SweepAtMargin(ctx context.Context, margin float64) (single, split Table, err error) {
	single, err = e.l2SizeSweepAt(ctx, margin, false)
	if err != nil {
		return
	}
	split, err = e.l2SizeSweepAt(ctx, margin, true)
	return
}
