package exp

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// The experiments share one quick environment: miss matrices and fitted
// models are built once for the whole package test run.
var (
	envOnce sync.Once
	testEnv *Env
)

func env(t *testing.T) *Env {
	t.Helper()
	envOnce.Do(func() { testEnv = NewQuickEnv() })
	return testEnv
}

// parseMW extracts a float from a table cell, returning NaN for dashes and
// "infeasible".
func parseCell(s string) float64 {
	s = strings.TrimSpace(s)
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return f
}

func seriesByName(f Figure, name string) *Series {
	for i := range f.Series {
		if f.Series[i].Name == name {
			return &f.Series[i]
		}
	}
	return nil
}

func span(xs []float64) float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi - lo
}

func minOf(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		m = math.Min(m, x)
	}
	return m
}

func TestFig1ReproducesPaperShapes(t *testing.T) {
	fig, err := env(t).Fig1(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("Figure 1 needs 4 slices, got %d", len(fig.Series))
	}
	tox10 := seriesByName(fig, "Tox=10A")
	tox14 := seriesByName(fig, "Tox=14A")
	vth02 := seriesByName(fig, "Vth=200mV")
	vth04 := seriesByName(fig, "Vth=400mV")
	for _, s := range []*Series{tox10, tox14, vth02, vth04} {
		if s == nil || len(s.X) < 10 {
			t.Fatal("missing or short Figure 1 series")
		}
	}

	// Paper: "the delay doesn't show as wide a range when Vth is fixed as
	// when Tox is fixed."
	if span(vth02.X) >= span(tox10.X) {
		t.Errorf("Vth-fixed delay span %v should be < Tox-fixed span %v", span(vth02.X), span(tox10.X))
	}
	if span(vth04.X) >= span(tox14.X) {
		t.Errorf("Vth=0.4 delay span %v should be < Tox=14 span %v", span(vth04.X), span(tox14.X))
	}

	// Gate-leakage floor: the thin-oxide slice cannot get below a floor far
	// above the thick-oxide slice's reach.
	if minOf(tox10.Y) < 10*minOf(tox14.Y) {
		t.Errorf("Tox=10A floor %v should be >> Tox=14A floor %v", minOf(tox10.Y), minOf(tox14.Y))
	}

	// Leakage decreases monotonically along every slice (knobs only go up).
	for _, s := range []*Series{tox10, tox14, vth02, vth04} {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Errorf("series %s: leakage not strictly decreasing at %d", s.Name, i)
				break
			}
		}
	}

	// Magnitudes: a 16KB cache in the mW decade, access times in hundreds of ps.
	if tox10.Y[0] < 1 || tox10.Y[0] > 100 {
		t.Errorf("fast-corner leakage %v mW out of range", tox10.Y[0])
	}
	if tox10.X[0] < 200 || tox10.X[0] > 1500 {
		t.Errorf("fast-corner access %v ps out of range", tox10.X[0])
	}
}

func TestSchemeComparisonOrdering(t *testing.T) {
	tab, err := env(t).SchemeComparison(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("too few budgets: %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		s1 := parseCell(row[1])
		s2 := parseCell(row[2])
		s3 := parseCell(row[3])
		if math.IsNaN(s1) || math.IsNaN(s2) || math.IsNaN(s3) {
			t.Fatalf("unparseable row %v", row)
		}
		const eps = 1e-9
		if !(s1 <= s2*(1+1e-3) && s2 <= s3*(1+eps)) {
			t.Errorf("scheme ordering violated at budget %s: I=%v II=%v III=%v", row[0], s1, s2, s3)
		}
	}
}

func TestSchemeAssignmentsStructure(t *testing.T) {
	tab, err := env(t).SchemeAssignments(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		cellVth, cellTox := parseCell(row[1]), parseCell(row[2])
		periVth, periTox := parseCell(row[3]), parseCell(row[4])
		if cellVth < periVth {
			t.Errorf("budget %s: cell Vth %v < periphery %v", row[0], cellVth, periVth)
		}
		if cellTox < periTox {
			t.Errorf("budget %s: cell Tox %v < periphery %v", row[0], cellTox, periTox)
		}
	}
}

func TestKnobSensitivityTable(t *testing.T) {
	tab, err := env(t).KnobSensitivity(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	// First four rows are the slices: delay spans of Vth-fixed rows (3,4)
	// must be smaller than Tox-fixed rows (1,2).
	toxFixedSpan := math.Min(parseCell(tab.Rows[0][1]), parseCell(tab.Rows[1][1]))
	vthFixedSpan := math.Max(parseCell(tab.Rows[2][1]), parseCell(tab.Rows[3][1]))
	if vthFixedSpan >= toxFixedSpan {
		t.Errorf("Vth-fixed delay spans (%v) should be below Tox-fixed spans (%v)",
			vthFixedSpan, toxFixedSpan)
	}
	// Strategy rows: pinning Tox at 14A (paper's recommendation) must beat
	// pinning Vth, and be close to the both-free optimum.
	var tox14, vthPinned, bothFree float64 = math.NaN(), math.NaN(), math.NaN()
	for _, row := range tab.Rows {
		val := parseCell(strings.TrimSuffix(row[2], " mW"))
		switch {
		case strings.Contains(row[0], "Tox pinned 14A"):
			tox14 = val
		case strings.Contains(row[0], "Vth pinned"):
			vthPinned = val
		case strings.Contains(row[0], "both free"):
			bothFree = val
		}
	}
	if math.IsNaN(tox14) || math.IsNaN(vthPinned) || math.IsNaN(bothFree) {
		t.Fatalf("strategy rows missing: %v", tab.Rows)
	}
	if tox14 >= vthPinned {
		t.Errorf("Tox-pinned-high strategy (%v mW) should beat Vth-pinned (%v mW)", tox14, vthPinned)
	}
	if tox14 > 2*bothFree {
		t.Errorf("Tox-pinned-high (%v mW) should be close to the joint optimum (%v mW)", tox14, bothFree)
	}
}

func TestMissRateTable(t *testing.T) {
	tab, err := env(t).MissRateTable(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 { // three suites + average
		t.Fatalf("want 4 rows, got %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		l1s := []float64{parseCell(row[1]), parseCell(row[2]), parseCell(row[3])}
		if !(l1s[0] >= l1s[1] && l1s[1] >= l1s[2]) {
			t.Errorf("%s: L1 miss rates not decreasing: %v", row[0], l1s)
		}
		l2s := []float64{parseCell(row[4]), parseCell(row[5]), parseCell(row[6])}
		if !(l2s[0] >= l2s[1] && l2s[1] >= l2s[2]-1e-9) {
			t.Errorf("%s: L2 miss rates not decreasing: %v", row[0], l2s)
		}
	}
}

// sweepLeaks returns per-size leakage in row order (infeasible rows = +Inf).
func sweepLeaks(tab Table) (sizes []string, leaks []float64) {
	for _, row := range tab.Rows {
		sizes = append(sizes, row[0])
		v := parseCell(row[2])
		if math.IsNaN(v) {
			v = math.Inf(1)
		}
		leaks = append(leaks, v)
	}
	return
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func TestL2SingleSweepShape(t *testing.T) {
	tab, err := env(t).L2SizeSweep(t.Context(), false)
	if err != nil {
		t.Fatal(err)
	}
	sizes, leaks := sweepLeaks(tab)
	// Paper: under equal AMAT a bigger L2 leaks less than the smallest
	// viable one — the optimum is not the smallest size...
	smallestFeasible := -1
	for i, l := range leaks {
		if !math.IsInf(l, 1) {
			smallestFeasible = i
			break
		}
	}
	if smallestFeasible < 0 {
		t.Fatal("no feasible L2 size")
	}
	best := argmin(leaks)
	if best < smallestFeasible {
		t.Fatalf("impossible argmin ordering")
	}
	if best == smallestFeasible && leaks[smallestFeasible+1] < leaks[smallestFeasible] {
		t.Errorf("bigger L2 should win: %v -> %v", sizes, leaks)
	}
	// ...but the largest is not the best (diminishing returns).
	if best == len(leaks)-1 {
		t.Errorf("the largest L2 should not be the leakage optimum: %v -> %v", sizes, leaks)
	}
}

func TestL2SplitSweepShape(t *testing.T) {
	tab, err := env(t).L2SizeSweep(t.Context(), true)
	if err != nil {
		t.Fatal(err)
	}
	// In every feasible split row, the cells are at least as conservative as
	// the periphery on both knobs (paper's structural finding).
	feasible := 0
	for _, row := range tab.Rows {
		if strings.Contains(row[2], "infeasible") {
			continue
		}
		feasible++
		cell, peri := row[4], row[5]
		cv, ct := parseOP(cell)
		pv, pt := parseOP(peri)
		if cv < pv || ct < pt-1e-9 {
			t.Errorf("%s: cells (%s) less conservative than periphery (%s)", row[0], cell, peri)
		}
	}
	if feasible < 2 {
		t.Fatalf("too few feasible split rows: %d", feasible)
	}
}

// parseOP extracts Vth and Tox from "(Vth=0.44V, Tox=14.0A)".
func parseOP(s string) (vth, tox float64) {
	s = strings.Trim(s, "()")
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		switch {
		case strings.HasPrefix(part, "Vth="):
			vth = parseCell(strings.TrimSuffix(strings.TrimPrefix(part, "Vth="), "V"))
		case strings.HasPrefix(part, "Tox="):
			tox = parseCell(strings.TrimSuffix(strings.TrimPrefix(part, "Tox="), "A"))
		}
	}
	return
}

func TestSplitBeatsGrowingTheL2(t *testing.T) {
	// The paper's head-to-head at one common AMAT target: splitting the
	// knobs inside the L2 never hurts, strictly helps somewhere, and shifts
	// the optimal L2 size down (smaller L2 + aggressive periphery instead
	// of growing the cache).
	single, split, err := env(t).L2SweepAtMargin(t.Context(), 1.03)
	if err != nil {
		t.Fatal(err)
	}
	_, singleLeaks := sweepLeaks(single)
	sizes, splitLeaks := sweepLeaks(split)
	strict := false
	for i := range splitLeaks {
		if splitLeaks[i] > singleLeaks[i]*(1+1e-9) {
			t.Errorf("%s: split (%v) worse than single (%v)", sizes[i], splitLeaks[i], singleLeaks[i])
		}
		if !math.IsInf(splitLeaks[i], 1) && splitLeaks[i] < singleLeaks[i]*(1-1e-6) {
			strict = true
		}
	}
	if !strict {
		t.Error("splitting should strictly improve at least one L2 size")
	}
	if argmin(splitLeaks) > argmin(singleLeaks) {
		t.Errorf("split optimum size should not grow: single argmin %v, split argmin %v",
			argmin(singleLeaks), argmin(splitLeaks))
	}
}

func TestSplitShiftsOptimumSmaller(t *testing.T) {
	// Published experiment margins: single at 1.002, split at 1.03. The
	// split experiment's optimal L2 size must be no larger than the single
	// experiment's (paper's abstract: with split pairs, "smaller L2's will
	// yield less total leakage").
	singleTab, err := env(t).L2SizeSweep(t.Context(), false)
	if err != nil {
		t.Fatal(err)
	}
	splitTab, err := env(t).L2SizeSweep(t.Context(), true)
	if err != nil {
		t.Fatal(err)
	}
	_, singleLeaks := sweepLeaks(singleTab)
	_, splitLeaks := sweepLeaks(splitTab)
	if argmin(splitLeaks) > argmin(singleLeaks) {
		t.Errorf("split experiment optimum (index %d) larger than single experiment optimum (index %d)",
			argmin(splitLeaks), argmin(singleLeaks))
	}
}

func TestL1SweepSmallIsBest(t *testing.T) {
	tab, err := env(t).L1Sweep(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	leaks := map[string]float64{}
	for _, row := range tab.Rows {
		leaks[row[0]] = parseCell(row[2])
	}
	if !(leaks["4KB"] <= leaks["16KB"] && leaks["16KB"] <= leaks["64KB"]) {
		t.Errorf("total leakage should grow with L1 size: %v", leaks)
	}
	found := false
	for _, n := range tab.Notes {
		if strings.Contains(n, "minimum-leakage L1 size: 4KB") {
			found = true
		}
	}
	if !found {
		t.Errorf("4KB should be the minimum-leakage L1: notes %v", tab.Notes)
	}
}

func TestFig2ReproducesPaperOrdering(t *testing.T) {
	fig, err := env(t).Fig2(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("Figure 2 needs 5 series, got %d", len(fig.Series))
	}
	get := func(name string) *Series {
		s := seriesByName(fig, name)
		if s == nil || len(s.X) < 3 {
			t.Fatalf("missing series %q", name)
		}
		return s
	}
	s22 := get("2 Tox + 2 Vth")
	s23 := get("2 Tox + 3 Vth")
	s21 := get("2 Tox + 1 Vth")
	s12 := get("1 Tox + 2 Vth")

	// At the tight (left) end: (2,3) <= (2,2) and both far below the
	// single-value budgets; (1,2) <= (2,1).
	if s23.Y[0] > s22.Y[0]*(1+1e-6) {
		t.Errorf("left edge: E(2,3)=%v should be <= E(2,2)=%v", s23.Y[0], s22.Y[0])
	}
	if s22.Y[0] > 0.8*s21.Y[0] {
		t.Errorf("left edge: E(2,2)=%v should be well below E(2,1)=%v", s22.Y[0], s21.Y[0])
	}
	if s12.Y[0] > s21.Y[0]*(1+1e-6) {
		t.Errorf("left edge: E(1Tox,2Vth)=%v should be <= E(2Tox,1Vth)=%v", s12.Y[0], s21.Y[0])
	}
	// (1,2) never worse than (2,1) at comparable AMAT points.
	for i := range s12.Y {
		if i < len(s21.Y) && s12.Y[i] > s21.Y[i]*1.02 {
			t.Errorf("point %d: E(1,2)=%v above E(2,1)=%v", i, s12.Y[i], s21.Y[i])
		}
	}
	// (2,2) within 10% of (2,3) everywhere ("difference ... is very small").
	for i := range s22.Y {
		if i < len(s23.Y) && s22.Y[i] > s23.Y[i]*1.10 {
			t.Errorf("point %d: E(2,2)=%v more than 10%% above E(2,3)=%v", i, s22.Y[i], s23.Y[i])
		}
	}
	// Curves converge to the right: the spread at the loose end is far
	// smaller than at the tight end.
	last := len(s21.Y) - 1
	tightSpread := s21.Y[0] - s23.Y[0]
	looseSpread := s21.Y[last] - s23.Y[min(last, len(s23.Y)-1)]
	if looseSpread > tightSpread/2 {
		t.Errorf("curves should converge: tight spread %v, loose spread %v", tightSpread, looseSpread)
	}
	// Energy magnitudes in Figure 2's regime (tens to hundreds of pJ).
	if s23.Y[0] < 20 || s21.Y[0] > 5000 {
		t.Errorf("energies out of regime: best %v pJ, worst %v pJ", s23.Y[0], s21.Y[0])
	}
}

func TestFig2SummaryRenders(t *testing.T) {
	tab, err := env(t).Fig2Summary(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("want 5 budgets, got %d", len(tab.Rows))
	}
	if out := tab.ASCII(); !strings.Contains(out, "2 Tox + 3 Vth") {
		t.Error("summary missing budgets")
	}
}

func TestBaselineDominance(t *testing.T) {
	tab, err := env(t).BaselineComparison(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		both := parseCell(row[1])
		vthOnly := parseCell(row[2])
		toxOnly := parseCell(row[3])
		if math.IsNaN(both) {
			continue
		}
		if !math.IsNaN(vthOnly) && both > vthOnly*(1+1e-9) {
			t.Errorf("budget %s: joint (%v) worse than Vth-only (%v)", row[0], both, vthOnly)
		}
		if !math.IsNaN(vthOnly) && !math.IsNaN(toxOnly) && vthOnly > toxOnly*(1+1e-9) {
			t.Errorf("budget %s: Vth-only (%v) worse than Tox-only (%v)", row[0], vthOnly, toxOnly)
		}
	}
}

func TestFitQualityGate(t *testing.T) {
	tab, err := env(t).FitQuality(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		for col := 2; col <= 4; col++ {
			if r2 := parseCell(row[col]); r2 < 0.95 {
				t.Errorf("%s/%s column %d R2 = %v", row[0], row[1], col, r2)
			}
		}
	}
}

func TestAllArtifacts(t *testing.T) {
	arts, err := env(t).All()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 12 {
		t.Fatalf("want 12 artifacts, got %d", len(arts))
	}
	seen := map[string]bool{}
	for _, a := range arts {
		if seen[a.ID] {
			t.Errorf("duplicate artifact %s", a.ID)
		}
		seen[a.ID] = true
		if a.Render() == "" || a.CSV() == "" {
			t.Errorf("artifact %s renders empty", a.ID)
		}
	}
	for _, want := range []string{"fig1", "fig2", "tab-schemes", "tab-l2-single", "tab-l2-split", "tab-l1"} {
		if !seen[want] {
			t.Errorf("missing artifact %s", want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
