package exp

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// renderAll flattens a full artifact list (ASCII + CSV forms) into one byte
// stream for whole-run comparison.
func renderAll(t *testing.T, e *Env) string {
	t.Helper()
	arts, err := e.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(Experiments()) {
		t.Fatalf("got %d artifacts, want %d", len(arts), len(Experiments()))
	}
	var b strings.Builder
	for _, a := range arts {
		b.WriteString(a.ID)
		b.WriteString("\n")
		b.WriteString(a.Render())
		b.WriteString(a.CSV())
	}
	return b.String()
}

// tinyEnv returns a fresh environment small enough to rebuild repeatedly:
// determinism does not depend on trace length, only on per-shard seeding.
func tinyEnv(workers int) *Env {
	e := NewQuickEnv()
	e.Accesses = 100_000
	e.Workers = workers
	return e
}

// TestAllParallelByteIdentical is the sweep engine's contract test: three
// parallel runs at different worker counts must render (ASCII and CSV)
// byte-identically to a sequential run, each starting from a cold
// environment so matrices, models and caches are rebuilt under contention.
func TestAllParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds four cold environments")
	}
	seq := renderAll(t, tinyEnv(1))
	for _, workers := range []int{0, 2, 8} {
		par := renderAll(t, tinyEnv(workers))
		if par != seq {
			t.Fatalf("workers=%d output differs from sequential run", workers)
		}
	}
}

// renderArts flattens an artifact slice the same way renderAll does.
func renderArts(arts []Artifact) string {
	var b strings.Builder
	for _, a := range arts {
		b.WriteString(a.ID)
		b.WriteString("\n")
		b.WriteString(a.Render())
		b.WriteString(a.CSV())
	}
	return b.String()
}

// TestStreamExperimentsByteIdentical extends the engine contract to the
// streaming path: artifacts streamed at several worker counts must arrive
// in registry order and render byte-identically to a buffered sequential
// run — streaming changes delivery, never content.
func TestStreamExperimentsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("rebuilds cold environments")
	}
	seq := renderAll(t, tinyEnv(1))
	for _, workers := range []int{1, 4} {
		e := tinyEnv(workers)
		ch, wait := e.StreamExperiments(context.Background(), Experiments())
		var arts []Artifact
		for a := range ch {
			arts = append(arts, a)
		}
		if err := wait(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got := renderArts(arts); got != seq {
			t.Fatalf("workers=%d: streamed output differs from buffered sequential run", workers)
		}
	}
}

// TestRunExperimentsCtxCancel checks that a cancelled evaluation aborts
// promptly with context.Canceled instead of running the full registry.
func TestRunExperimentsCtxCancel(t *testing.T) {
	e := NewQuickEnv()
	e.Accesses = 100_000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.AllCtx(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestProgressReportsCompletion checks the Env.Progress hook sees every
// experiment exactly once with a plausible (done, total) pair.
func TestProgressReportsCompletion(t *testing.T) {
	e := env(t)
	old := e.Progress
	defer func() { e.Progress = old }()
	var calls atomic.Int64
	e.Progress = func(done, total int) {
		calls.Add(1)
		if done < 1 || done > total {
			t.Errorf("progress (%d, %d) out of range", done, total)
		}
	}
	var fit []Experiment
	for _, x := range Experiments() {
		if x.ID == "tab-fit" || x.ID == "fig1" {
			fit = append(fit, x)
		}
	}
	if _, err := e.RunExperimentsCtx(context.Background(), fit); err != nil {
		t.Fatal(err)
	}
	if int(calls.Load()) != len(fit) {
		t.Fatalf("progress called %d times for %d experiments", calls.Load(), len(fit))
	}
}

// TestRegistryIDsStable pins the artifact registry: IDs are part of the CLI
// surface (figures -only/-list) and of the CSV file names.
func TestRegistryIDsStable(t *testing.T) {
	want := []string{
		"fig1", "tab-schemes", "tab-assignments", "tab-knob", "tab-missrates",
		"tab-l2-single", "tab-l2-split", "tab-l1", "fig2", "tab-fig2-summary",
		"tab-baseline", "tab-fit",
	}
	exps := Experiments()
	if len(exps) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(exps), len(want))
	}
	for i, x := range exps {
		if x.ID != want[i] {
			t.Errorf("registry[%d] = %q, want %q", i, x.ID, want[i])
		}
	}
}

// TestRunExperimentsSubset checks that a single registry entry can run in
// isolation and reports its own ID on the artifact.
func TestRunExperimentsSubset(t *testing.T) {
	e := env(t)
	var fit []Experiment
	for _, x := range Experiments() {
		if x.ID == "tab-fit" {
			fit = append(fit, x)
		}
	}
	arts, err := e.RunExperiments(fit)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != 1 || arts[0].ID != "tab-fit" || arts[0].Table == nil {
		t.Fatalf("subset run returned %+v", arts)
	}
}
