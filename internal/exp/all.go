package exp

import (
	"context"
	"fmt"
	"sync/atomic"

	"repro/internal/sweep"
)

// Artifact is one reproduced figure or table.
type Artifact struct {
	ID     string
	Figure *Figure // nil for tables
	Table  *Table  // nil for figures
}

// Render returns the artifact's ASCII form.
func (a Artifact) Render() string {
	if a.Figure != nil {
		return a.Figure.ASCII()
	}
	if a.Table != nil {
		return a.Table.ASCII()
	}
	return "(empty artifact)\n"
}

// CSV returns the artifact's CSV form.
func (a Artifact) CSV() string {
	if a.Figure != nil {
		return a.Figure.CSV()
	}
	if a.Table != nil {
		return a.Table.CSV()
	}
	return ""
}

// Experiment is one entry of the evaluation: a stable artifact ID and the
// builder that regenerates it from an environment. Builders honor the
// context: cancellation aborts their internal sweeps.
type Experiment struct {
	ID  string
	Run func(context.Context, *Env) (Artifact, error)
}

// figExp wraps a figure builder (as a method expression, receiver first) as
// an Experiment.
func figExp(id string, f func(*Env, context.Context) (Figure, error)) Experiment {
	return Experiment{ID: id, Run: func(ctx context.Context, e *Env) (Artifact, error) {
		fig, err := f(e, ctx)
		if err != nil {
			return Artifact{}, err
		}
		return Artifact{ID: fig.ID, Figure: &fig}, nil
	}}
}

// tabExp wraps a table builder as an Experiment.
func tabExp(id string, f func(*Env, context.Context) (Table, error)) Experiment {
	return Experiment{ID: id, Run: func(ctx context.Context, e *Env) (Artifact, error) {
		tab, err := f(e, ctx)
		if err != nil {
			return Artifact{}, err
		}
		return Artifact{ID: tab.ID, Table: &tab}, nil
	}}
}

// Experiments is the registry of the paper's evaluation in the paper's
// order. All() runs the whole list; cmd/figures uses it to list artifact
// IDs and to run a single artifact without paying for the rest.
func Experiments() []Experiment {
	return []Experiment{
		figExp("fig1", (*Env).Fig1),
		tabExp("tab-schemes", (*Env).SchemeComparison),
		tabExp("tab-assignments", (*Env).SchemeAssignments),
		tabExp("tab-knob", (*Env).KnobSensitivity),
		tabExp("tab-missrates", (*Env).MissRateTable),
		tabExp("tab-l2-single", func(e *Env, ctx context.Context) (Table, error) { return e.L2SizeSweep(ctx, false) }),
		tabExp("tab-l2-split", func(e *Env, ctx context.Context) (Table, error) { return e.L2SizeSweep(ctx, true) }),
		tabExp("tab-l1", (*Env).L1Sweep),
		figExp("fig2", (*Env).Fig2),
		tabExp("tab-fig2-summary", (*Env).Fig2Summary),
		tabExp("tab-baseline", (*Env).BaselineComparison),
		tabExp("tab-fit", (*Env).FitQuality),
	}
}

// All runs every experiment in the paper's order and returns the artifacts;
// it is AllCtx without cancellation.
func (e *Env) All() ([]Artifact, error) {
	return e.AllCtx(context.Background())
}

// AllCtx runs every experiment in the paper's order and returns the
// artifacts. Experiments fan out across e.Workers workers (the shared
// substrates are singleflight-memoized, so each model and miss matrix is
// still built once); artifacts are collected in registry order, so the
// output is byte-identical to a sequential run. An error in any experiment
// aborts the run: partial evaluations are worse than loud failures in a
// reproduction. Cancelling ctx stops scheduling experiments and aborts the
// sweeps inside running ones.
func (e *Env) AllCtx(ctx context.Context) ([]Artifact, error) {
	return e.RunExperimentsCtx(ctx, Experiments())
}

// RunExperiments runs a subset of the registry, preserving input order; it
// is RunExperimentsCtx without cancellation.
func (e *Env) RunExperiments(exps []Experiment) ([]Artifact, error) {
	return e.RunExperimentsCtx(context.Background(), exps)
}

// RunExperimentsCtx runs a subset of the registry, preserving input order
// and reporting completions to e.Progress.
func (e *Env) RunExperimentsCtx(ctx context.Context, exps []Experiment) ([]Artifact, error) {
	var done atomic.Int64
	return sweep.MapCtx(ctx, len(exps), e.workers(), func(ctx context.Context, i int) (Artifact, error) {
		a, err := exps[i].Run(ctx, e)
		if err != nil {
			return Artifact{}, fmt.Errorf("exp: %s: %w", exps[i].ID, err)
		}
		if e.Progress != nil {
			e.Progress(int(done.Add(1)), len(exps))
		}
		return a, nil
	})
}

// StreamExperiments runs a subset of the registry and delivers artifacts
// over the returned channel in registry order as they complete, with
// bounded buffering — the streaming complement to RunExperimentsCtx for
// emitting results before the whole evaluation finishes. Drain the channel,
// then call wait for the verdict. Progress (e.Progress) is reported once
// per emitted artifact, serialized.
func (e *Env) StreamExperiments(ctx context.Context, exps []Experiment) (<-chan Artifact, func() error) {
	return sweep.Stream(ctx, len(exps), sweep.StreamConfig{
		Workers:  e.workers(),
		Progress: e.Progress,
	}, func(ctx context.Context, i int) (Artifact, error) {
		a, err := exps[i].Run(ctx, e)
		if err != nil {
			return Artifact{}, fmt.Errorf("exp: %s: %w", exps[i].ID, err)
		}
		return a, nil
	})
}
