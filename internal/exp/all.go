package exp

import "fmt"

// Artifact is one reproduced figure or table.
type Artifact struct {
	ID     string
	Figure *Figure // nil for tables
	Table  *Table  // nil for figures
}

// Render returns the artifact's ASCII form.
func (a Artifact) Render() string {
	if a.Figure != nil {
		return a.Figure.ASCII()
	}
	if a.Table != nil {
		return a.Table.ASCII()
	}
	return "(empty artifact)\n"
}

// CSV returns the artifact's CSV form.
func (a Artifact) CSV() string {
	if a.Figure != nil {
		return a.Figure.CSV()
	}
	if a.Table != nil {
		return a.Table.CSV()
	}
	return ""
}

// All runs every experiment in the paper's order and returns the artifacts.
// An error in any experiment aborts the run: partial evaluations are worse
// than loud failures in a reproduction.
func (e *Env) All() ([]Artifact, error) {
	var out []Artifact

	addF := func(f Figure, err error) error {
		if err != nil {
			return fmt.Errorf("exp: %s: %w", f.ID, err)
		}
		fc := f
		out = append(out, Artifact{ID: f.ID, Figure: &fc})
		return nil
	}
	addT := func(t Table, err error) error {
		if err != nil {
			return fmt.Errorf("exp: %s: %w", t.ID, err)
		}
		tc := t
		out = append(out, Artifact{ID: t.ID, Table: &tc})
		return nil
	}

	if err := addF(e.Fig1()); err != nil {
		return nil, err
	}
	if err := addT(e.SchemeComparison()); err != nil {
		return nil, err
	}
	if err := addT(e.SchemeAssignments()); err != nil {
		return nil, err
	}
	if err := addT(e.KnobSensitivity()); err != nil {
		return nil, err
	}
	if err := addT(e.MissRateTable()); err != nil {
		return nil, err
	}
	if err := addT(e.L2SizeSweep(false)); err != nil {
		return nil, err
	}
	if err := addT(e.L2SizeSweep(true)); err != nil {
		return nil, err
	}
	if err := addT(e.L1Sweep()); err != nil {
		return nil, err
	}
	if err := addF(e.Fig2()); err != nil {
		return nil, err
	}
	if err := addT(e.Fig2Summary()); err != nil {
		return nil, err
	}
	if err := addT(e.BaselineComparison()); err != nil {
		return nil, err
	}
	if err := addT(e.FitQuality()); err != nil {
		return nil, err
	}
	return out, nil
}
