package exp

import (
	"context"
	"fmt"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/cpu"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// This file holds the extension and ablation experiments — studies beyond
// the paper's own evaluation that probe its assumptions and its
// related-work context. They run after the main registry (see all.go).

// ModelVsDirectAblation quantifies the cost of optimizing against the
// fitted analytical models (the paper's approach) instead of the raw
// transistor-level netlists: for each delay budget it optimizes both ways
// and evaluates *both* winners on the netlists.
func (e *Env) ModelVsDirectAblation(ctx context.Context) (Table, error) {
	cache, err := e.Cache(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	m, err := e.Model(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	dir := opt.Direct{Cache: cache}
	// A coarse grid keeps the direct (netlist-walking) optimizer affordable.
	ops := opt.PairsFromGrid(units.GridSteps(0.20, 0.50, 0.02), units.GridSteps(10, 14, 0.5))
	lo, hi := opt.FeasibleDelayRange(m, ops)

	t := Table{
		ID:    "tab-ablation-model",
		Title: "Ablation: optimize on fitted models vs on raw netlists (16KB, Scheme II)",
		Columns: []string{"budget (ps)", "model-opt leakage (mW)", "direct-opt leakage (mW)",
			"leak ratio", "true delay/budget"},
		Notes: []string{
			"both winners are re-evaluated on the netlists; 'leak ratio' is model-opt/direct-opt;",
			"a ratio below 1 means the model's small delay underestimate admitted a point just",
			"past the true budget ('true delay/budget' quantifies the violation)",
		},
	}
	for _, frac := range []float64{0.35, 0.55, 0.75} {
		budget := lo + frac*(hi-lo)
		rm, err := opt.OptimizeSchemeIICtx(ctx, m, ops, budget)
		if err != nil {
			return Table{}, err
		}
		rd, err := opt.OptimizeSchemeIICtx(ctx, dir, ops, budget)
		if err != nil {
			return Table{}, err
		}
		if !rm.Feasible || !rd.Feasible {
			continue
		}
		trueModelLeak := dir.LeakageW(rm.Assignment)
		trueModelDelay := dir.AccessTimeS(rm.Assignment)
		t.AddRow(
			fmt.Sprintf("%.0f", units.ToPS(budget)),
			fmt.Sprintf("%.4f", units.ToMW(trueModelLeak)),
			fmt.Sprintf("%.4f", units.ToMW(rd.LeakageW)),
			fmt.Sprintf("%.3f", trueModelLeak/rd.LeakageW),
			fmt.Sprintf("%.3f", trueModelDelay/budget),
		)
	}
	return t, nil
}

// DelayCompositionAblation compares the paper's delay-summation assumption
// against an overlapped composition where address flight and row decode
// proceed concurrently.
func (e *Env) DelayCompositionAblation(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "tab-ablation-delay",
		Title:   "Ablation: delay summation (paper) vs overlapped address/decode",
		Columns: []string{"cache", "knobs", "sum (ps)", "overlapped (ps)", "sum/overlap"},
		Notes: []string{
			"the paper sums component delays; overlapping the address bus with the",
			"decoder bounds how conservative that assumption is",
		},
	}
	for _, cfg := range []cachecfg.Config{fig1Cache(), cachecfg.L2(512 * cachecfg.KB)} {
		c, err := e.Cache(cfg)
		if err != nil {
			return Table{}, err
		}
		for _, op := range []device.OperatingPoint{device.OP(0.20, 10), device.OP(0.35, 12), device.OP(0.50, 14)} {
			a := components.Uniform(op)
			sum := c.AccessTime(a)
			over := c.AccessTimeOverlapped(a)
			t.AddRow(cfg.String(), op.String(),
				fmt.Sprintf("%.0f", units.ToPS(sum)),
				fmt.Sprintf("%.0f", units.ToPS(over)),
				fmt.Sprintf("%.3f", sum/over))
		}
	}
	return t, nil
}

// DrowsyExtension evaluates the related-work dynamic technique (drowsy
// cells, [6]) against and combined with the paper's static knob
// optimization, on the 16 KB cache at a mid delay budget.
func (e *Env) DrowsyExtension(ctx context.Context) (Table, error) {
	cache, err := e.Cache(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	m, err := e.Model(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	g := charlib.OptimizationGrid()
	ops := opt.PairsFromGrid(g.Vths, g.ToxAs)
	lo, hi := opt.FeasibleDelayRange(m, ops)
	budget := lo + 0.55*(hi-lo)
	r, err := opt.OptimizeSchemeIICtx(ctx, m, ops, budget)
	if err != nil {
		return Table{}, err
	}
	if !r.Feasible {
		return Table{}, fmt.Errorf("exp: drowsy study budget infeasible")
	}

	t := Table{
		ID:      "tab-ext-drowsy",
		Title:   fmt.Sprintf("Extension: drowsy cells x knob optimization (16KB @ %.0f ps)", units.ToPS(budget)),
		Columns: []string{"configuration", "awake fraction", "leakage (mW)", "vs baseline"},
		Notes: []string{
			"drowsy state: cell supply collapsed to 0.3 Vdd on idle lines (related work [6]);",
			"static knobs and the dynamic technique compose",
		},
	}
	fast := components.Uniform(device.OperatingPoint{Vth: e.Tech.VthMin, ToxM: e.Tech.ToxMin})
	base := cache.Leakage(fast).Total()
	add := func(name string, a components.Assignment, awake float64) error {
		var leak float64
		if awake >= 1 {
			leak = cache.Leakage(a).Total()
		} else {
			l, err := cache.LeakageWithDrowsy(a, awake)
			if err != nil {
				return err
			}
			leak = l.Total()
		}
		t.AddRow(name, fmt.Sprintf("%.2f", awake),
			fmt.Sprintf("%.4f", units.ToMW(leak)),
			fmt.Sprintf("%.1f%%", 100*leak/base))
		return nil
	}
	if err := add("fast knobs (baseline)", fast, 1); err != nil {
		return Table{}, err
	}
	if err := add("fast knobs + drowsy", fast, 0.1); err != nil {
		return Table{}, err
	}
	if err := add("optimized knobs", r.Assignment, 1); err != nil {
		return Table{}, err
	}
	if err := add("optimized knobs + drowsy", r.Assignment, 0.1); err != nil {
		return Table{}, err
	}
	return t, nil
}

// TemperatureSensitivity shows how the optimized leakage moves with die
// temperature — subthreshold conduction is exponential in T, gate
// tunnelling nearly athermal, so the optimum knob balance shifts.
func (e *Env) TemperatureSensitivity(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "tab-ext-temp",
		Title:   "Extension: temperature sensitivity of the optimized 16KB cache",
		Columns: []string{"T (K)", "leakage at fast knobs (mW)", "subthreshold share", "optimized leakage (mW)"},
		Notes: []string{
			"subthreshold leakage rises exponentially with temperature; gate leakage barely moves,",
			"so hot dies lean harder on the Vth knob",
		},
	}
	for _, tempK := range []float64{300, 330, 358, 390} {
		if err := ctx.Err(); err != nil {
			return Table{}, err
		}
		tech := device.Default65nm()
		tech.TempK = tempK
		cache, err := components.New(tech, fig1Cache())
		if err != nil {
			return Table{}, err
		}
		fast := components.Uniform(device.OP(0.20, 10))
		l := cache.Leakage(fast)
		// Optimize on a coarse grid directly (model fits are per-technology).
		dir := opt.Direct{Cache: cache}
		ops := opt.PairsFromGrid(units.GridSteps(0.20, 0.50, 0.025), units.GridSteps(10, 14, 0.5))
		lo, hi := opt.FeasibleDelayRange(dir, ops)
		r, err := opt.OptimizeSchemeIICtx(ctx, dir, ops, lo+0.55*(hi-lo))
		if err != nil {
			return Table{}, err
		}
		optLeak := "infeasible"
		if r.Feasible {
			optLeak = fmt.Sprintf("%.4f", units.ToMW(r.LeakageW))
		}
		t.AddRow(
			fmt.Sprintf("%.0f", tempK),
			fmt.Sprintf("%.3f", units.ToMW(l.Total())),
			fmt.Sprintf("%.2f", l.SubthresholdW/l.Total()),
			optLeak,
		)
	}
	return t, nil
}

// NodeComparison contrasts the 65 nm node with the 45 nm projection,
// substantiating the introduction's claim that leakage overtakes dynamic
// power in future generations.
func (e *Env) NodeComparison(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "tab-ext-node",
		Title:   "Extension: 65nm vs projected 45nm (16KB cache, fast knobs)",
		Columns: []string{"node", "leakage (mW)", "gate share", "dynamic/access (pJ)", "leak energy/access @1GHz (pJ)"},
		Notes: []string{
			"leakage energy per access assumes one access per 1ns cycle;",
			"the projection shows total leakage overtaking dynamic energy at the next node",
		},
	}
	for _, tech := range []*device.Technology{device.Default65nm(), device.Scaled45nm()} {
		cache, err := components.New(tech, fig1Cache())
		if err != nil {
			return Table{}, err
		}
		fast := components.Uniform(device.OperatingPoint{Vth: tech.VthMin, ToxM: tech.ToxMin})
		l := cache.Leakage(fast)
		dyn := cache.DynamicEnergy(fast)
		leakPerCycle := l.Total() * 1e-9
		t.AddRow(
			tech.Name,
			fmt.Sprintf("%.2f", units.ToMW(l.Total())),
			fmt.Sprintf("%.2f", l.GateW/l.Total()),
			fmt.Sprintf("%.2f", units.ToPJ(dyn)),
			fmt.Sprintf("%.2f", units.ToPJ(leakPerCycle)),
		)
	}
	return t, nil
}

// ReplacementAblation reports how the simulator's replacement policy moves
// the architectural inputs (miss rates) the optimization consumes.
func (e *Env) ReplacementAblation(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "tab-ablation-repl",
		Title:   "Ablation: replacement policy vs L1 miss rate (16KB, spec2000-like)",
		Columns: []string{"policy", "L1 local miss rate"},
		Notes:   []string{"the paper's statistics assume LRU; FIFO and random degrade gracefully"},
	}
	p := trace.SPEC2000(e.Seed)
	for _, pol := range []sim.ReplPolicy{sim.LRU, sim.FIFO, sim.Random} {
		if err := ctx.Err(); err != nil {
			return Table{}, err
		}
		gen, err := trace.New(p)
		if err != nil {
			return Table{}, err
		}
		c, err := sim.New(cachecfg.L1(16*cachecfg.KB), pol, sim.WriteBack)
		if err != nil {
			return Table{}, err
		}
		n := e.Accesses / 2
		for i := 0; i < n; i++ {
			a := gen.Next()
			c.Access(a.Addr, a.Write)
		}
		t.AddRow(pol.String(), fmt.Sprintf("%.4f", c.Stats.MissRate()))
	}
	return t, nil
}

// AreaTable reports the Section 2 cost of thick oxide: cell and macro area
// growth across the Tox range.
func (e *Env) AreaTable(ctx context.Context) (Table, error) {
	cache, err := e.Cache(fig1Cache())
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:      "tab-ext-area",
		Title:   "Extension: area cost of Tox (16KB cache)",
		Columns: []string{"Tox (A)", "scale factor", "macro area (mm^2)", "vs 10A"},
		Notes: []string{
			"thicker oxide forces longer channels and wider cells (paper section 2);",
			"area feeds back into wire lengths, delay and dynamic energy",
		},
	}
	base := cache.AreaM2(components.Uniform(device.OP(0.3, 10)))
	for _, tox := range []float64{10, 11, 12, 13, 14} {
		op := device.OP(0.3, tox)
		area := cache.AreaM2(components.Uniform(op))
		t.AddRow(
			fmt.Sprintf("%.0f", tox),
			fmt.Sprintf("%.3f", e.Tech.ScaleFactor(op)),
			fmt.Sprintf("%.4f", area/1e-6),
			fmt.Sprintf("%.2fx", area/base),
		)
	}
	return t, nil
}

// SystemEnergyPerInstruction runs the CPU model over knob-optimization
// levels, translating cache leakage choices into whole-program energy —
// the "entire processor memory system" framing of Section 5 taken one step
// further.
func (e *Env) SystemEnergyPerInstruction(ctx context.Context) (Table, error) {
	tl, err := e.twoLevelFor(ctx, 16*cachecfg.KB, 512*cachecfg.KB)
	if err != nil {
		return Table{}, err
	}
	core := cpu.Default65nmCore()
	t := Table{
		ID:      "tab-ext-cpi",
		Title:   "Extension: program-level energy under knob choices (16KB L1 + 512KB L2, 2GHz in-order core)",
		Columns: []string{"knob choice", "CPI", "energy/instr (pJ)", "memory share", "leakage share", "EDP (pJ*ns)"},
	}
	rows := []struct {
		name   string
		a1, a2 components.Assignment
	}{
		{"all fast (0.20V, 10A)", components.Uniform(device.OP(0.20, 10)), components.Uniform(device.OP(0.20, 10))},
		{"all conservative (0.50V, 14A)", components.Uniform(device.OP(0.50, 14)), components.Uniform(device.OP(0.50, 14))},
		{"paper-style split (cons cells, fast periphery)",
			components.Split(device.OP(0.45, 14), device.OP(0.25, 10)),
			components.Split(device.OP(0.50, 14), device.OP(0.30, 11))},
	}
	for _, row := range rows {
		sys := tl.System(row.a1, row.a2)
		m, err := core.Run(sys)
		if err != nil {
			return Table{}, err
		}
		t.AddRow(row.name,
			fmt.Sprintf("%.3f", m.CPI),
			fmt.Sprintf("%.1f", units.ToPJ(m.EnergyPerInstrJ)),
			fmt.Sprintf("%.2f", m.MemoryShare),
			fmt.Sprintf("%.2f", m.LeakageShare),
			fmt.Sprintf("%.2f", m.EDP()/(1e-12*1e-9)),
		)
	}
	return t, nil
}

// Extensions runs every extension/ablation experiment; it is
// ExtensionsCtx without cancellation.
func (e *Env) Extensions() ([]Artifact, error) {
	return e.ExtensionsCtx(context.Background())
}

// ExtensionsCtx runs every extension/ablation experiment in order,
// checking the context between entries.
func (e *Env) ExtensionsCtx(ctx context.Context) ([]Artifact, error) {
	var out []Artifact
	for _, entry := range []struct {
		id    string // named here because a failed builder returns Table{}
		build func(context.Context) (Table, error)
	}{
		{"tab-ablation-model", e.ModelVsDirectAblation},
		{"tab-ablation-delay", e.DelayCompositionAblation},
		{"tab-ext-drowsy", e.DrowsyExtension},
		{"tab-ext-temp", e.TemperatureSensitivity},
		{"tab-ext-node", e.NodeComparison},
		{"tab-ablation-repl", e.ReplacementAblation},
		{"tab-ext-area", e.AreaTable},
		{"tab-ext-cpi", e.SystemEnergyPerInstruction},
		{"tab-ext-joint", e.JointOptimization},
		{"tab-ext-mem", e.MemorySensitivity},
	} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t, err := entry.build(ctx)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", entry.id, err)
		}
		tc := t
		out = append(out, Artifact{ID: t.ID, Table: &tc})
	}
	return out, nil
}

// JointOptimization compares the paper's one-level-at-a-time optimization
// against freeing both levels' knobs simultaneously (coordinate descent).
func (e *Env) JointOptimization(ctx context.Context) (Table, error) {
	tl, err := e.twoLevelFor(ctx, 16*cachecfg.KB, 512*cachecfg.KB)
	if err != nil {
		return Table{}, err
	}
	g := charlib.OptimizationGrid()
	ops := opt.PairsFromGrid(g.Vths, g.ToxAs)
	fast := tl.AMAT(components.Uniform(device.OP(0.20, 10)), components.Uniform(device.OP(0.20, 10)))
	slow := tl.AMAT(components.Uniform(device.OP(0.50, 14)), components.Uniform(device.OP(0.50, 14)))

	t := Table{
		ID:      "tab-ext-joint",
		Title:   "Extension: joint L1+L2 optimization vs the paper's pinned-L1 flow",
		Columns: []string{"AMAT budget (ps)", "pinned-L1 leakage (mW)", "joint leakage (mW)", "joint gain"},
		Notes: []string{
			"the paper optimizes one level with the other pinned; coordinate descent over",
			"both levels can only do better, and shows how much the pinning costs",
		},
	}
	for _, frac := range []float64{0.3, 0.5, 0.7} {
		target := fast + frac*(slow-fast)
		pinned, err := tl.OptimizeL2Ctx(ctx, opt.SchemeII, components.Uniform(opt.DefaultOP()), ops, target)
		if err != nil {
			return Table{}, err
		}
		joint, err := opt.OptimizeJointCtx(ctx, tl, opt.SchemeII, ops, target, 0)
		if err != nil {
			return Table{}, err
		}
		pinnedStr, gain := "infeasible", "-"
		if pinned.Feasible {
			pinnedStr = fmt.Sprintf("%.3f", units.ToMW(pinned.LeakageW))
		}
		jointStr := "infeasible"
		if joint.Feasible {
			jointStr = fmt.Sprintf("%.3f", units.ToMW(joint.LeakageW))
			if pinned.Feasible {
				gain = fmt.Sprintf("%.2fx", pinned.LeakageW/joint.LeakageW)
			}
		}
		t.AddRow(fmt.Sprintf("%.0f", units.ToPS(target)), pinnedStr, jointStr, gain)
	}
	return t, nil
}

// MemorySensitivity reruns the Figure 2 headline comparison with a faster
// main memory, checking that the paper's tuple conclusions are not an
// artifact of one DRAM operating point.
func (e *Env) MemorySensitivity(ctx context.Context) (Table, error) {
	t := Table{
		ID:      "tab-ext-mem",
		Title:   "Extension: tuple-budget ordering vs main-memory speed",
		Columns: []string{"memory", "E(2Tox+2Vth) pJ", "E(2Tox+1Vth) pJ", "E(1Tox+2Vth) pJ", "Vth knob wins"},
		Notes: []string{
			"the (1 Tox, 2 Vth) <= (2 Tox, 1 Vth) ordering must survive memory-speed changes",
		},
	}
	base, err := e.fig2System(ctx)
	if err != nil {
		return Table{}, err
	}
	vths, toxs := fig2Candidates()
	for _, m := range []mem.Spec{mem.DefaultDDR(), mem.FastDDR()} {
		ms := &opt.MemorySystem{TwoLevel: base.TwoLevel}
		ms.Mem = m
		var fastSA, slowSA opt.SystemAssignment
		for i := range fastSA {
			fastSA[i] = device.OP(0.20, 10)
			slowSA[i] = device.OP(0.50, 14)
		}
		target := ms.AMATS(fastSA) + 0.25*(ms.AMATS(slowSA)-ms.AMATS(fastSA))
		e22, err := ms.OptimizeTuplesCtx(ctx, opt.TupleBudget{NTox: 2, NVth: 2}, vths, toxs, target)
		if err != nil {
			return Table{}, err
		}
		e21, err := ms.OptimizeTuplesCtx(ctx, opt.TupleBudget{NTox: 2, NVth: 1}, vths, toxs, target)
		if err != nil {
			return Table{}, err
		}
		e12, err := ms.OptimizeTuplesCtx(ctx, opt.TupleBudget{NTox: 1, NVth: 2}, vths, toxs, target)
		if err != nil {
			return Table{}, err
		}
		verdict := "no"
		if e12.Feasible && e21.Feasible && e12.EnergyJ <= e21.EnergyJ {
			verdict = "yes"
		}
		fmtE := func(r opt.TupleResult) string {
			if !r.Feasible {
				return "infeasible"
			}
			return fmt.Sprintf("%.1f", units.ToPJ(r.EnergyJ))
		}
		t.AddRow(m.Name, fmtE(e22), fmtE(e21), fmtE(e12), verdict)
	}
	return t, nil
}
