// Package exp is the experiment harness: it regenerates every figure and
// table of the paper's evaluation from this repository's substrates, and
// renders them as ASCII tables, CSV, and coarse terminal plots.
//
// The per-experiment index lives in DESIGN.md; EXPERIMENTS.md records the
// paper-vs-measured comparison produced from this package's output.
package exp

import (
	"fmt"
	"sync"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Env carries the shared state of an experiment run: the technology, the
// workload seed and simulation length, and lazily built caches, fitted
// models, and miss-rate matrices.
type Env struct {
	Tech *device.Technology
	Mem  mem.Spec

	// Accesses is the trace length per (workload, L1 size) simulation.
	Accesses int
	// Seed drives all synthetic workloads.
	Seed int64
	// MinR2 gates model fits (0 accepts any fit).
	MinR2 float64

	// l2Margin overrides the L2-sweep AMAT margin when non-zero (used by
	// ablations; see L2SweepAtMargin).
	l2Margin float64

	mu       sync.Mutex
	caches   map[string]*components.Cache
	models   map[string]*model.CacheModel
	matrices []*sim.MissMatrix
	average  *sim.MissMatrix
}

// NewEnv returns an environment with production-scale defaults.
func NewEnv() *Env {
	return &Env{
		Tech:     device.Default65nm(),
		Mem:      mem.DefaultDDR(),
		Accesses: 1_000_000,
		Seed:     1,
		MinR2:    0.97,
		caches:   make(map[string]*components.Cache),
		models:   make(map[string]*model.CacheModel),
	}
}

// NewQuickEnv returns an environment sized for tests: shorter simulations,
// same physics.
func NewQuickEnv() *Env {
	e := NewEnv()
	e.Accesses = 400_000
	return e
}

// Cache returns (building and caching on first use) the transistor-level
// cache for a configuration.
func (e *Env) Cache(cfg cachecfg.Config) (*components.Cache, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	key := cfg.Name + "/" + cfg.String()
	if c, ok := e.caches[key]; ok {
		return c, nil
	}
	c, err := components.New(e.Tech, cfg)
	if err != nil {
		return nil, err
	}
	e.caches[key] = c
	return c, nil
}

// Model returns (building and caching on first use) the fitted analytical
// model for a configuration.
func (e *Env) Model(cfg cachecfg.Config) (*model.CacheModel, error) {
	c, err := e.Cache(cfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	key := cfg.Name + "/" + cfg.String()
	if m, ok := e.models[key]; ok {
		return m, nil
	}
	m, err := model.Build(c, charlib.DefaultGrid(), e.MinR2)
	if err != nil {
		return nil, fmt.Errorf("exp: model for %v: %w", cfg, err)
	}
	e.models[key] = m
	return m, nil
}

// SuiteMatrices returns the per-workload miss matrices over the canonical
// L1/L2 design spaces, simulating on first use.
func (e *Env) SuiteMatrices() ([]*sim.MissMatrix, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.matrices != nil {
		return e.matrices, nil
	}
	ms, err := sim.BuildSuiteMatrices(trace.Suites(e.Seed), cachecfg.L1Sizes(), cachecfg.L2Sizes(), e.Accesses)
	if err != nil {
		return nil, err
	}
	e.matrices = ms
	return ms, nil
}

// MissMatrix returns the equal-weight average of the suite matrices — the
// aggregate statistics the paper's Section 5 experiments consume.
func (e *Env) MissMatrix() (*sim.MissMatrix, error) {
	if _, err := e.SuiteMatrices(); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.average != nil {
		return e.average, nil
	}
	avg, err := sim.Average(e.matrices)
	if err != nil {
		return nil, err
	}
	e.average = avg
	return avg, nil
}

// kbLabel formats a size in bytes as "16KB" / "1MB".
func kbLabel(bytes int) string {
	switch {
	case bytes >= cachecfg.MB && bytes%cachecfg.MB == 0:
		return fmt.Sprintf("%dMB", bytes/cachecfg.MB)
	case bytes >= cachecfg.KB:
		return fmt.Sprintf("%dKB", bytes/cachecfg.KB)
	}
	return fmt.Sprintf("%dB", bytes)
}
