// Package exp is the experiment harness: it regenerates every figure and
// table of the paper's evaluation from this repository's substrates, and
// renders them as ASCII tables, CSV, and coarse terminal plots.
//
// The per-experiment index is the Experiments registry in all.go;
// EXPERIMENTS.md records the paper-vs-measured comparison produced from
// this package's output. Experiments fan out across the sweep engine
// (internal/sweep) and share lazily built caches, fitted models and miss
// matrices through singleflight memos, so a parallel run builds each
// substrate exactly once and emits output byte-identical to a sequential
// run.
package exp

import (
	"context"
	"fmt"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// Env carries the shared state of an experiment run: the technology, the
// workload seed and simulation length, and lazily built caches, fitted
// models, and miss-rate matrices.
type Env struct {
	Tech *device.Technology
	Mem  mem.Spec

	// Accesses is the trace length per (workload, L1 size) simulation.
	Accesses int
	// Seed drives all synthetic workloads.
	Seed int64
	// MinR2 gates model fits (0 accepts any fit).
	MinR2 float64
	// Fidelity selects the miss-matrix builder: "" or
	// profile.FidelityTrace runs the trace-driven simulator (the golden
	// reference); profile.FidelityAnalytical uses the stack-distance
	// fast path, trading profile.Tolerance of miss-rate accuracy for an
	// order-of-magnitude cheaper build. Like Accesses and Seed it is
	// part of the environment's identity: distributed runs carry it in
	// the Scale descriptor and refuse mixed-fidelity fleets. Set it
	// before the first matrix is built; the memoized matrices do not
	// rebuild on later changes.
	Fidelity string
	// Workers bounds the top-level experiment fan-out of All: 0 uses
	// GOMAXPROCS, 1 runs the experiments one at a time. Sweeps inside an
	// experiment (simulation, grid scans) still size themselves from
	// GOMAXPROCS — cap that instead to bound total parallelism. Output is
	// identical at any setting.
	Workers int
	// Progress, when non-nil, observes top-level experiment completion:
	// it is called once per finished experiment with (done, total). Calls
	// may arrive concurrently from worker goroutines during
	// RunExperimentsCtx; StreamExperiments serializes them.
	Progress sweep.Progress

	caches   sweep.Memo[string, *components.Cache]
	models   sweep.Memo[string, *model.CacheModel]
	matrices sweep.Memo[struct{}, []*sim.MissMatrix]
	average  sweep.Memo[struct{}, *sim.MissMatrix]
}

// NewEnv returns an environment with production-scale defaults.
func NewEnv() *Env {
	return &Env{
		Tech:     device.Default65nm(),
		Mem:      mem.DefaultDDR(),
		Accesses: 1_000_000,
		Seed:     1,
		MinR2:    0.97,
	}
}

// NewQuickEnv returns an environment sized for tests: shorter simulations,
// same physics.
func NewQuickEnv() *Env {
	e := NewEnv()
	e.Accesses = 400_000
	return e
}

// Cache returns (building and caching on first use) the transistor-level
// cache for a configuration. Concurrent callers for the same configuration
// share one build.
func (e *Env) Cache(cfg cachecfg.Config) (*components.Cache, error) {
	key := cfg.Name + "/" + cfg.String()
	return e.caches.Do(key, func() (*components.Cache, error) {
		return components.New(e.Tech, cfg)
	})
}

// Model returns (building and caching on first use) the fitted analytical
// model for a configuration.
func (e *Env) Model(cfg cachecfg.Config) (*model.CacheModel, error) {
	c, err := e.Cache(cfg)
	if err != nil {
		return nil, err
	}
	key := cfg.Name + "/" + cfg.String()
	return e.models.Do(key, func() (*model.CacheModel, error) {
		m, err := model.Build(c, charlib.DefaultGrid(), e.MinR2)
		if err != nil {
			return nil, fmt.Errorf("exp: model for %v: %w", cfg, err)
		}
		return m, nil
	})
}

// SuiteMatrices returns the per-workload miss matrices over the canonical
// L1/L2 design spaces, simulating on first use.
func (e *Env) SuiteMatrices() ([]*sim.MissMatrix, error) {
	return e.SuiteMatricesCtx(context.Background())
}

// SuiteMatricesCtx is SuiteMatrices with cancellation: a cancelled build
// aborts mid-simulation and is not cached, so a later uncancelled caller
// rebuilds.
func (e *Env) SuiteMatricesCtx(ctx context.Context) ([]*sim.MissMatrix, error) {
	return e.matrices.Do(struct{}{}, func() ([]*sim.MissMatrix, error) {
		build := sim.BuildSuiteMatricesCtx
		if e.Fidelity == profile.FidelityAnalytical {
			build = profile.BuildSuiteMatricesCtx
		}
		return build(ctx, trace.Suites(e.Seed), cachecfg.L1Sizes(), cachecfg.L2Sizes(), e.Accesses)
	})
}

// MissMatrix returns the equal-weight average of the suite matrices — the
// aggregate statistics the paper's Section 5 experiments consume.
func (e *Env) MissMatrix() (*sim.MissMatrix, error) {
	return e.MissMatrixCtx(context.Background())
}

// MissMatrixCtx is MissMatrix with cancellation.
func (e *Env) MissMatrixCtx(ctx context.Context) (*sim.MissMatrix, error) {
	return e.average.Do(struct{}{}, func() (*sim.MissMatrix, error) {
		ms, err := e.SuiteMatricesCtx(ctx)
		if err != nil {
			return nil, err
		}
		return sim.Average(ms)
	})
}

// workers resolves the Env's fan-out setting.
func (e *Env) workers() int { return sweep.Workers(e.Workers) }

// kbLabel formats a size in bytes as "16KB" / "1MB".
func kbLabel(bytes int) string {
	switch {
	case bytes >= cachecfg.MB && bytes%cachecfg.MB == 0:
		return fmt.Sprintf("%dMB", bytes/cachecfg.MB)
	case bytes >= cachecfg.KB:
		return fmt.Sprintf("%dKB", bytes/cachecfg.KB)
	}
	return fmt.Sprintf("%dB", bytes)
}
