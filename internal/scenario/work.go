package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/dist/journal"
	"repro/internal/profile"
	"repro/internal/sweep"
	"repro/internal/work"
)

// JournalKind tags scenario-batch work: checkpoint journals, distributed
// work units, and the work registry all share it, so a checkpoint written
// by `scenario -checkpoint` resumes under `sweepd serve` and vice versa.
const JournalKind = "scenario-batch"

// Batch is a work.Batch: a batch already defaulted by LoadBatch runs
// through the unified driver (work.Run / work.Collect), gains
// checkpoint/resume from the journal helpers, and distributes through
// dist.RegistryExecutor — all emitting the same NDJSON lines in the same
// order.
var _ work.Batch = Batch{}

func init() {
	work.Register(JournalKind, func(payload json.RawMessage) (work.Batch, error) {
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		var b Batch
		if err := dec.Decode(&b); err != nil {
			return nil, fmt.Errorf("scenario: work payload: %w", err)
		}
		// Defaults were applied before MarshalRange rendered the payload;
		// only structural validity needs re-checking here.
		if err := b.Validate(); err != nil {
			return nil, err
		}
		return b, nil
	})
}

// Kind names the scenario-batch payload family.
func (b Batch) Kind() string { return JournalKind }

// Len is the number of scenarios in the batch.
func (b Batch) Len() int { return len(b.Scenarios) }

// Hash is the canonical content hash of the batch: the hex SHA-256 of its
// JSON form after defaulting. It pins checkpoint journals and distributed
// runs to their input — resuming against a batch that hashes differently
// is refused.
func (b Batch) Hash() (string, error) {
	return journal.Hash(b)
}

// RunItem executes scenario i and returns its compact NDJSON line — the
// unit of the batch streaming format.
func (b Batch) RunItem(ctx context.Context, i int) (json.RawMessage, error) {
	res, err := RunCtx(ctx, b.Scenarios[i])
	if err != nil {
		return nil, fmt.Errorf("scenario %q: %w", b.Scenarios[i].Name, err)
	}
	return res.NDJSONLine()
}

// ItemKey implements work.ItemKeyer: the content identity of one scenario
// result line — "scenario/" plus the hash of the defaulted config. A grid
// point that expands to an equal config shares the key (and therefore, by
// the ItemKeyer contract, the line), which is what lets the dist store
// serve an overlapping grid from cached scenario results and vice versa.
func (b Batch) ItemKey(i int) (string, error) {
	h, err := journal.Hash(b.Scenarios[i])
	if err != nil {
		return "", err
	}
	return "scenario/" + h, nil
}

// DescribeFidelity implements work.FidelityDescriber: the miss-matrix
// fidelity all scenarios share ("" renders as its effective meaning,
// trace), or "mixed" when they disagree — a metrics label only, never
// part of the wire form or the content hash.
func (b Batch) DescribeFidelity() string {
	fid := ""
	for i := range b.Scenarios {
		f := b.Scenarios[i].Fidelity
		if f == "" {
			f = profile.FidelityTrace
		}
		if i == 0 {
			fid = f
		} else if f != fid {
			return "mixed"
		}
	}
	return fid
}

// MarshalRange renders the ordinary batch schema ({"scenarios": [...]})
// restricted to [r.Lo, r.Hi) — the self-contained payload of a distributed
// work unit. Defaults are already applied, so every worker executes
// identical configs.
func (b Batch) MarshalRange(r sweep.Range) (json.RawMessage, error) {
	return json.Marshal(Batch{Scenarios: b.Scenarios[r.Lo:r.Hi]})
}
