package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist/journal"
	"repro/internal/work"
)

// checkpointBatch is a small real batch (short simulations) for
// checkpoint tests.
func checkpointBatch(t *testing.T) Batch {
	t.Helper()
	b, err := LoadBatch(strings.NewReader(`{"scenarios":[
		{"name":"a","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000},
		{"name":"b","l1_kb":16,"l2_kb":512,"workload":"tpcc","accesses":20000},
		{"name":"c","l1_kb":32,"l2_kb":256,"workload":"tpcc","accesses":20000}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCheckpointedMatchesPlainStream checks a fresh checkpointed run
// through the unified driver emits exactly the plain stream's bytes and
// journals every line.
func TestCheckpointedMatchesPlainStream(t *testing.T) {
	b := checkpointBatch(t)
	var want bytes.Buffer
	if err := StreamNDJSON(t.Context(), b, StreamOptions{Workers: 1}, &want); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "batch.journal")
	jr, done, err := work.OpenJournal(path, b, false)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := work.Run(t.Context(), b, work.Options{Workers: 2, Journal: jr, Done: done}, &got); err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Errorf("checkpointed stream differs from plain stream:\n got: %s\nwant: %s", got.Bytes(), want.Bytes())
	}

	// The journal holds every line.
	replayed, err := work.ReplayJournal(path, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(replayed) != len(b.Scenarios) {
		t.Errorf("journal has %d entries, want %d", len(replayed), len(b.Scenarios))
	}
}

// TestResumeEmitsOnlyRemainder simulates a crash after the first scenario
// (journal truncated to one entry plus a torn tail) and checks the resumed
// run re-emits nothing finished: its stdout is exactly the remainder, and
// prefix + remainder reassemble the full sequential stream byte for byte.
func TestResumeEmitsOnlyRemainder(t *testing.T) {
	b := checkpointBatch(t)
	var full bytes.Buffer
	if err := StreamNDJSON(t.Context(), b, StreamOptions{Workers: 1}, &full); err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(full.String(), "\n")

	path := filepath.Join(t.TempDir(), "batch.journal")
	h, err := work.Header(b)
	if err != nil {
		t.Fatal(err)
	}
	jr, err := journal.Create(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Record(0, []byte(strings.TrimSuffix(lines[0], "\n"))); err != nil {
		t.Fatal(err)
	}
	jr.Close()
	// The crash tore the second entry mid-append.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"i":1,"line":{"name`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	jr, done, err := work.OpenJournal(path, b, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 {
		t.Fatalf("replayed %d entries, want 1", len(done))
	}
	var resumed bytes.Buffer
	if err := work.Run(t.Context(), b, work.Options{Workers: 1, Journal: jr, Done: done}, &resumed); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	want := strings.Join(lines[1:], "")
	if resumed.String() != want {
		t.Errorf("resumed run must emit only the remainder:\n got: %q\nwant: %q", resumed.String(), want)
	}
	if lines[0]+resumed.String() != full.String() {
		t.Error("prefix + resumed output does not reassemble the sequential stream")
	}

	// A second resume finds everything done and emits nothing.
	jr, done, err = work.OpenJournal(path, b, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	var again bytes.Buffer
	if err := work.Run(t.Context(), b, work.Options{Journal: jr, Done: done}, &again); err != nil {
		t.Fatal(err)
	}
	if again.Len() != 0 {
		t.Errorf("fully journaled batch re-emitted %q", again.String())
	}
}

// TestBatchHashPinsContent checks the hash changes with the batch content
// (the resume-refusal key) and not with equivalent reloads.
func TestBatchHashPinsContent(t *testing.T) {
	b1 := checkpointBatch(t)
	b2 := checkpointBatch(t)
	h1, err := b1.Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := b2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("reloading the same batch must hash identically")
	}
	b2.Scenarios[2].L2KB = 1024
	h3, err := b2.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Error("different batches must hash differently")
	}
}
