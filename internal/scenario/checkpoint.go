package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dist/journal"
	"repro/internal/sweep"
)

// JournalKind tags scenario-batch checkpoint journals (and the distributed
// work units built from the same batches — internal/dist reuses it), so a
// checkpoint written by `scenario -checkpoint` resumes under `sweepd
// serve` and vice versa.
const JournalKind = "scenario-batch"

// Hash is the canonical content hash of the batch: the hex SHA-256 of its
// JSON form after defaulting. It pins checkpoint journals to their input —
// resuming against a batch that hashes differently is refused.
func (b Batch) Hash() (string, error) {
	return journal.Hash(b)
}

// JournalHeader renders the checkpoint header for this batch.
func (b Batch) JournalHeader() (journal.Header, error) {
	hash, err := b.Hash()
	if err != nil {
		return journal.Header{}, err
	}
	return journal.Header{Kind: JournalKind, BatchSHA256: hash, N: len(b.Scenarios)}, nil
}

// StreamNDJSONCheckpointed is StreamNDJSON with crash recovery: every
// emitted line is first appended to the journal, and indices already
// present in done (a previous run's journal replay) are neither re-run nor
// re-emitted — a resumed run's stdout is exactly the remainder, in input
// order.
//
// The journal, not the consumer's copy of the stream, is the authoritative
// record: a line is journaled before it is written to w, so a crash
// between the two leaves the line recoverable from the journal rather than
// emitted-but-unjournaled (which a resume would silently recompute and
// duplicate). When every index is already journaled the call returns
// immediately having emitted nothing.
func StreamNDJSONCheckpointed(ctx context.Context, b Batch, opts StreamOptions, w io.Writer, jr *journal.Journal, done map[int]json.RawMessage) error {
	if err := b.Validate(); err != nil {
		return err
	}
	pending := make([]int, 0, len(b.Scenarios))
	for i := range b.Scenarios {
		if _, ok := done[i]; !ok {
			pending = append(pending, i)
		}
	}
	if len(pending) == 0 {
		return nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch, wait := sweep.Stream(ctx, len(pending), sweep.StreamConfig{
		Workers:  opts.Workers,
		Progress: opts.Progress,
	}, func(ctx context.Context, k int) (Result, error) {
		cfg := b.Scenarios[pending[k]]
		res, err := RunCtx(ctx, cfg)
		if err != nil {
			return Result{}, fmt.Errorf("scenario %q: %w", cfg.Name, err)
		}
		return res, nil
	})
	emitted := 0
	var sinkErr error
	for res := range ch {
		if sinkErr != nil {
			continue // the post-cancel drain; nothing more is scheduled
		}
		idx := pending[emitted]
		line, err := res.NDJSONLine()
		if err == nil {
			err = jr.Record(idx, line)
		}
		if err == nil {
			_, err = w.Write(append(line, '\n'))
		}
		if err != nil {
			sinkErr = fmt.Errorf("scenario: checkpointing %q: %w", res.Name, err)
			cancel()
		}
		emitted++
	}
	err := wait()
	if sinkErr != nil {
		// The wait error is the cancellation this function triggered; the
		// journal/write failure is the root cause.
		return sinkErr
	}
	return err
}
