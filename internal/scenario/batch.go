package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sweep"
	"repro/internal/work"
)

// Batch is the multi-scenario JSON schema: a top-level "scenarios" array of
// ordinary scenario configs, run concurrently with per-scenario isolation.
//
//	{
//	  "scenarios": [
//	    {"name": "small", "l1_kb": 16, "l2_kb": 256, "workload": "tpcc"},
//	    {"name": "large", "l1_kb": 64, "l2_kb": 4096, "workload": "average"}
//	  ]
//	}
type Batch struct {
	Scenarios []Config `json:"scenarios"`
}

// Validate checks every member config and requires unique, non-empty names
// (results are keyed by name downstream).
func (b Batch) Validate() error {
	if len(b.Scenarios) == 0 {
		return fmt.Errorf("scenario: batch has no scenarios")
	}
	seen := make(map[string]bool, len(b.Scenarios))
	for i, c := range b.Scenarios {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("scenario: batch entry %d: %w", i, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario: duplicate scenario name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// withDefaults fills optional fields of every member.
func (b Batch) withDefaults() Batch {
	out := Batch{Scenarios: make([]Config, len(b.Scenarios))}
	for i, c := range b.Scenarios {
		out.Scenarios[i] = c.withDefaults()
	}
	return out
}

// LoadBatch parses a multi-scenario JSON batch, rejecting unknown fields.
func LoadBatch(r io.Reader) (Batch, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return Batch{}, fmt.Errorf("scenario: %w", err)
	}
	if err := b.Validate(); err != nil {
		return Batch{}, err
	}
	return b.withDefaults(), nil
}

// IsBatch reports whether the JSON document carries a top-level "scenarios"
// key (a batch) rather than a single scenario config.
func IsBatch(data []byte) bool {
	var probe struct {
		Scenarios json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Scenarios != nil
}

// BatchResult is the JSON-serializable outcome of a batch run, with results
// in input order.
type BatchResult struct {
	Scenarios []Result `json:"scenarios"`
}

// Render formats the batch result as JSON.
func (b BatchResult) Render() (string, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// RunBatch executes every scenario of the batch; it is RunBatchCtx without
// cancellation.
func RunBatch(b Batch, workers int) (BatchResult, error) {
	return RunBatchCtx(context.Background(), b, workers)
}

// RunBatchCtx executes every scenario of the batch across at most workers
// goroutines (0 = GOMAXPROCS). Each scenario builds its own technology,
// caches, models and workload simulations — nothing is shared — so
// scenarios are fully isolated and the result array is deterministic and
// input-ordered. A failing scenario aborts the batch with its name in the
// error; cancelling ctx stops scheduling scenarios and aborts the running
// ones mid-simulation.
func RunBatchCtx(ctx context.Context, b Batch, workers int) (BatchResult, error) {
	if err := b.Validate(); err != nil {
		return BatchResult{}, err
	}
	results, err := sweep.MapCtx(ctx, len(b.Scenarios), workers, func(ctx context.Context, i int) (Result, error) {
		res, err := RunCtx(ctx, b.Scenarios[i])
		if err != nil {
			return Result{}, fmt.Errorf("scenario %q: %w", b.Scenarios[i].Name, err)
		}
		return res, nil
	})
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{Scenarios: results}, nil
}

// StreamOptions tunes StreamBatch.
type StreamOptions struct {
	// Workers bounds concurrent scenarios (0 = GOMAXPROCS).
	Workers int
	// Progress, when non-nil, is called once per emitted result with
	// (scenarios done, total), serialized on the emitter.
	Progress sweep.Progress
}

// StreamBatch runs the batch and delivers results over the returned
// channel in input order as each scenario completes, holding at most a
// worker-pool's worth of results in memory — the streaming complement to
// RunBatchCtx for batches too large to buffer. Drain the channel, then
// call wait for the verdict; on success the streamed results are exactly
// RunBatchCtx's result array. A failing scenario stops the stream with its
// name in the error; cancellation stops it with ctx's error.
func StreamBatch(ctx context.Context, b Batch, opts StreamOptions) (results <-chan Result, wait func() error) {
	if err := b.Validate(); err != nil {
		ch := make(chan Result)
		close(ch)
		return ch, func() error { return err }
	}
	return sweep.Stream(ctx, len(b.Scenarios), sweep.StreamConfig{
		Workers:  opts.Workers,
		Progress: opts.Progress,
	}, func(ctx context.Context, i int) (Result, error) {
		res, err := RunCtx(ctx, b.Scenarios[i])
		if err != nil {
			return Result{}, fmt.Errorf("scenario %q: %w", b.Scenarios[i].Name, err)
		}
		return res, nil
	})
}

// NDJSONLine renders one result as a single compact JSON line (no trailing
// newline) — the unit of the batch streaming format. The field content is
// identical to the result's entry in a buffered BatchResult; only the
// framing (one object per line instead of a "scenarios" array) differs.
func (r Result) NDJSONLine() ([]byte, error) {
	return json.Marshal(r)
}

// StreamNDJSON streams the batch to w as NDJSON: one result line per
// scenario, in input order, each written (and flushable by the caller's
// writer) as soon as the scenario completes. It is the unified driver
// (work.Run) applied to the batch: on error the stream ends early, lines
// already written remain valid JSON, and a write error (e.g. a broken
// pipe) cancels the remaining scenarios instead of computing output nobody
// reads.
func StreamNDJSON(ctx context.Context, b Batch, opts StreamOptions, w io.Writer) error {
	if err := b.Validate(); err != nil {
		return err
	}
	return work.Run(ctx, b, work.Options{Workers: opts.Workers, Progress: opts.Progress}, w)
}
