package scenario

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sweep"
)

// Batch is the multi-scenario JSON schema: a top-level "scenarios" array of
// ordinary scenario configs, run concurrently with per-scenario isolation.
//
//	{
//	  "scenarios": [
//	    {"name": "small", "l1_kb": 16, "l2_kb": 256, "workload": "tpcc"},
//	    {"name": "large", "l1_kb": 64, "l2_kb": 4096, "workload": "average"}
//	  ]
//	}
type Batch struct {
	Scenarios []Config `json:"scenarios"`
}

// Validate checks every member config and requires unique, non-empty names
// (results are keyed by name downstream).
func (b Batch) Validate() error {
	if len(b.Scenarios) == 0 {
		return fmt.Errorf("scenario: batch has no scenarios")
	}
	seen := make(map[string]bool, len(b.Scenarios))
	for i, c := range b.Scenarios {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("scenario: batch entry %d: %w", i, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("scenario: duplicate scenario name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// withDefaults fills optional fields of every member.
func (b Batch) withDefaults() Batch {
	out := Batch{Scenarios: make([]Config, len(b.Scenarios))}
	for i, c := range b.Scenarios {
		out.Scenarios[i] = c.withDefaults()
	}
	return out
}

// LoadBatch parses a multi-scenario JSON batch, rejecting unknown fields.
func LoadBatch(r io.Reader) (Batch, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return Batch{}, fmt.Errorf("scenario: %w", err)
	}
	if err := b.Validate(); err != nil {
		return Batch{}, err
	}
	return b.withDefaults(), nil
}

// IsBatch reports whether the JSON document carries a top-level "scenarios"
// key (a batch) rather than a single scenario config.
func IsBatch(data []byte) bool {
	var probe struct {
		Scenarios json.RawMessage `json:"scenarios"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Scenarios != nil
}

// BatchResult is the JSON-serializable outcome of a batch run, with results
// in input order.
type BatchResult struct {
	Scenarios []Result `json:"scenarios"`
}

// Render formats the batch result as JSON.
func (b BatchResult) Render() (string, error) {
	out, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// RunBatch executes every scenario of the batch across at most workers
// goroutines (0 = GOMAXPROCS). Each scenario builds its own technology,
// caches, models and workload simulations — nothing is shared — so
// scenarios are fully isolated and the result array is deterministic and
// input-ordered. A failing scenario aborts the batch with its name in the
// error.
func RunBatch(b Batch, workers int) (BatchResult, error) {
	if err := b.Validate(); err != nil {
		return BatchResult{}, err
	}
	results, err := sweep.Map(len(b.Scenarios), workers, func(i int) (Result, error) {
		res, err := Run(b.Scenarios[i])
		if err != nil {
			return Result{}, fmt.Errorf("scenario %q: %w", b.Scenarios[i].Name, err)
		}
		return res, nil
	})
	if err != nil {
		return BatchResult{}, err
	}
	return BatchResult{Scenarios: results}, nil
}
