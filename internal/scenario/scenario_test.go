package scenario

import (
	"encoding/json"
	"strings"
	"testing"
)

const validJSON = `{
  "name": "demo",
  "l1_kb": 16,
  "l2_kb": 512,
  "workload": "spec2000",
  "accesses": 60000,
  "tuple_budgets": [[2,2],[1,2]]
}`

func TestLoadValid(t *testing.T) {
	c, err := LoadString(validJSON)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "demo" || c.L1KB != 16 || c.L2KB != 512 {
		t.Errorf("parsed config %+v", c)
	}
	// Defaults applied.
	if c.Scheme != 2 || c.Seed != 1 {
		t.Errorf("defaults not applied: %+v", c)
	}
}

func TestLoadRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":  `{"name":"x","l1_kb":16,"l2_kb":512,"workload":"tpcc","bogus":1}`,
		"missing name":   `{"l1_kb":16,"l2_kb":512,"workload":"tpcc"}`,
		"bad workload":   `{"name":"x","l1_kb":16,"l2_kb":512,"workload":"linpack"}`,
		"zero size":      `{"name":"x","l1_kb":0,"l2_kb":512,"workload":"tpcc"}`,
		"bad scheme":     `{"name":"x","l1_kb":16,"l2_kb":512,"workload":"tpcc","scheme":7}`,
		"bad tuple":      `{"name":"x","l1_kb":16,"l2_kb":512,"workload":"tpcc","tuple_budgets":[[0,2]]}`,
		"malformed json": `{"name":`,
	}
	for label, js := range cases {
		if _, err := LoadString(js); err == nil {
			t.Errorf("%s accepted", label)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	c, err := LoadString(validJSON)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.M1 <= 0 || res.M1 >= 1 || res.M2 <= 0 || res.M2 > 1 {
		t.Errorf("miss rates %v/%v", res.M1, res.M2)
	}
	if !res.L2Optimization.Feasible {
		t.Fatal("auto-budget L2 optimization should be feasible")
	}
	if res.L2Optimization.LeakageMW <= 0 || res.L2Optimization.AMATPS <= 0 {
		t.Errorf("bad optimization metrics: %+v", res.L2Optimization)
	}
	if res.L2Optimization.AMATPS > res.AMATBudgetPS*(1+1e-9) {
		t.Error("AMAT budget violated")
	}
	if len(res.Tuples) != 2 {
		t.Fatalf("want 2 tuple outcomes, got %d", len(res.Tuples))
	}
	for _, tu := range res.Tuples {
		if !tu.Feasible {
			t.Errorf("tuple %s infeasible at the mid budget", tu.Budget)
		}
	}

	// The rendered result is valid JSON and round-trips.
	out, err := res.Render()
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal([]byte(out), &back); err != nil {
		t.Fatalf("rendered result is not valid JSON: %v", err)
	}
	if back.Name != res.Name || back.L2Optimization.LeakageMW != res.L2Optimization.LeakageMW {
		t.Error("render round trip lost data")
	}
}

func TestRunAverageWorkload(t *testing.T) {
	c, err := LoadString(`{"name":"avg","l1_kb":16,"l2_kb":512,"workload":"average","accesses":30000}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.M1 <= 0 {
		t.Error("average workload produced no misses")
	}
}

func TestRunExplicitBudget(t *testing.T) {
	// An absurdly tight explicit budget must be reported infeasible, not
	// silently replaced.
	c, err := LoadString(`{"name":"tight","l1_kb":16,"l2_kb":512,"workload":"spec2000","accesses":30000,"amat_budget_ps":100}`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.L2Optimization.Feasible {
		t.Error("100ps AMAT should be infeasible")
	}
	if res.AMATBudgetPS != 100 {
		t.Errorf("explicit budget overridden: %v", res.AMATBudgetPS)
	}
}

func TestValidateDirect(t *testing.T) {
	good := Config{Name: "x", L1KB: 16, L2KB: 512, Workload: "tpcc"}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if !strings.Contains(validJSON, "tuple_budgets") {
		t.Error("test fixture drifted")
	}
}
