package scenario

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "regenerate golden files")

const fixturePath = "../../examples/scenarios.json"
const goldenPath = "testdata/batch.golden.json"

func loadFixture(t *testing.T) Batch {
	t.Helper()
	f, err := os.Open(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := LoadBatch(f)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBatchGolden runs the example batch and compares the rendered JSON
// against the checked-in golden output. Regenerate with:
//
//	go test ./internal/scenario -run TestBatchGolden -update
func TestBatchGolden(t *testing.T) {
	b := loadFixture(t)
	res, err := RunBatch(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.Render()
	if err != nil {
		t.Fatal(err)
	}
	got += "\n"

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("batch output drifted from %s (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			goldenPath, got, want)
	}
}

// TestBatchParallelDeterministic runs the batch at several worker counts and
// demands byte-identical renders: scenario isolation means fan-out cannot
// change results or their order.
func TestBatchParallelDeterministic(t *testing.T) {
	b := loadFixture(t)
	// Trim to two scenarios and shorten the workloads to keep the repeated
	// runs cheap; determinism does not depend on trace length.
	b.Scenarios = b.Scenarios[:2]
	for i := range b.Scenarios {
		b.Scenarios[i].Accesses = 20000
	}
	var first string
	for _, workers := range []int{1, 2, 4} {
		res, err := RunBatch(b, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		out, err := res.Render()
		if err != nil {
			t.Fatal(err)
		}
		if first == "" {
			first = out
			continue
		}
		if out != first {
			t.Fatalf("workers=%d produced different bytes than workers=1", workers)
		}
	}
}

func TestBatchValidate(t *testing.T) {
	cases := map[string]string{
		"empty batch":    `{"scenarios":[]}`,
		"duplicate name": `{"scenarios":[{"name":"a","l1_kb":16,"l2_kb":512,"workload":"tpcc"},{"name":"a","l1_kb":16,"l2_kb":512,"workload":"tpcc"}]}`,
		"bad member":     `{"scenarios":[{"name":"a","l1_kb":0,"l2_kb":512,"workload":"tpcc"}]}`,
		"unknown field":  `{"scenarios":[],"bogus":1}`,
	}
	for label, js := range cases {
		if _, err := LoadBatch(strings.NewReader(js)); err == nil {
			t.Errorf("%s accepted", label)
		}
	}
}

func TestIsBatch(t *testing.T) {
	if !IsBatch([]byte(`{"scenarios":[]}`)) {
		t.Error("batch not recognized")
	}
	if IsBatch([]byte(`{"name":"x"}`)) {
		t.Error("single config misread as batch")
	}
	if IsBatch([]byte(`garbage`)) {
		t.Error("garbage misread as batch")
	}
}
