// Package scenario provides JSON-driven experiment configurations: a user
// describes a cache hierarchy, a workload, and optimization targets in a
// small config file, and the scenario runner assembles the corresponding
// models, simulations and optimizations (cmd/scenario is the CLI front
// end). This is the "downstream user" interface: reproducing the paper's
// exact experiments goes through cmd/figures instead.
package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/cachecfg"
	"repro/internal/components"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/opt"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Config is the JSON schema of one scenario.
type Config struct {
	// Name labels the run.
	Name string `json:"name"`
	// L1KB and L2KB are the cache capacities in kilobytes.
	L1KB int `json:"l1_kb"`
	L2KB int `json:"l2_kb"`
	// Workload is one of spec2000, specweb, tpcc, or average.
	Workload string `json:"workload"`
	// Accesses per workload simulation (default 400000).
	Accesses int `json:"accesses,omitempty"`
	// Seed for the synthetic workloads (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Scheme is the assignment scheme for knob optimization: 1, 2 or 3
	// (default 2, the paper's preferred scheme).
	Scheme int `json:"scheme,omitempty"`
	// AMATBudgetPS is the AMAT constraint in picoseconds; 0 picks the
	// midpoint of the feasible range.
	AMATBudgetPS float64 `json:"amat_budget_ps,omitempty"`
	// TupleBudgets optionally requests Figure-2-style tuple optimizations,
	// each entry [nTox, nVth].
	TupleBudgets [][2]int `json:"tuple_budgets,omitempty"`
	// FastMemory selects the low-latency DRAM spec.
	FastMemory bool `json:"fast_memory,omitempty"`
	// Fidelity selects the miss-rate path: "trace" (or empty, the
	// default) runs the trace-driven simulator; "analytical" uses the
	// stack-distance fast path of internal/profile, which agrees with
	// the simulator within profile.Tolerance and turns per-point
	// simulation cost into a one-off per-workload profiling pass. The
	// field is deliberately not defaulted to "trace" by withDefaults so
	// pre-fidelity batches keep their content hashes; a set value flows
	// into the hash and pins journals and fleets to one fidelity.
	Fidelity string `json:"fidelity,omitempty"`
}

// Validate reports schema errors.
func (c Config) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("scenario: missing name")
	}
	if c.L1KB <= 0 || c.L2KB <= 0 {
		return fmt.Errorf("scenario: cache sizes must be positive, got %d/%d KB", c.L1KB, c.L2KB)
	}
	switch c.Workload {
	case "spec2000", "specweb", "tpcc", "average":
	default:
		return fmt.Errorf("scenario: unknown workload %q", c.Workload)
	}
	if c.Scheme < 0 || c.Scheme > 3 {
		return fmt.Errorf("scenario: scheme must be 1, 2 or 3, got %d", c.Scheme)
	}
	for _, b := range c.TupleBudgets {
		if b[0] < 1 || b[1] < 1 {
			return fmt.Errorf("scenario: tuple budget %v must be at least 1+1", b)
		}
	}
	if !profile.ValidFidelity(c.Fidelity) {
		return fmt.Errorf("scenario: unknown fidelity %q (want %q or %q)",
			c.Fidelity, profile.FidelityTrace, profile.FidelityAnalytical)
	}
	return nil
}

// WithDefaults returns the config with every optional field filled exactly
// as Load and RunCtx fill it. Grid expansion (internal/grid) renders point
// names and wire payloads from defaulted configs, so a worker rebuilding a
// grid slice executes byte-for-byte the configs the coordinator named.
func (c Config) WithDefaults() Config { return c.withDefaults() }

// withDefaults fills optional fields.
func (c Config) withDefaults() Config {
	if c.Accesses == 0 {
		c.Accesses = 400_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scheme == 0 {
		c.Scheme = 2
	}
	return c
}

// Load parses a JSON scenario, rejecting unknown fields so typos fail loud.
func Load(r io.Reader) (Config, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var c Config
	if err := dec.Decode(&c); err != nil {
		return Config{}, fmt.Errorf("scenario: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c.withDefaults(), nil
}

// LoadString parses a JSON scenario from a string.
func LoadString(s string) (Config, error) { return Load(strings.NewReader(s)) }

// Result is the outcome of one scenario run, JSON-serializable for
// downstream tooling.
type Result struct {
	Name string `json:"name"`

	M1 float64 `json:"l1_local_miss"`
	M2 float64 `json:"l2_local_miss"`

	AMATBudgetPS float64 `json:"amat_budget_ps"`

	L2Optimization struct {
		Feasible  bool    `json:"feasible"`
		LeakageMW float64 `json:"leakage_mw"`
		AMATPS    float64 `json:"amat_ps"`
		EnergyPJ  float64 `json:"energy_pj"`
		CellKnobs string  `json:"l2_cell_knobs"`
		PeriKnobs string  `json:"l2_periph_knobs"`
	} `json:"l2_optimization"`

	Tuples []TupleOutcome `json:"tuples,omitempty"`
}

// TupleOutcome is one tuple-budget optimization result.
type TupleOutcome struct {
	Budget   string    `json:"budget"`
	Feasible bool      `json:"feasible"`
	EnergyPJ float64   `json:"energy_pj"`
	VthSet   []float64 `json:"vth_set,omitempty"`
	ToxSetA  []float64 `json:"tox_set_a,omitempty"`
}

// Run executes the scenario; it is RunCtx without cancellation.
func Run(cfg Config) (Result, error) {
	return RunCtx(context.Background(), cfg)
}

// RunCtx executes the scenario: simulate the workload, build the models,
// optimize the L2 under the AMAT budget, and run any requested tuple
// optimizations. Cancelling ctx aborts mid-simulation or mid-search with
// ctx's error.
func RunCtx(ctx context.Context, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	l1Size := cfg.L1KB * cachecfg.KB
	l2Size := cfg.L2KB * cachecfg.KB

	m1, m2, err := missRates(ctx, cfg, l1Size, l2Size)
	if err != nil {
		return Result{}, err
	}

	// Designs are memoized process-wide per cache organization: a sweep
	// over N design points pays characterize-and-fit once per distinct
	// (level, size), not once per point — the dominant term of the
	// per-point cost before this hoist (see BenchmarkGridRunItem).
	tech := core.SharedTechnology()
	l1d, err := core.SharedDesign(cachecfg.L1(l1Size))
	if err != nil {
		return Result{}, err
	}
	l2d, err := core.SharedDesign(cachecfg.L2(l2Size))
	if err != nil {
		return Result{}, err
	}
	memSpec := mem.DefaultDDR()
	if cfg.FastMemory {
		memSpec = mem.FastDDR()
	}
	tl := &opt.TwoLevel{L1: l1d.Model, L2: l2d.Model, M1: m1, M2: m2, Mem: memSpec}
	if err := tl.Validate(); err != nil {
		return Result{}, err
	}

	res := Result{Name: cfg.Name, M1: m1, M2: m2}

	a1 := components.Uniform(opt.DefaultOP())
	budget := units.FromPS(cfg.AMATBudgetPS)
	if budget == 0 {
		fast := tl.AMAT(a1, components.Uniform(device.OP(tech.VthMin, 10)))
		slow := tl.AMAT(a1, components.Uniform(device.OP(tech.VthMax, 14)))
		budget = (fast + slow) / 2
	}
	res.AMATBudgetPS = units.ToPS(budget)

	scheme := opt.Scheme(cfg.Scheme)
	r, err := tl.OptimizeL2Ctx(ctx, scheme, a1, core.SharedKnobGrid(), budget)
	if err != nil {
		return Result{}, err
	}
	res.L2Optimization.Feasible = r.Feasible
	if r.Feasible {
		res.L2Optimization.LeakageMW = units.ToMW(r.LeakageW)
		res.L2Optimization.AMATPS = units.ToPS(r.AMATS)
		res.L2Optimization.EnergyPJ = units.ToPJ(r.TotalEnergyJ)
		res.L2Optimization.CellKnobs = r.L2Assignment[components.PartCellArray].String()
		res.L2Optimization.PeriKnobs = r.L2Assignment[components.PartDecoder].String()
	}

	ms := &opt.MemorySystem{TwoLevel: *tl}
	for _, b := range cfg.TupleBudgets {
		tb := opt.TupleBudget{NTox: b[0], NVth: b[1]}
		tr, err := ms.OptimizeTuplesCtx(ctx, tb,
			units.GridSteps(0.20, 0.50, 0.05), units.GridSteps(10, 14, 1), budget)
		if err != nil {
			return Result{}, err
		}
		outcome := TupleOutcome{Budget: tb.String(), Feasible: tr.Feasible}
		if tr.Feasible {
			outcome.EnergyPJ = units.ToPJ(tr.EnergyJ)
			outcome.VthSet = tr.VthSet
			outcome.ToxSetA = tr.ToxSet
		}
		res.Tuples = append(res.Tuples, outcome)
	}
	return res, nil
}

// missRates computes the configured workload's (or the suite average's)
// miss rates at the requested fidelity: trace-driven simulation by
// default, or the stack-distance fast path when the config opts into
// analytical fidelity. Under the fast path the per-workload profile is
// memoized process-wide, so a grid of design points pays one profiling
// pass per workload instead of one simulation per point.
func missRates(ctx context.Context, cfg Config, l1Size, l2Size int) (float64, float64, error) {
	var suites []trace.Params
	if cfg.Workload == "average" {
		suites = trace.Suites(cfg.Seed)
	} else {
		for _, p := range trace.Suites(cfg.Seed) {
			if p.Name == cfg.Workload {
				suites = []trace.Params{p}
			}
		}
	}
	if len(suites) == 0 {
		return 0, 0, fmt.Errorf("scenario: workload %q not found", cfg.Workload)
	}
	build := sim.BuildSuiteMatricesCtx
	if cfg.Fidelity == profile.FidelityAnalytical {
		build = profile.BuildSuiteMatricesCtx
	}
	ms, err := build(ctx, suites, []int{l1Size}, []int{l2Size}, cfg.Accesses)
	if err != nil {
		return 0, 0, err
	}
	avg, err := sim.Average(ms)
	if err != nil {
		return 0, 0, err
	}
	return avg.L1Local[l1Size], avg.L2Local[l1Size][l2Size], nil
}

// Render formats the result as JSON.
func (r Result) Render() (string, error) {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", err
	}
	return string(out), nil
}
