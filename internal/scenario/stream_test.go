package scenario

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"strings"
	"testing"
)

const streamGoldenPath = "testdata/stream.golden.ndjson"

// streamFixture runs the example batch through StreamNDJSON and returns
// the raw output.
func streamFixture(t *testing.T, workers int) string {
	t.Helper()
	b := loadFixture(t)
	var buf bytes.Buffer
	if err := StreamNDJSON(context.Background(), b, StreamOptions{Workers: workers}, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestStreamGolden pins the NDJSON stream of the example batch against the
// checked-in golden file. Regenerate with:
//
//	go test ./internal/scenario -run TestStreamGolden -update
func TestStreamGolden(t *testing.T) {
	got := streamFixture(t, 0)
	if *update {
		if err := os.WriteFile(streamGoldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", streamGoldenPath)
		return
	}
	want, err := os.ReadFile(streamGoldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("stream output drifted from %s (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			streamGoldenPath, got, want)
	}
}

// TestStreamMatchesBatch is the streaming-equivalence contract: with no
// cancellation, the NDJSON stream carries one line per scenario, in input
// order, each byte-identical to the compact rendering of the corresponding
// entry in the buffered BatchResult — streaming changes framing, never
// content.
func TestStreamMatchesBatch(t *testing.T) {
	b := loadFixture(t)
	buffered, err := RunBatch(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		out := streamFixture(t, workers)
		lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
		if len(lines) != len(buffered.Scenarios) {
			t.Fatalf("workers=%d: %d NDJSON lines for %d scenarios", workers, len(lines), len(buffered.Scenarios))
		}
		for i, line := range lines {
			if !json.Valid([]byte(line)) {
				t.Fatalf("workers=%d: line %d is not valid JSON: %q", workers, i, line)
			}
			want, err := buffered.Scenarios[i].NDJSONLine()
			if err != nil {
				t.Fatal(err)
			}
			if line != string(want) {
				t.Errorf("workers=%d: line %d differs from buffered result\n got: %s\nwant: %s",
					workers, i, line, want)
			}
			var probe struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal([]byte(line), &probe); err != nil || probe.Name != b.Scenarios[i].Name {
				t.Errorf("workers=%d: line %d is %q, want scenario %q", workers, i, probe.Name, b.Scenarios[i].Name)
			}
		}
	}
}

// TestStreamBatchCancelled checks a cancelled stream ends promptly with
// context.Canceled and without emitting all results.
func TestStreamBatchCancelled(t *testing.T) {
	b := loadFixture(t)
	// Enough accesses that cancellation strikes mid-simulation.
	for i := range b.Scenarios {
		b.Scenarios[i].Accesses = 5_000_000
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch, wait := StreamBatch(ctx, b, StreamOptions{Workers: 2})
	n := 0
	for range ch {
		n++
	}
	if err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if n == len(b.Scenarios) {
		t.Fatal("cancelled stream still delivered every scenario")
	}
}

// TestRunBatchCtxCancelled checks the buffered path reports cancellation.
func TestRunBatchCtxCancelled(t *testing.T) {
	b := loadFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunBatchCtx(ctx, b, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestStreamBatchInvalid checks validation errors surface through wait.
func TestStreamBatchInvalid(t *testing.T) {
	ch, wait := StreamBatch(context.Background(), Batch{}, StreamOptions{})
	for range ch {
		t.Fatal("invalid batch emitted a result")
	}
	if err := wait(); err == nil || !strings.Contains(err.Error(), "no scenarios") {
		t.Fatalf("want validation error, got %v", err)
	}
}
