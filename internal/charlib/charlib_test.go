package charlib

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/components"
	"repro/internal/device"
)

func l1Cache(t *testing.T) *components.Cache {
	t.Helper()
	c, err := components.New(device.Default65nm(), cachecfg.L1(16*cachecfg.KB))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGridValidation(t *testing.T) {
	if err := DefaultGrid().Validate(); err != nil {
		t.Errorf("default grid invalid: %v", err)
	}
	if err := (Grid{}).Validate(); err == nil {
		t.Error("empty grid accepted")
	}
	bad := Grid{Vths: []float64{0.3, 0.2}, ToxAs: []float64{10}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted Vth grid accepted")
	}
	bad = Grid{Vths: []float64{0.3}, ToxAs: []float64{12, 10}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted Tox grid accepted")
	}
}

func TestGridPoints(t *testing.T) {
	g := DefaultGrid()
	if g.Points() != len(g.Vths)*len(g.ToxAs) {
		t.Error("Points mismatch")
	}
	if g.Points() < 35 {
		t.Errorf("default grid too small for fitting: %d points", g.Points())
	}
}

func TestOptimizationGridResolution(t *testing.T) {
	g := OptimizationGrid()
	// The paper: Vth 0.2..0.5, Tox 10..14 in small discrete steps.
	if g.Vths[0] != 0.20 || g.Vths[len(g.Vths)-1] != 0.50 {
		t.Errorf("Vth range %v..%v", g.Vths[0], g.Vths[len(g.Vths)-1])
	}
	if g.ToxAs[0] != 10 || g.ToxAs[len(g.ToxAs)-1] != 14 {
		t.Errorf("Tox range %v..%v", g.ToxAs[0], g.ToxAs[len(g.ToxAs)-1])
	}
	if len(g.Vths) < 50 {
		t.Errorf("optimization grid Vth resolution too coarse: %d", len(g.Vths))
	}
}

func TestCharacterizeShape(t *testing.T) {
	c := l1Cache(t)
	g := CoarseGrid()
	samples, err := Characterize(c.Part(components.PartCellArray), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != g.Points() {
		t.Fatalf("got %d samples, want %d", len(samples), g.Points())
	}
	for _, s := range samples {
		if s.LeakW <= 0 || s.DelayS <= 0 || s.EnergyJ <= 0 {
			t.Errorf("non-positive metric in %+v", s)
		}
		if s.SubW+s.GateW != s.LeakW {
			t.Errorf("leakage breakdown does not sum: %+v", s)
		}
	}
}

func TestCharacterizeRejectsBadGrid(t *testing.T) {
	c := l1Cache(t)
	if _, err := Characterize(c.Part(components.PartDecoder), Grid{}); err == nil {
		t.Error("bad grid accepted")
	}
}

func TestCharacterizeCacheAllParts(t *testing.T) {
	c := l1Cache(t)
	all, err := CharacterizeCache(c, CoarseGrid())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range components.Parts() {
		if len(all[p]) == 0 {
			t.Errorf("no samples for %v", p)
		}
	}
}

func TestSlices(t *testing.T) {
	c := l1Cache(t)
	g := DefaultGrid()
	samples, err := Characterize(c.Part(components.PartCellArray), g)
	if err != nil {
		t.Fatal(err)
	}
	atTox := SliceAtTox(samples, 10)
	if len(atTox) != len(g.Vths) {
		t.Errorf("SliceAtTox(10A) has %d points, want %d", len(atTox), len(g.Vths))
	}
	for _, s := range atTox {
		if s.ToxA != 10 {
			t.Errorf("stray Tox %v in slice", s.ToxA)
		}
	}
	atVth := SliceAtVth(samples, 0.30)
	if len(atVth) != len(g.ToxAs) {
		t.Errorf("SliceAtVth(0.3) has %d points, want %d", len(atVth), len(g.ToxAs))
	}

	// Figure 1's headline observations, checked on raw characterization data:
	// fixing Vth low and sweeping Tox moves leakage a lot over a narrow delay
	// range; fixing Tox and sweeping Vth covers a wide delay range.
	vthFixed := SliceAtVth(samples, 0.20)
	delaySpanVthFixed := span(vthFixed, func(s Sample) float64 { return s.DelayS })
	toxFixed := SliceAtTox(samples, 10)
	delaySpanToxFixed := span(toxFixed, func(s Sample) float64 { return s.DelayS })
	if delaySpanVthFixed >= delaySpanToxFixed {
		t.Errorf("delay span with Vth fixed (%v) should be narrower than with Tox fixed (%v)",
			delaySpanVthFixed, delaySpanToxFixed)
	}
}

func span(samples []Sample, f func(Sample) float64) float64 {
	lo, hi := f(samples[0]), f(samples[0])
	for _, s := range samples {
		v := f(s)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi - lo
}
