// Package charlib characterizes cache components over the (Vth, Tox) design
// grid, playing the role of the "extensive HSPICE simulation" in Section 3
// of the paper: it produces the sample sets from which the analytical
// leakage and delay models are fitted.
package charlib

import (
	"fmt"

	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/units"
)

// Sample is one characterization point of one component.
type Sample struct {
	Vth  float64 // V
	ToxA float64 // angstroms (the unit used in the paper's equations)

	LeakW float64 // total leakage power, W
	SubW  float64 // subthreshold share, W
	GateW float64 // gate-tunnelling share, W

	DelayS  float64 // component delay, s
	EnergyJ float64 // dynamic energy per access, J
}

// Grid is a rectangular sweep of the two knobs.
type Grid struct {
	Vths  []float64 // volts
	ToxAs []float64 // angstroms
}

// DefaultGrid returns the characterization grid used for model fitting:
// 7 Vth values (50 mV steps) x 9 Tox values (0.5 A steps) = 63 points.
func DefaultGrid() Grid {
	return Grid{
		Vths:  units.GridSteps(0.20, 0.50, 0.05),
		ToxAs: units.GridSteps(10, 14, 0.5),
	}
}

// OptimizationGrid returns the fine discrete grid the paper's optimizer
// walks ("discrete values with small step size"): 5 mV Vth steps and 0.25 A
// Tox steps.
func OptimizationGrid() Grid {
	return Grid{
		Vths:  units.GridSteps(0.20, 0.50, 0.005),
		ToxAs: units.GridSteps(10, 14, 0.25),
	}
}

// CoarseGrid returns a small grid for exhaustive cross-checks in tests.
func CoarseGrid() Grid {
	return Grid{
		Vths:  units.GridSteps(0.20, 0.50, 0.1),
		ToxAs: units.GridSteps(10, 14, 2),
	}
}

// Points returns the number of grid points.
func (g Grid) Points() int { return len(g.Vths) * len(g.ToxAs) }

// Validate checks the grid is non-empty and sorted.
func (g Grid) Validate() error {
	if len(g.Vths) == 0 || len(g.ToxAs) == 0 {
		return fmt.Errorf("charlib: empty grid")
	}
	for i := 1; i < len(g.Vths); i++ {
		if g.Vths[i] <= g.Vths[i-1] {
			return fmt.Errorf("charlib: Vth grid not increasing at %d", i)
		}
	}
	for i := 1; i < len(g.ToxAs); i++ {
		if g.ToxAs[i] <= g.ToxAs[i-1] {
			return fmt.Errorf("charlib: Tox grid not increasing at %d", i)
		}
	}
	return nil
}

// Characterize sweeps one component over the grid.
func Characterize(comp components.Component, g Grid) ([]Sample, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := make([]Sample, 0, g.Points())
	for _, v := range g.Vths {
		for _, x := range g.ToxAs {
			op := device.OP(v, x)
			l := comp.Leakage(op)
			out = append(out, Sample{
				Vth:     v,
				ToxA:    x,
				LeakW:   l.Total(),
				SubW:    l.SubthresholdW,
				GateW:   l.GateW,
				DelayS:  comp.Delay(op),
				EnergyJ: comp.DynamicEnergy(op),
			})
		}
	}
	return out, nil
}

// CharacterizeCache sweeps all four components of a cache.
func CharacterizeCache(c *components.Cache, g Grid) ([components.PartCount][]Sample, error) {
	var out [components.PartCount][]Sample
	for _, p := range components.Parts() {
		s, err := Characterize(c.Part(p), g)
		if err != nil {
			return out, fmt.Errorf("charlib: part %v: %w", p, err)
		}
		out[p] = s
	}
	return out, nil
}

// SliceAtTox filters samples at a fixed Tox (within tolerance), ordered by
// Vth — one of the two kinds of one-dimensional slices plotted in Figure 1.
func SliceAtTox(samples []Sample, toxA float64) []Sample {
	var out []Sample
	for _, s := range samples {
		if units.ApproxEqual(s.ToxA, toxA, 1e-9, 1e-9) {
			out = append(out, s)
		}
	}
	return out
}

// SliceAtVth filters samples at a fixed Vth, ordered by Tox — the other
// Figure 1 slice.
func SliceAtVth(samples []Sample, vth float64) []Sample {
	var out []Sample
	for _, s := range samples {
		if units.ApproxEqual(s.Vth, vth, 1e-9, 1e-9) {
			out = append(out, s)
		}
	}
	return out
}
