package analysis

import (
	"go/ast"
	"go/types"
)

// NoClock enforces the injected-time discipline PR 8 established: result
// paths never read the wall clock or the process-global RNG directly.
// time.Now/Since/Until belong to internal/cli and internal/obs (which own
// obs.Clock, the injectable source every rate and ETA computation shares)
// and to the cmd binaries that sit above the result path; everything else
// takes a Clock. Likewise the global math/rand state is process-shared
// and ordering-sensitive — randomized work re-seeds a *rand.Rand per
// shard (one generator per L1 pass, the invariant the sweep engine's
// byte-identical guarantee rests on), so only the constructors
// (rand.New, rand.NewSource, ...) are allowed.
var NoClock = &Analyzer{
	Name: "noclock",
	Doc: "no direct time.Now/Since/Until or global math/rand outside " +
		"internal/cli, internal/obs, and cmd; inject obs.Clock and use " +
		"per-shard seeded *rand.Rand instances",
	Exempt: []string{"internal/cli", "internal/obs", "cmd"},
	Run:    runNoClock,
}

// randConstructors are the math/rand functions that build isolated,
// seedable state instead of touching the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNoClock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if name, ok := isPkgSel(pass.Info, sel, "time"); ok {
				switch name {
				case "Now", "Since", "Until":
					pass.Reportf(sel.Pos(), "direct time.%s; inject an obs.Clock so tests and replays control time", name)
				}
				return true
			}
			p := pkgOf(pass.Info, sel)
			if p == nil || (p.Path() != "math/rand" && p.Path() != "math/rand/v2") {
				return true
			}
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			if !randConstructors[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "global math/rand.%s is process-shared state; use a per-shard seeded *rand.Rand", sel.Sel.Name)
			}
			return true
		})
	}
}
