// Package analysistest runs one analyzer over a GOPATH-style fixture
// tree and checks its diagnostics against expectations embedded in the
// fixtures, mirroring golang.org/x/tools/go/analysis/analysistest in
// miniature. A fixture line documents what the analyzer must say about
// it with a trailing comment:
//
//	for k := range m { out = append(out, k) } // want `appends to out`
//
// Each quoted string after "want" is a regular expression that must
// match one diagnostic reported on that line; diagnostics with no
// matching want, and wants with no matching diagnostic, both fail the
// test. Fixtures therefore prove both directions: the analyzer flags
// the seeded violations and stays quiet on the adjacent allowed
// patterns.
package analysistest

import (
	"context"
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// want is one expectation parsed from a fixture comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/<dir>/src as a fixture tree, runs the analyzer
// (with lint:allow handling, so fixtures can prove the escape hatch),
// and diffs diagnostics against the want comments.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	root := filepath.Join("testdata", dir, "src")
	//lint:allow ctxflow fixture loads are short and uncancellable; t.Context needs go1.24 and this package builds at the 1.22 floor
	prog, err := analysis.LoadTree(context.Background(), root)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Packages) == 0 {
		t.Fatalf("fixture tree %s is empty", root)
	}
	diags := analysis.RunSuite(prog, analysis.SuiteOptions{Analyzers: []*analysis.Analyzer{a}})

	wants := collectWants(t, prog)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
	}
	var keys []string
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for _, w := range wants[k] {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
			}
		}
	}
}

// collectWants parses every `// want "re" ...` comment in the fixture
// tree, including test files (program-level analyzers report against
// facts found there).
func collectWants(t *testing.T, prog *analysis.Program) map[string][]*want {
	t.Helper()
	wants := make(map[string][]*want)
	add := func(f *ast.File) {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				rest := strings.TrimSpace(text[idx+len("want "):])
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment %q", pos, c.Text)
					}
					raw, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: malformed want string %q", pos, q)
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: want pattern %q: %v", pos, raw, err)
					}
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			add(f)
		}
		for _, f := range pkg.TestFiles {
			add(f)
		}
	}
	return wants
}
