package analysis

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loading: the driver needs full type information but the module is
// dependency-free, so instead of golang.org/x/tools/go/packages it asks
// the toolchain directly. `go list -export -deps` enumerates the target
// packages and every dependency along with the compiler's export-data
// file for each; targets are parsed from source and type-checked with an
// importer that reads dependencies from that export data — the exact
// facts the compiler itself recorded, with nothing re-implemented.

// listPackage is the subset of `go list -json` output the loader reads.
type listPackage struct {
	ImportPath  string
	Name        string
	Dir         string
	Export      string
	Standard    bool
	DepOnly     bool
	Incomplete  bool
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	// XTestGoFiles are the external (_test package) test sources; the
	// cross-kind equivalence suite lives in one of these.
	XTestGoFiles []string
	Error        *struct {
		Err string
	}
}

// Load enumerates and type-checks the packages matching patterns (go
// list syntax, e.g. "./..."), resolved relative to dir.
func Load(ctx context.Context, dir string, patterns []string) (*Program, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,DepOnly,Incomplete,GoFiles,CgoFiles,TestGoFiles,XTestGoFiles,Error",
	}, patterns...)
	cmd := exec.CommandContext(ctx, "go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			if p.Error != nil {
				return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
			}
			if p.Incomplete {
				return nil, fmt.Errorf("analysis: %s: package is incomplete; fix the build first", p.ImportPath)
			}
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	prog := &Program{Fset: fset}
	for _, t := range targets {
		if len(t.GoFiles)+len(t.CgoFiles) == 0 {
			// Test-only directories (the root bench harness) have nothing
			// the per-package analyzers look at.
			continue
		}
		pkg, err := checkPackage(fset, imp, t)
		if err != nil {
			return nil, err
		}
		prog.Packages = append(prog.Packages, pkg)
	}
	return prog, nil
}

// exportImporter builds the export-data importer over the go list
// results; one instance is shared across every target so each dependency
// is read once.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// checkPackage parses and type-checks one target package; test files are
// parsed for the program-level analyzers but stay outside the
// type-checked file set.
func checkPackage(fset *token.FileSet, imp types.Importer, t listPackage) (*Package, error) {
	pkg := &Package{Path: t.ImportPath, Name: t.Name, Dir: t.Dir}
	for _, name := range append(append([]string{}, t.GoFiles...), t.CgoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, name := range append(append([]string{}, t.TestGoFiles...), t.XTestGoFiles...) {
		f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		pkg.TestFiles = append(pkg.TestFiles, f)
	}
	var err error
	pkg.Types, pkg.Info, err = typeCheck(fset, imp, t.ImportPath, pkg.Files)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", t.ImportPath, err)
	}
	return pkg, nil
}

// typeCheck runs the type checker over one package's parsed files.
func typeCheck(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return tpkg, info, nil
}

// LoadTree loads a GOPATH-style fixture tree: every directory under root
// that contains .go files is a package whose import path is its
// root-relative slash path. Fixture packages may import each other (the
// kindfixture fixtures carry a fake work registry) and the standard
// library; stdlib imports resolve through one `go list -export` call.
// This is the analysistest loader — production loading goes through Load.
func LoadTree(ctx context.Context, root string) (*Program, error) {
	fset := token.NewFileSet()
	type treePkg struct {
		path    string
		dir     string
		files   []*ast.File
		tests   []*ast.File
		imports map[string]bool
	}
	pkgs := make(map[string]*treePkg)
	external := make(map[string]bool)

	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return err
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := filepath.ToSlash(rel)
		tp := pkgs[path]
		if tp == nil {
			tp = &treePkg{path: path, dir: filepath.Dir(p), imports: make(map[string]bool)}
			pkgs[path] = tp
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		if strings.HasSuffix(d.Name(), "_test.go") {
			tp.tests = append(tp.tests, f)
			return nil
		}
		tp.files = append(tp.files, f)
		for _, spec := range f.Imports {
			ip := strings.Trim(spec.Path.Value, `"`)
			tp.imports[ip] = true
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: walking fixture tree %s: %v", root, err)
	}

	var order []string
	for path, tp := range pkgs {
		order = append(order, path)
		for ip := range tp.imports {
			if pkgs[ip] == nil {
				external[ip] = true
			}
		}
	}
	sort.Strings(order)

	// Resolve the external (stdlib) imports once.
	exports := make(map[string]string)
	if len(external) > 0 {
		var paths []string
		for ip := range external {
			paths = append(paths, ip)
		}
		sort.Strings(paths)
		args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
		cmd := exec.CommandContext(ctx, "go", args...)
		var stderr bytes.Buffer
		cmd.Stderr = &stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("analysis: go list %v: %v\n%s", paths, err, stderr.String())
		}
		dec := json.NewDecoder(bytes.NewReader(out))
		for {
			var p listPackage
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				return nil, err
			}
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}

	// Type-check tree packages in dependency order, feeding each checked
	// package back into the importer so later fixtures can import it.
	imp := &treeImporter{
		local:    make(map[string]*types.Package),
		fallback: exportImporter(fset, exports),
	}
	prog := &Program{Fset: fset}
	done := make(map[string]bool)
	var check func(path string) error
	check = func(path string) error {
		if done[path] {
			return nil
		}
		done[path] = true
		tp := pkgs[path]
		for ip := range tp.imports {
			if pkgs[ip] != nil {
				if err := check(ip); err != nil {
					return err
				}
			}
		}
		name := ""
		if len(tp.files) > 0 {
			name = tp.files[0].Name.Name
		}
		pkg := &Package{Path: path, Name: name, Dir: tp.dir, Files: tp.files, TestFiles: tp.tests}
		var err error
		pkg.Types, pkg.Info, err = typeCheck(fset, imp, path, tp.files)
		if err != nil {
			return fmt.Errorf("analysis: type-checking fixture %s: %v", path, err)
		}
		imp.local[path] = pkg.Types
		prog.Packages = append(prog.Packages, pkg)
		return nil
	}
	for _, path := range order {
		if err := check(path); err != nil {
			return nil, err
		}
	}
	sort.Slice(prog.Packages, func(i, j int) bool { return prog.Packages[i].Path < prog.Packages[j].Path })
	return prog, nil
}

// treeImporter resolves fixture-local packages first and falls back to
// export data for everything else.
type treeImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (t *treeImporter) Import(path string) (*types.Package, error) {
	if p, ok := t.local[path]; ok {
		return p, nil
	}
	return t.fallback.Import(path)
}
