package analysis

import (
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// The lint:allow escape hatch. A directive comment
//
//	//lint:allow <analyzer> <reason>
//
// suppresses <analyzer>'s diagnostics on the directive's own line (the
// trailing-comment form) and on the line immediately below it (the
// standalone-comment form). The reason is part of the contract: an allow
// without one is a diagnostic, as is an allow that suppressed nothing —
// stale exceptions surface instead of accumulating.

const allowPrefix = "//lint:allow"

// allowDirective is one parsed directive.
type allowDirective struct {
	pos      token.Position // the directive comment's position
	analyzer string         // may be "" when malformed
	reason   string
	used     bool
}

// allowSet indexes directives by (file, analyzer, line) for suppression.
type allowSet struct {
	// all keeps source order for deterministic hygiene output.
	all []*allowDirective
	// byLine maps file -> analyzer -> line -> directive.
	byLine map[string]map[string]map[int]*allowDirective
}

// collectAllows parses every directive in the program's non-test files.
// Test files are skipped on purpose: analyzers never report into them,
// so a directive there could only ever be stale.
func collectAllows(prog *Program) *allowSet {
	s := &allowSet{byLine: make(map[string]map[string]map[int]*allowDirective)}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					d := &allowDirective{pos: prog.Fset.Position(c.Pos())}
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					if len(fields) > 0 {
						d.analyzer = fields[0]
						d.reason = strings.Join(fields[1:], " ")
					}
					s.all = append(s.all, d)
					if d.analyzer == "" {
						continue
					}
					file := s.byLine[d.pos.Filename]
					if file == nil {
						file = make(map[string]map[int]*allowDirective)
						s.byLine[d.pos.Filename] = file
					}
					lines := file[d.analyzer]
					if lines == nil {
						lines = make(map[int]*allowDirective)
						file[d.analyzer] = lines
					}
					lines[d.pos.Line] = d
				}
			}
		}
	}
	return s
}

// suppress reports whether a diagnostic from analyzer at p is covered by
// a directive, marking the directive used.
func (s *allowSet) suppress(analyzer string, p token.Position) bool {
	lines := s.byLine[p.Filename][analyzer]
	if lines == nil {
		return false
	}
	// Same line (trailing comment) or the line above (standalone comment).
	for _, line := range []int{p.Line, p.Line - 1} {
		if d := lines[line]; d != nil {
			d.used = true
			return true
		}
	}
	return false
}

// hygiene returns the directive-discipline diagnostics: malformed or
// reasonless directives, directives that suppressed nothing, and (under
// strict) directives naming analyzers outside the known set. Directives
// for analyzers not in the active set are skipped when non-strict, so a
// single-analyzer fixture run does not flag another analyzer's allows.
func (s *allowSet) hygiene(known map[string]bool, strict bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range s.all {
		switch {
		case d.analyzer == "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "repolint",
				Message: "lint:allow needs an analyzer name and a reason"})
		case !known[d.analyzer]:
			if strict {
				out = append(out, Diagnostic{Pos: d.pos, Analyzer: "repolint",
					Message: "lint:allow names unknown analyzer " + strconv.Quote(d.analyzer)})
			}
		case d.reason == "":
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "repolint",
				Message: "lint:allow " + d.analyzer + " needs a reason"})
		case !d.used:
			out = append(out, Diagnostic{Pos: d.pos, Analyzer: "repolint",
				Message: "lint:allow " + d.analyzer + " suppresses nothing; remove it"})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		return a.Pos.Line < b.Pos.Line
	})
	return out
}
