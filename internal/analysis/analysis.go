// Package analysis is the repository's own static-analysis suite: the
// determinism and architecture invariants that every PR so far has
// enforced by convention and by test — all fan-out through the sweep
// engine, no map-iteration-order leaks into output, injected clocks and
// per-shard RNGs only, fixed-point float formatting in names and NDJSON,
// context threaded through every looping layer, every registered workload
// kind wired into the cross-kind equivalence suite — expressed as
// compile-time checks that travel with the code instead of the reviewer.
//
// The package is deliberately self-contained: analyzers run on the
// standard library's go/ast and go/types only (type information comes
// from the toolchain's export data via `go list -export`, see load.go),
// so the module keeps its zero-dependency property. The shape mirrors
// golang.org/x/tools/go/analysis in miniature — an Analyzer holds a name,
// a doc string, and a Run function over a typed Pass — but the driver is
// sequential and deterministic: packages are visited in import-path
// order and diagnostics are sorted, so `repolint ./...` output is
// byte-stable across runs and machines, the same bar the rest of the
// repository holds itself to.
//
// Intentional exceptions are declared in the code they except:
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line (or the line above it) suppresses that analyzer's
// diagnostic there. The reason is mandatory, directives that suppress
// nothing are themselves diagnostics, and unknown analyzer names are
// rejected — so the escape hatch cannot rot into a blanket mute.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check. Exactly one of Run (per-package)
// or RunProgram (whole-program, for rules that relate packages to each
// other, like the registry-fixture discipline) is typically set; the
// driver calls whichever is non-nil.
type Analyzer struct {
	// Name keys the analyzer in diagnostics and in lint:allow directives.
	Name string
	// Doc is the one-paragraph rule statement printed by `repolint -list`.
	Doc string
	// Exempt lists package-path patterns the analyzer never visits. A
	// pattern is a "/"-separated segment sequence; it matches a package
	// whose import path contains that sequence (so "cmd" matches
	// repro/cmd/sweepd and "internal/sweep" matches repro/internal/sweep).
	Exempt []string
	// Run, when non-nil, checks one package.
	Run func(*Pass)
	// RunProgram, when non-nil, checks the whole loaded program after all
	// per-package passes; report attributes a diagnostic to a position.
	RunProgram func(*Program, func(pos token.Pos, msg string))
}

// Package is one loaded, type-checked package: the unit a per-package
// analyzer sees. Test files are parsed (syntax only, never type-checked)
// because program-level rules read them — the kindfixture analyzer finds
// the equivalence suite's fixture table in internal/work's tests — but
// per-package analyzers deliberately skip them: the invariants guard
// emitted results, and tests exercising the machinery (fake clocks,
// goroutine orchestration, deadline polling) are not result paths.
type Package struct {
	// Path is the import path ("repro/internal/dist").
	Path string
	// Name is the package name ("dist").
	Name string
	// Dir is the package directory on disk.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// TestFiles are the parsed test sources (both in-package and external
	// test packages), syntax only.
	TestFiles []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
}

// Program is a loaded set of packages, sorted by import path.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Pass hands one package to one analyzer with a way to report findings.
type Pass struct {
	*Package
	Fset     *token.FileSet
	Analyzer *Analyzer
	report   func(token.Pos, string)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// pathMatches reports whether the import path contains the pattern as a
// contiguous segment sequence.
func pathMatches(path, pattern string) bool {
	segs := strings.Split(path, "/")
	want := strings.Split(pattern, "/")
	if len(want) == 0 || len(want) > len(segs) {
		return false
	}
	for i := 0; i+len(want) <= len(segs); i++ {
		match := true
		for j, w := range want {
			if segs[i+j] != w {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// exempt reports whether pkg is excluded from a by its Exempt patterns.
func (a *Analyzer) exempt(pkg *Package) bool {
	for _, pat := range a.Exempt {
		if pathMatches(pkg.Path, pat) {
			return true
		}
	}
	return false
}

// SuiteOptions configures a RunSuite call.
type SuiteOptions struct {
	// Analyzers is the active set. Allow directives naming analyzers
	// outside the set are ignored unless Strict is set.
	Analyzers []*Analyzer
	// Strict additionally rejects lint:allow directives naming unknown
	// analyzers — the full-suite mode cmd/repolint runs in. Per-analyzer
	// fixture tests run non-strict so a fixture can carry directives for
	// the one analyzer under test.
	Strict bool
}

// RunSuite runs the analyzers over the program and returns the surviving
// diagnostics: findings not suppressed by a lint:allow directive, plus
// the directive hygiene findings (missing reason, suppressing nothing,
// unknown analyzer under Strict), sorted by position.
func RunSuite(prog *Program, opt SuiteOptions) []Diagnostic {
	known := make(map[string]bool, len(opt.Analyzers))
	for _, a := range opt.Analyzers {
		known[a.Name] = true
	}
	allows := collectAllows(prog)

	var diags []Diagnostic
	for _, a := range opt.Analyzers {
		if a.Run != nil {
			for _, pkg := range prog.Packages {
				if a.exempt(pkg) {
					continue
				}
				pass := &Pass{Package: pkg, Fset: prog.Fset, Analyzer: a}
				name := a.Name
				pass.report = func(pos token.Pos, msg string) {
					p := prog.Fset.Position(pos)
					if allows.suppress(name, p) {
						return
					}
					diags = append(diags, Diagnostic{Pos: p, Analyzer: name, Message: msg})
				}
				a.Run(pass)
			}
		}
		if a.RunProgram != nil {
			name := a.Name
			a.RunProgram(prog, func(pos token.Pos, msg string) {
				p := prog.Fset.Position(pos)
				if allows.suppress(name, p) {
					return
				}
				diags = append(diags, Diagnostic{Pos: p, Analyzer: name, Message: msg})
			})
		}
	}
	diags = append(diags, allows.hygiene(known, opt.Strict)...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}
