package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"strconv"
)

// KindFixture closes the one gap the runtime equivalence suite leaves:
// work.TestAllKindsEquivalentAcrossExecutionShapes fails when a
// registered kind has no fixture — but only when the suite actually
// runs, linked against the registering package. Statically, every
// work.Register call site must name its kind with a string constant and
// that kind must appear as a key in the suite's fixture table (the
// fixtures() map in internal/work's tests), either as a string literal
// matching the kind's value or as the package-qualified constant
// (grid.WorkKind) matching the Register argument. The check is
// whole-program: it runs only when the analyzed pattern includes the
// work package (repolint ./...), and is silent on partial loads.
var KindFixture = &Analyzer{
	Name: "kindfixture",
	Doc: "every work.Register call site needs a matching entry in the " +
		"cross-kind equivalence suite's fixtures() table",
	RunProgram: runKindFixture,
}

// registerSite is one work.Register(kind, ...) call.
type registerSite struct {
	pos       token.Pos
	value     string // resolved constant value ("" when non-constant)
	constant  bool
	constName string // syntactic name of the kind expression, when an identifier
	pkgName   string // name of the registering package
}

// fixtureKey is one key of the fixtures() map literal.
type fixtureKey struct {
	literal string // set for string-literal keys
	pkg     string // set with sel for qualified constant keys
	sel     string
}

func runKindFixture(prog *Program, report func(token.Pos, string)) {
	var sites []registerSite
	var workPkg *Package
	for _, pkg := range prog.Packages {
		if pkg.Name == "work" && workPkg == nil {
			workPkg = pkg
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Register" {
					return true
				}
				if p := pkgOf(pkg.Info, sel); p == nil || p.Name() != "work" {
					return true
				}
				site := registerSite{pos: call.Pos(), pkgName: pkg.Name}
				if tv, ok := pkg.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
					site.constant = true
					site.value = constant.StringVal(tv.Value)
				}
				switch arg := call.Args[0].(type) {
				case *ast.Ident:
					site.constName = arg.Name
				case *ast.SelectorExpr:
					site.constName = arg.Sel.Name
				}
				sites = append(sites, site)
				return true
			})
		}
	}
	if len(sites) == 0 {
		return
	}
	if workPkg == nil {
		// Partial load (a pattern that does not include internal/work):
		// the table is unknowable, so stay silent rather than guess.
		return
	}

	keys, found := fixtureKeys(workPkg)
	for _, site := range sites {
		if !site.constant {
			report(site.pos, "work.Register kind must be a string constant so the equivalence fixture can be checked statically")
			continue
		}
		if !found {
			report(site.pos, "cross-kind equivalence fixture table not found: internal/work's tests need a fixtures() func returning map[string]work.Batch")
			continue
		}
		if !matchesFixture(site, keys) {
			report(site.pos, "registered kind "+strconv.Quote(site.value)+" has no entry in the cross-kind equivalence suite's fixtures() table; add one so every execution shape is pinned for it")
		}
	}
}

// fixtureKeys extracts the keys of the map literal returned by the
// fixtures() function in the work package's test files.
func fixtureKeys(workPkg *Package) ([]fixtureKey, bool) {
	var keys []fixtureKey
	found := false
	for _, f := range workPkg.TestFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "fixtures" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				cl, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				if _, ok := cl.Type.(*ast.MapType); !ok {
					return true
				}
				found = true
				for _, elt := range cl.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					switch key := kv.Key.(type) {
					case *ast.BasicLit:
						if key.Kind == token.STRING {
							if v, err := strconv.Unquote(key.Value); err == nil {
								keys = append(keys, fixtureKey{literal: v})
							}
						}
					case *ast.SelectorExpr:
						if id, ok := key.X.(*ast.Ident); ok {
							keys = append(keys, fixtureKey{pkg: id.Name, sel: key.Sel.Name})
						}
					case *ast.Ident:
						// An unqualified constant: only meaningful for kinds
						// registered by the work package itself.
						keys = append(keys, fixtureKey{pkg: "work", sel: key.Name})
					}
				}
				return true
			})
		}
	}
	return keys, found
}

// matchesFixture reports whether any fixture key covers the Register
// site: a literal equal to the kind's value, or a qualified constant
// whose package and name match the registering package and the constant
// used at the call.
func matchesFixture(site registerSite, keys []fixtureKey) bool {
	for _, k := range keys {
		if k.literal != "" && k.literal == site.value {
			return true
		}
		if k.sel != "" && site.constName != "" &&
			k.sel == site.constName && k.pkg == site.pkgName {
			return true
		}
	}
	return false
}
