package analysis

import (
	"go/ast"
	"strings"
)

// NoFanout enforces the sweep-engine monopoly on parallelism: outside
// internal/sweep (the engine), internal/dist (the fleet protocol), and
// internal/obs (the debug listener), no package starts raw goroutines,
// holds a sync.WaitGroup, or imports an errgroup. Every other fan-out in
// the repository goes through sweep.Map/Stream or the unified work
// driver, because those are the layers that guarantee input-ordered,
// byte-identical-to-sequential output; a stray `go` statement is a
// determinism bug waiting for a scheduler to expose it. The examples
// tree is exempt — examples document the public machinery, including
// the dist worker loops that legitimately spawn.
var NoFanout = &Analyzer{
	Name: "nofanout",
	Doc: "raw go statements, sync.WaitGroup, and errgroup are reserved to " +
		"internal/sweep, internal/dist, and internal/obs; all other fan-out " +
		"must go through the sweep engine or the work driver",
	Exempt: []string{"internal/sweep", "internal/dist", "internal/obs", "examples"},
	Run:    runNoFanout,
}

func runNoFanout(pass *Pass) {
	for _, f := range pass.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if path == "golang.org/x/sync/errgroup" || strings.HasSuffix(path, "/errgroup") {
				pass.Reportf(spec.Pos(), "errgroup fan-out outside the sweep engine; use sweep.Map or work.Run")
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "raw go statement outside the sweep engine; route fan-out through internal/sweep or the work driver")
			case *ast.SelectorExpr:
				if name, ok := isPkgSel(pass.Info, n, "sync"); ok && name == "WaitGroup" {
					pass.Reportf(n.Pos(), "sync.WaitGroup outside the sweep engine; route fan-out through internal/sweep or the work driver")
				}
			}
			return true
		})
	}
}
