package analysis_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/analysistest"
)

// One fixture tree per analyzer, each seeding the violations the
// analyzer exists to catch right next to the allowed shape of the same
// idiom — the want comments prove the flagging, the quiet lines prove
// the analyzer does not overreach.

func TestNoFanout(t *testing.T)    { analysistest.Run(t, analysis.NoFanout, "nofanout") }
func TestMapOrder(t *testing.T)    { analysistest.Run(t, analysis.MapOrder, "maporder") }
func TestNoClock(t *testing.T)     { analysistest.Run(t, analysis.NoClock, "noclock") }
func TestCtxFlow(t *testing.T)     { analysistest.Run(t, analysis.CtxFlow, "ctxflow") }
func TestFloatFmt(t *testing.T)    { analysistest.Run(t, analysis.FloatFmt, "floatfmt") }
func TestKindFixture(t *testing.T) { analysistest.Run(t, analysis.KindFixture, "kindfixture") }

// TestAllowHygiene pins the escape hatch's discipline: malformed,
// reasonless, stale, and unknown-analyzer directives are diagnostics
// themselves, while a correct directive suppresses silently.
func TestAllowHygiene(t *testing.T) {
	prog, err := analysis.LoadTree(context.Background(), "testdata/hygiene/src")
	if err != nil {
		t.Fatal(err)
	}

	strict := analysis.RunSuite(prog, analysis.SuiteOptions{Analyzers: analysis.Suite(), Strict: true})
	wantStrict := []string{
		"needs an analyzer name and a reason",
		"lint:allow noclock needs a reason",
		"suppresses nothing; remove it",
		`names unknown analyzer "othertool"`,
	}
	if len(strict) != len(wantStrict) {
		t.Fatalf("strict run: %d diagnostics, want %d:\n%s", len(strict), len(wantStrict), render(strict))
	}
	for i, want := range wantStrict {
		if !strings.Contains(strict[i].Message, want) {
			t.Errorf("strict[%d] = %q, want a message containing %q", i, strict[i].Message, want)
		}
		if strict[i].Analyzer != "repolint" {
			t.Errorf("strict[%d] attributed to %q, want the repolint pseudo-analyzer", i, strict[i].Analyzer)
		}
	}
	for _, d := range strict {
		if strings.Contains(d.Message, "direct time.Now") {
			t.Errorf("suppressed noclock diagnostic leaked: %s", d)
		}
	}

	// Non-strict drops only the unknown-analyzer finding, so fixture
	// trees can carry directives aimed at other tools.
	loose := analysis.RunSuite(prog, analysis.SuiteOptions{Analyzers: analysis.Suite()})
	if len(loose) != len(wantStrict)-1 {
		t.Fatalf("non-strict run: %d diagnostics, want %d:\n%s", len(loose), len(wantStrict)-1, render(loose))
	}
	for _, d := range loose {
		if strings.Contains(d.Message, "othertool") {
			t.Errorf("non-strict run flagged the foreign directive: %s", d)
		}
	}
}

func render(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
