package analysis

import (
	"go/ast"
)

// CtxFlow enforces the context-first pipeline PR 2 built: cancellation
// must be able to reach every loop and every I/O from the top of the
// stack, which means library code never conjures its own root context
// and looping entry points accept one.
//
// Rule 1 (everywhere outside cmd, examples, and internal/cli, which owns
// the process root via signal.NotifyContext): no context.Background() or
// context.TODO(). The one sanctioned shape is the documented compat
// wrapper — a function F whose body calls FCtx, the pattern every
// non-context entry point in the repository follows (sweep.Map ->
// sweep.MapCtx, scenario.Run -> scenario.RunCtx, ...), kept so examples
// and simple callers stay simple.
//
// Rule 2 (the execution-stack packages): an exported function that loops
// and calls context-aware code must itself take a context.Context —
// otherwise it is swallowing cancellation for everything beneath it.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "no context.Background()/TODO() outside cmd and F->FCtx compat " +
		"wrappers; exported looping functions in the execution stack take ctx",
	Exempt: []string{"cmd", "examples", "internal/cli"},
	Run:    runCtxFlow,
}

// ctxStackPkgs are the execution-stack packages rule 2 applies to:
// everything between a CLI flag and a simulated access.
var ctxStackPkgs = []string{
	"internal/sweep", "internal/work", "internal/dist", "internal/grid",
	"internal/scenario", "internal/exp", "internal/sim", "internal/profile",
}

func runCtxFlow(pass *Pass) {
	inStack := false
	for _, pat := range ctxStackPkgs {
		if pathMatches(pass.Path, pat) {
			inStack = true
			break
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				// Background() in package-level var initializers has no
				// wrapper excuse; scan the declaration as a whole.
				if decl != nil {
					reportRootContexts(pass, decl)
				}
				continue
			}
			compat := callsNamed(fd.Body, fd.Name.Name+"Ctx")
			if !compat {
				reportRootContexts(pass, fd.Body)
			}
			if inStack && fd.Name.IsExported() && !compat && !hasContextParam(pass.Info, fd) {
				checkLoopingExport(pass, fd)
			}
		}
	}
}

// reportRootContexts flags context.Background() and context.TODO() calls
// under n.
func reportRootContexts(pass *Pass, n ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if name, ok := isPkgSel(pass.Info, sel, "context"); ok && (name == "Background" || name == "TODO") {
			pass.Reportf(call.Pos(), "context.%s() in library code; thread the caller's ctx (or make this a documented F->FCtx compat wrapper)", name)
		}
		return true
	})
}

// checkLoopingExport flags an exported no-context function whose own
// statements (closures excluded: packaged-up work runs under whoever
// executes it) both loop and call into context-aware code.
func checkLoopingExport(pass *Pass, fd *ast.FuncDecl) {
	hasLoop, hasCtxCall := false, false
	inspectOutsideFuncLits(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			hasLoop = true
		case *ast.CallExpr:
			if takesContext(pass.Info, n) {
				hasCtxCall = true
			}
		}
		return true
	})
	if hasLoop && hasCtxCall {
		pass.Reportf(fd.Name.Pos(), "exported %s loops over context-aware work but takes no context.Context; cancellation cannot reach it", fd.Name.Name)
	}
}
