package analysis

import (
	"go/ast"
	"go/constant"
	"strings"
)

// FloatFmt is the PR-6 bug class as a rule: bare %v and %g render floats
// in shortest form, which flips between decimal and scientific notation
// on magnitude ("1.2e+06" for a 1.2M-picosecond AMAT budget) — formatting
// drift that silently changes point names, NDJSON lines, and journal
// entries. Floats that become text go through fixed-point formatting
// (strconv.FormatFloat(v, 'f', ...)) or a precision-qualified verb chosen
// on purpose: %.3g pins its width and form, so it passes, while bare %g
// does not. The analyzer flags fmt calls that hand a float to a bare
// %v/%g/%G, and floats passed to the verb-less print family (which render
// as %v). fmt.Errorf is deliberately out of scope — error text is
// diagnostics, not result data.
var FloatFmt = &Analyzer{
	Name: "floatfmt",
	Doc: "no bare %v/%g formatting of floats (and no floats through the " +
		"verb-less fmt print family); use strconv fixed-point or a " +
		"precision-qualified verb",
	Run: runFloatFmt,
}

// fmtFormatFuncs maps the format-taking fmt functions to the index of
// their format-string argument.
var fmtFormatFuncs = map[string]int{
	"Printf": 0, "Sprintf": 0, "Fprintf": 1, "Appendf": 1,
}

// fmtValueFuncs maps the verb-less fmt print functions to the index of
// their first value argument; every value renders as %v.
var fmtValueFuncs = map[string]int{
	"Print": 0, "Println": 0, "Sprint": 0, "Sprintln": 0,
	"Fprint": 1, "Fprintln": 1, "Append": 1, "Appendln": 1,
}

func runFloatFmt(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Ellipsis.IsValid() {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := isPkgSel(pass.Info, sel, "fmt")
			if !ok {
				return true
			}
			if idx, ok := fmtFormatFuncs[name]; ok && idx < len(call.Args) {
				checkFormatCall(pass, name, call, idx)
			} else if idx, ok := fmtValueFuncs[name]; ok {
				for _, arg := range call.Args[min(idx, len(call.Args)):] {
					if t, ok := pass.Info.Types[arg]; ok && isFloat(t.Type) {
						pass.Reportf(arg.Pos(), "float rendered by fmt.%s's default %%v (shortest form, drifts to scientific notation); use strconv.FormatFloat(v, 'f', ...)", name)
					}
				}
			}
			return true
		})
	}
}

// checkFormatCall maps format verbs to arguments and flags %v/%g/%G
// applied to floats. Explicit argument indexes ("%[2]v") are rare enough
// that the call is skipped rather than mis-mapped.
func checkFormatCall(pass *Pass, name string, call *ast.CallExpr, fmtIdx int) {
	tv, ok := pass.Info.Types[call.Args[fmtIdx]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	arg := fmtIdx + 1
	i := 0
	for i < len(format) {
		if format[i] != '%' {
			i++
			continue
		}
		i++
		// Flags, width, precision; '*' consumes an argument.
		for i < len(format) && strings.ContainsRune("+-# 0'", rune(format[i])) {
			i++
		}
		if i < len(format) && format[i] == '[' {
			return // explicit argument index: skip the whole call
		}
		for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				arg++
			}
			i++
		}
		hasPrecision := false
		if i < len(format) && format[i] == '.' {
			hasPrecision = true
			i++
			for i < len(format) && (format[i] == '*' || (format[i] >= '0' && format[i] <= '9')) {
				if format[i] == '*' {
					arg++
				}
				i++
			}
		}
		if i >= len(format) {
			return
		}
		verb := format[i]
		i++
		if verb == '%' {
			continue
		}
		// A precision-qualified %.3g pins width and form — that is a
		// deliberate rendering choice, not drift.
		flagged := verb == 'v' || ((verb == 'g' || verb == 'G') && !hasPrecision)
		if flagged && arg < len(call.Args) {
			if t, ok := pass.Info.Types[call.Args[arg]]; ok && isFloat(t.Type) {
				pass.Reportf(call.Args[arg].Pos(), "float formatted with %%%c in fmt.%s (shortest form, drifts to scientific notation); use strconv.FormatFloat(v, 'f', ...) or an explicit fixed verb", verb, name)
			}
		}
		arg++
	}
}
