package analysis

import (
	"go/ast"
	"go/types"
)

// Small resolution helpers shared by the analyzers. Everything works off
// the type-checker's facts, never off raw identifier text, so aliased
// imports and shadowed names resolve the way the compiler sees them.

// pkgOf resolves a selector's base to the imported package it names, or
// nil when the base is not a package qualifier (a variable, a field, a
// shadowing local).
func pkgOf(info *types.Info, sel *ast.SelectorExpr) *types.Package {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return nil
	}
	return pn.Imported()
}

// isPkgSel reports whether sel is a qualified reference into the package
// with the given import path, returning the selected name.
func isPkgSel(info *types.Info, sel *ast.SelectorExpr, path string) (string, bool) {
	p := pkgOf(info, sel)
	if p == nil || p.Path() != path {
		return "", false
	}
	return sel.Sel.Name, true
}

// isFloat reports whether t's underlying type is a floating-point basic
// type (named float types count: what matters is how fmt renders them).
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// takesContext reports whether the call's callee signature has a
// context.Context first parameter.
func takesContext(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return sig.Params().At(0).Type().String() == "context.Context"
}

// hasContextParam reports whether the function declaration takes a
// context.Context parameter anywhere in its signature.
func hasContextParam(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if tv, ok := info.Types[field.Type]; ok && tv.Type != nil &&
			tv.Type.String() == "context.Context" {
			return true
		}
	}
	return false
}

// callsNamed reports whether anywhere in body there is a call whose
// callee is literally named name (either a plain identifier or the
// selected method of any receiver) — the F -> FCtx compat-wrapper shape.
func callsNamed(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == name {
				found = true
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == name {
				found = true
			}
		}
		return !found
	})
	return found
}

// inspectOutsideFuncLits walks n, calling fn for every node that is not
// inside a nested function literal: the enclosing function's own
// statements, not work it packages up for someone else to run.
func inspectOutsideFuncLits(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return fn(m)
	})
}
