// Command tool sits on an exempt path: binaries own the process root
// context.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = ctx
}
