// Package grid sits on an execution-stack path, so both ctxflow rules
// apply: no conjured root contexts, and exported looping entry points
// must take a context.
package grid

import "context"

// Eval is the context-aware leaf everything below calls.
func Eval(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// RunCtx is the context-first entry point.
func RunCtx(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += Eval(ctx, i)
	}
	return total
}

// Run is the documented compat wrapper: Background() is sanctioned here
// because the body delegates to RunCtx.
func Run(n int) int {
	return RunCtx(context.Background(), n)
}

// Seed conjures a root context without being a wrapper.
func Seed(n int) int {
	ctx := context.Background() // want `context\.Background\(\) in library code`
	return Eval(ctx, n)
}

// Sketch does the same with TODO.
func Sketch(n int) int {
	return Eval(context.TODO(), n) // want `context\.TODO\(\) in library code`
}

// Job carries a stored context into a loop.
type Job struct {
	Ctx context.Context
	N   int
}

// Drain loops over context-aware work without taking a context, so
// cancellation cannot reach the loop from the caller.
func (j Job) Drain() int { // want `exported Drain loops over context-aware work but takes no context\.Context`
	total := 0
	for i := 0; i < j.N; i++ {
		total += Eval(j.Ctx, i)
	}
	return total
}
