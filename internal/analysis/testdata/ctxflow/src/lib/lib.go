// Package lib is outside the execution stack: rule 1 (no conjured
// roots) still applies, rule 2 (looping exports take ctx) does not.
package lib

import "context"

// Visit is context-aware.
func Visit(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n
}

// Walk loops over context-aware work without a context parameter; only
// execution-stack packages are held to rule 2, so nothing is flagged.
func Walk(ctx context.Context, items []int) int {
	total := 0
	for _, n := range items {
		total += Visit(ctx, n)
	}
	return total
}

// Sweep has the rule-2 shape but lives outside the stack: quiet.
func Sweep(j Runner) int {
	total := 0
	for i := 0; i < j.N; i++ {
		total += Visit(j.Ctx, i)
	}
	return total
}

// Runner mirrors the stored-context shape from the grid fixture.
type Runner struct {
	Ctx context.Context
	N   int
}
