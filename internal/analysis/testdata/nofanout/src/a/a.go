// Package a seeds nofanout violations: every fan-out primitive outside
// the exempt engine packages.
package a

import (
	"sync"

	"example.com/errgroup" // want `errgroup fan-out outside the sweep engine`
)

func work() {}

// Spawn demonstrates the flagged shapes.
func Spawn() {
	var wg sync.WaitGroup // want `sync\.WaitGroup outside the sweep engine`
	wg.Add(1)
	go work() // want `raw go statement outside the sweep engine`
	wg.Wait()
}

// Grouped drives the fake errgroup so the import is real.
func Grouped() error {
	var g errgroup.Group
	g.Go(work)
	return g.Wait()
}

// Detached shows the documented escape hatch: the directive suppresses
// the diagnostic on the line below it.
func Detached() {
	//lint:allow nofanout detached fire-and-forget logger, no result flows through it
	go work()
}
