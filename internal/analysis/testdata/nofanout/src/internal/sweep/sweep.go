// Package sweep sits on an exempt path: the engine is allowed to spawn.
package sweep

import "sync"

// Map fans out the way the real engine does; nothing here is flagged.
func Map(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func() {
			defer wg.Done()
			fn()
		}()
	}
	wg.Wait()
}
