// Package errgroup is a fixture stand-in for golang.org/x/sync/errgroup:
// just enough surface for a fixture to import and use it.
package errgroup

// Group mimics errgroup.Group's shape.
type Group struct{}

// Go records f; the fixture never runs anything.
func (g *Group) Go(f func()) {}

// Wait reports no error.
func (g *Group) Wait() error { return nil }
