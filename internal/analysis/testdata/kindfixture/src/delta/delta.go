// Package delta registers with a runtime-computed kind, which no static
// fixture check can cover.
package delta

import "work"

// Install registers under a caller-chosen kind.
func Install(kind string) {
	work.Register(kind, nil) // want `work\.Register kind must be a string constant`
}
