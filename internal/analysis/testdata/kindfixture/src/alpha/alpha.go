// Package alpha registers its kind with a string literal that the
// fixture table carries verbatim: covered.
package alpha

import "work"

func init() {
	work.Register("alpha", nil)
}
