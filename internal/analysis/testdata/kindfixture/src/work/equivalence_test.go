package work

// fixtures mirrors the real equivalence suite's table: one entry per
// registered kind, keyed by literal or by the registering package's
// exported constant. The kindfixture analyzer reads this file
// syntactically, so the unresolved gamma qualifier is fine.
func fixtures() map[string]Batch {
	return map[string]Batch{
		"alpha":        nil,
		gamma.WorkKind: nil,
	}
}
