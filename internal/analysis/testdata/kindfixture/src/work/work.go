// Package work is a fixture stand-in for the real registry: just enough
// for registering packages to call Register and for the test file to
// hold a fixtures() table.
package work

// Batch is the registry's common work shape.
type Batch interface{ Len() int }

// UnmarshalFunc turns a journal header back into a Batch.
type UnmarshalFunc func([]byte) (Batch, error)

var registry = map[string]UnmarshalFunc{}

// Register wires a kind into the registry.
func Register(kind string, fn UnmarshalFunc) {
	registry[kind] = fn
}
