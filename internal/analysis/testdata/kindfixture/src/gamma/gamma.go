// Package gamma registers through its exported constant; the fixture
// table keys on the qualified constant (gamma.WorkKind): covered.
package gamma

import "work"

// WorkKind tags gamma's journal entries.
const WorkKind = "gamma"

func init() {
	work.Register(WorkKind, nil)
}
