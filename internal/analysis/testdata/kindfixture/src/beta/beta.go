// Package beta registers a kind the fixture table does not carry: the
// gap the analyzer exists to catch.
package beta

import "work"

func init() {
	work.Register("beta", nil) // want `registered kind "beta" has no entry in the cross-kind equivalence suite's fixtures\(\) table`
}
