// Package a seeds every lint:allow hygiene failure for the suite test:
// a malformed directive, a reasonless one, a stale one, an unknown
// analyzer, and — as the control — one correct, working directive.
package a

import "time"

//lint:allow
func A() time.Time {
	//lint:allow noclock
	return time.Now()
}

//lint:allow noclock stale exception kept to prove unused directives surface
func B() int { return 1 }

//lint:allow othertool suppression aimed at a different linter
func C() time.Time {
	return time.Now() //lint:allow noclock fixture control: a correct directive stays silent
}
