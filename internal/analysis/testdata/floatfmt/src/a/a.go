// Package a seeds floatfmt violations: floats handed to shortest-form
// verbs, next to the pinned formats that pass.
package a

import (
	"fmt"
	"os"
	"strconv"
)

// Name drifts: bare %g flips to scientific notation on magnitude.
func Name(x float64) string {
	return fmt.Sprintf("p%g", x) // want `float formatted with %g`
}

// Label drifts the same way through %v.
func Label(x float64) string {
	return fmt.Sprintf("x=%v", x) // want `float formatted with %v`
}

// Show drifts through the verb-less print family.
func Show(x float64) {
	fmt.Println("x", x) // want `float rendered by fmt\.Println's default %v`
}

// Fixed is the approved shape.
func Fixed(x float64) string {
	return strconv.FormatFloat(x, 'f', 3, 64)
}

// Pinned is allowed: a precision-qualified verb is a deliberate choice.
func Pinned(x float64) string {
	return fmt.Sprintf("%.3g", x)
}

// Verbed is allowed: an explicit fixed-point verb.
func Verbed(x float64) {
	fmt.Fprintf(os.Stdout, "%8.3f\n", x)
}

// Ints is allowed: %v only drifts for floats.
func Ints(n int) string {
	return fmt.Sprintf("%v", n)
}

// Starred tracks '*' width arguments when mapping verbs to values.
func Starred(w int, x float64) string {
	return fmt.Sprintf("%*d %g", w, 1, x) // want `float formatted with %g`
}
