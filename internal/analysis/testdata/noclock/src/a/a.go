// Package a seeds noclock violations: wall-clock reads and global RNG
// use in library code, next to the injected alternatives.
package a

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() time.Time {
	return time.Now() // want `direct time\.Now`
}

// Age measures against the wall clock.
func Age(t time.Time) time.Duration {
	return time.Since(t) // want `direct time\.Since`
}

// Pick draws from the process-global source.
func Pick(n int) int {
	return rand.Intn(n) // want `global math/rand\.Intn is process-shared state`
}

// Shard is the approved shape: an isolated, seedable generator.
func Shard(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
