// Package obs sits on an exempt path: it owns the clock, so it may read
// the wall clock directly.
package obs

import "time"

// Now is the one sanctioned wall-clock read.
func Now() time.Time {
	return time.Now()
}
