// Package a seeds maporder violations — iteration order leaking into
// slices, output, and order-sensitive reductions — next to each allowed
// shape of the same idiom.
package a

import (
	"fmt"
	"io"
	"sort"
)

// Keys leaks: the appended slice is never sorted.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `appends to out without sorting it afterwards`
	}
	return out
}

// SortedKeys is the approved collect-then-sort shape.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum leaks: float addition is order-sensitive.
func Sum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `order-sensitive float64 reduction`
	}
	return sum
}

// Join leaks: string concatenation is order-sensitive.
func Join(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want `order-sensitive string reduction`
	}
	return s
}

// Count is allowed: integer accumulation is commutative and exact.
func Count(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		n += len(vs)
	}
	return n
}

// Print leaks through the fmt print family.
func Print(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `writes output via fmt\.Println`
	}
}

// Dump leaks through a writer method.
func Dump(w io.Writer, m map[string]int) {
	for k := range m {
		w.Write([]byte(k)) // want `writes output via Write`
	}
}

// Invert is allowed: each iteration writes an independent key.
func Invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Widths is allowed: the appended slice is local to the iteration, so
// its order is per-element, not per-map.
func Widths(m map[string][]string) int {
	longest := 0
	for _, vs := range m {
		row := []int{}
		for _, v := range vs {
			row = append(row, len(v))
		}
		if len(row) > longest {
			longest = len(row)
		}
	}
	return longest
}
