package analysis

// Suite is the full repolint analyzer set, in the order diagnostics
// group most readably: structural rules first, formatting last.
func Suite() []*Analyzer {
	return []*Analyzer{
		NoFanout,
		MapOrder,
		NoClock,
		CtxFlow,
		FloatFmt,
		KindFixture,
	}
}
