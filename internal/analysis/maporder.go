package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder targets the canonical Go determinism leak: map iteration
// order. Ranging over a map is fine when each iteration is independent
// (indexing another map, deleting keys); it is a bug the moment the body
// threads iteration order into anything ordered — appending to a slice,
// writing output, or accumulating a non-commutative reduction (float and
// string folds depend on order; integer counters do not and are allowed).
// The approved shape is collect-then-sort: append the keys (or values)
// and sort the slice before it is used, which the analyzer recognizes by
// finding a sort.*/slices.Sort* call on the appended slice in the
// statements after the loop. Everything else needs sorted-key iteration
// or an explicit lint:allow with the argument for why order cannot leak.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "map iteration must not feed slices, output, or order-sensitive " +
		"reductions; collect and sort, or iterate sorted keys",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		walkWithStack(f, func(stack []ast.Node, n ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			checkMapRange(pass, stack, rs)
		})
	}
}

// checkMapRange inspects one map-range body for order leaks.
func checkMapRange(pass *Pass, stack []ast.Node, rs *ast.RangeStmt) {
	type appendSite struct {
		pos    token.Pos
		target ast.Expr // nil when the append result is not assigned
	}
	var appends []appendSite

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Compound assignment: a reduction. Integer accumulation is
				// commutative and exact, so only order-sensitive element
				// types (floats, complex, strings) are findings.
				for _, lhs := range n.Lhs {
					t := pass.Info.Types[lhs].Type
					if t == nil {
						continue
					}
					if b, ok := t.Underlying().(*types.Basic); ok &&
						b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0 {
						pass.Reportf(n.Pos(), "map iteration feeds an order-sensitive %s reduction; iterate sorted keys", b.Name())
					}
				}
				return true
			}
			for i, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass.Info, call) {
					site := appendSite{pos: call.Pos()}
					if i < len(n.Lhs) {
						site.target = n.Lhs[i]
					}
					appends = append(appends, site)
				}
			}
		case *ast.CallExpr:
			if isBuiltinAppend(pass.Info, n) {
				// Assigned appends are collected by the AssignStmt case
				// above; reaching one here means the result goes straight
				// into another call, which nothing can sort afterwards.
				if !isAssignedAppend(rs.Body, n) {
					appends = append(appends, appendSite{pos: n.Pos()})
				}
				return true
			}
			if name, ok := outputCall(pass.Info, n); ok {
				pass.Reportf(n.Pos(), "map iteration writes output via %s; iterate sorted keys", name)
			}
		}
		return true
	})

	for _, site := range appends {
		if site.target != nil {
			if declaredWithin(pass.Info, site.target, rs.Body) {
				// A slice local to the iteration: its order is per-element,
				// not per-map, so nothing leaks.
				continue
			}
			if sortedAfter(pass.Info, stack, rs, site.target) {
				continue
			}
			pass.Reportf(site.pos, "map iteration appends to %s without sorting it afterwards; sort the slice or iterate sorted keys", types.ExprString(site.target))
			continue
		}
		pass.Reportf(site.pos, "map iteration appends in iteration order; collect into a slice and sort it, or iterate sorted keys")
	}
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isAssignedAppend reports whether the append call is the direct RHS of
// an assignment somewhere in body (those are handled with their target).
func isAssignedAppend(body *ast.BlockStmt, call *ast.CallExpr) bool {
	assigned := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			if rhs == call {
				assigned = true
			}
		}
		return !assigned
	})
	return assigned
}

// outputCall recognizes calls that emit bytes somewhere ordered: the fmt
// print family and the conventional writer/encoder methods.
func outputCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if name, ok := isPkgSel(info, sel, "fmt"); ok {
		switch name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + name, true
		}
		return "", false
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		// Only flag method calls on real values, not package functions
		// (os.Encode does not exist, but keep the guard uniform).
		if pkgOf(info, sel) == nil {
			return sel.Sel.Name, true
		}
	}
	return "", false
}

// declaredWithin reports whether expr is an identifier whose declaration
// lies inside body.
func declaredWithin(info *types.Info, expr ast.Expr, body *ast.BlockStmt) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	return obj != nil && obj.Pos() >= body.Pos() && obj.Pos() <= body.End()
}

// sortedAfter reports whether, in the statements following the range
// loop in its enclosing block, target is passed to a sort call
// (sort.Anything or slices.Sort*): the collect-then-sort idiom.
func sortedAfter(info *types.Info, stack []ast.Node, rs *ast.RangeStmt, target ast.Expr) bool {
	// Find the innermost enclosing block and the child statement holding
	// the range loop.
	var block *ast.BlockStmt
	var after []ast.Stmt
	for i := len(stack) - 1; i >= 0; i-- {
		b, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		for j, stmt := range b.List {
			if stmt.Pos() <= rs.Pos() && rs.End() <= stmt.End() {
				block = b
				after = b.List[j+1:]
				break
			}
		}
		if block != nil {
			break
		}
	}
	if block == nil {
		return false
	}
	want := types.ExprString(target)
	found := false
	for _, stmt := range after {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			p := pkgOf(info, sel)
			if p == nil {
				return true
			}
			isSort := p.Path() == "sort" ||
				(p.Path() == "slices" && len(sel.Sel.Name) >= 4 && sel.Sel.Name[:4] == "Sort")
			if !isSort {
				return true
			}
			for _, arg := range call.Args {
				if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
					arg = u.X
				}
				if types.ExprString(arg) == want {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// walkWithStack does a depth-first walk of root, calling fn with the
// ancestor stack (outermost first, not including n itself) at every node.
func walkWithStack(root ast.Node, fn func(stack []ast.Node, n ast.Node)) {
	var stack []ast.Node
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		fn(stack, n)
		stack = append(stack, n)
		ast.Inspect(n, func(m ast.Node) bool {
			if m == nil || m == n {
				return m == n
			}
			walk(m)
			return false
		})
		stack = stack[:len(stack)-1]
	}
	walk(root)
}
