package components

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/device"
	"repro/internal/units"
)

// Golden regression values pin the calibrated physics at three named
// corners. They protect against accidental drift in the device constants,
// the netlist inventories, or the geometry model. An intentional
// recalibration should regenerate them (the capture loop is this test body
// with the expectations printed instead of compared) and explain the change.
//
// Tolerance is 0.5%: loose enough for floating-point reassociation, tight
// enough to catch any real modelling change.
var goldenCorners = []struct {
	cfg       string
	vth, toxA float64
	subW      float64
	gateW     float64
	accessS   float64
	dynJ      float64
	areaM2    float64
}{
	{"16KB/32B/4-way", 0.2, 10, 1.442850e-02, 5.183196e-03, 5.537576e-10, 2.156578e-11, 1.666179e-07},
	{"16KB/32B/4-way", 0.35, 12, 3.965842e-04, 7.115328e-04, 8.244602e-10, 2.183230e-11, 1.836962e-07},
	{"16KB/32B/4-way", 0.5, 14, 1.088798e-05, 9.709735e-05, 1.379152e-09, 2.210017e-11, 2.016077e-07},
	{"512KB/64B/8-way", 0.2, 10, 4.078419e-01, 1.475233e-01, 1.209729e-09, 1.601819e-10, 5.083339e-06},
	{"512KB/64B/8-way", 0.35, 12, 1.119896e-02, 2.023667e-02, 1.519500e-09, 1.633916e-10, 5.604381e-06},
	{"512KB/64B/8-way", 0.5, 14, 3.072709e-04, 2.760421e-03, 2.123415e-09, 1.666195e-10, 6.150840e-06},
}

func TestGoldenCorners(t *testing.T) {
	tech := device.Default65nm()
	caches := map[string]*Cache{}
	for _, cfg := range []cachecfg.Config{cachecfg.L1(16 * cachecfg.KB), cachecfg.L2(512 * cachecfg.KB)} {
		c, err := New(tech, cfg)
		if err != nil {
			t.Fatal(err)
		}
		caches[cfg.String()] = c
	}
	const tol = 5e-3
	for _, g := range goldenCorners {
		c := caches[g.cfg]
		if c == nil {
			t.Fatalf("missing cache %s", g.cfg)
		}
		a := Uniform(device.OP(g.vth, g.toxA))
		l := c.Leakage(a)
		check := func(name string, got, want float64) {
			if !units.ApproxEqual(got, want, tol, 0) {
				t.Errorf("%s @ (%.2fV, %.0fA): %s = %.6e, golden %.6e",
					g.cfg, g.vth, g.toxA, name, got, want)
			}
		}
		check("subthreshold", l.SubthresholdW, g.subW)
		check("gate", l.GateW, g.gateW)
		check("access time", c.AccessTime(a), g.accessS)
		check("dynamic energy", c.DynamicEnergy(a), g.dynJ)
		check("area", c.AreaM2(a), g.areaM2)
	}
}
