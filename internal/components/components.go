// Package components implements the four cache components of the paper's
// Section 3 decomposition — the memory cell array (with sense amplifiers),
// the row decoder, the address bus drivers, and the data bus drivers — and
// their composition into a whole cache.
//
// Each component exposes total leakage power, delay, and dynamic energy per
// access as functions of its own (Vth, Tox) operating point; following the
// paper, components are treated as electrically independent, the cache's
// leakage is the sum of component leakages and the access time is the sum
// of component delays (they sit in series on the access path).
//
// Transistor sizing (driver-chain stage counts and widths) is frozen at a
// design corner — the fastest legal operating point — exactly as a real
// netlist would be; evaluating a component at a different (Vth, Tox) changes
// device currents, capacitances and wire lengths but not the design.
package components

import (
	"fmt"
	"math"

	"repro/internal/cachecfg"
	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/sram"
)

// PartID identifies one of the four cache components.
type PartID int

const (
	// PartCellArray is the memory cell array including sense amplifiers and
	// precharge (the paper's "memory cell array and sense amplifier").
	PartCellArray PartID = iota
	// PartDecoder is the row/predecode logic.
	PartDecoder
	// PartAddrDrivers is the address bus driver component.
	PartAddrDrivers
	// PartDataDrivers is the data bus driver component.
	PartDataDrivers
	// PartCount is the number of components.
	PartCount
)

var partNames = [PartCount]string{"cell-array", "decoder", "addr-drivers", "data-drivers"}

// String returns the component's conventional name.
func (p PartID) String() string {
	if p < 0 || p >= PartCount {
		return fmt.Sprintf("part(%d)", int(p))
	}
	return partNames[p]
}

// Parts lists the four component IDs in order.
func Parts() [PartCount]PartID {
	return [PartCount]PartID{PartCellArray, PartDecoder, PartAddrDrivers, PartDataDrivers}
}

// Assignment maps each component to an operating point — the decision
// variable of the paper's optimization problems.
type Assignment [PartCount]device.OperatingPoint

// Uniform returns a Scheme-III assignment: the same pair everywhere.
func Uniform(op device.OperatingPoint) Assignment {
	var a Assignment
	for i := range a {
		a[i] = op
	}
	return a
}

// Split returns a Scheme-II assignment: one pair for the cell array and
// another for the three peripheral components.
func Split(cell, periph device.OperatingPoint) Assignment {
	var a Assignment
	a[PartCellArray] = cell
	for _, p := range []PartID{PartDecoder, PartAddrDrivers, PartDataDrivers} {
		a[p] = periph
	}
	return a
}

// String formats an assignment component by component.
func (a Assignment) String() string {
	s := ""
	for i, op := range a {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%v=%v", PartID(i), op)
	}
	return s
}

// Component is one of the four cache components.
type Component interface {
	// ID returns the component's identity.
	ID() PartID
	// Leakage returns the component's total standby leakage at op.
	Leakage(op device.OperatingPoint) circuit.Leakage
	// Delay returns the component's contribution to the access time at op.
	Delay(op device.OperatingPoint) float64
	// DynamicEnergy returns the switching energy per access at op.
	DynamicEnergy(op device.OperatingPoint) float64
}

// Params tunes the cache-level electrical environment.
type Params struct {
	// ExternalBusM is the routing distance (m) between the cache macro and
	// its client (CPU core for an L1, L1 for an L2), travelled by both the
	// address and the data buses.
	ExternalBusM float64
	// ExternalLoadF is the far-end load (F) each data bit drives.
	ExternalLoadF float64
	// ActivityFactor is the switching probability per bus wire per access.
	ActivityFactor float64
	// DesignPoint is the corner at which driver chains are sized.
	DesignPoint device.OperatingPoint
}

// DefaultParams returns conventional parameters for a cache of the given
// capacity: small (L1-class) macros sit close to the core; large (L2-class)
// macros pay longer global routing.
func DefaultParams(t *device.Technology, cfg cachecfg.Config) Params {
	bus := 1.5e-3 // 1.5 mm
	if cfg.SizeBytes > 128*cachecfg.KB {
		bus = 3.0e-3
	}
	return Params{
		ExternalBusM:   bus,
		ExternalLoadF:  50e-15,
		ActivityFactor: 0.5,
		DesignPoint:    device.OperatingPoint{Vth: t.VthMin, ToxM: t.ToxMin},
	}
}

// Cache is the assembled four-component cache.
type Cache struct {
	Tech   *device.Technology
	Cfg    cachecfg.Config
	Array  geom.Array
	Params Params

	parts [PartCount]Component
}

// New assembles a cache from a configuration using default parameters.
func New(t *device.Technology, cfg cachecfg.Config) (*Cache, error) {
	return NewWithParams(t, cfg, DefaultParams(t, cfg))
}

// NewWithParams assembles a cache with explicit electrical parameters.
func NewWithParams(t *device.Technology, cfg cachecfg.Config, p Params) (*Cache, error) {
	arr, err := geom.Organize(cfg, sram.DefaultCell())
	if err != nil {
		return nil, err
	}
	c := &Cache{Tech: t, Cfg: cfg, Array: arr, Params: p}
	c.parts[PartCellArray] = newCellArray(t, arr, p)
	c.parts[PartDecoder] = newDecoder(t, arr, p)
	c.parts[PartAddrDrivers] = newAddrDrivers(t, arr, p)
	c.parts[PartDataDrivers] = newDataDrivers(t, arr, p)
	return c, nil
}

// Part returns one component.
func (c *Cache) Part(id PartID) Component { return c.parts[id] }

// Leakage returns the cache's total leakage under the assignment: the sum
// over components (the paper's additive model).
func (c *Cache) Leakage(a Assignment) circuit.Leakage {
	var total circuit.Leakage
	for i, part := range c.parts {
		total.Add(part.Leakage(a[i]), 1)
	}
	return total
}

// AccessTime returns the cache access (hit) time under the assignment: the
// sum of component delays, per the paper's independence assumption. The
// four components are in series on the access path (address in, decode,
// array, data out), so the sum is also the critical path.
func (c *Cache) AccessTime(a Assignment) float64 {
	var total float64
	for i, part := range c.parts {
		total += part.Delay(a[i])
	}
	return total
}

// DynamicEnergy returns the switching energy of one access.
func (c *Cache) DynamicEnergy(a Assignment) float64 {
	var total float64
	for i, part := range c.parts {
		total += part.DynamicEnergy(a[i])
	}
	return total
}

// AreaM2 returns the macro area under the cell array's operating point
// (the array dominates; periphery is folded in as overhead).
func (c *Cache) AreaM2(a Assignment) float64 {
	return c.Array.AreaM2(c.Tech, a[PartCellArray])
}

// --- Memory cell array (+ sense amps, precharge) ---------------------------

type cellArray struct {
	t   *device.Technology
	arr geom.Array
	p   Params

	cell     sram.CellParams
	wlStages int // wordline driver chain depth, frozen at the design point
}

func newCellArray(t *device.Technology, arr geom.Array, p Params) *cellArray {
	ca := &cellArray{t: t, arr: arr, p: p, cell: arr.Cell}
	dp := p.DesignPoint
	chain := circuit.OptimalChain(t, dp, ca.handoffCap(dp), ca.wordlineCap(dp))
	ca.wlStages = chain.Stages
	return ca
}

func (ca *cellArray) ID() PartID { return PartCellArray }

// handoffCap is the input capacitance a component presents to its driver.
func (ca *cellArray) handoffCap(op device.OperatingPoint) float64 {
	return ca.t.GateCap(4*ca.t.WMin*(1+circuit.BetaP), op)
}

func (ca *cellArray) wordlineCap(op device.OperatingPoint) float64 {
	perCell := ca.cell.WordlineCapPerCell(ca.t, op)
	return perCell * float64(ca.arr.Cols)
}

func (ca *cellArray) bitlineCap(op device.OperatingPoint) float64 {
	perCell := ca.cell.BitlineCapPerCell(ca.t, op)
	c := perCell * float64(ca.arr.Rows)
	// Column mux junction and sense amp input at the bottom of the line.
	c += ca.t.JunctionCap(4*ca.t.WMin, op) + ca.t.GateCap(4*ca.t.WMin, op)
	return c
}

func (ca *cellArray) Leakage(op device.OperatingPoint) circuit.Leakage {
	nl := &circuit.Netlist{Name: "cell-array"}
	nl.AddChild(ca.cell.Netlist(), float64(ca.arr.TotalCells()))
	nl.AddChild(sram.SenseAmp(ca.t), float64(ca.arr.SenseAmps()))
	nl.AddChild(sram.Precharge(ca.t), float64(ca.arr.Cols*ca.arr.NSub))
	nl.AddChild(sram.ColumnMux(ca.t), float64(ca.arr.Cols*ca.arr.NSub))
	// Wordline drivers: one chain per row per subarray, output low (deselected).
	wlDriverW := ca.chainWidth(op)
	nl.AddChild(circuit.Inverter("wldrv", wlDriverW, 1), float64(ca.arr.Rows*ca.arr.NSub))
	return nl.LeakagePower(ca.t, op)
}

// chainWidth returns the total NMOS width of one wordline driver chain with
// the frozen stage count, sized at op-dependent capacitances.
func (ca *cellArray) chainWidth(op device.OperatingPoint) float64 {
	cin := ca.handoffCap(op)
	cload := ca.wordlineCap(op)
	f := cload / cin
	if f < 1 {
		f = 1
	}
	effort := pow(f, 1/float64(ca.wlStages))
	wPerCap := ca.t.WMin / ca.t.GateCap(ca.t.WMin, op)
	var w float64
	c := cin
	for i := 0; i < ca.wlStages; i++ {
		w += c * wPerCap / (1 + circuit.BetaP)
		c *= effort
	}
	return w
}

func (ca *cellArray) Delay(op device.OperatingPoint) float64 {
	t := ca.t
	// Wordline driver chain with frozen depth.
	cin := ca.handoffCap(op)
	cwl := ca.wordlineCap(op)
	f := cwl / cin
	if f < 1 {
		f = 1
	}
	effort := pow(f, 1/float64(ca.wlStages))
	dChain := float64(ca.wlStages) * (effort + 1) * t.Tau(op)

	// Wordline wire RC (distributed).
	wlWire := circuit.Wire{LengthM: ca.arr.WordlineLength(t, op)}
	dWire := 0.38 * wlWire.R(t) * wlWire.C(t)

	// Bitline discharge to the sense threshold by the cell read current.
	cbl := ca.bitlineCap(op)
	iread := ca.cell.ReadCurrent(t, op)
	dBitline := cbl * (sram.BitlineSwing * t.Vdd) / iread

	// Sense amplifier resolution.
	dSense := sram.SenseDelay(t, op)

	return dChain + dWire + dBitline + dSense
}

func (ca *cellArray) DynamicEnergy(op device.OperatingPoint) float64 {
	t := ca.t
	active := float64(ca.arr.ActiveSubarrays())
	// One wordline swings rail to rail in each active subarray.
	eWL := circuit.SwitchingEnergy(t, ca.wordlineCap(op)+circuit.Wire{LengthM: ca.arr.WordlineLength(t, op)}.C(t), 1) * active
	// Every bitline pair in the active subarrays develops the sense swing
	// and is precharged back.
	nBL := float64(ca.arr.Cols) * active
	eBL := circuit.SwitchingEnergy(t, ca.bitlineCap(op), sram.BitlineSwing) * nBL
	// Sense amplifiers fire on the selected columns.
	nSA := float64(ca.arr.SenseAmps()) / float64(ca.arr.NSub) * active
	eSA := circuit.SwitchingEnergy(t, t.GateCap(8*t.WMin, op), 1) * nSA
	return eWL + eBL + eSA
}

// --- Row decoder ------------------------------------------------------------

type decoder struct {
	t   *device.Technology
	arr geom.Array
	p   Params
}

func newDecoder(t *device.Technology, arr geom.Array, p Params) *decoder {
	return &decoder{t: t, arr: arr, p: p}
}

func (d *decoder) ID() PartID { return PartDecoder }

// nand3InputCap is the load one predecode line sees per row gate input.
func (d *decoder) nand3InputCap(op device.OperatingPoint) float64 {
	// Row NAND: stacked NMOS (3x upsized) plus PMOS per input.
	return d.t.GateCap(2*d.t.WMin*3+2*d.t.WMin*circuit.BetaP, op) / 3
}

func (d *decoder) Leakage(op device.OperatingPoint) circuit.Leakage {
	nl := &circuit.Netlist{Name: "decoder"}
	rows := d.arr.Rows * d.arr.NSub
	// One row NAND3 per wordline; exactly one row is selected per subarray
	// bank, so pAllHigh ~ 1/Rows.
	pSel := 1.0 / float64(d.arr.Rows)
	nl.AddChild(circuit.NAND("rownand", 3, 2*d.t.WMin, pSel), float64(rows))
	// Predecoders: one bank of ceil(bits/3) groups of 8 NAND3 per subarray,
	// 1-of-8 selected in each group.
	groups := (d.arr.AddressBits() + 2) / 3
	nl.AddChild(circuit.NAND("predec", 3, 4*d.t.WMin, 1.0/8), float64(groups*8*d.arr.NSub))
	// Address input buffers per subarray.
	nl.AddChild(circuit.Inverter("abuf", 4*d.t.WMin, 0.5), float64(d.arr.AddressBits()*d.arr.NSub))
	return nl.LeakagePower(d.t, op)
}

func (d *decoder) Delay(op device.OperatingPoint) float64 {
	t := d.t
	const geNAND3 = 5.0 / 3.0 // logical effort of a 3-input NAND

	// Stage 1: address buffer drives the predecode NAND inputs (8 gates).
	c1 := 8 * t.GateCap(4*t.WMin*(1+circuit.BetaP), op) / 3
	d1 := circuit.GateDelay(t, op, 4*t.WMin, c1)

	// Stage 2: predecode NAND drives its predecode line: a wire spanning the
	// subarray plus Rows/8 row-gate inputs.
	wire := circuit.Wire{LengthM: d.arr.BitlineLength(t, op)}
	c2 := wire.C(t) + float64(d.arr.Rows)/8*d.nand3InputCap(op)
	d2 := geNAND3*circuit.GateDelay(t, op, 4*t.WMin, c2) + 0.38*wire.R(t)*wire.C(t)

	// Stage 3: the selected row NAND drives the wordline driver input.
	c3 := t.GateCap(4*t.WMin*(1+circuit.BetaP), op)
	d3 := geNAND3 * circuit.GateDelay(t, op, 2*t.WMin, c3)

	return d1 + d2 + d3
}

func (d *decoder) DynamicEnergy(op device.OperatingPoint) float64 {
	t := d.t
	active := float64(d.arr.ActiveSubarrays())
	// Address buffers and predecode lines toggle in active subarrays.
	wire := circuit.Wire{LengthM: d.arr.BitlineLength(t, op)}
	cLine := wire.C(t) + float64(d.arr.Rows)/8*d.nand3InputCap(op)
	groups := float64((d.arr.AddressBits() + 2) / 3)
	// Per access, in each group one line falls and one rises.
	return active * groups * 2 * circuit.SwitchingEnergy(t, cLine, 1) * d.p.ActivityFactor * 2
}

// --- Address bus drivers -----------------------------------------------------

type addrDrivers struct {
	t      *device.Technology
	arr    geom.Array
	p      Params
	bits   int
	stages int
}

func newAddrDrivers(t *device.Technology, arr geom.Array, p Params) *addrDrivers {
	a := &addrDrivers{t: t, arr: arr, p: p, bits: cachecfg.AddressBits}
	dp := p.DesignPoint
	chain := circuit.OptimalChain(t, dp, a.cin(dp), a.cload(dp))
	a.stages = chain.Stages
	return a
}

func (a *addrDrivers) ID() PartID { return PartAddrDrivers }

func (a *addrDrivers) cin(op device.OperatingPoint) float64 {
	return a.t.GateCap(2*a.t.WMin*(1+circuit.BetaP), op)
}

func (a *addrDrivers) wire(op device.OperatingPoint) circuit.Wire {
	return circuit.Wire{LengthM: a.p.ExternalBusM + a.arr.BusLength(a.t, op)}
}

func (a *addrDrivers) cload(op device.OperatingPoint) float64 {
	// Bus wire plus the decoder's input buffers across subarrays.
	return a.wire(op).C(a.t) + float64(a.arr.NSub)*a.t.GateCap(4*a.t.WMin*(1+circuit.BetaP), op)
}

func (a *addrDrivers) chainWidth(op device.OperatingPoint) float64 {
	cin := a.cin(op)
	f := a.cload(op) / cin
	if f < 1 {
		f = 1
	}
	effort := pow(f, 1/float64(a.stages))
	wPerCap := a.t.WMin / a.t.GateCap(a.t.WMin, op)
	var w float64
	c := cin
	for i := 0; i < a.stages; i++ {
		w += c * wPerCap / (1 + circuit.BetaP)
		c *= effort
	}
	return w
}

func (a *addrDrivers) Leakage(op device.OperatingPoint) circuit.Leakage {
	nl := &circuit.Netlist{Name: "addr-drivers"}
	nl.AddChild(circuit.Inverter("achain", a.chainWidth(op), 0.5), float64(a.bits))
	return nl.LeakagePower(a.t, op)
}

func (a *addrDrivers) Delay(op device.OperatingPoint) float64 {
	t := a.t
	cin := a.cin(op)
	cl := a.cload(op)
	f := cl / cin
	if f < 1 {
		f = 1
	}
	effort := pow(f, 1/float64(a.stages))
	dChain := float64(a.stages) * (effort + 1) * t.Tau(op)
	w := a.wire(op)
	dWire := 0.38 * w.R(t) * w.C(t)
	return dChain + dWire
}

func (a *addrDrivers) DynamicEnergy(op device.OperatingPoint) float64 {
	return float64(a.bits) * a.p.ActivityFactor *
		circuit.SwitchingEnergy(a.t, a.cload(op), 1)
}

// --- Data bus drivers ---------------------------------------------------------

type dataDrivers struct {
	t      *device.Technology
	arr    geom.Array
	p      Params
	bits   int
	stages int
}

func newDataDrivers(t *device.Technology, arr geom.Array, p Params) *dataDrivers {
	d := &dataDrivers{t: t, arr: arr, p: p, bits: arr.Cfg.OutputBits}
	dp := p.DesignPoint
	chain := circuit.OptimalChain(t, dp, d.cin(dp), d.cload(dp))
	d.stages = chain.Stages
	return d
}

func (d *dataDrivers) ID() PartID { return PartDataDrivers }

func (d *dataDrivers) cin(op device.OperatingPoint) float64 {
	return d.t.GateCap(2*d.t.WMin*(1+circuit.BetaP), op)
}

func (d *dataDrivers) wire(op device.OperatingPoint) circuit.Wire {
	return circuit.Wire{LengthM: d.p.ExternalBusM + d.arr.BusLength(d.t, op)}
}

func (d *dataDrivers) cload(op device.OperatingPoint) float64 {
	return d.wire(op).C(d.t) + d.p.ExternalLoadF
}

func (d *dataDrivers) chainWidth(op device.OperatingPoint) float64 {
	cin := d.cin(op)
	f := d.cload(op) / cin
	if f < 1 {
		f = 1
	}
	effort := pow(f, 1/float64(d.stages))
	wPerCap := d.t.WMin / d.t.GateCap(d.t.WMin, op)
	var w float64
	c := cin
	for i := 0; i < d.stages; i++ {
		w += c * wPerCap / (1 + circuit.BetaP)
		c *= effort
	}
	return w
}

func (d *dataDrivers) Leakage(op device.OperatingPoint) circuit.Leakage {
	nl := &circuit.Netlist{Name: "data-drivers"}
	nl.AddChild(circuit.Inverter("dchain", d.chainWidth(op), 0.5), float64(d.bits))
	return nl.LeakagePower(d.t, op)
}

func (d *dataDrivers) Delay(op device.OperatingPoint) float64 {
	t := d.t
	cin := d.cin(op)
	cl := d.cload(op)
	f := cl / cin
	if f < 1 {
		f = 1
	}
	effort := pow(f, 1/float64(d.stages))
	dChain := float64(d.stages) * (effort + 1) * t.Tau(op)
	w := d.wire(op)
	dWire := 0.38*w.R(t)*w.C(t) + 0.69*w.R(t)*d.p.ExternalLoadF
	return dChain + dWire
}

func (d *dataDrivers) DynamicEnergy(op device.OperatingPoint) float64 {
	return float64(d.bits) * d.p.ActivityFactor *
		circuit.SwitchingEnergy(d.t, d.cload(op), 1)
}

// pow clamps non-positive bases to zero before exponentiating; chain efforts
// are always positive so this only guards degenerate inputs.
func pow(x, y float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, y)
}
