package components

import (
	"math"
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/device"
	"repro/internal/units"
)

func tech() *device.Technology { return device.Default65nm() }

func newL1(t *testing.T, size int) *Cache {
	t.Helper()
	c, err := New(tech(), cachecfg.L1(size))
	if err != nil {
		t.Fatalf("New L1(%d): %v", size, err)
	}
	return c
}

func newL2(t *testing.T, size int) *Cache {
	t.Helper()
	c, err := New(tech(), cachecfg.L2(size))
	if err != nil {
		t.Fatalf("New L2(%d): %v", size, err)
	}
	return c
}

func TestNewRejectsInvalidConfig(t *testing.T) {
	if _, err := New(tech(), cachecfg.Config{SizeBytes: 100}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPartNames(t *testing.T) {
	want := []string{"cell-array", "decoder", "addr-drivers", "data-drivers"}
	for i, p := range Parts() {
		if p.String() != want[i] {
			t.Errorf("part %d = %q, want %q", i, p.String(), want[i])
		}
	}
	if PartID(99).String() != "part(99)" {
		t.Error("out-of-range PartID should degrade gracefully")
	}
}

func TestAssignmentConstructors(t *testing.T) {
	op1 := device.OP(0.3, 12)
	op2 := device.OP(0.45, 14)
	u := Uniform(op1)
	for _, p := range Parts() {
		if u[p] != op1 {
			t.Errorf("Uniform: part %v = %v", p, u[p])
		}
	}
	s := Split(op2, op1)
	if s[PartCellArray] != op2 {
		t.Error("Split: cell array pair wrong")
	}
	for _, p := range []PartID{PartDecoder, PartAddrDrivers, PartDataDrivers} {
		if s[p] != op1 {
			t.Errorf("Split: periphery part %v = %v", p, s[p])
		}
	}
	if s.String() == "" {
		t.Error("Assignment.String empty")
	}
}

func TestCellArrayDominatesLeakage(t *testing.T) {
	// The paper: "the leakiest component ... is the core cell array".
	c := newL1(t, 16*cachecfg.KB)
	op := device.OP(0.25, 11)
	arrL := c.Part(PartCellArray).Leakage(op).Total()
	for _, p := range []PartID{PartDecoder, PartAddrDrivers, PartDataDrivers} {
		if l := c.Part(p).Leakage(op).Total(); l >= arrL {
			t.Errorf("%v leakage %v >= cell array %v", p, l, arrL)
		}
	}
}

func TestLeakageMagnitude16KB(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	// Fast corner: Figure 1's y-axis spans ~0-60 mW for a 16KB cache.
	fast := c.Leakage(Uniform(device.OP(0.20, 10))).Total()
	if fast < units.FromMW(5) || fast > units.FromMW(120) {
		t.Errorf("fast-corner 16KB leakage = %v mW, want 5..120", units.ToMW(fast))
	}
	slow := c.Leakage(Uniform(device.OP(0.50, 14))).Total()
	if slow >= fast/20 {
		t.Errorf("slow corner %v mW not << fast %v mW", units.ToMW(slow), units.ToMW(fast))
	}
}

func TestAccessTimeMagnitude16KB(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	fast := c.AccessTime(Uniform(device.OP(0.20, 10)))
	slow := c.AccessTime(Uniform(device.OP(0.50, 14)))
	// Figure 1 spans roughly 800-2200 ps; our analytic substrate should land
	// in the same regime (a few hundred ps to a few ns) with slow/fast ~ 2-4x.
	if fast < 200*units.Picosecond || fast > 1500*units.Picosecond {
		t.Errorf("fast access = %v ps, want 200..1500", units.ToPS(fast))
	}
	ratio := slow / fast
	if ratio < 1.8 || ratio > 6 {
		t.Errorf("slow/fast access ratio = %v, want 1.8..6", ratio)
	}
}

func TestAccessTimeIsSumOfParts(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	a := Uniform(device.OP(0.3, 12))
	var sum float64
	for i, p := range Parts() {
		sum += c.Part(p).Delay(a[i])
	}
	if !units.ApproxEqual(c.AccessTime(a), sum, 1e-12, 0) {
		t.Error("AccessTime must equal the sum of component delays")
	}
}

func TestLeakageIsSumOfParts(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	a := Uniform(device.OP(0.3, 12))
	var sum float64
	for i, p := range Parts() {
		sum += c.Part(p).Leakage(a[i]).Total()
	}
	if !units.ApproxEqual(c.Leakage(a).Total(), sum, 1e-12, 0) {
		t.Error("Leakage must equal the sum of component leakages")
	}
}

func TestMixedAssignmentDecomposes(t *testing.T) {
	// Setting the array conservative while keeping periphery fast must cut
	// leakage a lot while costing only the array's delay delta.
	c := newL1(t, 16*cachecfg.KB)
	fast := device.OP(0.20, 10)
	cons := device.OP(0.45, 13)
	uni := Uniform(fast)
	split := Split(cons, fast)

	lUni := c.Leakage(uni).Total()
	lSplit := c.Leakage(split).Total()
	if lSplit >= lUni/2 {
		t.Errorf("conservative array should at least halve leakage: %v vs %v", lSplit, lUni)
	}
	dUni := c.AccessTime(uni)
	dSplit := c.AccessTime(split)
	if dSplit <= dUni {
		t.Error("conservative array must slow the cache")
	}
}

func TestEachComponentMonotoneInVth(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	vths := units.GridSteps(0.20, 0.50, 0.05)
	for _, p := range Parts() {
		part := c.Part(p)
		prevLeak := math.Inf(1)
		prevDelay := 0.0
		for _, v := range vths {
			op := device.OP(v, 12)
			l := part.Leakage(op).Total()
			d := part.Delay(op)
			if l >= prevLeak {
				t.Errorf("%v: leakage not decreasing in Vth at %v", p, v)
			}
			if d <= prevDelay {
				t.Errorf("%v: delay not increasing in Vth at %v", p, v)
			}
			prevLeak, prevDelay = l, d
		}
	}
}

func TestEachComponentMonotoneInTox(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	toxs := units.GridSteps(10, 14, 0.5)
	for _, p := range Parts() {
		part := c.Part(p)
		prevLeak := math.Inf(1)
		prevDelay := 0.0
		for _, x := range toxs {
			op := device.OP(0.30, x)
			l := part.Leakage(op).Total()
			d := part.Delay(op)
			if l >= prevLeak {
				t.Errorf("%v: leakage not decreasing in Tox at %vA", p, x)
			}
			if d <= prevDelay {
				t.Errorf("%v: delay not increasing in Tox at %vA", p, x)
			}
			prevLeak, prevDelay = l, d
		}
	}
}

func TestL2BiggerSlowerLeakier(t *testing.T) {
	op := Uniform(device.OP(0.3, 12))
	sizes := cachecfg.L2Sizes()
	var prevLeak, prevTime float64
	for _, s := range sizes {
		c := newL2(t, s)
		l := c.Leakage(op).Total()
		d := c.AccessTime(op)
		if l <= prevLeak {
			t.Errorf("L2 %d: leakage %v not increasing with size", s, l)
		}
		if d <= prevTime {
			t.Errorf("L2 %d: access time %v not increasing with size", s, d)
		}
		prevLeak, prevTime = l, d
	}
}

func TestL2AccessTimeMagnitude(t *testing.T) {
	c := newL2(t, 512*cachecfg.KB)
	fast := c.AccessTime(Uniform(device.OP(0.20, 10)))
	// An L2 should be several times slower than an L1 but still nanoseconds.
	if fast < 400*units.Picosecond || fast > 5*units.Nanosecond {
		t.Errorf("512KB L2 fast access = %v ps", units.ToPS(fast))
	}
}

func TestDynamicEnergyMagnitude(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	e := c.DynamicEnergy(Uniform(device.OP(0.25, 11)))
	// L1 read at 65nm: a few to a few tens of pJ.
	if e < units.FromPJ(1) || e > units.FromPJ(200) {
		t.Errorf("L1 dynamic energy = %v pJ, want 1..200", units.ToPJ(e))
	}
	l2 := newL2(t, 512*cachecfg.KB)
	e2 := l2.DynamicEnergy(Uniform(device.OP(0.25, 11)))
	if e2 <= e {
		t.Errorf("L2 access energy %v should exceed L1 %v", units.ToPJ(e2), units.ToPJ(e))
	}
}

func TestAreaGrowsWithTox(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	thin := c.AreaM2(Uniform(device.OP(0.3, 10)))
	thick := c.AreaM2(Uniform(device.OP(0.3, 14)))
	s := tech().ScaleFactor(device.OP(0.3, 14))
	if !units.ApproxEqual(thick/thin, s*s, 1e-9, 0) {
		t.Errorf("area ratio = %v, want %v", thick/thin, s*s)
	}
}

func TestGateLeakCollapsesWithThickOxide(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	thin := c.Leakage(Uniform(device.OP(0.35, 10)))
	thick := c.Leakage(Uniform(device.OP(0.35, 14)))
	if thick.GateW >= thin.GateW/10 {
		t.Errorf("gate leakage should fall >10x from 10A to 14A: %v -> %v", thin.GateW, thick.GateW)
	}
	// Subthreshold is Tox-insensitive by construction (W/L scale together).
	if !units.ApproxEqual(thick.SubthresholdW, thin.SubthresholdW, 0.05, 0) {
		t.Errorf("subthreshold should be ~Tox-invariant: %v vs %v", thin.SubthresholdW, thick.SubthresholdW)
	}
}

func TestDelayNearLinearInTox(t *testing.T) {
	// Section 3: "the delay of the array is shown to be linear with Tox".
	// Check a linear fit over the Tox slice explains almost all variance.
	c := newL1(t, 16*cachecfg.KB)
	toxs := units.GridSteps(10, 14, 0.25)
	var xs, ys []float64
	for _, x := range toxs {
		xs = append(xs, x)
		ys = append(ys, units.ToPS(c.AccessTime(Uniform(device.OP(0.30, x)))))
	}
	r2 := linearR2(xs, ys)
	if r2 < 0.98 {
		t.Errorf("delay vs Tox linear fit R^2 = %v, want >= 0.98", r2)
	}
}

// linearR2 computes the R^2 of an ordinary least squares line fit.
func linearR2(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	b := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	a := (sy - b*sx) / n
	var ssRes, ssTot float64
	mean := sy / n
	for i := range xs {
		pred := a + b*xs[i]
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - mean) * (ys[i] - mean)
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}
