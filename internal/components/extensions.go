package components

import (
	"fmt"

	"repro/internal/circuit"
	"repro/internal/device"
	"repro/internal/sram"
)

// This file holds extensions beyond the paper's core experiments: the
// drowsy-cell dynamic leakage state (from the paper's related work) and an
// alternative delay-composition model used as an ablation of the paper's
// delay-summation assumption.

// LeakageWithDrowsy returns the cache's leakage when only awakeFraction of
// the cell array is at full supply and the rest sits in the drowsy
// retention state. Periphery, sense amps and drivers are unaffected (they
// must answer instantly). This composes with the paper's static knobs: a
// drowsy cell still benefits from high Vth and thick Tox.
func (c *Cache) LeakageWithDrowsy(a Assignment, awakeFraction float64) (circuit.Leakage, error) {
	if awakeFraction < 0 || awakeFraction > 1 {
		return circuit.Leakage{}, fmt.Errorf("components: awake fraction %v outside [0,1]", awakeFraction)
	}
	var total circuit.Leakage
	for i, part := range c.parts {
		if PartID(i) != PartCellArray {
			total.Add(part.Leakage(a[i]), 1)
			continue
		}
		ca, ok := part.(*cellArray)
		if !ok {
			return circuit.Leakage{}, fmt.Errorf("components: cell array part has unexpected type %T", part)
		}
		total.Add(ca.leakageDrowsy(a[i], awakeFraction), 1)
	}
	return total, nil
}

// leakageDrowsy splits the cell population between awake and drowsy states;
// all other array structures (sense amps, precharge, wordline drivers)
// remain fully on.
func (ca *cellArray) leakageDrowsy(op device.OperatingPoint, awakeFraction float64) circuit.Leakage {
	nl := &circuit.Netlist{Name: "cell-array-drowsy"}
	cells := float64(ca.arr.TotalCells())
	nl.AddChild(ca.cell.Netlist(), cells*awakeFraction)
	nl.AddChild(ca.cell.DrowsyNetlist(), cells*(1-awakeFraction))
	nl.AddChild(sram.SenseAmp(ca.t), float64(ca.arr.SenseAmps()))
	nl.AddChild(sram.Precharge(ca.t), float64(ca.arr.Cols*ca.arr.NSub))
	nl.AddChild(circuit.Inverter("wldrv", ca.chainWidth(op), 1), float64(ca.arr.Rows*ca.arr.NSub))
	return nl.LeakagePower(ca.t, op)
}

// AccessTimeOverlapped returns the access time under an optimistic
// composition in which the address-bus flight overlaps the row decode
// (address bits stream into per-subarray predecoders as they arrive), so
// only the slower of the two gates the wordline. The paper assumes the
// plain sum; comparing the two quantifies how conservative that assumption
// is (see the delay-composition ablation experiment).
func (c *Cache) AccessTimeOverlapped(a Assignment) float64 {
	addr := c.parts[PartAddrDrivers].Delay(a[PartAddrDrivers])
	dec := c.parts[PartDecoder].Delay(a[PartDecoder])
	arr := c.parts[PartCellArray].Delay(a[PartCellArray])
	data := c.parts[PartDataDrivers].Delay(a[PartDataDrivers])
	front := addr
	if dec > front {
		front = dec
	}
	return front + arr + data
}
