package components

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/device"
	"repro/internal/units"
)

func TestDrowsyLeakageBounds(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	a := Uniform(device.OP(0.25, 11))
	full := c.Leakage(a).Total()

	awake, err := c.LeakageWithDrowsy(a, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if !units.ApproxEqual(awake.Total(), full, 1e-9, 0) {
		t.Errorf("awake=1 drowsy leakage %v != plain leakage %v", awake.Total(), full)
	}

	drowsy, err := c.LeakageWithDrowsy(a, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if drowsy.Total() >= full {
		t.Errorf("drowsy leakage %v should be below full %v", drowsy.Total(), full)
	}
	// With 90% of cells drowsy, the cell-array subthreshold should collapse
	// substantially (>2x overall for a cell-dominated cache).
	if full/drowsy.Total() < 1.5 {
		t.Errorf("drowsy saving only %vx", full/drowsy.Total())
	}
}

func TestDrowsyMonotoneInAwakeFraction(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	a := Uniform(device.OP(0.25, 11))
	prev := -1.0
	for _, awake := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		l, err := c.LeakageWithDrowsy(a, awake)
		if err != nil {
			t.Fatal(err)
		}
		if l.Total() <= prev {
			t.Errorf("leakage not increasing with awake fraction at %v", awake)
		}
		prev = l.Total()
	}
}

func TestDrowsyRejectsBadFraction(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	a := Uniform(device.OP(0.25, 11))
	for _, bad := range []float64{-0.1, 1.1} {
		if _, err := c.LeakageWithDrowsy(a, bad); err == nil {
			t.Errorf("awake fraction %v accepted", bad)
		}
	}
}

func TestOverlappedNeverSlower(t *testing.T) {
	c := newL1(t, 16*cachecfg.KB)
	for _, op := range []device.OperatingPoint{
		device.OP(0.20, 10), device.OP(0.35, 12), device.OP(0.50, 14),
	} {
		a := Uniform(op)
		sum := c.AccessTime(a)
		over := c.AccessTimeOverlapped(a)
		if over > sum {
			t.Errorf("%v: overlapped %v exceeds sum %v", op, over, sum)
		}
		// The overlap can save at most the smaller of addr/decoder delays.
		addr := c.Part(PartAddrDrivers).Delay(op)
		dec := c.Part(PartDecoder).Delay(op)
		saving := sum - over
		maxSave := addr
		if dec < maxSave {
			maxSave = dec
		}
		if saving > maxSave*(1+1e-9) {
			t.Errorf("%v: saving %v exceeds the overlap bound %v", op, saving, maxSave)
		}
	}
}
