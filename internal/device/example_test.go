package device_test

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/units"
)

// The two knobs the paper optimizes: raising Vth collapses subthreshold
// leakage; thickening Tox collapses gate tunnelling. Both slow the device.
func ExampleTechnology_OffCurrent() {
	tech := device.Default65nm()
	w := units.Micrometre
	for _, op := range []device.OperatingPoint{
		device.OP(0.20, 10),
		device.OP(0.50, 10),
	} {
		ioff := tech.OffCurrent(device.NMOS, w, op)
		ig := tech.GateLeakCurrent(device.NMOS, w, op, tech.Vdd)
		fmt.Printf("%v: Ioff=%s Igate=%s\n", op,
			units.FormatSI(ioff, "A/um"), units.FormatSI(ig, "A/um"))
	}
	// Output:
	// (Vth=0.20V, Tox=10.0A): Ioff=300nA/um Igate=158nA/um
	// (Vth=0.50V, Tox=10.0A): Ioff=223pA/um Igate=158nA/um
}

func ExampleTechnology_ScaleFactor() {
	tech := device.Default65nm()
	fmt.Printf("cell linear growth at 14A: %.2fx\n", tech.ScaleFactor(device.OP(0.3, 14)))
	// Output:
	// cell linear growth at 14A: 1.10x
}
