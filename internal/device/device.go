// Package device models nanometer-scale MOS transistors in the style of the
// Berkeley Predictive Technology Model (BPTM) for a 65 nm node, as used by
// Bai et al. (DATE 2005).
//
// The model exposes the two process knobs the paper studies:
//
//   - Vth, the threshold voltage (0.2 V – 0.5 V), which controls
//     subthreshold leakage exponentially and drive current polynomially; and
//   - Tox, the gate-oxide thickness (10 Å – 14 Å), which controls gate
//     tunnelling leakage exponentially and oxide capacitance inversely.
//
// Following Section 2 of the paper, increasing Tox at constant drawn channel
// length would surrender gate control of the channel (DIBL), so the drawn
// channel length — and, for memory cells, the transistor widths — scale
// proportionally with Tox. The cell therefore grows in both dimensions and
// the area impact is taken into account by callers via ScaleFactor.
package device

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

const (
	// NMOS is an n-channel transistor.
	NMOS MOSType = iota
	// PMOS is a p-channel transistor.
	PMOS
)

// String returns "NMOS" or "PMOS".
func (t MOSType) String() string {
	if t == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// OperatingPoint is one (Vth, Tox) assignment — the decision variable of all
// the paper's optimization problems. Vth is in volts; Tox in metres.
type OperatingPoint struct {
	Vth  float64 // threshold voltage magnitude, V
	ToxM float64 // physical gate-oxide thickness, m
}

// ToxAngstrom returns Tox in angstroms, the unit used throughout the paper.
func (op OperatingPoint) ToxAngstrom() float64 { return units.ToAngstrom(op.ToxM) }

// String formats the point the way the paper quotes values, e.g.
// "(Vth=0.30V, Tox=12.0A)".
func (op OperatingPoint) String() string {
	return fmt.Sprintf("(Vth=%.2fV, Tox=%.1fA)", op.Vth, op.ToxAngstrom())
}

// OP is shorthand for constructing an OperatingPoint from volts and angstroms.
func OP(vth, toxAngstrom float64) OperatingPoint {
	return OperatingPoint{Vth: vth, ToxM: units.FromAngstrom(toxAngstrom)}
}

// Technology holds the calibrated constants of a process node. All lengths
// are metres, voltages volts, currents amperes, temperatures kelvin.
type Technology struct {
	Name string

	Vdd   float64 // supply voltage
	TempK float64 // operating temperature (leakage is evaluated hot)

	// Geometry at the thin-oxide reference point.
	LMin    float64 // drawn channel length at ToxMin
	WMin    float64 // minimum transistor width
	ToxMin  float64 // thinnest legal oxide
	ToxMax  float64 // thickest legal oxide
	VthMin  float64 // lowest legal threshold
	VthMax  float64 // highest legal threshold
	PolyDep float64 // electrical-Tox correction (poly depletion + darkspace)

	// Subthreshold conduction.
	SwingN  float64 // subthreshold swing ideality factor n
	DIBL    float64 // drain-induced barrier lowering, V/V
	IoffRef float64 // NMOS off current per metre width at (VthRef, ToxMin), A/m
	VthRef  float64 // reference threshold for IoffRef
	PNRatio float64 // PMOS/NMOS subthreshold and drive ratio (mobility)

	// Gate tunnelling.
	GateJ0      float64 // NMOS gate current density at ToxMin and Vox=Vdd, A/m^2
	GateDecade  float64 // Tox increase per decade of gate-leakage reduction, m
	GatePHole   float64 // PMOS gate leakage relative to NMOS (hole tunnelling)
	OverlapFrac float64 // off-state edge (overlap) tunnelling, fraction of on-state area leakage

	// Drive current (alpha-power law).
	Alpha float64 // velocity-saturation exponent
	KDrv  float64 // drive prefactor, m/s-like units folded into calibration

	// GeomGamma is the fraction of the relative Tox increase that the drawn
	// channel length (and cell widths) must track to preserve electrostatic
	// control: L = LMin * (1 + GeomGamma*(Tox/ToxMin - 1)). The paper
	// requires lengths to grow with Tox; halide-spacer and retrograde-well
	// tricks keep the required growth below proportional, and a value of
	// 0.25 reproduces the paper's observation that delay is only weakly
	// (linearly) dependent on Tox while area still pays a visible penalty.
	GeomGamma float64

	// Interconnect (per metre of wire).
	WireRPerM float64 // ohm/m
	WireCPerM float64 // F/m

	// Derived, cached by calibrate().
	i0 float64 // subthreshold prefactor (A, per square W/L)
}

// Default65nm returns the technology used for every experiment in this
// repository: a 65 nm high-performance node with BPTM-like leakage behaviour.
// Calibration targets: NMOS Ioff ~ 300 nA/um at Vth=0.2 V (hot), gate leakage
// ~ 450 A/cm^2 at Tox=10 A falling one decade per 2.2 A, Ion ~ 600 uA/um at
// Vth=0.2 V.
func Default65nm() *Technology {
	t := &Technology{
		Name:    "bptm65",
		Vdd:     1.0,
		TempK:   358, // 85 C
		LMin:    35 * units.Nanometre,
		WMin:    80 * units.Nanometre,
		ToxMin:  units.FromAngstrom(10),
		ToxMax:  units.FromAngstrom(14),
		VthMin:  0.20,
		VthMax:  0.50,
		PolyDep: units.FromAngstrom(6),

		SwingN:  1.35,
		DIBL:    0.12,
		IoffRef: 300e-9 / units.Micrometre, // 300 nA/um -> A/m
		VthRef:  0.20,
		PNRatio: 0.5,

		GateJ0:      450e4, // 450 A/cm^2 -> A/m^2
		GateDecade:  units.FromAngstrom(2.2),
		GatePHole:   0.1,
		OverlapFrac: 0.08,

		Alpha:     1.5,
		KDrv:      0, // set by calibrate
		GeomGamma: 0.25,

		WireRPerM: 1.8e5,   // 0.18 ohm/um, mid-level metal
		WireCPerM: 2.0e-10, // 0.20 fF/um
	}
	t.calibrate()
	return t
}

// Scaled45nm projects the technology one node ahead, for the introduction's
// claim that "the fraction of the leakage power [will] exceed that of the
// dynamic power in future processor generations": shorter channels, thinner
// minimum oxide (pre-high-k), roughly 1.5x the subthreshold leakage per
// width, and an order of magnitude more gate tunnelling at the thin corner.
func Scaled45nm() *Technology {
	t := Default65nm()
	t.Name = "proj45"
	t.LMin = 25 * units.Nanometre
	t.WMin = 60 * units.Nanometre
	t.ToxMin = units.FromAngstrom(9)
	t.ToxMax = units.FromAngstrom(13)
	t.IoffRef = 450e-9 / units.Micrometre
	t.GateJ0 = 4500e4 // 10x: SiO2 tunnelling one node on
	t.GateDecade = units.FromAngstrom(2.0)
	t.DIBL = 0.15
	t.calibrate()
	return t
}

// calibrate derives the internal prefactors from the calibration targets.
func (t *Technology) calibrate() {
	// Subthreshold prefactor so that an NMOS of W=1m, L=LMin leaks IoffRef*1m
	// at Vth=VthRef, Vgs=0, Vds=Vdd.
	nvt := t.SwingN * units.ThermalVoltage(t.TempK)
	expo := math.Exp((-t.VthRef + t.DIBL*t.Vdd) / nvt)
	wOverL := 1.0 / t.LMin
	t.i0 = t.IoffRef / (wOverL * expo)

	// Drive prefactor so Ion(Vth=0.2, ToxMin) = 600 uA/um for NMOS.
	const ionTarget = 600e-6 / units.Micrometre // A per metre of width
	cox := units.OxideCapacitancePerArea(t.ToxMin + t.PolyDep)
	vdsat := math.Pow(t.Vdd-0.2, t.Alpha)
	t.KDrv = ionTarget / (wOverL * cox * vdsat)
}

// Validate reports an error when an operating point lies outside the legal
// knob ranges of the technology.
func (t *Technology) Validate(op OperatingPoint) error {
	const eps = 1e-12
	if op.Vth < t.VthMin-eps || op.Vth > t.VthMax+eps {
		return fmt.Errorf("device: Vth %.3f V outside [%.2f, %.2f]", op.Vth, t.VthMin, t.VthMax)
	}
	if op.ToxM < t.ToxMin-eps || op.ToxM > t.ToxMax+eps {
		return fmt.Errorf("device: Tox %.2f A outside [%.1f, %.1f]",
			units.ToAngstrom(op.ToxM), units.ToAngstrom(t.ToxMin), units.ToAngstrom(t.ToxMax))
	}
	return nil
}

// ScaleFactor returns the geometric scaling s mandated by the paper: drawn
// channel length (and memory-cell widths) grow with Tox to preserve
// electrostatic integrity, so linear dimensions scale by s and areas by s^2.
// s = 1 + GeomGamma*(Tox/ToxMin - 1).
func (t *Technology) ScaleFactor(op OperatingPoint) float64 {
	return 1 + t.GeomGamma*(op.ToxM/t.ToxMin-1)
}

// ChannelLength returns the drawn channel length at the operating point.
func (t *Technology) ChannelLength(op OperatingPoint) float64 {
	return t.LMin * t.ScaleFactor(op)
}

// Cox returns the gate-oxide capacitance per unit area (F/m^2) including the
// poly-depletion correction.
func (t *Technology) Cox(op OperatingPoint) float64 {
	return units.OxideCapacitancePerArea(op.ToxM + t.PolyDep)
}

// SubthresholdCurrent returns the drain current (A) of a transistor of the
// given type and width (m) biased off (Vgs = 0) with the given drain-source
// voltage. Width is the width at the reference geometry; both W and L scale
// with Tox, so W/L — and hence the current — is scale-invariant, which is
// exactly why the paper treats Vth as the subthreshold knob.
func (t *Technology) SubthresholdCurrent(kind MOSType, widthM float64, op OperatingPoint, vds float64) float64 {
	nvt := t.SwingN * units.ThermalVoltage(t.TempK)
	wOverL := widthM / t.LMin
	i := t.i0 * wOverL * math.Exp((-op.Vth+t.DIBL*vds)/nvt) * (1 - math.Exp(-vds/units.ThermalVoltage(t.TempK)))
	if kind == PMOS {
		i *= t.PNRatio
	}
	return i
}

// OffCurrent is SubthresholdCurrent at the worst case Vds = Vdd.
func (t *Technology) OffCurrent(kind MOSType, widthM float64, op OperatingPoint) float64 {
	return t.SubthresholdCurrent(kind, widthM, op, t.Vdd)
}

// GateCurrentDensity returns the gate tunnelling current density (A/m^2) at
// the given oxide voltage. The exponential Tox dependence is the second
// leakage mechanism the paper's total-leakage model captures.
func (t *Technology) GateCurrentDensity(kind MOSType, op OperatingPoint, vox float64) float64 {
	if vox <= 0 {
		return 0
	}
	j := t.GateJ0 * math.Pow(10, -(op.ToxM-t.ToxMin)/t.GateDecade)
	j *= (vox / t.Vdd) * (vox / t.Vdd)
	if kind == PMOS {
		j *= t.GatePHole
	}
	return j
}

// GateLeakCurrent returns the gate tunnelling current (A) of a transistor
// whose channel sees the full oxide voltage vox. Gate area is W*L at the
// scaled geometry (both dimensions grow with Tox).
func (t *Technology) GateLeakCurrent(kind MOSType, widthM float64, op OperatingPoint, vox float64) float64 {
	s := t.ScaleFactor(op)
	area := (widthM * s) * t.ChannelLength(op)
	return t.GateCurrentDensity(kind, op, vox) * area
}

// GateOverlapLeak returns the off-state edge-tunnelling current (A) through
// the gate-drain overlap of an off transistor whose drain is at vox.
func (t *Technology) GateOverlapLeak(kind MOSType, widthM float64, op OperatingPoint, vox float64) float64 {
	return t.OverlapFrac * t.GateLeakCurrent(kind, widthM, op, vox)
}

// OnCurrent returns the saturation drive current (A) of a transistor of the
// given width using the alpha-power law. Drive falls as Cox shrinks with
// thicker oxide and as (Vdd-Vth)^alpha shrinks with higher threshold — the
// two delay penalties the optimizer trades against leakage.
func (t *Technology) OnCurrent(kind MOSType, widthM float64, op OperatingPoint) float64 {
	return t.OnCurrentDerated(kind, widthM, op, 0)
}

// OnCurrentDerated is OnCurrent with the gate overdrive reduced by
// vgsDerate volts. SRAM read paths use it: during a read the pass gate's
// source sits at the cell storage node (a few hundred millivolts above
// ground), so its effective overdrive is Vdd - derate - Vth, and cell read
// current degrades with Vth much faster than logic drive does. A small
// overdrive floor keeps the model defined at the highest thresholds.
func (t *Technology) OnCurrentDerated(kind MOSType, widthM float64, op OperatingPoint, vgsDerate float64) float64 {
	const overdriveFloor = 0.05
	ov := t.Vdd - vgsDerate - op.Vth
	if ov < overdriveFloor {
		ov = overdriveFloor
	}
	wOverL := widthM / t.LMin // scale-invariant: W and L grow together
	i := t.KDrv * wOverL * t.Cox(op) * math.Pow(ov, t.Alpha)
	if kind == PMOS {
		i *= t.PNRatio
	}
	return i
}

// CellReadDerate is the gate-overdrive loss of the SRAM read path (storage
// node rise plus bitline regulation).
const CellReadDerate = 0.20

// GateCap returns the input (gate) capacitance (F) of a transistor of the
// given reference width at the operating point: area term plus a fixed
// overlap/fringe allowance of 20%.
func (t *Technology) GateCap(widthM float64, op OperatingPoint) float64 {
	s := t.ScaleFactor(op)
	area := (widthM * s) * t.ChannelLength(op)
	return 1.2 * t.Cox(op) * area
}

// JunctionCap returns the source/drain junction capacitance (F) for a
// transistor of the given reference width. Junction capacitance is dominated
// by width; it scales linearly with s.
func (t *Technology) JunctionCap(widthM float64, op OperatingPoint) float64 {
	const cjPerM = 8e-10 // 0.8 fF/um of width
	return cjPerM * widthM * t.ScaleFactor(op)
}

// DriveResistance returns the effective switching resistance (ohm) of a
// transistor of the given width: R = Vdd / Ion, the effective-current
// approximation. Doubling width halves the resistance, which is what
// driver-chain sizing exploits.
func (t *Technology) DriveResistance(kind MOSType, widthM float64, op OperatingPoint) float64 {
	ion := t.OnCurrent(kind, widthM, op)
	if ion <= 0 {
		return math.Inf(1)
	}
	return t.Vdd / ion
}

// Tau returns the technology time constant at the operating point: the delay
// of a minimum inverter driving an identical inverter (~FO1), including its
// own junction parasitics. All gate delays in the circuit evaluator are
// multiples of Tau via logical effort. At the fast corner this yields an
// FO4 of ~15 ps, in line with published 65 nm data.
func (t *Technology) Tau(op OperatingPoint) float64 {
	cg := t.GateCap(t.WMin, op)
	cj := t.JunctionCap(t.WMin, op)
	r := t.DriveResistance(NMOS, t.WMin, op)
	return r * (cg + cj)
}

// FO4 returns the fanout-of-4 inverter delay, the conventional
// technology-independent delay yardstick (~5 Tau with parasitics).
func (t *Technology) FO4(op OperatingPoint) float64 {
	return 5 * t.Tau(op)
}
