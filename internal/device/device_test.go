package device

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func tech() *Technology { return Default65nm() }

// randOP maps two arbitrary float64s into a legal operating point, for
// property-based tests.
func randOP(t *Technology, a, b float64) OperatingPoint {
	fa := math.Mod(math.Abs(a), 1)
	fb := math.Mod(math.Abs(b), 1)
	if math.IsNaN(fa) {
		fa = 0.5
	}
	if math.IsNaN(fb) {
		fb = 0.5
	}
	return OperatingPoint{
		Vth:  t.VthMin + fa*(t.VthMax-t.VthMin),
		ToxM: t.ToxMin + fb*(t.ToxMax-t.ToxMin),
	}
}

func TestCalibrationTargets(t *testing.T) {
	tech := tech()
	op := OP(0.20, 10)

	// Ioff at the calibration point must match the target 300 nA/um.
	ioff := tech.OffCurrent(NMOS, units.Micrometre, op)
	if !units.ApproxEqual(ioff, 300e-9, 1e-6, 0) {
		t.Errorf("Ioff(0.2V,10A) = %v A/um, want 300e-9", ioff)
	}

	// Ion at the calibration point must match the target 600 uA/um.
	ion := tech.OnCurrent(NMOS, units.Micrometre, op)
	if !units.ApproxEqual(ion, 600e-6, 1e-6, 0) {
		t.Errorf("Ion(0.2V,10A) = %v A/um, want 600e-6", ion)
	}

	// Gate density at ToxMin, full Vdd must be J0.
	j := tech.GateCurrentDensity(NMOS, op, tech.Vdd)
	if !units.ApproxEqual(j, 450e4, 1e-9, 0) {
		t.Errorf("Jg(10A, 1V) = %v A/m^2, want 450e4", j)
	}
}

func TestSubthresholdExponentialInVth(t *testing.T) {
	tech := tech()
	// One decade of Ioff per n*vT*ln(10) of Vth.
	nvt := tech.SwingN * units.ThermalVoltage(tech.TempK)
	decadeVth := nvt * math.Ln10

	i1 := tech.OffCurrent(NMOS, units.Micrometre, OP(0.25, 12))
	i2 := tech.OffCurrent(NMOS, units.Micrometre, OP(0.25+decadeVth, 12))
	ratio := i1 / i2
	if !units.ApproxEqual(ratio, 10, 1e-6, 0) {
		t.Errorf("Ioff decade ratio = %v, want 10 (decade Vth = %v mV)", ratio, decadeVth*1e3)
	}
}

func TestGateLeakDecadePerGateDecade(t *testing.T) {
	tech := tech()
	j1 := tech.GateCurrentDensity(NMOS, OP(0.3, 10), 1.0)
	j2 := tech.GateCurrentDensity(NMOS, OP(0.3, 12.2), 1.0)
	if !units.ApproxEqual(j1/j2, 10, 1e-9, 0) {
		t.Errorf("gate leak decade per 2.2A violated: ratio %v", j1/j2)
	}
}

func TestGateLeakZeroVox(t *testing.T) {
	tech := tech()
	if got := tech.GateLeakCurrent(NMOS, units.Micrometre, OP(0.3, 10), 0); got != 0 {
		t.Errorf("gate leak at Vox=0 = %v, want 0", got)
	}
	if got := tech.GateCurrentDensity(NMOS, OP(0.3, 10), -0.5); got != 0 {
		t.Errorf("gate leak at negative Vox = %v, want 0", got)
	}
}

func TestPMOSRatios(t *testing.T) {
	tech := tech()
	op := OP(0.3, 12)
	w := units.Micrometre
	if r := tech.OffCurrent(PMOS, w, op) / tech.OffCurrent(NMOS, w, op); !units.ApproxEqual(r, tech.PNRatio, 1e-9, 0) {
		t.Errorf("PMOS/NMOS Ioff ratio = %v, want %v", r, tech.PNRatio)
	}
	if r := tech.OnCurrent(PMOS, w, op) / tech.OnCurrent(NMOS, w, op); !units.ApproxEqual(r, tech.PNRatio, 1e-9, 0) {
		t.Errorf("PMOS/NMOS Ion ratio = %v, want %v", r, tech.PNRatio)
	}
	if r := tech.GateLeakCurrent(PMOS, w, op, 1) / tech.GateLeakCurrent(NMOS, w, op, 1); !units.ApproxEqual(r, tech.GatePHole, 1e-9, 0) {
		t.Errorf("PMOS/NMOS gate ratio = %v, want %v", r, tech.GatePHole)
	}
}

func TestLeakageMonotonicityProperties(t *testing.T) {
	tech := tech()
	// Ioff strictly decreasing in Vth at fixed Tox.
	f := func(a, b, c float64) bool {
		p1 := randOP(tech, a, c)
		p2 := randOP(tech, b, c)
		if p1.Vth == p2.Vth {
			return true
		}
		lo, hi := p1, p2
		if lo.Vth > hi.Vth {
			lo, hi = hi, lo
		}
		return tech.OffCurrent(NMOS, tech.WMin, lo) > tech.OffCurrent(NMOS, tech.WMin, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("Ioff not monotone in Vth: %v", err)
	}

	// Gate density strictly decreasing in Tox at fixed Vth.
	g := func(a, b, c float64) bool {
		p1 := randOP(tech, c, a)
		p2 := randOP(tech, c, b)
		if p1.ToxM == p2.ToxM {
			return true
		}
		lo, hi := p1, p2
		if lo.ToxM > hi.ToxM {
			lo, hi = hi, lo
		}
		return tech.GateCurrentDensity(NMOS, lo, 1) > tech.GateCurrentDensity(NMOS, hi, 1)
	}
	if err := quick.Check(g, nil); err != nil {
		t.Errorf("gate leakage not monotone in Tox: %v", err)
	}
}

func TestDriveMonotonicityProperties(t *testing.T) {
	tech := tech()
	// Ion decreasing in Vth.
	f := func(a, b, c float64) bool {
		p1 := randOP(tech, a, c)
		p2 := randOP(tech, b, c)
		if p1.Vth == p2.Vth {
			return true
		}
		lo, hi := p1, p2
		if lo.Vth > hi.Vth {
			lo, hi = hi, lo
		}
		return tech.OnCurrent(NMOS, tech.WMin, lo) > tech.OnCurrent(NMOS, tech.WMin, hi)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("Ion not monotone decreasing in Vth: %v", err)
	}
	// Tau increasing in both knobs.
	g := func(a, b float64) bool {
		p := randOP(tech, a, b)
		base := OP(tech.VthMin, units.ToAngstrom(tech.ToxMin))
		return tech.Tau(p) >= tech.Tau(base)*0.999999
	}
	if err := quick.Check(g, nil); err != nil {
		t.Errorf("Tau not minimized at fast corner: %v", err)
	}
}

func TestTauIncreasesWithEachKnob(t *testing.T) {
	tech := tech()
	vths := units.GridSteps(tech.VthMin, tech.VthMax, 0.05)
	for i := 1; i < len(vths); i++ {
		if tech.Tau(OP(vths[i], 12)) <= tech.Tau(OP(vths[i-1], 12)) {
			t.Errorf("Tau not increasing in Vth at %v", vths[i])
		}
	}
	toxs := units.GridSteps(10, 14, 0.5)
	for i := 1; i < len(toxs); i++ {
		if tech.Tau(OP(0.3, toxs[i])) <= tech.Tau(OP(0.3, toxs[i-1])) {
			t.Errorf("Tau not increasing in Tox at %vA", toxs[i])
		}
	}
}

func TestScaleFactor(t *testing.T) {
	tech := tech()
	if s := tech.ScaleFactor(OP(0.3, 10)); !units.ApproxEqual(s, 1.0, 1e-9, 0) {
		t.Errorf("scale at ToxMin = %v, want 1", s)
	}
	want := 1 + tech.GeomGamma*(14.0/10.0-1)
	if s := tech.ScaleFactor(OP(0.3, 14)); !units.ApproxEqual(s, want, 1e-9, 0) {
		t.Errorf("scale at 14A = %v, want %v", s, want)
	}
	// Scaling must be strictly increasing in Tox and exceed 1 above ToxMin.
	if tech.ScaleFactor(OP(0.3, 12)) <= 1 || tech.ScaleFactor(OP(0.3, 14)) <= tech.ScaleFactor(OP(0.3, 12)) {
		t.Error("scale factor must grow with Tox")
	}
	// Channel length and cell area follow the scale rule.
	l10 := tech.ChannelLength(OP(0.3, 10))
	l14 := tech.ChannelLength(OP(0.3, 14))
	if !units.ApproxEqual(l14/l10, want, 1e-9, 0) {
		t.Errorf("L(14)/L(10) = %v, want %v", l14/l10, want)
	}
}

func TestValidate(t *testing.T) {
	tech := tech()
	if err := tech.Validate(OP(0.3, 12)); err != nil {
		t.Errorf("legal point rejected: %v", err)
	}
	if err := tech.Validate(OP(0.1, 12)); err == nil {
		t.Error("Vth below range accepted")
	}
	if err := tech.Validate(OP(0.3, 15)); err == nil {
		t.Error("Tox above range accepted")
	}
	// Boundary points are legal.
	if err := tech.Validate(OP(tech.VthMin, 10)); err != nil {
		t.Errorf("lower boundary rejected: %v", err)
	}
	if err := tech.Validate(OP(tech.VthMax, 14)); err != nil {
		t.Errorf("upper boundary rejected: %v", err)
	}
}

func TestSubthresholdVdsDependence(t *testing.T) {
	tech := tech()
	op := OP(0.3, 12)
	// Vds=0 -> no current; increasing Vds increases current (DIBL + drain term).
	if i := tech.SubthresholdCurrent(NMOS, tech.WMin, op, 0); i != 0 {
		t.Errorf("Isub(Vds=0) = %v, want 0", i)
	}
	half := tech.SubthresholdCurrent(NMOS, tech.WMin, op, 0.5)
	full := tech.SubthresholdCurrent(NMOS, tech.WMin, op, 1.0)
	if half <= 0 || full <= half {
		t.Errorf("Isub not increasing with Vds: half=%v full=%v", half, full)
	}
}

func TestFO4Magnitude(t *testing.T) {
	tech := tech()
	// A 65nm-class FO4 at the fast corner should be tens of picoseconds.
	fo4 := tech.FO4(OP(0.20, 10))
	if fo4 < 5*units.Picosecond || fo4 > 80*units.Picosecond {
		t.Errorf("FO4 at fast corner = %v ps, want 5..80 ps", units.ToPS(fo4))
	}
	// The slow corner should be meaningfully slower but within ~5x.
	slow := tech.FO4(OP(0.50, 14))
	if slow <= fo4 || slow > 10*fo4 {
		t.Errorf("FO4 slow/fast = %v, want in (1, 10]", slow/fo4)
	}
}

func TestLeakageMagnitudes(t *testing.T) {
	tech := tech()
	// At the fast corner a 1um device leaks hundreds of nA subthreshold and
	// tens of nA gate; at the slow corner both must collapse by >10x.
	fast := OP(0.20, 10)
	slow := OP(0.50, 14)
	isubFast := tech.OffCurrent(NMOS, units.Micrometre, fast)
	isubSlow := tech.OffCurrent(NMOS, units.Micrometre, slow)
	if isubFast/isubSlow < 100 {
		t.Errorf("subthreshold dynamic range %v, want >= 100", isubFast/isubSlow)
	}
	igFast := tech.GateLeakCurrent(NMOS, units.Micrometre, fast, tech.Vdd)
	igSlow := tech.GateLeakCurrent(NMOS, units.Micrometre, slow, tech.Vdd)
	if igFast/igSlow < 10 {
		t.Errorf("gate-leak dynamic range %v, want >= 10", igFast/igSlow)
	}
	// Both mechanisms are the same order of magnitude at the fast corner —
	// the premise of the paper ("gate leakage can surpass subthreshold").
	if r := igFast / isubFast; r < 0.01 || r > 10 {
		t.Errorf("gate/subthreshold at fast corner = %v, want within [0.01,10]", r)
	}
}

func TestMOSTypeString(t *testing.T) {
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Error("MOSType.String broken")
	}
}

func TestOperatingPointString(t *testing.T) {
	got := OP(0.3, 12).String()
	want := "(Vth=0.30V, Tox=12.0A)"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestDriveResistanceFinite(t *testing.T) {
	tech := tech()
	r := tech.DriveResistance(NMOS, tech.WMin, OP(0.3, 12))
	if math.IsInf(r, 0) || r <= 0 {
		t.Errorf("drive resistance = %v", r)
	}
	// Wider device -> proportionally lower resistance.
	r2 := tech.DriveResistance(NMOS, 2*tech.WMin, OP(0.3, 12))
	if !units.ApproxEqual(r/r2, 2, 1e-9, 0) {
		t.Errorf("R(W)/R(2W) = %v, want 2", r/r2)
	}
}

func TestScaled45nmProjection(t *testing.T) {
	t65 := Default65nm()
	t45 := Scaled45nm()
	if t45.Name == t65.Name {
		t.Error("projected node must be distinguishable")
	}
	// Shorter channels, thinner minimum oxide.
	if t45.LMin >= t65.LMin || t45.ToxMin >= t65.ToxMin {
		t.Error("45nm projection must shrink geometry")
	}
	// More subthreshold leakage per width at the same Vth, and much more
	// gate tunnelling at each node's own thin corner.
	op65 := OperatingPoint{Vth: 0.25, ToxM: t65.ToxMin}
	op45 := OperatingPoint{Vth: 0.25, ToxM: t45.ToxMin}
	if t45.OffCurrent(NMOS, units.Micrometre, op45) <= t65.OffCurrent(NMOS, units.Micrometre, op65) {
		t.Error("projected node should leak more subthreshold")
	}
	if t45.GateCurrentDensity(NMOS, op45, 1) <= t65.GateCurrentDensity(NMOS, op65, 1) {
		t.Error("projected node should tunnel more")
	}
	// Both nodes remain self-consistently calibrated.
	if err := t45.Validate(op45); err != nil {
		t.Errorf("projection rejects its own corner: %v", err)
	}
}

func TestOnCurrentDerated(t *testing.T) {
	tech := tech()
	op := OP(0.30, 12)
	full := tech.OnCurrent(NMOS, tech.WMin, op)
	derated := tech.OnCurrentDerated(NMOS, tech.WMin, op, CellReadDerate)
	if derated >= full {
		t.Error("derated drive must be below full drive")
	}
	// The derate bites harder at high Vth (the cell-read effect).
	hi := OP(0.50, 12)
	ratioLow := tech.OnCurrentDerated(NMOS, tech.WMin, op, CellReadDerate) / tech.OnCurrent(NMOS, tech.WMin, op)
	ratioHigh := tech.OnCurrentDerated(NMOS, tech.WMin, hi, CellReadDerate) / tech.OnCurrent(NMOS, tech.WMin, hi)
	if ratioHigh >= ratioLow {
		t.Errorf("derate should bite harder at high Vth: %v vs %v", ratioHigh, ratioLow)
	}
	// Overdrive floor keeps the current positive even past cutoff.
	if tech.OnCurrentDerated(NMOS, tech.WMin, OP(0.50, 12), 0.6) <= 0 {
		t.Error("overdrive floor violated")
	}
}
