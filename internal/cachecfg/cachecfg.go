// Package cachecfg defines cache organization parameters (size, block size,
// associativity) with validation, address-field arithmetic, and the
// canonical L1/L2 design spaces explored in the paper's evaluation.
package cachecfg

import (
	"fmt"
)

// AddressBits is the physical address width assumed throughout (the paper's
// era targets 32-bit machines).
const AddressBits = 32

// Config describes one cache organization.
type Config struct {
	Name       string
	SizeBytes  int // total data capacity
	BlockBytes int // line size
	Assoc      int // ways; must divide SizeBytes/BlockBytes
	OutputBits int // width of the data port (bits delivered per access)
}

// KB is a convenience multiplier.
const KB = 1024

// MB is a convenience multiplier.
const MB = 1024 * KB

// Validate reports an error for inconsistent organizations.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.BlockBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cachecfg: non-positive parameter in %+v", c)
	}
	if !isPow2(c.SizeBytes) || !isPow2(c.BlockBytes) || !isPow2(c.Assoc) {
		return fmt.Errorf("cachecfg: size, block and associativity must be powers of two: %+v", c)
	}
	if c.BlockBytes > c.SizeBytes {
		return fmt.Errorf("cachecfg: block (%d) exceeds size (%d)", c.BlockBytes, c.SizeBytes)
	}
	if c.Lines()%c.Assoc != 0 || c.Sets() == 0 {
		return fmt.Errorf("cachecfg: associativity %d does not divide %d lines", c.Assoc, c.Lines())
	}
	if c.OutputBits <= 0 {
		return fmt.Errorf("cachecfg: OutputBits must be positive, got %d", c.OutputBits)
	}
	return nil
}

// Lines returns the number of cache lines.
func (c Config) Lines() int { return c.SizeBytes / c.BlockBytes }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

// OffsetBits returns the number of block-offset address bits.
func (c Config) OffsetBits() int { return log2(c.BlockBytes) }

// IndexBits returns the number of set-index address bits.
func (c Config) IndexBits() int { return log2(c.Sets()) }

// TagBits returns the number of tag bits per line.
func (c Config) TagBits() int { return AddressBits - c.IndexBits() - c.OffsetBits() }

// DataBits returns the total number of data bits stored.
func (c Config) DataBits() int { return c.SizeBytes * 8 }

// TagArrayBits returns the total number of tag bits stored (tag + valid +
// dirty + replacement state, approximated as tag+3 per line).
func (c Config) TagArrayBits() int { return c.Lines() * (c.TagBits() + 3) }

// String renders e.g. "16KB/32B/4-way".
func (c Config) String() string {
	size := fmt.Sprintf("%dB", c.SizeBytes)
	switch {
	case c.SizeBytes >= MB && c.SizeBytes%MB == 0:
		size = fmt.Sprintf("%dMB", c.SizeBytes/MB)
	case c.SizeBytes >= KB && c.SizeBytes%KB == 0:
		size = fmt.Sprintf("%dKB", c.SizeBytes/KB)
	}
	return fmt.Sprintf("%s/%dB/%d-way", size, c.BlockBytes, c.Assoc)
}

// L1 returns the canonical L1 organization of the given size: 32 B blocks,
// 4-way (capped by the line count), 64-bit output.
func L1(sizeBytes int) Config {
	return Config{
		Name:       "L1",
		SizeBytes:  sizeBytes,
		BlockBytes: 32,
		Assoc:      min(4, sizeBytes/32),
		OutputBits: 64,
	}
}

// L2 returns the canonical L2 organization of the given size: 64 B blocks,
// 8-way, 256-bit output (one L1 block per two beats).
func L2(sizeBytes int) Config {
	return Config{
		Name:       "L2",
		SizeBytes:  sizeBytes,
		BlockBytes: 64,
		Assoc:      min(8, sizeBytes/64),
		OutputBits: 256,
	}
}

// L1Sizes is the paper's L1 design space (Section 5: "L1 caches ranging
// from 4K to 64K").
func L1Sizes() []int {
	return []int{4 * KB, 8 * KB, 16 * KB, 32 * KB, 64 * KB}
}

// L2Sizes is the L2 design space swept in Section 5.
func L2Sizes() []int {
	return []int{256 * KB, 512 * KB, 1 * MB, 2 * MB, 4 * MB}
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
