package cachecfg

import (
	"testing"
	"testing/quick"
)

func TestValidateAccepts(t *testing.T) {
	for _, size := range append(L1Sizes(), L2Sizes()...) {
		for _, c := range []Config{L1(size), L2(size)} {
			if err := c.Validate(); err != nil {
				t.Errorf("%v: %v", c, err)
			}
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, BlockBytes: 32, Assoc: 1, OutputBits: 64},
		{SizeBytes: 16 * KB, BlockBytes: 0, Assoc: 1, OutputBits: 64},
		{SizeBytes: 16 * KB, BlockBytes: 32, Assoc: 0, OutputBits: 64},
		{SizeBytes: 3000, BlockBytes: 32, Assoc: 2, OutputBits: 64},    // not pow2
		{SizeBytes: 16 * KB, BlockBytes: 48, Assoc: 2, OutputBits: 64}, // not pow2
		{SizeBytes: 32, BlockBytes: 64, Assoc: 1, OutputBits: 64},      // block > size
		{SizeBytes: 16 * KB, BlockBytes: 32, Assoc: 2, OutputBits: 0},  // no output
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v should be rejected", c)
		}
	}
}

func TestAddressArithmetic(t *testing.T) {
	c := Config{SizeBytes: 16 * KB, BlockBytes: 32, Assoc: 4, OutputBits: 64}
	if got := c.Lines(); got != 512 {
		t.Errorf("Lines = %d, want 512", got)
	}
	if got := c.Sets(); got != 128 {
		t.Errorf("Sets = %d, want 128", got)
	}
	if got := c.OffsetBits(); got != 5 {
		t.Errorf("OffsetBits = %d, want 5", got)
	}
	if got := c.IndexBits(); got != 7 {
		t.Errorf("IndexBits = %d, want 7", got)
	}
	if got := c.TagBits(); got != 32-7-5 {
		t.Errorf("TagBits = %d, want 20", got)
	}
}

func TestBitFieldsPartitionAddress(t *testing.T) {
	f := func(szExp, blkExp, asExp uint8) bool {
		size := 1 << (10 + szExp%13) // 1KB .. 4MB
		block := 1 << (4 + blkExp%4) // 16..128B
		assoc := 1 << (asExp % 5)    // 1..16
		c := Config{SizeBytes: size, BlockBytes: block, Assoc: assoc, OutputBits: 64}
		if c.Validate() != nil {
			return true // skip invalid combos
		}
		return c.OffsetBits()+c.IndexBits()+c.TagBits() == AddressBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataAndTagBits(t *testing.T) {
	c := L1(16 * KB)
	if got := c.DataBits(); got != 16*KB*8 {
		t.Errorf("DataBits = %d", got)
	}
	if got := c.TagArrayBits(); got != c.Lines()*(c.TagBits()+3) {
		t.Errorf("TagArrayBits = %d", got)
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		c    Config
		want string
	}{
		{L1(16 * KB), "16KB/32B/4-way"},
		{L2(1 * MB), "1MB/64B/8-way"},
		{Config{SizeBytes: 512, BlockBytes: 32, Assoc: 1, OutputBits: 8}, "512B/32B/1-way"},
	}
	for _, cse := range cases {
		if got := cse.c.String(); got != cse.want {
			t.Errorf("String = %q, want %q", got, cse.want)
		}
	}
}

func TestSmallL1AssocCapped(t *testing.T) {
	// A 128B L1 with 32B blocks has only 4 lines; assoc must not exceed it.
	c := L1(128)
	if err := c.Validate(); err != nil {
		t.Fatalf("tiny L1 invalid: %v", err)
	}
	if c.Assoc > c.Lines() {
		t.Errorf("assoc %d exceeds lines %d", c.Assoc, c.Lines())
	}
}

func TestDesignSpaces(t *testing.T) {
	l1 := L1Sizes()
	if l1[0] != 4*KB || l1[len(l1)-1] != 64*KB {
		t.Errorf("L1 space = %v", l1)
	}
	l2 := L2Sizes()
	if l2[0] != 256*KB || l2[len(l2)-1] != 4*MB {
		t.Errorf("L2 space = %v", l2)
	}
	for i := 1; i < len(l1); i++ {
		if l1[i] <= l1[i-1] {
			t.Error("L1 sizes must be increasing")
		}
	}
	for i := 1; i < len(l2); i++ {
		if l2[i] <= l2[i-1] {
			t.Error("L2 sizes must be increasing")
		}
	}
}
