package sim

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/trace"
)

// Additional simulator robustness tests beyond the core behaviours.

func TestAssociativitySweepImproves(t *testing.T) {
	// On a conflict-heavy synthetic trace, higher associativity at equal
	// capacity must not increase the miss rate (same total lines, LRU).
	g := trace.MustNew(trace.Params{
		Name: "t", FootprintBytes: 1 << 20, GranuleBytes: 64,
		ZipfAlpha: 1.3, MeanRunLength: 4, WriteFraction: 0.2, Seed: 21,
	})
	accs := trace.Collect(g, 80000)
	var prev float64 = 2
	for _, assoc := range []int{1, 2, 4, 8} {
		c := MustNew(cachecfg.Config{
			SizeBytes: 8 * cachecfg.KB, BlockBytes: 64, Assoc: assoc, OutputBits: 64,
		}, LRU, WriteBack)
		for _, a := range accs {
			c.Access(a.Addr, a.Write)
		}
		mr := c.Stats.MissRate()
		// Associativity occasionally hurts slightly on pathological maps;
		// allow half a point of slack.
		if mr > prev+0.005 {
			t.Errorf("assoc %d: miss rate %v worse than lower associativity %v", assoc, mr, prev)
		}
		prev = mr
	}
}

func TestWriteThroughHierarchy(t *testing.T) {
	l1 := MustNew(cachecfg.Config{SizeBytes: 4 * cachecfg.KB, BlockBytes: 32, Assoc: 2, OutputBits: 64}, LRU, WriteThrough)
	l2 := MustNew(cachecfg.L2(256*cachecfg.KB), LRU, WriteBack)
	h := NewHierarchy(l1, l2)
	g := trace.MustNew(trace.Params{
		Name: "t", FootprintBytes: 1 << 20, GranuleBytes: 64,
		ZipfAlpha: 1.3, MeanRunLength: 4, WriteFraction: 0.3, Seed: 23,
	})
	h.Run(g, 50000)
	if l1.Stats.Writebacks != 0 {
		t.Error("write-through L1 must never write back")
	}
	if l2.Stats.Accesses == 0 {
		t.Error("L2 must see the write-through traffic")
	}
	m1, m2 := h.LocalMissRates()
	if m1 <= 0 || m2 <= 0 {
		t.Errorf("miss rates %v/%v", m1, m2)
	}
}

func TestRobustnessWorkloads(t *testing.T) {
	// The extra suites drive the simulator to its extremes: streaming has
	// high L1 miss rates that spatial locality bounds at ~1/blockwords;
	// pointer chasing misses on nearly every L1-capacity-exceeding draw.
	for _, p := range trace.ExtraSuites(1) {
		g, err := trace.New(p)
		if err != nil {
			t.Fatal(err)
		}
		c := MustNew(cachecfg.L1(16*cachecfg.KB), LRU, WriteBack)
		for i := 0; i < 100000; i++ {
			a := g.Next()
			c.Access(a.Addr, a.Write)
		}
		mr := c.Stats.MissRate()
		switch p.Name {
		case "stream":
			// One compulsory miss per 32B block = 4 words: ~25% of accesses,
			// minus Zipf reuse.
			if mr < 0.05 || mr > 0.35 {
				t.Errorf("stream miss rate %v outside the spatial bound band", mr)
			}
		case "ptrchase":
			// No spatial locality: miss rate set by the temporal tail only.
			if mr < 0.1 || mr > 0.9 {
				t.Errorf("pointer-chase miss rate %v implausible", mr)
			}
		}
	}
}

func TestHierarchyWritebackPropagation(t *testing.T) {
	// A dirty L1 eviction must land in the L2 (allocate-on-writeback): the
	// block is then an L2 hit even though the CPU never re-references it
	// between the writeback and the probe.
	l1 := MustNew(cachecfg.Config{SizeBytes: 64, BlockBytes: 32, Assoc: 1, OutputBits: 64}, LRU, WriteBack)
	l2 := MustNew(cachecfg.Config{SizeBytes: 4 * cachecfg.KB, BlockBytes: 32, Assoc: 4, OutputBits: 64}, LRU, WriteBack)
	h := NewHierarchy(l1, l2)

	h.Access(0, true)   // dirty block 0 in L1 (L2 miss on the fill path)
	h.Access(64, false) // evicts block 0 from set 0 -> writeback into L2
	if !l2.Contains(0) {
		t.Error("dirty victim not written into L2")
	}
}

func TestMatrixDeterminism(t *testing.T) {
	p := trace.SPEC2000(9)
	p.FootprintBytes = 2 << 20
	a, err := BuildMissMatrix(p, []int{8 * cachecfg.KB}, []int{256 * cachecfg.KB}, 30000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMissMatrix(p, []int{8 * cachecfg.KB}, []int{256 * cachecfg.KB}, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if a.L1Local[8*cachecfg.KB] != b.L1Local[8*cachecfg.KB] {
		t.Error("miss matrix not deterministic")
	}
	if a.L2Local[8*cachecfg.KB][256*cachecfg.KB] != b.L2Local[8*cachecfg.KB][256*cachecfg.KB] {
		t.Error("L2 rates not deterministic")
	}
}

func TestStatsHitRate(t *testing.T) {
	s := Stats{Accesses: 10, Hits: 7, Misses: 3}
	if s.HitRate() != 0.7 {
		t.Errorf("hit rate %v", s.HitRate())
	}
	var empty Stats
	if empty.HitRate() != 0 || empty.MissRate() != 0 {
		t.Error("empty stats rates should be 0")
	}
}
