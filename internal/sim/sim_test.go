package sim

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/trace"
)

func tinyCfg(size, block, assoc int) cachecfg.Config {
	return cachecfg.Config{SizeBytes: size, BlockBytes: block, Assoc: assoc, OutputBits: 64}
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(cachecfg.Config{SizeBytes: 100}, LRU, WriteBack); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestColdMissesThenHits(t *testing.T) {
	c := MustNew(tinyCfg(1024, 32, 2), LRU, WriteBack)
	// First touch of each block misses; second hits.
	for i := uint64(0); i < 16; i++ {
		if r := c.Access(i*32, false); r.Hit {
			t.Errorf("cold access %d hit", i)
		}
	}
	for i := uint64(0); i < 16; i++ {
		if r := c.Access(i*32, false); !r.Hit {
			t.Errorf("warm access %d missed", i)
		}
	}
	if c.Stats.Hits != 16 || c.Stats.Misses != 16 || c.Stats.Accesses != 32 {
		t.Errorf("stats: %+v", c.Stats)
	}
}

func TestSameBlockDifferentWordsHit(t *testing.T) {
	c := MustNew(tinyCfg(1024, 32, 2), LRU, WriteBack)
	c.Access(0, false)
	if r := c.Access(24, false); !r.Hit {
		t.Error("same-block access missed")
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped 2-set cache: blocks 0 and 2 map to set 0 (block 1 to set 1).
	c := MustNew(tinyCfg(64, 32, 1), LRU, WriteBack)
	c.Access(0, false)  // set 0 <- block 0
	c.Access(64, false) // set 0 <- block 2 evicts block 0
	if r := c.Access(0, false); r.Hit {
		t.Error("evicted block still present")
	}
}

func TestLRUOrderWithinSet(t *testing.T) {
	// 2-way set: A, B, touch A, insert C -> B evicted, A retained.
	c := MustNew(tinyCfg(128, 32, 2), LRU, WriteBack)
	a, b, cc := uint64(0), uint64(128), uint64(256) // all map to set 0
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // A is MRU
	c.Access(cc, false)
	if !c.Contains(a) {
		t.Error("MRU line evicted")
	}
	if c.Contains(b) {
		t.Error("LRU line survived")
	}
}

func TestFIFOEviction(t *testing.T) {
	// FIFO ignores recency: A, B, touch A, insert C -> A evicted (oldest).
	c := MustNew(tinyCfg(128, 32, 2), FIFO, WriteBack)
	a, b, cc := uint64(0), uint64(128), uint64(256)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false)
	c.Access(cc, false)
	if c.Contains(a) {
		t.Error("FIFO should evict the oldest line regardless of recency")
	}
	if !c.Contains(b) {
		t.Error("FIFO evicted the wrong line")
	}
}

func TestRandomEvictsSomething(t *testing.T) {
	c := MustNew(tinyCfg(128, 32, 2), Random, WriteBack)
	c.Access(0, false)
	c.Access(128, false)
	c.Access(256, false)
	present := 0
	for _, a := range []uint64{0, 128, 256} {
		if c.Contains(a) {
			present++
		}
	}
	if present != 2 {
		t.Errorf("2-way set holds %d of 3 blocks", present)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := MustNew(tinyCfg(64, 32, 1), LRU, WriteBack)
	c.Access(0, true)        // dirty fill of set 0
	r := c.Access(64, false) // evicts dirty block 0
	if !r.Writeback {
		t.Fatal("dirty eviction must report a writeback")
	}
	if r.WritebackAddr != 0 {
		t.Errorf("writeback addr = %#x, want 0", r.WritebackAddr)
	}
	if c.Stats.Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats.Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := MustNew(tinyCfg(64, 32, 1), LRU, WriteBack)
	c.Access(0, false)
	r := c.Access(64, false)
	if r.Writeback {
		t.Error("clean eviction must not write back")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := MustNew(tinyCfg(1024, 32, 2), LRU, WriteThrough)
	c.Access(0, true) // write miss: no allocation
	if c.Contains(0) {
		t.Error("write-through no-allocate cache allocated on a write miss")
	}
	// Read miss allocates; subsequent write hits and never dirties.
	c.Access(32, false)
	c.Access(32, true)
	r := c.Access(32+1024, false) // force eviction via same set? different set sizes...
	_ = r
	if c.Stats.Writebacks != 0 {
		t.Error("write-through cache must not write back")
	}
}

func TestReassembleRoundTrip(t *testing.T) {
	c := MustNew(tinyCfg(4096, 64, 4), LRU, WriteBack)
	addrs := []uint64{0, 64, 4096, 123456 &^ 63, 1 << 30}
	for _, a := range addrs {
		idx := c.index(a)
		tag := c.tag(a)
		if got := c.reassemble(tag, idx); got != a&^63 {
			t.Errorf("reassemble(%#x) = %#x, want %#x", a, got, a&^63)
		}
	}
}

func TestFlush(t *testing.T) {
	c := MustNew(tinyCfg(1024, 32, 2), LRU, WriteBack)
	c.Access(0, true)
	c.Access(32, false)
	dirty := c.Flush()
	if dirty != 1 {
		t.Errorf("flush reported %d dirty lines, want 1", dirty)
	}
	if c.Contains(0) || c.Contains(32) {
		t.Error("flush left valid lines")
	}
}

func TestInclusionOfStatsSum(t *testing.T) {
	c := MustNew(tinyCfg(1024, 32, 2), LRU, WriteBack)
	g := trace.MustNew(trace.Params{
		Name: "t", FootprintBytes: 1 << 18, GranuleBytes: 64,
		ZipfAlpha: 1.2, MeanRunLength: 2, WriteFraction: 0.3, Seed: 3,
	})
	for i := 0; i < 20000; i++ {
		a := g.Next()
		c.Access(a.Addr, a.Write)
	}
	s := c.Stats
	if s.Hits+s.Misses != s.Accesses {
		t.Errorf("hits+misses != accesses: %+v", s)
	}
	if s.Reads+s.Writes != s.Accesses {
		t.Errorf("reads+writes != accesses: %+v", s)
	}
	if s.MissRate() < 0 || s.MissRate() > 1 {
		t.Errorf("miss rate %v", s.MissRate())
	}
}

func TestBiggerCacheNeverWorseLRU(t *testing.T) {
	// LRU inclusion property (same block size, same associativity-per-set
	// growth): a larger cache sees no more misses on the same trace.
	g := trace.MustNew(trace.Params{
		Name: "t", FootprintBytes: 1 << 20, GranuleBytes: 64,
		ZipfAlpha: 1.1, MeanRunLength: 2, WriteFraction: 0, Seed: 5,
	})
	accs := trace.Collect(g, 50000)
	var prev float64 = 2
	for _, size := range []int{1024, 4096, 16384, 65536} {
		c := MustNew(cachecfg.Config{SizeBytes: size, BlockBytes: 64, Assoc: size / 64, OutputBits: 64}, LRU, WriteBack)
		for _, a := range accs {
			c.Access(a.Addr, a.Write)
		}
		mr := c.Stats.MissRate()
		if mr > prev+1e-12 {
			t.Errorf("fully-assoc LRU %dB miss rate %v exceeds smaller cache %v", size, mr, prev)
		}
		prev = mr
	}
}

func TestHierarchyL2SeesOnlyMisses(t *testing.T) {
	l1 := MustNew(tinyCfg(1024, 32, 2), LRU, WriteBack)
	l2 := MustNew(tinyCfg(8192, 64, 4), LRU, WriteBack)
	h := NewHierarchy(l1, l2)
	g := trace.MustNew(trace.Params{
		Name: "t", FootprintBytes: 1 << 19, GranuleBytes: 64,
		ZipfAlpha: 1.2, MeanRunLength: 2, WriteFraction: 0.25, Seed: 8,
	})
	h.Run(g, 30000)
	if l2.Stats.Accesses > l1.Stats.Misses+l1.Stats.Writebacks {
		t.Errorf("L2 accesses %d exceed L1 misses %d + writebacks %d",
			l2.Stats.Accesses, l1.Stats.Misses, l1.Stats.Writebacks)
	}
	if l2.Stats.Accesses == 0 {
		t.Error("L2 never accessed")
	}
	m1, m2 := h.LocalMissRates()
	if m1 <= 0 || m1 >= 1 || m2 <= 0 || m2 > 1 {
		t.Errorf("local miss rates: %v, %v", m1, m2)
	}
	if g := h.GlobalL2MissRate(); g > m1 {
		t.Errorf("global L2 miss rate %v exceeds L1 local %v", g, m1)
	}
}

func TestResetStats(t *testing.T) {
	c := MustNew(tinyCfg(1024, 32, 2), LRU, WriteBack)
	c.Access(0, false)
	c.ResetStats()
	if c.Stats.Accesses != 0 {
		t.Error("stats not reset")
	}
	if !c.Contains(0) {
		t.Error("ResetStats must not invalidate contents")
	}
}

func TestPolicyStrings(t *testing.T) {
	if LRU.String() != "LRU" || FIFO.String() != "FIFO" || Random.String() != "random" {
		t.Error("replacement policy names")
	}
	if WriteBack.String() != "write-back" || WriteThrough.String() != "write-through" {
		t.Error("write policy names")
	}
}
