package sim_test

import (
	"fmt"

	"repro/internal/cachecfg"
	"repro/internal/sim"
)

// A two-level hierarchy: the L2 sees only L1 misses and write-backs.
func ExampleHierarchy() {
	l1 := sim.MustNew(cachecfg.L1(4*cachecfg.KB), sim.LRU, sim.WriteBack)
	l2 := sim.MustNew(cachecfg.L2(256*cachecfg.KB), sim.LRU, sim.WriteBack)
	h := sim.NewHierarchy(l1, l2)

	// Cyclically touch 256 blocks twice. The 4KB L1 holds only 128 of the
	// 32B blocks, and a cyclic scan larger than capacity is LRU's worst
	// case: every line is evicted just before its reuse, so the L1 misses
	// on every access. The L2 (256KB) holds the whole set: its 128 64B
	// blocks cold-miss once and hit ever after.
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < 256; i++ {
			h.Access(i*32, false)
		}
	}
	fmt.Printf("L1 accesses=%d misses=%d\n", l1.Stats.Accesses, l1.Stats.Misses)
	fmt.Printf("L2 accesses=%d misses=%d\n", l2.Stats.Accesses, l2.Stats.Misses)
	// Output:
	// L1 accesses=512 misses=512
	// L2 accesses=512 misses=128
}

func ExampleCache_Access() {
	c := sim.MustNew(cachecfg.Config{
		SizeBytes: 1024, BlockBytes: 32, Assoc: 2, OutputBits: 64,
	}, sim.LRU, sim.WriteBack)
	first := c.Access(0x40, true)   // cold write miss: allocate, dirty
	second := c.Access(0x48, false) // same block: hit
	fmt.Printf("first hit=%v, second hit=%v, dirty writeback pending=%v\n",
		first.Hit, second.Hit, first.Writeback)
	// Output:
	// first hit=false, second hit=true, dirty writeback pending=false
}
