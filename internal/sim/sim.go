// Package sim is a trace-driven set-associative cache simulator used to
// gather the "cache access statistics for each L1 and L2 cache size
// combination" that Section 5 of the paper derives from architectural
// simulation.
//
// It supports LRU/FIFO/random replacement, write-back or write-through
// policies, and a two-level hierarchy in which the L2 observes exactly the
// L1 miss (and write-back) stream.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/cachecfg"
	"repro/internal/trace"
)

// ReplPolicy selects the victim within a set.
type ReplPolicy int

const (
	// LRU evicts the least recently used way.
	LRU ReplPolicy = iota
	// FIFO evicts the oldest-filled way.
	FIFO
	// Random evicts a uniformly random way.
	Random
)

// String names the policy.
func (p ReplPolicy) String() string {
	switch p {
	case LRU:
		return "LRU"
	case FIFO:
		return "FIFO"
	case Random:
		return "random"
	}
	return fmt.Sprintf("repl(%d)", int(p))
}

// WritePolicy selects how stores interact with the cache.
type WritePolicy int

const (
	// WriteBack allocates on write misses and writes dirty victims back.
	WriteBack WritePolicy = iota
	// WriteThrough propagates every store and does not allocate on write
	// misses.
	WriteThrough
)

// String names the policy.
func (p WritePolicy) String() string {
	if p == WriteThrough {
		return "write-through"
	}
	return "write-back"
}

// Stats counts simulator events.
type Stats struct {
	Accesses   uint64
	Reads      uint64
	Writes     uint64
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	Evictions  uint64
}

// MissRate returns misses/accesses (0 for an untouched cache).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// HitRate returns hits/accesses.
func (s Stats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

type line struct {
	tag     uint64
	valid   bool
	dirty   bool
	lastUse uint64
	arrival uint64
}

// Cache is one level of simulated cache.
type Cache struct {
	Cfg    cachecfg.Config
	Repl   ReplPolicy
	Write  WritePolicy
	Stats  Stats
	sets   [][]line
	clock  uint64
	rng    *rand.Rand
	offLSB uint
	idxLSB uint
	idxMsk uint64
}

// New builds a simulated cache.
func New(cfg cachecfg.Config, repl ReplPolicy, write WritePolicy) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Cache{
		Cfg:   cfg,
		Repl:  repl,
		Write: write,
		rng:   rand.New(rand.NewSource(1)),
	}
	c.sets = make([][]line, cfg.Sets())
	backing := make([]line, cfg.Sets()*cfg.Assoc)
	for i := range c.sets {
		c.sets[i], backing = backing[:cfg.Assoc:cfg.Assoc], backing[cfg.Assoc:]
	}
	c.offLSB = uint(cfg.OffsetBits())
	c.idxLSB = c.offLSB
	c.idxMsk = uint64(cfg.Sets() - 1)
	return c, nil
}

// MustNew panics on configuration errors.
func MustNew(cfg cachecfg.Config, repl ReplPolicy, write WritePolicy) *Cache {
	c, err := New(cfg, repl, write)
	if err != nil {
		panic(err)
	}
	return c
}

func (c *Cache) index(addr uint64) uint64 { return (addr >> c.idxLSB) & c.idxMsk }
func (c *Cache) tag(addr uint64) uint64   { return addr >> (c.idxLSB + uint(log2(len(c.sets)))) }

// AccessResult reports what one access did.
type AccessResult struct {
	Hit bool
	// WritebackAddr is set when a dirty victim was evicted; the address is
	// the victim's block address (for forwarding to the next level).
	Writeback     bool
	WritebackAddr uint64
	// Allocated reports whether the access filled a line.
	Allocated bool
}

// Access performs one read or write and returns what happened.
func (c *Cache) Access(addr uint64, write bool) AccessResult {
	c.clock++
	c.Stats.Accesses++
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}

	set := c.sets[c.index(addr)]
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stats.Hits++
			set[i].lastUse = c.clock
			if write && c.Write == WriteBack {
				set[i].dirty = true
			}
			return AccessResult{Hit: true}
		}
	}
	c.Stats.Misses++

	// Write-through caches do not allocate on write misses.
	if write && c.Write == WriteThrough {
		return AccessResult{}
	}
	return c.fill(addr, write)
}

// fill allocates a line for addr, evicting a victim if needed.
func (c *Cache) fill(addr uint64, write bool) AccessResult {
	idx := c.index(addr)
	set := c.sets[idx]
	tag := c.tag(addr)

	victim := -1
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	res := AccessResult{Allocated: true}
	if victim < 0 {
		victim = c.pickVictim(set)
		c.Stats.Evictions++
		if set[victim].dirty {
			c.Stats.Writebacks++
			res.Writeback = true
			res.WritebackAddr = c.reassemble(set[victim].tag, idx)
		}
	}
	set[victim] = line{
		tag:     tag,
		valid:   true,
		dirty:   write && c.Write == WriteBack,
		lastUse: c.clock,
		arrival: c.clock,
	}
	return res
}

func (c *Cache) pickVictim(set []line) int {
	switch c.Repl {
	case Random:
		return c.rng.Intn(len(set))
	case FIFO:
		v := 0
		for i := range set {
			if set[i].arrival < set[v].arrival {
				v = i
			}
		}
		return v
	default: // LRU
		v := 0
		for i := range set {
			if set[i].lastUse < set[v].lastUse {
				v = i
			}
		}
		return v
	}
}

// reassemble rebuilds a block address from tag and set index.
func (c *Cache) reassemble(tag, idx uint64) uint64 {
	return tag<<(c.idxLSB+uint(log2(len(c.sets)))) | idx<<c.idxLSB
}

// Contains probes for addr without touching statistics or LRU state.
func (c *Cache) Contains(addr uint64) bool {
	set := c.sets[c.index(addr)]
	tag := c.tag(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Flush invalidates every line and returns the number of dirty lines that
// would have been written back.
func (c *Cache) Flush() int {
	dirty := 0
	for s := range c.sets {
		for i := range c.sets[s] {
			if c.sets[s][i].valid && c.sets[s][i].dirty {
				dirty++
			}
			c.sets[s][i] = line{}
		}
	}
	return dirty
}

// ResetStats zeroes the counters without touching cache contents.
func (c *Cache) ResetStats() { c.Stats = Stats{} }

// Hierarchy is a two-level cache system: the L2 sees the L1 miss stream and
// the L1's dirty write-backs.
type Hierarchy struct {
	L1 *Cache
	L2 *Cache
	// MemAccesses counts references that fell through both levels.
	MemAccesses uint64
}

// NewHierarchy wires an L1 and an L2.
func NewHierarchy(l1, l2 *Cache) *Hierarchy {
	return &Hierarchy{L1: l1, L2: l2}
}

// Access sends one reference through the hierarchy.
func (h *Hierarchy) Access(addr uint64, write bool) {
	r1 := h.L1.Access(addr, write)
	if r1.Writeback {
		// The L1 victim is written into the L2 (allocate-on-writeback).
		r2 := h.L2.Access(r1.WritebackAddr, true)
		if !r2.Hit {
			h.MemAccesses++ // L2 write miss fetched the block
		}
	}
	if r1.Hit {
		return
	}
	r2 := h.L2.Access(addr, write)
	if !r2.Hit {
		h.MemAccesses++
	}
	if r2.Writeback {
		h.MemAccesses++
	}
}

// Run drives n accesses from the generator through the hierarchy.
func (h *Hierarchy) Run(g trace.Generator, n int) {
	for i := 0; i < n; i++ {
		a := g.Next()
		h.Access(a.Addr, a.Write)
	}
}

// RunSlice drives pre-collected accesses through the hierarchy.
func (h *Hierarchy) RunSlice(accesses []trace.Access) {
	for _, a := range accesses {
		h.Access(a.Addr, a.Write)
	}
}

// LocalMissRates returns (L1 local, L2 local) miss rates.
func (h *Hierarchy) LocalMissRates() (float64, float64) {
	return h.L1.Stats.MissRate(), h.L2.Stats.MissRate()
}

// GlobalL2MissRate returns L2 misses per L1 access.
func (h *Hierarchy) GlobalL2MissRate() float64 {
	if h.L1.Stats.Accesses == 0 {
		return 0
	}
	return float64(h.L2.Stats.Misses) / float64(h.L1.Stats.Accesses)
}

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}
