package sim

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/cachecfg"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// ctxCheckStride is how many simulated accesses an L1 pass runs between
// context checks: frequent enough that cancellation lands mid-pass (well
// under one pass of latency), rare enough to stay off the profile.
const ctxCheckStride = 1 << 16

// MissMatrix holds the architectural statistics the two-level optimization
// consumes: local miss rates for every (L1 size, L2 size) combination of one
// workload.
type MissMatrix struct {
	Workload string
	L1Sizes  []int
	L2Sizes  []int
	Accesses int

	// L1Local[l1] is the L1 local miss rate.
	L1Local map[int]float64
	// L2Local[l1][l2] is the L2 local miss rate given that L1.
	L2Local map[int]map[int]float64
	// WritebackPerAccess[l1] is the L1 dirty-writeback rate per access.
	WritebackPerAccess map[int]float64
}

// missStreamEntry is one reference forwarded from L1 to L2.
type missStreamEntry struct {
	addr  uint64
	write bool
}

// l1PassResult is the outcome of simulating one L1 size: its local stats
// plus the L2 rates obtained by replaying its miss stream.
type l1PassResult struct {
	l1Local float64
	wbRate  float64
	l2Local map[int]float64
}

// BuildMissMatrix simulates the workload over every L1/L2 size combination.
// It is BuildMissMatrixCtx without cancellation.
func BuildMissMatrix(p trace.Params, l1Sizes, l2Sizes []int, n int) (*MissMatrix, error) {
	return BuildMissMatrixCtx(context.Background(), p, l1Sizes, l2Sizes, n)
}

// BuildMissMatrixCtx simulates the workload over every L1/L2 size
// combination. The L1 miss stream for a given L1 size does not depend on
// the L2, so each L1 pass is run once and its miss stream replayed into
// every candidate L2.
//
// The L1 passes are independent and run in parallel; each worker gets its
// own trace generator seeded from the same Params, so every shard sees the
// identical reference stream and the matrix is byte-for-byte the one a
// sequential run produces. Cancelling ctx aborts mid-pass (passes check
// the context every few tens of thousands of accesses) and returns ctx's
// error.
func BuildMissMatrixCtx(ctx context.Context, p trace.Params, l1Sizes, l2Sizes []int, n int) (*MissMatrix, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sim: need a positive access count, got %d", n)
	}
	if len(l1Sizes) == 0 || len(l2Sizes) == 0 {
		return nil, fmt.Errorf("sim: empty size lists")
	}
	if _, err := trace.New(p); err != nil { // validate params before fan-out
		return nil, err
	}
	m := &MissMatrix{
		Workload:           p.Name,
		L1Sizes:            append([]int(nil), l1Sizes...),
		L2Sizes:            append([]int(nil), l2Sizes...),
		Accesses:           n,
		L1Local:            make(map[int]float64),
		L2Local:            make(map[int]map[int]float64),
		WritebackPerAccess: make(map[int]float64),
	}
	sort.Ints(m.L1Sizes)
	sort.Ints(m.L2Sizes)

	passes, err := sweep.MapCtx(ctx, len(m.L1Sizes), 0, func(ctx context.Context, i int) (l1PassResult, error) {
		return l1Pass(ctx, p, m.L1Sizes[i], m.L2Sizes, n)
	})
	if err != nil {
		return nil, err
	}
	for i, l1Size := range m.L1Sizes {
		m.L1Local[l1Size] = passes[i].l1Local
		m.WritebackPerAccess[l1Size] = passes[i].wbRate
		m.L2Local[l1Size] = passes[i].l2Local
	}
	return m, nil
}

// l1Pass runs one L1 size: fresh per-shard trace generator, one L1
// simulation, and a replay of the miss stream into every candidate L2. The
// context is checked every ctxCheckStride accesses so cancellation does
// not have to wait out a million-access pass.
func l1Pass(ctx context.Context, p trace.Params, l1Size int, l2Sizes []int, n int) (l1PassResult, error) {
	gen, err := trace.New(p)
	if err != nil {
		return l1PassResult{}, err
	}
	l1, err := New(cachecfg.L1(l1Size), LRU, WriteBack)
	if err != nil {
		return l1PassResult{}, err
	}
	var stream []missStreamEntry
	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return l1PassResult{}, err
			}
		}
		a := gen.Next()
		r := l1.Access(a.Addr, a.Write)
		if r.Writeback {
			stream = append(stream, missStreamEntry{addr: r.WritebackAddr, write: true})
		}
		if !r.Hit {
			stream = append(stream, missStreamEntry{addr: a.Addr, write: a.Write})
		}
	}
	out := l1PassResult{
		l1Local: l1.Stats.MissRate(),
		wbRate:  float64(l1.Stats.Writebacks) / float64(l1.Stats.Accesses),
		l2Local: make(map[int]float64, len(l2Sizes)),
	}
	for _, l2Size := range l2Sizes {
		if err := ctx.Err(); err != nil {
			return l1PassResult{}, err
		}
		l2, err := New(cachecfg.L2(l2Size), LRU, WriteBack)
		if err != nil {
			return l1PassResult{}, err
		}
		for _, e := range stream {
			l2.Access(e.addr, e.write)
		}
		out.l2Local[l2Size] = l2.Stats.MissRate()
	}
	return out, nil
}

// BuildSuiteMatrices builds matrices for several workloads; it is
// BuildSuiteMatricesCtx without cancellation.
func BuildSuiteMatrices(suites []trace.Params, l1Sizes, l2Sizes []int, n int) ([]*MissMatrix, error) {
	return BuildSuiteMatricesCtx(context.Background(), suites, l1Sizes, l2Sizes, n)
}

// BuildSuiteMatricesCtx builds matrices for several workloads, one worker
// per workload (each workload's generator is seeded independently).
func BuildSuiteMatricesCtx(ctx context.Context, suites []trace.Params, l1Sizes, l2Sizes []int, n int) ([]*MissMatrix, error) {
	return sweep.MapCtx(ctx, len(suites), 0, func(ctx context.Context, i int) (*MissMatrix, error) {
		m, err := BuildMissMatrixCtx(ctx, suites[i], l1Sizes, l2Sizes, n)
		if err != nil {
			return nil, fmt.Errorf("sim: workload %s: %w", suites[i].Name, err)
		}
		return m, nil
	})
}

// Average combines matrices with equal weight — the paper reports "results
// from various benchmark suites ... are collected" and evaluates aggregate
// behaviour.
func Average(ms []*MissMatrix) (*MissMatrix, error) {
	if len(ms) == 0 {
		return nil, fmt.Errorf("sim: nothing to average")
	}
	base := ms[0]
	out := &MissMatrix{
		Workload:           "average",
		L1Sizes:            append([]int(nil), base.L1Sizes...),
		L2Sizes:            append([]int(nil), base.L2Sizes...),
		Accesses:           base.Accesses,
		L1Local:            make(map[int]float64),
		L2Local:            make(map[int]map[int]float64),
		WritebackPerAccess: make(map[int]float64),
	}
	for _, m := range ms {
		if len(m.L1Sizes) != len(base.L1Sizes) || len(m.L2Sizes) != len(base.L2Sizes) {
			return nil, fmt.Errorf("sim: mismatched matrices (%s vs %s)", m.Workload, base.Workload)
		}
	}
	w := 1 / float64(len(ms))
	for _, l1 := range out.L1Sizes {
		out.L2Local[l1] = make(map[int]float64)
		for _, m := range ms {
			out.L1Local[l1] += w * m.L1Local[l1]
			out.WritebackPerAccess[l1] += w * m.WritebackPerAccess[l1]
			for _, l2 := range out.L2Sizes {
				out.L2Local[l1][l2] += w * m.L2Local[l1][l2]
			}
		}
	}
	return out, nil
}
