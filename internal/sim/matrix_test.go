package sim

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/trace"
)

// quickSuite returns a downsized workload for fast matrix tests.
func quickSuite(seed int64) trace.Params {
	p := trace.SPEC2000(seed)
	p.FootprintBytes = 4 << 20
	return p
}

func TestBuildMissMatrixShape(t *testing.T) {
	l1s := []int{4 * cachecfg.KB, 16 * cachecfg.KB}
	l2s := []int{256 * cachecfg.KB, 1 * cachecfg.MB}
	m, err := BuildMissMatrix(quickSuite(1), l1s, l2s, 60000)
	if err != nil {
		t.Fatal(err)
	}
	for _, l1 := range l1s {
		if _, ok := m.L1Local[l1]; !ok {
			t.Errorf("missing L1 entry for %d", l1)
		}
		for _, l2 := range l2s {
			if _, ok := m.L2Local[l1][l2]; !ok {
				t.Errorf("missing L2 entry for %d/%d", l1, l2)
			}
		}
	}
}

func TestBuildMissMatrixErrors(t *testing.T) {
	if _, err := BuildMissMatrix(quickSuite(1), nil, []int{1 << 20}, 100); err == nil {
		t.Error("empty L1 list accepted")
	}
	if _, err := BuildMissMatrix(quickSuite(1), []int{4096}, []int{1 << 20}, 0); err == nil {
		t.Error("zero access count accepted")
	}
	if _, err := BuildMissMatrix(trace.Params{}, []int{4096}, []int{1 << 20}, 100); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestMissRatesDecreaseWithSize(t *testing.T) {
	l1s := cachecfg.L1Sizes()
	l2s := []int{256 * cachecfg.KB, 512 * cachecfg.KB, 1 * cachecfg.MB, 2 * cachecfg.MB}
	m, err := BuildMissMatrix(quickSuite(2), l1s, l2s, 120000)
	if err != nil {
		t.Fatal(err)
	}
	// L1 local miss rate decreases (weakly) with L1 size.
	for i := 1; i < len(l1s); i++ {
		if m.L1Local[l1s[i]] > m.L1Local[l1s[i-1]]+0.005 {
			t.Errorf("L1 miss rate rose from %d (%v) to %d (%v)",
				l1s[i-1], m.L1Local[l1s[i-1]], l1s[i], m.L1Local[l1s[i]])
		}
	}
	// L2 local miss rate decreases (weakly) with L2 size at fixed L1.
	l1 := 16 * cachecfg.KB
	for i := 1; i < len(l2s); i++ {
		if m.L2Local[l1][l2s[i]] > m.L2Local[l1][l2s[i-1]]+0.01 {
			t.Errorf("L2 miss rate rose from %d (%v) to %d (%v)",
				l2s[i-1], m.L2Local[l1][l2s[i-1]], l2s[i], m.L2Local[l1][l2s[i]])
		}
	}
}

func TestPaperCalibrationProperties(t *testing.T) {
	// Section 5: "Local L1 cache miss rates are already very low and they do
	// not vary much amongst the L1 caches ranging from 4K to 64K".
	m, err := BuildMissMatrix(quickSuite(3), cachecfg.L1Sizes(),
		[]int{512 * cachecfg.KB}, 150000)
	if err != nil {
		t.Fatal(err)
	}
	for _, l1 := range cachecfg.L1Sizes() {
		mr := m.L1Local[l1]
		if mr <= 0.001 || mr > 0.25 {
			t.Errorf("L1 %dKB local miss rate %v outside the plausible low band", l1/1024, mr)
		}
	}
	spread := m.L1Local[4*cachecfg.KB] - m.L1Local[64*cachecfg.KB]
	if spread < 0 {
		t.Errorf("miss rate should not grow with L1 size (spread %v)", spread)
	}
	if spread > 0.15 {
		t.Errorf("L1 miss-rate spread %v too wide — paper expects little variation", spread)
	}
	// L2 should still see double-digit local miss rates at 512KB for a 4MB
	// footprint workload.
	if m.L2Local[16*cachecfg.KB][512*cachecfg.KB] <= 0.01 {
		t.Error("L2 local miss rate implausibly low")
	}
}

func TestWritebackRatePositive(t *testing.T) {
	m, err := BuildMissMatrix(quickSuite(4), []int{16 * cachecfg.KB},
		[]int{512 * cachecfg.KB}, 60000)
	if err != nil {
		t.Fatal(err)
	}
	wb := m.WritebackPerAccess[16*cachecfg.KB]
	if wb <= 0 || wb > m.L1Local[16*cachecfg.KB] {
		t.Errorf("writeback rate %v outside (0, miss rate]", wb)
	}
}

func TestAverageMatrices(t *testing.T) {
	l1s := []int{16 * cachecfg.KB}
	l2s := []int{512 * cachecfg.KB}
	a, err := BuildMissMatrix(quickSuite(5), l1s, l2s, 40000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMissMatrix(quickSuite(6), l1s, l2s, 40000)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := Average([]*MissMatrix{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := (a.L1Local[l1s[0]] + b.L1Local[l1s[0]]) / 2
	if got := avg.L1Local[l1s[0]]; got != want {
		t.Errorf("averaged L1 miss rate = %v, want %v", got, want)
	}
	want = (a.L2Local[l1s[0]][l2s[0]] + b.L2Local[l1s[0]][l2s[0]]) / 2
	if got := avg.L2Local[l1s[0]][l2s[0]]; got != want {
		t.Errorf("averaged L2 miss rate = %v, want %v", got, want)
	}
}

func TestAverageErrors(t *testing.T) {
	if _, err := Average(nil); err == nil {
		t.Error("empty average accepted")
	}
}

func TestBuildSuiteMatrices(t *testing.T) {
	suites := []trace.Params{quickSuite(7)}
	ms, err := BuildSuiteMatrices(suites, []int{16 * cachecfg.KB}, []int{512 * cachecfg.KB}, 30000)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Workload != "spec2000" {
		t.Errorf("unexpected result: %+v", ms)
	}
}
