// Package cli holds the shared command-line plumbing of the repository's
// binaries: signal-aware run contexts, the exit-status convention for
// cancelled runs, and a serialized progress tracker for partial-progress
// diagnostics. Every cmd/ main wires its run through SignalContext so
// Ctrl-C and SIGTERM cancel long sweeps cleanly instead of killing the
// process mid-write.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/sweep"
)

// ExitCancelled is the exit status of a run ended by SIGINT/SIGTERM,
// following the shell convention of 128 + SIGINT(2).
const ExitCancelled = 130

// SignalContext returns a context cancelled by SIGINT or SIGTERM — the
// root context of every cmd/ binary. The returned stop func releases the
// signal registration (restoring default die-on-signal behavior for a
// second Ctrl-C).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// WithTimeout bounds ctx by the -timeout flag value: 0 means unbounded
// (ctx is returned with a no-op cancel), matching every binary's flag
// default, so call sites stay one line.
func WithTimeout(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// Cancelled reports whether err ends a run because its context was
// cancelled (signal), as opposed to a failure or a timeout.
func Cancelled(err error) bool { return errors.Is(err, context.Canceled) }

// TimedOut reports whether err ends a run because the -timeout deadline
// passed.
func TimedOut(err error) bool { return errors.Is(err, context.DeadlineExceeded) }

// ExitCode maps a fatal run error to the exit status: ExitCancelled for
// signal cancellation, 1 for everything else (including timeouts).
func ExitCode(err error) int {
	if Cancelled(err) {
		return ExitCancelled
	}
	return 1
}

// Progress tracks fan-out completion for a command: it serializes
// concurrent hook calls, optionally echoes a ticker line per completion,
// and renders a partial-progress note for cancellation diagnostics.
type Progress struct {
	mu          sync.Mutex
	w           io.Writer // nil = track silently
	label, unit string
	done, total int
}

// NewProgress returns a tracker that prints "label: done/total unit" to w
// after each completed item, or tracks silently when w is nil.
func NewProgress(label, unit string, w io.Writer) *Progress {
	return &Progress{w: w, label: label, unit: unit}
}

// Hook returns the sweep.Progress callback feeding this tracker. The
// callback is safe to invoke from concurrent workers.
//
// Ticker lines are throttled for large fan-outs: every completion prints
// up to 1000 items, beyond that only every total/1000th (and the final)
// completion does — a million-point grid reports ~0.1% increments
// instead of writing a million stderr lines.
func (p *Progress) Hook() sweep.Progress {
	return func(done, total int) {
		p.mu.Lock()
		defer p.mu.Unlock()
		if done > p.done {
			p.done = done
		}
		p.total = total
		if p.w != nil && (total <= 1000 || done%(total/1000) == 0 || done == total) {
			fmt.Fprintf(p.w, "%s: %d/%d %s\n", p.label, done, total, p.unit)
		}
	}
}

// Note renders the partial-progress state ("3/12 experiments") for
// cancellation messages, or "" when no completion was ever observed.
func (p *Progress) Note() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.total == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d %s", p.done, p.total, p.unit)
}

// Command is one subcommand of a multi-command binary (sweepd serve /
// sweepd work). Run receives everything a top-level run func receives; the
// subcommand name has already been stripped from args.
type Command struct {
	// Name is the subcommand as typed on the command line.
	Name string
	// Summary is the one-line usage description.
	Summary string
	// Run executes the subcommand and returns the exit status.
	Run func(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int
}

// Dispatch routes args[0] to its Command. A missing, unknown, or help
// subcommand prints the command list to stderr and returns 2 (matching the
// flag-error convention of the single-command binaries).
func Dispatch(ctx context.Context, name string, cmds []Command, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	usage := func() {
		fmt.Fprintf(stderr, "usage: %s <command> [flags]\n\ncommands:\n", name)
		for _, c := range cmds {
			fmt.Fprintf(stderr, "  %-8s %s\n", c.Name, c.Summary)
		}
	}
	if len(args) == 0 {
		usage()
		return 2
	}
	sub := args[0]
	if sub == "help" || sub == "-h" || sub == "-help" || sub == "--help" {
		usage()
		return 2
	}
	for _, c := range cmds {
		if c.Name == sub {
			return c.Run(ctx, args[1:], stdin, stdout, stderr)
		}
	}
	fmt.Fprintf(stderr, "%s: unknown command %q\n", name, sub)
	usage()
	return 2
}

// Report writes the standard diagnostics for a fatal run error — the error
// itself, a timeout note, and the partial-progress state — and returns the
// exit status. name is the binary's diagnostic prefix.
func Report(name string, err error, p *Progress, stderr io.Writer) int {
	fmt.Fprintf(stderr, "%s: %v\n", name, err)
	switch {
	case TimedOut(err):
		fmt.Fprintf(stderr, "%s: timed out", name)
	case Cancelled(err):
		fmt.Fprintf(stderr, "%s: cancelled", name)
	default:
		return 1
	}
	if note := p.Note(); note != "" {
		fmt.Fprintf(stderr, " after %s", note)
	}
	fmt.Fprintln(stderr)
	return ExitCode(err)
}
