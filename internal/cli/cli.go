// Package cli holds the shared command-line plumbing of the repository's
// binaries: signal-aware run contexts, the exit-status convention for
// cancelled runs, and a serialized progress tracker for partial-progress
// diagnostics. Every cmd/ main wires its run through SignalContext so
// Ctrl-C and SIGTERM cancel long sweeps cleanly instead of killing the
// process mid-write.
package cli

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/sweep"
)

// ExitCancelled is the exit status of a run ended by SIGINT/SIGTERM,
// following the shell convention of 128 + SIGINT(2).
const ExitCancelled = 130

// SignalContext returns a context cancelled by SIGINT or SIGTERM — the
// root context of every cmd/ binary. The returned stop func releases the
// signal registration (restoring default die-on-signal behavior for a
// second Ctrl-C).
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// WithTimeout bounds ctx by the -timeout flag value: 0 means unbounded
// (ctx is returned with a no-op cancel), matching every binary's flag
// default, so call sites stay one line.
func WithTimeout(ctx context.Context, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, timeout)
}

// Cancelled reports whether err ends a run because its context was
// cancelled (signal), as opposed to a failure or a timeout.
func Cancelled(err error) bool { return errors.Is(err, context.Canceled) }

// TimedOut reports whether err ends a run because the -timeout deadline
// passed.
func TimedOut(err error) bool { return errors.Is(err, context.DeadlineExceeded) }

// ExitCode maps a fatal run error to the exit status: ExitCancelled for
// signal cancellation, 1 for everything else (including timeouts).
func ExitCode(err error) int {
	if Cancelled(err) {
		return ExitCancelled
	}
	return 1
}

// Progress tracks fan-out completion for a command: it serializes
// concurrent hook calls, optionally echoes a ticker line per completion
// with the observed rate and an ETA, and renders a partial-progress note
// for cancellation diagnostics.
type Progress struct {
	mu          sync.Mutex
	w           io.Writer // nil = track silently
	label, unit string
	done, total int
	clock       obs.Clock
	start       time.Time // first observed completion; zero until then
	base        int       // done at first observation — rate covers what we watched
}

// NewProgress returns a tracker that prints "label: done/total unit" to w
// after each completed item — plus ", N unit/s, ~Xs left" once a rate is
// observable — or tracks silently when w is nil.
func NewProgress(label, unit string, w io.Writer) *Progress {
	return &Progress{w: w, label: label, unit: unit}
}

// WithClock replaces the tracker's time source (default time.Now via the
// obs clock, the same source the metrics layer uses, so CLI tickers and
// scraped throughput agree). Tests inject a fake to pin the rate/ETA
// arithmetic.
func (p *Progress) WithClock(c obs.Clock) *Progress {
	p.clock = c
	return p
}

// Hook returns the sweep.Progress callback feeding this tracker. The
// callback is safe to invoke from concurrent workers.
//
// Ticker lines are throttled for large fan-outs: every completion prints
// up to 1000 items, beyond that only every total/1000th (and the final)
// completion does — a million-point grid reports ~0.1% increments
// instead of writing a million stderr lines.
//
// The rate is measured from the first observed completion (a resumed run
// reports the rate of what it actually executed, not of replayed
// journal lines), and the ETA extrapolates it over the remainder:
// "figures: 500/1000 experiments, 12 experiments/s, ~42s left". The
// first line of a run carries no rate — nothing is measurable yet.
func (p *Progress) Hook() sweep.Progress {
	return func(done, total int) {
		p.mu.Lock()
		defer p.mu.Unlock()
		now := p.clock.Now()
		if p.start.IsZero() {
			p.start = now
			p.base = done
		}
		if done > p.done {
			p.done = done
		}
		p.total = total
		if p.w != nil && (total <= 1000 || done%(total/1000) == 0 || done == total) {
			fmt.Fprintf(p.w, "%s: %d/%d %s%s\n", p.label, done, total, p.unit, p.rateSuffix(done, total, now))
		}
	}
}

// rateSuffix renders ", N unit/s, ~Xs left" from the completions
// observed since the first hook call, or "" while no rate is measurable
// (first line, or a clock that has not advanced). Callers hold p.mu.
func (p *Progress) rateSuffix(done, total int, now time.Time) string {
	elapsed := now.Sub(p.start).Seconds()
	if done <= p.base || elapsed <= 0 {
		return ""
	}
	rate := float64(done-p.base) / elapsed
	out := fmt.Sprintf(", %s %s/s", formatRate(rate), p.unit)
	if done < total {
		eta := time.Duration(float64(total-done) / rate * float64(time.Second)).Round(time.Second)
		if eta < time.Second {
			eta = time.Second
		}
		out += fmt.Sprintf(", ~%s left", eta)
	}
	return out
}

// formatRate renders an items/sec figure at a precision matched to its
// magnitude (1234, 45.2, 0.08).
func formatRate(rate float64) string {
	switch {
	case rate >= 100:
		return fmt.Sprintf("%.0f", rate)
	case rate >= 1:
		return fmt.Sprintf("%.1f", rate)
	default:
		return fmt.Sprintf("%.2f", rate)
	}
}

// Note renders the partial-progress state ("3/12 experiments") for
// cancellation messages, or "" when no completion was ever observed.
func (p *Progress) Note() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.total == 0 {
		return ""
	}
	return fmt.Sprintf("%d/%d %s", p.done, p.total, p.unit)
}

// Command is one subcommand of a multi-command binary (sweepd serve /
// sweepd work). Run receives everything a top-level run func receives; the
// subcommand name has already been stripped from args.
type Command struct {
	// Name is the subcommand as typed on the command line.
	Name string
	// Summary is the one-line usage description.
	Summary string
	// Run executes the subcommand and returns the exit status.
	Run func(ctx context.Context, args []string, stdin io.Reader, stdout, stderr io.Writer) int
}

// Dispatch routes args[0] to its Command. A missing, unknown, or help
// subcommand prints the command list to stderr and returns 2 (matching the
// flag-error convention of the single-command binaries).
func Dispatch(ctx context.Context, name string, cmds []Command, args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	usage := func() {
		fmt.Fprintf(stderr, "usage: %s <command> [flags]\n\ncommands:\n", name)
		for _, c := range cmds {
			fmt.Fprintf(stderr, "  %-8s %s\n", c.Name, c.Summary)
		}
	}
	if len(args) == 0 {
		usage()
		return 2
	}
	sub := args[0]
	if sub == "help" || sub == "-h" || sub == "-help" || sub == "--help" {
		usage()
		return 2
	}
	for _, c := range cmds {
		if c.Name == sub {
			return c.Run(ctx, args[1:], stdin, stdout, stderr)
		}
	}
	fmt.Fprintf(stderr, "%s: unknown command %q\n", name, sub)
	usage()
	return 2
}

// Manifest is the structured end-of-run record every long-running binary
// (scenario, figures, sweepd serve/work) emits to stderr as one JSON
// line, `{"manifest":{...}}` — enough to diagnose any run after the
// fact: what ran (kind, batch hash, fidelity), how much (items, resume
// split), how fast (wall time, items/sec), and how it ended. stderr, not
// stdout: result streams stay byte-identical to sequential runs.
type Manifest struct {
	// Tool is the emitting binary (and subcommand, e.g. "sweepd serve").
	Tool string `json:"tool"`
	// Kind is the workload kind executed ("scenario-batch",
	// "experiments", "grid"), empty for runs outside the work registry.
	Kind string `json:"kind,omitempty"`
	// BatchSHA256 is the batch content hash — the same hash that pins
	// checkpoint journals and distributed runs, so a manifest links a
	// run to its journal and its input.
	BatchSHA256 string `json:"batch_sha256,omitempty"`
	// Fidelity is the batch's miss-matrix fidelity label.
	Fidelity string `json:"fidelity,omitempty"`
	// Items is the batch size; ItemsRun of them executed here and
	// ItemsResumed were replayed from a checkpoint.
	Items        int `json:"items"`
	ItemsRun     int `json:"items_run"`
	ItemsResumed int `json:"items_resumed,omitempty"`
	// WallMS is the run's wall time; ItemsPerSec = ItemsRun over it.
	WallMS      int64   `json:"wall_ms"`
	ItemsPerSec float64 `json:"items_per_sec"`
	// Outcome is "ok", "failed", "cancelled", or "timed_out"; Error
	// carries the failure text for the non-ok outcomes.
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

// Finish stamps the timing and outcome fields from a run's start time
// and final error: wall clock, the derived rate (rounded to 3 decimals —
// a diagnostic figure, not a measurement), and the outcome/error pair.
func (m *Manifest) Finish(start time.Time, clock obs.Clock, err error) {
	wall := clock.Now().Sub(start)
	m.WallMS = wall.Milliseconds()
	if secs := wall.Seconds(); secs > 0 && m.ItemsRun > 0 {
		m.ItemsPerSec = math.Round(float64(m.ItemsRun)/secs*1000) / 1000
	}
	switch {
	case err == nil:
		m.Outcome = "ok"
	case TimedOut(err):
		m.Outcome = "timed_out"
		m.Error = err.Error()
	case Cancelled(err):
		m.Outcome = "cancelled"
		m.Error = err.Error()
	default:
		m.Outcome = "failed"
		m.Error = err.Error()
	}
}

// EmitManifest writes the manifest to w as its one-line wire form.
// Best-effort: a broken stderr never fails a run that computed its
// results.
func EmitManifest(w io.Writer, m Manifest) {
	line, err := json.Marshal(struct {
		Manifest Manifest `json:"manifest"`
	}{m})
	if err != nil {
		return
	}
	fmt.Fprintf(w, "%s\n", line)
}

// Report writes the standard diagnostics for a fatal run error — the error
// itself, a timeout note, and the partial-progress state — and returns the
// exit status. name is the binary's diagnostic prefix.
func Report(name string, err error, p *Progress, stderr io.Writer) int {
	fmt.Fprintf(stderr, "%s: %v\n", name, err)
	switch {
	case TimedOut(err):
		fmt.Fprintf(stderr, "%s: timed out", name)
	case Cancelled(err):
		fmt.Fprintf(stderr, "%s: cancelled", name)
	default:
		return 1
	}
	if note := p.Note(); note != "" {
		fmt.Fprintf(stderr, " after %s", note)
	}
	fmt.Fprintln(stderr)
	return ExitCode(err)
}
