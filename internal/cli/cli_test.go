package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestExitCodeMapping(t *testing.T) {
	if c := ExitCode(context.Canceled); c != ExitCancelled {
		t.Errorf("cancelled run: exit %d, want %d", c, ExitCancelled)
	}
	if c := ExitCode(context.DeadlineExceeded); c != 1 {
		t.Errorf("timed-out run: exit %d, want 1", c)
	}
	if c := ExitCode(errors.New("boom")); c != 1 {
		t.Errorf("failed run: exit %d, want 1", c)
	}
	// Joined errors (the sweep engine's shape) keep their classification.
	joined := errors.Join(errors.New("sweep: item 3: x"), context.Canceled)
	if !Cancelled(joined) || ExitCode(joined) != ExitCancelled {
		t.Errorf("joined cancellation not recognized: %v", joined)
	}
}

func TestWithTimeoutExpires(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout context never expired")
	}
	if !TimedOut(ctx.Err()) {
		t.Fatalf("want DeadlineExceeded, got %v", ctx.Err())
	}
}

func TestWithTimeoutZeroIsUnbounded(t *testing.T) {
	base := context.Background()
	ctx, cancel := WithTimeout(base, 0)
	defer cancel()
	if ctx != base {
		t.Fatal("zero timeout must return the parent context unchanged")
	}
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout must not set a deadline")
	}
}

func TestSignalContext(t *testing.T) {
	ctx, stop := SignalContext()
	if ctx.Err() != nil {
		t.Fatalf("fresh context already done: %v", ctx.Err())
	}
	stop()
}

func TestProgressTicker(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress("figures", "experiments", &buf)
	hook := p.Hook()
	hook(1, 3)
	hook(2, 3)
	out := buf.String()
	if !strings.Contains(out, "figures: 1/3 experiments") || !strings.Contains(out, "figures: 2/3 experiments") {
		t.Fatalf("ticker lines missing:\n%s", out)
	}
	if p.Note() != "2/3 experiments" {
		t.Fatalf("note = %q", p.Note())
	}
}

// fakeClock is a manually advanced time source for pinning rate/ETA
// arithmetic.
type fakeClock struct{ now time.Time }

func (c *fakeClock) clock() obs.Clock        { return func() time.Time { return c.now } }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

// TestProgressRateAndETA pins the ticker's throughput math against an
// injected clock: the rate covers completions observed since the first
// hook call, the ETA extrapolates it over the remainder, and the final
// line drops the ETA.
func TestProgressRateAndETA(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var buf bytes.Buffer
	p := NewProgress("scenario", "points", &buf).WithClock(clk.clock())
	hook := p.Hook()

	hook(1, 100) // first observation: no rate measurable yet
	if got := strings.TrimSuffix(buf.String(), "\n"); got != "scenario: 1/100 points" {
		t.Fatalf("first line = %q, want no rate suffix", got)
	}

	buf.Reset()
	clk.advance(2 * time.Second)
	hook(5, 100) // 4 completions over 2s → 2.0/s; 95 left → ~48s
	if got := strings.TrimSuffix(buf.String(), "\n"); got != "scenario: 5/100 points, 2.0 points/s, ~48s left" {
		t.Fatalf("rate line = %q", got)
	}

	buf.Reset()
	clk.advance(7 * time.Second)
	hook(100, 100) // 99 over 9s → 11.0/s; done → no ETA
	if got := strings.TrimSuffix(buf.String(), "\n"); got != "scenario: 100/100 points, 11.0 points/s" {
		t.Fatalf("final line = %q", got)
	}
}

// TestProgressRateStalledClock guards the degenerate cases: a clock that
// has not advanced, or a hook reporting no new completions, must not
// print a rate (let alone divide by zero).
func TestProgressRateStalledClock(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var buf bytes.Buffer
	p := NewProgress("x", "items", &buf).WithClock(clk.clock())
	hook := p.Hook()
	hook(1, 10)
	hook(2, 10) // clock unchanged → elapsed 0 → no suffix
	for _, line := range strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n") {
		if strings.Contains(line, "/s") {
			t.Fatalf("rate printed with stalled clock: %q", line)
		}
	}
}

// TestProgressTickerThrottling pins the ~0.1% throttle: beyond 1000
// items only every total/1000th completion (and the final one) prints.
func TestProgressTickerThrottling(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress("grid", "points", &buf)
	hook := p.Hook()
	const total = 4000 // total/1000 = 4 → prints at multiples of 4, plus the final
	for done := 1; done <= total; done++ {
		hook(done, total)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != total/4 {
		t.Fatalf("printed %d ticker lines for %d items, want %d", lines, total, total/4)
	}
	if !strings.Contains(buf.String(), fmt.Sprintf("grid: %d/%d points", total, total)) {
		t.Fatalf("final completion line missing:\n...%s", buf.String()[len(buf.String())-200:])
	}

	// At or below 1000 items every completion prints.
	buf.Reset()
	small := NewProgress("s", "items", &buf)
	h := small.Hook()
	for done := 1; done <= 1000; done++ {
		h(done, 1000)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1000 {
		t.Fatalf("small run printed %d lines, want 1000", got)
	}
}

// TestProgressTickerThrottlingOffMultipleFinal checks the final
// completion prints even when total is not a multiple of the stride.
func TestProgressTickerThrottlingOffMultipleFinal(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress("g", "points", &buf)
	hook := p.Hook()
	const total = 4001 // stride 4; 4001 % 4 != 0 → final must still print
	for done := 1; done <= total; done++ {
		hook(done, total)
	}
	if !strings.Contains(buf.String(), "g: 4001/4001 points") {
		t.Fatal("final completion line missing for off-stride total")
	}
}

func TestProgressConcurrentHook(t *testing.T) {
	p := NewProgress("x", "items", nil)
	hook := p.Hook()
	var wg sync.WaitGroup
	for i := 1; i <= 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hook(i, 50)
		}(i)
	}
	wg.Wait()
	if p.Note() != "50/50 items" {
		t.Fatalf("note = %q, want 50/50 items", p.Note())
	}
}

func TestProgressNoteEmptyBeforeWork(t *testing.T) {
	p := NewProgress("x", "items", nil)
	if p.Note() != "" {
		t.Fatalf("note = %q before any completion", p.Note())
	}
}

func TestReport(t *testing.T) {
	p := NewProgress("scenario", "scenarios", nil)
	p.Hook()(2, 5)
	var buf bytes.Buffer
	if code := Report("scenario", context.Canceled, p, &buf); code != ExitCancelled {
		t.Fatalf("exit %d, want %d", code, ExitCancelled)
	}
	if !strings.Contains(buf.String(), "cancelled after 2/5 scenarios") {
		t.Fatalf("missing partial-progress note:\n%s", buf.String())
	}
	buf.Reset()
	if code := Report("scenario", errors.New("boom"), p, &buf); code != 1 {
		t.Fatalf("plain failure: exit %d, want 1", code)
	}
	buf.Reset()
	if code := Report("scenario", context.DeadlineExceeded, p, &buf); code != 1 {
		t.Fatalf("timeout: exit %d, want 1", code)
	}
	if !strings.Contains(buf.String(), "timed out after 2/5 scenarios") {
		t.Fatalf("missing timeout note:\n%s", buf.String())
	}
}

// TestManifestFinishAndEmit pins the manifest schema: one JSON line
// under the "manifest" key, wall time and rate from the injected clock,
// outcome classification from the run error.
func TestManifestFinishAndEmit(t *testing.T) {
	clk := &fakeClock{now: time.Unix(2000, 0)}
	start := clk.now
	clk.advance(4 * time.Second)

	m := Manifest{
		Tool: "scenario", Kind: "grid", BatchSHA256: "abc123", Fidelity: "analytical",
		Items: 1200, ItemsRun: 1000, ItemsResumed: 200,
	}
	m.Finish(start, clk.clock(), nil)
	if m.WallMS != 4000 || m.ItemsPerSec != 250 || m.Outcome != "ok" || m.Error != "" {
		t.Fatalf("finished manifest = %+v", m)
	}

	var buf bytes.Buffer
	EmitManifest(&buf, m)
	line := buf.String()
	if strings.Count(line, "\n") != 1 || !strings.HasSuffix(line, "\n") {
		t.Fatalf("manifest must be exactly one line: %q", line)
	}
	var decoded struct {
		Manifest Manifest `json:"manifest"`
	}
	if err := json.Unmarshal([]byte(line), &decoded); err != nil {
		t.Fatalf("manifest line does not parse: %v\n%s", err, line)
	}
	if decoded.Manifest != m {
		t.Fatalf("round trip:\n got %+v\nwant %+v", decoded.Manifest, m)
	}

	// Outcome classification for the three failure shapes.
	for _, tc := range []struct {
		err  error
		want string
	}{
		{context.Canceled, "cancelled"},
		{context.DeadlineExceeded, "timed_out"},
		{errors.New("boom"), "failed"},
	} {
		var f Manifest
		f.Finish(start, clk.clock(), tc.err)
		if f.Outcome != tc.want || f.Error == "" {
			t.Errorf("Finish(%v) = outcome %q error %q, want %q", tc.err, f.Outcome, f.Error, tc.want)
		}
	}
}

func TestDispatch(t *testing.T) {
	cmds := []Command{
		{Name: "serve", Summary: "coordinate a sweep", Run: func(ctx context.Context, args []string, _ io.Reader, stdout, _ io.Writer) int {
			fmt.Fprintf(stdout, "serve %v", args)
			return 0
		}},
		{Name: "work", Summary: "execute leased units", Run: func(context.Context, []string, io.Reader, io.Writer, io.Writer) int {
			return 7
		}},
	}
	var stdout, stderr bytes.Buffer

	if code := Dispatch(context.Background(), "sweepd", cmds, []string{"serve", "-x"}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("serve: exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != "serve [-x]" {
		t.Errorf("subcommand args not forwarded: %q", stdout.String())
	}
	if code := Dispatch(context.Background(), "sweepd", cmds, []string{"work"}, nil, &stdout, &stderr); code != 7 {
		t.Errorf("work: exit %d, want 7", code)
	}

	stderr.Reset()
	if code := Dispatch(context.Background(), "sweepd", cmds, nil, nil, &stdout, &stderr); code != 2 {
		t.Errorf("no subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "serve") || !strings.Contains(stderr.String(), "coordinate a sweep") {
		t.Errorf("usage should list commands:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := Dispatch(context.Background(), "sweepd", cmds, []string{"bogus"}, nil, &stdout, &stderr); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown command "bogus"`) {
		t.Errorf("missing unknown-command diagnostic:\n%s", stderr.String())
	}
	if code := Dispatch(context.Background(), "sweepd", cmds, []string{"help"}, nil, &stdout, &stderr); code != 2 {
		t.Errorf("help: exit %d, want 2", code)
	}
}
