package cli

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestExitCodeMapping(t *testing.T) {
	if c := ExitCode(context.Canceled); c != ExitCancelled {
		t.Errorf("cancelled run: exit %d, want %d", c, ExitCancelled)
	}
	if c := ExitCode(context.DeadlineExceeded); c != 1 {
		t.Errorf("timed-out run: exit %d, want 1", c)
	}
	if c := ExitCode(errors.New("boom")); c != 1 {
		t.Errorf("failed run: exit %d, want 1", c)
	}
	// Joined errors (the sweep engine's shape) keep their classification.
	joined := errors.Join(errors.New("sweep: item 3: x"), context.Canceled)
	if !Cancelled(joined) || ExitCode(joined) != ExitCancelled {
		t.Errorf("joined cancellation not recognized: %v", joined)
	}
}

func TestWithTimeoutExpires(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout context never expired")
	}
	if !TimedOut(ctx.Err()) {
		t.Fatalf("want DeadlineExceeded, got %v", ctx.Err())
	}
}

func TestWithTimeoutZeroIsUnbounded(t *testing.T) {
	base := context.Background()
	ctx, cancel := WithTimeout(base, 0)
	defer cancel()
	if ctx != base {
		t.Fatal("zero timeout must return the parent context unchanged")
	}
	if _, ok := ctx.Deadline(); ok {
		t.Fatal("zero timeout must not set a deadline")
	}
}

func TestSignalContext(t *testing.T) {
	ctx, stop := SignalContext()
	if ctx.Err() != nil {
		t.Fatalf("fresh context already done: %v", ctx.Err())
	}
	stop()
}

func TestProgressTicker(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress("figures", "experiments", &buf)
	hook := p.Hook()
	hook(1, 3)
	hook(2, 3)
	out := buf.String()
	if !strings.Contains(out, "figures: 1/3 experiments") || !strings.Contains(out, "figures: 2/3 experiments") {
		t.Fatalf("ticker lines missing:\n%s", out)
	}
	if p.Note() != "2/3 experiments" {
		t.Fatalf("note = %q", p.Note())
	}
}

func TestProgressConcurrentHook(t *testing.T) {
	p := NewProgress("x", "items", nil)
	hook := p.Hook()
	var wg sync.WaitGroup
	for i := 1; i <= 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			hook(i, 50)
		}(i)
	}
	wg.Wait()
	if p.Note() != "50/50 items" {
		t.Fatalf("note = %q, want 50/50 items", p.Note())
	}
}

func TestProgressNoteEmptyBeforeWork(t *testing.T) {
	p := NewProgress("x", "items", nil)
	if p.Note() != "" {
		t.Fatalf("note = %q before any completion", p.Note())
	}
}

func TestReport(t *testing.T) {
	p := NewProgress("scenario", "scenarios", nil)
	p.Hook()(2, 5)
	var buf bytes.Buffer
	if code := Report("scenario", context.Canceled, p, &buf); code != ExitCancelled {
		t.Fatalf("exit %d, want %d", code, ExitCancelled)
	}
	if !strings.Contains(buf.String(), "cancelled after 2/5 scenarios") {
		t.Fatalf("missing partial-progress note:\n%s", buf.String())
	}
	buf.Reset()
	if code := Report("scenario", errors.New("boom"), p, &buf); code != 1 {
		t.Fatalf("plain failure: exit %d, want 1", code)
	}
	buf.Reset()
	if code := Report("scenario", context.DeadlineExceeded, p, &buf); code != 1 {
		t.Fatalf("timeout: exit %d, want 1", code)
	}
	if !strings.Contains(buf.String(), "timed out after 2/5 scenarios") {
		t.Fatalf("missing timeout note:\n%s", buf.String())
	}
}

func TestDispatch(t *testing.T) {
	cmds := []Command{
		{Name: "serve", Summary: "coordinate a sweep", Run: func(ctx context.Context, args []string, _ io.Reader, stdout, _ io.Writer) int {
			fmt.Fprintf(stdout, "serve %v", args)
			return 0
		}},
		{Name: "work", Summary: "execute leased units", Run: func(context.Context, []string, io.Reader, io.Writer, io.Writer) int {
			return 7
		}},
	}
	var stdout, stderr bytes.Buffer

	if code := Dispatch(context.Background(), "sweepd", cmds, []string{"serve", "-x"}, nil, &stdout, &stderr); code != 0 {
		t.Fatalf("serve: exit %d, stderr: %s", code, stderr.String())
	}
	if stdout.String() != "serve [-x]" {
		t.Errorf("subcommand args not forwarded: %q", stdout.String())
	}
	if code := Dispatch(context.Background(), "sweepd", cmds, []string{"work"}, nil, &stdout, &stderr); code != 7 {
		t.Errorf("work: exit %d, want 7", code)
	}

	stderr.Reset()
	if code := Dispatch(context.Background(), "sweepd", cmds, nil, nil, &stdout, &stderr); code != 2 {
		t.Errorf("no subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "serve") || !strings.Contains(stderr.String(), "coordinate a sweep") {
		t.Errorf("usage should list commands:\n%s", stderr.String())
	}
	stderr.Reset()
	if code := Dispatch(context.Background(), "sweepd", cmds, []string{"bogus"}, nil, &stdout, &stderr); code != 2 {
		t.Errorf("unknown subcommand: exit %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), `unknown command "bogus"`) {
		t.Errorf("missing unknown-command diagnostic:\n%s", stderr.String())
	}
	if code := Dispatch(context.Background(), "sweepd", cmds, []string{"help"}, nil, &stdout, &stderr); code != 2 {
		t.Errorf("help: exit %d, want 2", code)
	}
}
