package docs

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite docs/wire-protocol.md from the live fixtures")

// TestWireProtocolDoc regenerates the wire-protocol document from live
// fixtures and compares it against the committed file. `go test
// ./internal/docs -update` (the `make docs` target) rewrites it; CI
// runs the comparison, so the committed doc can never drift from the
// protocol the handlers actually speak.
func TestWireProtocolDoc(t *testing.T) {
	got, err := WireProtocol(t.Context(), t.TempDir())
	if err != nil {
		t.Fatalf("WireProtocol: %v", err)
	}
	path := filepath.Join("..", "..", "docs", "wire-protocol.md")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("write %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run `make docs` to generate it): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s is stale: the captured protocol no longer matches the committed doc.\nRun `make docs` and commit the result.\n%s",
			path, firstDiff(want, got))
	}
}

// TestWireProtocolDeterministic pins the generator itself: two runs in
// fresh stores must produce identical bytes, or `make docs` would churn
// the committed file on every invocation.
func TestWireProtocolDeterministic(t *testing.T) {
	a, err := WireProtocol(t.Context(), t.TempDir())
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	b, err := WireProtocol(t.Context(), t.TempDir())
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("generator is nondeterministic:\n%s", firstDiff(a, b))
	}
}

// firstDiff renders the first differing line of two documents for a
// readable failure message.
func firstDiff(want, got []byte) string {
	wl := strings.Split(string(want), "\n")
	gl := strings.Split(string(got), "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first difference at line %d:\n  committed: %s\n  generated: %s", i+1, w, g)
		}
	}
	return "documents differ only in length"
}
