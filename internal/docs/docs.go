// Package docs renders docs/wire-protocol.md from live protocol
// fixtures: every example request and response in that file is captured
// from a real coordinator and a real multi-batch service — the same
// handlers cmd/sweepd serves — executed in-process against the
// repository's reference scenario fixtures under a fixed clock. The
// golden test (TestWireProtocolDoc) fails whenever the captured
// exchanges stop matching the committed file, so the documentation
// cannot drift from the implementation; `make docs` regenerates it.
package docs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/dist"
	"repro/internal/dist/store"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/work"
)

// docEpoch is the fixed instant every fixture runs at: all elapsed/ago
// fields in the captured responses render as 0, keeping the generated
// file byte-stable across regenerations.
var docEpoch = time.Unix(1700000000, 0).UTC()

// docClock is the injected time source for every fixture coordinator.
func docClock() time.Time { return docEpoch }

// fixtureBatch is the two-scenario workload the examples run: small
// enough to execute during doc generation, real enough that the result
// lines are the genuine scenario NDJSON schema.
const fixtureBatch = `{"scenarios":[
	{"name":"small","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000},
	{"name":"large","l1_kb":32,"l2_kb":512,"workload":"tpcc","accesses":20000}
]}`

// fixtureExtra is a second, distinct batch used to demonstrate
// cancellation.
const fixtureExtra = `{"scenarios":[
	{"name":"doomed","l1_kb":16,"l2_kb":512,"workload":"tpcc","accesses":20000}
]}`

// exchange is one captured request/response pair plus the prose that
// introduces it in the rendered document.
type exchange struct {
	heading string
	prose   string
	method  string
	path    string
	reqBody []byte // nil = no body; rendered as JSON or NDJSON by sniffing
	status  int
	resp    []byte
}

// WireProtocol renders the complete wire-protocol document. storeDir is
// a scratch directory for the service fixtures' result store (the
// caller's t.TempDir()); nothing under it appears in the output.
func WireProtocol(ctx context.Context, storeDir string) ([]byte, error) {
	var doc bytes.Buffer
	doc.WriteString(header)

	oneShot, err := captureOneShot(ctx)
	if err != nil {
		return nil, fmt.Errorf("docs: one-shot fixtures: %w", err)
	}
	doc.WriteString(oneShotIntro)
	for _, e := range oneShot {
		if err := renderExchange(&doc, e); err != nil {
			return nil, err
		}
	}

	service, err := captureService(ctx, storeDir)
	if err != nil {
		return nil, fmt.Errorf("docs: service fixtures: %w", err)
	}
	doc.WriteString(serviceIntro)
	for _, e := range service {
		if err := renderExchange(&doc, e); err != nil {
			return nil, err
		}
	}

	doc.WriteString(footer)
	return doc.Bytes(), nil
}

// captureOneShot drives the single-batch coordinator protocol end to
// end and records the documented exchanges.
func captureOneShot(ctx context.Context) ([]exchange, error) {
	b, err := scenario.LoadBatch(strings.NewReader(fixtureBatch))
	if err != nil {
		return nil, err
	}
	spec, err := dist.SpecOf(b)
	if err != nil {
		return nil, err
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	c, err := dist.New(cctx, spec, dist.Config{Units: 2, LeaseTTL: time.Minute, Clock: obs.Clock(docClock)})
	if err != nil {
		return nil, err
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	var out []exchange
	cap := func(heading, prose, method, path, contentType string, body []byte) ([]byte, error) {
		status, resp, err := roundTrip(ctx, srv, method, path, contentType, "", body)
		if err != nil {
			return nil, err
		}
		out = append(out, exchange{heading: heading, prose: prose, method: method,
			path: path, reqBody: body, status: status, resp: resp})
		return resp, nil
	}

	if _, err := cap("Lease a unit", leaseProse,
		http.MethodPost, "/v1/lease", "application/json",
		[]byte(`{"worker":"w1"}`)); err != nil {
		return nil, err
	}
	if _, err := cap("Heartbeat", heartbeatProse,
		http.MethodPost, "/v1/heartbeat", "application/json",
		[]byte(`{"worker":"w1","unit":0}`)); err != nil {
		return nil, err
	}
	line0, err := b.RunItem(ctx, 0)
	if err != nil {
		return nil, err
	}
	if _, err := cap("Report a unit's results", resultProse,
		http.MethodPost, "/v1/result?worker=w1&unit=0&exec_ms=12", "application/x-ndjson",
		append(append([]byte{}, line0...), '\n')); err != nil {
		return nil, err
	}
	if _, err := cap("Report a deterministic failure", failProse,
		http.MethodPost, "/v1/fail", "application/json",
		[]byte(`{"worker":"w1","unit":1,"error":"example: trace generator refused the workload"}`)); err != nil {
		return nil, err
	}
	if _, err := cap("Operator status probe", statusProse,
		http.MethodGet, "/v1/status", "", nil); err != nil {
		return nil, err
	}

	// A token-gated front: the same handler behind RequireToken answers
	// 401 to anything without the bearer secret.
	gated := httptest.NewServer(dist.RequireToken("s3cret", c.Handler()))
	defer gated.Close()
	status, resp, err := roundTrip(ctx, gated, http.MethodGet, "/v1/status", "", "", nil)
	if err != nil {
		return nil, err
	}
	out = append(out, exchange{heading: "Authentication", prose: tokenProse,
		method: http.MethodGet, path: "/v1/status", status: status, resp: resp})

	// The batch failed above (unit 1), so the coordinator emits what it
	// has and Wait reports the failure; the doc only needed the captures.
	cancel()
	for range c.Results() {
	}
	_ = c.Wait()
	return out, nil
}

// captureService drives the multi-batch service API end to end and
// records the documented exchanges.
func captureService(ctx context.Context, storeDir string) ([]exchange, error) {
	b, err := scenario.LoadBatch(strings.NewReader(fixtureBatch))
	if err != nil {
		return nil, err
	}
	st, err := store.Open(storeDir)
	if err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	svc, err := dist.NewService(sctx, dist.ServiceConfig{
		Store: st, Units: 1, LeaseTTL: time.Minute, Clock: obs.Clock(docClock),
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	var out []exchange
	cap := func(heading, prose, method, path, contentType string, body []byte) ([]byte, error) {
		status, resp, err := roundTrip(ctx, srv, method, path, contentType, "", body)
		if err != nil {
			return nil, err
		}
		out = append(out, exchange{heading: heading, prose: prose, method: method,
			path: path, reqBody: body, status: status, resp: resp})
		return resp, nil
	}

	payload, err := b.MarshalRange(sweep.Range{Lo: 0, Hi: b.Len()})
	if err != nil {
		return nil, err
	}
	submitBody, err := json.Marshal(map[string]json.RawMessage{
		"kind":    json.RawMessage(fmt.Sprintf("%q", b.Kind())),
		"payload": payload,
	})
	if err != nil {
		return nil, err
	}
	resp, err := cap("Submit a batch", submitProse,
		http.MethodPost, "/v1/batches", "application/json", submitBody)
	if err != nil {
		return nil, err
	}
	var stat dist.BatchStatus
	if err := json.Unmarshal(resp, &stat); err != nil {
		return nil, err
	}
	id := stat.ID

	if _, err := cap("Lease against the service", serviceLeaseProse,
		http.MethodPost, "/v1/lease", "application/json",
		[]byte(`{"worker":"w1"}`)); err != nil {
		return nil, err
	}
	var lines []byte
	for i := 0; i < b.Len(); i++ {
		line, err := b.RunItem(ctx, i)
		if err != nil {
			return nil, err
		}
		lines = append(append(lines, line...), '\n')
	}
	if _, err := cap("Report against the service", serviceResultProse,
		http.MethodPost, "/v1/result?worker=w1&unit=0&exec_ms=9&batch="+id, "application/x-ndjson",
		lines); err != nil {
		return nil, err
	}
	if _, err := cap("Poll one batch", batchStatusProse,
		http.MethodGet, "/v1/batches/"+id, "", nil); err != nil {
		return nil, err
	}
	if _, err := cap("Stream a batch's results", resultsProse,
		http.MethodGet, "/v1/batches/"+id+"/results", "", nil); err != nil {
		return nil, err
	}
	if _, err := cap("Resubmit the identical batch", resubmitProse,
		http.MethodPost, "/v1/batches", "application/json", submitBody); err != nil {
		return nil, err
	}

	// A second batch, submitted and immediately cancelled.
	b2, err := scenario.LoadBatch(strings.NewReader(fixtureExtra))
	if err != nil {
		return nil, err
	}
	payload2, err := b2.MarshalRange(sweep.Range{Lo: 0, Hi: b2.Len()})
	if err != nil {
		return nil, err
	}
	submitBody2, err := json.Marshal(map[string]json.RawMessage{
		"kind":    json.RawMessage(fmt.Sprintf("%q", b2.Kind())),
		"payload": payload2,
	})
	if err != nil {
		return nil, err
	}
	_, body2, err := roundTrip(ctx, srv, http.MethodPost, "/v1/batches", "application/json", "", submitBody2)
	if err != nil {
		return nil, err
	}
	var stat2 dist.BatchStatus
	if err := json.Unmarshal(body2, &stat2); err != nil {
		return nil, err
	}
	if _, err := cap("Cancel a batch", cancelProse,
		http.MethodDelete, "/v1/batches/"+stat2.ID, "", nil); err != nil {
		return nil, err
	}
	if _, err := cap("List the queue", listProse,
		http.MethodGet, "/v1/batches", "", nil); err != nil {
		return nil, err
	}
	if _, err := cap("Service status probe", serviceStatusProse,
		http.MethodGet, "/v1/status", "", nil); err != nil {
		return nil, err
	}
	return out, nil
}

// roundTrip performs one HTTP exchange against a fixture server and
// returns the status code and response body.
func roundTrip(ctx context.Context, srv *httptest.Server, method, path, contentType, token string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, srv.URL+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// renderExchange writes one captured exchange as a documentation
// section.
func renderExchange(w *bytes.Buffer, e exchange) error {
	fmt.Fprintf(w, "### %s\n\n", e.heading)
	if e.prose != "" {
		w.WriteString(strings.TrimSpace(e.prose))
		w.WriteString("\n\n")
	}
	fmt.Fprintf(w, "```\n%s %s\n```\n\n", e.method, e.path)
	if e.reqBody != nil {
		label := "Request body"
		if bytes.Count(bytes.TrimRight(e.reqBody, "\n"), []byte("\n")) > 0 || !json.Valid(e.reqBody) {
			label += " (NDJSON)"
		}
		fmt.Fprintf(w, "%s:\n\n", label)
		if err := writeBody(w, e.reqBody); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "Response — %d:\n\n", e.status)
	return writeBody(w, e.resp)
}

// writeBody renders a JSON or NDJSON body as an indented fenced block.
func writeBody(w *bytes.Buffer, body []byte) error {
	w.WriteString("```json\n")
	trimmed := bytes.TrimRight(body, "\n")
	for _, line := range bytes.Split(trimmed, []byte("\n")) {
		var pretty bytes.Buffer
		if err := json.Indent(&pretty, line, "", "  "); err != nil {
			return fmt.Errorf("docs: fixture produced invalid JSON: %w (%.80s)", err, line)
		}
		w.Write(pretty.Bytes())
		w.WriteByte('\n')
	}
	w.WriteString("```\n\n")
	return nil
}

// Interface checks: the fixtures must stay real work.Batch values, or
// the captured payloads stop matching what sweepd ships.
var _ work.Batch = scenario.Batch{}
