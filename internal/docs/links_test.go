package docs

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// linkRE matches inline markdown links: [text](target). Reference-style
// links are not used in this repo's docs.
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks checks every relative link in the maintained docs
// (README, ROADMAP, docs/*.md) against the working tree, so a renamed
// file or a typo'd path fails CI instead of 404ing a reader. External
// URLs and pure anchors are skipped — no network in tests.
func TestMarkdownLinks(t *testing.T) {
	root := filepath.Join("..", "..")
	files := []string{
		filepath.Join(root, "README.md"),
		filepath.Join(root, "ROADMAP.md"),
	}
	docGlob, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docGlob...)
	if len(docGlob) == 0 {
		t.Fatal("no docs/*.md found — wrong working directory?")
	}

	checked := 0
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			t.Fatalf("read %s: %v", file, err)
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(file), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", file, m[1], resolved)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no relative links found — the checker is matching nothing")
	}
}
