// Package grid turns a compact JSON document of design-space axes into a
// full factorial sweep over scenario configurations — the paper's central
// artifact (L1/L2 capacities × assignment scheme × workload × AMAT budget
// grids) as a first-class workload instead of a hand-enumerated scenario
// list. A grid.Spec declares axes over the existing scenario.Config
// fields; Expand resolves the cross product deterministically (row-major
// over a documented axis order) into a grid.Batch, which implements
// work.Batch — so streaming, checkpoint/resume, and sweepd distribution
// come from the unified driver with no new execution code.
//
// Expansion is lazy: a Batch stores the spec and a point range, never a
// point slab, and computes point i's config on demand from the row-major
// index arithmetic. Memory is O(in-flight points) — the worker count of
// the run — not O(grid), which is what lets HardMaxPoints sit in the
// tens of millions.
//
// The document is a top-level "grid" object:
//
//	{
//	  "grid": {
//	    "name": "g-l1{l1_kb}-l2{l2_kb}-{workload}-s{scheme}",
//	    "axes": {
//	      "l1_kb":   [16, 32],
//	      "l2_kb":   [256, 512, 1024],
//	      "workload": ["tpcc", "spec2000"],
//	      "scheme":  [2, 3]
//	    },
//	    "base": {"accesses": 60000},
//	    "max_points": 4096
//	  }
//	}
//
// Axes may cover l1_kb, l2_kb, workload, scheme, amat_budget_ps,
// fast_memory, and fidelity. Every other scenario field (and any axed
// field the spec omits) comes from "base", an ordinary scenario config
// without a name.
// Expansion is row-major over the canonical axis order — l1_kb, l2_kb,
// workload, scheme, amat_budget_ps, fast_memory, fidelity, later axes
// varying faster; the declaration order of the JSON keys is irrelevant —
// so point order is a pure function of the spec.
// Each point's name renders from the "name" template (placeholders are
// the axis field names in braces; fast_memory renders as "fast"/"slow");
// expanded names must be unique, which forces the template to mention
// every axis that actually varies — checked analytically at Validate,
// without expanding anything. Grids larger than max_points (default
// DefaultMaxPoints, hard-capped at HardMaxPoints) are refused at
// expansion, before any simulation runs.
package grid
