package grid

import (
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/work"
)

// TestItemKeyMatchesEquivalentScenario pins the cross-kind half of the
// work.ItemKeyer contract: a grid point and a hand-written scenario that
// expand/default to the same config share one item key, so the dist store
// can serve either from results produced by the other. The scenario batch
// is loaded from JSON (exercising LoadBatch defaulting), not copied from
// the grid's expansion.
func TestItemKeyMatchesEquivalentScenario(t *testing.T) {
	gb := loadTiny(t)
	// The hand-written equivalent of grid point 1: (16, 512) under the
	// generated name, defaults spelled out only where the JSON form needs
	// them.
	sb, err := scenario.LoadBatch(strings.NewReader(`{"scenarios":[
		{"name":"g-l116-l2512-tpcc-s2","l1_kb":16,"l2_kb":512,"workload":"tpcc","accesses":20000}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	gk, err := gb.ItemKey(1)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := sb.ItemKey(0)
	if err != nil {
		t.Fatal(err)
	}
	if gk != sk {
		t.Fatalf("grid point key %q != equivalent scenario key %q", gk, sk)
	}
	if !strings.HasPrefix(gk, "scenario/") {
		t.Fatalf("key %q not in the scenario/ namespace", gk)
	}
	// A different point must not collide.
	gk0, err := gb.ItemKey(0)
	if err != nil {
		t.Fatal(err)
	}
	if gk0 == gk {
		t.Fatalf("distinct points share key %q", gk)
	}
}

// TestItemKeyerCoverage pins which kinds implement work.ItemKeyer — the
// grid and scenario kinds must, or overlap caching silently degrades to
// whole-batch-only hits.
func TestItemKeyerCoverage(t *testing.T) {
	var b work.Batch = loadTiny(t)
	if _, ok := b.(work.ItemKeyer); !ok {
		t.Fatal("grid.Batch does not implement work.ItemKeyer")
	}
	var s work.Batch = scenario.Batch{}
	if _, ok := s.(work.ItemKeyer); !ok {
		t.Fatal("scenario.Batch does not implement work.ItemKeyer")
	}
}
