package grid

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

var update = flag.Bool("update", false, "regenerate golden files")

// goldenFixtures pairs each example grid spec with its golden expansion.
// The analytical variant additionally pins the fidelity axis plumbing
// and the fixed-point rendering of large float budgets in point names.
var goldenFixtures = []struct {
	fixture string
	golden  string
}{
	{"../../examples/gridsweep/spec.json", "testdata/expand.golden.json"},
	{"../../examples/gridsweep/spec-analytical.json", "testdata/expand-analytical.golden.json"},
}

// TestExpandGolden expands the example grid specs and compares the
// materialized scenario batches — point order, names, defaulted fields —
// against the checked-in golden files. Expansion is pure (no
// simulation), so this pins the full deterministic-expansion contract:
// row-major order, canonical axis order, name templating, and
// defaulting. Regenerate with:
//
//	go test ./internal/grid -run TestExpandGolden -update
func TestExpandGolden(t *testing.T) {
	for _, gf := range goldenFixtures {
		t.Run(filepath.Base(gf.fixture), func(t *testing.T) {
			f, err := os.Open(gf.fixture)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			s, err := Load(f)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Expand()
			if err != nil {
				t.Fatal(err)
			}
			doc := struct {
				Scenarios []scenario.Config `json:"scenarios"`
			}{Scenarios: b.Configs()}
			out, err := json.MarshalIndent(doc, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got := string(out) + "\n"

			if *update {
				if err := os.MkdirAll(filepath.Dir(gf.golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(gf.golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("regenerated %s", gf.golden)
				return
			}

			want, err := os.ReadFile(gf.golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("grid expansion drifted from %s (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
					gf.golden, got, want)
			}
		})
	}
}
