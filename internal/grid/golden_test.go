package grid

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
)

var update = flag.Bool("update", false, "regenerate golden files")

const fixturePath = "../../examples/gridsweep/spec.json"
const goldenPath = "testdata/expand.golden.json"

// TestExpandGolden expands the example grid spec and compares the
// materialized scenario batch — point order, names, defaulted fields —
// against the checked-in golden file. Expansion is pure (no simulation),
// so this pins the full deterministic-expansion contract: row-major
// order, canonical axis order, name templating, and defaulting.
// Regenerate with:
//
//	go test ./internal/grid -run TestExpandGolden -update
func TestExpandGolden(t *testing.T) {
	f, err := os.Open(fixturePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	s, err := Load(f)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	doc := struct {
		Scenarios []scenario.Config `json:"scenarios"`
	}{Scenarios: b.Configs()}
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got := string(out) + "\n"

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("regenerated %s", goldenPath)
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("grid expansion drifted from %s (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
			goldenPath, got, want)
	}
}
