package grid

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/work"
)

// DefaultSlack is the relative dominance margin of the analytical
// shortlist: a point is culled from trace refinement only when some other
// feasible point beats it by the whole margin on *both* objectives. If
// the analytical pass's relative error on leakage and AMAT is at most e,
// a margin of (1+e)²−1 guarantees no true-front point is culled (the
// culling witness then dominates it in true coordinates too).
// profile.Tolerance bounds the analytical miss-rate error at 0.04, giving
// 0.0816; the default adds headroom because miss-rate error propagates
// nonlinearly through the knob optimization — TestRefineAgreesWithTraceFrontier
// pins that the band is wide enough on the registered suites.
const DefaultSlack = 0.25

// RefineCheckpointSuffix names the second-phase journal: a refined run
// checkpointing to PATH journals its analytical pass to PATH and its
// trace shortlist to PATH+RefineCheckpointSuffix.
const RefineCheckpointSuffix = ".refine"

// Shortlist returns the input indices (ascending) of the candidates that
// survive slack-relaxed Pareto dominance: point p is dropped only when
// some feasible q has q.AMAT ≤ p.AMAT/(1+slack) and q.leakage ≤
// p.leakage/(1+slack). With slack > 0 this keeps the whole front plus
// the near-front band whose members an evaluation error of up to ~slack/2
// per objective could promote; slack ≤ 0 means DefaultSlack. O(n log n).
func (f *Frontier) Shortlist(slack float64) []int {
	if slack <= 0 {
		slack = DefaultSlack
	}
	sorted := append([]frontierCand(nil), f.cand...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].amatPS != sorted[j].amatPS {
			return sorted[i].amatPS < sorted[j].amatPS
		}
		if sorted[i].leakageMW != sorted[j].leakageMW {
			return sorted[i].leakageMW < sorted[j].leakageMW
		}
		return sorted[i].idx < sorted[j].idx
	})
	// minLeak[k] = min leakage over sorted[0..k] — the best any point
	// with AMAT ≤ sorted[k].AMAT achieves.
	minLeak := make([]float64, len(sorted))
	for k, c := range sorted {
		minLeak[k] = c.leakageMW
		if k > 0 && minLeak[k-1] < minLeak[k] {
			minLeak[k] = minLeak[k-1]
		}
	}
	out := []int{}
	for _, c := range sorted {
		ta := c.amatPS / (1 + slack)
		// Rightmost candidate with AMAT ≤ ta; all have strictly smaller
		// AMAT than c (slack > 0), so c never witnesses against itself.
		k := sort.Search(len(sorted), func(k int) bool { return sorted[k].amatPS > ta }) - 1
		if k >= 0 && minLeak[k] <= c.leakageMW/(1+slack) {
			continue
		}
		out = append(out, c.idx)
	}
	sort.Ints(out)
	return out
}

// Derived materializes the given grid points (absolute batch indices,
// typically a Shortlist) as a plain scenario batch at the given fidelity
// — the already-registered "scenarios" work kind, so the derived batch
// streams, checkpoints, and distributes through the same driver as any
// hand-written batch. Point names are preserved; only the fidelity
// changes, so the derived batch's content hash pins both the shortlist
// and the refinement fidelity.
func (b *Batch) Derived(indices []int, fidelity string) (scenario.Batch, error) {
	if !profile.ValidFidelity(fidelity) {
		return scenario.Batch{}, fmt.Errorf("grid: unknown derived fidelity %q", fidelity)
	}
	if len(indices) == 0 {
		return scenario.Batch{}, fmt.Errorf("grid: deriving an empty batch")
	}
	cfgs := make([]scenario.Config, len(indices))
	for k, i := range indices {
		if i < 0 || i >= b.Len() {
			return scenario.Batch{}, fmt.Errorf("grid: derived index %d out of range [0, %d)", i, b.Len())
		}
		c := b.ConfigAt(i)
		c.Fidelity = fidelity
		cfgs[k] = c
	}
	return scenario.Batch{Scenarios: cfgs}, nil
}

// RefineOptions tunes one Refine run.
type RefineOptions struct {
	// Workers bounds concurrent points per phase (0 = GOMAXPROCS).
	Workers int
	// Slack is the shortlist dominance margin (≤ 0 = DefaultSlack).
	Slack float64
	// Checkpoint, when non-empty, journals the analytical pass to this
	// path and the trace shortlist to path+RefineCheckpointSuffix, so a
	// killed refinement resumes either phase.
	Checkpoint string
	// Resume replays existing journals instead of refusing to overwrite.
	Resume bool
	// Progress, when non-nil, observes per-phase completion; phase is
	// "analytical" during the full-grid pass and "refine" during the
	// trace shortlist.
	Progress func(phase string, done, total int)
}

// Refine is the multi-fidelity frontier: run the full grid analytically,
// shortlist the Pareto front plus the slack band the analytical error
// could promote, re-run only the shortlist at trace fidelity through the
// unified driver, and emit the refined frontier. The output stream is the
// analytical pass's NDJSON lines (input order), then the shortlist's
// trace-fidelity lines (grid order), then one {"frontier": [...]} summary
// whose coordinates are trace-fidelity — deterministic and byte-identical
// across worker counts, checkpointed resumes, and distribution.
//
// The spec must not pin trace fidelity: an unset base fidelity is run as
// "analytical", a fidelity axis or a trace base is refused (Refine owns
// the fidelity ladder).
func Refine(ctx context.Context, spec Spec, o RefineOptions, w io.Writer) error {
	if spec.Grid.Axes.Fidelity != nil {
		return fmt.Errorf("grid: refine sets fidelity per phase; drop the fidelity axis")
	}
	switch spec.Grid.Base.Fidelity {
	case "":
		spec.Grid.Base.Fidelity = profile.FidelityAnalytical
	case profile.FidelityAnalytical:
	default:
		return fmt.Errorf("grid: refine's first pass is analytical; drop base fidelity %q", spec.Grid.Base.Fidelity)
	}
	b, err := spec.Expand()
	if err != nil {
		return err
	}

	var fr Frontier
	shortlist, err := runPhase(ctx, b, o, "analytical", o.Checkpoint, &fr, w, func() []int {
		return fr.Shortlist(o.Slack)
	})
	if err != nil {
		return err
	}
	if len(shortlist) == 0 {
		// Every point infeasible: nothing to refine, empty frontier.
		return emitSummary(&Frontier{}, w)
	}
	derived, err := b.Derived(shortlist, profile.FidelityTrace)
	if err != nil {
		return err
	}
	var refined Frontier
	ckpt := ""
	if o.Checkpoint != "" {
		ckpt = o.Checkpoint + RefineCheckpointSuffix
	}
	if _, err := runPhase(ctx, work.Batch(derived), o, "refine", ckpt, &refined, w, nil); err != nil {
		return err
	}
	return emitSummary(&refined, w)
}

// runPhase drives one batch through work.Run, accumulating every line —
// journal-replayed and fresh — into fr, and returns after()'s value (nil
// after = nil result). The journal (if any) is closed before returning so
// the next phase's file operations see it complete.
func runPhase(ctx context.Context, b work.Batch, o RefineOptions, phase, checkpoint string, fr *Frontier, w io.Writer, after func() []int) ([]int, error) {
	opts := work.Options{Workers: o.Workers}
	if o.Progress != nil {
		opts.Progress = func(done, total int) { o.Progress(phase, done, total) }
	}
	if checkpoint != "" {
		jr, done, err := work.OpenJournal(checkpoint, b, o.Resume)
		if err != nil {
			return nil, err
		}
		defer jr.Close()
		for i, line := range done {
			if err := fr.Add(i, line); err != nil {
				return nil, err
			}
		}
		opts.Journal, opts.Done = jr, done
	}
	var frErr error
	opts.Observe = func(i int, line json.RawMessage) {
		if err := fr.Add(i, line); err != nil && frErr == nil {
			frErr = err
		}
	}
	if err := work.Run(ctx, b, opts, w); err != nil {
		return nil, err
	}
	if frErr != nil {
		return nil, frErr
	}
	if after == nil {
		return nil, nil
	}
	return after(), nil
}

// emitSummary appends the final frontier summary line.
func emitSummary(f *Frontier, w io.Writer) error {
	summary, err := f.SummaryLine()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", summary)
	return err
}
