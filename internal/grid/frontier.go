package grid

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Frontier reduces a grid run's NDJSON result lines to the
// leakage-vs-AMAT Pareto front across design points: the set of feasible
// points no other point beats on both optimized-L2 leakage and achieved
// AMAT. It follows opt.ParetoFront's semantics — sorted by increasing
// AMAT, strictly decreasing leakage, dominated-or-equal points dropped —
// with strict input-order tie-breaking: of two points with identical
// (AMAT, leakage), the earlier design point survives, so the front is a
// pure function of the grid, not of execution order.
//
// Feed it lines keyed by input index (Add tolerates any call order — a
// resumed run adds journal-replayed lines and freshly streamed lines as
// they arrive) and render the final {"frontier": [...]} summary with
// SummaryLine.
type Frontier struct {
	cand []frontierCand
}

// frontierCand is one feasible design point awaiting reduction.
type frontierCand struct {
	idx       int
	name      string
	amatPS    float64
	leakageMW float64
}

// FrontierPoint is one surviving design point of the front.
type FrontierPoint struct {
	Name      string  `json:"name"`
	AMATPS    float64 `json:"amat_ps"`
	LeakageMW float64 `json:"leakage_mw"`
}

// frontierSummary is the final summary object.
type frontierSummary struct {
	Frontier []FrontierPoint `json:"frontier"`
}

// Add records the result line of design point i. Infeasible points (no
// knob assignment met the AMAT budget) are skipped — they have no
// leakage/AMAT coordinates to trade off. Lines must be the scenario
// result frames a grid run emits.
func (f *Frontier) Add(i int, line []byte) error {
	var res struct {
		Name string `json:"name"`
		L2   struct {
			Feasible  bool    `json:"feasible"`
			LeakageMW float64 `json:"leakage_mw"`
			AMATPS    float64 `json:"amat_ps"`
		} `json:"l2_optimization"`
	}
	if err := json.Unmarshal(line, &res); err != nil {
		return fmt.Errorf("grid: frontier line %d: %w", i, err)
	}
	if !res.L2.Feasible {
		return nil
	}
	f.cand = append(f.cand, frontierCand{
		idx:       i,
		name:      res.Name,
		amatPS:    res.L2.AMATPS,
		leakageMW: res.L2.LeakageMW,
	})
	return nil
}

// Points computes the front: candidates sorted by (AMAT, leakage, input
// index), then reduced with a strictly-decreasing leakage scan. The
// result is never nil, so an all-infeasible grid summarizes as
// {"frontier": []}.
func (f *Frontier) Points() []FrontierPoint {
	sorted := append([]frontierCand(nil), f.cand...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].amatPS != sorted[j].amatPS {
			return sorted[i].amatPS < sorted[j].amatPS
		}
		if sorted[i].leakageMW != sorted[j].leakageMW {
			return sorted[i].leakageMW < sorted[j].leakageMW
		}
		return sorted[i].idx < sorted[j].idx
	})
	out := []FrontierPoint{}
	for _, c := range sorted {
		if len(out) > 0 && c.leakageMW >= out[len(out)-1].LeakageMW {
			continue
		}
		out = append(out, FrontierPoint{Name: c.name, AMATPS: c.amatPS, LeakageMW: c.leakageMW})
	}
	return out
}

// SummaryLine renders the final compact {"frontier": [...]} summary
// object (no trailing newline) — the line a grid run appends after its
// per-point results.
func (f *Frontier) SummaryLine() ([]byte, error) {
	return json.Marshal(frontierSummary{Frontier: f.Points()})
}
