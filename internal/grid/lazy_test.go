package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/work"
)

// millionSpec is a 1,048,576-point grid (1024 l1_kb values × 1024 l2_kb
// values). The axis values are synthetic — most are not runnable cache
// organizations — because these tests exercise expansion mechanics
// (laziness, index arithmetic, wire size), never RunItem.
func millionSpec() Spec {
	l1 := make([]int, 1024)
	l2 := make([]int, 1024)
	for i := range l1 {
		l1[i] = i + 1
		l2[i] = i + 1
	}
	return Spec{Grid: Grid{
		Name:      "m-{l1_kb}-{l2_kb}",
		Axes:      Axes{L1KB: l1, L2KB: l2},
		Base:      scenario.Config{Workload: "tpcc", Accesses: 20000, Fidelity: "analytical"},
		MaxPoints: HardMaxPoints,
	}}
}

// runnableMillionSpec is a 1,048,576-point grid every point of which is a
// valid, runnable analytical scenario: 4 L2 capacities × 262,144 AMAT
// budgets over a fixed 16KB L1. Row-major order puts amat_budget_ps
// fastest, so any small contiguous range shares its cache designs and
// workload profile — the sub-millisecond marginal-point regime of
// BenchmarkGridRunItem.
func runnableMillionSpec() Spec {
	budgets := make([]float64, 1<<18)
	for i := range budgets {
		budgets[i] = float64(1_000_000 + i)
	}
	return Spec{Grid: Grid{
		Name:      "e-l2{l2_kb}-b{amat_budget_ps}",
		Axes:      Axes{L2KB: []int{256, 512, 1024, 2048}, AMATBudgetPS: budgets},
		Base:      scenario.Config{L1KB: 16, Workload: "tpcc", Accesses: 20000, Fidelity: "analytical"},
		MaxPoints: HardMaxPoints,
	}}
}

// TestMillionPointExpandIsLazy pins the tentpole memory property: a
// 2^20-point grid expands under the raised HardMaxPoints in O(axes)
// allocations — per axis value, never per point — and point configs are
// computed on demand in O(1) allocations from the row-major index.
func TestMillionPointExpandIsLazy(t *testing.T) {
	s := millionSpec()
	var (
		b   *Batch
		err error
	)
	allocs := testing.AllocsPerRun(1, func() {
		b, err = s.Expand()
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Len() != 1<<20 {
		t.Fatalf("Len = %d, want %d", b.Len(), 1<<20)
	}
	// O(sum of axis lengths) work is ~2048 values here; a materializing
	// expansion would pay several allocations per point, i.e. millions.
	if allocs > 50_000 {
		t.Errorf("Expand of a 2^20-point grid did %.0f allocations — expansion is materializing points", allocs)
	}

	// Row-major spot checks: l2_kb varies fastest.
	for _, at := range []struct {
		i    int
		name string
	}{
		{0, "m-1-1"},
		{1, "m-1-2"},
		{1024, "m-2-1"},
		{512*1024 + 7, "m-513-8"},
		{1<<20 - 1, "m-1024-1024"},
	} {
		c := b.ConfigAt(at.i)
		if c.Name != at.name {
			t.Errorf("ConfigAt(%d).Name = %q, want %q", at.i, c.Name, at.name)
		}
		if c.Seed != 1 || c.Scheme != 2 {
			t.Errorf("ConfigAt(%d) not defaulted: %+v", at.i, c)
		}
	}
	perPoint := testing.AllocsPerRun(100, func() {
		_ = b.ConfigAt(1 << 19)
	})
	if perPoint > 32 {
		t.Errorf("ConfigAt did %.0f allocations per point, want O(1) name rendering only", perPoint)
	}
}

// TestMillionPointWirePayload pins that the wire form of any slice of a
// million-point grid stays O(spec): the payload ships axes and a range,
// never points.
func TestMillionPointWirePayload(t *testing.T) {
	b, err := millionSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	payload, err := b.MarshalRange(sweep.Range{Lo: 0, Hi: b.Len()})
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) > 64<<10 {
		t.Errorf("wire payload for 2^20 points is %d bytes, want O(spec)", len(payload))
	}
	sub, err := work.Unmarshal(WorkKind, payload)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != b.Len() {
		t.Fatalf("decoded Len = %d, want %d", sub.Len(), b.Len())
	}
	if got := sub.(*Batch).ConfigAt(1<<20 - 1).Name; got != "m-1024-1024" {
		t.Errorf("decoded last point named %q, want m-1024-1024", got)
	}
}

// TestMillionPointGridStreams runs a contiguous slice of a fully runnable
// 2^20-point analytical grid end-to-end through the unified driver — the
// worker's-eye view of a million-point sweep: decode a wire range,
// compute configs on demand, stream NDJSON lines.
func TestMillionPointGridStreams(t *testing.T) {
	full, err := runnableMillionSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi = 1000, 1008
	payload, err := full.MarshalRange(sweep.Range{Lo: lo, Hi: hi})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := work.Unmarshal(WorkKind, payload)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := work.Run(context.Background(), sub, work.Options{Workers: 2}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(out.String(), "\n"), "\n")
	if len(lines) != hi-lo {
		t.Fatalf("streamed %d lines, want %d", len(lines), hi-lo)
	}
	for i, line := range lines {
		want := fmt.Sprintf("%q", full.ConfigAt(lo+i).Name)
		if !strings.Contains(line, want) {
			t.Errorf("line %d = %s, want it to carry name %s", i, line, want)
		}
	}
}

// TestFullMillionPointRun is the complete 2^20-point single-process run —
// minutes of compute, so it is opt-in: REPRO_MILLION_E2E=1. It pins the
// headline acceptance number: a million-point analytical grid end-to-end
// in one process.
func TestFullMillionPointRun(t *testing.T) {
	if os.Getenv("REPRO_MILLION_E2E") == "" {
		t.Skip("set REPRO_MILLION_E2E=1 to run the full 2^20-point grid")
	}
	b, err := runnableMillionSpec().Expand()
	if err != nil {
		t.Fatal(err)
	}
	var n int
	err = work.Run(context.Background(), b, work.Options{
		Observe: func(int, json.RawMessage) { n++ },
	}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if n != b.Len() {
		t.Fatalf("ran %d points, want %d", n, b.Len())
	}
}
