package grid

import (
	"fmt"
	"testing"
)

// line fabricates one grid result line with the fields the frontier
// reads.
func line(name string, feasible bool, leakMW, amatPS float64) []byte {
	return []byte(fmt.Sprintf(
		`{"name":%q,"l2_optimization":{"feasible":%v,"leakage_mw":%g,"amat_ps":%g}}`,
		name, feasible, leakMW, amatPS))
}

// TestFrontierDominance pins the reduction: dominated points drop,
// survivors sort by increasing AMAT with strictly decreasing leakage.
func TestFrontierDominance(t *testing.T) {
	var f Frontier
	for i, l := range [][]byte{
		line("mid", true, 10, 2000),
		line("dominated", true, 12, 2500), // slower and leakier than "mid"
		line("fast-hot", true, 30, 1500),
		line("slow-cool", true, 5, 3000),
		line("infeasible", false, 1, 1),
	} {
		if err := f.Add(i, l); err != nil {
			t.Fatal(err)
		}
	}
	pts := f.Points()
	want := []FrontierPoint{
		{Name: "fast-hot", AMATPS: 1500, LeakageMW: 30},
		{Name: "mid", AMATPS: 2000, LeakageMW: 10},
		{Name: "slow-cool", AMATPS: 3000, LeakageMW: 5},
	}
	if len(pts) != len(want) {
		t.Fatalf("front = %+v, want %+v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("front[%d] = %+v, want %+v", i, pts[i], want[i])
		}
	}
}

// TestFrontierInputOrderTieBreak pins the strict tie-breaking: of two
// points with identical coordinates, the earlier input index survives —
// regardless of Add call order, so streamed and resumed runs agree.
func TestFrontierInputOrderTieBreak(t *testing.T) {
	var f Frontier
	// Added out of input order, as a resumed run would.
	if err := f.Add(7, line("later", true, 10, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(2, line("earlier", true, 10, 2000)); err != nil {
		t.Fatal(err)
	}
	pts := f.Points()
	if len(pts) != 1 || pts[0].Name != "earlier" {
		t.Fatalf("front = %+v, want exactly the earlier point", pts)
	}
}

// TestFrontierEqualAMATKeepsCooler pins the same-AMAT case: only the
// least-leaky point at a given AMAT survives.
func TestFrontierEqualAMATKeepsCooler(t *testing.T) {
	var f Frontier
	if err := f.Add(0, line("hot", true, 20, 2000)); err != nil {
		t.Fatal(err)
	}
	if err := f.Add(1, line("cool", true, 10, 2000)); err != nil {
		t.Fatal(err)
	}
	pts := f.Points()
	if len(pts) != 1 || pts[0].Name != "cool" {
		t.Fatalf("front = %+v, want exactly the cooler point", pts)
	}
}

// TestFrontierSummaryLine pins the summary frame, including the empty
// (all-infeasible) case rendering as an empty array, not null.
func TestFrontierSummaryLine(t *testing.T) {
	var empty Frontier
	if err := empty.Add(0, line("x", false, 0, 0)); err != nil {
		t.Fatal(err)
	}
	s, err := empty.SummaryLine()
	if err != nil {
		t.Fatal(err)
	}
	if string(s) != `{"frontier":[]}` {
		t.Errorf("empty summary = %s", s)
	}

	var one Frontier
	if err := one.Add(0, line("p", true, 2.5, 1800)); err != nil {
		t.Fatal(err)
	}
	s, err = one.SummaryLine()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"frontier":[{"name":"p","amat_ps":1800,"leakage_mw":2.5}]}`
	if string(s) != want {
		t.Errorf("summary = %s, want %s", s, want)
	}
}

// TestFrontierBadLine pins the parse diagnostic.
func TestFrontierBadLine(t *testing.T) {
	var f Frontier
	if err := f.Add(3, []byte(`not json`)); err == nil {
		t.Fatal("bad line accepted")
	}
}
