package grid

import (
	"context"
	"fmt"
	"strings"
	"testing"
)

// benchGrid expands a 16-point grid over (l1_kb, l2_kb) at the given
// fidelity. The axes repeat across iterations, so workload profiles and
// cache designs are shared exactly as a long-running sweep shares them —
// the benchmark measures the *marginal* per-point cost, which is what a
// million-point grid pays after its first few points.
func benchGrid(b *testing.B, fidelity string) *Batch {
	b.Helper()
	spec := fmt.Sprintf(`{"grid":{
		"name":"b-l1{l1_kb}-l2{l2_kb}-{fidelity}",
		"axes":{"l1_kb":[16,32,64,128],"l2_kb":[256,512,1024,2048]},
		"base":{"workload":"tpcc","accesses":20000,"fidelity":%q}
	}}`, fidelity)
	s, err := Load(strings.NewReader(spec))
	if err != nil {
		b.Fatal(err)
	}
	gb, err := s.Expand()
	if err != nil {
		b.Fatal(err)
	}
	return gb
}

// BenchmarkGridRunItem pins the marginal per-point cost of a grid sweep at
// both fidelities — the number the HardMaxPoints cap and the -frontier-refine
// shortlist economics are sized against. Substrate shared across points
// (workload profiles, cache designs, the knob grid) is warmed by the first
// iteration; steady-state sec/op is the per-point wall a large grid pays.
func BenchmarkGridRunItem(b *testing.B) {
	for _, fidelity := range []string{"analytical", "trace"} {
		b.Run(fidelity, func(b *testing.B) {
			gb := benchGrid(b, fidelity)
			ctx := context.Background()
			// Warm every point once so the loop measures the marginal cost —
			// the workload profiling pass and the per-cache-organization
			// design builds are process-wide memos a long sweep pays O(distinct
			// organizations) times, not O(points) times.
			for i := 0; i < gb.Len(); i++ {
				if _, err := gb.RunItem(ctx, i); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gb.RunItem(ctx, i%gb.Len()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
