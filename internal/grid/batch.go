package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/dist/journal"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/work"
)

// WorkKind tags grid work in checkpoint journals, distributed units, and
// the work registry. It is the third registered kind — and the first
// whose batch *generates* its design points instead of enumerating them:
// the wire payload is the spec plus a point range, not the points.
const WorkKind = "grid"

// Batch is an expanded grid as a work.Batch: an ordered slice of the
// full row-major expansion, each point running as one scenario and
// rendering the same compact NDJSON line `scenario -stream` emits — so a
// grid run is indistinguishable, line for line, from the equivalent
// hand-enumerated scenario batch.
type Batch struct {
	grid    Grid              // defaulted spec
	r       sweep.Range       // the slice of the full expansion this batch covers
	n       int               // full-grid point count
	configs []scenario.Config // expanded configs for [r.Lo, r.Hi)
}

var _ work.Batch = (*Batch)(nil)

// wirePayload is the self-contained wire form of a grid slice: the whole
// (defaulted) spec plus the absolute point range. A worker re-expands the
// spec — deterministically, so its points match the coordinator's byte
// for byte — and slices out its range; the payload stays a few hundred
// bytes no matter how many points the range covers.
type wirePayload struct {
	Grid  Grid        `json:"grid"`
	Range sweep.Range `json:"range"`
}

func init() {
	work.Register(WorkKind, func(payload json.RawMessage) (work.Batch, error) {
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		var p wirePayload
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("grid: work payload: %w", err)
		}
		if err := (Spec{Grid: p.Grid}).Validate(); err != nil {
			return nil, err
		}
		g := p.Grid.withDefaults()
		n, axes, err := pointCount(g)
		if err != nil {
			return nil, err
		}
		r := p.Range
		if r.Lo < 0 || r.Hi > n || r.Lo >= r.Hi {
			return nil, fmt.Errorf("grid: range [%d, %d) out of bounds for %d points", r.Lo, r.Hi, n)
		}
		// Only the unit's own points are materialized — O(range), not
		// O(grid). The full-grid duplicate-name check ran on the
		// coordinator's Expand, whose spec this payload's hash pins.
		configs, err := expandRange(g, axes, r.Lo, r.Hi)
		if err != nil {
			return nil, err
		}
		return &Batch{grid: g, r: r, n: n, configs: configs}, nil
	})
}

// Expand validates the spec and materializes the full grid, in row-major
// order over the canonical axis order, with every expanded name checked
// unique.
func (s Spec) Expand() (*Batch, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := s.Grid.withDefaults()
	n, axes, err := pointCount(g)
	if err != nil {
		return nil, err
	}
	configs, err := expandRange(g, axes, 0, n)
	if err != nil {
		return nil, err
	}
	names := make(map[string]int, n)
	for i, cfg := range configs {
		if prev, dup := names[cfg.Name]; dup {
			return nil, fmt.Errorf("grid: points %d and %d both expand to name %q (add the distinguishing axes to the name template)",
				prev, i, cfg.Name)
		}
		names[cfg.Name] = i
	}
	return &Batch{grid: g, r: sweep.Range{Lo: 0, Hi: n}, n: n, configs: configs}, nil
}

// Configs returns the expanded point configs of this batch (slice), in
// order — the golden tests and docs render these.
func (b *Batch) Configs() []scenario.Config {
	return append([]scenario.Config(nil), b.configs...)
}

// Kind names the grid payload family.
func (b *Batch) Kind() string { return WorkKind }

// Len is the number of points in this batch (slice).
func (b *Batch) Len() int { return len(b.configs) }

// Hash is the canonical content hash of this batch: the hex SHA-256 of
// its wire form — the defaulted spec plus the covered range. Expansion is
// deterministic, so the spec pins the points; hashing it (rather than the
// expansion) keeps the hash O(spec) while still refusing a resume against
// any edit that would change a single point.
func (b *Batch) Hash() (string, error) {
	return journal.Hash(wirePayload{Grid: b.grid, Range: b.r})
}

// RunItem executes point i of this batch as one scenario and returns its
// compact NDJSON line.
func (b *Batch) RunItem(ctx context.Context, i int) (json.RawMessage, error) {
	res, err := scenario.RunCtx(ctx, b.configs[i])
	if err != nil {
		return nil, fmt.Errorf("grid point %q: %w", b.configs[i].Name, err)
	}
	return res.NDJSONLine()
}

// MarshalRange renders the wire payload for the batch-relative range
// [r.Lo, r.Hi): the spec plus the corresponding absolute point range.
func (b *Batch) MarshalRange(r sweep.Range) (json.RawMessage, error) {
	abs := sweep.Range{Lo: b.r.Lo + r.Lo, Hi: b.r.Lo + r.Hi}
	if r.Lo < 0 || abs.Hi > b.r.Hi || r.Lo >= r.Hi {
		return nil, fmt.Errorf("grid: marshal range [%d, %d) out of bounds for %d items", r.Lo, r.Hi, b.Len())
	}
	return json.Marshal(wirePayload{Grid: b.grid, Range: abs})
}
