package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/dist/journal"
	"repro/internal/profile"
	"repro/internal/scenario"
	"repro/internal/sweep"
	"repro/internal/work"
)

// WorkKind tags grid work in checkpoint journals, distributed units, and
// the work registry. It is the third registered kind — and the first
// whose batch *generates* its design points instead of enumerating them:
// the wire payload is the spec plus a point range, not the points.
const WorkKind = "grid"

// Batch is an expanded grid as a work.Batch: an ordered slice of the
// full row-major expansion, each point running as one scenario and
// rendering the same compact NDJSON line `scenario -stream` emits — so a
// grid run is indistinguishable, line for line, from the equivalent
// hand-enumerated scenario batch.
//
// Expansion is lazy: the batch holds the spec and its range, and
// RunItem computes point i's config on demand (ConfigAt). A
// million-point batch is the same few hundred bytes as a ten-point one;
// memory during a run is bounded by the driver's in-flight window, not
// the point count.
type Batch struct {
	grid Grid        // defaulted spec
	axes []axis      // resolved dimensions of grid, canonical order
	r    sweep.Range // the slice of the full expansion this batch covers
	n    int         // full-grid point count
}

var _ work.Batch = (*Batch)(nil)

// wirePayload is the self-contained wire form of a grid slice: the whole
// (defaulted) spec plus the absolute point range. A worker re-expands the
// spec — deterministically, so its points match the coordinator's byte
// for byte — and slices out its range; the payload stays a few hundred
// bytes no matter how many points the range covers.
type wirePayload struct {
	Grid  Grid        `json:"grid"`
	Range sweep.Range `json:"range"`
}

func init() {
	work.Register(WorkKind, func(payload json.RawMessage) (work.Batch, error) {
		dec := json.NewDecoder(bytes.NewReader(payload))
		dec.DisallowUnknownFields()
		var p wirePayload
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("grid: work payload: %w", err)
		}
		if err := (Spec{Grid: p.Grid}).Validate(); err != nil {
			return nil, err
		}
		g := p.Grid.withDefaults()
		n, axes, err := pointCount(g)
		if err != nil {
			return nil, err
		}
		r := p.Range
		if r.Lo < 0 || r.Hi > n || r.Lo >= r.Hi {
			return nil, fmt.Errorf("grid: range [%d, %d) out of bounds for %d points", r.Lo, r.Hi, n)
		}
		// Nothing is materialized — the worker proves every point valid
		// analytically and computes configs on demand. The full-grid
		// duplicate-name backstop ran on the coordinator's Expand, whose
		// spec this payload's hash pins.
		if err := validateAxisValues(g, axes); err != nil {
			return nil, err
		}
		return &Batch{grid: g, axes: axes, r: r, n: n}, nil
	})
}

// Expand validates the spec and resolves the full grid, in row-major
// order over the canonical axis order. Nothing is materialized: point
// validity and name uniqueness are proven analytically (per axis value,
// not per point), with a full duplicate-name scan only as a backstop on
// grids small enough (≤ dupScanMaxPoints) that the scan is free — the
// one collision class the analytical checks admit is concatenation
// ambiguity between adjacent template placeholders.
func (s Spec) Expand() (*Batch, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	g := s.Grid.withDefaults()
	n, axes, err := pointCount(g)
	if err != nil {
		return nil, err
	}
	if err := validateAxisValues(g, axes); err != nil {
		return nil, err
	}
	if n <= dupScanMaxPoints {
		names := make(map[string]int, n)
		for i := 0; i < n; i++ {
			name := configAt(g, axes, i).Name
			if prev, dup := names[name]; dup {
				return nil, fmt.Errorf("grid: points %d and %d both expand to name %q (add the distinguishing axes to the name template)",
					prev, i, name)
			}
			names[name] = i
		}
	}
	return &Batch{grid: g, axes: axes, r: sweep.Range{Lo: 0, Hi: n}, n: n}, nil
}

// ConfigAt computes the config of point i of this batch (slice) on
// demand: the named, defaulted scenario at absolute grid index
// r.Lo + i. O(axes) per call, no per-point state.
func (b *Batch) ConfigAt(i int) scenario.Config {
	return configAt(b.grid, b.axes, b.r.Lo+i)
}

// Configs materializes every point config of this batch (slice), in
// order — the golden tests and docs render these. O(Len) memory; large
// batches should use ConfigAt.
func (b *Batch) Configs() []scenario.Config {
	out := make([]scenario.Config, b.Len())
	for i := range out {
		out[i] = b.ConfigAt(i)
	}
	return out
}

// Kind names the grid payload family.
func (b *Batch) Kind() string { return WorkKind }

// Len is the number of points in this batch (slice).
func (b *Batch) Len() int { return b.r.Hi - b.r.Lo }

// Hash is the canonical content hash of this batch: the hex SHA-256 of
// its wire form — the defaulted spec plus the covered range. Expansion is
// deterministic, so the spec pins the points; hashing it (rather than the
// expansion) keeps the hash O(spec) while still refusing a resume against
// any edit that would change a single point.
func (b *Batch) Hash() (string, error) {
	return journal.Hash(wirePayload{Grid: b.grid, Range: b.r})
}

// RunItem executes point i of this batch as one scenario and returns its
// compact NDJSON line. The config is computed on demand and dropped when
// the call returns — running a grid holds O(in-flight points) configs,
// never the expansion.
func (b *Batch) RunItem(ctx context.Context, i int) (json.RawMessage, error) {
	cfg := b.ConfigAt(i)
	res, err := scenario.RunCtx(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("grid point %q: %w", cfg.Name, err)
	}
	return res.NDJSONLine()
}

// ItemKey implements work.ItemKeyer: the content identity of one grid
// point — "scenario/" plus the hash of the expanded, defaulted config,
// the very key scenario.Batch.ItemKey computes for an equal config. A
// grid point's RunItem line is indistinguishable from the equivalent
// scenario's, so the shared namespace is sound, and it is what lets the
// dist store serve a grid whose points overlap a prior grid (or a prior
// hand-written batch) without re-simulating the overlap.
func (b *Batch) ItemKey(i int) (string, error) {
	h, err := journal.Hash(b.ConfigAt(i))
	if err != nil {
		return "", err
	}
	return "scenario/" + h, nil
}

// DescribeFidelity implements work.FidelityDescriber: the single
// miss-matrix fidelity every point of the grid shares, or "mixed" when a
// fidelity axis varies it — a metrics label only, never part of the wire
// form or the content hash.
func (b *Batch) DescribeFidelity() string {
	eff := func(f string) string {
		if f == "" {
			return profile.FidelityTrace
		}
		return f
	}
	fids := b.grid.Axes.Fidelity
	switch len(fids) {
	case 0:
		return eff(b.grid.Base.Fidelity)
	case 1:
		return eff(fids[0])
	}
	fid := eff(fids[0])
	for _, f := range fids[1:] {
		if eff(f) != fid {
			return "mixed"
		}
	}
	return fid
}

// MarshalRange renders the wire payload for the batch-relative range
// [r.Lo, r.Hi): the spec plus the corresponding absolute point range.
func (b *Batch) MarshalRange(r sweep.Range) (json.RawMessage, error) {
	abs := sweep.Range{Lo: b.r.Lo + r.Lo, Hi: b.r.Lo + r.Hi}
	if r.Lo < 0 || abs.Hi > b.r.Hi || r.Lo >= r.Hi {
		return nil, fmt.Errorf("grid: marshal range [%d, %d) out of bounds for %d items", r.Lo, r.Hi, b.Len())
	}
	return json.Marshal(wirePayload{Grid: b.grid, Range: abs})
}
