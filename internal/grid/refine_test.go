package grid

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/profile"
	"repro/internal/work"
)

// TestShortlistKeepsFrontAndBand pins the slack-relaxed culling: the
// whole front survives, near-front points inside the slack band survive,
// and only points beaten by the full margin on both objectives drop.
func TestShortlistKeepsFrontAndBand(t *testing.T) {
	var f Frontier
	for i, l := range [][]byte{
		line("front-fast", true, 30, 1000),
		line("front-cool", true, 10, 2000),
		// Dominated by front-cool, but not by the 25% margin on leakage
		// (10 > 11/1.25): analytical error could promote it, keep it.
		line("near", true, 11, 3000),
		// Dominated by front-cool with margin to spare on both axes
		// (10 ≤ 30/1.25, 2000 ≤ 3000/1.25): no plausible error saves it.
		line("far", true, 30, 3000),
		line("infeasible", false, 1, 1),
	} {
		if err := f.Add(i, l); err != nil {
			t.Fatal(err)
		}
	}
	got := f.Shortlist(0.25)
	if want := []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Shortlist(0.25) = %v, want %v", got, want)
	}
	// slack ≤ 0 means DefaultSlack, not "everything culls itself".
	if got, want := f.Shortlist(0), f.Shortlist(DefaultSlack); !reflect.DeepEqual(got, want) {
		t.Errorf("Shortlist(0) = %v, want DefaultSlack result %v", got, want)
	}
	var empty Frontier
	if got := empty.Shortlist(0.25); got == nil || len(got) != 0 {
		t.Errorf("empty Shortlist = %#v, want empty non-nil", got)
	}
}

// TestShortlistAlwaysContainsFront is the invariant the refinement
// correctness argument rests on: for any slack, every front point is in
// the shortlist.
func TestShortlistAlwaysContainsFront(t *testing.T) {
	var f Frontier
	cands := [][]byte{
		line("a", true, 30, 1000),
		line("b", true, 10, 2000),
		line("c", true, 5, 4000),
		line("d", true, 12, 2100),
		line("e", true, 40, 900),
	}
	for i, l := range cands {
		if err := f.Add(i, l); err != nil {
			t.Fatal(err)
		}
	}
	frontNames := map[string]bool{}
	for _, p := range f.Points() {
		frontNames[p.Name] = true
	}
	for _, slack := range []float64{0.01, 0.25, 1.0, 10.0} {
		short := map[int]bool{}
		for _, i := range f.Shortlist(slack) {
			short[i] = true
		}
		for i := range cands {
			var res struct {
				Name string `json:"name"`
			}
			if err := json.Unmarshal(cands[i], &res); err != nil {
				t.Fatal(err)
			}
			if frontNames[res.Name] && !short[i] {
				t.Errorf("slack %g: front point %q (index %d) culled from shortlist %v",
					slack, res.Name, i, f.Shortlist(slack))
			}
		}
	}
}

// TestDerived pins the shortlist-to-scenario-batch bridge: names are
// preserved, only the fidelity flips, and bad inputs are refused.
func TestDerived(t *testing.T) {
	b := mustExpand(t, `{"grid":{
		"axes":{"l1_kb":[16,32],"l2_kb":[256,512]},
		"base":{"workload":"tpcc","accesses":20000,"fidelity":"analytical"}
	}}`)
	d, err := b.Derived([]int{1, 3}, profile.FidelityTrace)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Scenarios) != 2 {
		t.Fatalf("derived %d scenarios, want 2", len(d.Scenarios))
	}
	for k, i := range []int{1, 3} {
		want := b.ConfigAt(i)
		got := d.Scenarios[k]
		if got.Name != want.Name {
			t.Errorf("derived[%d].Name = %q, want %q", k, got.Name, want.Name)
		}
		if got.Fidelity != profile.FidelityTrace {
			t.Errorf("derived[%d].Fidelity = %q, want %q", k, got.Fidelity, profile.FidelityTrace)
		}
		got.Fidelity = want.Fidelity
		if !reflect.DeepEqual(got, want) {
			t.Errorf("derived[%d] changed more than fidelity:\n got %+v\nwant %+v", k, got, want)
		}
	}
	if _, err := b.Derived([]int{0}, "quantum"); err == nil {
		t.Error("unknown fidelity accepted")
	}
	if _, err := b.Derived(nil, profile.FidelityTrace); err == nil {
		t.Error("empty shortlist accepted")
	}
	if _, err := b.Derived([]int{4}, profile.FidelityTrace); err == nil {
		t.Error("out-of-range index accepted")
	}
}

// TestRefineRejectsFidelityControl pins that Refine owns the fidelity
// ladder: a fidelity axis or a trace base is refused up front.
func TestRefineRejectsFidelityControl(t *testing.T) {
	axisSpec := loadSpec(t, `{"grid":{
		"name":"g-l1{l1_kb}-l2{l2_kb}-{workload}-s{scheme}-{fidelity}",
		"axes":{"l1_kb":[16,32],"fidelity":["analytical","trace"]},
		"base":{"workload":"tpcc","l2_kb":256,"accesses":20000}
	}}`)
	err := Refine(t.Context(), axisSpec, RefineOptions{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "drop the fidelity axis") {
		t.Errorf("fidelity axis: err = %v", err)
	}
	traceSpec := loadSpec(t, `{"grid":{
		"axes":{"l1_kb":[16,32]},
		"base":{"workload":"tpcc","l2_kb":256,"accesses":20000,"fidelity":"trace"}
	}}`)
	err = Refine(t.Context(), traceSpec, RefineOptions{}, io.Discard)
	if err == nil || !strings.Contains(err.Error(), "drop base fidelity") {
		t.Errorf("trace base: err = %v", err)
	}
}

// TestRefineAllInfeasible pins the empty-shortlist path: a grid whose
// AMAT budget no knob assignment can meet emits its analytical lines, no
// trace phase, and an empty frontier summary.
func TestRefineAllInfeasible(t *testing.T) {
	spec := loadSpec(t, `{"grid":{
		"axes":{"l1_kb":[16,32],"l2_kb":[256,512]},
		"base":{"workload":"tpcc","accesses":20000,"amat_budget_ps":1}
	}}`)
	var out bytes.Buffer
	if err := Refine(t.Context(), spec, RefineOptions{Workers: 2}, &out); err != nil {
		t.Fatal(err)
	}
	lines := splitLines(out.String())
	if len(lines) != 5 {
		t.Fatalf("emitted %d lines, want 4 analytical + 1 summary:\n%s", len(lines), out.String())
	}
	if got := lines[len(lines)-1]; got != `{"frontier":[]}` {
		t.Errorf("summary = %s, want empty frontier", got)
	}
}

// TestRefineAgreesWithTraceFrontier is the acceptance test DefaultSlack's
// doc comment promises: on a registered-suite grid, the multi-fidelity
// refinement (analytical sweep → shortlist → trace re-run) must produce
// the same frontier, point for point and coordinate for coordinate, as
// running the whole grid at trace fidelity — i.e. the slack band is wide
// enough that no true front point is culled analytically.
func TestRefineAgreesWithTraceFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a grid at trace fidelity twice")
	}
	// The AMAT budget is the axis that actually bends the frontier: a
	// tighter budget forces the knob optimizer onto faster, leakier
	// assignments, so each budget contributes a distinct
	// (achieved-AMAT, leakage) trade-off point. Budgets sit well above the
	// designs' minimum achievable AMAT (~3004ps for l2=256, ~3018ps for
	// l2=512 with fast memory) so analytical-vs-trace error cannot flip
	// feasibility, only coordinates — the error class the slack band covers.
	const doc = `{"grid":{
		"name":"g-l2{l2_kb}-b{amat_budget_ps}",
		"axes":{"l2_kb":[256,512],"amat_budget_ps":[3050,3150,3350,3700]},
		"base":{"workload":"tpcc","l1_kb":16,"accesses":20000,"fast_memory":true%s}
	}}`

	// Ground truth: the full grid at trace fidelity, reduced to its front.
	tb := mustExpand(t, fmt.Sprintf(doc, `,"fidelity":"trace"`))
	truth, err := work.Collect(t.Context(), tb, work.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var full Frontier
	for i, l := range truth {
		if err := full.Add(i, l); err != nil {
			t.Fatal(err)
		}
	}
	want := full.Points()
	if len(want) < 2 {
		t.Fatalf("trace frontier has %d points; grid too degenerate to exercise refinement", len(want))
	}

	var out bytes.Buffer
	var mu sync.Mutex
	phases := map[string]int{}
	err = Refine(t.Context(), loadSpec(t, fmt.Sprintf(doc, "")), RefineOptions{
		Workers: 4,
		Progress: func(phase string, done, total int) {
			mu.Lock()
			defer mu.Unlock()
			if total > phases[phase] {
				phases[phase] = total
			}
		},
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(out.String())
	var got frontierSummary
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &got); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if !reflect.DeepEqual(got.Frontier, want) {
		t.Errorf("refined frontier disagrees with full trace frontier:\n got %+v\nwant %+v", got.Frontier, want)
	}
	// The refinement must have been cheaper than the ground truth: the
	// trace phase runs only the shortlist, and both phases were observed.
	if phases["analytical"] != tb.Len() {
		t.Errorf("analytical phase total = %d, want %d", phases["analytical"], tb.Len())
	}
	if n := phases["refine"]; n == 0 || n > tb.Len() {
		t.Errorf("refine phase total = %d, want within (0, %d]", n, tb.Len())
	}
	// Output shape: analytical lines, then shortlist trace lines, then the
	// summary — n + shortlist + 1 lines.
	if wantLines := tb.Len() + phases["refine"] + 1; len(lines) != wantLines {
		t.Errorf("emitted %d lines, want %d", len(lines), wantLines)
	}
}

// TestRefineEquivalentAcrossExecutionShapes extends the repository's
// byte-identical-output invariant to the two-phase refined-frontier flow:
// sequential, parallel-streamed, checkpointed-then-resumed (killed during
// phase one), and per-phase in-process distributed execution must emit
// identical bytes.
func TestRefineEquivalentAcrossExecutionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the refinement flow through four execution shapes")
	}
	const doc = `{"grid":{
		"axes":{"l1_kb":[16,32],"l2_kb":[256,512]},
		"base":{"workload":"tpcc","accesses":20000}
	}}`

	var seq bytes.Buffer
	if err := Refine(t.Context(), loadSpec(t, doc), RefineOptions{Workers: 1}, &seq); err != nil {
		t.Fatal(err)
	}
	if n := len(splitLines(seq.String())); n < 6 {
		t.Fatalf("sequential refinement emitted %d lines, want ≥ 4 analytical + ≥ 1 trace + summary:\n%s", n, seq.String())
	}

	t.Run("parallel-streamed", func(t *testing.T) {
		var par bytes.Buffer
		if err := Refine(t.Context(), loadSpec(t, doc), RefineOptions{Workers: 4}, &par); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(par.Bytes(), seq.Bytes()) {
			t.Errorf("parallel output differs:\n got: %q\nwant: %q", par.Bytes(), seq.Bytes())
		}
	})

	t.Run("checkpointed-resumed", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "refine.journal")
		var full bytes.Buffer
		if err := Refine(t.Context(), loadSpec(t, doc), RefineOptions{Workers: 2, Checkpoint: path}, &full); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full.Bytes(), seq.Bytes()) {
			t.Fatalf("checkpointed output differs before any kill:\n got: %q\nwant: %q", full.Bytes(), seq.Bytes())
		}
		// Simulate a kill during phase one: cut the analytical journal back
		// to header + first entry with a torn second entry, and drop the
		// phase-two journal entirely (it had not been started yet).
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		jlines := strings.SplitAfter(string(data), "\n")
		torn := jlines[0] + jlines[1] + `{"i":1,"line":{"tr`
		if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(path + RefineCheckpointSuffix); err != nil {
			t.Fatal(err)
		}
		var resumed bytes.Buffer
		if err := Refine(t.Context(), loadSpec(t, doc), RefineOptions{Workers: 2, Checkpoint: path, Resume: true}, &resumed); err != nil {
			t.Fatal(err)
		}
		// The resumed stream re-emits everything but the journal-replayed
		// first analytical line; prepend it to reconstruct the full stream.
		got := append([]byte(splitLines(seq.String())[0]+"\n"), resumed.Bytes()...)
		if !bytes.Equal(got, seq.Bytes()) {
			t.Errorf("resumed output differs:\n got: %q\nwant: %q", got, seq.Bytes())
		}
	})

	t.Run("distributed", func(t *testing.T) {
		if !bytes.Equal(refineDistributed(t, doc), seq.Bytes()) {
			t.Errorf("distributed output differs from sequential run")
		}
	})
}

// refineDistributed reconstructs the refined-frontier flow with each
// phase running through an in-process coordinator and two
// registry-executor workers — the same library calls Refine composes,
// with dist in place of work.Run.
func refineDistributed(t *testing.T, doc string) []byte {
	t.Helper()
	spec := loadSpec(t, doc)
	spec.Grid.Base.Fidelity = profile.FidelityAnalytical
	b, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	var fr Frontier
	for i, l := range distributeBatch(t, b) {
		if err := fr.Add(i, l); err != nil {
			t.Fatal(err)
		}
		out.Write(l)
		out.WriteByte('\n')
	}
	derived, err := b.Derived(fr.Shortlist(0), profile.FidelityTrace)
	if err != nil {
		t.Fatal(err)
	}
	var refined Frontier
	for i, l := range distributeBatch(t, derived) {
		if err := refined.Add(i, l); err != nil {
			t.Fatal(err)
		}
		out.Write(l)
		out.WriteByte('\n')
	}
	summary, err := refined.SummaryLine()
	if err != nil {
		t.Fatal(err)
	}
	out.Write(summary)
	out.WriteByte('\n')
	return out.Bytes()
}

// distributeBatch runs one batch through an in-process coordinator with
// two registry-executor workers and returns its lines in input order.
func distributeBatch(t *testing.T, b work.Batch) []json.RawMessage {
	t.Helper()
	spec, err := dist.SpecOf(b)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	c, err := dist.New(ctx, spec, dist.Config{Units: 3, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	collected := make(chan []json.RawMessage, 1)
	go func() {
		var lines []json.RawMessage
		for line := range c.Results() {
			lines = append(lines, line)
		}
		collected <- lines
	}()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		w := &dist.Worker{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("refine-w%d", i),
			Exec:        dist.RegistryExecutor(1),
			Client:      srv.Client(),
			Poll:        5 * time.Millisecond,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	lines := <-collected
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	return lines
}

// loadSpec parses a spec document or fails the test.
func loadSpec(t *testing.T, doc string) Spec {
	t.Helper()
	s, err := Load(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// mustExpand loads and expands a spec document or fails the test.
func mustExpand(t *testing.T, doc string) *Batch {
	t.Helper()
	b, err := loadSpec(t, doc).Expand()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// splitLines splits NDJSON output into its non-empty lines.
func splitLines(s string) []string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}
