package grid

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/profile"
	"repro/internal/scenario"
)

// DefaultNameTemplate names points when the spec does not: it mentions
// the four axes the paper's study varies. Grids that vary
// amat_budget_ps, fast_memory, or fidelity must extend the template, or
// expansion fails on duplicate names.
const DefaultNameTemplate = "g-l1{l1_kb}-l2{l2_kb}-{workload}-s{scheme}"

// DefaultMaxPoints is the expansion cap when the spec does not raise it:
// large enough for the paper's full L1×L2×workload×scheme product, small
// enough that a typo'd axis fails loudly instead of silently queueing a
// million points.
const DefaultMaxPoints = 4096

// HardMaxPoints bounds max_points itself. Expansion is lazy — point i's
// config is computed on demand, so memory is O(in-flight points), not
// O(grid) — which moves the wall from materialization to per-point
// execution time and journal size (one NDJSON entry per point). At the
// measured marginal analytical point cost (sub-millisecond; see
// BenchmarkGridRunItem and BENCH_7.json) a full 1<<24 grid is hours of
// single-process compute, a scale fleets and the analytical fast path
// make routine; anything above it is more plausibly a typo'd axis than a
// plan.
const HardMaxPoints = 1 << 24

// dupScanMaxPoints bounds the expansion-time duplicate-name backstop
// scan. Validate's analytical checks (every varying axis in the
// template, every axis value rendering distinctly) catch the mistakes a
// user can plausibly make; the only collisions they admit are
// concatenation ambiguities between adjacent placeholders ("{l1_kb}{l2_kb}"
// rendering 1,11 and 11,1 both as "111"). Expand scans the full
// expansion for those only while the grid is small enough that the scan
// is free — beyond this bound (the pre-lazy HardMaxPoints) names are
// trusted to the analytical checks, keeping Expand O(axes).
const dupScanMaxPoints = 1 << 18

// Spec is the JSON document: one top-level "grid" object.
type Spec struct {
	Grid Grid `json:"grid"`
}

// Grid declares the sweep: axes, the base config shared by every point,
// the name template, and the point-count cap.
type Grid struct {
	// Name is the point-name template; placeholders like {l1_kb} render
	// the point's field values (default DefaultNameTemplate).
	Name string `json:"name,omitempty"`
	// Axes are the varied fields.
	Axes Axes `json:"axes"`
	// Base carries every field the axes do not vary (workload defaults,
	// accesses, seed, tuple budgets, ...). Its name must be empty — point
	// names come from the template — and it must not set a field an axis
	// already declares.
	Base scenario.Config `json:"base,omitempty"`
	// MaxPoints caps the expansion (0 = DefaultMaxPoints; values above
	// HardMaxPoints are refused).
	MaxPoints int `json:"max_points,omitempty"`
}

// Axes are the design-space dimensions, each a list of values for one
// scenario.Config field. A nil axis is simply not varied (the base value
// applies); a present-but-empty axis is an error.
type Axes struct {
	L1KB         []int     `json:"l1_kb,omitempty"`
	L2KB         []int     `json:"l2_kb,omitempty"`
	Workload     []string  `json:"workload,omitempty"`
	Scheme       []int     `json:"scheme,omitempty"`
	AMATBudgetPS []float64 `json:"amat_budget_ps,omitempty"`
	FastMemory   []bool    `json:"fast_memory,omitempty"`
	Fidelity     []string  `json:"fidelity,omitempty"`
}

// Load parses a grid spec, rejecting unknown fields so typos fail loud.
func Load(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("grid: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// IsSpec reports whether the JSON document carries a top-level "grid" key —
// how cmd/scenario tells a grid document from a scenario or batch.
func IsSpec(data []byte) bool {
	var probe struct {
		Grid json.RawMessage `json:"grid"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.Grid != nil
}

// withDefaults fills the template and cap.
func (g Grid) withDefaults() Grid {
	if g.Name == "" {
		g.Name = DefaultNameTemplate
	}
	if g.MaxPoints == 0 {
		g.MaxPoints = DefaultMaxPoints
	}
	return g
}

// axis is one resolved dimension of the expansion.
type axis struct {
	field string
	n     int
	set   func(c *scenario.Config, k int)
}

// axes resolves the declared dimensions in canonical row-major order. A
// declared-but-empty axis is an error: it would silently expand to zero
// points.
func (g Grid) axes() ([]axis, error) {
	all := []struct {
		field string
		n     int
		nilp  bool
		set   func(c *scenario.Config, k int)
	}{
		{"l1_kb", len(g.Axes.L1KB), g.Axes.L1KB == nil,
			func(c *scenario.Config, k int) { c.L1KB = g.Axes.L1KB[k] }},
		{"l2_kb", len(g.Axes.L2KB), g.Axes.L2KB == nil,
			func(c *scenario.Config, k int) { c.L2KB = g.Axes.L2KB[k] }},
		{"workload", len(g.Axes.Workload), g.Axes.Workload == nil,
			func(c *scenario.Config, k int) { c.Workload = g.Axes.Workload[k] }},
		{"scheme", len(g.Axes.Scheme), g.Axes.Scheme == nil,
			func(c *scenario.Config, k int) { c.Scheme = g.Axes.Scheme[k] }},
		{"amat_budget_ps", len(g.Axes.AMATBudgetPS), g.Axes.AMATBudgetPS == nil,
			func(c *scenario.Config, k int) { c.AMATBudgetPS = g.Axes.AMATBudgetPS[k] }},
		{"fast_memory", len(g.Axes.FastMemory), g.Axes.FastMemory == nil,
			func(c *scenario.Config, k int) { c.FastMemory = g.Axes.FastMemory[k] }},
		{"fidelity", len(g.Axes.Fidelity), g.Axes.Fidelity == nil,
			func(c *scenario.Config, k int) { c.Fidelity = g.Axes.Fidelity[k] }},
	}
	var out []axis
	for _, a := range all {
		if a.nilp {
			continue
		}
		if a.n == 0 {
			return nil, fmt.Errorf("grid: axis %s is empty (omit the axis to not vary it)", a.field)
		}
		out = append(out, axis{field: a.field, n: a.n, set: a.set})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("grid: no axes declared")
	}
	return out, nil
}

// baseCollisions reports axed fields the base also sets — an ambiguity
// (which value wins?) this package refuses instead of resolving silently.
// fast_memory is exempt: its zero value is indistinguishable from unset,
// and false is the default anyway.
func (g Grid) baseCollisions() error {
	set := map[string]bool{
		"l1_kb":          g.Base.L1KB != 0,
		"l2_kb":          g.Base.L2KB != 0,
		"workload":       g.Base.Workload != "",
		"scheme":         g.Base.Scheme != 0,
		"amat_budget_ps": g.Base.AMATBudgetPS != 0,
		"fidelity":       g.Base.Fidelity != "",
	}
	axes, err := g.axes()
	if err != nil {
		return err
	}
	for _, a := range axes {
		if set[a.field] {
			return fmt.Errorf("grid: base sets %s, which is also an axis (drop one)", a.field)
		}
	}
	return nil
}

// Validate reports structural spec errors: missing or empty axes, a named
// or colliding base, an unknown template placeholder, an out-of-bounds
// cap, or a name template that cannot keep point names unique. The
// uniqueness check is analytical — O(axes), no expansion: the template
// must mention every axis that actually varies, and every axis's values
// must render to distinct strings. Per-point config errors surface from
// Expand (also analytically, per axis value rather than per point).
func (s Spec) Validate() error {
	g := s.Grid.withDefaults()
	axes, err := g.axes()
	if err != nil {
		return err
	}
	if g.Base.Name != "" {
		return fmt.Errorf("grid: base must not set a name (point names come from the template)")
	}
	if err := g.baseCollisions(); err != nil {
		return err
	}
	if err := validateTemplate(g.Name); err != nil {
		return err
	}
	if err := validateNameCoverage(g, axes); err != nil {
		return err
	}
	if g.MaxPoints < 0 || g.MaxPoints > HardMaxPoints {
		return fmt.Errorf("grid: max_points %d out of range (0, %d]", g.MaxPoints, HardMaxPoints)
	}
	return nil
}

// validateNameCoverage proves point names unique without expanding the
// grid: every varying axis (two or more values) must appear as a
// template placeholder, and each such axis's values must render to
// pairwise-distinct strings. Two points differing in some axis then
// differ in that axis's rendered substring, so only concatenation
// ambiguity between adjacent placeholders can still collide — which the
// bounded backstop scan in Expand covers.
func validateNameCoverage(g Grid, axes []axis) error {
	mentioned := templatePlaceholders(g.Name)
	for _, a := range axes {
		if a.n < 2 {
			continue
		}
		if !mentioned[a.field] {
			return fmt.Errorf("grid: name template %q omits varying axis %s, so its %d values expand to duplicate point names (add {%s})",
				g.Name, a.field, a.n, a.field)
		}
		// Render each value through the same defaulted-config path point
		// names use, so default folding (fidelity "" renders "trace",
		// scheme 0 defaults to 2) is caught, not just literal repeats.
		seen := make(map[string]int, a.n)
		for j := 0; j < a.n; j++ {
			cfg := atOrigin(g, axes)
			a.set(&cfg, j)
			r := templateFields[a.field](cfg.WithDefaults())
			if prev, dup := seen[r]; dup {
				return fmt.Errorf("grid: axis %s values at positions %d and %d both render as %q in point names",
					a.field, prev, j, r)
			}
			seen[r] = j
		}
	}
	return nil
}

// atOrigin returns the unnamed, undefaulted config at the grid origin —
// every axis at its first value.
func atOrigin(g Grid, axes []axis) scenario.Config {
	cfg := g.Base
	for _, a := range axes {
		a.set(&cfg, 0)
	}
	return cfg
}

// templateFields are the placeholders the name template may use.
var templateFields = map[string]func(c scenario.Config) string{
	"l1_kb":    func(c scenario.Config) string { return strconv.Itoa(c.L1KB) },
	"l2_kb":    func(c scenario.Config) string { return strconv.Itoa(c.L2KB) },
	"workload": func(c scenario.Config) string { return c.Workload },
	"scheme":   func(c scenario.Config) string { return strconv.Itoa(c.Scheme) },
	"amat_budget_ps": func(c scenario.Config) string {
		// Fixed-point with trailing-zero trim ('f' with -1 precision): the
		// 'g' verb previously switched to scientific notation for large
		// budgets, putting "1.2e+06" — with a '+' — into point names and
		// rendering distinct values ambiguously.
		return strconv.FormatFloat(c.AMATBudgetPS, 'f', -1, 64)
	},
	"fast_memory": func(c scenario.Config) string {
		if c.FastMemory {
			return "fast"
		}
		return "slow"
	},
	"fidelity": func(c scenario.Config) string {
		if c.Fidelity == "" {
			return profile.FidelityTrace
		}
		return c.Fidelity
	},
}

// validateTemplate rejects unknown placeholders and unbalanced braces
// before any expansion work happens.
func validateTemplate(tmpl string) error {
	rest := tmpl
	for {
		open := strings.IndexByte(rest, '{')
		if open < 0 {
			if strings.IndexByte(rest, '}') >= 0 {
				return fmt.Errorf("grid: name template %q has an unmatched '}'", tmpl)
			}
			return nil
		}
		if strings.IndexByte(rest[:open], '}') >= 0 {
			return fmt.Errorf("grid: name template %q has an unmatched '}'", tmpl)
		}
		close := strings.IndexByte(rest[open:], '}')
		if close < 0 {
			return fmt.Errorf("grid: name template %q has an unmatched '{'", tmpl)
		}
		field := rest[open+1 : open+close]
		if _, ok := templateFields[field]; !ok {
			return fmt.Errorf("grid: name template placeholder {%s} is not an axis field", field)
		}
		rest = rest[open+close+1:]
	}
}

// templatePlaceholders returns the placeholder fields of a validated
// template.
func templatePlaceholders(tmpl string) map[string]bool {
	out := make(map[string]bool)
	rest := tmpl
	for {
		open := strings.IndexByte(rest, '{')
		if open < 0 {
			return out
		}
		close := strings.IndexByte(rest[open:], '}')
		out[rest[open+1:open+close]] = true
		rest = rest[open+close+1:]
	}
}

// renderName fills the template from one point's (defaulted) config.
// Templates were validated at Load, so every placeholder resolves.
func renderName(tmpl string, c scenario.Config) string {
	var b strings.Builder
	rest := tmpl
	for {
		open := strings.IndexByte(rest, '{')
		if open < 0 {
			b.WriteString(rest)
			return b.String()
		}
		b.WriteString(rest[:open])
		close := strings.IndexByte(rest[open:], '}')
		b.WriteString(templateFields[rest[open+1:open+close]](c))
		rest = rest[open+close+1:]
	}
}

// pointCount resolves the (defaulted) grid's axes and total point count,
// enforcing the cap before anything is materialized.
func pointCount(g Grid) (int, []axis, error) {
	axes, err := g.axes()
	if err != nil {
		return 0, nil, err
	}
	total := 1
	for _, a := range axes {
		total *= a.n
		if total > g.MaxPoints {
			return 0, nil, fmt.Errorf("grid: expands to more than %d points (raise max_points, hard cap %d)",
				g.MaxPoints, HardMaxPoints)
		}
	}
	return total, axes, nil
}

// configAt computes point i of the (defaulted) grid's row-major
// expansion: a named, defaulted scenario config, a pure function of
// (g, i) in O(axes) time and memory. It does not validate — Expand and
// the wire decoder prove every point valid once, per axis value rather
// than per point (validateAxisValues).
func configAt(g Grid, axes []axis, i int) scenario.Config {
	cfg := g.Base
	// Row-major: the last axis varies fastest.
	rem := i
	for k := len(axes) - 1; k >= 0; k-- {
		axes[k].set(&cfg, rem%axes[k].n)
		rem /= axes[k].n
	}
	cfg = cfg.WithDefaults()
	cfg.Name = renderName(g.Name, cfg)
	return cfg
}

// validateAxisValues proves every point of the grid valid in O(sum of
// axis lengths) instead of O(product): scenario.Config.Validate checks
// each field independently, so validating the origin point plus every
// axis value as a single-field override of the origin covers the whole
// cross product.
func validateAxisValues(g Grid, axes []axis) error {
	origin := configAt(g, axes, 0)
	if err := origin.Validate(); err != nil {
		return fmt.Errorf("grid: point 0 (%s): %w", origin.Name, err)
	}
	for _, a := range axes {
		for j := 1; j < a.n; j++ {
			cfg := origin
			a.set(&cfg, j)
			cfg = cfg.WithDefaults()
			if err := cfg.Validate(); err != nil {
				return fmt.Errorf("grid: axis %s value %d of %d: %w", a.field, j+1, a.n, err)
			}
		}
	}
	return nil
}
