package grid

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/sweep"
	"repro/internal/work"
)

// tinySpec is a 2×2 grid cheap to reason about: points in row-major
// order are (16,256), (16,512), (32,256), (32,512).
const tinySpec = `{"grid":{
	"axes":{"l1_kb":[16,32],"l2_kb":[256,512]},
	"base":{"workload":"tpcc","accesses":20000}
}}`

func loadTiny(t *testing.T) *Batch {
	t.Helper()
	s, err := Load(strings.NewReader(tinySpec))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExpandRowMajor pins the expansion order (canonical axis order,
// last axis fastest) and the default naming and defaulting.
func TestExpandRowMajor(t *testing.T) {
	b := loadTiny(t)
	if b.Len() != 4 {
		t.Fatalf("expanded %d points, want 4", b.Len())
	}
	want := []struct {
		name     string
		l1, l2   int
		scheme   int
		accesses int
	}{
		{"g-l116-l2256-tpcc-s2", 16, 256, 2, 20000},
		{"g-l116-l2512-tpcc-s2", 16, 512, 2, 20000},
		{"g-l132-l2256-tpcc-s2", 32, 256, 2, 20000},
		{"g-l132-l2512-tpcc-s2", 32, 512, 2, 20000},
	}
	for i, c := range b.Configs() {
		w := want[i]
		if c.Name != w.name || c.L1KB != w.l1 || c.L2KB != w.l2 || c.Scheme != w.scheme || c.Accesses != w.accesses {
			t.Errorf("point %d = %+v, want %+v", i, c, w)
		}
		if c.Seed != 1 {
			t.Errorf("point %d seed = %d, want the scenario default 1", i, c.Seed)
		}
	}
}

// TestSpecValidationErrors pins the load-time diagnostics: empty axes,
// axisless grids, colliding bases, bogus templates, bogus caps, unknown
// fields.
func TestSpecValidationErrors(t *testing.T) {
	cases := map[string]struct{ spec, want string }{
		"empty axis": {
			`{"grid":{"axes":{"l1_kb":[],"l2_kb":[256]},"base":{"workload":"tpcc"}}}`,
			"axis l1_kb is empty",
		},
		"no axes": {
			`{"grid":{"axes":{},"base":{"workload":"tpcc"}}}`,
			"no axes declared",
		},
		"base sets an axis field": {
			`{"grid":{"axes":{"l1_kb":[16],"l2_kb":[256],"workload":["tpcc","specweb"]},"base":{"workload":"tpcc"}}}`,
			"base sets workload",
		},
		"base sets a name": {
			`{"grid":{"axes":{"l1_kb":[16]},"base":{"name":"x","l2_kb":256,"workload":"tpcc"}}}`,
			"base must not set a name",
		},
		"unknown template placeholder": {
			`{"grid":{"name":"g-{bogus}","axes":{"l1_kb":[16]},"base":{"l2_kb":256,"workload":"tpcc"}}}`,
			"{bogus}",
		},
		"unmatched brace": {
			`{"grid":{"name":"g-{l1_kb","axes":{"l1_kb":[16]},"base":{"l2_kb":256,"workload":"tpcc"}}}`,
			"unmatched '{'",
		},
		"cap above hard max": {
			`{"grid":{"max_points":99999999,"axes":{"l1_kb":[16]},"base":{"l2_kb":256,"workload":"tpcc"}}}`,
			"max_points",
		},
		"template omits a varying axis": {
			// Two budgets would expand to the same default name: the
			// template mentions neither amat_budget_ps nor anything
			// distinguishing. Caught analytically at load, no expansion.
			`{"grid":{"axes":{"l1_kb":[16],"amat_budget_ps":[1800,1900]},"base":{"l2_kb":256,"workload":"tpcc"}}}`,
			"omits varying axis amat_budget_ps",
		},
		"axis values render identically": {
			// fidelity "" is the trace default, so {fidelity} renders both
			// values as "trace" — a collision the template-coverage check
			// alone would miss.
			`{"grid":{"name":"g-l1{l1_kb}-{fidelity}","axes":{"l1_kb":[16],"fidelity":["","trace"]},"base":{"l2_kb":256,"workload":"tpcc"}}}`,
			`both render as "trace"`,
		},
		"repeated axis value": {
			`{"grid":{"axes":{"l1_kb":[16,16]},"base":{"l2_kb":256,"workload":"tpcc"}}}`,
			`both render as "16"`,
		},
		"unknown field": {
			`{"grid":{"axes":{"l1_kb":[16]},"base":{"l2_kb":256,"workload":"tpcc"},"bogus":1}}`,
			"bogus",
		},
	}
	for label, c := range cases {
		_, err := Load(strings.NewReader(c.spec))
		if err == nil {
			t.Errorf("%s: accepted", label)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want it to mention %q", label, err, c.want)
		}
	}
}

// TestExpandErrors pins the expansion-time diagnostics: the point-count
// cap, duplicate expanded names, and invalid per-point configs.
func TestExpandErrors(t *testing.T) {
	cases := map[string]struct{ spec, want string }{
		"point-count cap exceeded": {
			`{"grid":{"max_points":3,"axes":{"l1_kb":[16,32],"l2_kb":[256,512]},"base":{"workload":"tpcc"}}}`,
			"more than 3 points",
		},
		"duplicate expanded names": {
			// The analytical checks pass — both axes are in the template,
			// each axis's values render distinctly — but the placeholders
			// are adjacent with no separator, so (1,11) and (11,1) both
			// render "g-111". The backstop full-name scan catches it.
			`{"grid":{"name":"g-{l1_kb}{l2_kb}","axes":{"l1_kb":[1,11],"l2_kb":[11,1]},"base":{"workload":"tpcc"}}}`,
			"both expand to name",
		},
		"invalid point config": {
			`{"grid":{"axes":{"l1_kb":[16],"workload":["tpcc","nosuch"]},"base":{"l2_kb":256}}}`,
			"unknown workload",
		},
	}
	for label, c := range cases {
		s, err := Load(strings.NewReader(c.spec))
		if err != nil {
			t.Errorf("%s: failed at load (%v), want an expansion error", label, err)
			continue
		}
		_, err = s.Expand()
		if err == nil {
			t.Errorf("%s: expanded", label)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want it to mention %q", label, err, c.want)
		}
	}
}

// TestDuplicateNamesResolvedByTemplate checks the fix the duplicate-name
// error asks for: naming the varying axis in the template.
func TestDuplicateNamesResolvedByTemplate(t *testing.T) {
	s, err := Load(strings.NewReader(`{"grid":{
		"name":"g-l1{l1_kb}-b{amat_budget_ps}-{fast_memory}",
		"axes":{"l1_kb":[16],"amat_budget_ps":[1800,1900],"fast_memory":[false,true]},
		"base":{"l2_kb":256,"workload":"tpcc"}
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, b.Len())
	for _, c := range b.Configs() {
		names = append(names, c.Name)
	}
	want := []string{"g-l116-b1800-slow", "g-l116-b1800-fast", "g-l116-b1900-slow", "g-l116-b1900-fast"}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("point %d named %q, want %q", i, names[i], want[i])
		}
	}
}

// TestFloatBudgetNamesFixedPoint is the regression test for the
// float-rendering bug: amat_budget_ps values large enough to trip
// strconv's 'g' format into scientific notation (1200000 → "1.2e+06")
// must render fixed-point in point names, and fractional budgets must
// keep their digits without growing trailing zeros.
func TestFloatBudgetNamesFixedPoint(t *testing.T) {
	s, err := Load(strings.NewReader(`{"grid":{
		"name":"g-b{amat_budget_ps}",
		"axes":{"amat_budget_ps":[1812.5, 1900, 1200000]},
		"base":{"l1_kb":16,"l2_kb":256,"workload":"tpcc"}
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"g-b1812.5", "g-b1900", "g-b1200000"}
	for i, c := range b.Configs() {
		if c.Name != want[i] {
			t.Errorf("point %d named %q, want %q", i, c.Name, want[i])
		}
		if strings.ContainsAny(c.Name, "eE+") {
			t.Errorf("point %d name %q rendered in scientific notation", i, c.Name)
		}
	}
}

// TestFidelityAxis pins the fidelity axis: it varies fastest (it is
// last in canonical order), the {fidelity} placeholder renders, and
// each point carries the axis value.
func TestFidelityAxis(t *testing.T) {
	s, err := Load(strings.NewReader(`{"grid":{
		"name":"g-l1{l1_kb}-{fidelity}",
		"axes":{"l1_kb":[16,32],"fidelity":["trace","analytical"]},
		"base":{"l2_kb":256,"workload":"tpcc"}
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ name, fidelity string }{
		{"g-l116-trace", "trace"},
		{"g-l116-analytical", "analytical"},
		{"g-l132-trace", "trace"},
		{"g-l132-analytical", "analytical"},
	}
	for i, c := range b.Configs() {
		if c.Name != want[i].name || c.Fidelity != want[i].fidelity {
			t.Errorf("point %d = (%q, fidelity %q), want (%q, %q)",
				i, c.Name, c.Fidelity, want[i].name, want[i].fidelity)
		}
	}
}

// TestFidelityPlaceholderDefaultsToTrace checks that a base without an
// explicit fidelity renders the placeholder as "trace" — names stay
// meaningful for configs relying on the implicit default.
func TestFidelityPlaceholderDefaultsToTrace(t *testing.T) {
	s, err := Load(strings.NewReader(`{"grid":{
		"name":"g-l1{l1_kb}-{fidelity}",
		"axes":{"l1_kb":[16]},
		"base":{"l2_kb":256,"workload":"tpcc"}
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if name := b.Configs()[0].Name; name != "g-l116-trace" {
		t.Errorf("point named %q, want g-l116-trace", name)
	}
}

// TestFidelityAxisErrors pins the load/expand diagnostics specific to
// the fidelity axis: base/axis collision and invalid values.
func TestFidelityAxisErrors(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"grid":{
		"axes":{"l1_kb":[16],"fidelity":["trace","analytical"]},
		"base":{"l2_kb":256,"workload":"tpcc","fidelity":"trace"}
	}}`)); err == nil || !strings.Contains(err.Error(), "base sets fidelity") {
		t.Errorf("colliding fidelity base err = %v, want it to mention base sets fidelity", err)
	}
	s, err := Load(strings.NewReader(`{"grid":{
		"name":"g-l1{l1_kb}-{fidelity}",
		"axes":{"l1_kb":[16],"fidelity":["analytical","clairvoyant"]},
		"base":{"l2_kb":256,"workload":"tpcc"}
	}}`))
	if err != nil {
		t.Fatalf("load rejected spec with bad fidelity value, want an expansion error: %v", err)
	}
	if _, err := s.Expand(); err == nil || !strings.Contains(err.Error(), "fidelity") {
		t.Errorf("invalid fidelity value expand err = %v, want it to mention fidelity", err)
	}
}

// TestIsSpec pins the document probe.
func TestIsSpec(t *testing.T) {
	if !IsSpec([]byte(`{"grid":{}}`)) {
		t.Error("grid document not recognized")
	}
	if IsSpec([]byte(`{"scenarios":[]}`)) || IsSpec([]byte(`{"name":"x"}`)) || IsSpec([]byte(`garbage`)) {
		t.Error("non-grid document misread as grid")
	}
}

// TestWireRoundTrip pins the registry cycle: MarshalRange → Unmarshal
// rebuilds a slice whose points equal the coordinator's, by re-expansion
// rather than by shipping configs.
func TestWireRoundTrip(t *testing.T) {
	b := loadTiny(t)
	payload, err := b.MarshalRange(sweep.Range{Lo: 1, Hi: 3})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := work.Unmarshal(WorkKind, payload)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 2 {
		t.Fatalf("sub-batch has %d items, want 2", sub.Len())
	}
	got := sub.(*Batch).Configs()
	want := b.Configs()[1:3]
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("rebuilt point %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// A sub-slice of the sub-batch maps back to absolute coordinates.
	nested, err := sub.(*Batch).MarshalRange(sweep.Range{Lo: 1, Hi: 2})
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := work.Unmarshal(WorkKind, nested)
	if err != nil {
		t.Fatal(err)
	}
	if cfgs := leaf.(*Batch).Configs(); len(cfgs) != 1 || !reflect.DeepEqual(cfgs[0], b.Configs()[2]) {
		t.Errorf("nested slice = %+v, want point 2 only", cfgs)
	}
}

// TestWireRangeErrors pins out-of-range decode failures.
func TestWireRangeErrors(t *testing.T) {
	for _, payload := range []string{
		`{"grid":{"axes":{"l1_kb":[16,32]},"base":{"l2_kb":256,"workload":"tpcc"}},"range":{"lo":0,"hi":3}}`,
		`{"grid":{"axes":{"l1_kb":[16,32]},"base":{"l2_kb":256,"workload":"tpcc"}},"range":{"lo":1,"hi":1}}`,
		`{"grid":{"axes":{"l1_kb":[16,32]},"base":{"l2_kb":256,"workload":"tpcc"}},"range":{"lo":-1,"hi":1}}`,
	} {
		if _, err := work.Unmarshal(WorkKind, []byte(payload)); err == nil {
			t.Errorf("payload %s decoded", payload)
		}
	}
}

// TestHashPinsSpec checks the content hash distinguishes specs and
// ranges but not re-expansions.
func TestHashPinsSpec(t *testing.T) {
	h1, err := loadTiny(t).Hash()
	if err != nil {
		t.Fatal(err)
	}
	h2, err := loadTiny(t).Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("re-expanding the same spec changed the hash")
	}
	s, err := Load(strings.NewReader(`{"grid":{
		"axes":{"l1_kb":[16,32],"l2_kb":[256,512]},
		"base":{"workload":"tpcc","accesses":20001}
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	other, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	h3, err := other.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Error("a different spec hashed identically")
	}
}
