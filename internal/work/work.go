package work

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sweep"
)

// Batch is one ordered workload: n independent items, each rendering to
// exactly one compact NDJSON line. Implementations must be deterministic —
// the same batch produces the same bytes at any worker count, on any
// machine — because every guarantee downstream (streamed, checkpointed,
// and distributed output byte-identical to sequential) rests on it.
type Batch interface {
	// Kind names the payload family (e.g. "scenario-batch",
	// "experiments"). It tags checkpoint journals and distributed work
	// units, and keys the registry that turns wire payloads back into
	// runnable batches.
	Kind() string
	// Len is the number of ordered items.
	Len() int
	// Hash is the canonical content hash of the whole batch (journal.Hash
	// of its wire form). It pins checkpoint journals and distributed runs
	// to their input: resuming against a batch that hashes differently is
	// refused.
	Hash() (string, error)
	// RunItem executes item i and returns its compact NDJSON line (no
	// trailing newline). Errors are deterministic failures that abort the
	// run; context errors mean cancellation. RunItem must be safe for
	// concurrent calls with distinct i.
	RunItem(ctx context.Context, i int) (json.RawMessage, error)
	// MarshalRange renders the self-contained wire payload for the
	// contiguous item range [r.Lo, r.Hi) — everything a worker needs to
	// rebuild (via the kind's registered UnmarshalFunc) and execute those
	// items, with item k of the rebuilt batch equal to item r.Lo+k of
	// this one.
	MarshalRange(r sweep.Range) (json.RawMessage, error)
}

// UnmarshalFunc rebuilds a runnable Batch from a wire payload produced by
// MarshalRange of a batch of the same kind.
type UnmarshalFunc func(payload json.RawMessage) (Batch, error)

// EnvDescriber is an optional Batch extension for kinds whose output
// depends on process-wide environment state that is not part of the wire
// payload — the experiments kind's simulation scale (accesses, seed,
// MinR2). DescribeEnv renders that state as a small JSON document; the
// dist coordinator forwards it with every lease, and workers verify their
// local environment against it before executing (dist.Worker.VerifyEnv) —
// turning a mixed-scale fleet into a hard error instead of silently
// blended results. Kinds with self-contained payloads (scenario batches,
// grids) simply do not implement it.
type EnvDescriber interface {
	DescribeEnv() (json.RawMessage, error)
}

// ItemKeyer is an optional Batch extension for kinds whose items carry a
// content identity of their own, finer than the batch hash. ItemKey
// returns a stable key for item i with one contract: two items with equal
// keys — in any two batches, of any two kinds — produce byte-identical
// RunItem lines. Keys are namespaced by the line schema they identify
// ("scenario/..." for scenario result lines, "exp/..." for experiment
// tables), never by the batch kind: a grid point and the equivalent
// hand-written scenario share a key precisely because they share a line.
// The dist store's per-item index is built on this contract — it is what
// lets an overlapping grid reuse a prior grid's points instead of
// re-simulating them. Kinds without a per-item identity simply do not
// implement it and only ever hit the cache on whole-batch resubmission.
type ItemKeyer interface {
	ItemKey(i int) (string, error)
}

// registry maps kind names to their payload decoders. Kinds register from
// package init (scenario, exp), so the map is effectively read-only after
// program start; the lock exists for tests and late registrations.
var registry = struct {
	sync.RWMutex
	m map[string]UnmarshalFunc
}{m: make(map[string]UnmarshalFunc)}

// Register adds a payload kind to the registry. Packages call it from
// init; registering the same kind twice (or an empty kind, or a nil
// decoder) panics — both are programming errors, not runtime conditions.
func Register(kind string, fn UnmarshalFunc) {
	if kind == "" || fn == nil {
		panic("work: Register needs a non-empty kind and an UnmarshalFunc")
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.m[kind]; dup {
		panic(fmt.Sprintf("work: kind %q registered twice", kind))
	}
	registry.m[kind] = fn
}

// Unmarshal rebuilds a runnable Batch from a kind name and wire payload —
// the worker side of distribution. Unknown kinds fail with the registered
// kind list, so a version-skewed fleet diagnoses itself.
func Unmarshal(kind string, payload json.RawMessage) (Batch, error) {
	registry.RLock()
	fn := registry.m[kind]
	registry.RUnlock()
	if fn == nil {
		return nil, fmt.Errorf("work: unknown kind %q (registered: %s)", kind, strings.Join(Kinds(), ", "))
	}
	b, err := fn(payload)
	if err != nil {
		return nil, err
	}
	if got := b.Kind(); got != kind {
		return nil, fmt.Errorf("work: kind %q decoded a batch reporting kind %q", kind, got)
	}
	return b, nil
}

// Kinds lists the registered payload kinds, sorted.
func Kinds() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.m))
	for k := range registry.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
