package work

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync/atomic"

	"repro/internal/dist/journal"
	"repro/internal/obs"
	"repro/internal/sweep"
)

// Options tunes one driver run. The zero value streams with GOMAXPROCS
// workers, no progress hook, and no checkpointing.
type Options struct {
	// Workers bounds concurrent RunItem calls (0 = GOMAXPROCS, 1 =
	// sequential execution — the output bytes are identical either way).
	Workers int
	// Progress, when non-nil, observes completion: Run calls it once per
	// emitted line (serialized on the emitter) with (done, total), where
	// total counts only the items this run executes — indices replayed
	// from a checkpoint are excluded from both numbers. Collect calls it
	// once per completed item, possibly from concurrent workers.
	Progress sweep.Progress
	// Journal, when non-nil, records every completed line before it is
	// written to the sink, so a killed run can resume (Run only; Collect
	// does not checkpoint).
	Journal *journal.Journal
	// Done carries the lines a previous run already completed, keyed by
	// input index (journal replay via OpenJournal). Covered indices are
	// neither re-executed nor re-emitted: a resumed run's output is
	// exactly the remainder, in input order.
	Done map[int]json.RawMessage
	// Observe, when non-nil, sees every line this run emits — after it is
	// journaled, before it is written to the sink — keyed by input index.
	// CLI-level reductions (the grid frontier) hook in here instead of
	// re-parsing the sink's stream; lines replayed via Done are not
	// observed (the caller already holds them). Run only; Collect returns
	// its lines and ignores Observe.
	Observe func(i int, line json.RawMessage)
	// Metrics, when non-nil, receives driver instrumentation: a sampled
	// per-item latency histogram keyed (kind, fidelity), exact
	// completed-item counts, and read-time in-flight/pending/throughput
	// gauges (the work_* families in metrics.go). Observation-only —
	// the emitted bytes are identical with or without it, which the
	// equivalence suite pins — and cheap: handles resolve once per run,
	// the steady-state per-item cost is a handful of atomic adds
	// (BenchmarkObsOverhead holds it under 5% of driver sec/op).
	Metrics *obs.Registry
}

// Run is the unified streaming driver: it executes every pending item of
// the batch across a bounded worker pool and writes one compact NDJSON
// line per item to w, in input order, each line written as soon as the
// ordered prefix through it is complete. Backpressure is bounded — a slow
// sink throttles the workers instead of results accumulating in memory.
//
// With o.Journal set, every line is journaled before it is written to w
// (journal-before-emit: the journal, not the consumer's copy of the
// stream, is the authoritative record — a crash between the two leaves the
// line recoverable rather than emitted-but-unjournaled). Indices in o.Done
// are skipped entirely; when everything is already journaled, Run returns
// immediately having emitted nothing.
//
// On success the concatenation of the skipped journal lines and the bytes
// written to w is byte-identical to a sequential, uncheckpointed run at
// any worker count. A failing item aborts the run with its error; a write
// or journal failure cancels the remaining items instead of computing
// output nobody records.
func Run(ctx context.Context, b Batch, o Options, w io.Writer) error {
	n := b.Len()
	if n <= 0 {
		return fmt.Errorf("work: %s batch has no items", b.Kind())
	}
	// pending maps stream slot → input index. A nil slice means the
	// identity mapping — the fresh-run case keeps memory independent of
	// the item count (lazily-expanded grid batches run millions of items
	// in one process); only a resume, whose journal is already O(done),
	// materializes the remainder.
	var pending []int
	npending := n
	if len(o.Done) > 0 {
		pending = make([]int, 0, n)
		for i := 0; i < n; i++ {
			if _, ok := o.Done[i]; !ok {
				pending = append(pending, i)
			}
		}
		if len(pending) == 0 {
			return nil
		}
		npending = len(pending)
	}
	indexOf := func(k int) int {
		if pending == nil {
			return k
		}
		return pending[k]
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	fn := func(ctx context.Context, k int) (json.RawMessage, error) {
		return b.RunItem(ctx, indexOf(k))
	}
	var m *runMetrics
	if o.Metrics != nil {
		m = newRunMetrics(o.Metrics, b, npending)
		fn = m.wrap(fn)
	}
	ch, wait := sweep.Stream(ctx, npending, sweep.StreamConfig{
		Workers:  o.Workers,
		Progress: o.Progress,
	}, fn)
	emitted := 0
	var sinkErr error
	for line := range ch {
		if sinkErr != nil {
			continue // the post-cancel drain; nothing more is scheduled
		}
		idx := indexOf(emitted)
		var err error
		if o.Journal != nil {
			err = o.Journal.Record(idx, line)
		}
		if err == nil {
			if o.Observe != nil {
				o.Observe(idx, line)
			}
			_, err = w.Write(append(line, '\n'))
		}
		if err != nil {
			sinkErr = fmt.Errorf("work: emitting item %d: %w", idx, err)
			cancel()
		}
		emitted++
		if m != nil && sinkErr == nil {
			m.completed(emitted)
		}
	}
	err := wait()
	if sinkErr != nil {
		// The wait error is the cancellation this function triggered; the
		// journal/write failure is the root cause.
		return sinkErr
	}
	return err
}

// Collect is the buffered driver: it executes every item across a bounded
// worker pool and returns the lines in input order — for callers that need
// the whole result set at once (buffered CLI documents, distributed unit
// executors). The lines are exactly what Run would stream, without the
// trailing newlines. Collect does not checkpoint; o.Journal and o.Done are
// ignored.
func Collect(ctx context.Context, b Batch, o Options) ([][]byte, error) {
	n := b.Len()
	if n <= 0 {
		return nil, fmt.Errorf("work: %s batch has no items", b.Kind())
	}
	item := b.RunItem
	var m *runMetrics
	if o.Metrics != nil {
		m = newRunMetrics(o.Metrics, b, n)
		item = m.wrap(item)
	}
	var done atomic.Int64
	return sweep.MapCtx(ctx, n, o.Workers, func(ctx context.Context, i int) ([]byte, error) {
		line, err := item(ctx, i)
		if err != nil {
			return nil, err
		}
		d := int(done.Add(1))
		if m != nil {
			m.completed(d)
		}
		if o.Progress != nil {
			o.Progress(d, n)
		}
		return line, nil
	})
}

// Header renders the checkpoint-journal header pinning this batch: its
// kind, canonical content hash, and item count.
func Header(b Batch) (journal.Header, error) {
	hash, err := b.Hash()
	if err != nil {
		return journal.Header{}, err
	}
	return journal.Header{Kind: b.Kind(), BatchSHA256: hash, N: b.Len()}, nil
}

// OpenJournal opens the checkpoint journal for a batch: a fresh journal
// when resume is false, otherwise an existing one replayed (its lines
// return as the map for Options.Done) after verifying it belongs to
// exactly this batch — kind, content hash, and item count all match, or
// the resume is refused.
func OpenJournal(path string, b Batch, resume bool) (*journal.Journal, map[int]json.RawMessage, error) {
	h, err := Header(b)
	if err != nil {
		return nil, nil, err
	}
	return journal.Open(path, h, resume)
}

// ReplayJournal reads a batch's checkpoint journal without modifying it
// and returns the completed lines keyed by input index — the read side
// `sweepd journal` uses to reassemble a result set from the authoritative
// record. The header is verified exactly as on resume.
func ReplayJournal(path string, b Batch) (map[int]json.RawMessage, error) {
	h, err := Header(b)
	if err != nil {
		return nil, err
	}
	return journal.Replay(path, h)
}
