package work

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// FidelityDescriber is an optional Batch extension naming the miss-matrix
// fidelity a batch runs at — "trace", "analytical", or "mixed" for batches
// whose items disagree. The driver uses it only as a metrics label (the
// per-item latency histogram is keyed (kind, fidelity): the two fidelities
// differ by ~180× per point, and a blended histogram would describe
// neither). Kinds that do not implement it are labeled "unspecified".
type FidelityDescriber interface {
	DescribeFidelity() string
}

// FidelityOf returns the metrics fidelity label for a batch.
func FidelityOf(b Batch) string {
	if d, ok := b.(FidelityDescriber); ok {
		if f := d.DescribeFidelity(); f != "" {
			return f
		}
	}
	return "unspecified"
}

// Driver metric names, one set shared by Run and Collect. Fleet operators
// scrape these via the CLIs' -metrics-addr endpoint or the coordinator's
// /metrics; tests read them through the registry snapshot API.
const (
	// MetricItemSeconds is the per-item execution latency histogram,
	// labeled (kind, fidelity). Latency is sampled, not exhaustive: the
	// first sampleWarm items of a run are all timed (small batches get
	// full coverage), then a deterministic 1-in-sampleEvery sample — a
	// clock read costs ~50ns and timing every item of a million-point
	// analytical grid would bust the driver's <5% instrumentation
	// budget (BenchmarkObsOverhead). The histogram's count therefore
	// reflects observations, not items; MetricItemsTotal counts every
	// item exactly.
	MetricItemSeconds = "work_item_seconds"
	// MetricItemsTotal counts successfully completed items, labeled
	// (kind, fidelity). Replayed checkpoint indices are not counted —
	// the driver never re-executes them.
	MetricItemsTotal = "work_items_total"
	// MetricInflight gauges items currently executing, labeled (kind).
	MetricInflight = "work_inflight_items"
	// MetricPending gauges items this run has still to complete, labeled
	// (kind) — the queue-depth/backpressure signal.
	MetricPending = "work_pending_items"
	// MetricItemsPerSec gauges the completion rate since run start,
	// labeled (kind).
	MetricItemsPerSec = "work_items_per_second"
)

// runMetrics is the driver's resolved instrument set. The hot path per
// item is two clock reads and four atomic adds (histogram, counter, two
// run-local counters); everything derived — in-flight, queue depth,
// throughput — is a read-time gauge (obs WithFunc) evaluated only when
// somebody scrapes, so instrumentation stays within the <5% sec/op
// budget BenchmarkObsOverhead enforces even on near-zero-cost items.
// All of it is observation-only — no code path here can alter the bytes
// the driver emits.
type runMetrics struct {
	itemSeconds *obs.Histogram
	items       *obs.Counter
	clock       obs.Clock
	start       time.Time
	total       int64

	started atomic.Int64 // items handed to RunItem this run
	done    atomic.Int64 // items returned (success or failure) this run
	emitted atomic.Int64 // Run: lines emitted; Collect: items completed
}

// newRunMetrics resolves the driver instruments for a batch and binds
// the derived gauges for a run of npending items. On a shared registry a
// later run's gauges supersede an earlier one's (the refine flow runs
// phases sequentially); counters and histograms accumulate across runs.
func newRunMetrics(reg *obs.Registry, b Batch, npending int) *runMetrics {
	kind, fid := b.Kind(), FidelityOf(b)
	m := &runMetrics{total: int64(npending)}
	m.start = m.clock.Now()
	m.itemSeconds = reg.Histogram(MetricItemSeconds,
		"per-item execution latency in seconds", nil, "kind", "fidelity").With(kind, fid)
	m.items = reg.Counter(MetricItemsTotal,
		"items completed by the work driver", "kind", "fidelity").With(kind, fid)
	reg.Gauge(MetricInflight, "items currently executing", "kind").
		WithFunc(func() float64 { return float64(m.started.Load() - m.done.Load()) }, kind)
	reg.Gauge(MetricPending, "items this run has still to complete", "kind").
		WithFunc(func() float64 { return float64(m.total - m.emitted.Load()) }, kind)
	reg.Gauge(MetricItemsPerSec, "item completion rate since run start", "kind").
		WithFunc(func() float64 {
			if secs := m.clock.Now().Sub(m.start).Seconds(); secs > 0 {
				return float64(m.emitted.Load()) / secs
			}
			return 0
		}, kind)
	return m
}

// Latency sampling rate (see MetricItemSeconds): every one of the first
// sampleWarm items, then item sequence numbers ≡ 1 (mod sampleEvery).
// The schedule is keyed on the run-local start sequence, so it is
// deterministic per run regardless of worker interleaving.
const (
	sampleWarm  = 8
	sampleEvery = 16
)

// wrap instruments an item function: in-flight accounting around the
// call, sampled latency and an exact completion count on success.
func (m *runMetrics) wrap(fn func(context.Context, int) (json.RawMessage, error)) func(context.Context, int) (json.RawMessage, error) {
	return func(ctx context.Context, k int) (json.RawMessage, error) {
		seq := m.started.Add(1)
		sampled := seq <= sampleWarm || seq%sampleEvery == 1
		var start time.Time
		if sampled {
			start = m.clock.Now()
		}
		line, err := fn(ctx, k)
		if err == nil {
			if sampled {
				m.itemSeconds.Observe(m.clock.Now().Sub(start).Seconds())
			}
			m.items.Inc()
		}
		m.done.Add(1)
		return line, err
	}
}

// completed publishes the run's progress count for the derived gauges —
// one atomic store per emitted line.
func (m *runMetrics) completed(done int) {
	m.emitted.Store(int64(done))
}
