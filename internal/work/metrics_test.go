package work

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// TestRunMetricsPopulated pins the driver instrument set: after a
// streamed run, the completion counter and latency histogram hold one
// entry per item, the queue gauges have drained to zero, and the
// throughput gauge is positive — and the emitted bytes are untouched.
func TestRunMetricsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	var buf bytes.Buffer
	if err := Run(t.Context(), toy(50), Options{Workers: 4, Metrics: reg}, &buf); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), toyWant(50); got != want {
		t.Fatalf("instrumented output differs:\n got: %q\nwant: %q", got, want)
	}

	snap := reg.Snapshot()
	if c := snap.Family(MetricItemsTotal).Get("toy", "unspecified"); c == nil || c.Value != 50 {
		t.Fatalf("%s{toy,unspecified} = %+v, want 50", MetricItemsTotal, c)
	}
	// Latency is sampled: the warmup (items 1-8) plus sequence numbers
	// 17, 33, 49 of the 1-in-16 schedule → 11 observations for 50 items.
	h := snap.Family(MetricItemSeconds).Get("toy", "unspecified")
	if h == nil || h.Histogram == nil || h.Histogram.Count != 11 {
		t.Fatalf("%s{toy,unspecified} = %+v, want count 11 (sampled)", MetricItemSeconds, h)
	}
	if h.Histogram.Sum < 0 {
		t.Fatalf("latency sum = %v, want >= 0", h.Histogram.Sum)
	}
	if g := snap.Family(MetricPending).Get("toy"); g == nil || g.Value != 0 {
		t.Fatalf("%s{toy} = %+v, want 0 after the run", MetricPending, g)
	}
	if g := snap.Family(MetricInflight).Get("toy"); g == nil || g.Value != 0 {
		t.Fatalf("%s{toy} = %+v, want 0 after the run", MetricInflight, g)
	}
	if g := snap.Family(MetricItemsPerSec).Get("toy"); g == nil || g.Value <= 0 {
		t.Fatalf("%s{toy} = %+v, want > 0", MetricItemsPerSec, g)
	}
}

// TestCollectMetricsPopulated checks the buffered driver records through
// the same instrument set.
func TestCollectMetricsPopulated(t *testing.T) {
	reg := obs.NewRegistry()
	lines, err := Collect(t.Context(), toy(20), Options{Workers: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 20 {
		t.Fatalf("collected %d lines, want 20", len(lines))
	}
	snap := reg.Snapshot()
	if c := snap.Family(MetricItemsTotal).Get("toy", "unspecified"); c == nil || c.Value != 20 {
		t.Fatalf("%s = %+v, want 20", MetricItemsTotal, c)
	}
	if g := snap.Family(MetricPending).Get("toy"); g == nil || g.Value != 0 {
		t.Fatalf("%s = %+v, want 0 after the run", MetricPending, g)
	}
}

// TestResumeMetricsCountOnlyExecuted pins the resume semantics: indices
// replayed from a checkpoint are never re-executed, so they never reach
// the instruments — a resumed run's counters cover exactly the remainder.
func TestResumeMetricsCountOnlyExecuted(t *testing.T) {
	reg := obs.NewRegistry()
	done := map[int]json.RawMessage{
		0: json.RawMessage(`{"i":0}`),
		2: json.RawMessage(`{"i":2}`),
	}
	var buf bytes.Buffer
	if err := Run(t.Context(), toy(5), Options{Workers: 2, Metrics: reg, Done: done}, &buf); err != nil {
		t.Fatal(err)
	}
	if c := reg.Snapshot().Family(MetricItemsTotal).Get("toy", "unspecified"); c == nil || c.Value != 3 {
		t.Fatalf("%s after resume = %+v, want 3 (5 items, 2 replayed)", MetricItemsTotal, c)
	}
}

// TestRunMetricsSharedRegistry checks registration idempotency across
// runs: the refine flow runs the driver twice against one registry, and
// the second run must accumulate onto the same series, not panic.
func TestRunMetricsSharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	for i := 0; i < 2; i++ {
		var buf bytes.Buffer
		if err := Run(t.Context(), toy(10), Options{Workers: 2, Metrics: reg}, &buf); err != nil {
			t.Fatal(err)
		}
	}
	if c := reg.Snapshot().Family(MetricItemsTotal).Get("toy", "unspecified"); c == nil || c.Value != 20 {
		t.Fatalf("%s after two runs = %+v, want 20", MetricItemsTotal, c)
	}
}

// fidelityBatch is a toy batch that declares a fidelity.
type fidelityBatch struct {
	toyBatch
	fid string
}

func (b fidelityBatch) DescribeFidelity() string { return b.fid }

// TestFidelityOf pins the label fallback: batches without the optional
// interface (or describing themselves as empty) label as "unspecified";
// described batches use their own label.
func TestFidelityOf(t *testing.T) {
	if got := FidelityOf(toy(1)); got != "unspecified" {
		t.Errorf("FidelityOf(toy) = %q, want unspecified", got)
	}
	if got := FidelityOf(fidelityBatch{toy(1), "analytical"}); got != "analytical" {
		t.Errorf("FidelityOf(described) = %q, want analytical", got)
	}
	if got := FidelityOf(fidelityBatch{toy(1), ""}); got != "unspecified" {
		t.Errorf("FidelityOf(empty description) = %q, want unspecified", got)
	}
}
