package work

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dist/journal"
	"repro/internal/sweep"
)

// toyBatch is a fast synthetic kind: item i renders to {"i":lo+i}. The
// offset makes MarshalRange/Unmarshal round trips observable — a decoded
// sub-batch must keep producing the original indices.
type toyBatch struct {
	Lo     int `json:"lo"`
	Hi     int `json:"hi"`
	failAt int // absolute index that fails deterministically; -1 = none
}

func (t toyBatch) Kind() string { return "toy" }
func (t toyBatch) Len() int     { return t.Hi - t.Lo }
func (t toyBatch) Hash() (string, error) {
	return journal.Hash(toyBatch{Lo: t.Lo, Hi: t.Hi})
}
func (t toyBatch) RunItem(_ context.Context, i int) (json.RawMessage, error) {
	if t.Lo+i == t.failAt {
		return nil, fmt.Errorf("toy item %d exploded", t.Lo+i)
	}
	return json.RawMessage(fmt.Sprintf(`{"i":%d}`, t.Lo+i)), nil
}
func (t toyBatch) MarshalRange(r sweep.Range) (json.RawMessage, error) {
	return json.Marshal(toyBatch{Lo: t.Lo + r.Lo, Hi: t.Lo + r.Hi})
}

func init() {
	Register("toy", func(payload json.RawMessage) (Batch, error) {
		var t toyBatch
		if err := json.Unmarshal(payload, &t); err != nil {
			return nil, err
		}
		t.failAt = -1
		return t, nil
	})
}

func toy(n int) toyBatch { return toyBatch{Lo: 0, Hi: n, failAt: -1} }

// toyWant renders the sequential output for indices [0, n).
func toyWant(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"i":%d}`+"\n", i)
	}
	return b.String()
}

// TestRunOrderedAtAnyWorkerCount pins the driver's core contract: the
// streamed bytes are input-ordered and identical at any worker count.
func TestRunOrderedAtAnyWorkerCount(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var buf bytes.Buffer
		if err := Run(t.Context(), toy(17), Options{Workers: workers}, &buf); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got, want := buf.String(), toyWant(17); got != want {
			t.Errorf("workers=%d:\n got: %q\nwant: %q", workers, got, want)
		}
	}
}

// TestCollectMatchesRun checks the buffered driver returns exactly the
// streamed lines, in order.
func TestCollectMatchesRun(t *testing.T) {
	lines, err := Collect(t.Context(), toy(9), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, l := range lines {
		buf.Write(l)
		buf.WriteByte('\n')
	}
	if got, want := buf.String(), toyWant(9); got != want {
		t.Errorf("collect:\n got: %q\nwant: %q", got, want)
	}
}

// TestRunCheckpointResume drives the journal path: a full checkpointed
// run journals everything; a resume over the replayed lines emits nothing;
// a resume over a partial replay emits exactly the remainder.
func TestRunCheckpointResume(t *testing.T) {
	b := toy(6)
	path := filepath.Join(t.TempDir(), "toy.journal")
	jr, done, err := OpenJournal(path, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 0 {
		t.Fatalf("fresh journal replayed %d lines", len(done))
	}
	var first bytes.Buffer
	if err := Run(t.Context(), b, Options{Workers: 2, Journal: jr, Done: done}, &first); err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if first.String() != toyWant(6) {
		t.Fatalf("checkpointed run emitted %q", first.String())
	}

	// Full journal: resume emits nothing.
	jr, done, err = OpenJournal(path, b, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 6 {
		t.Fatalf("replayed %d lines, want 6", len(done))
	}
	var again bytes.Buffer
	if err := Run(t.Context(), b, Options{Journal: jr, Done: done}, &again); err != nil {
		t.Fatal(err)
	}
	jr.Close()
	if again.Len() != 0 {
		t.Fatalf("fully journaled batch re-emitted %q", again.String())
	}

	// Partial replay (indices 0 and 3): the run emits exactly the others.
	partial := map[int]json.RawMessage{0: done[0], 3: done[3]}
	var rest bytes.Buffer
	if err := Run(t.Context(), b, Options{Workers: 2, Done: partial}, &rest); err != nil {
		t.Fatal(err)
	}
	want := `{"i":1}` + "\n" + `{"i":2}` + "\n" + `{"i":4}` + "\n" + `{"i":5}` + "\n"
	if rest.String() != want {
		t.Errorf("resumed run:\n got: %q\nwant: %q", rest.String(), want)
	}
}

// TestReplayJournalReadsWithoutTruncating checks the journal-cat read
// side: a torn final line is tolerated but the file is left untouched.
func TestReplayJournalReadsWithoutTruncating(t *testing.T) {
	b := toy(3)
	path := filepath.Join(t.TempDir(), "toy.journal")
	jr, _, err := OpenJournal(path, b, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := jr.Record(0, []byte(`{"i":0}`)); err != nil {
		t.Fatal(err)
	}
	// A torn append, as a kill mid-write leaves.
	if _, err := fmt.Fprintf(jrFile(t, path), `{"i":1,"line":{"i`); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	done, err := ReplayJournal(path, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(done) != 1 || string(done[0]) != `{"i":0}` {
		t.Fatalf("replayed %v", done)
	}
	// A second replay still sees the same file (nothing was truncated).
	if _, err := ReplayJournal(path, b); err != nil {
		t.Fatal(err)
	}
}

// jrFile opens the journal for a raw append (simulated crash artifact).
func jrFile(t *testing.T, path string) io.Writer {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestRunItemFailureAborts checks a deterministic item failure surfaces
// through the driver with the engine's canonical wrapping.
func TestRunItemFailureAborts(t *testing.T) {
	b := toy(5)
	b.failAt = 3
	var buf bytes.Buffer
	err := Run(t.Context(), b, Options{Workers: 1}, &buf)
	if err == nil || !strings.Contains(err.Error(), "toy item 3 exploded") {
		t.Fatalf("err = %v, want the toy explosion", err)
	}
	if got, want := buf.String(), toyWant(3); got != want {
		t.Errorf("pre-failure prefix:\n got: %q\nwant: %q", got, want)
	}
}

// failWriter fails every write after the first.
type failWriter struct{ writes int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > 1 {
		return 0, fmt.Errorf("sink full")
	}
	return len(p), nil
}

// TestRunSinkErrorCancels checks a write failure aborts the run with the
// failing index in the error instead of computing unread output.
func TestRunSinkErrorCancels(t *testing.T) {
	err := Run(t.Context(), toy(8), Options{Workers: 2}, &failWriter{})
	if err == nil || !strings.Contains(err.Error(), "work: emitting item 1") {
		t.Fatalf("err = %v, want the sink failure on item 1", err)
	}
}

// TestRunEmptyBatch pins the no-items diagnostic.
func TestRunEmptyBatch(t *testing.T) {
	if err := Run(t.Context(), toy(0), Options{}, &bytes.Buffer{}); err == nil ||
		!strings.Contains(err.Error(), "no items") {
		t.Fatalf("empty batch: %v", err)
	}
	if _, err := Collect(t.Context(), toy(0), Options{}); err == nil ||
		!strings.Contains(err.Error(), "no items") {
		t.Fatalf("empty collect: %v", err)
	}
}

// TestRegistryRoundTrip pins the wire cycle: MarshalRange → Unmarshal
// yields a batch producing the original absolute indices.
func TestRegistryRoundTrip(t *testing.T) {
	payload, err := toy(10).MarshalRange(sweep.Range{Lo: 4, Hi: 7})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := Unmarshal("toy", payload)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 {
		t.Fatalf("sub-batch has %d items, want 3", sub.Len())
	}
	lines, err := Collect(t.Context(), sub, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{`{"i":4}`, `{"i":5}`, `{"i":6}`}
	for i, l := range lines {
		if string(l) != want[i] {
			t.Errorf("line %d = %s, want %s", i, l, want[i])
		}
	}
}

// TestUnmarshalUnknownKind pins the unknown-kind diagnostic (it names the
// registered kinds, so a version-skewed fleet diagnoses itself).
func TestUnmarshalUnknownKind(t *testing.T) {
	_, err := Unmarshal("no-such-kind", []byte(`{}`))
	if err == nil || !strings.Contains(err.Error(), `"no-such-kind"`) ||
		!strings.Contains(err.Error(), "toy") {
		t.Fatalf("err = %v, want unknown-kind naming the registry", err)
	}
}

// TestRegisterDuplicatePanics pins double registration as a programming
// error.
func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("toy", func(json.RawMessage) (Batch, error) { return nil, nil })
}

// TestHeaderPinsBatch checks the journal header carries kind, hash, and
// count.
func TestHeaderPinsBatch(t *testing.T) {
	h, err := Header(toy(4))
	if err != nil {
		t.Fatal(err)
	}
	hash, err := toy(4).Hash()
	if err != nil {
		t.Fatal(err)
	}
	want := journal.Header{Kind: "toy", BatchSHA256: hash, N: 4}
	if h != want {
		t.Errorf("header = %+v, want %+v", h, want)
	}
}

// TestKindsSorted checks the registry listing is stable.
func TestKindsSorted(t *testing.T) {
	kinds := Kinds()
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Fatalf("kinds not sorted: %v", kinds)
		}
	}
	found := false
	for _, k := range kinds {
		if k == "toy" {
			found = true
		}
	}
	if !found {
		t.Fatalf("registered kind missing from %v", kinds)
	}
}
