package work_test

// The cross-kind equivalence suite: every payload kind registered with
// the work registry must produce byte-identical output across the four
// execution shapes the unified driver promises — sequential, parallel
// streamed, checkpointed-then-resumed, and in-process distributed. This is
// the contract a new workload kind signs by calling work.Register: add a
// fixture here and the whole matrix is enforced for it.

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/exp"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/work"
)

// tinyExpEnv is an experiment environment cheap enough to evaluate
// repeatedly; determinism does not depend on trace length.
func tinyExpEnv() *exp.Env {
	e := exp.NewQuickEnv()
	e.Accesses = 30_000
	return e
}

// fixtures returns one representative batch per registered kind. The
// suite fails when a registered kind has no fixture, so adding a kind
// without wiring it into the equivalence matrix is impossible.
func fixtures(t *testing.T) map[string]work.Batch {
	t.Helper()
	b, err := scenario.LoadBatch(strings.NewReader(`{"scenarios":[
		{"name":"a","l1_kb":16,"l2_kb":256,"workload":"tpcc","accesses":20000},
		{"name":"b","l1_kb":16,"l2_kb":512,"workload":"tpcc","accesses":20000},
		{"name":"c","l1_kb":32,"l2_kb":256,"workload":"tpcc","accesses":20000},
		{"name":"d","l1_kb":32,"l2_kb":512,"workload":"tpcc","accesses":20000}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	eb, err := exp.NewBatch([]string{"tab-fit", "tab-missrates"}, tinyExpEnv())
	if err != nil {
		t.Fatal(err)
	}
	// The grid fixture mirrors the scenario fixture's four points, but
	// generated: the batch carries only axes, and every execution shape —
	// including the wire-decoded distributed slices — re-expands them.
	gs, err := grid.Load(strings.NewReader(`{"grid":{
		"axes":{"l1_kb":[16,32],"l2_kb":[256,512]},
		"base":{"workload":"tpcc","accesses":20000}
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := gs.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return map[string]work.Batch{
		scenario.JournalKind: b,
		exp.WorkKind:         eb,
		grid.WorkKind:        gb,
	}
}

// TestAllKindsEquivalentAcrossExecutionShapes is the acceptance suite for
// the unified workload API.
func TestAllKindsEquivalentAcrossExecutionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every registered kind through four execution shapes")
	}
	// Wire-decoded experiment batches execute against the shared process
	// environment; pin it to the fixture's scale so the distributed leg
	// computes the same numbers.
	exp.SetProcessEnv(tinyExpEnv)
	defer exp.SetProcessEnv(nil)

	fx := fixtures(t)
	for _, kind := range work.Kinds() {
		if kind == "toy" {
			continue // the driver's own synthetic test kind (work_test.go)
		}
		b, ok := fx[kind]
		if !ok {
			t.Fatalf("registered kind %q has no equivalence fixture; add one to fixtures()", kind)
		}
		t.Run(kind, func(t *testing.T) {
			var seq bytes.Buffer
			if err := work.Run(t.Context(), b, work.Options{Workers: 1}, &seq); err != nil {
				t.Fatal(err)
			}
			if n := strings.Count(seq.String(), "\n"); n != b.Len() {
				t.Fatalf("sequential run emitted %d lines for %d items", n, b.Len())
			}
			t.Run("parallel-streamed", func(t *testing.T) {
				var par bytes.Buffer
				if err := work.Run(t.Context(), b, work.Options{Workers: 4}, &par); err != nil {
					t.Fatal(err)
				}
				diffBytes(t, par.Bytes(), seq.Bytes())
			})
			t.Run("collected", func(t *testing.T) {
				lines, err := work.Collect(t.Context(), b, work.Options{Workers: 3})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				for _, l := range lines {
					buf.Write(l)
					buf.WriteByte('\n')
				}
				diffBytes(t, buf.Bytes(), seq.Bytes())
			})
			t.Run("checkpointed-resumed", func(t *testing.T) {
				diffBytes(t, checkpointResumed(t, b), seq.Bytes())
			})
			t.Run("distributed", func(t *testing.T) {
				diffBytes(t, distributed(t, b), seq.Bytes())
			})
			t.Run("metrics-streamed", func(t *testing.T) {
				// Instrumentation is observation-only: the same parallel
				// run with a live registry emits the same bytes, and the
				// registry ends up with one completion per item under the
				// kind's declared fidelity label.
				reg := obs.NewRegistry()
				var par bytes.Buffer
				if err := work.Run(t.Context(), b, work.Options{Workers: 4, Metrics: reg}, &par); err != nil {
					t.Fatal(err)
				}
				diffBytes(t, par.Bytes(), seq.Bytes())
				c := reg.Snapshot().Family(work.MetricItemsTotal).Get(kind, work.FidelityOf(b))
				if c == nil || c.Value != float64(b.Len()) {
					t.Fatalf("%s{%s,%s} = %+v, want %d", work.MetricItemsTotal, kind, work.FidelityOf(b), c, b.Len())
				}
			})
		})
	}
}

// TestAnalyticalGridEquivalentAcrossExecutionShapes runs a grid pinned
// to the analytical miss-matrix fidelity through all five execution
// shapes. Fidelity travels inside the expanded configs (grid base), so
// the wire-decoded distributed slices re-expand to analytical points
// too; the shared profile memo behind the fast path must therefore be
// deterministic under concurrency for this to hold byte-for-byte.
func TestAnalyticalGridEquivalentAcrossExecutionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a grid through five execution shapes")
	}
	gs, err := grid.Load(strings.NewReader(`{"grid":{
		"name":"a-l1{l1_kb}-l2{l2_kb}-{fidelity}",
		"axes":{"l1_kb":[16,32],"l2_kb":[256,512]},
		"base":{"workload":"tpcc","accesses":20000,"fidelity":"analytical"}
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	b, err := gs.Expand()
	if err != nil {
		t.Fatal(err)
	}

	var seq bytes.Buffer
	if err := work.Run(t.Context(), b, work.Options{Workers: 1}, &seq); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(seq.String(), "\n"); n != b.Len() {
		t.Fatalf("sequential run emitted %d lines for %d items", n, b.Len())
	}
	t.Run("parallel-streamed", func(t *testing.T) {
		var par bytes.Buffer
		if err := work.Run(t.Context(), b, work.Options{Workers: 4}, &par); err != nil {
			t.Fatal(err)
		}
		diffBytes(t, par.Bytes(), seq.Bytes())
	})
	t.Run("collected", func(t *testing.T) {
		lines, err := work.Collect(t.Context(), b, work.Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		for _, l := range lines {
			buf.Write(l)
			buf.WriteByte('\n')
		}
		diffBytes(t, buf.Bytes(), seq.Bytes())
	})
	t.Run("checkpointed-resumed", func(t *testing.T) {
		diffBytes(t, checkpointResumed(t, b), seq.Bytes())
	})
	t.Run("distributed", func(t *testing.T) {
		diffBytes(t, distributed(t, b), seq.Bytes())
	})
}

// diffBytes fails with a readable diff when got differs from want.
func diffBytes(t *testing.T, got, want []byte) {
	t.Helper()
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from sequential run:\n got: %q\nwant: %q", got, want)
	}
}

// checkpointResumed runs the batch checkpointed, simulates a kill by
// cutting the journal back to its header plus first entry (with a torn
// second entry, as a crash mid-append leaves), resumes, and returns
// journal prefix + resumed emission.
func checkpointResumed(t *testing.T, b work.Batch) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "equiv.journal")
	jr, done, err := work.OpenJournal(path, b, false)
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := work.Run(t.Context(), b, work.Options{Workers: 2, Journal: jr, Done: done}, &full); err != nil {
		t.Fatal(err)
	}
	jr.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	jlines := strings.SplitAfter(string(data), "\n")
	torn := jlines[0] + jlines[1] + `{"i":1,"line":{"tr`
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	jr, done, err = work.OpenJournal(path, b, true)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	if len(done) != 1 {
		t.Fatalf("replayed %d entries, want 1", len(done))
	}
	var resumed bytes.Buffer
	if err := work.Run(t.Context(), b, work.Options{Workers: 2, Journal: jr, Done: done}, &resumed); err != nil {
		t.Fatal(err)
	}
	prefix := append([]byte{}, done[0]...)
	prefix = append(prefix, '\n')
	return append(prefix, resumed.Bytes()...)
}

// distributed runs the batch through an in-process coordinator with two
// registry-executor workers and returns the reassembled emission.
func distributed(t *testing.T, b work.Batch) []byte {
	t.Helper()
	spec, err := dist.SpecOf(b)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	c, err := dist.New(ctx, spec, dist.Config{Units: 3, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	out := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		for line := range c.Results() {
			buf.Write(line)
			buf.WriteByte('\n')
		}
		out <- buf.Bytes()
	}()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		w := &dist.Worker{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("equiv-w%d", i),
			Exec:        dist.RegistryExecutor(1),
			Client:      srv.Client(),
			Poll:        5 * time.Millisecond,
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	got := <-out
	if err := c.Wait(); err != nil {
		t.Fatal(err)
	}
	return got
}
