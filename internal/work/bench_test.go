package work

// Driver benchmarks on the synthetic toy kind: they measure the unified
// driver's own overhead (scheduling, ordering, emission) with item cost
// near zero, so a regression here is a regression in the orchestration
// hot path every workload kind shares. The CI benchmark-regression job
// gates on these together with the internal/sweep engine benchmarks.

import (
	"io"
	"testing"

	"repro/internal/obs"
)

const benchItems = 512

// BenchmarkRunSequential is the single-worker streaming baseline.
func BenchmarkRunSequential(b *testing.B) {
	benchRun(b, 1)
}

// BenchmarkRunParallel streams the same batch through a worker pool.
func BenchmarkRunParallel(b *testing.B) {
	benchRun(b, 4)
}

func benchRun(b *testing.B, workers int) {
	b.ReportAllocs()
	batch := toy(benchItems)
	for i := 0; i < b.N; i++ {
		if err := Run(b.Context(), batch, Options{Workers: workers}, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollect measures the buffered driver (the distributed unit
// executor's path).
func BenchmarkCollect(b *testing.B) {
	b.ReportAllocs()
	batch := toy(benchItems)
	for i := 0; i < b.N; i++ {
		if _, err := Collect(b.Context(), batch, Options{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkObsOverhead prices Options.Metrics on the driver hot path:
// the same parallel streamed run bare and instrumented. Toy items cost
// nearly nothing, so this is the worst case — the instrumentation
// (sampled latency timing plus a handful of atomic adds per item) is
// priced against the driver's own per-item overhead, not against real
// workloads whose items run 0.4ms–75ms. The acceptance bar is <5%
// sec/op between the two sub-benchmarks; CI's bench-regression gate
// then watches both.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("bare", func(b *testing.B) {
		benchRun(b, 4)
	})
	b.Run("metrics", func(b *testing.B) {
		b.ReportAllocs()
		batch := toy(benchItems)
		reg := obs.NewRegistry()
		for i := 0; i < b.N; i++ {
			if err := Run(b.Context(), batch, Options{Workers: 4, Metrics: reg}, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}
