// Package work is the repository's unified workload API: one Batch
// abstraction that every payload kind — scenario batches, experiment sets,
// whatever comes next — implements once, and one generic driver that then
// gives that kind sequential and parallel execution, NDJSON streaming,
// journal checkpoint/resume, and (through internal/dist) distribution
// across processes and machines, all preserving the repository's core
// invariant: output is byte-identical to the sequential run
// (docs/determinism.md states the invariant and the machinery holding it).
//
// A Batch is an ordered list of independent items. Each item renders to
// exactly one compact NDJSON line (RunItem), the whole batch has a
// canonical content hash (Hash) that pins checkpoint journals and
// distributed runs to their input, and any contiguous index range can be
// marshalled to a self-contained wire payload (MarshalRange) and turned
// back into a runnable Batch by the kind registry (Register/Unmarshal) —
// which is how a distributed work unit travels to a worker that shares
// nothing with the coordinator.
//
// A Batch may additionally implement ItemKeyer, giving each item a
// stable content-derived key. Equal keys promise byte-identical RunItem
// lines, which is what lets the multi-batch result store
// (internal/dist/store) share completed items across overlapping batches
// — a grid extending a previous grid re-executes only the new points.
// Keys must be namespaced by line schema: two kinds that would ever
// render the same logical item differently must not collide.
//
// Adding a workload kind is therefore one file in its own package:
// implement Batch, call Register in init, and the kind immediately works
// with `scenario`-style streaming, `-checkpoint/-resume`, and `sweepd`
// distribution. The driver (Run, Collect) and the executors built on the
// registry (dist.RegistryExecutor) never change.
package work
