package model

import (
	"math"
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/units"
)

func l1Cache(t *testing.T) *components.Cache {
	t.Helper()
	c, err := components.New(device.Default65nm(), cachecfg.L1(16*cachecfg.KB))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func cellSamples(t *testing.T) []charlib.Sample {
	t.Helper()
	c := l1Cache(t)
	s, err := charlib.Characterize(c.Part(components.PartCellArray), charlib.DefaultGrid())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestLeakageModelEval(t *testing.T) {
	m := LeakageModel{A0: 1, A1: 2, Alpha1: -1, A2: 3, Alpha2: -0.5}
	got := m.Eval(0, 0)
	if !units.ApproxEqual(got, 6, 1e-12, 0) {
		t.Errorf("Eval(0,0) = %v, want 6", got)
	}
	// Larger knobs -> smaller leakage.
	if m.Eval(0.5, 14) >= m.Eval(0.2, 10) {
		t.Error("leakage model must decrease in both knobs (negative exponents)")
	}
}

func TestDelayModelEval(t *testing.T) {
	m := DelayModel{K0: 1e-10, K1: 1e-11, K3: 2, K2: 1e-11}
	if m.Eval(0.5, 14) <= m.Eval(0.2, 10) {
		t.Error("delay model must increase in both knobs")
	}
}

func TestFitLeakageCellArray(t *testing.T) {
	samples := cellSamples(t)
	m, stats, err := FitLeakage(samples)
	if err != nil {
		t.Fatalf("FitLeakage: %v (stats %v)", err, stats)
	}
	if stats.R2 < 0.98 {
		t.Errorf("leakage fit R2 = %v, want >= 0.98 (model %v)", stats.R2, m)
	}
	// The paper's signs: amplitudes non-negative, exponents negative.
	if m.A1 < 0 || m.A2 < 0 || m.Alpha1 >= 0 || m.Alpha2 >= 0 {
		t.Errorf("fitted model has wrong structure: %v", m)
	}
	// The Vth exponent should be near the physical -1/(n*vT) ~ -24/V.
	if m.Alpha1 > -10 || m.Alpha1 < -50 {
		t.Errorf("Alpha1 = %v, want physically plausible [-50,-10]", m.Alpha1)
	}
	// The Tox exponent should be near -ln(10)/2.2A ~ -1.05/A.
	if m.Alpha2 > -0.4 || m.Alpha2 < -2 {
		t.Errorf("Alpha2 = %v, want ~-1/A", m.Alpha2)
	}
}

func TestFitLeakageRelativeAccuracy(t *testing.T) {
	samples := cellSamples(t)
	m, _, err := FitLeakage(samples)
	if err != nil {
		t.Fatal(err)
	}
	// Max relative error across the grid should be modest even where leakage
	// is small (the 1/y weighting's job).
	worst := 0.0
	for _, s := range samples {
		rel := math.Abs(m.Eval(s.Vth, s.ToxA)-s.LeakW) / s.LeakW
		if rel > worst {
			worst = rel
		}
	}
	if worst > 0.35 {
		t.Errorf("worst relative leakage-model error = %v, want <= 0.35", worst)
	}
}

func TestFitDelayCellArray(t *testing.T) {
	samples := cellSamples(t)
	m, stats, err := FitDelay(samples)
	if err != nil {
		t.Fatalf("FitDelay: %v (stats %v)", err, stats)
	}
	if stats.R2 < 0.98 {
		t.Errorf("delay fit R2 = %v, want >= 0.98 (model %v)", stats.R2, m)
	}
	if m.K1 < 0 || m.K2 < 0 || m.K3 <= 0 {
		t.Errorf("fitted delay model has wrong structure: %v", m)
	}
	// "exponential growth function with very small exponents": K3 of order a
	// few per volt, far below the leakage exponent's magnitude.
	if m.K3 > 15 {
		t.Errorf("K3 = %v, expected a small growth exponent", m.K3)
	}
}

func TestFitEnergyLinear(t *testing.T) {
	samples := cellSamples(t)
	m, stats, err := FitEnergy(samples)
	if err != nil {
		t.Fatal(err)
	}
	if stats.R2 < 0.95 {
		t.Errorf("energy fit R2 = %v", stats.R2)
	}
	if m.E1 <= 0 {
		t.Errorf("energy must grow with Tox, got slope %v", m.E1)
	}
}

func TestFitErrorsOnTinySampleSets(t *testing.T) {
	if _, _, err := FitLeakage(nil); err == nil {
		t.Error("empty sample set accepted")
	}
	if _, _, err := FitDelay(make([]charlib.Sample, 2)); err == nil {
		t.Error("two samples accepted for 4-parameter fit")
	}
}

func TestBuildCacheModelAllPartsFitWell(t *testing.T) {
	c := l1Cache(t)
	cm, err := Build(c, charlib.DefaultGrid(), 0.98)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	for _, p := range components.Parts() {
		comp := cm.Comps[p]
		if comp.LeakStats.R2 < 0.98 || comp.DelayStats.R2 < 0.98 {
			t.Errorf("%v: leak R2 %.4f delay R2 %.4f", p, comp.LeakStats.R2, comp.DelayStats.R2)
		}
	}
}

func TestCacheModelTracksDirectEvaluation(t *testing.T) {
	c := l1Cache(t)
	cm, err := Build(c, charlib.DefaultGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Compare model vs direct circuit evaluation at off-grid points.
	points := []components.Assignment{
		components.Uniform(device.OP(0.275, 10.7)),
		components.Uniform(device.OP(0.425, 13.3)),
		components.Split(device.OP(0.475, 13.8), device.OP(0.225, 10.2)),
	}
	for _, a := range points {
		gotL := cm.LeakageW(a)
		wantL := c.Leakage(a).Total()
		if math.Abs(gotL-wantL)/wantL > 0.4 {
			t.Errorf("leakage model at %v: %v vs direct %v", a, gotL, wantL)
		}
		gotD := cm.AccessTimeS(a)
		wantD := c.AccessTime(a)
		if math.Abs(gotD-wantD)/wantD > 0.1 {
			t.Errorf("delay model at %v: %v vs direct %v", a, gotD, wantD)
		}
	}
}

func TestCacheModelAdditivity(t *testing.T) {
	c := l1Cache(t)
	cm, err := Build(c, charlib.CoarseGrid(), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := components.Uniform(device.OP(0.3, 12))
	var wantLeak, wantDelay float64
	for i := range cm.Comps {
		wantLeak += cm.Comps[i].Leak.Eval(0.3, 12)
		wantDelay += cm.Comps[i].Delay.Eval(0.3, 12)
	}
	if !units.ApproxEqual(cm.LeakageW(a), wantLeak, 1e-12, 0) {
		t.Error("LeakageW must sum component models")
	}
	if !units.ApproxEqual(cm.AccessTimeS(a), wantDelay, 1e-12, 0) {
		t.Error("AccessTimeS must sum component models")
	}
}

func TestBuildFailsOnImpossibleR2(t *testing.T) {
	c := l1Cache(t)
	if _, err := Build(c, charlib.CoarseGrid(), 0.999999999); err == nil {
		t.Error("unattainable R2 gate should fail")
	}
}

func TestModelStrings(t *testing.T) {
	lm := LeakageModel{A0: 1e-3, A1: 2, Alpha1: -20, A2: 3, Alpha2: -1}
	if lm.String() == "" {
		t.Error("empty LeakageModel string")
	}
	dm := DelayModel{K0: 1e-10, K1: 1e-11, K3: 2, K2: 1e-11}
	if dm.String() == "" {
		t.Error("empty DelayModel string")
	}
}
