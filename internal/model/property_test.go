package model

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
)

// Property-based tests on the fitted models: the paper's optimization
// correctness relies on the fitted surfaces preserving the physical
// monotonicities of the underlying circuit model.

var (
	propOnce  sync.Once
	propModel *CacheModel
)

func fittedModel(t *testing.T) *CacheModel {
	t.Helper()
	propOnce.Do(func() {
		c, err := components.New(device.Default65nm(), cachecfg.L1(16*cachecfg.KB))
		if err != nil {
			t.Fatal(err)
		}
		propModel, err = Build(c, charlib.DefaultGrid(), 0.97)
		if err != nil {
			t.Fatal(err)
		}
	})
	if propModel == nil {
		t.Fatal("model build failed earlier")
	}
	return propModel
}

// clampKnobs maps arbitrary floats into the legal knob box.
func clampKnobs(a, b float64) (vth, toxA float64) {
	fa := math.Abs(math.Mod(a, 1))
	fb := math.Abs(math.Mod(b, 1))
	if math.IsNaN(fa) {
		fa = 0.5
	}
	if math.IsNaN(fb) {
		fb = 0.5
	}
	return 0.20 + 0.30*fa, 10 + 4*fb
}

func TestFittedLeakageMonotoneProperty(t *testing.T) {
	m := fittedModel(t)
	f := func(a, b, c float64) bool {
		v1, tox := clampKnobs(a, c)
		v2, _ := clampKnobs(b, c)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		if v1 == v2 {
			return true
		}
		for i := range m.Comps {
			if m.Comps[i].Leak.Eval(v1, tox) < m.Comps[i].Leak.Eval(v2, tox) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("fitted leakage not monotone in Vth: %v", err)
	}
}

func TestFittedLeakageMonotoneInToxProperty(t *testing.T) {
	m := fittedModel(t)
	f := func(a, b, c float64) bool {
		v, t1 := clampKnobs(c, a)
		_, t2 := clampKnobs(c, b)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 == t2 {
			return true
		}
		for i := range m.Comps {
			if m.Comps[i].Leak.Eval(v, t1) < m.Comps[i].Leak.Eval(v, t2) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("fitted leakage not monotone in Tox: %v", err)
	}
}

func TestFittedDelayMonotoneProperty(t *testing.T) {
	m := fittedModel(t)
	f := func(a, b, c float64) bool {
		v1, tox := clampKnobs(a, c)
		v2, _ := clampKnobs(b, c)
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		if v1 == v2 {
			return true
		}
		for i := range m.Comps {
			if m.Comps[i].Delay.Eval(v2, tox) < m.Comps[i].Delay.Eval(v1, tox) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("fitted delay not monotone in Vth: %v", err)
	}
}

func TestFittedSurfacesPositiveProperty(t *testing.T) {
	m := fittedModel(t)
	f := func(a, b float64) bool {
		v, tox := clampKnobs(a, b)
		asgn := components.Uniform(device.OP(v, tox))
		return m.LeakageW(asgn) > 0 && m.AccessTimeS(asgn) > 0 && m.DynamicEnergyJ(asgn) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("fitted surfaces must stay positive on the knob box: %v", err)
	}
}

func TestPartEvaluatorsAgreeWithSums(t *testing.T) {
	m := fittedModel(t)
	asgn := components.Split(device.OP(0.45, 13.5), device.OP(0.25, 10.5))
	var leak, delay, energy float64
	for _, p := range components.Parts() {
		leak += m.PartLeakageW(p, asgn[p])
		delay += m.PartDelayS(p, asgn[p])
		energy += m.PartDynamicEnergyJ(p, asgn[p])
	}
	if math.Abs(leak-m.LeakageW(asgn)) > 1e-12*math.Abs(leak) {
		t.Error("PartLeakageW does not sum to LeakageW")
	}
	if math.Abs(delay-m.AccessTimeS(asgn)) > 1e-12*math.Abs(delay) {
		t.Error("PartDelayS does not sum to AccessTimeS")
	}
	if math.Abs(energy-m.DynamicEnergyJ(asgn)) > 1e-12*math.Abs(energy) {
		t.Error("PartDynamicEnergyJ does not sum to DynamicEnergyJ")
	}
}
