// Package model implements the analytical forms of Section 3 of the paper
// and fits them to characterization data:
//
//	P_total(Vth, Tox) = A0 + A1*e^{a1*Vth} + A2*e^{a2*Tox}
//	T_d(Vth, Tox)     = k0 + k1*e^{k3*Vth} + k2*Tox
//
// (leakage exponential in both knobs; delay linear in Tox and weakly
// exponential in Vth). The same forms hold for every cache component, so a
// whole cache is modelled by summing fitted per-component models — exactly
// the additive structure the paper's optimization problems assume.
package model

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/fit"
)

// LeakageModel is P(V,T) = A0 + A1*e^{Alpha1*V} + A2*e^{Alpha2*T}, with V in
// volts, T in angstroms, P in watts. Alpha1 and Alpha2 are negative.
type LeakageModel struct {
	A0, A1, Alpha1, A2, Alpha2 float64
}

// Eval returns the modelled leakage power (W).
func (m LeakageModel) Eval(vth, toxA float64) float64 {
	return m.A0 + m.A1*math.Exp(m.Alpha1*vth) + m.A2*math.Exp(m.Alpha2*toxA)
}

func (m LeakageModel) String() string {
	return fmt.Sprintf("P(V,T) = %.3g + %.3g*e^(%.3g*V) + %.3g*e^(%.3g*T) W",
		m.A0, m.A1, m.Alpha1, m.A2, m.Alpha2)
}

// DelayModel is D(V,T) = K0 + K1*e^{K3*V} + K2*T, with V in volts, T in
// angstroms, D in seconds. K3 is a small positive exponent; K2 is positive.
type DelayModel struct {
	K0, K1, K3, K2 float64
}

// Eval returns the modelled delay (s).
func (m DelayModel) Eval(vth, toxA float64) float64 {
	return m.K0 + m.K1*math.Exp(m.K3*vth) + m.K2*toxA
}

func (m DelayModel) String() string {
	return fmt.Sprintf("D(V,T) = %.3g + %.3g*e^(%.3g*V) + %.3g*T s",
		m.K0, m.K1, m.K3, m.K2)
}

// EnergyModel is E(T) = E0 + E1*T: dynamic energy is set by capacitance,
// which grows linearly with Tox through the geometry, and is nearly
// independent of Vth.
type EnergyModel struct {
	E0, E1 float64
}

// Eval returns the modelled dynamic energy per access (J).
func (m EnergyModel) Eval(toxA float64) float64 { return m.E0 + m.E1*toxA }

// FitLeakage fits the paper's leakage form to samples by seeding the
// exponents from marginal slices and refining with Levenberg–Marquardt using
// relative (1/y) weighting, since leakage spans decades.
func FitLeakage(samples []charlib.Sample) (LeakageModel, fit.Stats, error) {
	if len(samples) < 6 {
		return LeakageModel{}, fit.Stats{}, fmt.Errorf("model: need >= 6 samples, got %d", len(samples))
	}
	vMin, vMax, tMin, tMax := extremes(samples)

	// Seed Alpha1 from the Vth marginal at the thickest oxide, where the
	// gate term is negligible.
	a1 := slopeLog(samples, func(s charlib.Sample) (float64, float64, bool) {
		return s.Vth, s.SubW, approx(s.ToxA, tMax)
	}, vMin, vMax)
	if a1 >= 0 || math.IsNaN(a1) {
		a1 = -20
	}
	// Seed Alpha2 from the Tox marginal at the highest threshold, where the
	// subthreshold term is negligible.
	a2 := slopeLog(samples, func(s charlib.Sample) (float64, float64, bool) {
		return s.ToxA, s.GateW, approx(s.Vth, vMax)
	}, tMin, tMax)
	if a2 >= 0 || math.IsNaN(a2) {
		a2 = -1
	}

	// Linear solve for the amplitudes given the seeded exponents.
	rows := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		rows[i] = []float64{1, math.Exp(a1 * s.Vth), math.Exp(a2 * s.ToxA)}
		ys[i] = s.LeakW
	}
	amp, _, err := fit.LinearRegression(rows, ys)
	if err != nil {
		return LeakageModel{}, fit.Stats{}, err
	}
	p0 := []float64{math.Max(amp[0], 0), math.Max(amp[1], 1e-12), a1, math.Max(amp[2], 1e-12), a2}

	xs := make([][]float64, len(samples))
	weights := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = []float64{s.Vth, s.ToxA}
		weights[i] = 1 / math.Max(s.LeakW, 1e-30)
	}
	mdl := func(p, x []float64) float64 {
		return p[0] + p[1]*math.Exp(p[2]*x[0]) + p[3]*math.Exp(p[4]*x[1])
	}
	p, stats, err := fit.LevenbergMarquardt(mdl, xs, ys, p0, fit.LMOptions{
		MaxIterations: 400,
		Weights:       weights,
		Lower:         []float64{0, 0, -80, 0, -8},
		Upper:         []float64{math.Inf(1), math.Inf(1), -0.5, math.Inf(1), -0.05},
	})
	// ErrNoConverge still returns the best parameters found; the R2 gate in
	// Build is the arbiter of fit quality, not the iteration budget.
	if err != nil && !errors.Is(err, fit.ErrNoConverge) {
		return LeakageModel{}, stats, err
	}
	return LeakageModel{A0: p[0], A1: p[1], Alpha1: p[2], A2: p[3], Alpha2: p[4]}, stats, nil
}

// FitDelay fits the paper's delay form.
func FitDelay(samples []charlib.Sample) (DelayModel, fit.Stats, error) {
	if len(samples) < 5 {
		return DelayModel{}, fit.Stats{}, fmt.Errorf("model: need >= 5 samples, got %d", len(samples))
	}
	// Seed K3 with a small growth exponent and solve the rest linearly.
	k3 := 2.5
	rows := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		rows[i] = []float64{1, math.Exp(k3 * s.Vth), s.ToxA}
		ys[i] = s.DelayS
	}
	amp, _, err := fit.LinearRegression(rows, ys)
	if err != nil {
		return DelayModel{}, fit.Stats{}, err
	}
	p0 := []float64{amp[0], math.Max(amp[1], 1e-15), k3, math.Max(amp[2], 1e-15)}

	xs := make([][]float64, len(samples))
	for i, s := range samples {
		xs[i] = []float64{s.Vth, s.ToxA}
	}
	mdl := func(p, x []float64) float64 {
		return p[0] + p[1]*math.Exp(p[2]*x[0]) + p[3]*x[1]
	}
	p, stats, err := fit.LevenbergMarquardt(mdl, xs, ys, p0, fit.LMOptions{
		MaxIterations: 400,
		Lower:         []float64{math.Inf(-1), 0, 0.1, 0},
		Upper:         []float64{math.Inf(1), math.Inf(1), 30, math.Inf(1)},
	})
	if err != nil && !errors.Is(err, fit.ErrNoConverge) {
		return DelayModel{}, stats, err
	}
	return DelayModel{K0: p[0], K1: p[1], K3: p[2], K2: p[3]}, stats, nil
}

// FitEnergy fits the linear energy model (least squares on Tox).
func FitEnergy(samples []charlib.Sample) (EnergyModel, fit.Stats, error) {
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = s.ToxA
		ys[i] = s.EnergyJ
	}
	e0, e1, stats, err := fit.Linear(xs, ys)
	if err != nil {
		return EnergyModel{}, stats, err
	}
	return EnergyModel{E0: e0, E1: e1}, stats, nil
}

// ComponentModel bundles the three fitted models of one cache component.
type ComponentModel struct {
	Part components.PartID

	Leak      LeakageModel
	LeakStats fit.Stats

	Delay      DelayModel
	DelayStats fit.Stats

	Energy      EnergyModel
	EnergyStats fit.Stats
}

// CacheModel is the fitted analytical model of a whole cache: the sum of its
// four component models. It is the object the paper's optimizers minimize
// over, far cheaper to evaluate than the transistor-level netlists.
type CacheModel struct {
	Name  string
	Comps [components.PartCount]ComponentModel
}

// Build characterizes every component of the cache on the grid and fits the
// paper's model forms. It fails if any fit falls below minR2 (pass 0 to
// accept any fit).
func Build(c *components.Cache, g charlib.Grid, minR2 float64) (*CacheModel, error) {
	all, err := charlib.CharacterizeCache(c, g)
	if err != nil {
		return nil, err
	}
	cm := &CacheModel{Name: c.Cfg.String()}
	for _, p := range components.Parts() {
		samples := all[p]
		lm, ls, err := FitLeakage(samples)
		if err != nil {
			return nil, fmt.Errorf("model: %v leakage fit: %w", p, err)
		}
		dm, ds, err := FitDelay(samples)
		if err != nil {
			return nil, fmt.Errorf("model: %v delay fit: %w", p, err)
		}
		em, es, err := FitEnergy(samples)
		if err != nil {
			return nil, fmt.Errorf("model: %v energy fit: %w", p, err)
		}
		if minR2 > 0 {
			if ls.R2 < minR2 {
				return nil, fmt.Errorf("model: %v leakage fit R2 %.4f < %.4f", p, ls.R2, minR2)
			}
			if ds.R2 < minR2 {
				return nil, fmt.Errorf("model: %v delay fit R2 %.4f < %.4f", p, ds.R2, minR2)
			}
		}
		cm.Comps[p] = ComponentModel{
			Part: p,
			Leak: lm, LeakStats: ls,
			Delay: dm, DelayStats: ds,
			Energy: em, EnergyStats: es,
		}
	}
	return cm, nil
}

// LeakageW returns the modelled total leakage (W) under an assignment.
func (cm *CacheModel) LeakageW(a components.Assignment) float64 {
	var sum float64
	for i := range cm.Comps {
		op := a[i]
		sum += cm.Comps[i].Leak.Eval(op.Vth, op.ToxAngstrom())
	}
	return sum
}

// AccessTimeS returns the modelled access time (s) under an assignment.
func (cm *CacheModel) AccessTimeS(a components.Assignment) float64 {
	var sum float64
	for i := range cm.Comps {
		op := a[i]
		sum += cm.Comps[i].Delay.Eval(op.Vth, op.ToxAngstrom())
	}
	return sum
}

// DynamicEnergyJ returns the modelled per-access dynamic energy (J).
func (cm *CacheModel) DynamicEnergyJ(a components.Assignment) float64 {
	var sum float64
	for i := range cm.Comps {
		sum += cm.Comps[i].Energy.Eval(a[i].ToxAngstrom())
	}
	return sum
}

// PartLeakageW returns one component's modelled leakage, enabling the
// decomposition-based optimizers (opt.ComponentEvaluator).
func (cm *CacheModel) PartLeakageW(p components.PartID, op device.OperatingPoint) float64 {
	return cm.Comps[p].Leak.Eval(op.Vth, op.ToxAngstrom())
}

// PartDelayS returns one component's modelled delay.
func (cm *CacheModel) PartDelayS(p components.PartID, op device.OperatingPoint) float64 {
	return cm.Comps[p].Delay.Eval(op.Vth, op.ToxAngstrom())
}

// PartDynamicEnergyJ returns one component's modelled dynamic energy.
func (cm *CacheModel) PartDynamicEnergyJ(p components.PartID, op device.OperatingPoint) float64 {
	return cm.Comps[p].Energy.Eval(op.ToxAngstrom())
}

// --- helpers ---------------------------------------------------------------

func extremes(samples []charlib.Sample) (vMin, vMax, tMin, tMax float64) {
	vMin, vMax = math.Inf(1), math.Inf(-1)
	tMin, tMax = math.Inf(1), math.Inf(-1)
	for _, s := range samples {
		vMin = math.Min(vMin, s.Vth)
		vMax = math.Max(vMax, s.Vth)
		tMin = math.Min(tMin, s.ToxA)
		tMax = math.Max(tMax, s.ToxA)
	}
	return
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// slopeLog estimates d(ln y)/dx between the extreme x values of the
// filtered subset.
func slopeLog(samples []charlib.Sample, pick func(charlib.Sample) (x, y float64, ok bool), xLo, xHi float64) float64 {
	var yLo, yHi float64
	var haveLo, haveHi bool
	for _, s := range samples {
		x, y, ok := pick(s)
		if !ok || y <= 0 {
			continue
		}
		if approx(x, xLo) {
			yLo, haveLo = y, true
		}
		if approx(x, xHi) {
			yHi, haveHi = y, true
		}
	}
	if !haveLo || !haveHi {
		return math.NaN()
	}
	return (math.Log(yHi) - math.Log(yLo)) / (xHi - xLo)
}
