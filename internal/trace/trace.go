// Package trace generates synthetic memory-reference streams whose locality
// characteristics are calibrated to the benchmark suites named in Section 5
// of the paper (SPEC2000, SPECWEB, TPC-C).
//
// The real suites are not redistributable, and the paper's optimization
// consumes only the cache miss statistics they induce. Each generator here
// uses an independent-reference model with Zipf-distributed block
// popularity (which yields the familiar concave miss-rate-versus-size
// curves under LRU), a geometric sequential-run component for spatial
// locality, and a per-suite write fraction. The parameters are chosen so
// that L1 local miss rates are low and nearly flat from 4–64 KB while L2
// local miss rates fall visibly with capacity — the two properties the
// paper's two-level analysis relies on.
package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Access is one memory reference.
type Access struct {
	Addr  uint64
	Write bool
}

// Generator produces a deterministic, repeatable access stream.
type Generator interface {
	// Name identifies the workload.
	Name() string
	// Next returns the next access in the stream.
	Next() Access
	// Reset restarts the stream from the beginning.
	Reset()
}

// Params defines a synthetic workload.
type Params struct {
	Name string
	// FootprintBytes is the total touched memory (the working-set bound).
	FootprintBytes uint64
	// GranuleBytes is the popularity granule (an L2-block-sized chunk).
	GranuleBytes uint64
	// ZipfAlpha is the popularity skew; higher means stronger temporal
	// locality (alpha > 1 concentrates mass on a small hot set).
	ZipfAlpha float64
	// MeanRunLength is the mean sequential run length in 8-byte words
	// (spatial locality / streaming). Runs shorter than a cache block mostly
	// hit within the block; longer runs stream across blocks.
	MeanRunLength float64
	// WriteFraction is the probability an access is a store.
	WriteFraction float64
	// WarmBytes is the size of a secondary, uniformly re-referenced region
	// (heap arrays, buffer pools) living above the Zipf footprint. It gives
	// the workload a second locality scale: only caches comparable to
	// WarmBytes capture its reuse, which is what makes L2 miss rates fall
	// with capacity. Zero disables it.
	WarmBytes uint64
	// WarmFraction is the probability a new run starts in the warm region.
	WarmFraction float64
	// Seed makes the stream reproducible.
	Seed int64
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.FootprintBytes == 0 || p.GranuleBytes == 0 {
		return fmt.Errorf("trace: zero footprint or granule in %+v", p)
	}
	if p.FootprintBytes < p.GranuleBytes {
		return fmt.Errorf("trace: footprint smaller than granule")
	}
	if p.ZipfAlpha <= 0 {
		return fmt.Errorf("trace: ZipfAlpha must be positive, got %v", p.ZipfAlpha)
	}
	if p.MeanRunLength < 1 {
		return fmt.Errorf("trace: MeanRunLength must be >= 1, got %v", p.MeanRunLength)
	}
	if p.WriteFraction < 0 || p.WriteFraction > 1 {
		return fmt.Errorf("trace: WriteFraction out of [0,1]: %v", p.WriteFraction)
	}
	if p.WarmFraction < 0 || p.WarmFraction > 1 {
		return fmt.Errorf("trace: WarmFraction out of [0,1]: %v", p.WarmFraction)
	}
	if p.WarmFraction > 0 && p.WarmBytes < p.GranuleBytes {
		return fmt.Errorf("trace: WarmFraction set but WarmBytes (%d) below one granule", p.WarmBytes)
	}
	return nil
}

// The three calibrated workloads of the paper's evaluation.

// SPEC2000 returns a SPEC2000-like workload: strong temporal locality on a
// ~4 MB footprint.
func SPEC2000(seed int64) Params {
	return Params{
		Name:           "spec2000",
		FootprintBytes: 8 << 20,
		GranuleBytes:   64,
		ZipfAlpha:      1.55,
		MeanRunLength:  8,
		WriteFraction:  0.30,
		WarmBytes:      1 << 20,
		WarmFraction:   0.08,
		Seed:           seed,
	}
}

// SPECWEB returns a SPECWEB-like workload: larger footprint with more
// streaming (network buffers, file fragments).
func SPECWEB(seed int64) Params {
	return Params{
		Name:           "specweb",
		FootprintBytes: 16 << 20,
		GranuleBytes:   64,
		ZipfAlpha:      1.40,
		MeanRunLength:  16,
		WriteFraction:  0.25,
		WarmBytes:      2 << 20,
		WarmFraction:   0.12,
		Seed:           seed,
	}
}

// TPCC returns a TPC-C-like workload: a large, weakly skewed buffer-pool
// footprint with short runs and a high store fraction.
func TPCC(seed int64) Params {
	return Params{
		Name:           "tpcc",
		FootprintBytes: 32 << 20,
		GranuleBytes:   64,
		ZipfAlpha:      1.35,
		MeanRunLength:  4,
		WriteFraction:  0.35,
		WarmBytes:      4 << 20,
		WarmFraction:   0.12,
		Seed:           seed,
	}
}

// Suites returns the three calibrated workloads used throughout the
// evaluation.
func Suites(seed int64) []Params {
	return []Params{SPEC2000(seed), SPECWEB(seed + 1), TPCC(seed + 2)}
}

// Stream returns a streaming robustness workload (outside the paper's
// suite): long sequential runs over a large, weakly skewed footprint —
// nearly useless temporal locality, strong spatial locality.
func Stream(seed int64) Params {
	return Params{
		Name:           "stream",
		FootprintBytes: 64 << 20,
		GranuleBytes:   64,
		ZipfAlpha:      0.8,
		MeanRunLength:  64,
		WriteFraction:  0.20,
		Seed:           seed,
	}
}

// PointerChase returns a pointer-chasing robustness workload (outside the
// paper's suite): single-word accesses with no sequential component, the
// worst case for spatial locality.
func PointerChase(seed int64) Params {
	return Params{
		Name:           "ptrchase",
		FootprintBytes: 16 << 20,
		GranuleBytes:   64,
		ZipfAlpha:      1.2,
		MeanRunLength:  1.0001,
		WriteFraction:  0.10,
		Seed:           seed,
	}
}

// ExtraSuites returns the robustness workloads used by ablations and tests
// beyond the paper's evaluation.
func ExtraSuites(seed int64) []Params {
	return []Params{Stream(seed + 10), PointerChase(seed + 11)}
}

// zipfGen draws block indices with P(i) proportional to 1/(i+1)^alpha using
// an inverse-CDF table. Deterministic for a given rand source.
type zipfGen struct {
	cdf []float64 // cumulative probabilities, len == N
}

func newZipfGen(n uint64, alpha float64) *zipfGen {
	if n == 0 {
		panic("trace: zipf over empty universe")
	}
	cdf := make([]float64, n)
	var sum float64
	for i := uint64(0); i < n; i++ {
		sum += math.Pow(float64(i+1), -alpha)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfGen{cdf: cdf}
}

func (z *zipfGen) draw(rng *rand.Rand) uint64 {
	u := rng.Float64()
	idx := sort.SearchFloat64s(z.cdf, u)
	if idx >= len(z.cdf) {
		idx = len(z.cdf) - 1
	}
	return uint64(idx)
}

// generator implements Generator.
type generator struct {
	p    Params
	zipf *zipfGen
	rng  *rand.Rand

	// permute maps popularity rank to granule id so hot granules are
	// scattered through the address space rather than clustered at zero.
	permute []uint32

	// sequential-run state: runs advance word by word from lastAddr.
	runLeft  int
	lastAddr uint64
}

// New builds a generator for the workload.
func New(p Params) (Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := p.FootprintBytes / p.GranuleBytes
	g := &generator{p: p}
	g.zipf = newZipfGen(n, p.ZipfAlpha)
	g.initState()
	return g, nil
}

// MustNew is New for known-good parameters.
func MustNew(p Params) Generator {
	g, err := New(p)
	if err != nil {
		panic(err)
	}
	return g
}

func (g *generator) initState() {
	g.rng = rand.New(rand.NewSource(g.p.Seed))
	n := g.p.FootprintBytes / g.p.GranuleBytes
	g.permute = make([]uint32, n)
	for i := range g.permute {
		g.permute[i] = uint32(i)
	}
	// Fisher-Yates with the stream's own source keeps everything
	// reproducible from the single seed.
	for i := len(g.permute) - 1; i > 0; i-- {
		j := g.rng.Intn(i + 1)
		g.permute[i], g.permute[j] = g.permute[j], g.permute[i]
	}
	g.runLeft = 0
	g.lastAddr = 0
}

func (g *generator) Name() string { return g.p.Name }

func (g *generator) Reset() { g.initState() }

func (g *generator) Next() Access {
	var addr uint64
	switch {
	case g.runLeft > 0:
		// Continue the current sequential run one word at a time; spatial
		// locality within a cache block turns most of these into hits.
		g.runLeft--
		addr = g.lastAddr + 8
		if addr >= g.limit() {
			addr = g.regionBase()
		}
	case g.p.WarmFraction > 0 && g.rng.Float64() < g.p.WarmFraction:
		// Start a run at a uniformly random spot in the warm region.
		words := g.p.WarmBytes / 8
		addr = g.p.FootprintBytes + uint64(g.rng.Int63n(int64(words)))*8
		g.drawRunLength()
	default:
		rank := g.zipf.draw(g.rng)
		base := uint64(g.permute[rank]) * g.p.GranuleBytes
		// Scatter the run start within the granule at word granularity.
		addr = base + uint64(g.rng.Intn(int(g.p.GranuleBytes/8)))*8
		g.drawRunLength()
	}
	g.lastAddr = addr
	return Access{
		Addr:  addr,
		Write: g.rng.Float64() < g.p.WriteFraction,
	}
}

// drawRunLength samples a geometric run with the configured mean:
// P(continue) = 1 - 1/mean.
func (g *generator) drawRunLength() {
	pCont := 1 - 1/g.p.MeanRunLength
	g.runLeft = 0
	for g.rng.Float64() < pCont && g.runLeft < 256 {
		g.runLeft++
	}
}

// regionBase and limit keep sequential runs inside the region they started
// in (Zipf footprint or warm region).
func (g *generator) regionBase() uint64 {
	if g.lastAddr >= g.p.FootprintBytes {
		return g.p.FootprintBytes
	}
	return 0
}

func (g *generator) limit() uint64 {
	if g.lastAddr >= g.p.FootprintBytes {
		return g.p.FootprintBytes + g.p.WarmBytes
	}
	return g.p.FootprintBytes
}

// Collect materializes n accesses from the generator.
func Collect(g Generator, n int) []Access {
	out := make([]Access, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
