package trace

import (
	"testing"
)

func TestParamsValidate(t *testing.T) {
	good := SPEC2000(1)
	if err := good.Validate(); err != nil {
		t.Errorf("SPEC2000 params invalid: %v", err)
	}
	bad := []Params{
		{Name: "x", FootprintBytes: 0, GranuleBytes: 64, ZipfAlpha: 1, MeanRunLength: 1},
		{Name: "x", FootprintBytes: 32, GranuleBytes: 64, ZipfAlpha: 1, MeanRunLength: 1},
		{Name: "x", FootprintBytes: 1 << 20, GranuleBytes: 64, ZipfAlpha: 0, MeanRunLength: 1},
		{Name: "x", FootprintBytes: 1 << 20, GranuleBytes: 64, ZipfAlpha: 1, MeanRunLength: 0.5},
		{Name: "x", FootprintBytes: 1 << 20, GranuleBytes: 64, ZipfAlpha: 1, MeanRunLength: 1, WriteFraction: 1.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted: %+v", i, p)
		}
	}
}

func TestNewRejectsBadParams(t *testing.T) {
	if _, err := New(Params{}); err == nil {
		t.Error("empty params accepted")
	}
}

func TestDeterminism(t *testing.T) {
	p := SPEC2000(42)
	p.FootprintBytes = 1 << 20 // keep the test quick
	g1 := MustNew(p)
	g2 := MustNew(p)
	for i := 0; i < 10000; i++ {
		a1, a2 := g1.Next(), g2.Next()
		if a1 != a2 {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, a1, a2)
		}
	}
}

func TestResetReplays(t *testing.T) {
	p := SPEC2000(7)
	p.FootprintBytes = 1 << 20
	g := MustNew(p)
	first := Collect(g, 5000)
	g.Reset()
	second := Collect(g, 5000)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("reset did not replay at %d", i)
		}
	}
}

func TestSeedChangesStream(t *testing.T) {
	a := SPEC2000(1)
	b := SPEC2000(2)
	a.FootprintBytes = 1 << 20
	b.FootprintBytes = 1 << 20
	g1, g2 := MustNew(a), MustNew(b)
	same := 0
	n := 1000
	for i := 0; i < n; i++ {
		if g1.Next().Addr == g2.Next().Addr {
			same++
		}
	}
	if same > n/2 {
		t.Errorf("different seeds produced %d/%d identical addresses", same, n)
	}
}

func TestAddressesWithinFootprint(t *testing.T) {
	p := SPECWEB(3)
	p.FootprintBytes = 2 << 20
	g := MustNew(p)
	limit := p.FootprintBytes + p.WarmBytes
	sawWarm := false
	for i := 0; i < 20000; i++ {
		a := g.Next()
		if a.Addr >= limit {
			t.Fatalf("address %#x outside footprint+warm %#x", a.Addr, limit)
		}
		if a.Addr >= p.FootprintBytes {
			sawWarm = true
		}
		if a.Addr%8 != 0 {
			t.Fatalf("address %#x not word aligned", a.Addr)
		}
	}
	if !sawWarm {
		t.Error("warm region never referenced despite WarmFraction > 0")
	}
}

func TestWriteFraction(t *testing.T) {
	p := TPCC(5)
	p.FootprintBytes = 2 << 20
	g := MustNew(p)
	writes := 0
	n := 50000
	for i := 0; i < n; i++ {
		if g.Next().Write {
			writes++
		}
	}
	frac := float64(writes) / float64(n)
	if frac < p.WriteFraction-0.03 || frac > p.WriteFraction+0.03 {
		t.Errorf("write fraction = %v, want ~%v", frac, p.WriteFraction)
	}
}

func TestTemporalLocalitySkew(t *testing.T) {
	// With Zipf alpha > 1, a small fraction of granules should absorb most
	// accesses.
	p := SPEC2000(11)
	p.FootprintBytes = 4 << 20
	g := MustNew(p)
	counts := make(map[uint64]int)
	n := 100000
	for i := 0; i < n; i++ {
		counts[g.Next().Addr/p.GranuleBytes]++
	}
	granules := p.FootprintBytes / p.GranuleBytes
	touched := uint64(len(counts))
	if touched >= granules/2 {
		t.Errorf("touched %d of %d granules — no locality", touched, granules)
	}
}

func TestHigherAlphaMoreLocality(t *testing.T) {
	distinct := func(alpha float64) int {
		p := Params{Name: "x", FootprintBytes: 4 << 20, GranuleBytes: 64,
			ZipfAlpha: alpha, MeanRunLength: 1.0001, WriteFraction: 0, Seed: 9}
		g := MustNew(p)
		seen := make(map[uint64]bool)
		for i := 0; i < 50000; i++ {
			seen[g.Next().Addr/64] = true
		}
		return len(seen)
	}
	hot := distinct(1.5)
	cold := distinct(1.05)
	if hot >= cold {
		t.Errorf("alpha=1.5 touched %d granules, alpha=1.05 touched %d — skew inverted", hot, cold)
	}
}

func TestSequentialRuns(t *testing.T) {
	p := Params{Name: "seq", FootprintBytes: 1 << 20, GranuleBytes: 64,
		ZipfAlpha: 1.2, MeanRunLength: 8, WriteFraction: 0, Seed: 13}
	g := MustNew(p)
	sequential := 0
	n := 20000
	prev := g.Next().Addr
	for i := 1; i < n; i++ {
		cur := g.Next().Addr
		if cur == prev+8 {
			sequential++
		}
		prev = cur
	}
	// Mean run length 8 words means most transitions advance one word.
	if frac := float64(sequential) / float64(n); frac < 0.5 {
		t.Errorf("word-sequential transition fraction = %v, want >= 0.5 at mean run 8", frac)
	}
}

func TestSuites(t *testing.T) {
	suites := Suites(1)
	if len(suites) != 3 {
		t.Fatalf("want 3 suites, got %d", len(suites))
	}
	names := map[string]bool{}
	for _, s := range suites {
		if err := s.Validate(); err != nil {
			t.Errorf("suite %s invalid: %v", s.Name, err)
		}
		names[s.Name] = true
	}
	for _, want := range []string{"spec2000", "specweb", "tpcc"} {
		if !names[want] {
			t.Errorf("missing suite %s", want)
		}
	}
	// Footprints ordered: spec2000 < specweb < tpcc.
	if !(SPEC2000(1).FootprintBytes < SPECWEB(1).FootprintBytes &&
		SPECWEB(1).FootprintBytes < TPCC(1).FootprintBytes) {
		t.Error("suite footprints must be increasing")
	}
}

func TestCollect(t *testing.T) {
	p := SPEC2000(1)
	p.FootprintBytes = 1 << 20
	g := MustNew(p)
	accs := Collect(g, 100)
	if len(accs) != 100 {
		t.Errorf("Collect returned %d", len(accs))
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew should panic on invalid params")
		}
	}()
	MustNew(Params{})
}
