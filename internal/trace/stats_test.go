package trace

import (
	"math"
	"testing"
)

// Statistical tests of the generator's distributional properties. They use
// fixed seeds, so they are deterministic despite being statistical.

func TestZipfCDFNormalized(t *testing.T) {
	z := newZipfGen(1000, 1.3)
	if got := z.cdf[len(z.cdf)-1]; math.Abs(got-1) > 1e-12 {
		t.Errorf("CDF must end at 1, got %v", got)
	}
	for i := 1; i < len(z.cdf); i++ {
		if z.cdf[i] < z.cdf[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
}

func TestZipfRankFrequencies(t *testing.T) {
	// Empirical draw frequencies should follow the configured power law:
	// P(rank r) proportional to (r+1)^-alpha. Check rank 0 vs rank 9 ratio
	// ~ 10^alpha within sampling noise.
	p := Params{Name: "z", FootprintBytes: 1 << 22, GranuleBytes: 64,
		ZipfAlpha: 1.0, MeanRunLength: 1.0001, WriteFraction: 0, Seed: 3}
	g := MustNew(p).(*generator)
	counts := make(map[uint64]int)
	n := 400000
	for i := 0; i < n; i++ {
		counts[g.zipf.draw(g.rng)]++
	}
	r0 := float64(counts[0])
	r9 := float64(counts[9])
	if r9 == 0 {
		t.Fatal("rank 9 never drawn")
	}
	ratio := r0 / r9
	// alpha=1: expected ratio = (10/1)^1 = 10. Allow wide sampling slack.
	if ratio < 6 || ratio > 16 {
		t.Errorf("rank0/rank9 frequency ratio = %v, want ~10", ratio)
	}
}

func TestPermutationScattersHotSet(t *testing.T) {
	// The hottest granules should not be clustered at low addresses: the
	// mean address of the top granules should be near the footprint middle.
	p := SPEC2000(5)
	p.FootprintBytes = 4 << 20
	g := MustNew(p).(*generator)
	var sum float64
	top := 64
	for rank := 0; rank < top; rank++ {
		sum += float64(g.permute[rank]) * float64(p.GranuleBytes)
	}
	mean := sum / float64(top)
	mid := float64(p.FootprintBytes) / 2
	if mean < 0.25*mid || mean > 1.75*mid {
		t.Errorf("hot-set mean address %v too far from footprint middle %v", mean, mid)
	}
}

func TestWarmRegionShare(t *testing.T) {
	p := SPECWEB(7)
	p.FootprintBytes = 4 << 20
	g := MustNew(p)
	warm := 0
	n := 100000
	for i := 0; i < n; i++ {
		if g.Next().Addr >= p.FootprintBytes {
			warm++
		}
	}
	share := float64(warm) / float64(n)
	// Warm draws are WarmFraction of run starts; with geometric runs the
	// access share approximates the fraction as well. Allow a broad band.
	if share < p.WarmFraction/3 || share > p.WarmFraction*3 {
		t.Errorf("warm access share = %v, want near %v", share, p.WarmFraction)
	}
}

func TestRunLengthMean(t *testing.T) {
	p := Params{Name: "r", FootprintBytes: 1 << 20, GranuleBytes: 64,
		ZipfAlpha: 1.2, MeanRunLength: 8, WriteFraction: 0, Seed: 11}
	g := MustNew(p)
	prev := g.Next().Addr
	runs, current := 0, 1
	var total int
	n := 200000
	for i := 1; i < n; i++ {
		cur := g.Next().Addr
		if cur == prev+8 {
			current++
		} else {
			runs++
			total += current
			current = 1
		}
		prev = cur
	}
	if runs == 0 {
		t.Fatal("no runs observed")
	}
	mean := float64(total) / float64(runs)
	if mean < 5 || mean > 12 {
		t.Errorf("observed mean run length = %v, want ~8", mean)
	}
}

func TestExtraSuites(t *testing.T) {
	for _, p := range ExtraSuites(1) {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		g := MustNew(p)
		for i := 0; i < 1000; i++ {
			g.Next()
		}
	}
}

func TestStreamIsSequential(t *testing.T) {
	g := MustNew(Stream(3))
	seq := 0
	n := 50000
	prev := g.Next().Addr
	for i := 1; i < n; i++ {
		cur := g.Next().Addr
		if cur == prev+8 {
			seq++
		}
		prev = cur
	}
	if frac := float64(seq) / float64(n); frac < 0.9 {
		t.Errorf("stream sequential fraction = %v, want >= 0.9", frac)
	}
}

func TestPointerChaseIsNot(t *testing.T) {
	g := MustNew(PointerChase(3))
	seq := 0
	n := 50000
	prev := g.Next().Addr
	for i := 1; i < n; i++ {
		cur := g.Next().Addr
		if cur == prev+8 {
			seq++
		}
		prev = cur
	}
	if frac := float64(seq) / float64(n); frac > 0.05 {
		t.Errorf("pointer chase sequential fraction = %v, want ~0", frac)
	}
}
