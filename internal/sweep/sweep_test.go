package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		out, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, results out of order", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(30, workers, func(i int) (struct{}, error) {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, want <= %d", p, workers)
	}
}

func TestMapErrorAggregation(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(20, 4, func(i int) (int, error) {
		if i == 5 || i == 11 {
			return 0, fmt.Errorf("item-%d: %w", i, boom)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost: %v", err)
	}
	// At least one failing item is reported with its index.
	if !strings.Contains(err.Error(), "item ") {
		t.Fatalf("error lacks item index: %v", err)
	}
}

func TestMapSequentialFailFast(t *testing.T) {
	calls := 0
	_, err := Map(10, 1, func(i int) (int, error) {
		calls++
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 4 {
		t.Fatalf("sequential map ran %d items after error, want fail-fast at 4", calls)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in fn was swallowed")
		}
	}()
	_, _ = Map(8, 4, func(i int) (int, error) {
		if i == 2 {
			panic("kaboom")
		}
		return i, nil
	})
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(100, 8, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestShards(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 4}, {1, 4}, {5, 2}, {10, 3}, {10, 10}, {10, 99}, {1037, 8},
	} {
		shards := Shards(tc.n, tc.k)
		if tc.n == 0 {
			if shards != nil {
				t.Fatalf("Shards(0,%d) = %v", tc.k, shards)
			}
			continue
		}
		if len(shards) > tc.k || len(shards) > tc.n {
			t.Fatalf("Shards(%d,%d): %d shards", tc.n, tc.k, len(shards))
		}
		// Contiguous cover of [0,n) with near-equal sizes.
		next, min, max := 0, tc.n, 0
		for _, s := range shards {
			if s.Lo != next || s.Hi <= s.Lo {
				t.Fatalf("Shards(%d,%d): non-contiguous %v", tc.n, tc.k, shards)
			}
			next = s.Hi
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		if next != tc.n {
			t.Fatalf("Shards(%d,%d) covers [0,%d)", tc.n, tc.k, next)
		}
		if max-min > 1 {
			t.Fatalf("Shards(%d,%d): uneven sizes %d..%d", tc.n, tc.k, min, max)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive requests to >= 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers must pass explicit counts through")
	}
}

func TestMemoSingleflight(t *testing.T) {
	var m Memo[string, int]
	var builds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				builds.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
}

func TestMemoErrorCached(t *testing.T) {
	var m Memo[int, int]
	calls := 0
	build := func() (int, error) { calls++; return 0, errors.New("nope") }
	if _, err := m.Do(7, build); err == nil {
		t.Fatal("want error")
	}
	if _, err := m.Do(7, build); err == nil {
		t.Fatal("want memoized error")
	}
	if calls != 1 {
		t.Fatalf("failed build retried: %d calls", calls)
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Map(64, 0, func(i int) (int, error) { return i, nil })
	}
}
