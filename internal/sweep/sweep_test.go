package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// atBaseline reports whether the goroutine count has returned to within
// slack of base, retrying briefly: worker goroutines are reaped
// asynchronously after Map/Stream return.
func atBaseline(base, slack int) bool {
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= base+slack {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return false
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		out, err := Map(50, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, results out of order", workers, i, v)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestMapBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	_, err := Map(30, workers, func(i int) (struct{}, error) {
		c := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent workers, want <= %d", p, workers)
	}
}

func TestMapErrorAggregation(t *testing.T) {
	boom := errors.New("boom")
	_, err := Map(20, 4, func(i int) (int, error) {
		if i == 5 || i == 11 {
			return 0, fmt.Errorf("item-%d: %w", i, boom)
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost: %v", err)
	}
	// At least one failing item is reported with its index.
	if !strings.Contains(err.Error(), "item ") {
		t.Fatalf("error lacks item index: %v", err)
	}
}

func TestMapSequentialFailFast(t *testing.T) {
	calls := 0
	_, err := Map(10, 1, func(i int) (int, error) {
		calls++
		if i == 3 {
			return 0, errors.New("stop")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if calls != 4 {
		t.Fatalf("sequential map ran %d items after error, want fail-fast at 4", calls)
	}
}

// TestMapErrorFormatConsistent pins the error wrapping contract: the
// sequential fast path and the parallel path produce the same
// "sweep: item %d: ..." text, and multiple failures join in input order.
func TestMapErrorFormatConsistent(t *testing.T) {
	boom := errors.New("boom")
	_, seqErr := Map(10, 1, func(i int) (int, error) {
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if seqErr == nil || seqErr.Error() != "sweep: item 3: boom" {
		t.Fatalf("sequential error = %v, want %q", seqErr, "sweep: item 3: boom")
	}
	if !errors.Is(seqErr, boom) {
		t.Fatalf("sequential error chain lost: %v", seqErr)
	}

	// Parallel: both items start before either fails (the barrier guarantees
	// it), so both errors are observed and must join in input order.
	var barrier sync.WaitGroup
	barrier.Add(2)
	_, parErr := Map(2, 2, func(i int) (int, error) {
		barrier.Done()
		barrier.Wait()
		return 0, fmt.Errorf("fail-%d", i)
	})
	want := "sweep: item 0: fail-0\nsweep: item 1: fail-1"
	if parErr == nil || parErr.Error() != want {
		t.Fatalf("parallel error = %q, want %q", parErr, want)
	}
}

func TestMapCtxCancelPrompt(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, 64)
	go func() {
		<-started
		cancel()
	}()
	var ran atomic.Int64
	const n = 1000
	_, err := MapCtx(ctx, n, 4, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		if i < 4 {
			// The first wave blocks until cancellation reaches it: a
			// cancelled sweep must not wait for unscheduled items.
			<-ctx.Done()
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("cancelled sweep returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error does not carry context.Canceled: %v", err)
	}
	if got := ran.Load(); got == n {
		t.Fatalf("cancellation did not stop scheduling: all %d items ran", n)
	}
	if !atBaseline(base, 2) {
		t.Fatalf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), base)
	}
}

func TestMapCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	_, err := MapCtx(ctx, 50, 1, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled sweep still ran %d items", ran.Load())
	}
}

func TestMapCtxJoinsItemAndCtxErrors(t *testing.T) {
	// Sequential path: a failing item on an already-expiring context must
	// surface both the item error and the context error.
	ctx, cancel := context.WithCancel(context.Background())
	boom := errors.New("boom")
	_, err := MapCtx(ctx, 5, 1, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			cancel()
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want both item and ctx errors, got %v", err)
	}
}

func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	want, _ := Map(20, 4, func(i int) (int, error) { return i * 3, nil })
	got, err := MapCtx(context.Background(), 20, 4, func(_ context.Context, i int) (int, error) { return i * 3, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("MapCtx diverged from Map at %d", i)
		}
	}
}

func TestEachCtx(t *testing.T) {
	var sum atomic.Int64
	if err := EachCtx(context.Background(), 100, 8, func(_ context.Context, i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := EachCtx(ctx, 10, 2, func(_ context.Context, i int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in fn was swallowed")
		}
	}()
	_, _ = Map(8, 4, func(i int) (int, error) {
		if i == 2 {
			panic("kaboom")
		}
		return i, nil
	})
}

func TestEach(t *testing.T) {
	var sum atomic.Int64
	if err := Each(100, 8, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d", sum.Load())
	}
}

func TestShards(t *testing.T) {
	for _, tc := range []struct{ n, k int }{
		{0, 4}, {1, 4}, {5, 2}, {10, 3}, {10, 10}, {10, 99}, {1037, 8},
	} {
		shards := Shards(tc.n, tc.k)
		if tc.n == 0 {
			if shards != nil {
				t.Fatalf("Shards(0,%d) = %v", tc.k, shards)
			}
			continue
		}
		if len(shards) > tc.k || len(shards) > tc.n {
			t.Fatalf("Shards(%d,%d): %d shards", tc.n, tc.k, len(shards))
		}
		// Contiguous cover of [0,n) with near-equal sizes.
		next, min, max := 0, tc.n, 0
		for _, s := range shards {
			if s.Lo != next || s.Hi <= s.Lo {
				t.Fatalf("Shards(%d,%d): non-contiguous %v", tc.n, tc.k, shards)
			}
			next = s.Hi
			if s.Len() < min {
				min = s.Len()
			}
			if s.Len() > max {
				max = s.Len()
			}
		}
		if next != tc.n {
			t.Fatalf("Shards(%d,%d) covers [0,%d)", tc.n, tc.k, next)
		}
		if max-min > 1 {
			t.Fatalf("Shards(%d,%d): uneven sizes %d..%d", tc.n, tc.k, min, max)
		}
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive requests to >= 1")
	}
	if Workers(5) != 5 {
		t.Fatal("Workers must pass explicit counts through")
	}
}

func TestMemoSingleflight(t *testing.T) {
	var m Memo[string, int]
	var builds atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				builds.Add(1)
				time.Sleep(2 * time.Millisecond)
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("Do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if builds.Load() != 1 {
		t.Fatalf("build ran %d times, want 1", builds.Load())
	}
}

func TestMemoErrorCached(t *testing.T) {
	var m Memo[int, int]
	calls := 0
	build := func() (int, error) { calls++; return 0, errors.New("nope") }
	if _, err := m.Do(7, build); err == nil {
		t.Fatal("want error")
	}
	if _, err := m.Do(7, build); err == nil {
		t.Fatal("want memoized error")
	}
	if calls != 1 {
		t.Fatalf("failed build retried: %d calls", calls)
	}
}

func TestMemoCancelledBuildRetried(t *testing.T) {
	var m Memo[int, int]
	calls := 0
	if _, err := m.Do(1, func() (int, error) { calls++; return 0, context.Canceled }); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	v, err := m.Do(1, func() (int, error) { calls++; return 99, nil })
	if err != nil || v != 99 {
		t.Fatalf("rebuild after cancellation: v=%d err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("cancelled build not retried: %d calls", calls)
	}
	// A deterministic (non-ctx) failure stays memoized.
	if _, err := m.Do(1, func() (int, error) { calls++; return 0, errors.New("nope") }); err != nil {
		t.Fatalf("settled value lost: %v", err)
	}
	if calls != 2 {
		t.Fatalf("settled key rebuilt: %d calls", calls)
	}
}

func BenchmarkMapOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _ = Map(64, 0, func(i int) (int, error) { return i, nil })
	}
}

// BenchmarkStreamOverhead measures the input-ordered streaming channel on
// a free kernel — the per-item cost every streamed sweep and the unified
// work driver pay on top of Map.
func BenchmarkStreamOverhead(b *testing.B) {
	b.ReportAllocs()
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		ch, wait := Stream(ctx, 64, StreamConfig{Workers: 4},
			func(_ context.Context, i int) (int, error) { return i, nil })
		for range ch {
		}
		if err := wait(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRangeWireFormat pins Range's JSON form: it is part of the
// distributed-sweep wire protocol (work units carry their shard range), so
// the field names must not drift.
func TestRangeWireFormat(t *testing.T) {
	data, err := json.Marshal(Range{Lo: 3, Hi: 9})
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != `{"lo":3,"hi":9}` {
		t.Fatalf("Range wire form = %s, want {\"lo\":3,\"hi\":9}", data)
	}
	var r Range
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatal(err)
	}
	if r != (Range{Lo: 3, Hi: 9}) {
		t.Fatalf("round trip = %+v", r)
	}
}
