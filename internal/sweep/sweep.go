// Package sweep is the repository's concurrent design-space sweep engine: a
// bounded worker pool with deterministic, input-ordered result collection
// and error aggregation, plus the contiguous-shard and memoization helpers
// the experiment and optimization layers build on.
//
// The paper's evaluation is embarrassingly parallel — every L1xL2 size
// combination, every assignment scheme, and every workload simulation is
// independent — so the engine's only hard job is keeping parallel output
// byte-identical to sequential output. Three rules make that hold
// everywhere this package is used:
//
//   - results are written into a slice indexed by input position, never
//     appended in completion order;
//   - reductions over shards run in shard (input) order with the same
//     strict-inequality tie-breaking the sequential scans use, so the
//     earliest candidate still wins ties;
//   - randomized work re-seeds per shard (e.g. one trace generator per L1
//     size) instead of sharing one mutable RNG stream.
//
// The engine is context-first: MapCtx/EachCtx stop scheduling when the
// context is cancelled and report ctx.Err() joined after any per-item
// errors, and Stream delivers results in input order over a channel with
// bounded buffering for result sets too large to hold in memory. Map and
// Each are thin wrappers over context.Background() for callers that do not
// need cancellation.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: values <= 0 select GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Progress observes fan-out completion: it is called once per completed
// item with the number of items done so far and the total. The count is
// maintained atomically, but calls may arrive concurrently from worker
// goroutines (Stream serializes them on the emitter); implementations that
// write shared state must synchronize.
type Progress func(done, total int)

// itemErr wraps one failed item with its input index in the engine's
// canonical format. Every path — sequential, parallel, streaming — reports
// failures through this wrapper so error text never depends on the worker
// count that observed the failure.
func itemErr(i int, err error) error {
	return fmt.Errorf("sweep: item %d: %w", i, err)
}

// joinErrs folds per-item errors (indexed by input position) and an
// optional context error into one error: item errors first in input order,
// the context error last.
func joinErrs(errs []error, ctxErr error) error {
	all := make([]error, 0, len(errs)+1)
	for _, e := range errs {
		if e != nil {
			all = append(all, e)
		}
	}
	if ctxErr != nil {
		all = append(all, ctxErr)
	}
	return errors.Join(all...)
}

// Map runs fn(0..n-1) across at most workers goroutines and returns the
// results in input order. With workers <= 1 (or n <= 1) it degenerates to a
// plain loop, so single-threaded runs pay no synchronization cost.
//
// On error the sweep stops scheduling new items and Map returns every error
// observed, each wrapped as "sweep: item %d: ..." and joined in input
// order; already-running items finish first. Which items got to run (and
// therefore the error text) can depend on the worker count — the
// identical-output guarantee covers success results only. A panic in fn is
// re-raised on the calling goroutine.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(context.Background(), n, workers, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapCtx is Map with cancellation: it stops scheduling new items once ctx
// is done (already-running items finish first) and returns ctx's error
// joined after any per-item errors. fn receives ctx so long-running items
// can return early too. With a background context it is exactly Map.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return nil, joinErrs(nil, err)
			}
			v, err := fn(ctx, i)
			if err != nil {
				return nil, joinErrs([]error{itemErr(i, err)}, ctx.Err())
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var (
		next    atomic.Int64
		failed  atomic.Bool
		panicMu sync.Mutex
		panicV  any
		wg      sync.WaitGroup
	)
	done := ctx.Done()
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
					failed.Store(true)
				}
			}()
			for !failed.Load() {
				select {
				case <-done:
					return
				default:
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = itemErr(i, err)
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	if failed.Load() || ctx.Err() != nil {
		return nil, joinErrs(errs, ctx.Err())
	}
	return out, nil
}

// Each is Map for side-effect-only work.
func Each(n, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// EachCtx is MapCtx for side-effect-only work.
func EachCtx(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	_, err := MapCtx(ctx, n, workers, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}

// Range is a half-open index interval [Lo, Hi). The JSON form ({"lo","hi"})
// is part of the distributed-sweep wire format: work units carry the shard
// range they cover (internal/dist).
type Range struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Shards splits [0, n) into at most k contiguous, input-ordered ranges of
// near-equal size. Contiguity matters: an ordered reduction over shard-local
// results then visits candidates in exactly the sequential scan order, which
// is what keeps tie-breaking (and therefore output bytes) identical.
func Shards(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	k = Workers(k)
	if k > n {
		k = n
	}
	out := make([]Range, 0, k)
	lo := 0
	for i := 0; i < k; i++ {
		size := (n - lo) / (k - i)
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// memoEntry is one singleflight slot of a Memo. Its mutex doubles as the
// wait point for concurrent callers of the same key.
type memoEntry[V any] struct {
	mu      sync.Mutex
	settled bool
	val     V
	err     error
}

// Memo is a concurrent memoization map: Do builds each key exactly once,
// with concurrent callers for the same key blocking on the first build
// instead of duplicating it. The zero value is ready to use. It replaces the
// build-under-global-lock caching that serialized experiment fan-out.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

// Do returns the memoized value for key, invoking build on first use.
// Deterministic failures are memoized too — retrying them would only
// repeat the failure — but context cancellation is not: a build aborted by
// a cancelled run must not poison the cache for later, uncancelled
// callers, so the next Do for the key rebuilds.
func (mo *Memo[K, V]) Do(key K, build func() (V, error)) (V, error) {
	mo.mu.Lock()
	if mo.m == nil {
		mo.m = make(map[K]*memoEntry[V])
	}
	e, ok := mo.m[key]
	if !ok {
		e = &memoEntry[V]{}
		mo.m[key] = e
	}
	mo.mu.Unlock()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.settled {
		return e.val, e.err
	}
	val, err := build()
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		var zero V
		return zero, err
	}
	e.val, e.err, e.settled = val, err, true
	return e.val, e.err
}
