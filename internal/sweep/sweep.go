// Package sweep is the repository's concurrent design-space sweep engine: a
// bounded worker pool with deterministic, input-ordered result collection
// and error aggregation, plus the contiguous-shard and memoization helpers
// the experiment and optimization layers build on.
//
// The paper's evaluation is embarrassingly parallel — every L1xL2 size
// combination, every assignment scheme, and every workload simulation is
// independent — so the engine's only hard job is keeping parallel output
// byte-identical to sequential output. Three rules make that hold
// everywhere this package is used:
//
//   - results are written into a slice indexed by input position, never
//     appended in completion order;
//   - reductions over shards run in shard (input) order with the same
//     strict-inequality tie-breaking the sequential scans use, so the
//     earliest candidate still wins ties;
//   - randomized work re-seeds per shard (e.g. one trace generator per L1
//     size) instead of sharing one mutable RNG stream.
package sweep

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count request: values <= 0 select GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Map runs fn(0..n-1) across at most workers goroutines and returns the
// results in input order. With workers <= 1 (or n <= 1) it degenerates to a
// plain loop, so single-threaded runs pay no synchronization cost.
//
// On error the sweep stops scheduling new items and Map returns every error
// observed, joined in input order; already-running items finish first.
// Which items got to run (and therefore the error text) can depend on the
// worker count — the identical-output guarantee covers success results
// only. A panic in fn is re-raised on the calling goroutine.
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, fmt.Errorf("sweep: item %d: %w", i, err)
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var (
		next    atomic.Int64
		failed  atomic.Bool
		panicMu sync.Mutex
		panicV  any
		wg      sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						panicV = r
					}
					panicMu.Unlock()
					failed.Store(true)
				}
			}()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(i)
				if err != nil {
					errs[i] = fmt.Errorf("sweep: item %d: %w", i, err)
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
	if failed.Load() {
		return nil, errors.Join(errs...)
	}
	return out, nil
}

// Each is Map for side-effect-only work.
func Each(n, workers int, fn func(i int) error) error {
	_, err := Map(n, workers, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// Range is a half-open index interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Shards splits [0, n) into at most k contiguous, input-ordered ranges of
// near-equal size. Contiguity matters: an ordered reduction over shard-local
// results then visits candidates in exactly the sequential scan order, which
// is what keeps tie-breaking (and therefore output bytes) identical.
func Shards(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	k = Workers(k)
	if k > n {
		k = n
	}
	out := make([]Range, 0, k)
	lo := 0
	for i := 0; i < k; i++ {
		size := (n - lo) / (k - i)
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// memoEntry is one singleflight slot of a Memo.
type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Memo is a concurrent memoization map: Do builds each key exactly once,
// with concurrent callers for the same key blocking on the first build
// instead of duplicating it. The zero value is ready to use. It replaces the
// build-under-global-lock caching that serialized experiment fan-out.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoEntry[V]
}

// Do returns the memoized value for key, invoking build on first use.
// Errors are memoized too: builds here are deterministic, so retrying a
// failed build would only repeat the failure.
func (mo *Memo[K, V]) Do(key K, build func() (V, error)) (V, error) {
	mo.mu.Lock()
	if mo.m == nil {
		mo.m = make(map[K]*memoEntry[V])
	}
	e, ok := mo.m[key]
	if !ok {
		e = &memoEntry[V]{}
		mo.m[key] = e
	}
	mo.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}
