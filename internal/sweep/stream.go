package sweep

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// StreamConfig tunes a Stream run. The zero value is usable: GOMAXPROCS
// workers, a lookahead bound equal to the worker count, no progress hook.
type StreamConfig struct {
	// Workers bounds concurrent fn invocations (0 = GOMAXPROCS).
	Workers int
	// Buffer bounds how many items may be in flight or completed but not
	// yet consumed (0 = the resolved worker count). Small buffers give
	// backpressure: a slow consumer throttles the workers instead of the
	// whole result set accumulating in memory.
	Buffer int
	// Progress, when non-nil, is called after each item is emitted with
	// (items emitted, total). Calls come from the single emitter goroutine,
	// so they are serialized.
	Progress Progress
}

// errSkipped marks items that were claimed by a worker but never run
// because the stream had already failed or been cancelled. It is internal
// bookkeeping: skipped items are not reported as errors.
var errSkipped = errors.New("sweep: item skipped after failure")

// streamItem is one in-flight unit of a Stream: the promise the emitter
// waits on, in input order.
type streamItem[T any] struct {
	i    int
	done chan struct{}
	val  T
	err  error
}

// Stream runs fn(0..n-1) across a bounded worker pool and delivers results
// over the returned channel in input order as they complete, without ever
// buffering more than cfg.Buffer results — the streaming complement to
// MapCtx for result sets too large to hold in memory.
//
// The consumer must drain the channel (it closes when the stream ends) and
// then call wait, which blocks until all workers have exited and returns
// the verdict: nil on success, or per-item errors joined in input order
// with ctx's error last, exactly like MapCtx. On the first error or on
// cancellation the stream stops scheduling new items and stops emitting;
// already-running items finish first. A panic in fn is re-raised from wait.
func Stream[T any](ctx context.Context, n int, cfg StreamConfig, fn func(ctx context.Context, i int) (T, error)) (results <-chan T, wait func() error) {
	out := make(chan T)
	if n <= 0 {
		close(out)
		err := ctx.Err()
		if err != nil {
			err = joinErrs(nil, err)
		}
		return out, func() error { return err }
	}
	w := Workers(cfg.Workers)
	if w > n {
		w = n
	}
	buf := cfg.Buffer
	if buf <= 0 {
		buf = w
	}

	var (
		failed   atomic.Bool
		panicMu  sync.Mutex
		panicV   any
		wg       sync.WaitGroup
		finalErr error
		finished = make(chan struct{})
	)
	pending := make(chan *streamItem[T], buf) // input-ordered; caps lookahead
	work := make(chan *streamItem[T])

	// Dispatcher: creates items in input order. The send into pending
	// blocks once buf items are in flight or unconsumed, which is what
	// bounds the stream's memory footprint.
	go func() {
		defer close(pending)
		defer close(work)
		for i := 0; i < n; i++ {
			if failed.Load() {
				return
			}
			it := &streamItem[T]{i: i, done: make(chan struct{})}
			select {
			case <-ctx.Done():
				return
			case pending <- it:
			}
			select {
			case <-ctx.Done():
				// Queued for the emitter but never handed to a worker:
				// resolve the promise so the emitter does not block.
				it.err = errSkipped
				close(it.done)
				return
			case work <- it:
			}
		}
	}()

	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if panicV == nil {
								panicV = r
							}
							panicMu.Unlock()
							it.err = errSkipped
							failed.Store(true)
						}
						close(it.done)
					}()
					if failed.Load() || ctx.Err() != nil {
						it.err = errSkipped
						return
					}
					it.val, it.err = fn(ctx, it.i)
					if it.err != nil {
						failed.Store(true)
					}
				}()
			}
		}()
	}

	// Emitter: resolves promises in input order, forwarding values until
	// the first failure, then draining the rest so workers are never
	// leaked.
	go func() {
		defer close(finished)
		defer close(out)
		var errs []error
		emitted := 0
		emitting := true
		for it := range pending {
			<-it.done
			if it.err != nil {
				emitting = false
				if it.err != errSkipped {
					errs = append(errs, itemErr(it.i, it.err))
				}
				continue
			}
			if !emitting {
				continue
			}
			select {
			case out <- it.val:
				emitted++
				if cfg.Progress != nil {
					cfg.Progress(emitted, n)
				}
			case <-ctx.Done():
				emitting = false
			}
		}
		wg.Wait()
		finalErr = joinErrs(errs, ctx.Err())
	}()

	return out, func() error {
		<-finished
		panicMu.Lock()
		p := panicV
		panicMu.Unlock()
		if p != nil {
			panic(p)
		}
		return finalErr
	}
}
