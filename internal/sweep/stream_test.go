package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// collect drains a stream into a slice and returns the wait verdict.
func collect[T any](ch <-chan T, wait func() error) ([]T, error) {
	var out []T
	for v := range ch {
		out = append(out, v)
	}
	return out, wait()
}

func TestStreamOrdered(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7} {
		ch, wait := Stream(context.Background(), 50, StreamConfig{Workers: workers},
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		out, err := collect(ch, wait)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 50 {
			t.Fatalf("workers=%d: got %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, results out of order", workers, i, v)
			}
		}
	}
}

func TestStreamEmpty(t *testing.T) {
	ch, wait := Stream(context.Background(), 0, StreamConfig{},
		func(_ context.Context, i int) (int, error) { return 0, nil })
	out, err := collect(ch, wait)
	if err != nil || out != nil {
		t.Fatalf("empty stream: out=%v err=%v", out, err)
	}
}

// TestStreamBoundedLookahead pins the backpressure contract: with Buffer=b
// and a consumer that has taken k items, no item beyond k+b may start.
func TestStreamBoundedLookahead(t *testing.T) {
	const n, buffer = 40, 3
	var maxStarted atomic.Int64
	ch, wait := Stream(context.Background(), n, StreamConfig{Workers: 2, Buffer: buffer},
		func(_ context.Context, i int) (int, error) {
			for {
				cur := maxStarted.Load()
				if int64(i) <= cur || maxStarted.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
			return i, nil
		})
	taken := 0
	for v := range ch {
		if v != taken {
			t.Fatalf("out of order: got %d at position %d", v, taken)
		}
		taken++
		// Everything in flight or buffered sits within the lookahead
		// window: buffer queued items, plus one held by the emitter and
		// one mid-handoff in the dispatcher.
		if started := int(maxStarted.Load()); started > taken+buffer+2 {
			t.Fatalf("item %d started with only %d consumed (buffer %d)", started, taken, buffer)
		}
		time.Sleep(time.Millisecond) // let workers run ahead if they could
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if taken != n {
		t.Fatalf("consumed %d of %d", taken, n)
	}
}

func TestStreamProgressSerialized(t *testing.T) {
	var calls []int
	ch, wait := Stream(context.Background(), 10, StreamConfig{
		Workers:  4,
		Progress: func(done, total int) { calls = append(calls, done) },
	}, func(_ context.Context, i int) (int, error) { return i, nil })
	if _, err := collect(ch, wait); err != nil {
		t.Fatal(err)
	}
	if len(calls) != 10 {
		t.Fatalf("progress called %d times, want 10", len(calls))
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("progress out of order: call %d reported done=%d", i, d)
		}
	}
}

func TestStreamErrorStopsAndReports(t *testing.T) {
	boom := errors.New("boom")
	ch, wait := Stream(context.Background(), 100, StreamConfig{Workers: 2},
		func(_ context.Context, i int) (int, error) {
			if i == 5 {
				return 0, boom
			}
			return i, nil
		})
	out, err := collect(ch, wait)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("stream error lost: %v", err)
	}
	if want := "sweep: item 5: boom"; err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
	// Items before the failure stream out; nothing after it does.
	if len(out) > 5 {
		t.Fatalf("emitted %d items past the failure", len(out))
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestStreamCancelPrompt(t *testing.T) {
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ch, wait := Stream(ctx, 1000, StreamConfig{Workers: 4},
		func(ctx context.Context, i int) (int, error) {
			if i == 5 {
				<-ctx.Done() // one slow item holds until cancelled
			}
			return i, nil
		})
	taken := 0
	for range ch {
		taken++
		if taken == 3 {
			cancel()
		}
	}
	err := wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if taken == 1000 {
		t.Fatal("cancellation did not stop the stream")
	}
	if !atBaseline(base, 2) {
		t.Fatalf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), base)
	}
	cancel()
}

func TestStreamAbandonedConsumer(t *testing.T) {
	// A consumer that stops reading and cancels must still unwind all
	// workers (no goroutine leak) even with results ready to emit.
	base := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	_, wait := Stream(ctx, 100, StreamConfig{Workers: 3},
		func(_ context.Context, i int) (int, error) { return i, nil })
	cancel()
	if err := wait(); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if !atBaseline(base, 2) {
		t.Fatalf("goroutines leaked: %d now vs %d at baseline", runtime.NumGoroutine(), base)
	}
}

func TestStreamPanicRepanicsOnWait(t *testing.T) {
	ch, wait := Stream(context.Background(), 8, StreamConfig{Workers: 2},
		func(_ context.Context, i int) (int, error) {
			if i == 2 {
				panic("kaboom")
			}
			return i, nil
		})
	for range ch {
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in fn was swallowed")
		}
	}()
	_ = wait()
}

func TestStreamMatchesMap(t *testing.T) {
	fn := func(_ context.Context, i int) (string, error) { return fmt.Sprintf("r%03d", i*7), nil }
	want, err := MapCtx(context.Background(), 64, 4, fn)
	if err != nil {
		t.Fatal(err)
	}
	ch, wait := Stream(context.Background(), 64, StreamConfig{Workers: 4}, fn)
	got, err := collect(ch, wait)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream returned %d results, map %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream diverged from map at %d: %q vs %q", i, got[i], want[i])
		}
	}
}
