package amat

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/units"
)

func sys() System {
	return System{
		L1: LevelStats{Name: "L1", AccessTimeS: 600e-12, LocalMissRate: 0.05,
			DynamicEnergyJ: 20e-12, LeakageW: 10e-3},
		L2: LevelStats{Name: "L2", AccessTimeS: 1500e-12, LocalMissRate: 0.20,
			DynamicEnergyJ: 150e-12, LeakageW: 50e-3},
		Mem: mem.DefaultDDR(),
	}
}

func TestAMATFormula(t *testing.T) {
	s := sys()
	want := 600e-12 + 0.05*(1500e-12+0.20*50e-9)
	if got := s.AMAT(); !units.ApproxEqual(got, want, 1e-12, 0) {
		t.Errorf("AMAT = %v, want %v", got, want)
	}
	// ~1175 ps: in Figure 2's x-axis regime.
	if ps := units.ToPS(s.AMAT()); ps < 800 || ps > 2500 {
		t.Errorf("AMAT = %v ps, outside the paper's regime", ps)
	}
}

func TestValidate(t *testing.T) {
	s := sys()
	if err := s.Validate(); err != nil {
		t.Errorf("valid system rejected: %v", err)
	}
	bad := s
	bad.L1.LocalMissRate = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("miss rate > 1 accepted")
	}
	bad = s
	bad.L2.AccessTimeS = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero access time accepted")
	}
	bad = s
	bad.L1.LeakageW = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative leakage accepted")
	}
}

func TestGlobalMissRate(t *testing.T) {
	s := sys()
	if got := s.GlobalL2MissRate(); !units.ApproxEqual(got, 0.01, 1e-12, 0) {
		t.Errorf("global miss rate = %v, want 0.01", got)
	}
}

func TestDynamicEnergy(t *testing.T) {
	s := sys()
	want := 20e-12 + 0.05*(150e-12+0.20*2e-9)
	if got := s.DynamicEnergyJ(); !units.ApproxEqual(got, want, 1e-12, 0) {
		t.Errorf("dynamic energy = %v, want %v", got, want)
	}
}

func TestTotalEnergyBreakdownConsistency(t *testing.T) {
	s := sys()
	b := s.Breakdown()
	if !units.ApproxEqual(b.Total(), s.TotalEnergyJ(), 1e-12, 0) {
		t.Errorf("breakdown total %v != TotalEnergyJ %v", b.Total(), s.TotalEnergyJ())
	}
	// Every term non-negative, leakage terms positive here.
	if b.L1LeakJ <= 0 || b.L2LeakJ <= 0 || b.MemStandbyJ <= 0 {
		t.Errorf("leakage terms must be positive: %+v", b)
	}
	// Total energy should land in Figure 2's tens-to-hundreds of pJ regime.
	if pj := units.ToPJ(s.TotalEnergyJ()); pj < 20 || pj > 1000 {
		t.Errorf("total energy = %v pJ, outside the paper's regime", pj)
	}
}

func TestLeakageTradeoffVisible(t *testing.T) {
	// Raising L2 leakage must raise total energy linearly via the AMAT window.
	s := sys()
	base := s.TotalEnergyJ()
	s.L2.LeakageW *= 2
	if s.TotalEnergyJ() <= base {
		t.Error("doubling L2 leakage must increase total energy")
	}
}

func TestFasterCacheReducesLeakageEnergyWindow(t *testing.T) {
	// Shortening AMAT shrinks the window leakage integrates over.
	s := sys()
	base := s.TotalEnergyJ()
	s.L1.AccessTimeS /= 2
	if s.TotalEnergyJ() >= base {
		t.Error("faster L1 must reduce total energy at fixed leakage")
	}
}

func TestAMATMonotonicityProperties(t *testing.T) {
	f := func(a, b float64) bool {
		m1 := math.Abs(math.Mod(a, 1))
		m2 := math.Abs(math.Mod(b, 1))
		if math.IsNaN(m1) || math.IsNaN(m2) {
			return true
		}
		s := sys()
		s.L1.LocalMissRate = m1
		s.L2.LocalMissRate = m2
		base := s.AMAT()
		s2 := s
		s2.L1.LocalMissRate = math.Min(1, m1+0.1)
		return s2.AMAT() >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Errorf("AMAT not monotone in L1 miss rate: %v", err)
	}
}

func TestSingleLevelAMAT(t *testing.T) {
	l1 := LevelStats{Name: "L1", AccessTimeS: 600e-12, LocalMissRate: 0.05,
		DynamicEnergyJ: 20e-12, LeakageW: 10e-3}
	got := SingleLevelAMAT(l1, mem.DefaultDDR())
	want := 600e-12 + 0.05*50e-9
	if !units.ApproxEqual(got, want, 1e-12, 0) {
		t.Errorf("single-level AMAT = %v, want %v", got, want)
	}
}

func TestPerfectL1MeansAMATIsHitTime(t *testing.T) {
	s := sys()
	s.L1.LocalMissRate = 0
	if got := s.AMAT(); got != s.L1.AccessTimeS {
		t.Errorf("AMAT with perfect L1 = %v, want hit time %v", got, s.L1.AccessTimeS)
	}
}
