// Package amat computes the average memory access time and the total
// energy-per-access objective used in Section 5 of the paper.
//
// AMAT follows the standard recursion
//
//	AMAT = t_L1 + m_L1 * (t_L2 + m_L2 * t_mem)
//
// with t the hit (access) times and m the local miss rates. The total
// energy of one average access charges each level's dynamic energy at the
// frequency it is exercised, main-memory energy per L2 miss, and every
// level's leakage power over the AMAT window (leakage accrues whether or
// not the level is hit — that is what makes oversized, leaky L2s lose).
package amat

import (
	"fmt"

	"repro/internal/mem"
)

// LevelStats describes one cache level's electrical and architectural state
// under a particular knob assignment.
type LevelStats struct {
	Name string
	// AccessTimeS is the level's hit time.
	AccessTimeS float64
	// LocalMissRate is the level's local miss rate under the workload.
	LocalMissRate float64
	// DynamicEnergyJ is the energy of one access to this level.
	DynamicEnergyJ float64
	// LeakageW is the level's total leakage power.
	LeakageW float64
}

// Validate reports inconsistent inputs.
func (l LevelStats) Validate() error {
	if l.AccessTimeS <= 0 {
		return fmt.Errorf("amat: %s: non-positive access time", l.Name)
	}
	if l.LocalMissRate < 0 || l.LocalMissRate > 1 {
		return fmt.Errorf("amat: %s: miss rate %v outside [0,1]", l.Name, l.LocalMissRate)
	}
	if l.DynamicEnergyJ < 0 || l.LeakageW < 0 {
		return fmt.Errorf("amat: %s: negative energy or leakage", l.Name)
	}
	return nil
}

// System is a two-level cache hierarchy backed by main memory.
type System struct {
	L1  LevelStats
	L2  LevelStats
	Mem mem.Spec
}

// Validate checks all levels.
func (s System) Validate() error {
	if err := s.L1.Validate(); err != nil {
		return err
	}
	if err := s.L2.Validate(); err != nil {
		return err
	}
	return s.Mem.Validate()
}

// AMAT returns the average memory access time (s).
func (s System) AMAT() float64 {
	return s.L1.AccessTimeS + s.L1.LocalMissRate*(s.L2.AccessTimeS+s.L2.LocalMissRate*s.Mem.LatencyS)
}

// GlobalL2MissRate returns L2 misses per L1 access.
func (s System) GlobalL2MissRate() float64 {
	return s.L1.LocalMissRate * s.L2.LocalMissRate
}

// LeakageW returns the hierarchy's total cache leakage power (the quantity
// minimized in the paper's two-level experiments; main-memory standby power
// is reported separately).
func (s System) LeakageW() float64 {
	return s.L1.LeakageW + s.L2.LeakageW
}

// DynamicEnergyJ returns the dynamic energy of one average access: L1 every
// access, L2 on L1 misses, memory on L2 misses.
func (s System) DynamicEnergyJ() float64 {
	return s.L1.DynamicEnergyJ +
		s.L1.LocalMissRate*(s.L2.DynamicEnergyJ+s.L2.LocalMissRate*s.Mem.EnergyJ)
}

// TotalEnergyJ returns the total energy attributed to one average access:
// dynamic energy plus all leakage (and memory standby) integrated over the
// AMAT window. This is the Figure 2 objective ("Total Energy (pJ)" vs
// "AMAT (pS)").
func (s System) TotalEnergyJ() float64 {
	window := s.AMAT()
	return s.DynamicEnergyJ() + (s.LeakageW()+s.Mem.StandbyW)*window
}

// EnergyBreakdown itemizes TotalEnergyJ for reporting.
type EnergyBreakdown struct {
	L1DynamicJ  float64
	L2DynamicJ  float64
	MemDynamicJ float64
	L1LeakJ     float64
	L2LeakJ     float64
	MemStandbyJ float64
}

// Total sums the parts.
func (b EnergyBreakdown) Total() float64 {
	return b.L1DynamicJ + b.L2DynamicJ + b.MemDynamicJ + b.L1LeakJ + b.L2LeakJ + b.MemStandbyJ
}

// Breakdown itemizes the total energy of one average access.
func (s System) Breakdown() EnergyBreakdown {
	w := s.AMAT()
	return EnergyBreakdown{
		L1DynamicJ:  s.L1.DynamicEnergyJ,
		L2DynamicJ:  s.L1.LocalMissRate * s.L2.DynamicEnergyJ,
		MemDynamicJ: s.GlobalL2MissRate() * s.Mem.EnergyJ,
		L1LeakJ:     s.L1.LeakageW * w,
		L2LeakJ:     s.L2.LeakageW * w,
		MemStandbyJ: s.Mem.StandbyW * w,
	}
}

// SingleLevelAMAT returns the AMAT of an L1 backed directly by memory, used
// in single-cache studies.
func SingleLevelAMAT(l1 LevelStats, m mem.Spec) float64 {
	return l1.AccessTimeS + l1.LocalMissRate*m.LatencyS
}
