package geom

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/device"
	"repro/internal/sram"
)

// Table-driven sweep over the full design space: every canonical L1 and L2
// organization must organize cleanly and produce self-consistent geometry.
func TestFullDesignSpaceConsistency(t *testing.T) {
	tc := device.Default65nm()
	cell := sram.DefaultCell()
	var cfgs []cachecfg.Config
	for _, s := range cachecfg.L1Sizes() {
		cfgs = append(cfgs, cachecfg.L1(s))
	}
	for _, s := range cachecfg.L2Sizes() {
		cfgs = append(cfgs, cachecfg.L2(s))
	}
	// Off-menu organizations a downstream user might request.
	cfgs = append(cfgs,
		cachecfg.Config{Name: "odd", SizeBytes: 128 * cachecfg.KB, BlockBytes: 128, Assoc: 2, OutputBits: 128},
		cachecfg.Config{Name: "tiny", SizeBytes: 1 * cachecfg.KB, BlockBytes: 16, Assoc: 1, OutputBits: 32},
		cachecfg.Config{Name: "wide", SizeBytes: 64 * cachecfg.KB, BlockBytes: 64, Assoc: 16, OutputBits: 512},
	)

	op := device.OP(0.3, 12)
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			a, err := Organize(cfg, cell)
			if err != nil {
				t.Fatalf("Organize: %v", err)
			}
			if a.TotalBits() < cfg.DataBits()+cfg.TagArrayBits() {
				t.Error("organized bits below requirement")
			}
			if a.Rows < 16 || a.Cols < 1 || a.NSub < 1 {
				t.Errorf("degenerate organization %v", a)
			}
			// Physical quantities are positive and ordered sensibly.
			w, h := a.Dimensions(tc, op)
			if w <= 0 || h <= 0 {
				t.Error("non-positive dimensions")
			}
			if a.AreaM2(tc, op) < w*h {
				t.Error("area below raw cell area (overhead lost)")
			}
			if a.BusLength(tc, op) <= 0 || a.WordlineLength(tc, op) <= 0 || a.BitlineLength(tc, op) <= 0 {
				t.Error("non-positive wire lengths")
			}
			// Addressing covers the structure.
			if 1<<a.RowDecodeBits() < a.Rows {
				t.Error("row decode bits insufficient")
			}
			if 1<<a.SubarraySelectBits() < a.NSub {
				t.Error("subarray select bits insufficient")
			}
			// Sense amps can deliver the output width.
			if a.SenseAmps()*a.MuxDegree < cfg.OutputBits {
				t.Error("sense amplifier count cannot cover the output port")
			}
			if act := a.ActiveSubarrays(); act < 1 || act > a.NSub {
				t.Errorf("active subarrays %d out of range", act)
			}
		})
	}
}

// Density: the organized macro should not be wildly less dense than the raw
// cell array (overhead factor bounded), across the whole space.
func TestDensityBound(t *testing.T) {
	tc := device.Default65nm()
	cell := sram.DefaultCell()
	op := device.OP(0.3, 10)
	for _, size := range append(cachecfg.L1Sizes(), cachecfg.L2Sizes()...) {
		for _, cfg := range []cachecfg.Config{cachecfg.L1(size), cachecfg.L2(size)} {
			a, err := Organize(cfg, cell)
			if err != nil {
				t.Fatal(err)
			}
			rawCellArea := float64(a.TotalCells()) * cell.Area(tc, op)
			total := a.AreaM2(tc, op)
			if factor := total / rawCellArea; factor < 1.1 || factor > 3.0 {
				t.Errorf("%v: area overhead factor %.2f outside [1.1, 3.0]", cfg, factor)
			}
		}
	}
}
