package geom

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/device"
	"repro/internal/sram"
	"repro/internal/units"
)

func tech() *device.Technology { return device.Default65nm() }

func org(t *testing.T, cfg cachecfg.Config) Array {
	t.Helper()
	a, err := Organize(cfg, sram.DefaultCell())
	if err != nil {
		t.Fatalf("Organize(%v): %v", cfg, err)
	}
	return a
}

func TestOrganizeCoversAllBits(t *testing.T) {
	for _, size := range append(cachecfg.L1Sizes(), cachecfg.L2Sizes()...) {
		for _, cfg := range []cachecfg.Config{cachecfg.L1(size), cachecfg.L2(size)} {
			a := org(t, cfg)
			want := cfg.DataBits() + cfg.TagArrayBits()
			if a.TotalBits() < want {
				t.Errorf("%v: organized %d bits < required %d", cfg, a.TotalBits(), want)
			}
			// Rounding should not waste more than ~5%.
			if float64(a.TotalBits()) > 1.05*float64(want) {
				t.Errorf("%v: organized %d bits wastes >5%% over %d", cfg, a.TotalBits(), want)
			}
		}
	}
}

func TestOrganizeRejectsInvalid(t *testing.T) {
	_, err := Organize(cachecfg.Config{SizeBytes: 100}, sram.DefaultCell())
	if err == nil {
		t.Error("invalid config accepted")
	}
}

func TestMustOrganizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustOrganize should panic on invalid config")
		}
	}()
	MustOrganize(cachecfg.Config{SizeBytes: 100}, sram.DefaultCell())
}

func TestSubarrayBounds(t *testing.T) {
	for _, size := range cachecfg.L2Sizes() {
		a := org(t, cachecfg.L2(size))
		if a.Rows > 512 || a.Cols > 1024 {
			t.Errorf("%v: subarray %dx%d too large — wordline/bitline unbounded", a.Cfg, a.Rows, a.Cols)
		}
		if a.NSub > 512 {
			t.Errorf("%v: %d subarrays exceeds bound", a.Cfg, a.NSub)
		}
	}
}

func TestBiggerCacheMoreSubarraysNotLongerBitlines(t *testing.T) {
	small := org(t, cachecfg.L2(256*cachecfg.KB))
	big := org(t, cachecfg.L2(4*cachecfg.MB))
	if big.NSub <= small.NSub {
		t.Errorf("subarray count should grow with capacity: %d vs %d", big.NSub, small.NSub)
	}
	tc := tech()
	op := device.OP(0.3, 12)
	if big.BitlineLength(tc, op) > 2*small.BitlineLength(tc, op) {
		t.Error("bitline length should stay roughly constant with capacity")
	}
}

func TestWireLengthsScaleWithTox(t *testing.T) {
	tc := tech()
	a := org(t, cachecfg.L1(16*cachecfg.KB))
	s := tc.ScaleFactor(device.OP(0.3, 14))
	wl10 := a.WordlineLength(tc, device.OP(0.3, 10))
	wl14 := a.WordlineLength(tc, device.OP(0.3, 14))
	if !units.ApproxEqual(wl14/wl10, s, 1e-9, 0) {
		t.Errorf("wordline scale = %v, want %v", wl14/wl10, s)
	}
	bl10 := a.BitlineLength(tc, device.OP(0.3, 10))
	bl14 := a.BitlineLength(tc, device.OP(0.3, 14))
	if !units.ApproxEqual(bl14/bl10, s, 1e-9, 0) {
		t.Errorf("bitline scale = %v, want %v", bl14/bl10, s)
	}
	a10 := a.AreaM2(tc, device.OP(0.3, 10))
	a14 := a.AreaM2(tc, device.OP(0.3, 14))
	if !units.ApproxEqual(a14/a10, s*s, 1e-9, 0) {
		t.Errorf("area scale = %v, want %v", a14/a10, s*s)
	}
}

func TestAreaMagnitude(t *testing.T) {
	tc := tech()
	op := device.OP(0.3, 10)
	// A 16KB 65nm cache should be of order 0.1 mm^2 (cells ~0.08 mm^2 plus
	// overhead), certainly within (0.01, 1) mm^2.
	a := org(t, cachecfg.L1(16*cachecfg.KB))
	areaMM2 := a.AreaM2(tc, op) / 1e-6
	if areaMM2 < 0.01 || areaMM2 > 1 {
		t.Errorf("16KB area = %v mm^2, want 0.01..1", areaMM2)
	}
	// A 1MB L2 should be tens of times larger.
	l2 := org(t, cachecfg.L2(1*cachecfg.MB))
	if r := l2.AreaM2(tc, op) / a.AreaM2(tc, op); r < 20 {
		t.Errorf("1MB/16KB area ratio = %v, want >= 20", r)
	}
}

func TestActiveSubarraysAndSenseAmps(t *testing.T) {
	a := org(t, cachecfg.L1(16*cachecfg.KB))
	act := a.ActiveSubarrays()
	if act < 1 || act > a.NSub {
		t.Errorf("active subarrays = %d of %d", act, a.NSub)
	}
	sa := a.SenseAmps()
	if sa < a.Cfg.OutputBits {
		t.Errorf("sense amps %d cannot deliver %d output bits", sa, a.Cfg.OutputBits)
	}
	// One sense amp per MuxDegree columns per subarray.
	wantPerSub := (a.Cols + a.MuxDegree - 1) / a.MuxDegree
	if sa != wantPerSub*a.NSub {
		t.Errorf("sense amps = %d, want %d", sa, wantPerSub*a.NSub)
	}
}

func TestDecoderBits(t *testing.T) {
	a := org(t, cachecfg.L1(16*cachecfg.KB))
	if got := a.RowDecodeBits(); (1 << got) < a.Rows {
		t.Errorf("row decode bits %d cannot address %d rows", got, a.Rows)
	}
	if got := a.SubarraySelectBits(); (1 << got) < a.NSub {
		t.Errorf("select bits %d cannot address %d subarrays", got, a.NSub)
	}
	if a.AddressBits() != a.RowDecodeBits()+a.SubarraySelectBits() {
		t.Error("AddressBits must sum its parts")
	}
}

func TestBusLengthGrowsWithCapacity(t *testing.T) {
	tc := tech()
	op := device.OP(0.3, 12)
	prev := 0.0
	for _, size := range cachecfg.L2Sizes() {
		a := org(t, cachecfg.L2(size))
		bl := a.BusLength(tc, op)
		if bl <= prev {
			t.Errorf("bus length not increasing at %v: %v <= %v", a.Cfg, bl, prev)
		}
		prev = bl
	}
}

func TestStringFormat(t *testing.T) {
	a := org(t, cachecfg.L1(16*cachecfg.KB))
	s := a.String()
	if s == "" {
		t.Error("empty String()")
	}
}

func TestPow2Floor(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 2, 4: 4, 127: 64, 128: 128, 1000: 512}
	for in, want := range cases {
		if got := pow2Floor(in); got != want {
			t.Errorf("pow2Floor(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 128: 7}
	for in, want := range cases {
		if got := log2Ceil(in); got != want {
			t.Errorf("log2Ceil(%d) = %d, want %d", in, got, want)
		}
	}
}
