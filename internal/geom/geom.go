// Package geom organizes a cache's bits into physical SRAM subarrays and
// derives the geometric quantities the electrical models need: wordline and
// bitline lengths, array dimensions, bus routing lengths, sense-amplifier
// counts, and total area.
//
// The organization heuristic follows the CACTI tradition: the storage (data
// plus tag bits) is partitioned into subarrays of roughly 64 Kbit
// (128 rows x 512 columns) so that neither wordlines nor bitlines grow with
// total capacity; capacity instead adds subarrays, lengthening the routing
// (address/data bus) instead. Cell dimensions — and therefore every wire
// length — scale with Tox through the technology's ScaleFactor, which is how
// the paper's "cell grows in both dimensions" rule reaches the delay and
// energy models.
package geom

import (
	"fmt"
	"math"

	"repro/internal/cachecfg"
	"repro/internal/device"
	"repro/internal/sram"
)

// Array is a physical organization of one cache.
type Array struct {
	Cfg  cachecfg.Config
	Cell sram.CellParams

	NSub int // number of identical subarrays (power of two)
	Rows int // wordlines per subarray
	Cols int // bitline pairs per subarray

	// MuxDegree is the column multiplexing factor: bitline pairs per sense
	// amplifier.
	MuxDegree int
}

// targetSubarrayBits is the preferred subarray capacity (128 x 512).
const targetSubarrayBits = 128 * 512

// maxSubarrays bounds the partitioning for very large caches.
const maxSubarrays = 512

// periMeterOverhead multiplies raw cell area to account for decoders,
// drivers, sense amps and routing channels.
const perimeterOverhead = 1.35

// Organize partitions the cache into subarrays.
func Organize(cfg cachecfg.Config, cell sram.CellParams) (Array, error) {
	if err := cfg.Validate(); err != nil {
		return Array{}, err
	}
	total := cfg.DataBits() + cfg.TagArrayBits()

	nsub := 1
	for total/nsub > targetSubarrayBits && nsub < maxSubarrays {
		nsub *= 2
	}
	perSub := (total + nsub - 1) / nsub

	rows := 128
	if perSub < 128*128 {
		// Small arrays: keep the subarray roughly square in bit count.
		rows = pow2Floor(int(math.Sqrt(float64(perSub))))
		if rows < 16 {
			rows = 16
		}
	}
	cols := (perSub + rows - 1) / rows
	if cols < 1 {
		cols = 1
	}

	a := Array{Cfg: cfg, Cell: cell, NSub: nsub, Rows: rows, Cols: cols, MuxDegree: 4}
	return a, nil
}

// MustOrganize is Organize for known-good configurations; it panics on error.
func MustOrganize(cfg cachecfg.Config, cell sram.CellParams) Array {
	a, err := Organize(cfg, cell)
	if err != nil {
		panic(fmt.Sprintf("geom: %v", err))
	}
	return a
}

// TotalBits returns the number of stored bits implied by the organization
// (>= data+tag bits due to rounding).
func (a Array) TotalBits() int { return a.NSub * a.Rows * a.Cols }

// TotalCells returns the number of 6T cells.
func (a Array) TotalCells() int { return a.TotalBits() }

// WordlineLength returns the length of one subarray wordline at the
// operating point.
func (a Array) WordlineLength(t *device.Technology, op device.OperatingPoint) float64 {
	w, _ := a.Cell.Dims(t, op)
	return float64(a.Cols) * w
}

// BitlineLength returns the length of one subarray bitline at the operating
// point.
func (a Array) BitlineLength(t *device.Technology, op device.OperatingPoint) float64 {
	_, h := a.Cell.Dims(t, op)
	return float64(a.Rows) * h
}

// subarrayGrid returns the (gx, gy) tiling of subarrays.
func (a Array) subarrayGrid() (int, int) {
	gx := pow2Floor(int(math.Sqrt(float64(a.NSub))))
	if gx < 1 {
		gx = 1
	}
	gy := (a.NSub + gx - 1) / gx
	return gx, gy
}

// Dimensions returns the overall array width and height (m), including a
// 20% routing pitch between subarrays.
func (a Array) Dimensions(t *device.Technology, op device.OperatingPoint) (w, h float64) {
	gx, gy := a.subarrayGrid()
	cw, ch := a.Cell.Dims(t, op)
	const pitch = 1.2
	w = pitch * float64(gx) * float64(a.Cols) * cw
	h = pitch * float64(gy) * float64(a.Rows) * ch
	return w, h
}

// AreaM2 returns the estimated total silicon area (m^2) including peripheral
// overhead. Area grows quadratically with Tox through the cell dimensions —
// the cost the paper warns about when thickening the oxide.
func (a Array) AreaM2(t *device.Technology, op device.OperatingPoint) float64 {
	w, h := a.Dimensions(t, op)
	return perimeterOverhead * w * h
}

// BusLength returns the routing length of the address/data buses: half the
// array perimeter (edge of the macro to its centre and out again).
func (a Array) BusLength(t *device.Technology, op device.OperatingPoint) float64 {
	w, h := a.Dimensions(t, op)
	return (w + h) / 2
}

// ActiveSubarrays returns how many subarrays participate in one access:
// enough columns to deliver OutputBits through the column mux, at least one.
func (a Array) ActiveSubarrays() int {
	needed := a.Cfg.OutputBits * a.MuxDegree
	n := (needed + a.Cols - 1) / a.Cols
	if n < 1 {
		n = 1
	}
	if n > a.NSub {
		n = a.NSub
	}
	return n
}

// SenseAmps returns the total number of sense amplifiers (one per MuxDegree
// bitline pairs in every subarray).
func (a Array) SenseAmps() int {
	perSub := (a.Cols + a.MuxDegree - 1) / a.MuxDegree
	return perSub * a.NSub
}

// RowDecodeBits returns the per-subarray row-address width.
func (a Array) RowDecodeBits() int { return log2Ceil(a.Rows) }

// SubarraySelectBits returns the subarray-select address width.
func (a Array) SubarraySelectBits() int { return log2Ceil(a.NSub) }

// AddressBits returns the number of address bits the decoder must receive.
func (a Array) AddressBits() int { return a.RowDecodeBits() + a.SubarraySelectBits() }

// String summarizes the organization.
func (a Array) String() string {
	return fmt.Sprintf("%v: %d x (%d rows x %d cols), mux %d:1",
		a.Cfg, a.NSub, a.Rows, a.Cols, a.MuxDegree)
}

func pow2Floor(v int) int {
	p := 1
	for p*2 <= v {
		p *= 2
	}
	return p
}

func log2Ceil(v int) int {
	n := 0
	for (1 << n) < v {
		n++
	}
	return n
}
