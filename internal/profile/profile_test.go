package profile

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// refLRU is a brute-force fully-associative LRU write-back cache: the
// mathematical object the profiler claims to summarize for every
// capacity at once. Misses and dirty evictions are counted exactly.
type refLRU struct {
	cap    int
	order  []int64 // MRU first
	dirty  map[int64]bool
	misses int64
	wbs    int64
}

func newRefLRU(capacity int) *refLRU {
	return &refLRU{cap: capacity, dirty: make(map[int64]bool)}
}

func (c *refLRU) access(b int64, write bool) {
	for i, x := range c.order {
		if x == b {
			copy(c.order[1:i+1], c.order[:i])
			c.order[0] = b
			if write {
				c.dirty[b] = true
			}
			return
		}
	}
	c.misses++
	c.order = append([]int64{b}, c.order...)
	if write {
		c.dirty[b] = true
	}
	if len(c.order) > c.cap {
		victim := c.order[len(c.order)-1]
		c.order = c.order[:len(c.order)-1]
		if c.dirty[victim] {
			c.wbs++
			delete(c.dirty, victim)
		}
	}
}

// streams the profiler must summarize exactly: mixtures of sequential
// runs, hot-set reuse, and uniform noise, all deterministic.
func testStreams() map[string][]struct {
	b     int64
	write bool
} {
	type acc = struct {
		b     int64
		write bool
	}
	out := make(map[string][]acc)

	rng := rand.New(rand.NewSource(7))
	var mixed []acc
	for i := 0; i < 5000; i++ {
		var b int64
		switch {
		case rng.Float64() < 0.5: // hot set
			b = int64(rng.Intn(12))
		case rng.Float64() < 0.5: // mid set
			b = int64(12 + rng.Intn(50))
		default: // cold tail
			b = int64(62 + rng.Intn(400))
		}
		mixed = append(mixed, acc{b: b, write: rng.Float64() < 0.4})
	}
	out["mixed"] = mixed

	var seq []acc
	for r := 0; r < 40; r++ {
		base := int64(rng.Intn(100))
		for k := 0; k < 30; k++ {
			// runs re-touch each block a few times, like word-granule
			// streaming through a block
			seq = append(seq, acc{b: base + int64(k/3), write: r%3 == 0})
		}
	}
	out["sequential"] = seq

	var writes []acc
	for i := 0; i < 3000; i++ {
		writes = append(writes, acc{b: int64(rng.Intn(40)), write: true})
	}
	out["all-writes"] = writes

	return out
}

// TestExactAgainstReferenceLRU drives one levelPass and a brute-force
// FA-LRU simulator over the same streams and demands bit-exact
// agreement on miss and write-back counts at every probed capacity —
// the Mattson inclusion property is exact for fully-associative LRU, so
// any daylight here is a profiler bug, not model error.
func TestExactAgainstReferenceLRU(t *testing.T) {
	capacities := []int{1, 2, 3, 5, 8, 13, 21, 34, 64, 128, 500, 1000}
	for name, stream := range testStreams() {
		t.Run(name, func(t *testing.T) {
			p := trace.Params{FootprintBytes: 4096, GranuleBytes: 64}
			lp := newLevelPass(1, p, len(stream))
			refs := make([]*refLRU, len(capacities))
			for i, c := range capacities {
				refs[i] = newRefLRU(c)
			}
			for i, a := range stream {
				lp.step(uint64(a.b), a.write, int32(i+1))
				for _, r := range refs {
					r.access(a.b, a.write)
				}
			}
			cdf := lp.finalize()
			n := int64(len(stream))
			for i, c := range capacities {
				gotMisses := n - (at(cdf.readHits, c) + at(cdf.writeHits, c))
				if gotMisses != refs[i].misses {
					t.Errorf("capacity %d: profiler misses %d, reference %d", c, gotMisses, refs[i].misses)
				}
				if got := at(cdf.wb, c); got != refs[i].wbs {
					t.Errorf("capacity %d: profiler writebacks %d, reference %d", c, got, refs[i].wbs)
				}
			}
		})
	}
}

// TestSplitHistogramsAccount checks the read/write split and cold
// accounting close: reads + writes + nothing else, and the miss count at
// unbounded capacity is exactly the cold (first-touch) count.
func TestSplitHistogramsAccount(t *testing.T) {
	stream := testStreams()["mixed"]
	p := trace.Params{FootprintBytes: 4096, GranuleBytes: 64}
	lp := newLevelPass(1, p, len(stream))
	var wantWrites int64
	distinct := make(map[int64]bool)
	for i, a := range stream {
		lp.step(uint64(a.b), a.write, int32(i+1))
		if a.write {
			wantWrites++
		}
		distinct[a.b] = true
	}
	cdf := lp.finalize()
	n := int64(len(stream))
	huge := 1 << 30
	if got := at(cdf.readHits, huge) + at(cdf.writeHits, huge); got != n-cdf.cold {
		t.Errorf("hits at unbounded capacity = %d, want accesses-cold = %d", got, n-cdf.cold)
	}
	if cdf.cold != int64(len(distinct)) {
		t.Errorf("cold = %d, want distinct blocks = %d", cdf.cold, len(distinct))
	}
	// Write hits plus write misses must equal the stream's writes; at
	// unbounded capacity the only write misses are cold writes, so the
	// write-hit CDF tops out between writes-cold and writes.
	if got := at(cdf.writeHits, huge); got > wantWrites || got < wantWrites-cdf.cold {
		t.Errorf("write hits at unbounded capacity = %d, want within [%d,%d]", got, wantWrites-cdf.cold, wantWrites)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(trace.SPEC2000(1), 0); err == nil {
		t.Error("Build accepted a zero access count")
	}
	if _, err := Build(trace.Params{}, 1000); err == nil {
		t.Error("Build accepted invalid trace params")
	}
	pr, err := Build(trace.SPEC2000(1), 2000)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pr.MissMatrix(nil, []int{1 << 20}); err == nil {
		t.Error("MissMatrix accepted an empty L1 size list")
	}
	if _, err := pr.MissMatrix([]int{4096}, nil); err == nil {
		t.Error("MissMatrix accepted an empty L2 size list")
	}
}

func TestValidFidelity(t *testing.T) {
	for _, ok := range []string{"", FidelityTrace, FidelityAnalytical} {
		if !ValidFidelity(ok) {
			t.Errorf("ValidFidelity(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"exact", "fast", "Trace", "ANALYTICAL"} {
		if ValidFidelity(bad) {
			t.Errorf("ValidFidelity(%q) = true, want false", bad)
		}
	}
}
