package profile

import (
	"context"
	"fmt"

	"repro/internal/trace"
)

// Fidelity names the two matrix-building paths a scenario (or an
// experiment environment) can select. The empty string means
// FidelityTrace everywhere a fidelity is consumed.
const (
	// FidelityTrace is the golden reference: trace-driven set-associative
	// simulation (sim.BuildMissMatrix).
	FidelityTrace = "trace"
	// FidelityAnalytical is this package's stack-distance fast path.
	FidelityAnalytical = "analytical"
)

// ValidFidelity reports whether s names a fidelity ("" selects trace).
func ValidFidelity(s string) bool {
	switch s {
	case "", FidelityTrace, FidelityAnalytical:
		return true
	}
	return false
}

// Tolerance is the documented agreement bound between the analytical
// fast path and trace-driven simulation: every per-(L1,L2) local miss
// rate and per-L1 write-back rate agrees within this absolute epsilon
// across the registered suites and the canonical size lists. The value
// is calibrated by the cross-fidelity tests with margin over the
// measured worst case (set-associativity conflicts and the L1-filtered
// L2 reference stream are the two modeled-away effects).
const Tolerance = 0.04

// ctxCheckStride matches internal/sim: how many profiled accesses run
// between context checks.
const ctxCheckStride = 1 << 16

// levelCDF is the finalized profile of one cache level (one block
// granularity): cumulative hit counts and write-back counts indexed by
// capacity in blocks.
type levelCDF struct {
	blockBytes int
	n          int64 // profiled accesses
	cold       int64 // first-touch accesses (miss at every capacity)
	// readHits[c] / writeHits[c] count reads/writes whose stack distance
	// is < c — i.e. hits in a fully-associative LRU cache of c blocks.
	// Index clamps at the maximum observed distance: larger capacities
	// hit everything but the cold misses.
	readHits  []int64
	writeHits []int64
	// wb[c] counts dirty evictions (write-backs) from a cache of c
	// blocks over the profiled stream, end-of-stream residents included
	// only when they were evicted (not for blocks still resident).
	wb []int64
}

// at reads a CDF array with capacity clamping.
func at(arr []int64, c int) int64 {
	if c < 0 {
		c = 0
	}
	if c >= len(arr) {
		c = len(arr) - 1
	}
	return arr[c]
}

// missRatio is misses/accesses at a capacity of c blocks.
func (l *levelCDF) missRatio(c int) float64 {
	hits := at(l.readHits, c) + at(l.writeHits, c)
	return float64(l.n-hits) / float64(l.n)
}

// writebacksPerAccess is dirty evictions per profiled access at a
// capacity of c blocks.
func (l *levelCDF) writebacksPerAccess(c int) float64 {
	return float64(at(l.wb, c)) / float64(l.n)
}

// Profile is the one-pass reuse profile of one workload at one trace
// length. It is immutable after Build and safe for concurrent queries.
type Profile struct {
	// Params is the profiled workload.
	Params trace.Params
	// Accesses is the profiled stream length.
	Accesses int

	l1 levelCDF // 32 B granularity (cachecfg.L1 geometry)
	l2 levelCDF // 64 B granularity (cachecfg.L2 geometry)
}

// Build profiles the workload; it is BuildCtx without cancellation.
func Build(p trace.Params, n int) (*Profile, error) {
	return BuildCtx(context.Background(), p, n)
}

// BuildCtx runs the single profiling pass: n accesses from a fresh
// generator, feeding the L1- and L2-granularity distance trackers in the
// same loop. Cancelling ctx aborts mid-pass (checked every
// ctxCheckStride accesses) with ctx's error.
func BuildCtx(ctx context.Context, p trace.Params, n int) (*Profile, error) {
	if n <= 0 {
		return nil, fmt.Errorf("profile: need a positive access count, got %d", n)
	}
	gen, err := trace.New(p)
	if err != nil {
		return nil, err
	}
	l1 := newLevelPass(l1BlockBytes, p, n)
	l2 := newLevelPass(l2BlockBytes, p, n)
	for i := 0; i < n; i++ {
		if i%ctxCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		a := gen.Next()
		t := int32(i + 1)
		l1.step(a.Addr, a.Write, t)
		l2.step(a.Addr, a.Write, t)
	}
	return &Profile{
		Params:   p,
		Accesses: n,
		l1:       l1.finalize(),
		l2:       l2.finalize(),
	}, nil
}

// L1MissRatio returns the modeled L1 local miss rate for an L1 of the
// given capacity in bytes (cachecfg.L1 geometry).
func (pr *Profile) L1MissRatio(sizeBytes int) float64 {
	return pr.l1.missRatio(sizeBytes / pr.l1.blockBytes)
}

// L1WritebacksPerAccess returns the modeled L1 dirty-writeback rate per
// access for an L1 of the given capacity in bytes.
func (pr *Profile) L1WritebacksPerAccess(sizeBytes int) float64 {
	return pr.l1.writebacksPerAccess(sizeBytes / pr.l1.blockBytes)
}

// L2GlobalMissRatio returns the modeled L2 misses per CPU access for an
// L2 of the given capacity in bytes (cachecfg.L2 geometry).
func (pr *Profile) L2GlobalMissRatio(sizeBytes int) float64 {
	return pr.l2.missRatio(sizeBytes / pr.l2.blockBytes)
}

// L2LocalMissRatio returns the modeled L2 local miss rate — L2 misses
// per L2 access — for the (L1, L2) capacity pair in bytes. The L2 access
// stream is the L1 miss stream plus the L1's dirty write-backs, exactly
// as the simulated hierarchy forwards it.
func (pr *Profile) L2LocalMissRatio(l1SizeBytes, l2SizeBytes int) float64 {
	refs := pr.L1MissRatio(l1SizeBytes) + pr.L1WritebacksPerAccess(l1SizeBytes)
	if refs <= 0 {
		return 0
	}
	m := pr.L2GlobalMissRatio(l2SizeBytes) / refs
	if m > 1 {
		return 1
	}
	return m
}

// fenwick is a binary indexed tree over access times 1..n, marking the
// most recent access time of each tracked block. The number of marks in
// (t, n] is the number of distinct blocks touched since time t — the
// stack distance machinery.
type fenwick []int32

func (f fenwick) add(i int, v int32) {
	for ; i < len(f); i += i & -i {
		f[i] += v
	}
}

func (f fenwick) sum(i int) int32 {
	var s int32
	for ; i > 0; i -= i & -i {
		s += f[i]
	}
	return s
}

// levelPass is the in-flight per-granularity state of one profiling
// pass. Sequential runs inside one block take a distance-0 fast path
// (no tree access); the tree is touched only when the stream moves to a
// different block.
type levelPass struct {
	blockBytes uint64
	n          int

	lastTime []int32 // per block: time of the last access (0 = never)
	dirtyGap []int32 // per block: see below; -1 = clean
	marks    fenwick
	nMarks   int32 // marked times = distinct blocks, current run excluded

	cur    int64 // block of the current sequential run (-1 = none yet)
	curEnd int32 // time of the run's latest access

	readHist  []int64
	writeHist []int64
	// wbDiff is a difference array over capacities: a dirty eviction
	// observed for every capacity in [lo, hi] increments wbDiff[lo] and
	// decrements wbDiff[hi+1]; finalize prefix-sums it into wb.
	wbDiff []int64
	cold   int64
	maxD   int
}

// dirtyGap[b] is the largest stack distance among accesses to block b
// since (and excluding) the most recent write to b, clamped like every
// distance. A capacity-C cache evicted b after that write iff
// dirtyGap[b] >= C, flushing the dirty data then; so when b is next
// evicted at capacity C it carries dirty data iff C > dirtyGap[b]. An
// access at distance D therefore emits one write-back for every capacity
// in [dirtyGap+1, D] — the capacities that both evicted b during the gap
// (C <= D) and still held the dirty data (C > dirtyGap).

func newLevelPass(blockBytes uint64, p trace.Params, n int) *levelPass {
	blocks := int((p.FootprintBytes+p.WarmBytes)/blockBytes) + 1
	// Distances never exceed the distinct blocks touched, which is
	// bounded by both the address space and the stream length.
	maxHist := blocks
	if n < maxHist {
		maxHist = n
	}
	lp := &levelPass{
		blockBytes: blockBytes,
		n:          n,
		lastTime:   make([]int32, blocks),
		dirtyGap:   make([]int32, blocks),
		marks:      make(fenwick, n+1),
		cur:        -1,
		readHist:   make([]int64, maxHist+2),
		writeHist:  make([]int64, maxHist+2),
		wbDiff:     make([]int64, maxHist+3),
	}
	for i := range lp.dirtyGap {
		lp.dirtyGap[i] = -1
	}
	return lp
}

// step profiles one access at time t (1-based).
func (lp *levelPass) step(addr uint64, write bool, t int32) {
	b := int64(addr / lp.blockBytes)
	if b == lp.cur {
		// Same block as the previous access: distance 0, no tree work.
		lp.curEnd = t
		lp.record(b, 0, write)
		return
	}
	// The previous run's block becomes a marked, finalized block.
	if lp.cur >= 0 {
		lp.lastTime[lp.cur] = lp.curEnd
		lp.marks.add(int(lp.curEnd), 1)
		lp.nMarks++
	}
	last := lp.lastTime[b]
	if last == 0 {
		lp.cold++
		lp.cur, lp.curEnd = b, t
		if write {
			lp.dirtyGap[b] = 0
		}
		return
	}
	// Distinct blocks since b's previous access: every mark after that
	// time (b's own mark sits exactly at `last`, so it is excluded).
	d := int(lp.nMarks - lp.marks.sum(int(last)))
	lp.marks.add(int(last), -1)
	lp.nMarks--
	lp.cur, lp.curEnd = b, t
	if d > lp.maxD {
		lp.maxD = d
	}
	lp.record(b, d, write)
}

// record books an access to block b at stack distance d: histogram,
// write-back events, and the block's dirty state.
func (lp *levelPass) record(b int64, d int, write bool) {
	if write {
		lp.writeHist[d]++
	} else {
		lp.readHist[d]++
	}
	gap := lp.dirtyGap[b]
	if gap >= 0 && int(gap) < d {
		// Capacities in [gap+1, d] evicted b dirty during this reuse gap.
		lp.wbDiff[gap+1]++
		lp.wbDiff[d+1]--
	}
	switch {
	case write:
		lp.dirtyGap[b] = 0
	case gap >= 0 && int(gap) < d:
		lp.dirtyGap[b] = int32(d)
	}
}

// finalize closes the pass: the still-resident tail of the stream is
// scanned once so write-backs of blocks evicted during the run but never
// re-accessed are counted (the simulator counts those too), then the
// histograms collapse into CDFs.
func (lp *levelPass) finalize() levelCDF {
	if lp.cur >= 0 {
		lp.lastTime[lp.cur] = lp.curEnd
		lp.marks.add(int(lp.curEnd), 1)
		lp.nMarks++
	}
	for b, last := range lp.lastTime {
		gap := lp.dirtyGap[b]
		if last == 0 || gap < 0 {
			continue
		}
		// depth = distinct blocks accessed after b's final access: the
		// capacities in (depth, inf) still hold b at end of stream; the
		// capacities in [gap+1, depth] evicted it dirty during the run.
		depth := int(lp.nMarks - lp.marks.sum(int(last)))
		if int(gap) < depth {
			lp.wbDiff[gap+1]++
			lp.wbDiff[depth+1]--
		}
	}

	maxD := lp.maxD
	out := levelCDF{
		blockBytes: int(lp.blockBytes),
		n:          int64(lp.n),
		cold:       lp.cold,
		readHits:   make([]int64, maxD+2),
		writeHits:  make([]int64, maxD+2),
		wb:         make([]int64, maxD+2),
	}
	var r, w, wb int64
	for c := 1; c < maxD+2; c++ {
		// Accesses at distance c-1 hit every capacity >= c.
		r += lp.readHist[c-1]
		w += lp.writeHist[c-1]
		wb += lp.wbDiff[c]
		out.readHits[c] = r
		out.writeHits[c] = w
		out.wb[c] = wb
	}
	return out
}
