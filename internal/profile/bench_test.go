package profile_test

import (
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// benchAccesses matches the per-point scale of the example grid sweeps:
// small enough that the trace-driven side finishes in benchmark time,
// large enough that both sides are in their asymptotic regime.
const benchAccesses = 60000

// BenchmarkAnalyticalVsTraceDriven measures the miss-matrix hot loop the
// way grid sweeps pay for it: every design point of the standard suite
// matrix (each workload of trace.Suites at each (L1, L2) pair of the
// canonical cachecfg size lists) builds its own single-cell matrix, which
// is exactly what scenario.RunCtx does per grid point. The trace-driven
// path re-simulates O(accesses) per point; the analytical path pays one
// profiling pass per workload and O(1) per point. The one-shot pair
// builds the full suite matrix in a single call (the figures/exp shape),
// where trace-driven amortizes its L1 passes across the L2 list.
func BenchmarkAnalyticalVsTraceDriven(b *testing.B) {
	suites := trace.Suites(1)
	l1s, l2s := cachecfg.L1Sizes(), cachecfg.L2Sizes()

	b.Run("per-point/trace-driven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range suites {
				for _, l1 := range l1s {
					for _, l2 := range l2s {
						if _, err := sim.BuildMissMatrix(p, []int{l1}, []int{l2}, benchAccesses); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
	})
	b.Run("per-point/analytical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			memo := profile.NewMemo() // fresh cache: profiling passes are inside the measurement
			for _, p := range suites {
				for _, l1 := range l1s {
					for _, l2 := range l2s {
						if _, err := memo.BuildMissMatrix(p, []int{l1}, []int{l2}, benchAccesses); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		}
	})

	b.Run("one-shot/trace-driven", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sim.BuildSuiteMatrices(suites, l1s, l2s, benchAccesses); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("one-shot/analytical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			memo := profile.NewMemo()
			for _, p := range suites {
				if _, err := memo.BuildMissMatrix(p, l1s, l2s, benchAccesses); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkProfileBuild isolates the profiling pass itself (one
// workload, one stream): the fixed cost the analytical path pays once
// per (workload, trace length).
func BenchmarkProfileBuild(b *testing.B) {
	p := trace.SPEC2000(1)
	for i := 0; i < b.N; i++ {
		if _, err := profile.Build(p, benchAccesses); err != nil {
			b.Fatal(err)
		}
	}
}
