package profile

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
)

// The profiled granularities are the block sizes cachecfg.L1/L2 fix for
// every capacity in the design space; the profiler bakes them in so one
// pass serves the whole (L1, L2) grid.
const (
	l1BlockBytes = 32
	l2BlockBytes = 64
)

// MissMatrix evaluates the profile at every (L1, L2) size combination
// and returns the result in the sim.MissMatrix shape, so the exp/opt/
// scenario layers consume it unchanged. Each cell is an O(1) CDF lookup.
func (pr *Profile) MissMatrix(l1Sizes, l2Sizes []int) (*sim.MissMatrix, error) {
	if len(l1Sizes) == 0 || len(l2Sizes) == 0 {
		return nil, fmt.Errorf("profile: empty size lists")
	}
	m := &sim.MissMatrix{
		Workload:           pr.Params.Name,
		L1Sizes:            append([]int(nil), l1Sizes...),
		L2Sizes:            append([]int(nil), l2Sizes...),
		Accesses:           pr.Accesses,
		L1Local:            make(map[int]float64),
		L2Local:            make(map[int]map[int]float64),
		WritebackPerAccess: make(map[int]float64),
	}
	sort.Ints(m.L1Sizes)
	sort.Ints(m.L2Sizes)
	for _, l1 := range m.L1Sizes {
		m.L1Local[l1] = pr.L1MissRatio(l1)
		m.WritebackPerAccess[l1] = pr.L1WritebacksPerAccess(l1)
		row := make(map[int]float64, len(m.L2Sizes))
		for _, l2 := range m.L2Sizes {
			row[l2] = pr.L2LocalMissRatio(l1, l2)
		}
		m.L2Local[l1] = row
	}
	return m, nil
}

// memoKey identifies one profile: the workload parameters and the stream
// length. trace.Params is a comparable value type, so the key is too.
type memoKey struct {
	p trace.Params
	n int
}

// Memo caches profiles per (workload, trace length) with singleflight
// semantics: concurrent design points over the same workload share one
// profiling pass instead of racing to repeat it. The zero value is ready
// to use.
type Memo struct {
	memo sweep.Memo[memoKey, *Profile]
}

// NewMemo returns an empty profile cache (for callers — benchmarks,
// tests — that must not share the process-wide one).
func NewMemo() *Memo { return &Memo{} }

// ProfileCtx returns the memoized profile for (p, n), building it on
// first use. Builds aborted by ctx do not poison the cache.
func (m *Memo) ProfileCtx(ctx context.Context, p trace.Params, n int) (*Profile, error) {
	return m.memo.Do(memoKey{p: p, n: n}, func() (*Profile, error) {
		return BuildCtx(ctx, p, n)
	})
}

// BuildMissMatrix is BuildMissMatrixCtx without cancellation.
func (m *Memo) BuildMissMatrix(p trace.Params, l1Sizes, l2Sizes []int, n int) (*sim.MissMatrix, error) {
	return m.BuildMissMatrixCtx(context.Background(), p, l1Sizes, l2Sizes, n)
}

// BuildMissMatrixCtx profiles through the memo and evaluates the grid.
// After the first call for a workload, every further (L1, L2) design
// point of that workload — any size lists, any subset — costs O(grid
// cells), not O(accesses).
func (m *Memo) BuildMissMatrixCtx(ctx context.Context, p trace.Params, l1Sizes, l2Sizes []int, n int) (*sim.MissMatrix, error) {
	pr, err := m.ProfileCtx(ctx, p, n)
	if err != nil {
		return nil, err
	}
	return pr.MissMatrix(l1Sizes, l2Sizes)
}

// shared is the process-wide profile cache behind the package-level
// builders — the analytical counterpart of the simulator's per-Env
// matrix memo, but keyed purely by (Params, n) so every scenario, grid
// point, and experiment in the process shares one pass per workload.
var shared = NewMemo()

// BuildMissMatrix is the analytical counterpart of sim.BuildMissMatrix;
// it is BuildMissMatrixCtx without cancellation.
func BuildMissMatrix(p trace.Params, l1Sizes, l2Sizes []int, n int) (*sim.MissMatrix, error) {
	return BuildMissMatrixCtx(context.Background(), p, l1Sizes, l2Sizes, n)
}

// BuildMissMatrixCtx builds the workload's miss matrix analytically: one
// memoized profiling pass (shared process-wide per workload and stream
// length), then O(1) lookups per grid cell.
func BuildMissMatrixCtx(ctx context.Context, p trace.Params, l1Sizes, l2Sizes []int, n int) (*sim.MissMatrix, error) {
	return shared.BuildMissMatrixCtx(ctx, p, l1Sizes, l2Sizes, n)
}

// BuildSuiteMatrices is the analytical counterpart of
// sim.BuildSuiteMatrices; it is BuildSuiteMatricesCtx without
// cancellation.
func BuildSuiteMatrices(suites []trace.Params, l1Sizes, l2Sizes []int, n int) ([]*sim.MissMatrix, error) {
	return BuildSuiteMatricesCtx(context.Background(), suites, l1Sizes, l2Sizes, n)
}

// BuildSuiteMatricesCtx builds matrices for several workloads, one
// worker per workload, through the shared profile cache.
func BuildSuiteMatricesCtx(ctx context.Context, suites []trace.Params, l1Sizes, l2Sizes []int, n int) ([]*sim.MissMatrix, error) {
	return sweep.MapCtx(ctx, len(suites), 0, func(ctx context.Context, i int) (*sim.MissMatrix, error) {
		m, err := BuildMissMatrixCtx(ctx, suites[i], l1Sizes, l2Sizes, n)
		if err != nil {
			return nil, fmt.Errorf("profile: workload %s: %w", suites[i].Name, err)
		}
		return m, nil
	})
}
