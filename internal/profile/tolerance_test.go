package profile_test

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/trace"
)

// toleranceAccesses is the stream length of the cross-fidelity gate —
// long enough that trace-driven statistics have settled, short enough
// that the simulated half of the comparison stays in test budget.
const toleranceAccesses = 200000

// fidelityPair is one workload built both ways over the full canonical
// size lists.
type fidelityPair struct {
	params     trace.Params
	ref        *sim.MissMatrix // trace-driven golden reference
	analytical *sim.MissMatrix
}

var (
	pairsOnce sync.Once
	pairsVal  []fidelityPair
	pairsErr  error
)

// buildPairs runs the expensive builds once and shares them between the
// tolerance and monotonicity tests. Every registered suite is covered:
// the paper's three plus the robustness extras.
func buildPairs(t *testing.T) []fidelityPair {
	t.Helper()
	pairsOnce.Do(func() {
		suites := append(trace.Suites(1), trace.ExtraSuites(1)...)
		l1s, l2s := cachecfg.L1Sizes(), cachecfg.L2Sizes()
		for _, p := range suites {
			ref, err := sim.BuildMissMatrix(p, l1s, l2s, toleranceAccesses)
			if err != nil {
				pairsErr = fmt.Errorf("sim %s: %w", p.Name, err)
				return
			}
			got, err := profile.BuildMissMatrix(p, l1s, l2s, toleranceAccesses)
			if err != nil {
				pairsErr = fmt.Errorf("profile %s: %w", p.Name, err)
				return
			}
			pairsVal = append(pairsVal, fidelityPair{params: p, ref: ref, analytical: got})
		}
	})
	if pairsErr != nil {
		t.Fatal(pairsErr)
	}
	return pairsVal
}

// TestAnalyticalWithinTolerance is the fidelity gate the package
// documents: for every registered suite and every cell of the canonical
// cachecfg size grid, the analytical L1-local, L2-local, and write-back
// rates agree with trace-driven simulation within profile.Tolerance.
func TestAnalyticalWithinTolerance(t *testing.T) {
	for _, pair := range buildPairs(t) {
		t.Run(pair.params.Name, func(t *testing.T) {
			ref, got := pair.ref, pair.analytical
			if got.Workload != ref.Workload || got.Accesses != ref.Accesses {
				t.Fatalf("matrix identity mismatch: analytical %s/%d vs sim %s/%d",
					got.Workload, got.Accesses, ref.Workload, ref.Accesses)
			}
			for _, l1 := range ref.L1Sizes {
				if d := math.Abs(got.L1Local[l1] - ref.L1Local[l1]); d > profile.Tolerance {
					t.Errorf("L1 local @ %s: analytical %.4f vs sim %.4f (|Δ|=%.4f > %.2f)",
						cachecfg.L1(l1), got.L1Local[l1], ref.L1Local[l1], d, profile.Tolerance)
				}
				if d := math.Abs(got.WritebackPerAccess[l1] - ref.WritebackPerAccess[l1]); d > profile.Tolerance {
					t.Errorf("writeback rate @ %s: analytical %.4f vs sim %.4f (|Δ|=%.4f > %.2f)",
						cachecfg.L1(l1), got.WritebackPerAccess[l1], ref.WritebackPerAccess[l1], d, profile.Tolerance)
				}
				for _, l2 := range ref.L2Sizes {
					if d := math.Abs(got.L2Local[l1][l2] - ref.L2Local[l1][l2]); d > profile.Tolerance {
						t.Errorf("L2 local @ %s,%s: analytical %.4f vs sim %.4f (|Δ|=%.4f > %.2f)",
							cachecfg.L1(l1), cachecfg.L2(l2), got.L2Local[l1][l2], ref.L2Local[l1][l2], d, profile.Tolerance)
					}
				}
			}
		})
	}
}

// TestMatricesMonotoneInCapacity checks the physical sanity property on
// both fidelities: growing a cache never increases its local miss rate.
// The analytical matrices are monotone by construction (CDFs are
// non-decreasing), so they get essentially zero slack; the
// set-associative simulator can show tiny non-monotonicities when the
// set count changes between sizes, so it gets a small statistical slack.
func TestMatricesMonotoneInCapacity(t *testing.T) {
	const (
		analyticalSlack = 1e-12
		simSlack        = 5e-3
	)
	for _, pair := range buildPairs(t) {
		for _, tc := range []struct {
			fidelity string
			m        *sim.MissMatrix
			slack    float64
		}{
			{profile.FidelityTrace, pair.ref, simSlack},
			{profile.FidelityAnalytical, pair.analytical, analyticalSlack},
		} {
			t.Run(pair.params.Name+"/"+tc.fidelity, func(t *testing.T) {
				for i := 1; i < len(tc.m.L1Sizes); i++ {
					small, big := tc.m.L1Sizes[i-1], tc.m.L1Sizes[i]
					if tc.m.L1Local[big] > tc.m.L1Local[small]+tc.slack {
						t.Errorf("L1 local rose with capacity: %.5f @ %d -> %.5f @ %d",
							tc.m.L1Local[small], small, tc.m.L1Local[big], big)
					}
				}
				for _, l1 := range tc.m.L1Sizes {
					for i := 1; i < len(tc.m.L2Sizes); i++ {
						small, big := tc.m.L2Sizes[i-1], tc.m.L2Sizes[i]
						if tc.m.L2Local[l1][big] > tc.m.L2Local[l1][small]+tc.slack {
							t.Errorf("L2 local rose with capacity @ L1=%d: %.5f @ %d -> %.5f @ %d",
								l1, tc.m.L2Local[l1][small], small, tc.m.L2Local[l1][big], big)
						}
					}
				}
			})
		}
	}
}

// TestAnalyticalDeterministic pins the byte-level invariant the grid
// equivalence suite relies on: independent profile caches produce
// identical matrices, bit for bit.
func TestAnalyticalDeterministic(t *testing.T) {
	p := trace.TPCC(3)
	l1s, l2s := cachecfg.L1Sizes(), cachecfg.L2Sizes()
	a, err := profile.NewMemo().BuildMissMatrix(p, l1s, l2s, 50000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := profile.NewMemo().BuildMissMatrix(p, l1s, l2s, 50000)
	if err != nil {
		t.Fatal(err)
	}
	for _, l1 := range l1s {
		if a.L1Local[l1] != b.L1Local[l1] || a.WritebackPerAccess[l1] != b.WritebackPerAccess[l1] {
			t.Fatalf("L1 stats differ between identical builds at l1=%d", l1)
		}
		for _, l2 := range l2s {
			if a.L2Local[l1][l2] != b.L2Local[l1][l2] {
				t.Fatalf("L2 local differs between identical builds at (%d,%d)", l1, l2)
			}
		}
	}
}

// TestBuildCtxCancellation: a cancelled context aborts the pass with the
// context's error and does not poison the memo for later callers.
func TestBuildCtxCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	memo := profile.NewMemo()
	p := trace.SPEC2000(1)
	if _, err := memo.BuildMissMatrixCtx(ctx, p, cachecfg.L1Sizes(), cachecfg.L2Sizes(), 300000); err == nil {
		t.Fatal("cancelled build succeeded")
	}
	if _, err := memo.BuildMissMatrix(p, cachecfg.L1Sizes(), cachecfg.L2Sizes(), 300000); err != nil {
		t.Fatalf("memo poisoned by cancelled build: %v", err)
	}
}
