// Package profile is the analytical fast path for the miss-matrix hot
// loop: a one-pass LRU reuse (stack-distance) profiler over the synthetic
// trace streams, and a matrix builder that turns one profile into local
// miss rates for *every* (L1 size, L2 size) combination via O(1) histogram
// CDF lookups.
//
// The trace-driven simulator (internal/sim) pays O(accesses) per L1 size
// and replays the miss stream into every candidate L2 — and every
// scenario or grid design point pays that again. Mattson's inclusion
// property removes the repetition: a fully-associative LRU cache of
// capacity C blocks hits an access if and only if its stack distance
// (the number of distinct blocks touched since the previous access to the
// same block) is below C. One pass over the stream therefore yields a
// distance histogram whose CDF answers "what is the miss ratio at
// capacity C?" for all C at once. The profiler tracks two granularities
// in the same pass — the L1's 32 B blocks and the L2's 64 B blocks (the
// geometries cachecfg.L1/L2 fix) — and splits the histogram by
// read/write so dirty-writeback rates fall out of the same pass (see
// the residency accounting on dirtyGap below).
//
// # Fidelity contract
//
// The profile models both cache levels as fully associative; the
// simulator's caches are 4-way (L1) and 8-way (L2) set-associative with
// address-bit indexing. This is the documented associativity
// approximation: the trace generators scatter hot blocks through the
// address space (trace.Params' permuted Zipf mapping), which makes
// set conflicts behave near-randomly, and at 4-8 ways the
// fully-associative LRU miss ratio is a tight lower-ish approximation of
// the set-associative one. The L2 is additionally modeled from the full
// reference stream rather than the L1-filtered miss stream (the
// inclusion argument: any reference whose 64 B-block distance reaches an
// L2 capacity has long since fallen out of every candidate L1), and L1
// dirty write-backs into the L2 are assumed to hit there (their block
// was fetched into the much larger L2 when it originally missed).
//
// Trace-driven simulation stays the golden reference. The approximation
// error is gated by TestAnalyticalWithinTolerance: across every
// registered workload suite and the full cachecfg size lists, analytical
// local miss rates and write-back rates agree with sim.BuildMissMatrix
// within Tolerance (absolute). Callers that need exact set-associative
// numbers use the simulator; callers sweeping thousands of design points
// use this package and accept the stated epsilon.
package profile
