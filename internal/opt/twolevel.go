package opt

import (
	"context"
	"fmt"
	"math"

	"repro/internal/amat"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/sweep"
)

// CacheEvaluator extends ComponentEvaluator with dynamic energy — everything
// the system-level optimizations need from one cache.
type CacheEvaluator interface {
	ComponentEvaluator
	DynamicEnergyJ(a components.Assignment) float64
}

// DynamicEnergyJ lets Direct satisfy CacheEvaluator.
func (d Direct) DynamicEnergyJ(a components.Assignment) float64 {
	return d.Cache.DynamicEnergy(a)
}

// TwoLevel is a two-level cache system under optimization: fitted (or
// direct) evaluators for each level plus the architectural statistics of the
// chosen workload and sizes.
type TwoLevel struct {
	L1, L2 CacheEvaluator
	// M1, M2 are the local miss rates of the chosen (L1 size, L2 size) under
	// the workload (from sim.MissMatrix).
	M1, M2 float64
	Mem    mem.Spec
}

// Validate checks the architectural inputs.
func (t *TwoLevel) Validate() error {
	if t.L1 == nil || t.L2 == nil {
		return fmt.Errorf("opt: two-level system missing evaluators")
	}
	if t.M1 < 0 || t.M1 > 1 || t.M2 < 0 || t.M2 > 1 {
		return fmt.Errorf("opt: miss rates (%v, %v) outside [0,1]", t.M1, t.M2)
	}
	return t.Mem.Validate()
}

// System assembles the amat.System for a pair of assignments.
func (t *TwoLevel) System(a1, a2 components.Assignment) amat.System {
	return amat.System{
		L1: amat.LevelStats{
			Name:           "L1",
			AccessTimeS:    t.L1.AccessTimeS(a1),
			LocalMissRate:  t.M1,
			DynamicEnergyJ: t.L1.DynamicEnergyJ(a1),
			LeakageW:       t.L1.LeakageW(a1),
		},
		L2: amat.LevelStats{
			Name:           "L2",
			AccessTimeS:    t.L2.AccessTimeS(a2),
			LocalMissRate:  t.M2,
			DynamicEnergyJ: t.L2.DynamicEnergyJ(a2),
			LeakageW:       t.L2.LeakageW(a2),
		},
		Mem: t.Mem,
	}
}

// AMAT returns the system AMAT under the assignments.
func (t *TwoLevel) AMAT(a1, a2 components.Assignment) float64 {
	return t.System(a1, a2).AMAT()
}

// LeakageW returns combined L1+L2 leakage.
func (t *TwoLevel) LeakageW(a1, a2 components.Assignment) float64 {
	return t.L1.LeakageW(a1) + t.L2.LeakageW(a2)
}

// L2DelayBudget converts a system AMAT budget into an L2 access-time budget
// given a fixed L1 assignment: AMAT <= B  <=>  t2 <= (B - t1)/m1 - m2*tmem.
// It returns ok=false when the budget is unreachable even with a zero-delay
// L2 (the L1 alone or the memory term already exceeds it).
func (t *TwoLevel) L2DelayBudget(a1 components.Assignment, amatBudget float64) (float64, bool) {
	if t.M1 <= 0 {
		// No L1 misses: the L2's delay does not affect AMAT; any L2 works.
		return math.Inf(1), t.L1.AccessTimeS(a1) <= amatBudget
	}
	t1 := t.L1.AccessTimeS(a1)
	budget := (amatBudget-t1)/t.M1 - t.M2*t.Mem.LatencyS
	return budget, budget > 0
}

// L1DelayBudget converts a system AMAT budget into an L1 access-time budget
// given a fixed L2 assignment: t1 <= B - m1*(t2 + m2*tmem).
func (t *TwoLevel) L1DelayBudget(a2 components.Assignment, amatBudget float64) (float64, bool) {
	t2 := t.L2.AccessTimeS(a2)
	budget := amatBudget - t.M1*(t2+t.M2*t.Mem.LatencyS)
	return budget, budget > 0
}

// TwoLevelResult reports a two-level optimization outcome.
type TwoLevelResult struct {
	L1Assignment components.Assignment
	L2Assignment components.Assignment
	LeakageW     float64 // combined cache leakage (the paper's objective)
	AMATS        float64
	TotalEnergyJ float64
	Feasible     bool
}

func (r TwoLevelResult) String() string {
	if !r.Feasible {
		return "two-level: infeasible"
	}
	return fmt.Sprintf("two-level: leak=%.4gW amat=%.4gs energy=%.4gJ", r.LeakageW, r.AMATS, r.TotalEnergyJ)
}

// OptimizeL2 finds the L2 assignment minimizing combined leakage under an
// AMAT budget with the L1 pinned to a1; it is OptimizeL2Ctx without
// cancellation.
func (t *TwoLevel) OptimizeL2(scheme Scheme, a1 components.Assignment, ops []device.OperatingPoint, amatBudget float64) TwoLevelResult {
	r, _ := t.OptimizeL2Ctx(context.Background(), scheme, a1, ops, amatBudget)
	return r
}

// OptimizeL2Ctx finds the L2 assignment minimizing combined leakage under
// an AMAT budget with the L1 pinned to a1 (the paper's first two-level
// experiment uses the default pair for L1). scheme selects the granularity
// inside the L2: SchemeIII is the "one pair in L2" experiment; SchemeII is
// the "core cells vs periphery" split.
func (t *TwoLevel) OptimizeL2Ctx(ctx context.Context, scheme Scheme, a1 components.Assignment, ops []device.OperatingPoint, amatBudget float64) (TwoLevelResult, error) {
	delayBudget, ok := t.L2DelayBudget(a1, amatBudget)
	if !ok {
		return TwoLevelResult{Feasible: false}, nil
	}
	res, err := OptimizeCtx(ctx, scheme, t.L2, ops, delayBudget)
	if err != nil {
		return TwoLevelResult{Feasible: false}, err
	}
	if !res.Feasible {
		return TwoLevelResult{Feasible: false}, nil
	}
	sys := t.System(a1, res.Assignment)
	return TwoLevelResult{
		L1Assignment: a1,
		L2Assignment: res.Assignment,
		LeakageW:     t.LeakageW(a1, res.Assignment),
		AMATS:        sys.AMAT(),
		TotalEnergyJ: sys.TotalEnergyJ(),
		Feasible:     true,
	}, nil
}

// OptimizeL2Frontier evaluates OptimizeL2 at each AMAT budget; it is
// OptimizeL2FrontierCtx without cancellation.
func (t *TwoLevel) OptimizeL2Frontier(scheme Scheme, a1 components.Assignment, ops []device.OperatingPoint, amatBudgets []float64) []TwoLevelResult {
	out, _ := t.OptimizeL2FrontierCtx(context.Background(), scheme, a1, ops, amatBudgets)
	return out
}

// OptimizeL2FrontierCtx evaluates OptimizeL2Ctx at each AMAT budget, one
// budget per worker, returning results in budget order — the two-level
// analogue of Frontier for trade-off curves over the system constraint.
func (t *TwoLevel) OptimizeL2FrontierCtx(ctx context.Context, scheme Scheme, a1 components.Assignment, ops []device.OperatingPoint, amatBudgets []float64) ([]TwoLevelResult, error) {
	return sweep.MapCtx(ctx, len(amatBudgets), 0, func(ctx context.Context, i int) (TwoLevelResult, error) {
		return t.OptimizeL2Ctx(ctx, scheme, a1, ops, amatBudgets[i])
	})
}

// OptimizeL1 finds the L1 assignment minimizing combined leakage under an
// AMAT budget with the L2 pinned to a2; it is OptimizeL1Ctx without
// cancellation.
func (t *TwoLevel) OptimizeL1(scheme Scheme, a2 components.Assignment, ops []device.OperatingPoint, amatBudget float64) TwoLevelResult {
	r, _ := t.OptimizeL1Ctx(context.Background(), scheme, a2, ops, amatBudget)
	return r
}

// OptimizeL1Ctx finds the L1 assignment minimizing combined leakage under
// an AMAT budget with the L2 pinned to a2 (the paper's L1 experiment: given
// a fixed L2, the key to minimizing total leakage is the L1).
func (t *TwoLevel) OptimizeL1Ctx(ctx context.Context, scheme Scheme, a2 components.Assignment, ops []device.OperatingPoint, amatBudget float64) (TwoLevelResult, error) {
	delayBudget, ok := t.L1DelayBudget(a2, amatBudget)
	if !ok {
		return TwoLevelResult{Feasible: false}, nil
	}
	res, err := OptimizeCtx(ctx, scheme, t.L1, ops, delayBudget)
	if err != nil {
		return TwoLevelResult{Feasible: false}, err
	}
	if !res.Feasible {
		return TwoLevelResult{Feasible: false}, nil
	}
	sys := t.System(res.Assignment, a2)
	return TwoLevelResult{
		L1Assignment: res.Assignment,
		L2Assignment: a2,
		LeakageW:     t.LeakageW(res.Assignment, a2),
		AMATS:        sys.AMAT(),
		TotalEnergyJ: sys.TotalEnergyJ(),
		Feasible:     true,
	}, nil
}
