package opt

import (
	"math"
	"sync"
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/units"
)

var (
	onceModels sync.Once
	l1Model    *model.CacheModel
	l2Model    *model.CacheModel
	l1Direct   Direct
)

func testModels(t *testing.T) (*model.CacheModel, *model.CacheModel, Direct) {
	t.Helper()
	onceModels.Do(func() {
		tech := device.Default65nm()
		c1, err := components.New(tech, cachecfg.L1(16*cachecfg.KB))
		if err != nil {
			t.Fatal(err)
		}
		c2, err := components.New(tech, cachecfg.L2(512*cachecfg.KB))
		if err != nil {
			t.Fatal(err)
		}
		l1Model, err = model.Build(c1, charlib.DefaultGrid(), 0.97)
		if err != nil {
			t.Fatal(err)
		}
		l2Model, err = model.Build(c2, charlib.DefaultGrid(), 0.97)
		if err != nil {
			t.Fatal(err)
		}
		l1Direct = Direct{Cache: c1}
	})
	if l1Model == nil || l2Model == nil {
		t.Fatal("model construction failed earlier")
	}
	return l1Model, l2Model, l1Direct
}

func midOps() []device.OperatingPoint {
	return PairsFromGrid(units.GridSteps(0.20, 0.50, 0.01), units.GridSteps(10, 14, 0.25))
}

func coarseOps() []device.OperatingPoint {
	return PairsFromGrid(units.GridSteps(0.20, 0.50, 0.1), units.GridSteps(10, 14, 2))
}

func TestParetoFront(t *testing.T) {
	pts := []ParetoPoint{
		{DelayS: 1, LeakageW: 10},
		{DelayS: 2, LeakageW: 5},
		{DelayS: 3, LeakageW: 7}, // dominated by (2,5)
		{DelayS: 4, LeakageW: 2},
		{DelayS: 1, LeakageW: 12}, // dominated by (1,10)
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3: %+v", len(front), front)
	}
	for i := 1; i < len(front); i++ {
		if front[i].DelayS <= front[i-1].DelayS || front[i].LeakageW >= front[i-1].LeakageW {
			t.Errorf("front not strictly improving: %+v", front)
		}
	}
}

func TestParetoFrontEmpty(t *testing.T) {
	if got := ParetoFront(nil); got != nil {
		t.Errorf("empty input should give nil, got %v", got)
	}
}

func TestBestUnderBudget(t *testing.T) {
	front := []ParetoPoint{
		{DelayS: 1, LeakageW: 10},
		{DelayS: 2, LeakageW: 5},
		{DelayS: 4, LeakageW: 2},
	}
	if _, ok := BestUnderBudget(front, 0.5); ok {
		t.Error("budget below fastest point should be infeasible")
	}
	p, ok := BestUnderBudget(front, 2.5)
	if !ok || p.LeakageW != 5 {
		t.Errorf("budget 2.5 should pick (2,5): %+v ok=%v", p, ok)
	}
	p, ok = BestUnderBudget(front, 100)
	if !ok || p.LeakageW != 2 {
		t.Errorf("large budget should pick the least leaky point: %+v", p)
	}
}

func TestSchemeOrdering(t *testing.T) {
	// The paper: Scheme III worst, Scheme I best, Scheme II close to I.
	l1m, _, _ := testModels(t)
	ops := midOps()
	lo, hi := FeasibleDelayRange(l1m, ops)
	budget := lo + 0.5*(hi-lo)

	r3 := OptimizeSchemeIII(l1m, ops, budget)
	r2 := OptimizeSchemeII(l1m, ops, budget)
	r1 := OptimizeSchemeI(l1m, ops, budget, 0)
	if !r3.Feasible || !r2.Feasible || !r1.Feasible {
		t.Fatalf("all schemes should be feasible at mid budget: %v / %v / %v", r1, r2, r3)
	}
	const eps = 1e-9
	if r2.LeakageW > r3.LeakageW*(1+eps) {
		t.Errorf("Scheme II (%v W) must not exceed Scheme III (%v W)", r2.LeakageW, r3.LeakageW)
	}
	if r1.LeakageW > r2.LeakageW*(1+1e-3) { // DP quantization tolerance
		t.Errorf("Scheme I (%v W) must not exceed Scheme II (%v W)", r1.LeakageW, r2.LeakageW)
	}
	// The gap II -> III should be large (the paper's headline), and clearly
	// larger than the gap I -> II ("scheme II is only slightly behind
	// scheme I ... scheme III is the worst performer").
	gapIIIoverII := r3.LeakageW / r2.LeakageW
	gapIIoverI := r2.LeakageW / math.Max(r1.LeakageW, 1e-30)
	if gapIIIoverII < 1.5 {
		t.Errorf("Scheme II should beat Scheme III clearly: III=%v II=%v", r3.LeakageW, r2.LeakageW)
	}
	if gapIIoverI > 1.8 {
		t.Errorf("Scheme II should be close to Scheme I: II=%v I=%v", r2.LeakageW, r1.LeakageW)
	}
	if gapIIoverI >= gapIIIoverII {
		t.Errorf("the III->II improvement (%vx) should dominate the II->I improvement (%vx)",
			gapIIIoverII, gapIIoverI)
	}
	// Delay constraints respected.
	for _, r := range []Result{r1, r2, r3} {
		if r.DelayS > budget*(1+1e-9) {
			t.Errorf("%v violates budget %v", r, budget)
		}
	}
}

func TestOptimalAssignmentStructure(t *testing.T) {
	// "high values of Vth and thick Tox's are always assigned to the memory
	// cell arrays, and Vth/Tox in the peripheral components have been set
	// sufficiently low."
	l1m, _, _ := testModels(t)
	ops := midOps()
	lo, hi := FeasibleDelayRange(l1m, ops)
	for _, frac := range []float64{0.35, 0.5, 0.7} {
		budget := lo + frac*(hi-lo)
		r := OptimizeSchemeII(l1m, ops, budget)
		if !r.Feasible {
			continue
		}
		cell := r.Assignment[components.PartCellArray]
		peri := r.Assignment[components.PartDecoder]
		if cell.Vth < peri.Vth {
			t.Errorf("budget %.0fps: cell Vth %v below periphery %v",
				units.ToPS(budget), cell.Vth, peri.Vth)
		}
		if cell.ToxM < peri.ToxM {
			t.Errorf("budget %.0fps: cell Tox %v below periphery %v",
				units.ToPS(budget), cell.ToxAngstrom(), peri.ToxAngstrom())
		}
	}
}

func TestSchemeIMatchesExhaustiveOnCoarseGrid(t *testing.T) {
	l1m, _, _ := testModels(t)
	ops := coarseOps()
	lo, hi := FeasibleDelayRange(l1m, ops)
	for _, frac := range []float64{0.4, 0.6, 0.9} {
		budget := lo + frac*(hi-lo)
		dp := OptimizeSchemeI(l1m, ops, budget, 8000)
		ex := ExhaustiveSchemeI(l1m, ops, budget)
		if dp.Feasible != ex.Feasible {
			t.Fatalf("budget %v: DP feasible=%v, exhaustive=%v", budget, dp.Feasible, ex.Feasible)
		}
		if !dp.Feasible {
			continue
		}
		if dp.LeakageW > ex.LeakageW*(1+5e-3) {
			t.Errorf("budget %.0fps: DP leak %v > exhaustive %v",
				units.ToPS(budget), dp.LeakageW, ex.LeakageW)
		}
		if dp.DelayS > budget*(1+1e-9) {
			t.Errorf("DP violates the true budget: %v > %v", dp.DelayS, budget)
		}
	}
}

func TestOptimumMonotoneInBudget(t *testing.T) {
	l1m, _, _ := testModels(t)
	ops := midOps()
	lo, hi := FeasibleDelayRange(l1m, ops)
	var prev float64 = math.Inf(1)
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		r := OptimizeSchemeIII(l1m, ops, lo+frac*(hi-lo))
		if !r.Feasible {
			continue
		}
		if r.LeakageW > prev*(1+1e-12) {
			t.Errorf("optimum leakage rose with larger budget at frac %v", frac)
		}
		prev = r.LeakageW
	}
}

func TestInfeasibleBudget(t *testing.T) {
	l1m, _, _ := testModels(t)
	ops := midOps()
	lo, _ := FeasibleDelayRange(l1m, ops)
	for _, s := range []Scheme{SchemeI, SchemeII, SchemeIII} {
		r := Optimize(s, l1m, ops, lo/10)
		if r.Feasible {
			t.Errorf("%v: impossible budget reported feasible", s)
		}
	}
}

func TestFrontier(t *testing.T) {
	l1m, _, _ := testModels(t)
	ops := midOps()
	lo, hi := FeasibleDelayRange(l1m, ops)
	budgets := units.Linspace(lo, hi, 8)
	rs := Frontier(SchemeIII, l1m, ops, budgets)
	if len(rs) != len(budgets) {
		t.Fatalf("frontier size %d", len(rs))
	}
	feasible := 0
	for _, r := range rs {
		if r.Feasible {
			feasible++
		}
	}
	if feasible < len(rs)-1 {
		t.Errorf("only %d of %d budgets feasible", feasible, len(rs))
	}
}

func TestDirectAgreesWithModelOrdering(t *testing.T) {
	// Optimizing against the fitted model and against the raw netlists must
	// agree on the big picture (Scheme II optimum within ~40% leakage).
	l1m, _, dir := testModels(t)
	ops := coarseOps()
	lo, hi := FeasibleDelayRange(l1m, ops)
	budget := lo + 0.6*(hi-lo)
	rm := OptimizeSchemeII(l1m, ops, budget)
	rd := OptimizeSchemeII(dir, ops, budget)
	if !rm.Feasible || !rd.Feasible {
		t.Fatalf("feasibility mismatch: model=%v direct=%v", rm.Feasible, rd.Feasible)
	}
	trueLeakOfModelChoice := dir.LeakageW(rm.Assignment)
	if trueLeakOfModelChoice > rd.LeakageW*1.4 {
		t.Errorf("model-driven optimum is %vx worse than direct optimum",
			trueLeakOfModelChoice/rd.LeakageW)
	}
}

func TestVthOnlyAndToxOnlyGrids(t *testing.T) {
	vths := units.GridSteps(0.20, 0.50, 0.05)
	toxs := units.GridSteps(10, 14, 0.5)
	vg := VthOnlyGrid(vths, 12)
	if len(vg) != len(vths) {
		t.Fatalf("VthOnlyGrid size %d", len(vg))
	}
	for _, op := range vg {
		if op.ToxAngstrom() != 12 {
			t.Errorf("VthOnlyGrid leaked Tox %v", op.ToxAngstrom())
		}
	}
	tg := ToxOnlyGrid(toxs, 0.35)
	for _, op := range tg {
		if op.Vth != 0.35 {
			t.Errorf("ToxOnlyGrid leaked Vth %v", op.Vth)
		}
	}
}

func TestVthKnobBeatsToxKnob(t *testing.T) {
	// Section 4's conclusion: Vth is the more effective knob. A Vth-only
	// optimization at a sensible fixed Tox should reach lower leakage than a
	// Tox-only optimization at a sensible fixed Vth for the same mid budget.
	l1m, _, _ := testModels(t)
	full := midOps()
	lo, hi := FeasibleDelayRange(l1m, full)
	budget := lo + 0.6*(hi-lo)

	vOnly := OptimizeSchemeIII(l1m, VthOnlyGrid(units.GridSteps(0.20, 0.50, 0.005), 12), budget)
	tOnly := OptimizeSchemeIII(l1m, ToxOnlyGrid(units.GridSteps(10, 14, 0.1), 0.3), budget)
	if !vOnly.Feasible || !tOnly.Feasible {
		t.Fatalf("baseline optimizations infeasible: v=%v t=%v", vOnly.Feasible, tOnly.Feasible)
	}
	if vOnly.LeakageW >= tOnly.LeakageW {
		t.Errorf("Vth-only (%v W) should beat Tox-only (%v W)", vOnly.LeakageW, tOnly.LeakageW)
	}
}

func TestResultString(t *testing.T) {
	r := infeasible(SchemeII)
	if r.String() == "" {
		t.Error("empty string for infeasible result")
	}
	if SchemeI.String() != "Scheme I" || Scheme(9).String() == "" {
		t.Error("scheme names")
	}
}

func TestDefaultOPWithinRange(t *testing.T) {
	tech := device.Default65nm()
	if err := tech.Validate(DefaultOP()); err != nil {
		t.Errorf("default operating point invalid: %v", err)
	}
}

func TestTwoLevelBudgets(t *testing.T) {
	l1m, l2m, _ := testModels(t)
	tl := &TwoLevel{L1: l1m, L2: l2m, M1: 0.07, M2: 0.17, Mem: mem.DefaultDDR()}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	a1 := components.Uniform(DefaultOP())

	amatTarget := tl.AMAT(a1, components.Uniform(DefaultOP()))
	b, ok := tl.L2DelayBudget(a1, amatTarget)
	if !ok {
		t.Fatal("budget conversion failed at an achievable AMAT")
	}
	// The implied L2 delay budget must recover the same AMAT when spent.
	t2 := b
	back := tl.L1.AccessTimeS(a1) + tl.M1*(t2+tl.M2*tl.Mem.LatencyS)
	if !units.ApproxEqual(back, amatTarget, 1e-9, 0) {
		t.Errorf("budget round trip: %v vs %v", back, amatTarget)
	}
	// Impossible AMAT (below L1 hit time) is flagged.
	if _, ok := tl.L2DelayBudget(a1, tl.L1.AccessTimeS(a1)/2); ok {
		t.Error("impossible AMAT accepted")
	}
}

func TestTwoLevelOptimizeL2(t *testing.T) {
	l1m, l2m, _ := testModels(t)
	tl := &TwoLevel{L1: l1m, L2: l2m, M1: 0.07, M2: 0.17, Mem: mem.DefaultDDR()}
	a1 := components.Uniform(DefaultOP())
	// A mid AMAT target: halfway between the fastest and slowest system.
	ops := midOps()
	fast := tl.AMAT(a1, components.Uniform(device.OP(0.20, 10)))
	slow := tl.AMAT(a1, components.Uniform(device.OP(0.50, 14)))
	target := fast + 0.5*(slow-fast)

	single := tl.OptimizeL2(SchemeIII, a1, ops, target)
	split := tl.OptimizeL2(SchemeII, a1, ops, target)
	if !single.Feasible || !split.Feasible {
		t.Fatalf("L2 optimizations infeasible: single=%v split=%v", single.Feasible, split.Feasible)
	}
	if single.AMATS > target*(1+1e-9) || split.AMATS > target*(1+1e-9) {
		t.Error("AMAT constraint violated")
	}
	// The split assignment can only help (Scheme II dominates Scheme III).
	if split.LeakageW > single.LeakageW*(1+1e-9) {
		t.Errorf("split L2 (%v W) should not leak more than single-pair L2 (%v W)",
			split.LeakageW, single.LeakageW)
	}
	// Paper: the split's L2 cell array ends up much more conservative than
	// its periphery.
	cell := split.L2Assignment[components.PartCellArray]
	peri := split.L2Assignment[components.PartDecoder]
	if cell.Vth <= peri.Vth && cell.ToxM <= peri.ToxM {
		t.Errorf("split L2 should set the cell array more conservatively: cell=%v periph=%v", cell, peri)
	}
}

func TestTwoLevelOptimizeL1(t *testing.T) {
	l1m, l2m, _ := testModels(t)
	tl := &TwoLevel{L1: l1m, L2: l2m, M1: 0.07, M2: 0.17, Mem: mem.DefaultDDR()}
	a2 := components.Uniform(device.OP(0.45, 13))
	fast := tl.AMAT(components.Uniform(device.OP(0.20, 10)), a2)
	slow := tl.AMAT(components.Uniform(device.OP(0.50, 14)), a2)
	target := fast + 0.6*(slow-fast)
	r := tl.OptimizeL1(SchemeII, a2, midOps(), target)
	if !r.Feasible {
		t.Fatal("L1 optimization infeasible")
	}
	if r.AMATS > target*(1+1e-9) {
		t.Error("AMAT constraint violated")
	}
}

func TestTwoLevelValidate(t *testing.T) {
	l1m, l2m, _ := testModels(t)
	bad := &TwoLevel{L1: l1m, L2: l2m, M1: 1.5, M2: 0.2, Mem: mem.DefaultDDR()}
	if err := bad.Validate(); err == nil {
		t.Error("bad miss rate accepted")
	}
	bad2 := &TwoLevel{M1: 0.1, M2: 0.2, Mem: mem.DefaultDDR()}
	if err := bad2.Validate(); err == nil {
		t.Error("missing evaluators accepted")
	}
}

func TestCombinations(t *testing.T) {
	got := combinations(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if len(got) != len(want) {
		t.Fatalf("C(4,2) size = %d", len(got))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("combinations mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
	if combinations(3, 0) == nil || len(combinations(3, 0)) != 1 {
		t.Error("C(3,0) should be the empty set singleton")
	}
	if combinations(2, 3) != nil {
		t.Error("C(2,3) should be nil")
	}
}

func systemForTest(t *testing.T) *MemorySystem {
	l1m, l2m, _ := testModels(t)
	return &MemorySystem{TwoLevel: TwoLevel{
		L1: l1m, L2: l2m, M1: 0.07, M2: 0.17, Mem: mem.DefaultDDR(),
	}}
}

func tupleCands() (vths, toxs []float64) {
	return units.GridSteps(0.20, 0.50, 0.05), units.GridSteps(10, 14, 1)
}

func TestTupleBudgetValidate(t *testing.T) {
	if err := (TupleBudget{NTox: 0, NVth: 2}).Validate(7, 5); err == nil {
		t.Error("zero Tox budget accepted")
	}
	if err := (TupleBudget{NTox: 6, NVth: 2}).Validate(7, 5); err == nil {
		t.Error("budget above candidates accepted")
	}
	if err := (TupleBudget{NTox: 2, NVth: 2}).Validate(7, 5); err != nil {
		t.Errorf("valid budget rejected: %v", err)
	}
}

func TestTupleOptimizerRespectsBudget(t *testing.T) {
	ms := systemForTest(t)
	vths, toxs := tupleCands()
	amatMid := amatMidTarget(ms)
	for _, b := range Figure2Budgets() {
		r := ms.OptimizeTuples(b, vths, toxs, amatMid)
		if !r.Feasible {
			t.Errorf("%v infeasible at mid AMAT", b)
			continue
		}
		if got := r.Assignment.DistinctVths(); got > b.NVth {
			t.Errorf("%v: assignment uses %d Vth values", b, got)
		}
		if got := r.Assignment.DistinctToxs(); got > b.NTox {
			t.Errorf("%v: assignment uses %d Tox values", b, got)
		}
		if r.AMATS > amatMid*(1+1e-9) {
			t.Errorf("%v: AMAT %v violates budget %v", b, r.AMATS, amatMid)
		}
	}
}

func amatMidTarget(ms *MemorySystem) float64 {
	fast := ms.AMATS(uniformSystem(device.OP(0.20, 10)))
	slow := ms.AMATS(uniformSystem(device.OP(0.50, 14)))
	return fast + 0.45*(slow-fast)
}

func uniformSystem(op device.OperatingPoint) SystemAssignment {
	var sa SystemAssignment
	for i := range sa {
		sa[i] = op
	}
	return sa
}

func TestTupleBudgetOrdering(t *testing.T) {
	// More values can only help: E(2,3) <= E(2,2) <= E(2,1); and the paper's
	// knob finding, E(1 Tox, 2 Vth) <= E(2 Tox, 1 Vth), which manifests in
	// the constrained (tight-AMAT) region where Figure 2 lives — at very
	// loose AMAT budgets every configuration converges to max knobs.
	ms := systemForTest(t)
	vths, toxs := tupleCands()
	target := amatMidTarget(ms)
	get := func(b TupleBudget, tgt float64) float64 {
		r := ms.OptimizeTuples(b, vths, toxs, tgt)
		if !r.Feasible {
			t.Fatalf("%v infeasible at %v", b, tgt)
		}
		return r.EnergyJ
	}
	e22 := get(TupleBudget{2, 2}, target)
	e23 := get(TupleBudget{2, 3}, target)
	e21 := get(TupleBudget{2, 1}, target)
	const eps = 1 + 1e-9
	if e23 > e22*eps {
		t.Errorf("E(2,3)=%v should be <= E(2,2)=%v", e23, e22)
	}
	if e22 > e21*eps {
		t.Errorf("E(2,2)=%v should be <= E(2,1)=%v", e22, e21)
	}
	// "a single Tox and dual Vth process outperforms that with a single Vth
	// and dual Tox": compare where the AMAT constraint binds.
	tight := amatTightTarget(ms)
	e12t := get(TupleBudget{1, 2}, tight)
	e21t := get(TupleBudget{2, 1}, tight)
	if e12t >= e21t {
		t.Errorf("Vth knob: E(1Tox,2Vth)=%v should be < E(2Tox,1Vth)=%v at tight AMAT", e12t, e21t)
	}
	// And the paper's companion claim: dual-Tox/dual-Vth vs dual-Tox/triple-
	// Vth differ only marginally ("very small").
	if e23 < e22/1.15 {
		t.Errorf("E(2,3)=%v should be within ~15%% of E(2,2)=%v", e23, e22)
	}
}

func amatTightTarget(ms *MemorySystem) float64 {
	fast := ms.AMATS(uniformSystem(device.OP(0.20, 10)))
	slow := ms.AMATS(uniformSystem(device.OP(0.50, 14)))
	return fast + 0.22*(slow-fast)
}

func TestTupleCurveMonotone(t *testing.T) {
	// Looser AMAT budgets can only lower the optimal energy... until the
	// leakage-window effect kicks in; at minimum the curve must be finite
	// and feasible across the sweep.
	ms := systemForTest(t)
	vths, toxs := tupleCands()
	fast := ms.AMATS(uniformSystem(device.OP(0.20, 10)))
	slow := ms.AMATS(uniformSystem(device.OP(0.50, 14)))
	budgets := units.Linspace(fast*1.02, slow, 6)
	curve := ms.TupleCurve(TupleBudget{2, 2}, vths, toxs, budgets)
	if len(curve) != len(budgets) {
		t.Fatal("curve length")
	}
	feasible := 0
	for _, r := range curve {
		if r.Feasible {
			feasible++
			if math.IsInf(r.EnergyJ, 0) || r.EnergyJ <= 0 {
				t.Errorf("bad energy %v", r.EnergyJ)
			}
		}
	}
	if feasible < len(curve)-1 {
		t.Errorf("only %d/%d points feasible", feasible, len(curve))
	}
}

func TestGroupNames(t *testing.T) {
	want := []string{"L1-cell", "L1-periph", "L2-cell", "L2-periph"}
	for g := GroupID(0); g < GroupCount; g++ {
		if g.String() != want[g] {
			t.Errorf("group %d = %q", g, g.String())
		}
	}
	if GroupID(17).String() != "group(17)" {
		t.Error("out-of-range group name")
	}
}

func TestSystemAssignmentProjection(t *testing.T) {
	sa := SystemAssignment{
		device.OP(0.45, 13), device.OP(0.25, 10),
		device.OP(0.50, 14), device.OP(0.30, 11),
	}
	a1 := sa.L1()
	if a1[components.PartCellArray] != sa[GroupL1Cell] {
		t.Error("L1 cell projection")
	}
	if a1[components.PartDecoder] != sa[GroupL1Periph] {
		t.Error("L1 periphery projection")
	}
	a2 := sa.L2()
	if a2[components.PartCellArray] != sa[GroupL2Cell] || a2[components.PartDataDrivers] != sa[GroupL2Periph] {
		t.Error("L2 projection")
	}
	if sa.DistinctVths() != 4 || sa.DistinctToxs() != 4 {
		t.Error("distinct counting")
	}
}

func TestMemorySystemEvalConsistency(t *testing.T) {
	ms := systemForTest(t)
	sa := uniformSystem(device.OP(0.3, 12))
	sys := ms.Eval(sa)
	if !units.ApproxEqual(ms.TotalEnergyJ(sa), sys.TotalEnergyJ(), 1e-12, 0) {
		t.Error("TotalEnergyJ disagrees with amat.System")
	}
	if !units.ApproxEqual(ms.AMATS(sa), sys.AMAT(), 1e-12, 0) {
		t.Error("AMATS disagrees with amat.System")
	}
}

func TestTupleOptimizerAgreesWithDirectObjective(t *testing.T) {
	// The inlined objective inside OptimizeTuples must match the amat.System
	// computation for the winning assignment.
	ms := systemForTest(t)
	vths, toxs := tupleCands()
	r := ms.OptimizeTuples(TupleBudget{2, 2}, vths, toxs, amatMidTarget(ms))
	if !r.Feasible {
		t.Fatal("infeasible")
	}
	want := ms.TotalEnergyJ(r.Assignment)
	if !units.ApproxEqual(r.EnergyJ, want, 1e-6, 0) {
		t.Errorf("inlined objective %v != amat.System %v", r.EnergyJ, want)
	}
}
