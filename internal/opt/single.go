package opt

import (
	"context"
	"math"

	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/sweep"
)

func partID(i int) components.PartID { return components.PartID(i) }

// minParallelOps is the grid size below which the scheme optimizers skip
// goroutine fan-out: tiny scans are cheaper than the scheduling they'd buy.
const minParallelOps = 256

// scanWorkers picks the shard fan-out for an n-candidate scan.
func scanWorkers(n int) int {
	if n < minParallelOps {
		return 1
	}
	return sweep.Workers(0)
}

// OptimizeSchemeIII finds the least-leaky uniform assignment meeting the
// delay budget; it is OptimizeSchemeIIICtx without cancellation.
func OptimizeSchemeIII(ev Evaluator, ops []device.OperatingPoint, delayBudget float64) Result {
	r, _ := OptimizeSchemeIIICtx(context.Background(), ev, ops, delayBudget)
	return r
}

// OptimizeSchemeIIICtx finds the least-leaky uniform assignment meeting
// the delay budget by scanning the candidate operating points. The scan is
// sharded across workers; shard-local bests are reduced in input order with
// the same strict inequality as the sequential scan, so the earliest
// feasible candidate still wins ties and the result is identical. On
// cancellation it returns ctx's error and an infeasible result.
func OptimizeSchemeIIICtx(ctx context.Context, ev Evaluator, ops []device.OperatingPoint, delayBudget float64) (Result, error) {
	shards := sweep.Shards(len(ops), scanWorkers(len(ops)))
	partials, err := sweep.MapCtx(ctx, len(shards), len(shards), func(ctx context.Context, si int) (Result, error) {
		best := infeasible(SchemeIII)
		for _, op := range ops[shards[si].Lo:shards[si].Hi] {
			a := components.Uniform(op)
			best.Evaluated++
			if d := ev.AccessTimeS(a); d <= delayBudget {
				if l := ev.LeakageW(a); l < best.LeakageW {
					best.Assignment = a
					best.LeakageW = l
					best.DelayS = d
					best.Feasible = true
				}
			}
		}
		return best, nil
	})
	if err != nil {
		return infeasible(SchemeIII), err
	}
	return reduceResults(SchemeIII, partials), nil
}

// reduceResults folds shard-local optimization results in shard order,
// keeping the first strict improvement (sequential tie-breaking) and summing
// evaluation counts.
func reduceResults(s Scheme, partials []Result) Result {
	best := infeasible(s)
	for _, p := range partials {
		best.Evaluated += p.Evaluated
		if p.Feasible && p.LeakageW < best.LeakageW {
			ev := best.Evaluated
			best = p
			best.Evaluated = ev
		}
	}
	return best
}

// OptimizeSchemeII finds the least-leaky (cell pair, periphery pair)
// assignment meeting the delay budget; it is OptimizeSchemeIICtx without
// cancellation.
func OptimizeSchemeII(ev ComponentEvaluator, ops []device.OperatingPoint, delayBudget float64) Result {
	r, _ := OptimizeSchemeIICtx(context.Background(), ev, ops, delayBudget)
	return r
}

// OptimizeSchemeIICtx finds the least-leaky (cell pair, periphery pair)
// assignment meeting the delay budget. The two groups decompose additively,
// so each group is reduced to its Pareto front first (the two front builds
// run concurrently, each sharding its candidate scan) and the fronts are
// combined in O(|cell front| * log |periph front|).
func OptimizeSchemeIICtx(ctx context.Context, ev ComponentEvaluator, ops []device.OperatingPoint, delayBudget float64) (Result, error) {
	fronts, err := sweep.MapCtx(ctx, 2, 2, func(ctx context.Context, which int) ([]ParetoPoint, error) {
		if which == 0 {
			return componentPareto(ev, int(components.PartCellArray), ops), nil
		}
		// Periphery group: three components sharing one pair.
		periphPts, perr := sweep.MapCtx(ctx, len(ops), scanWorkers(len(ops)), func(_ context.Context, i int) (ParetoPoint, error) {
			var d, l float64
			for _, p := range []components.PartID{components.PartDecoder, components.PartAddrDrivers, components.PartDataDrivers} {
				d += ev.PartDelayS(p, ops[i])
				l += ev.PartLeakageW(p, ops[i])
			}
			return ParetoPoint{DelayS: d, LeakageW: l, OP: ops[i]}, nil
		})
		if perr != nil {
			return nil, perr
		}
		return ParetoFront(periphPts), nil
	})
	if err != nil {
		return infeasible(SchemeII), err
	}
	cellFront, periphFront := fronts[0], fronts[1]

	best := infeasible(SchemeII)
	best.Evaluated = len(ops) * 2
	for _, cell := range cellFront {
		rem := delayBudget - cell.DelayS
		if rem < 0 {
			continue
		}
		peri, ok := BestUnderBudget(periphFront, rem)
		if !ok {
			continue
		}
		if total := cell.LeakageW + peri.LeakageW; total < best.LeakageW {
			best.Assignment = components.Split(cell.OP, peri.OP)
			best.LeakageW = total
			best.DelayS = cell.DelayS + peri.DelayS
			best.Feasible = true
		}
	}
	return best, nil
}

// SchemeIBins is the default delay quantization for the Scheme I dynamic
// program. Finer bins tighten the (conservative) quantization error.
const SchemeIBins = 4000

// OptimizeSchemeI finds independent per-component pairs minimizing total
// leakage under the delay budget; it is OptimizeSchemeICtx without
// cancellation.
func OptimizeSchemeI(ev ComponentEvaluator, ops []device.OperatingPoint, delayBudget float64, bins int) Result {
	r, _ := OptimizeSchemeICtx(context.Background(), ev, ops, delayBudget, bins)
	return r
}

// OptimizeSchemeICtx finds independent per-component pairs minimizing total
// leakage under the delay budget. Components are reduced to Pareto fronts
// and combined with a multiple-choice-knapsack dynamic program over a
// quantized delay budget. Delays are rounded up to bin boundaries, so the
// returned assignment never violates the true budget (the DP may miss
// solutions within one bin width of the boundary). The context is checked
// between DP layers.
func OptimizeSchemeICtx(ctx context.Context, ev ComponentEvaluator, ops []device.OperatingPoint, delayBudget float64, bins int) (Result, error) {
	if bins <= 0 {
		bins = SchemeIBins
	}
	fronts, err := sweep.MapCtx(ctx, int(components.PartCount), int(components.PartCount),
		func(_ context.Context, i int) ([]ParetoPoint, error) { return componentPareto(ev, i, ops), nil })
	if err != nil {
		return infeasible(SchemeI), err
	}
	evaluated := int(components.PartCount) * len(ops)
	binW := delayBudget / float64(bins)
	if binW <= 0 {
		return infeasible(SchemeI), nil
	}

	const inf = math.MaxFloat64
	binCost := func(d float64) int { return int(math.Ceil(d/binW - 1e-12)) }

	// Forward DP: tables[k][b] is the minimum leakage of the first k
	// components with quantized delay <= b bins; tables[0] is all zeros.
	tables := make([][]float64, components.PartCount+1)
	tables[0] = make([]float64, bins+1)
	for k := 0; k < int(components.PartCount); k++ {
		if err := ctx.Err(); err != nil {
			return infeasible(SchemeI), err
		}
		cur := tables[k]
		nxt := make([]float64, bins+1)
		for i := range nxt {
			nxt[i] = inf
		}
		for _, pt := range fronts[k] {
			cost := binCost(pt.DelayS)
			if cost > bins {
				continue
			}
			for b := cost; b <= bins; b++ {
				if cur[b-cost] == inf {
					continue
				}
				if cand := cur[b-cost] + pt.LeakageW; cand < nxt[b] {
					nxt[b] = cand
				}
			}
		}
		tables[k+1] = nxt
	}

	final := tables[components.PartCount]
	bestBin, bestLeak := -1, inf
	for b := 0; b <= bins; b++ {
		if final[b] < bestLeak {
			bestLeak = final[b]
			bestBin = b
		}
	}
	if bestBin < 0 {
		r := infeasible(SchemeI)
		r.Evaluated = evaluated
		return r, nil
	}

	// Backtrack through the tables to recover the per-component choices.
	var asgn components.Assignment
	b := bestBin
	for k := int(components.PartCount) - 1; k >= 0; k-- {
		found := false
		for _, pt := range fronts[k] {
			cost := binCost(pt.DelayS)
			if cost > b || tables[k][b-cost] == inf {
				continue
			}
			if approxEq(tables[k][b-cost]+pt.LeakageW, tables[k+1][b]) {
				asgn[k] = pt.OP
				b -= cost
				found = true
				break
			}
		}
		if !found {
			r := infeasible(SchemeI)
			r.Evaluated = evaluated
			return r, nil
		}
	}

	var trueDelay float64
	for i := range asgn {
		trueDelay += ev.PartDelayS(partID(i), asgn[i])
	}
	return Result{
		Scheme:     SchemeI,
		Assignment: asgn,
		LeakageW:   ev.LeakageW(asgn),
		DelayS:     trueDelay,
		Feasible:   true,
		Evaluated:  evaluated,
	}, nil
}

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}

// ExhaustiveSchemeI enumerates the full cross product of candidate points —
// exponential, usable only on coarse grids; it exists to validate the DP.
func ExhaustiveSchemeI(ev ComponentEvaluator, ops []device.OperatingPoint, delayBudget float64) Result {
	best := infeasible(SchemeI)
	var asgn components.Assignment
	var recurse func(k int, delay, leak float64)
	recurse = func(k int, delay, leak float64) {
		if delay > delayBudget || leak >= best.LeakageW {
			return // prune: both metrics only grow
		}
		if k == int(components.PartCount) {
			best.LeakageW = leak
			best.DelayS = delay
			best.Assignment = asgn
			best.Feasible = true
			return
		}
		for _, op := range ops {
			asgn[k] = op
			best.Evaluated++
			recurse(k+1,
				delay+ev.PartDelayS(partID(k), op),
				leak+ev.PartLeakageW(partID(k), op))
		}
	}
	recurse(0, 0, 0)
	return best
}

// Optimize dispatches to the scheme-specific optimizer; it is OptimizeCtx
// without cancellation.
func Optimize(s Scheme, ev ComponentEvaluator, ops []device.OperatingPoint, delayBudget float64) Result {
	r, _ := OptimizeCtx(context.Background(), s, ev, ops, delayBudget)
	return r
}

// OptimizeCtx dispatches to the scheme-specific optimizer.
func OptimizeCtx(ctx context.Context, s Scheme, ev ComponentEvaluator, ops []device.OperatingPoint, delayBudget float64) (Result, error) {
	switch s {
	case SchemeI:
		return OptimizeSchemeICtx(ctx, ev, ops, delayBudget, 0)
	case SchemeII:
		return OptimizeSchemeIICtx(ctx, ev, ops, delayBudget)
	default:
		return OptimizeSchemeIIICtx(ctx, ev, ops, delayBudget)
	}
}

// FeasibleDelayRange returns the minimum and maximum achievable access times
// over uniform assignments — the span of delay budgets worth sweeping.
func FeasibleDelayRange(ev Evaluator, ops []device.OperatingPoint) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, op := range ops {
		d := ev.AccessTimeS(components.Uniform(op))
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return lo, hi
}

// Frontier sweeps delay budgets and returns one optimization result per
// budget; it is FrontierCtx without cancellation.
func Frontier(s Scheme, ev ComponentEvaluator, ops []device.OperatingPoint, budgets []float64) []Result {
	out, _ := FrontierCtx(context.Background(), s, ev, ops, budgets)
	return out
}

// FrontierCtx sweeps delay budgets and returns one optimization result per
// budget — the leakage-vs-delay trade-off curve of the scheme. Budgets are
// independent, so each runs on its own worker; results come back in budget
// order.
func FrontierCtx(ctx context.Context, s Scheme, ev ComponentEvaluator, ops []device.OperatingPoint, budgets []float64) ([]Result, error) {
	return sweep.MapCtx(ctx, len(budgets), 0, func(ctx context.Context, i int) (Result, error) {
		return OptimizeCtx(ctx, s, ev, ops, budgets[i])
	})
}
