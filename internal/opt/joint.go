package opt

import (
	"context"
	"math"

	"repro/internal/components"
	"repro/internal/device"
)

// OptimizeJoint minimizes combined L1+L2 leakage under an AMAT budget with
// BOTH levels' assignments free — an extension of the paper's Section 5
// experiments, which pin one level while optimizing the other.
//
// The search alternates coordinate descent between the levels: holding one
// level fixed, the other level's problem reduces to a single-cache
// delay-budget optimization (the AMAT constraint is linear in each level's
// access time), which the scheme optimizers solve exactly. Each sweep can
// only lower the objective, so the iteration converges; maxRounds bounds it.
//
// The initial point matters for a non-convex alternation: the search starts
// from the fastest corner (always feasible if anything is) and lets the
// levels take turns relaxing toward conservative knobs.
func OptimizeJoint(t *TwoLevel, scheme Scheme, ops []device.OperatingPoint, amatBudget float64, maxRounds int) TwoLevelResult {
	r, _ := OptimizeJointCtx(context.Background(), t, scheme, ops, amatBudget, maxRounds)
	return r
}

// OptimizeJointCtx is OptimizeJoint with cancellation: the context is
// checked once per descent round and inside each level's grid search.
func OptimizeJointCtx(ctx context.Context, t *TwoLevel, scheme Scheme, ops []device.OperatingPoint, amatBudget float64, maxRounds int) (TwoLevelResult, error) {
	if maxRounds <= 0 {
		maxRounds = 8
	}
	fastest := fastestOP(ops)
	a1 := components.Uniform(fastest)
	a2 := components.Uniform(fastest)
	if t.AMAT(a1, a2) > amatBudget {
		return TwoLevelResult{Feasible: false}, nil
	}

	best := math.Inf(1)
	for round := 0; round < maxRounds; round++ {
		improved := false

		// Optimize L2 with L1 pinned.
		r, err := t.OptimizeL2Ctx(ctx, scheme, a1, ops, amatBudget)
		if err != nil {
			return TwoLevelResult{Feasible: false}, err
		}
		if r.Feasible && r.LeakageW < best-1e-15 {
			a2 = r.L2Assignment
			best = r.LeakageW
			improved = true
		}
		// Optimize L1 with L2 pinned.
		r, err = t.OptimizeL1Ctx(ctx, scheme, a2, ops, amatBudget)
		if err != nil {
			return TwoLevelResult{Feasible: false}, err
		}
		if r.Feasible && r.LeakageW < best-1e-15 {
			a1 = r.L1Assignment
			best = r.LeakageW
			improved = true
		}
		if !improved {
			break
		}
	}
	sys := t.System(a1, a2)
	return TwoLevelResult{
		L1Assignment: a1,
		L2Assignment: a2,
		LeakageW:     t.LeakageW(a1, a2),
		AMATS:        sys.AMAT(),
		TotalEnergyJ: sys.TotalEnergyJ(),
		Feasible:     true,
	}, nil
}

// fastestOP returns the candidate with minimum Vth then minimum Tox.
func fastestOP(ops []device.OperatingPoint) device.OperatingPoint {
	best := ops[0]
	for _, op := range ops[1:] {
		if op.Vth < best.Vth || (op.Vth == best.Vth && op.ToxM < best.ToxM) {
			best = op
		}
	}
	return best
}
