package opt

import (
	"testing"

	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/mem"
	"repro/internal/units"
)

// frontierSystem builds a small two-level system on the shared fitted-model
// fixtures.
func frontierSystem(t *testing.T) (*TwoLevel, []device.OperatingPoint) {
	t.Helper()
	l1m, l2m, _ := testModels(t)
	tl := &TwoLevel{L1: l1m, L2: l2m, M1: 0.05, M2: 0.3, Mem: mem.DefaultDDR()}
	if err := tl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tl, coarseOps()
}

// TestOptimizeL2FrontierMatchesPointwise pins the parallel frontier to the
// per-budget sequential calls it fans out: same budgets in, same results
// out, in budget order.
func TestOptimizeL2FrontierMatchesPointwise(t *testing.T) {
	tl, ops := frontierSystem(t)
	a1 := components.Uniform(DefaultOP())

	fast := tl.AMAT(a1, components.Uniform(device.OP(0.20, 10)))
	slow := tl.AMAT(a1, components.Uniform(device.OP(0.50, 14)))
	budgets := units.Linspace(fast*0.5, slow*1.1, 7) // includes infeasible low end

	got := tl.OptimizeL2Frontier(SchemeII, a1, ops, budgets)
	if len(got) != len(budgets) {
		t.Fatalf("frontier has %d results for %d budgets", len(got), len(budgets))
	}
	feasible := 0
	for i, b := range budgets {
		want := tl.OptimizeL2(SchemeII, a1, ops, b)
		if got[i] != want {
			t.Errorf("budget %d: frontier %+v != pointwise %+v", i, got[i], want)
		}
		if got[i].Feasible {
			feasible++
			if got[i].AMATS > b*(1+1e-12) {
				t.Errorf("budget %d: AMAT %g exceeds budget %g", i, got[i].AMATS, b)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible budget in the sweep range")
	}
	// Leakage is non-increasing as the budget relaxes.
	var prev float64
	first := true
	for i, r := range got {
		if !r.Feasible {
			continue
		}
		if !first && r.LeakageW > prev*(1+1e-12) {
			t.Errorf("budget %d: leakage %g rose as the budget relaxed (prev %g)", i, r.LeakageW, prev)
		}
		prev, first = r.LeakageW, false
	}
}
