// Package opt implements the paper's optimization problems: minimize total
// leakage power (or total energy) of a cache or cache hierarchy by assigning
// discrete (Vth, Tox) values to components, subject to a delay (or AMAT)
// constraint.
//
// Section 4's three assignment schemes are provided for a single cache:
//
//   - Scheme I: an independent pair per component — solved exactly (up to
//     delay quantization) with per-component Pareto sets and a
//     multiple-choice-knapsack dynamic program;
//   - Scheme II: one pair for the cell array, one for the periphery —
//     solved by scanning pair x pair with Pareto pruning;
//   - Scheme III: a single pair — solved by scanning the grid.
//
// Section 5's two-level and whole-memory-system optimizations, and the
// Figure 2 (#Tox, #Vth) tuple-budget search, build on the same machinery in
// twolevel.go and tuple.go.
package opt

import (
	"fmt"
	"math"

	"repro/internal/components"
	"repro/internal/device"
)

// Evaluator scores a whole-cache assignment. Both the fitted analytical
// model (model.CacheModel) and the direct circuit netlists (via Direct)
// satisfy it.
type Evaluator interface {
	LeakageW(a components.Assignment) float64
	AccessTimeS(a components.Assignment) float64
}

// ComponentEvaluator exposes per-component scores, required by the
// decomposition-based optimizers (Schemes I and II).
type ComponentEvaluator interface {
	Evaluator
	PartLeakageW(p components.PartID, op device.OperatingPoint) float64
	PartDelayS(p components.PartID, op device.OperatingPoint) float64
}

// Direct adapts a transistor-level cache to the evaluator interfaces. It is
// the "run the netlist" reference against which fitted models are validated.
type Direct struct {
	Cache *components.Cache
}

// LeakageW implements Evaluator.
func (d Direct) LeakageW(a components.Assignment) float64 {
	return d.Cache.Leakage(a).Total()
}

// AccessTimeS implements Evaluator.
func (d Direct) AccessTimeS(a components.Assignment) float64 {
	return d.Cache.AccessTime(a)
}

// PartLeakageW implements ComponentEvaluator.
func (d Direct) PartLeakageW(p components.PartID, op device.OperatingPoint) float64 {
	return d.Cache.Part(p).Leakage(op).Total()
}

// PartDelayS implements ComponentEvaluator.
func (d Direct) PartDelayS(p components.PartID, op device.OperatingPoint) float64 {
	return d.Cache.Part(p).Delay(op)
}

// Scheme is one of the paper's three Vth/Tox assignment schemes.
type Scheme int

const (
	// SchemeI assigns independent pairs to each cache component.
	SchemeI Scheme = iota + 1
	// SchemeII assigns one pair to the memory cell array and another to the
	// remaining three components.
	SchemeII
	// SchemeIII assigns the same pair to all four components.
	SchemeIII
)

// String names the scheme as in the paper.
func (s Scheme) String() string {
	switch s {
	case SchemeI:
		return "Scheme I"
	case SchemeII:
		return "Scheme II"
	case SchemeIII:
		return "Scheme III"
	}
	return fmt.Sprintf("scheme(%d)", int(s))
}

// Result is the outcome of a single-cache optimization.
type Result struct {
	Scheme     Scheme
	Assignment components.Assignment
	LeakageW   float64
	DelayS     float64
	Feasible   bool
	// Evaluated counts objective evaluations, for reporting optimizer cost.
	Evaluated int
}

func (r Result) String() string {
	if !r.Feasible {
		return fmt.Sprintf("%v: infeasible", r.Scheme)
	}
	return fmt.Sprintf("%v: leak=%.4gW delay=%.4gs [%v]", r.Scheme, r.LeakageW, r.DelayS, r.Assignment)
}

// Knob grids ---------------------------------------------------------------

// PairsFromGrid expands a grid into operating points.
func PairsFromGrid(vths, toxAs []float64) []device.OperatingPoint {
	out := make([]device.OperatingPoint, 0, len(vths)*len(toxAs))
	for _, v := range vths {
		for _, x := range toxAs {
			out = append(out, device.OP(v, x))
		}
	}
	return out
}

// VthOnlyGrid restricts the search to Vth with Tox pinned — the prior-art
// baseline of Kim et al. [7], which the paper extends.
func VthOnlyGrid(vths []float64, toxA float64) []device.OperatingPoint {
	out := make([]device.OperatingPoint, 0, len(vths))
	for _, v := range vths {
		out = append(out, device.OP(v, toxA))
	}
	return out
}

// ToxOnlyGrid restricts the search to Tox with Vth pinned.
func ToxOnlyGrid(toxAs []float64, vth float64) []device.OperatingPoint {
	out := make([]device.OperatingPoint, 0, len(toxAs))
	for _, x := range toxAs {
		out = append(out, device.OP(vth, x))
	}
	return out
}

// DefaultOP is the nominal high-performance assignment used where the paper
// says "assign the default Vth and Tox" (e.g. the L1 in the first L2
// experiment).
func DefaultOP() device.OperatingPoint { return device.OP(0.25, 11) }

// ConservativeOP is a low-leakage assignment (high Vth, thick Tox) used for
// pinning cell arrays in fixed-L2 experiments.
func ConservativeOP() device.OperatingPoint { return device.OP(0.45, 13) }

// feasibleInf is a sentinel for "no feasible assignment found".
func infeasible(s Scheme) Result {
	return Result{Scheme: s, LeakageW: math.Inf(1), Feasible: false}
}
