package opt

import (
	"math"
	"testing"

	"repro/internal/device"
)

// bruteForceTuples exhaustively enumerates every pair of value subsets and
// every group assignment using only the public evaluation path
// (MemorySystem.Eval), as an independent check of the optimizer's inlined
// objective and pruning.
func bruteForceTuples(ms *MemorySystem, budget TupleBudget, vthCands, toxCands []float64, amatBudget float64) TupleResult {
	res := TupleResult{Budget: budget, EnergyJ: math.Inf(1)}
	for _, vs := range combinations(len(vthCands), budget.NVth) {
		for _, ts := range combinations(len(toxCands), budget.NTox) {
			var ops []device.OperatingPoint
			for _, vi := range vs {
				for _, ti := range ts {
					ops = append(ops, device.OP(vthCands[vi], toxCands[ti]))
				}
			}
			n := len(ops)
			total := 1
			for g := 0; g < int(GroupCount); g++ {
				total *= n
			}
			for code := 0; code < total; code++ {
				var sa SystemAssignment
				c := code
				for g := 0; g < int(GroupCount); g++ {
					sa[g] = ops[c%n]
					c /= n
				}
				sys := ms.Eval(sa)
				if sys.AMAT() > amatBudget {
					continue
				}
				if e := sys.TotalEnergyJ(); e < res.EnergyJ {
					res.EnergyJ = e
					res.AMATS = sys.AMAT()
					res.Assignment = sa
					res.Feasible = true
				}
			}
		}
	}
	return res
}

func TestTupleOptimizerMatchesBruteForce(t *testing.T) {
	ms := systemForTest(t)
	// Tiny candidate menus keep the brute force tractable: 3 Vth x 2 Tox,
	// budget (2,2) -> C(3,2)*C(2,2)=3 subset pairs x 4^4 assignments.
	vths := []float64{0.20, 0.35, 0.50}
	toxs := []float64{10, 14}
	for _, frac := range []float64{0.3, 0.6} {
		target := amatFracTarget(ms, frac)
		fast := ms.OptimizeTuples(TupleBudget{NTox: 2, NVth: 2}, vths, toxs, target)
		slow := bruteForceTuples(ms, TupleBudget{NTox: 2, NVth: 2}, vths, toxs, target)
		if fast.Feasible != slow.Feasible {
			t.Fatalf("frac %v: feasibility mismatch (fast %v, brute %v)", frac, fast.Feasible, slow.Feasible)
		}
		if !fast.Feasible {
			continue
		}
		if math.Abs(fast.EnergyJ-slow.EnergyJ) > 1e-9*slow.EnergyJ {
			t.Errorf("frac %v: optimizer %v != brute force %v", frac, fast.EnergyJ, slow.EnergyJ)
		}
	}
}

func amatFracTarget(ms *MemorySystem, frac float64) float64 {
	fast := ms.AMATS(uniformSystem(device.OP(0.20, 10)))
	slow := ms.AMATS(uniformSystem(device.OP(0.50, 14)))
	return fast + frac*(slow-fast)
}

func TestTupleSingleValueBudgets(t *testing.T) {
	// (1,1) budgets degenerate to Scheme-III-style uniform choices over the
	// candidate menu; the result must use exactly one value of each knob.
	ms := systemForTest(t)
	vths, toxs := tupleCands()
	r := ms.OptimizeTuples(TupleBudget{NTox: 1, NVth: 1}, vths, toxs, amatFracTarget(ms, 0.7))
	if !r.Feasible {
		t.Fatal("(1,1) infeasible at a loose budget")
	}
	if r.Assignment.DistinctVths() != 1 || r.Assignment.DistinctToxs() != 1 {
		t.Errorf("(1,1) used %d Vths / %d Toxs", r.Assignment.DistinctVths(), r.Assignment.DistinctToxs())
	}
	// More budget can only help.
	r22 := ms.OptimizeTuples(TupleBudget{NTox: 2, NVth: 2}, vths, toxs, amatFracTarget(ms, 0.7))
	if r22.Feasible && r22.EnergyJ > r.EnergyJ*(1+1e-9) {
		t.Errorf("(2,2) worse than (1,1): %v vs %v", r22.EnergyJ, r.EnergyJ)
	}
}
