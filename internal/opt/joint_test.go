package opt

import (
	"testing"

	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/mem"
)

func jointSystem(t *testing.T) *TwoLevel {
	l1m, l2m, _ := testModels(t)
	return &TwoLevel{L1: l1m, L2: l2m, M1: 0.07, M2: 0.17, Mem: mem.DefaultDDR()}
}

func jointTarget(tl *TwoLevel, frac float64) float64 {
	fast := tl.AMAT(components.Uniform(device.OP(0.20, 10)), components.Uniform(device.OP(0.20, 10)))
	slow := tl.AMAT(components.Uniform(device.OP(0.50, 14)), components.Uniform(device.OP(0.50, 14)))
	return fast + frac*(slow-fast)
}

func TestJointRespectsAMAT(t *testing.T) {
	tl := jointSystem(t)
	ops := midOps()
	for _, frac := range []float64{0.3, 0.6, 0.9} {
		target := jointTarget(tl, frac)
		r := OptimizeJoint(tl, SchemeII, ops, target, 0)
		if !r.Feasible {
			t.Fatalf("joint optimization infeasible at frac %v", frac)
		}
		if r.AMATS > target*(1+1e-9) {
			t.Errorf("frac %v: AMAT %v violates %v", frac, r.AMATS, target)
		}
	}
}

func TestJointBeatsSingleSidedOptimization(t *testing.T) {
	// Freeing both levels can only improve on pinning the L1 at the default
	// knobs and optimizing the L2 alone.
	tl := jointSystem(t)
	ops := midOps()
	target := jointTarget(tl, 0.6)
	joint := OptimizeJoint(tl, SchemeII, ops, target, 0)
	l2only := tl.OptimizeL2(SchemeII, components.Uniform(DefaultOP()), ops, target)
	if !joint.Feasible {
		t.Fatal("joint infeasible")
	}
	if l2only.Feasible && joint.LeakageW > l2only.LeakageW*(1+1e-9) {
		t.Errorf("joint (%v W) worse than L2-only (%v W)", joint.LeakageW, l2only.LeakageW)
	}
}

func TestJointMonotoneInBudget(t *testing.T) {
	tl := jointSystem(t)
	ops := midOps()
	prev := 1e99
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8} {
		r := OptimizeJoint(tl, SchemeII, ops, jointTarget(tl, frac), 0)
		if !r.Feasible {
			continue
		}
		if r.LeakageW > prev*(1+1e-9) {
			t.Errorf("joint optimum rose with a looser budget at frac %v", frac)
		}
		prev = r.LeakageW
	}
}

func TestJointInfeasibleBudget(t *testing.T) {
	tl := jointSystem(t)
	ops := midOps()
	r := OptimizeJoint(tl, SchemeII, ops, jointTarget(tl, 0)/2, 0)
	if r.Feasible {
		t.Error("impossible AMAT accepted")
	}
}

func TestJointConservativeAtLooseBudget(t *testing.T) {
	// With an unconstrained budget both levels should saturate their knobs.
	tl := jointSystem(t)
	ops := midOps()
	r := OptimizeJoint(tl, SchemeII, ops, jointTarget(tl, 1.0)*2, 0)
	if !r.Feasible {
		t.Fatal("infeasible at loose budget")
	}
	cell := r.L2Assignment[components.PartCellArray]
	if cell.Vth < 0.49 || cell.ToxAngstrom() < 13.9 {
		t.Errorf("L2 cells should saturate at loose budgets, got %v", cell)
	}
}

func TestFastestOP(t *testing.T) {
	ops := []device.OperatingPoint{
		device.OP(0.3, 12), device.OP(0.2, 14), device.OP(0.2, 10), device.OP(0.5, 10),
	}
	got := fastestOP(ops)
	if got != device.OP(0.2, 10) {
		t.Errorf("fastestOP = %v", got)
	}
}
