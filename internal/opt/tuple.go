package opt

import (
	"context"
	"fmt"
	"math"

	"repro/internal/amat"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/sweep"
)

// GroupID identifies one knob group of the whole memory system: each cache
// level contributes a cell-array group and a periphery group (the Scheme II
// granularity the paper settles on).
type GroupID int

const (
	// GroupL1Cell is the L1 memory cell array.
	GroupL1Cell GroupID = iota
	// GroupL1Periph is the L1 decoder + bus drivers.
	GroupL1Periph
	// GroupL2Cell is the L2 memory cell array.
	GroupL2Cell
	// GroupL2Periph is the L2 decoder + bus drivers.
	GroupL2Periph
	// GroupCount is the number of knob groups in the system.
	GroupCount
)

var groupNames = [GroupCount]string{"L1-cell", "L1-periph", "L2-cell", "L2-periph"}

// String names the group.
func (g GroupID) String() string {
	if g < 0 || g >= GroupCount {
		return fmt.Sprintf("group(%d)", int(g))
	}
	return groupNames[g]
}

// SystemAssignment assigns an operating point to each knob group.
type SystemAssignment [GroupCount]device.OperatingPoint

// L1 returns the L1 cache assignment implied by the system assignment.
func (sa SystemAssignment) L1() components.Assignment {
	return components.Split(sa[GroupL1Cell], sa[GroupL1Periph])
}

// L2 returns the L2 cache assignment.
func (sa SystemAssignment) L2() components.Assignment {
	return components.Split(sa[GroupL2Cell], sa[GroupL2Periph])
}

// DistinctVths returns the number of distinct Vth values used.
func (sa SystemAssignment) DistinctVths() int {
	seen := map[float64]bool{}
	for _, op := range sa {
		seen[op.Vth] = true
	}
	return len(seen)
}

// DistinctToxs returns the number of distinct Tox values used.
func (sa SystemAssignment) DistinctToxs() int {
	seen := map[float64]bool{}
	for _, op := range sa {
		seen[op.ToxM] = true
	}
	return len(seen)
}

// MemorySystem evaluates whole-system assignments: L1 + L2 + main memory,
// the setting of the paper's Figure 2.
type MemorySystem struct {
	TwoLevel
}

// Eval returns the amat.System for a system assignment.
func (ms *MemorySystem) Eval(sa SystemAssignment) amat.System {
	return ms.System(sa.L1(), sa.L2())
}

// TotalEnergyJ is the Figure 2 objective.
func (ms *MemorySystem) TotalEnergyJ(sa SystemAssignment) float64 {
	return ms.Eval(sa).TotalEnergyJ()
}

// AMATS returns the system AMAT.
func (ms *MemorySystem) AMATS(sa SystemAssignment) float64 {
	return ms.Eval(sa).AMAT()
}

// TupleBudget is a process-cost budget: how many distinct Tox values and how
// many distinct Vth values the fab flow provides.
type TupleBudget struct {
	NTox int
	NVth int
}

func (b TupleBudget) String() string { return fmt.Sprintf("%d Tox + %d Vth", b.NTox, b.NVth) }

// Validate checks the budget against candidate list sizes.
func (b TupleBudget) Validate(nVthCands, nToxCands int) error {
	if b.NTox < 1 || b.NVth < 1 {
		return fmt.Errorf("opt: tuple budget %v must be at least 1+1", b)
	}
	if b.NTox > nToxCands || b.NVth > nVthCands {
		return fmt.Errorf("opt: tuple budget %v exceeds candidates (%d Vth, %d Tox)",
			b, nVthCands, nToxCands)
	}
	return nil
}

// TupleResult is the outcome of a tuple-budget optimization.
type TupleResult struct {
	Budget     TupleBudget
	VthSet     []float64 // chosen Vth values (V)
	ToxSet     []float64 // chosen Tox values (angstrom)
	Assignment SystemAssignment
	EnergyJ    float64
	AMATS      float64
	LeakageW   float64
	Feasible   bool
	Evaluated  int
}

func (r TupleResult) String() string {
	if !r.Feasible {
		return fmt.Sprintf("%v: infeasible", r.Budget)
	}
	return fmt.Sprintf("%v: E=%.4gJ AMAT=%.4gs Vth=%v Tox=%v", r.Budget, r.EnergyJ, r.AMATS, r.VthSet, r.ToxSet)
}

// groupMetrics caches per-group leakage/delay/energy for every candidate
// operating point, so assignment enumeration is pure arithmetic.
type groupMetrics struct {
	leak   []float64
	delay  []float64
	energy []float64
}

func (ms *MemorySystem) groupTables(ops []device.OperatingPoint) [GroupCount]groupMetrics {
	var out [GroupCount]groupMetrics
	periph := []components.PartID{components.PartDecoder, components.PartAddrDrivers, components.PartDataDrivers}
	for g := GroupID(0); g < GroupCount; g++ {
		out[g] = groupMetrics{
			leak:   make([]float64, len(ops)),
			delay:  make([]float64, len(ops)),
			energy: make([]float64, len(ops)),
		}
	}
	for i, op := range ops {
		for _, gc := range []struct {
			ev   CacheEvaluator
			cell GroupID
			peri GroupID
		}{
			{ms.L1, GroupL1Cell, GroupL1Periph},
			{ms.L2, GroupL2Cell, GroupL2Periph},
		} {
			out[gc.cell].leak[i] = gc.ev.PartLeakageW(components.PartCellArray, op)
			out[gc.cell].delay[i] = gc.ev.PartDelayS(components.PartCellArray, op)
			for _, p := range periph {
				out[gc.peri].leak[i] += gc.ev.PartLeakageW(p, op)
				out[gc.peri].delay[i] += gc.ev.PartDelayS(p, op)
			}
			// Energy is charged per assignment via DynamicEnergyJ below; the
			// group tables carry it only for diagnostics.
			out[gc.cell].energy[i] = 0
			out[gc.peri].energy[i] = 0
		}
	}
	return out
}

// OptimizeTuples finds the best tuple-budget assignment; it is
// OptimizeTuplesCtx without cancellation.
func (ms *MemorySystem) OptimizeTuples(budget TupleBudget, vthCands, toxCands []float64, amatBudget float64) TupleResult {
	r, _ := ms.OptimizeTuplesCtx(context.Background(), budget, vthCands, toxCands, amatBudget)
	return r
}

// OptimizeTuplesCtx finds, for the given tuple budget, the choice of
// Vth/Tox value sets and the per-group assignment minimizing total energy
// under the AMAT budget. Candidates are coarse grids (the fab offers a
// handful of options); all subsets of the candidate lists of the budgeted
// sizes are enumerated, and within each subset all group assignments are
// scanned.
//
// Each (Vth set, Tox set) choice is an independent shard: shards run in
// parallel and their local optima are reduced in enumeration order with the
// sequential scan's strict inequality, so the winner (and every output
// byte) matches the sequential search. Cancellation stops scheduling
// shards and aborts the in-shard enumeration.
func (ms *MemorySystem) OptimizeTuplesCtx(ctx context.Context, budget TupleBudget, vthCands, toxCands []float64, amatBudget float64) (TupleResult, error) {
	res := TupleResult{Budget: budget, EnergyJ: math.Inf(1)}
	if err := budget.Validate(len(vthCands), len(toxCands)); err != nil {
		return res, nil
	}

	vthSets := combinations(len(vthCands), budget.NVth)
	toxSets := combinations(len(toxCands), budget.NTox)

	nCombos := len(vthSets) * len(toxSets)
	partials, err := sweep.MapCtx(ctx, nCombos, 0, func(ctx context.Context, ci int) (TupleResult, error) {
		vs := vthSets[ci/len(toxSets)]
		ts := toxSets[ci%len(toxSets)]
		return ms.tupleCombo(ctx, budget, vthCands, toxCands, vs, ts, amatBudget)
	})
	if err != nil {
		return TupleResult{Budget: budget, EnergyJ: math.Inf(1)}, err
	}
	for _, p := range partials {
		res.Evaluated += p.Evaluated
		if p.Feasible && p.EnergyJ < res.EnergyJ {
			ev := res.Evaluated
			res = p
			res.Evaluated = ev
		}
	}
	return res, nil
}

// tupleCombo scans all group assignments of one (Vth set, Tox set) choice.
func (ms *MemorySystem) tupleCombo(ctx context.Context, budget TupleBudget, vthCands, toxCands []float64, vs, ts []int, amatBudget float64) (TupleResult, error) {
	res := TupleResult{Budget: budget, EnergyJ: math.Inf(1)}
	// Build the pair menu for this value-set choice.
	ops := make([]device.OperatingPoint, 0, len(vs)*len(ts))
	for _, vi := range vs {
		for _, ti := range ts {
			ops = append(ops, device.OP(vthCands[vi], toxCands[ti]))
		}
	}
	tables := ms.groupTables(ops)
	n := len(ops)

	// Enumerate all n^4 group assignments, checking the context once per
	// outermost slice so cancellation does not wait out the whole scan.
	var idx [GroupCount]int
	for idx[0] = 0; idx[0] < n; idx[0]++ {
		if err := ctx.Err(); err != nil {
			return TupleResult{Budget: budget, EnergyJ: math.Inf(1)}, err
		}
		for idx[1] = 0; idx[1] < n; idx[1]++ {
			t1 := tables[0].delay[idx[0]] + tables[1].delay[idx[1]]
			l1leak := tables[0].leak[idx[0]] + tables[1].leak[idx[1]]
			for idx[2] = 0; idx[2] < n; idx[2]++ {
				for idx[3] = 0; idx[3] < n; idx[3]++ {
					res.Evaluated++
					t2 := tables[2].delay[idx[2]] + tables[3].delay[idx[3]]
					am := t1 + ms.M1*(t2+ms.M2*ms.Mem.LatencyS)
					if am > amatBudget {
						continue
					}
					l2leak := tables[2].leak[idx[2]] + tables[3].leak[idx[3]]
					var sa SystemAssignment
					for g := range sa {
						sa[g] = ops[idx[g]]
					}
					edyn := ms.L1.DynamicEnergyJ(sa.L1()) +
						ms.M1*(ms.L2.DynamicEnergyJ(sa.L2())+ms.M2*ms.Mem.EnergyJ)
					e := edyn + (l1leak+l2leak+ms.Mem.StandbyW)*am
					if e < res.EnergyJ {
						res.EnergyJ = e
						res.AMATS = am
						res.LeakageW = l1leak + l2leak
						res.Assignment = sa
						res.VthSet = pick(vthCands, vs)
						res.ToxSet = pick(toxCands, ts)
						res.Feasible = true
					}
				}
			}
		}
	}
	return res, nil
}

// TupleCurve sweeps AMAT budgets for one tuple budget; it is TupleCurveCtx
// without cancellation.
func (ms *MemorySystem) TupleCurve(budget TupleBudget, vthCands, toxCands []float64, amatBudgets []float64) []TupleResult {
	out, _ := ms.TupleCurveCtx(context.Background(), budget, vthCands, toxCands, amatBudgets)
	return out
}

// TupleCurveCtx sweeps AMAT budgets for one tuple budget — one Figure 2
// series. Budgets are independent and run in parallel, collected in budget
// order.
func (ms *MemorySystem) TupleCurveCtx(ctx context.Context, budget TupleBudget, vthCands, toxCands []float64, amatBudgets []float64) ([]TupleResult, error) {
	return sweep.MapCtx(ctx, len(amatBudgets), 0, func(ctx context.Context, i int) (TupleResult, error) {
		return ms.OptimizeTuplesCtx(ctx, budget, vthCands, toxCands, amatBudgets[i])
	})
}

// Figure2Budgets are the five (#Tox, #Vth) tuples plotted in the paper.
func Figure2Budgets() []TupleBudget {
	return []TupleBudget{
		{NTox: 2, NVth: 2},
		{NTox: 2, NVth: 3},
		{NTox: 3, NVth: 2},
		{NTox: 2, NVth: 1},
		{NTox: 1, NVth: 2},
	}
}

// combinations returns all k-subsets of {0..n-1} in lexicographic order.
func combinations(n, k int) [][]int {
	if k < 0 || k > n {
		return nil
	}
	var out [][]int
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		out = append(out, append([]int(nil), idx...))
		// Advance.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			break
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
	return out
}

func pick(vals []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = vals[j]
	}
	return out
}
