package opt

import (
	"sort"

	"repro/internal/device"
	"repro/internal/sweep"
)

// ParetoPoint is one (delay, leakage) trade-off point with the operating
// point that achieves it.
type ParetoPoint struct {
	DelayS   float64
	LeakageW float64
	OP       device.OperatingPoint
}

// ParetoFront reduces candidate points to the non-dominated set, sorted by
// increasing delay (and therefore decreasing leakage). A point dominates
// another when it is no slower and leaks no more, and is strictly better in
// at least one dimension.
func ParetoFront(points []ParetoPoint) []ParetoPoint {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]ParetoPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].DelayS != sorted[j].DelayS {
			return sorted[i].DelayS < sorted[j].DelayS
		}
		return sorted[i].LeakageW < sorted[j].LeakageW
	})
	out := sorted[:0]
	bestLeak := sorted[0].LeakageW + 1
	for _, p := range sorted {
		if p.LeakageW < bestLeak {
			out = append(out, p)
			bestLeak = p.LeakageW
		}
	}
	// Copy to detach from the shared backing array.
	return append([]ParetoPoint(nil), out...)
}

// componentPareto builds the per-component Pareto set over the candidate
// operating points, sharding the evaluation scan across workers (the front
// reduction sorts, so input-ordered collection keeps it deterministic).
func componentPareto(ev ComponentEvaluator, part int, ops []device.OperatingPoint) []ParetoPoint {
	pts, _ := sweep.Map(len(ops), scanWorkers(len(ops)), func(i int) (ParetoPoint, error) {
		return ParetoPoint{
			DelayS:   ev.PartDelayS(partID(part), ops[i]),
			LeakageW: ev.PartLeakageW(partID(part), ops[i]),
			OP:       ops[i],
		}, nil
	})
	return ParetoFront(pts)
}

// BestUnderBudget returns the least-leaky point with delay <= budget, or
// false when none qualifies. Points must be a Pareto front (sorted by delay).
func BestUnderBudget(front []ParetoPoint, budget float64) (ParetoPoint, bool) {
	// The front is sorted by increasing delay with decreasing leakage, so
	// the best feasible point is the last one within budget.
	idx := sort.Search(len(front), func(i int) bool { return front[i].DelayS > budget })
	if idx == 0 {
		return ParetoPoint{}, false
	}
	return front[idx-1], true
}
