package opt

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/device"
)

// randomPoints builds a reproducible random point cloud from a seed.
func randomPoints(seed int64, n int) []ParetoPoint {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]ParetoPoint, n)
	for i := range pts {
		pts[i] = ParetoPoint{
			DelayS:   rng.Float64(),
			LeakageW: rng.Float64(),
			OP:       device.OP(0.2+0.3*rng.Float64(), 10+4*rng.Float64()),
		}
	}
	return pts
}

func dominates(a, b ParetoPoint) bool {
	return a.DelayS <= b.DelayS && a.LeakageW <= b.LeakageW &&
		(a.DelayS < b.DelayS || a.LeakageW < b.LeakageW)
}

func TestParetoFrontNoDominatedPointsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		pts := randomPoints(seed, n)
		front := ParetoFront(pts)
		// No front point dominates another front point.
		for i := range front {
			for j := range front {
				if i != j && dominates(front[i], front[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParetoFrontCoversAllPointsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		pts := randomPoints(seed, n)
		front := ParetoFront(pts)
		// Every input point is dominated by (or equal to) some front point.
		for _, p := range pts {
			ok := false
			for _, fp := range front {
				if fp.DelayS <= p.DelayS && fp.LeakageW <= p.LeakageW {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParetoFrontSortedProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		front := ParetoFront(randomPoints(seed, n))
		return sort.SliceIsSorted(front, func(i, j int) bool {
			return front[i].DelayS < front[j].DelayS
		})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParetoFrontIdempotent(t *testing.T) {
	pts := randomPoints(42, 200)
	once := ParetoFront(pts)
	twice := ParetoFront(once)
	if len(once) != len(twice) {
		t.Fatalf("front not idempotent: %d vs %d", len(once), len(twice))
	}
	for i := range once {
		if once[i] != twice[i] {
			t.Fatalf("front changed at %d", i)
		}
	}
}

func TestParetoFrontDoesNotMutateInput(t *testing.T) {
	pts := randomPoints(7, 50)
	copyPts := append([]ParetoPoint(nil), pts...)
	ParetoFront(pts)
	for i := range pts {
		if pts[i] != copyPts[i] {
			t.Fatal("input slice mutated")
		}
	}
}

func TestBestUnderBudgetMatchesLinearScanProperty(t *testing.T) {
	f := func(seed int64, budgetRaw uint8) bool {
		front := ParetoFront(randomPoints(seed, 30))
		budget := float64(budgetRaw) / 255
		got, ok := BestUnderBudget(front, budget)
		// Reference: linear scan.
		var want *ParetoPoint
		for i := range front {
			if front[i].DelayS <= budget {
				if want == nil || front[i].LeakageW < want.LeakageW {
					want = &front[i]
				}
			}
		}
		if want == nil {
			return !ok
		}
		return ok && got == *want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
