// Package cpu converts memory-system metrics into program-level time and
// energy, completing the paper's "entire microprocessor memory system"
// picture: an in-order core issues instructions at a base CPI, a fraction
// of them access memory, and every lost memory cycle costs core energy —
// so cache knob choices feed back into whole-program energy.
package cpu

import (
	"fmt"

	"repro/internal/amat"
)

// Spec describes a simple in-order core of the paper's era.
type Spec struct {
	Name string
	// ClockHz is the core frequency.
	ClockHz float64
	// BaseCPI is the cycles per instruction with a perfect (single-cycle)
	// memory system.
	BaseCPI float64
	// MemRefsPerInstr is the fraction of instructions that reference memory.
	MemRefsPerInstr float64
	// CoreDynamicJPerInstr is the core's switching energy per instruction.
	CoreDynamicJPerInstr float64
	// CoreLeakageW is the core's (non-cache) leakage power.
	CoreLeakageW float64
}

// Default65nmCore returns a 2 GHz in-order core: base CPI 1, ~35% memory
// instructions, 100 pJ/instruction of core switching.
func Default65nmCore() Spec {
	return Spec{
		Name:                 "inorder-2GHz",
		ClockHz:              2e9,
		BaseCPI:              1.0,
		MemRefsPerInstr:      0.35,
		CoreDynamicJPerInstr: 100e-12,
		CoreLeakageW:         200e-3,
	}
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	if s.ClockHz <= 0 {
		return fmt.Errorf("cpu: non-positive clock %v", s.ClockHz)
	}
	if s.BaseCPI <= 0 {
		return fmt.Errorf("cpu: non-positive base CPI %v", s.BaseCPI)
	}
	if s.MemRefsPerInstr < 0 || s.MemRefsPerInstr > 1 {
		return fmt.Errorf("cpu: memory reference fraction %v outside [0,1]", s.MemRefsPerInstr)
	}
	if s.CoreDynamicJPerInstr < 0 || s.CoreLeakageW < 0 {
		return fmt.Errorf("cpu: negative energy/leakage")
	}
	return nil
}

// CycleS returns the clock period.
func (s Spec) CycleS() float64 { return 1 / s.ClockHz }

// Metrics summarizes a program's execution on the core + memory system.
type Metrics struct {
	CPI float64 // effective cycles per instruction
	// TimePerInstrS is the wall-clock time per instruction.
	TimePerInstrS float64
	// EnergyPerInstrJ is the total (core + memory hierarchy) energy per
	// instruction.
	EnergyPerInstrJ float64
	// MemoryShare is the fraction of EnergyPerInstrJ attributable to the
	// memory system (dynamic + cache leakage + memory standby).
	MemoryShare float64
	// LeakageShare is the fraction of EnergyPerInstrJ from leakage of any
	// kind (core + caches + memory standby).
	LeakageShare float64
}

// Run evaluates the core against a memory system: the AMAT beyond one cycle
// stalls the pipeline on every memory instruction (blocking cache model, as
// in the paper's era of in-order cores).
func (s Spec) Run(sys amat.System) (Metrics, error) {
	if err := s.Validate(); err != nil {
		return Metrics{}, err
	}
	if err := sys.Validate(); err != nil {
		return Metrics{}, err
	}
	cycle := s.CycleS()
	amatCycles := sys.AMAT() / cycle
	stall := amatCycles - 1
	if stall < 0 {
		stall = 0
	}
	cpi := s.BaseCPI + s.MemRefsPerInstr*stall
	timePerInstr := cpi * cycle

	memDynamic := s.MemRefsPerInstr * sys.DynamicEnergyJ()
	cacheLeak := sys.LeakageW() * timePerInstr
	memStandby := sys.Mem.StandbyW * timePerInstr
	coreLeak := s.CoreLeakageW * timePerInstr
	total := s.CoreDynamicJPerInstr + memDynamic + cacheLeak + memStandby + coreLeak

	return Metrics{
		CPI:             cpi,
		TimePerInstrS:   timePerInstr,
		EnergyPerInstrJ: total,
		MemoryShare:     (memDynamic + cacheLeak + memStandby) / total,
		LeakageShare:    (cacheLeak + memStandby + coreLeak) / total,
	}, nil
}

// EDP returns the energy-delay product per instruction, a common combined
// figure of merit for power-performance trade-offs.
func (m Metrics) EDP() float64 { return m.EnergyPerInstrJ * m.TimePerInstrS }
