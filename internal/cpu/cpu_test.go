package cpu

import (
	"testing"

	"repro/internal/amat"
	"repro/internal/mem"
	"repro/internal/units"
)

func system() amat.System {
	return amat.System{
		L1: amat.LevelStats{Name: "L1", AccessTimeS: 600e-12, LocalMissRate: 0.05,
			DynamicEnergyJ: 20e-12, LeakageW: 10e-3},
		L2: amat.LevelStats{Name: "L2", AccessTimeS: 1500e-12, LocalMissRate: 0.20,
			DynamicEnergyJ: 150e-12, LeakageW: 50e-3},
		Mem: mem.DefaultDDR(),
	}
}

func TestValidate(t *testing.T) {
	if err := Default65nmCore().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{ClockHz: 0, BaseCPI: 1},
		{ClockHz: 1e9, BaseCPI: 0},
		{ClockHz: 1e9, BaseCPI: 1, MemRefsPerInstr: 1.5},
		{ClockHz: 1e9, BaseCPI: 1, MemRefsPerInstr: 0.3, CoreLeakageW: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRunBasics(t *testing.T) {
	core := Default65nmCore()
	m, err := core.Run(system())
	if err != nil {
		t.Fatal(err)
	}
	// AMAT ~1175ps at 2GHz = 2.35 cycles -> CPI = 1 + 0.35*1.35 ~ 1.47.
	if m.CPI < 1.2 || m.CPI > 2.5 {
		t.Errorf("CPI = %v, want ~1.5", m.CPI)
	}
	if m.TimePerInstrS <= 0 || m.EnergyPerInstrJ <= 0 {
		t.Fatalf("non-positive metrics: %+v", m)
	}
	if m.MemoryShare <= 0 || m.MemoryShare >= 1 {
		t.Errorf("memory share = %v", m.MemoryShare)
	}
	if m.LeakageShare <= 0 || m.LeakageShare >= 1 {
		t.Errorf("leakage share = %v", m.LeakageShare)
	}
	// Energy per instruction for a 2005-class core: hundreds of pJ.
	if pj := units.ToPJ(m.EnergyPerInstrJ); pj < 50 || pj > 2000 {
		t.Errorf("energy/instr = %v pJ", pj)
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	core := Default65nmCore()
	bad := system()
	bad.L1.LocalMissRate = 2
	if _, err := core.Run(bad); err == nil {
		t.Error("bad system accepted")
	}
	badCore := core
	badCore.ClockHz = 0
	if _, err := badCore.Run(system()); err == nil {
		t.Error("bad core accepted")
	}
}

func TestSlowerMemoryRaisesCPIAndEnergy(t *testing.T) {
	core := Default65nmCore()
	fast, err := core.Run(system())
	if err != nil {
		t.Fatal(err)
	}
	slow := system()
	slow.L1.LocalMissRate = 0.15 // more misses -> higher AMAT
	sm, err := core.Run(slow)
	if err != nil {
		t.Fatal(err)
	}
	if sm.CPI <= fast.CPI {
		t.Error("higher miss rate must raise CPI")
	}
	if sm.EnergyPerInstrJ <= fast.EnergyPerInstrJ {
		t.Error("higher miss rate must raise energy per instruction")
	}
}

func TestLeakierCacheRaisesEnergyNotCPI(t *testing.T) {
	core := Default65nmCore()
	base, _ := core.Run(system())
	leaky := system()
	leaky.L2.LeakageW *= 10
	lm, err := core.Run(leaky)
	if err != nil {
		t.Fatal(err)
	}
	if lm.CPI != base.CPI {
		t.Error("leakage must not change CPI")
	}
	if lm.EnergyPerInstrJ <= base.EnergyPerInstrJ {
		t.Error("leakage must raise energy per instruction")
	}
	if lm.LeakageShare <= base.LeakageShare {
		t.Error("leakage share must grow")
	}
}

func TestSubCycleAMATMeansNoStall(t *testing.T) {
	core := Default65nmCore()
	fast := system()
	fast.L1.AccessTimeS = 100e-12 // well under one 500ps cycle
	fast.L1.LocalMissRate = 0
	m, err := core.Run(fast)
	if err != nil {
		t.Fatal(err)
	}
	if m.CPI != core.BaseCPI {
		t.Errorf("CPI = %v, want base %v with sub-cycle AMAT", m.CPI, core.BaseCPI)
	}
}

func TestEDP(t *testing.T) {
	m := Metrics{EnergyPerInstrJ: 2, TimePerInstrS: 3}
	if m.EDP() != 6 {
		t.Errorf("EDP = %v", m.EDP())
	}
}
