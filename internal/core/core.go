// Package core is the top-level API of the reproduction of
//
//	R. Bai, N.-S. Kim, T. H. Kgil, D. Sylvester, T. Mudge,
//	"Power-Performance Trade-offs in Nanometer-Scale Multi-Level Caches
//	Considering Total Leakage", DATE 2005.
//
// It ties the substrates together into the paper's workflow:
//
//  1. describe a cache organization (size, block, associativity);
//  2. characterize its four components over the (Vth, Tox) grid and fit the
//     paper's analytical leakage/delay models;
//  3. optimize the assignment of Vth and Tox values under delay or AMAT
//     constraints — per component (Scheme I), cell-array-vs-periphery
//     (Scheme II), or uniformly (Scheme III);
//  4. extend to two-level hierarchies and the whole memory system, with
//     miss rates from the trace-driven simulator; and
//  5. regenerate every figure and table of the paper's evaluation.
//
// The heavy lifting lives in the internal sub-packages (device, circuit,
// sram, geom, components, fit, charlib, model, trace, sim, mem, amat, opt,
// exp); this package provides the assembled, documented entry points that
// the examples and command-line tools consume.
package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cachecfg"
	"repro/internal/charlib"
	"repro/internal/components"
	"repro/internal/device"
	"repro/internal/exp"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/opt"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/trace"
	"repro/internal/units"
)

// Re-exported construction helpers, so callers need only import core.

// NewTechnology returns the calibrated 65 nm BPTM-style technology used in
// the paper's experiments.
func NewTechnology() *device.Technology { return device.Default65nm() }

// L1Config returns the canonical L1 organization of the given capacity.
func L1Config(sizeBytes int) cachecfg.Config { return cachecfg.L1(sizeBytes) }

// L2Config returns the canonical L2 organization of the given capacity.
func L2Config(sizeBytes int) cachecfg.Config { return cachecfg.L2(sizeBytes) }

// OP builds an operating point from volts and angstroms.
func OP(vth, toxAngstrom float64) device.OperatingPoint { return device.OP(vth, toxAngstrom) }

// CacheDesign bundles a transistor-level cache with its fitted analytical
// model — everything needed to study and optimize one cache.
type CacheDesign struct {
	Tech  *device.Technology
	Cfg   cachecfg.Config
	Cache *components.Cache
	Model *model.CacheModel
}

// DesignCache builds the cache netlists for cfg, characterizes the four
// components over the default grid, and fits the paper's model forms.
func DesignCache(tech *device.Technology, cfg cachecfg.Config) (*CacheDesign, error) {
	c, err := components.New(tech, cfg)
	if err != nil {
		return nil, err
	}
	m, err := model.Build(c, charlib.DefaultGrid(), 0.95)
	if err != nil {
		return nil, err
	}
	return &CacheDesign{Tech: tech, Cfg: cfg, Cache: c, Model: m}, nil
}

// Evaluate returns leakage power (W), access time (s) and dynamic energy
// (J) of an assignment, evaluated on the transistor-level netlists.
func (d *CacheDesign) Evaluate(a components.Assignment) (leakW, delayS, energyJ float64) {
	return d.Cache.Leakage(a).Total(), d.Cache.AccessTime(a), d.Cache.DynamicEnergy(a)
}

// KnobGrid returns the paper's fine optimization grid.
func KnobGrid() []device.OperatingPoint {
	g := charlib.OptimizationGrid()
	return opt.PairsFromGrid(g.Vths, g.ToxAs)
}

// The shared substrate behind SharedDesign/SharedKnobGrid: design-space
// sweeps evaluate the same few cache organizations at thousands to
// millions of (config, budget) points, and characterize-and-fit is by far
// the most expensive invariant (~100ms per design). One technology
// instance anchors the memo so every design shares identical calibration.
var (
	sharedTech     = sync.OnceValue(NewTechnology)
	designMemo     sweep.Memo[cachecfg.Config, *CacheDesign]
	sharedKnobGrid = sync.OnceValue(KnobGrid)
)

// SharedTechnology returns the process-wide default technology instance —
// the one SharedDesign characterizes against. Treat it as read-only.
func SharedTechnology() *device.Technology { return sharedTech() }

// SharedDesign returns the process-wide memoized cache design for cfg
// under the default technology, building (netlists + characterization +
// model fits — the expensive part of a design point) on first use with
// singleflight semantics. Design construction is deterministic, and model
// evaluation is pure, so sharing one design across concurrent
// optimizations preserves the byte-identical-output invariant. Treat the
// returned design as read-only.
func SharedDesign(cfg cachecfg.Config) (*CacheDesign, error) {
	return designMemo.Do(cfg, func() (*CacheDesign, error) {
		return DesignCache(sharedTech(), cfg)
	})
}

// SharedKnobGrid returns the paper's fine optimization grid, computed
// once per process. Treat the returned slice as read-only; callers that
// need a private copy should use KnobGrid.
func SharedKnobGrid() []device.OperatingPoint { return sharedKnobGrid() }

// OptimizeLeakage minimizes the cache's total leakage under a delay budget
// (seconds) with the chosen assignment scheme, searching the paper's fine
// knob grid against the fitted model.
func (d *CacheDesign) OptimizeLeakage(scheme opt.Scheme, delayBudget float64) opt.Result {
	return opt.Optimize(scheme, d.Model, KnobGrid(), delayBudget)
}

// OptimizeLeakageCtx is OptimizeLeakage with cancellation.
func (d *CacheDesign) OptimizeLeakageCtx(ctx context.Context, scheme opt.Scheme, delayBudget float64) (opt.Result, error) {
	return opt.OptimizeCtx(ctx, scheme, d.Model, KnobGrid(), delayBudget)
}

// DelayRange returns the achievable [fastest, slowest] access times over
// uniform assignments — the span of useful delay budgets.
func (d *CacheDesign) DelayRange() (lo, hi float64) {
	return opt.FeasibleDelayRange(d.Model, KnobGrid())
}

// TradeoffCurve sweeps n delay budgets across the feasible range and
// returns the optimized leakage at each — the scheme's leakage/delay
// frontier.
func (d *CacheDesign) TradeoffCurve(scheme opt.Scheme, n int) []opt.Result {
	out, _ := d.TradeoffCurveCtx(context.Background(), scheme, n)
	return out
}

// TradeoffCurveCtx is TradeoffCurve with cancellation.
func (d *CacheDesign) TradeoffCurveCtx(ctx context.Context, scheme opt.Scheme, n int) ([]opt.Result, error) {
	lo, hi := d.DelayRange()
	return opt.FrontierCtx(ctx, scheme, d.Model, KnobGrid(), units.Linspace(lo, hi, n))
}

// HierarchyDesign is a two-level cache system plus main memory under a
// workload mix — the setting of the paper's Section 5.
type HierarchyDesign struct {
	Tech *device.Technology
	L1   *CacheDesign
	L2   *CacheDesign
	Mem  mem.Spec

	// M1 and M2 are the local miss rates of the configured sizes under the
	// simulated workloads.
	M1, M2 float64
}

// HierarchyOptions tunes DesignHierarchy.
type HierarchyOptions struct {
	// Accesses per workload for miss-rate simulation (default 1M).
	Accesses int
	// Seed for the synthetic workloads (default 1).
	Seed int64
	// Mem overrides the main-memory spec (default DDR).
	Mem *mem.Spec
}

// DesignHierarchy builds L1 and L2 designs of the given capacities and
// simulates the three workload suites to obtain their miss rates.
func DesignHierarchy(tech *device.Technology, l1Size, l2Size int, o HierarchyOptions) (*HierarchyDesign, error) {
	if o.Accesses == 0 {
		o.Accesses = 1_000_000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	m := mem.DefaultDDR()
	if o.Mem != nil {
		m = *o.Mem
	}

	l1, err := DesignCache(tech, cachecfg.L1(l1Size))
	if err != nil {
		return nil, fmt.Errorf("core: L1: %w", err)
	}
	l2, err := DesignCache(tech, cachecfg.L2(l2Size))
	if err != nil {
		return nil, fmt.Errorf("core: L2: %w", err)
	}

	ms, err := sim.BuildSuiteMatrices(trace.Suites(o.Seed), []int{l1Size}, []int{l2Size}, o.Accesses)
	if err != nil {
		return nil, fmt.Errorf("core: miss rates: %w", err)
	}
	avg, err := sim.Average(ms)
	if err != nil {
		return nil, err
	}
	return &HierarchyDesign{
		Tech: tech,
		L1:   l1,
		L2:   l2,
		Mem:  m,
		M1:   avg.L1Local[l1Size],
		M2:   avg.L2Local[l1Size][l2Size],
	}, nil
}

// twoLevel assembles the optimizer view.
func (h *HierarchyDesign) twoLevel() *opt.TwoLevel {
	return &opt.TwoLevel{L1: h.L1.Model, L2: h.L2.Model, M1: h.M1, M2: h.M2, Mem: h.Mem}
}

// AMAT returns the average memory access time (s) under the assignments.
func (h *HierarchyDesign) AMAT(a1, a2 components.Assignment) float64 {
	return h.twoLevel().AMAT(a1, a2)
}

// TotalEnergy returns the per-access total energy (J) under the assignments
// (dynamic plus leakage over the AMAT window — the Figure 2 objective).
func (h *HierarchyDesign) TotalEnergy(a1, a2 components.Assignment) float64 {
	return h.twoLevel().System(a1, a2).TotalEnergyJ()
}

// OptimizeL2 minimizes combined leakage over L2 assignments under an AMAT
// budget with L1 pinned (the paper's first two-level experiment).
func (h *HierarchyDesign) OptimizeL2(scheme opt.Scheme, a1 components.Assignment, amatBudget float64) opt.TwoLevelResult {
	return h.twoLevel().OptimizeL2(scheme, a1, KnobGrid(), amatBudget)
}

// OptimizeL1 minimizes combined leakage over L1 assignments under an AMAT
// budget with L2 pinned.
func (h *HierarchyDesign) OptimizeL1(scheme opt.Scheme, a2 components.Assignment, amatBudget float64) opt.TwoLevelResult {
	return h.twoLevel().OptimizeL1(scheme, a2, KnobGrid(), amatBudget)
}

// MemorySystem returns the whole-system view used by the tuple-budget
// optimizer of Figure 2.
func (h *HierarchyDesign) MemorySystem() *opt.MemorySystem {
	return &opt.MemorySystem{TwoLevel: *h.twoLevel()}
}

// OptimizeTuples finds the best (#Tox, #Vth) value sets and assignment under
// an AMAT budget, minimizing total energy. Candidates default to the paper's
// coarse menus when nil.
func (h *HierarchyDesign) OptimizeTuples(budget opt.TupleBudget, vthCands, toxCands []float64, amatBudget float64) opt.TupleResult {
	if vthCands == nil {
		vthCands = units.GridSteps(0.20, 0.50, 0.05)
	}
	if toxCands == nil {
		toxCands = units.GridSteps(10, 14, 1)
	}
	return h.MemorySystem().OptimizeTuples(budget, vthCands, toxCands, amatBudget)
}

// Experiments returns a fully configured experiment harness for
// regenerating the paper's figures and tables at production scale.
func Experiments() *exp.Env { return exp.NewEnv() }

// QuickExperiments returns the harness with shorter simulations (tests,
// demos).
func QuickExperiments() *exp.Env { return exp.NewQuickEnv() }
