package core

import (
	"sync"
	"testing"

	"repro/internal/cachecfg"
	"repro/internal/components"
	"repro/internal/opt"
	"repro/internal/units"
)

var (
	once   sync.Once
	design *CacheDesign
	hier   *HierarchyDesign
)

func setup(t *testing.T) (*CacheDesign, *HierarchyDesign) {
	t.Helper()
	once.Do(func() {
		tech := NewTechnology()
		d, err := DesignCache(tech, L1Config(16*cachecfg.KB))
		if err != nil {
			t.Fatal(err)
		}
		design = d
		h, err := DesignHierarchy(tech, 16*cachecfg.KB, 512*cachecfg.KB,
			HierarchyOptions{Accesses: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		hier = h
	})
	if design == nil || hier == nil {
		t.Fatal("setup failed earlier")
	}
	return design, hier
}

func TestDesignCacheEvaluate(t *testing.T) {
	d, _ := setup(t)
	leak, delay, energy := d.Evaluate(components.Uniform(OP(0.3, 12)))
	if leak <= 0 || delay <= 0 || energy <= 0 {
		t.Errorf("bad evaluation: %v %v %v", leak, delay, energy)
	}
}

func TestDesignCacheRejectsBadConfig(t *testing.T) {
	if _, err := DesignCache(NewTechnology(), cachecfg.Config{SizeBytes: 3}); err == nil {
		t.Error("bad config accepted")
	}
}

func TestOptimizeLeakageAllSchemes(t *testing.T) {
	d, _ := setup(t)
	lo, hi := d.DelayRange()
	if lo <= 0 || hi <= lo {
		t.Fatalf("delay range %v..%v", lo, hi)
	}
	budget := lo + 0.5*(hi-lo)
	var prev float64
	for _, s := range []opt.Scheme{opt.SchemeIII, opt.SchemeII, opt.SchemeI} {
		r := d.OptimizeLeakage(s, budget)
		if !r.Feasible {
			t.Fatalf("%v infeasible at mid budget", s)
		}
		if prev != 0 && r.LeakageW > prev*(1+1e-3) {
			t.Errorf("%v should improve on the previous scheme", s)
		}
		prev = r.LeakageW
	}
}

func TestTradeoffCurve(t *testing.T) {
	d, _ := setup(t)
	curve := d.TradeoffCurve(opt.SchemeII, 6)
	if len(curve) != 6 {
		t.Fatalf("curve size %d", len(curve))
	}
	feasible := 0
	for _, r := range curve {
		if r.Feasible {
			feasible++
		}
	}
	if feasible < 5 {
		t.Errorf("only %d/6 budgets feasible", feasible)
	}
}

func TestHierarchyBasics(t *testing.T) {
	_, h := setup(t)
	if h.M1 <= 0 || h.M1 >= 1 || h.M2 <= 0 || h.M2 > 1 {
		t.Fatalf("miss rates %v, %v", h.M1, h.M2)
	}
	a1 := components.Uniform(opt.DefaultOP())
	a2 := components.Uniform(opt.ConservativeOP())
	am := h.AMAT(a1, a2)
	if am < 500*units.Picosecond || am > 10*units.Nanosecond {
		t.Errorf("AMAT %v out of regime", am)
	}
	e := h.TotalEnergy(a1, a2)
	if e < units.FromPJ(10) || e > units.FromPJ(5000) {
		t.Errorf("total energy %v pJ out of regime", units.ToPJ(e))
	}
}

func TestHierarchyOptimizeL2(t *testing.T) {
	_, h := setup(t)
	a1 := components.Uniform(opt.DefaultOP())
	target := h.AMAT(a1, components.Uniform(OP(0.40, 13)))
	r := h.OptimizeL2(opt.SchemeII, a1, target)
	if !r.Feasible {
		t.Fatal("L2 optimization infeasible")
	}
	if r.AMATS > target*(1+1e-9) {
		t.Error("AMAT budget violated")
	}
}

func TestHierarchyOptimizeTuples(t *testing.T) {
	_, h := setup(t)
	a := components.Uniform(OP(0.35, 12))
	target := h.AMAT(a, a)
	r := h.OptimizeTuples(opt.TupleBudget{NTox: 2, NVth: 2}, nil, nil, target)
	if !r.Feasible {
		t.Fatal("tuple optimization infeasible")
	}
	if got := r.Assignment.DistinctVths(); got > 2 {
		t.Errorf("used %d Vth values", got)
	}
	if got := r.Assignment.DistinctToxs(); got > 2 {
		t.Errorf("used %d Tox values", got)
	}
}

func TestExperimentHandlesExist(t *testing.T) {
	if Experiments() == nil || QuickExperiments() == nil {
		t.Fatal("experiment constructors returned nil")
	}
	if Experiments().Accesses <= QuickExperiments().Accesses {
		t.Error("production env should simulate more accesses than quick env")
	}
}
