package obs

import (
	"strings"
	"testing"
)

// BenchmarkCounterInc is the cost floor for instrumenting a hot loop: one
// resolved counter handle, one atomic add per event.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("n", "", "kind").With("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkHistogramObserve is what work.Run pays per item: bucket search
// plus three atomic updates.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("lat", "", nil, "kind", "fidelity").With("bench", "trace")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) * 0.001)
	}
}

// BenchmarkSnapshotRender prices a /metrics scrape of a realistically
// sized registry (a few families, a handful of series each).
func BenchmarkSnapshotRender(b *testing.B) {
	r := NewRegistry()
	for _, kind := range []string{"scenario-batch", "experiments", "grid"} {
		for _, fid := range []string{"trace", "analytical"} {
			h := r.Histogram("work_item_seconds", "", nil, "kind", "fidelity").With(kind, fid)
			for i := 0; i < 100; i++ {
				h.Observe(float64(i) * 0.002)
			}
			r.Counter("work_items_total", "", "kind", "fidelity").With(kind, fid).Add(100)
		}
		r.Gauge("work_inflight_items", "", "kind").With(kind).Set(4)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		renderText(&sb, r.Snapshot())
	}
}
