package obs

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := r.Gauge("depth", "queue depth", "kind")
	n := 7
	v.WithFunc(func() float64 { return float64(n) }, "toy")
	if g := r.Snapshot().Family("depth").Get("toy"); g == nil || g.Value != 7 {
		t.Fatalf("func gauge = %+v, want 7", g)
	}
	n = 3
	if g := r.Snapshot().Family("depth").Get("toy"); g.Value != 3 {
		t.Fatalf("func gauge after change = %v, want 3 (evaluated at read time)", g.Value)
	}
	// Re-binding the same series replaces the callback.
	v.WithFunc(func() float64 { return -1 }, "toy")
	if g := r.Snapshot().Family("depth").Get("toy"); g.Value != -1 {
		t.Fatalf("rebound func gauge = %v, want -1", g.Value)
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("items_total", "items", "kind").With("toy")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	g := r.Gauge("inflight", "in flight").With()
	g.Set(3)
	g.Add(-1)
	g.Add(0.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// lands in the first bucket whose upper bound is >= the value — bounds
// are inclusive — and the +Inf bucket counts everything.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{0.01, 0.1, 1}).With()

	h.Observe(0.01) // exactly on a bound → that bucket, not the next
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(1.0)
	h.Observe(50) // beyond the last bound → +Inf only

	snap := r.Snapshot().Family("lat").Get()
	if snap == nil || snap.Histogram == nil {
		t.Fatal("histogram series missing from snapshot")
	}
	hs := snap.Histogram
	wantCum := []uint64{2, 3, 4, 5} // le=0.01, le=0.1, le=1, le=+Inf
	if len(hs.Buckets) != len(wantCum) {
		t.Fatalf("bucket count = %d, want %d", len(hs.Buckets), len(wantCum))
	}
	for i, want := range wantCum {
		if hs.Buckets[i].Count != want {
			t.Errorf("bucket %d (le=%v) = %d, want %d", i, hs.Buckets[i].UpperBound, hs.Buckets[i].Count, want)
		}
	}
	if !math.IsInf(hs.Buckets[3].UpperBound, +1) {
		t.Errorf("last bucket bound = %v, want +Inf", hs.Buckets[3].UpperBound)
	}
	if hs.Count != 5 {
		t.Errorf("count = %d, want 5", hs.Count)
	}
	if want := 0.01 + 0.005 + 0.05 + 1.0 + 50; math.Abs(hs.Sum-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", hs.Sum, want)
	}
}

func TestHistogramRejectsBadBuckets(t *testing.T) {
	r := NewRegistry()
	for name, buckets := range map[string][]float64{
		"unsorted": {1, 0.5},
		"dup":      {1, 1},
		"inf":      {1, math.Inf(+1)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s buckets: no panic", name)
				}
			}()
			r.Histogram("bad_"+name, "", buckets)
		}()
	}
}

// TestLabelHandling pins the label rules: distinct values are distinct
// series, registration is idempotent for identical signatures, and
// mismatched arity or changed signatures panic.
func TestLabelHandling(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("c", "help", "kind", "fidelity")
	v.With("grid", "trace").Inc()
	v.With("grid", "analytical").Add(2)
	v.With("grid", "trace").Inc()

	// Same (name, type, labels) re-registers onto the same family.
	again := r.Counter("c", "help", "kind", "fidelity")
	if got := again.With("grid", "trace").Value(); got != 2 {
		t.Fatalf("re-resolved counter = %d, want 2", got)
	}

	f := r.Snapshot().Family("c")
	if len(f.Series) != 2 {
		t.Fatalf("series count = %d, want 2", len(f.Series))
	}
	// Snapshot order is deterministic: series sorted by label values.
	if f.Series[0].LabelValues[1] != "analytical" || f.Series[1].LabelValues[1] != "trace" {
		t.Fatalf("series order = %v, %v", f.Series[0].LabelValues, f.Series[1].LabelValues)
	}
	if labels := f.LabelsOf(&f.Series[1]); labels["kind"] != "grid" || labels["fidelity"] != "trace" {
		t.Fatalf("LabelsOf = %v", labels)
	}

	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	mustPanic("wrong arity", func() { v.With("grid") })
	mustPanic("type change", func() { r.Gauge("c", "help", "kind", "fidelity") })
	mustPanic("label change", func() { r.Counter("c", "help", "kind") })
	mustPanic("empty name", func() { r.Counter("", "help") })
}

// TestSeriesKeyCollision guards the label-value join: values that would
// collide under a naive separator join must stay distinct series.
func TestSeriesKeyCollision(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("c", "", "a", "b")
	v.With("x,", "y").Inc()
	v.With("x", ",y").Inc()
	if n := len(r.Snapshot().Family("c").Series); n != 2 {
		t.Fatalf("series count = %d, want 2", n)
	}
}

func TestHandlerExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("work_items_total", "completed items", "kind").With("scenario-batch").Add(7)
	r.Gauge("inflight", "items in flight").With().Set(1.5)
	h := r.Histogram("work_item_seconds", "per-item latency", []float64{0.1, 1}, "kind")
	h.With("toy").Observe(0.05)
	h.With("toy").Observe(2)
	// A label value that needs escaping.
	r.Counter("esc", "", "v").With("a\"b\\c\nd").Inc()

	srv := httptest.NewServer(Handler(r))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE work_items_total counter\n",
		`work_items_total{kind="scenario-batch"} 7` + "\n",
		"# HELP inflight items in flight\n",
		"inflight 1.5\n",
		"# TYPE work_item_seconds histogram\n",
		`work_item_seconds_bucket{kind="toy",le="0.1"} 1` + "\n",
		`work_item_seconds_bucket{kind="toy",le="1"} 1` + "\n",
		`work_item_seconds_bucket{kind="toy",le="+Inf"} 2` + "\n",
		`work_item_seconds_sum{kind="toy"} 2.05` + "\n",
		`work_item_seconds_count{kind="toy"} 2` + "\n",
		`esc{v="a\"b\\c\nd"} 1` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q in:\n%s", want, text)
		}
	}
}

// TestHandlerDeterministic pins scrape-to-scrape stability: identical
// registry state renders identical bytes.
func TestHandlerDeterministic(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("c", "", "k")
	for _, k := range []string{"b", "a", "c"} {
		v.With(k).Inc()
	}
	render := func() string {
		var b strings.Builder
		renderText(&b, r.Snapshot())
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("non-deterministic render:\n%s\nvs\n%s", a, b)
	}
	if text := render(); strings.Index(text, `{k="a"}`) > strings.Index(text, `{k="b"}`) {
		t.Fatalf("series not sorted:\n%s", text)
	}
}

func TestDebugHandlerServesPprof(t *testing.T) {
	srv := httptest.NewServer(DebugHandler(NewRegistry()))
	defer srv.Close()
	for path, want := range map[string]int{
		"/metrics":          http.StatusOK,
		"/debug/pprof/":     http.StatusOK,
		"/debug/pprof/heap": http.StatusOK,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("up", "").With().Inc()
	addr, stop, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up 1\n") {
		t.Fatalf("metrics body:\n%s", body)
	}
}

func TestClockDefault(t *testing.T) {
	var c Clock
	before := time.Now()
	got := c.Now()
	if got.Before(before) || time.Since(got) > time.Minute {
		t.Fatalf("nil Clock.Now = %v", got)
	}
	fixed := time.Unix(42, 0)
	c = func() time.Time { return fixed }
	if !c.Now().Equal(fixed) {
		t.Fatal("injected clock not used")
	}
}

// TestConcurrentRecording exercises the atomic hot path under the race
// detector and checks nothing is lost.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n", "").With()
	g := r.Gauge("g", "").With()
	h := r.Histogram("h", "", []float64{1}).With()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.5)
				_ = r.Snapshot() // readers race writers safely
			}
		}()
	}
	wg.Wait()
	if c.Value() != workers*per {
		t.Errorf("counter = %d, want %d", c.Value(), workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per || h.Sum() != workers*per*0.5 {
		t.Errorf("histogram count/sum = %d/%v", h.Count(), h.Sum())
	}
}
