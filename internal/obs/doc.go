// Package obs is the repository's zero-dependency metrics layer: labeled
// counters, gauges, and histograms with a Prometheus text-format endpoint
// (Handler) and a structured snapshot API for tests. Every execution layer
// — the unified work driver, the dist coordinator and service, the
// long-running CLIs — records into a Registry; nothing here ever touches
// result bytes, so the repository's byte-identical-output invariant is
// untouched by instrumentation (the equivalence suite pins this with
// metrics enabled). The complete catalogue of metric families the
// binaries expose, and how to operate on them, is docs/operations.md.
//
// The hot path is allocation-free after setup: a Vec resolves its labeled
// series once (With), and the returned handle records with a few atomic
// operations — cheap enough that work.Run instruments every item
// (BenchmarkObsOverhead in internal/work keeps the driver overhead honest).
// Reads (Snapshot, Handler) are lock-light and safe to call concurrently
// with writers; a scrape observes each series at some point during the
// scrape, not a single global instant, which is the standard contract for
// lock-free metrics.
//
// Clock is the injectable time source the noclock analyzer demands
// everywhere outside internal/cli, internal/obs, and cmd: a nil Clock's
// Now() falls back to time.Now, so zero-valued structs stay safe.
package obs
